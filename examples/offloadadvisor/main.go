// Offload advisor (§5.3 Strategy 2): decide, per function and SLO, which
// execution platform a datacenter operator should use.
//
// The advisor predicts throughput, p99 and active power for every
// platform a benchmark supports — without running it — then recommends
// the most *server-efficient* platform that meets the SLO. The demo
// shows the paper's two headline flips:
//
//   - tightening the SLO pulls REM/file_image back off the accelerator
//     (its batch-assembly latency breaks microsecond-scale SLOs);
//   - AES/RSA stay on the host (ISA extensions) while SHA-1 and
//     compression offload (Key Observation 2).
//
// Run with: go run ./examples/offloadadvisor
package main

import (
	"fmt"
	"log"

	"repro/snic"
)

func main() {
	adv := snic.NewAdvisor()

	fmt.Println("== Recommendations at a relaxed 2 ms p99 SLO ==")
	show(adv, 2*snic.Millisecond,
		[2]string{"crypto", "aes"},
		[2]string{"crypto", "rsa"},
		[2]string{"crypto", "sha1"},
		[2]string{"compress", "app"},
		[2]string{"rem", "file_image"},
		[2]string{"rem", "file_executable"},
		[2]string{"redis", "workload_a"},
		[2]string{"fio", "read"},
	)

	fmt.Println("\n== The same functions under a tight 10 µs p99 SLO ==")
	show(adv, 10*snic.Microsecond,
		[2]string{"rem", "file_image"},
		[2]string{"rem", "file_executable"},
		[2]string{"crypto", "aes"},
	)

	fmt.Println("\nNote how rem/file_image flips: the engine wins on throughput and")
	fmt.Println("energy, but its ~11 µs batch wait can never meet a 10 µs tail SLO.")
}

func show(adv *snic.Advisor, slo snic.Duration, names ...[2]string) {
	for _, n := range names {
		bench, err := snic.LookupBenchmark(n[0], n[1])
		if err != nil {
			log.Fatal(err)
		}
		rec := adv.Advise(bench, slo)
		chosen := string(rec.Chosen)
		if chosen == "" {
			chosen = "(no platform meets the SLO)"
		}
		fmt.Printf("  %-22s -> %-12s %s\n", bench.Name(), chosen, rec.Reason)
	}
}
