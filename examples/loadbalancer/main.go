// Load balancer (§5.3 Strategy 3): ride the SNIC accelerator's energy
// efficiency at low rates, spill to the host before bursts break the SLO.
//
// The paper's Key Observation 3 is that the REM engine caps near
// 50 Gb/s — half the line rate — so host cores must stay reserved for
// bursts. This demo replays a bursty trace (5 Gb/s base, 72 Gb/s spikes)
// three ways and reproduces the paper's preliminary finding: a software
// balancer on the SNIC cores reacts too slowly and burns cycles
// monitoring; the proposed hardware-assisted balancer reacts per packet.
//
// Run with: go run ./examples/loadbalancer
package main

import (
	"fmt"

	"repro/snic"
)

func main() {
	tb := snic.NewTestbed()
	tr := snic.BurstyTrace(5, 72, 60, 6, 2*snic.Millisecond)
	fmt.Printf("trace: %d intervals, mean %.1f Gb/s, bursts to %.0f Gb/s (engine caps ~50)\n\n",
		len(tr.RatesGbps), tr.MeanGbps(), tr.PeakGbps())

	accelOnly := tb.RunBalanced(snic.LoadBalancer{SpillQueueThreshold: 1 << 30, HWAssist: true}, tr, 8, 1)
	software := tb.RunBalanced(snic.SoftwareBalancer(), tr, 8, 1)
	hardware := tb.RunBalanced(snic.HardwareBalancer(), tr, 8, 1)

	const slo = 300 * snic.Microsecond
	fmt.Printf("%-28s %10s %14s %10s %12s %8s\n",
		"configuration", "tput Gb/s", "p99", "server W", "host share", "SLO?")
	for _, row := range []struct {
		name string
		r    snic.BalancedResult
	}{
		{"accelerator only", accelOnly},
		{"software balancer", software},
		{"hardware-assisted balancer", hardware},
	} {
		ok := "MEETS"
		if row.r.P99 > slo {
			ok = "VIOLATES"
		}
		fmt.Printf("%-28s %10.2f %14v %10.1f %11.1f%% %8s\n",
			row.name, row.r.AvgTputGbps, row.r.P99, row.r.AvgPowerW, row.r.HostShare*100, ok)
	}
	fmt.Printf("\n(SLO: p99 <= %v. The hardware balancer meets it while spilling\n", slo)
	fmt.Println("less traffic to the host than the software one — the paper's case")
	fmt.Println("for building the balancer into future SNIC hardware.)")
}
