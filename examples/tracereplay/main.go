// Trace replay (§5.1): the paper's reality check. Fig. 4's maximum
// throughputs flatter the accelerator, but real datacenter links idle at
// a fraction of a percent of line rate — so what does offloading REM buy
// on an actual day of traffic?
//
// This demo renders the Fig. 7 hyperscaler trace, replays it through REM
// on the host CPU and on the SNIC accelerator (Table 4), and runs the
// resulting per-server power through the §5.2 TCO model — ending at the
// paper's sober conclusion: for this use case the SNIC fleet costs MORE.
//
// Run with: go run ./examples/tracereplay
package main

import (
	"fmt"
	"os"

	"repro/snic"
)

func main() {
	tr := snic.HyperscalerTrace()
	snic.RenderFig7(os.Stdout, tr)
	fmt.Println()

	tb := snic.NewTestbed()
	rows := tb.Table4()
	snic.RenderTable4(os.Stdout, rows)

	host, card := rows[0], rows[1]
	fmt.Printf("\nBoth platforms sustain the trace, but the accelerator's batching\n")
	fmt.Printf("costs %.1fx the host's p99 — an SLO set against host performance\n",
		float64(card.P99)/float64(host.P99))
	fmt.Printf("rules the SNIC out, and even ignoring latency the overall power\n")
	fmt.Printf("reduction is only %.0f%% (paper: \"only 9%%\").\n\n",
		(host.AvgPowerW-card.AvgPowerW)/host.AvgPowerW*100)

	row := snic.AnalyzeTCO("REM@trace",
		snic.TCOInput{ThroughputGbps: card.AvgTputGbps, PowerW: card.AvgPowerW},
		snic.TCOInput{ThroughputGbps: host.AvgTputGbps, PowerW: host.AvgPowerW})
	snic.RenderTable5(os.Stdout, []snic.TCORow{row})
	fmt.Printf("\n5-year verdict: %.1f%% TCO \"savings\" — the SNIC hardware premium\n", row.SavingsFrac*100)
	fmt.Println("outweighs the electricity it saves (paper Table 5's REM column).")
}
