// Fleet walkthrough (DESIGN.md S22): from one server to a datacenter.
//
// The paper's Table 5 asks the fleet-sizing question for four apps: how
// many NIC-only servers does one SNIC server replace, and what does
// that do to the 5-year bill? This demo builds the same machinery up in
// three steps:
//
//  1. simulate a small heterogeneous fleet on the diurnal trace and
//     compare dispatch policies (round-robin vs SLO-aware) under a
//     mid-trace server crash,
//  2. show the rollups a fleet operator actually reads — aggregate
//     throughput, fleet p99, SLO attainment, energy, 5-year TCO —
//  3. run the provisioning search that generalizes Table 5.
//
// Run with: go run ./examples/fleet
package main

import (
	"fmt"
	"os"

	"repro/snic"
)

func main() {
	// Step 1: a 12-server mixed fleet on one simulated day, with host 2
	// crashing for the middle third of the trace.
	classes := []snic.FleetClass{snic.NICHosts(6), snic.SNICCPUs(4), snic.SNICAccels(2)}
	tr := snic.HyperscalerTrace().Subsample(8).Scale(12).Compress(400 * snic.Microsecond)
	outage := []snic.FleetOutage{{Server: 2, FromInterval: 8, ToInterval: 16}}

	tb := snic.NewTestbed()
	var rows []snic.FleetResult
	for _, pol := range []snic.FleetPolicy{snic.RoundRobin, snic.SLOAware} {
		res, err := tb.RunFleet(snic.FleetConfig{
			Classes: classes, Policy: pol, Trace: tr, Seed: 42, Outages: outage,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
			os.Exit(1)
		}
		rows = append(rows, res)
	}
	snic.RenderFleet(os.Stdout, rows)

	rr, slo := rows[0], rows[1]
	fmt.Printf("\nDuring the crash, round-robin keeps hashing flows to the dead host\n")
	fmt.Printf("and loses %.2f Gb/s of trace traffic; the SLO-aware dispatcher\n", rr.LostGbps)
	fmt.Printf("drains the dead server's backlog to healthy peers and delivers\n")
	fmt.Printf("%.1f%% of the offered load vs %.1f%%.\n\n",
		slo.DeliveredFrac*100, rr.DeliveredFrac*100)

	// Step 2: per-class detail for the SLO-aware run.
	snic.RenderFleetServers(os.Stdout, slo)

	// Step 3: the provisioning search. For each Table 5 app, binary-
	// search the smallest NIC-only fleet and the smallest SNIC fleet
	// that serve the same target load, then price both.
	fmt.Println("\nProvisioning search — how many NIC servers does one SNIC server replace?")
	prov, err := tb.ProvisionTable5(snic.ProvisionOpts{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "provision: %v\n", err)
		os.Exit(1)
	}
	snic.RenderProvision(os.Stdout, prov)

	for _, p := range prov {
		if p.App == "Compress" {
			fmt.Printf("\nCompress is the paper's headline: one SNIC-accelerator server\n")
			fmt.Printf("replaces %.2f NIC servers (paper: ≈3.5), cutting the 5-year fleet\n", p.Ratio)
			fmt.Printf("TCO by %.0f%%. REM shows the sober counterpoint — the SNIC fleet\n", p.SavingsFrac*100)
			fmt.Println("is SMALLER but still costs more, because the hardware premium is")
			fmt.Println("never paid back at trace-level utilization.")
		}
	}
}
