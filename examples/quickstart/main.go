// Quickstart: measure one benchmark on both sides of the PCIe slot.
//
// This is the testbed's "hello world": take the paper's Redis/YCSB
// benchmark, find its maximum sustainable throughput on the host Xeon
// and on the BlueField-2's Arm cores, and compare throughput, tail
// latency and system-wide power — the three axes of the whole study.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"runtime"

	"repro/snic"
)

func main() {
	bench, err := snic.LookupBenchmark("redis", "workload_a")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark: %s\n\n", snic.Describe(bench))

	// Options configure the testbed at construction; this is the paper's
	// default hardware, fanned across the machine's cores, with a live
	// progress line on stderr (stdout stays byte-identical regardless).
	tb := snic.NewTestbed(
		snic.WithHostCores(8),
		snic.WithSNICCores(8),
		snic.WithParallelism(runtime.NumCPU()),
		snic.WithProgress(func(done, total int, label string) {
			fmt.Fprintf(os.Stderr, "\r%-60s", fmt.Sprintf("[%d/%d] %s", done, total, label))
			if done >= total {
				fmt.Fprintf(os.Stderr, "\r%60s\r", "")
			}
		}),
	)
	host := tb.MaxThroughput(bench, snic.HostCPU)
	card := tb.MaxThroughput(bench, snic.SNICCPU)

	fmt.Printf("%-10s %12s %12s %12s %12s\n", "platform", "tput Gb/s", "p99", "server W", "SNIC W")
	for _, m := range []snic.Measurement{host, card} {
		fmt.Printf("%-10s %12.3f %12v %12.1f %12.1f\n",
			m.Platform, m.TputGbps, m.Latency.P99, m.ServerPowerW, m.SNICPowerW)
	}

	fmt.Printf("\nSNIC ÷ host: throughput %.2fx, p99 %.2fx, energy efficiency %.2fx\n",
		card.TputGbps/host.TputGbps,
		float64(card.Latency.P99)/float64(host.Latency.P99),
		card.EffBitsPerJoule/host.EffBitsPerJoule)
	fmt.Println("\nKey Observation 1 in one line: the wimpy cores drown in the")
	fmt.Println("kernel TCP stack — offloading Redis to this SNIC buys nothing.")
}
