package snic_test

import (
	"strings"
	"testing"

	"repro/snic"
)

func TestCatalogAccessible(t *testing.T) {
	bs := snic.Benchmarks()
	if len(bs) < 25 {
		t.Fatalf("catalog has %d entries, want the full Table 3 matrix", len(bs))
	}
	b, err := snic.LookupBenchmark("redis", "workload_a")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(snic.Describe(b), "redis/workload_a") {
		t.Fatal("Describe missing name")
	}
}

func TestRunThroughFacade(t *testing.T) {
	b, _ := snic.LookupBenchmark("nat", "10K")
	tb := snic.NewTestbed()
	m := tb.Run(b, snic.HostCPU, 0.5, 4000)
	if m.Ops == 0 || m.Latency.P99 <= 0 {
		t.Fatalf("facade run produced no measurement: %v", m)
	}
	if m.ServerPowerW < 252 {
		t.Fatalf("power below idle: %v", m.ServerPowerW)
	}
}

func TestFacadeDeterminism(t *testing.T) {
	b, _ := snic.LookupBenchmark("udp-echo", "1024B")
	a := snic.NewTestbed().Run(b, snic.SNICCPU, 0.5, 3000)
	c := snic.NewTestbed().Run(b, snic.SNICCPU, 0.5, 3000)
	if a.TputGbps != c.TputGbps || a.Latency.P99 != c.Latency.P99 {
		t.Fatal("facade runs not deterministic")
	}
}

func TestPaperTable5ThroughFacade(t *testing.T) {
	rows := snic.PaperTable5()
	if len(rows) != 4 {
		t.Fatalf("Table 5 has %d rows", len(rows))
	}
	var sb strings.Builder
	snic.RenderTable5(&sb, rows)
	if !strings.Contains(sb.String(), "70.7%") {
		t.Fatal("rendered Table 5 missing the compression savings")
	}
}

func TestAnalyzeTCOFacade(t *testing.T) {
	row := snic.AnalyzeTCO("demo",
		snic.TCOInput{ThroughputGbps: 2, PowerW: 255},
		snic.TCOInput{ThroughputGbps: 1, PowerW: 300})
	if row.ServersNIC != 20 {
		t.Fatalf("NIC fleet = %d, want 20", row.ServersNIC)
	}
	if row.SavingsFrac <= 0 {
		t.Fatal("2x throughput at lower power must save money")
	}
}

func TestAdvisorFacade(t *testing.T) {
	a := snic.NewAdvisor()
	b, _ := snic.LookupBenchmark("compress", "app")
	rec := a.Advise(b, 0)
	if rec.Chosen != snic.SNICAccel {
		t.Fatalf("compression should offload to the engine: %v", rec)
	}
}

func TestHyperscalerTraceFacade(t *testing.T) {
	tr := snic.HyperscalerTrace()
	if m := tr.MeanGbps(); m < 0.75 || m > 0.77 {
		t.Fatalf("trace mean = %v", m)
	}
	var sb strings.Builder
	snic.RenderFig7(&sb, tr)
	if !strings.Contains(sb.String(), "Fig. 7") {
		t.Fatal("Fig. 7 render broken")
	}
}

func TestOptionsDeterminism(t *testing.T) {
	b, _ := snic.LookupBenchmark("udp-echo", "1024B")
	mk := func() snic.Measurement {
		tb := snic.NewTestbed(
			snic.WithHostCores(8),
			snic.WithSNICCores(8),
			snic.WithLinkRateGbps(100),
			snic.WithParallelism(8),
			snic.WithSeed(7),
		)
		return tb.Run(b, snic.SNICCPU, 0.5, 3000)
	}
	x, y := mk(), mk()
	if x != y {
		t.Fatalf("same options gave different measurements:\n%v\n%v", x, y)
	}
	reseeded := snic.NewTestbed(snic.WithSeed(99)).Run(b, snic.SNICCPU, 0.5, 3000)
	if reseeded.Latency.Mean == x.Latency.Mean {
		t.Fatal("WithSeed had no effect on the measurement")
	}
}

func TestWithProgress(t *testing.T) {
	var calls int
	tb := snic.NewTestbed(
		snic.WithParallelism(4),
		snic.WithProgress(func(done, total int, label string) {
			calls++
			if done < 1 || done > total || label == "" {
				t.Errorf("bad progress report: %d/%d %q", done, total, label)
			}
		}),
	)
	b, _ := snic.LookupBenchmark("nat", "10K")
	tb.MaxThroughput(b, snic.HostCPU)
	if calls == 0 {
		t.Fatal("progress callback never fired")
	}
	if sims := tb.Simulations(); sims == 0 {
		t.Fatalf("testbed reports %d simulations after a search", sims)
	}
}

func TestFaultSetFacade(t *testing.T) {
	tb := snic.NewTestbed(snic.WithParallelism(4))
	tr := snic.BurstyTrace(4, 60, 10, 4, 2*snic.Millisecond)
	scns := snic.DefaultFaultScenarios(tr.Duration())
	mk := func() *snic.HealthRouter {
		return snic.NewHealthRouter(snic.HardwareBalancer(), snic.DefaultFailoverPolicy())
	}
	rows := tb.RunFaultedSet(scns, mk, tr, 2, 42)
	if len(rows) != len(scns) {
		t.Fatalf("got %d rows for %d scenarios", len(rows), len(scns))
	}
	for i, row := range rows {
		if row.Scenario != scns[i].Name {
			t.Fatalf("row %d is %q, want %q (merge order broken)", i, row.Scenario, scns[i].Name)
		}
	}
}

func TestBalancerFacade(t *testing.T) {
	tb := snic.NewTestbed()
	tr := snic.BurstyTrace(4, 70, 12, 4, 2*snic.Millisecond)
	res := tb.RunBalanced(snic.HardwareBalancer(), tr, 8, 1)
	if res.AvgTputGbps <= 0 {
		t.Fatalf("balanced run produced nothing: %v", res)
	}
	if res.HostShare <= 0 {
		t.Fatal("bursts above engine capacity must spill to the host")
	}
}
