package snic

import (
	"io"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/netstack"
	"repro/internal/report"
)

// Multi-phase pipelines and the unified Workload API. A request can
// traverse several phases — host cores, SNIC cores, fixed-function
// engines — with a fallback policy deciding what happens when an
// accelerator's queue fills. Workload subsumes the older per-family
// entry points (Run, RunBalanced, RunFaulted, ...) behind one
// validated Execute call.

// Workload is the unified run spec; Execute dispatches on its Kind.
type Workload = core.Workload

// WorkloadKind selects a run family.
type WorkloadKind = core.WorkloadKind

// The run families Execute dispatches between.
const (
	WorkloadPoint      = core.WorkloadPoint
	WorkloadReplay     = core.WorkloadReplay
	WorkloadServer     = core.WorkloadServer
	WorkloadFaulted    = core.WorkloadFaulted
	WorkloadBalanced   = core.WorkloadBalanced
	WorkloadPipeline   = core.WorkloadPipeline
	WorkloadSaturation = core.WorkloadSaturation
)

// Result is Execute's tagged union: the field matching Kind is set.
type Result = core.Result

// Pipeline types.
type (
	// PipelineSpec chains PhaseSpecs into one served request.
	PipelineSpec = core.PipelineSpec
	// PhaseSpec is one stage: a resource binding plus a cost model.
	PhaseSpec = core.PhaseSpec
	// PhaseResource names the resource kind a phase occupies.
	PhaseResource = core.PhaseResource
	// PipelineMeasurement is one pipeline operating point.
	PipelineMeasurement = core.PipelineMeasurement
	// PhaseStat is one phase's served/spilled/dropped accounting.
	PhaseStat = core.PhaseStat
	// SaturationOpts shapes a saturation-search load walk.
	SaturationOpts = core.SaturationOpts
	// SaturationResult is one policy's load walk with its knee.
	SaturationResult = core.SaturationResult
	// SaturationPoint is one sampled operating point.
	SaturationPoint = core.SaturationPoint
	// FallbackPolicy arbitrates engine-phase overload.
	FallbackPolicy = core.FallbackPolicy
	// DropWhenFull never spills (the legacy accelerator discipline).
	DropWhenFull = core.DropWhenFull
	// SpillToHost sheds to a host core past a backlog watermark.
	SpillToHost = core.SpillToHost
	// EngineKind names a fixed-function engine.
	EngineKind = core.EngineKind
)

// The three resource kinds a phase can bind.
const (
	ResHostCore = core.ResHostCore
	ResSNICCore = core.ResSNICCore
	ResEngine   = core.ResEngine
)

// The fixed-function engines.
const (
	EngineREM     = core.EngineREM
	EngineDeflate = core.EngineDeflate
	EnginePKABulk = core.EnginePKABulk
	EnginePKAOp   = core.EnginePKAOp
)

// PhaseOption configures one phase of a pipeline under construction.
type PhaseOption func(*PhaseSpec)

// WithCycles sets the phase's CPU cost model: app cycles are
// base + perByte·size (scaled by any cycle factor).
func WithCycles(base, perByte float64) PhaseOption {
	return func(ph *PhaseSpec) { ph.BaseCycles, ph.PerByteCycles = base, perByte }
}

// WithCycleFactor scales the phase's app cycles (the SNIC-core slowdown
// axis; 1 is the host cost).
func WithCycleFactor(f float64) PhaseOption {
	return func(ph *PhaseSpec) { ph.CycleFactor = f }
}

// WithExtraCycles adds a flat cycle cost after scaling (the Mixed-trace
// verification surcharge slot).
func WithExtraCycles(c float64) PhaseOption {
	return func(ph *PhaseSpec) { ph.ExtraCycles = c }
}

// WithSigma sets the phase's log-normal service jitter (default 0.20).
func WithSigma(sigma float64) PhaseOption {
	return func(ph *PhaseSpec) { ph.Sigma = sigma }
}

// WithMemory sets the phase's DRAM pressure: intensity in [0,1] and the
// working-set footprint in bytes.
func WithMemory(intensity float64, workingSet int64) PhaseOption {
	return func(ph *PhaseSpec) { ph.MemIntensity, ph.WorkingSet = intensity, workingSet }
}

// WithEngine binds an engine phase to a fixed-function unit (algo is
// meaningful for the PKA kinds only).
func WithEngine(kind EngineKind, algo accel.PKAAlgo) PhaseOption {
	return func(ph *PhaseSpec) { ph.Engine, ph.PKAAlgo = kind, algo }
}

// WithSpillModel sets the host software cost model used when a fallback
// policy spills this engine phase to a general-purpose core.
func WithSpillModel(base, perByte float64) PhaseOption {
	return func(ph *PhaseSpec) { ph.SpillBaseCycles, ph.SpillPerByteCycles = base, perByte }
}

// WithOutScale rescales the payload leaving the phase (compression).
func WithOutScale(s float64) PhaseOption {
	return func(ph *PhaseSpec) { ph.OutScale = s }
}

// WithQueueCap bounds the phase's pool queue (default 4096).
func WithQueueCap(n int) PhaseOption {
	return func(ph *PhaseSpec) { ph.QueueCap = n }
}

// NewPhase builds one pipeline phase.
func NewPhase(name string, res PhaseResource, opts ...PhaseOption) PhaseSpec {
	ph := PhaseSpec{Name: name, Resource: res}
	for _, opt := range opts {
		opt(&ph)
	}
	return ph
}

// WithPipeline wraps a pipeline spec and operating point in a Workload
// for Execute:
//
//	res, err := tb.Execute(snic.WithPipeline(ps, 20, 10_000))
//	fmt.Println(res.Pipeline.Point.TputGbps)
func WithPipeline(ps *PipelineSpec, offeredGbps float64, requests int) Workload {
	w := Workload{Kind: WorkloadPipeline, Pipeline: ps}
	w.Opts = core.DefaultRunOpts()
	if requests > 0 {
		w.Opts.Requests = requests
	}
	w.Opts.OfferedGbps = offeredGbps
	return w
}

// Execute validates and runs any workload kind — the unified API the
// per-family helpers adapt to. Byte-identical to the legacy entry
// points at any parallelism.
func (t *Testbed) Execute(w Workload) (Result, error) { return t.runner.Execute(w) }

// RunPipeline measures one pipeline at a fixed operating point.
func (t *Testbed) RunPipeline(ps *PipelineSpec, offeredGbps float64, requests int) PipelineMeasurement {
	opts := core.DefaultRunOpts()
	if requests > 0 {
		opts.Requests = requests
	}
	opts.OfferedGbps = offeredGbps
	return t.runner.RunPipeline(ps, opts)
}

// SaturationSearch walks a pipeline's offered load to the SLO knee
// under its fallback policy (run_until_saturation).
func (t *Testbed) SaturationSearch(ps *PipelineSpec, so SaturationOpts) SaturationResult {
	return t.runner.SaturationSearch(ps, so)
}

// PipelineFromBenchmark converts a net-served catalog entry on one
// platform into the equivalent single-phase pipeline; its measurement
// is bit-identical to the legacy Run.
func PipelineFromBenchmark(b *Benchmark, p Platform) *PipelineSpec {
	return core.PipelineFromConfig(b, p)
}

// CryptoCompressSendPipeline returns the egress tax chain exemplar:
// AES on the PKA engine → Deflate engine → send on a SNIC core.
func CryptoCompressSendPipeline() *PipelineSpec { return core.CryptoCompressSendPipeline() }

// NATIDSPipeline returns the ingress tax chain exemplar: NAT lookup on
// a host core → rule matching on the REM engine.
func NATIDSPipeline() *PipelineSpec { return core.NATIDSPipeline() }

// Stack kinds for PipelineSpec.Stack.
const (
	StackTCP  = netstack.KindTCP
	StackUDP  = netstack.KindUDP
	StackDPDK = netstack.KindDPDK
	StackRDMA = netstack.KindRDMA
)

// RenderPipeline writes the pipeline measurement table.
func RenderPipeline(w io.Writer, ms []PipelineMeasurement) { report.Pipeline(w, ms) }

// RenderSaturation writes the saturation curves and knees.
func RenderSaturation(w io.Writer, rs []SaturationResult) { report.Saturation(w, rs) }
