package snic

import (
	"io"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/report"
	"repro/internal/trace"
)

// Adaptive flow offload: a bounded eSwitch flow table, an online
// threshold controller, and the churn scenario family that compares
// them. The first packet of every flow takes the SNIC-core slow path;
// once a flow earns a rule (K slow-path packets under the active
// policy) its packets match in the eSwitch and skip the cores entirely.
// The policies differ only in how K is chosen: fixed at 1 (the
// per-function advisor's behavior), fixed at a hand-tuned value, or
// moved online from the table's own churn counters.

// Offload types.
type (
	// OffloadSpec is the full offload scenario: trace, flow mix, table
	// sizing, policy and slow-path cost model.
	OffloadSpec = core.OffloadSpec
	// OffloadPolicy is a tagged union selecting the threshold policy.
	OffloadPolicy = core.OffloadPolicy
	// OffloadPolicyKind names a threshold policy family.
	OffloadPolicyKind = core.OffloadPolicyKind
	// OffloadResult is one policy's measured outcome on the scenario.
	OffloadResult = core.OffloadResult
	// FlowMix parameterizes the elephant/mice flow decomposition.
	FlowMix = trace.FlowMix
	// FlowTableConfig sizes the eSwitch flow table and its slow path.
	FlowTableConfig = flow.TableConfig
	// FlowEvictPolicy names the table's victim-selection discipline.
	FlowEvictPolicy = flow.EvictPolicy
	// AdaptiveConfig tunes the online threshold controller.
	AdaptiveConfig = flow.AdaptiveConfig
)

// The threshold policy families.
const (
	// OffloadStaticFunction offloads every flow from its first packet.
	OffloadStaticFunction = core.OffloadStaticFunction
	// OffloadStaticFlow offloads a flow after a fixed K slow-path packets.
	OffloadStaticFlow = core.OffloadStaticFlow
	// OffloadAdaptive moves K online from the table's churn counters.
	OffloadAdaptive = core.OffloadAdaptive
)

// The flow-table eviction disciplines.
const (
	FlowEvictLRU      = flow.EvictLRU
	FlowEvictIdle     = flow.EvictIdle
	FlowEvictPriority = flow.EvictPriority
)

// DefaultOffloadSpec returns the churny offload scenario the -exp
// offload experiment runs: a bursty trace over an elephant/mice flow
// population with forced flow restarts, against the default 512-rule
// table.
func DefaultOffloadSpec() OffloadSpec { return core.DefaultOffloadSpec() }

// DefaultOffloadPolicies returns the three compared policies:
// static-per-function, static-per-flow-threshold, and adaptive.
func DefaultOffloadPolicies() []OffloadPolicy { return core.DefaultOffloadPolicies() }

// DefaultAdaptiveConfig returns the adaptive controller's tuning.
func DefaultAdaptiveConfig() AdaptiveConfig { return flow.DefaultAdaptiveConfig() }

// DefaultFlowMix returns the elephant/mice flow decomposition used by
// the offload scenario.
func DefaultFlowMix() FlowMix { return trace.DefaultFlowMix() }

// DefaultFlowTableConfig returns the eSwitch table sizing.
func DefaultFlowTableConfig() FlowTableConfig { return flow.DefaultTableConfig() }

// ChurnTrace returns the bursty rate trace the offload scenario replays.
func ChurnTrace() *trace.HyperscalerTrace { return core.ChurnTrace() }

// RunOffload measures one offload policy on one scenario.
func (t *Testbed) RunOffload(spec OffloadSpec) OffloadResult {
	return t.runner.RunOffload(spec)
}

// OffloadExperiment measures each policy on the same scenario —
// byte-identical at any parallelism.
func (t *Testbed) OffloadExperiment(spec OffloadSpec, policies []OffloadPolicy) []OffloadResult {
	return t.runner.OffloadExperiment(spec, policies)
}

// RenderOffload writes the offload policy comparison tables.
func RenderOffload(w io.Writer, rs []OffloadResult) { report.Offload(w, rs) }
