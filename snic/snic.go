// Package snic is the public API of the SmartNIC datacenter-tax testbed:
// a deterministic, calibrated simulation of the IISWC 2023 study "Making
// Sense of Using a SmartNIC to Reduce Datacenter Tax from SLO and TCO
// Perspectives" (Huang et al.).
//
// The testbed reproduces the paper's methodology end to end: thirteen
// TCP/UDP-, DPDK- and RDMA-based functions run on three execution
// platforms — the host Xeon CPU, the BlueField-2-like SNIC's Arm cores,
// and its fixed-function accelerators — while calibrated power models
// stand in for the paper's BMC and Yocto-Watt instruments. On top sit
// the paper's experiments (Fig. 4–7, Tables 4–5) and the §5.3 strategies
// (offload advisor, SNIC↔host load balancer).
//
// Quick start:
//
//	bench, _ := snic.LookupBenchmark("redis", "workload_a")
//	res := snic.NewTestbed().MaxThroughput(bench, snic.HostCPU)
//	fmt.Println(res.TputGbps, res.Latency.P99, res.ServerPowerW)
//
// Everything is virtual-time and seeded: identical inputs give identical
// results, byte for byte, regardless of host load or GC behaviour. That
// holds even under parallel execution: NewTestbed accepts functional
// options (WithParallelism, WithSeed, WithHostCores, WithLinkRateGbps,
// WithProgress, ...) and the engine fans independent simulations across
// goroutines while merging results in submission order, so Fig. 4 at
// parallelism 8 is byte-identical to parallelism 1.
package snic

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/tco"
	"repro/internal/trace"
)

// Platform is an execution target for a benchmark.
type Platform = core.Platform

// The three platforms of the paper's Table 3.
const (
	HostCPU   = core.HostCPU
	SNICCPU   = core.SNICCPU
	SNICAccel = core.SNICAccel
)

// Benchmark is one function/variant of the paper's benchmark matrix.
type Benchmark = core.Config

// Measurement is one experiment result cell.
type Measurement = core.Measurement

// Fig4Row, Fig5Point and TraceReplayResult are experiment outputs.
type (
	Fig4Row           = core.Fig4Row
	Fig5Point         = core.Fig5Point
	TraceReplayResult = core.TraceReplayResult
)

// Duration is virtual time (nanoseconds).
type Duration = sim.Duration

// Common durations.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Benchmarks returns the full catalog (Table 3 plus microbenchmarks).
func Benchmarks() []*Benchmark { return core.Catalog() }

// LookupBenchmark finds a catalog entry by function and variant name.
func LookupBenchmark(function, variant string) (*Benchmark, error) {
	return core.Lookup(function, variant)
}

// Testbed runs benchmarks and experiments.
type Testbed struct {
	runner *core.Runner
}

// Option configures a Testbed at construction.
type Option func(*Testbed)

// WithHostCores sets the host CPU core count (paper default: 8).
func WithHostCores(n int) Option {
	return func(t *Testbed) { t.runner.TBConfig.HostCores = n }
}

// WithSNICCores sets the SNIC Arm core count (paper default: 8).
func WithSNICCores(n int) Option {
	return func(t *Testbed) { t.runner.TBConfig.SNICCores = n }
}

// WithStagingCores sets the accelerator staging core count (default: 2).
func WithStagingCores(n int) Option {
	return func(t *Testbed) { t.runner.TBConfig.StagingCores = n }
}

// WithLinkRateGbps sets the wire speed; the default is the paper's
// 100 GbE.
func WithLinkRateGbps(gbps float64) Option {
	return func(t *Testbed) { t.runner.TBConfig.LinkRateGbps = gbps }
}

// WithSeed sets the master seed every simulation derives its RNG streams
// from. Identical seeds give byte-identical results.
func WithSeed(seed uint64) Option {
	return func(t *Testbed) { t.runner.TBConfig.Seed = seed }
}

// WithParallelism fans independent simulations across up to n
// goroutines. Results merge in submission order, so figures and tables
// are byte-identical at every setting; 0 and 1 both mean sequential.
func WithParallelism(n int) Option {
	return func(t *Testbed) { t.runner.Parallelism = n }
}

// WithProgress installs a callback invoked as experiment rows complete:
// done of total rows, with a short label for the row just finished.
// Invocations are serialized (the callback needs no locking), but under
// parallelism their order is scheduling-dependent — report counts, don't
// infer sequence.
func WithProgress(fn func(done, total int, label string)) Option {
	return func(t *Testbed) { t.runner.Progress = fn }
}

// Telemetry collects per-run observability data — request spans, sampled
// metrics, counters — from every simulation of the testbeds it is
// attached to, and exports it as a Chrome/Perfetto trace, CSV/JSON
// metrics, or per-run manifests. One Telemetry may serve several
// testbeds; exports are deterministic (byte-identical at any
// parallelism). A nil or absent Telemetry costs nothing: with no
// collector attached every hook in the engine is a nil check.
type Telemetry struct {
	c *obs.Collector
}

// NewTelemetry returns an empty collector.
func NewTelemetry() *Telemetry { return &Telemetry{c: obs.NewCollector()} }

// EnableDetail records per-job station spans and per-frame link spans in
// addition to the per-request spans. Traces grow large; keep it off for
// full-figure runs.
func (t *Telemetry) EnableDetail() *Telemetry {
	t.c.EnableDetail()
	return t
}

// WithTelemetry attaches a collector to the testbed: every simulation it
// runs records into tel.
func WithTelemetry(tel *Telemetry) Option {
	return func(t *Testbed) {
		if tel != nil {
			t.runner.Telemetry = tel.c
		}
	}
}

// SelfProfile is the aggregated simulator self-profile: events
// executed, event-heap high-water, cancel sweeps, memo-cache traffic
// and worker-pool fan-out across every simulation of the testbeds a
// Profiler is attached to.
type SelfProfile = core.SelfProfile

// MetricValue is one exported metric from a registry snapshot.
type MetricValue = obs.MetricValue

// Profiler collects simulator self-profiling from every testbed it is
// attached to — the "how hard did the simulator work" counterpart of
// Telemetry's "what did the model do". All counters are virtual-state
// only, so a sequential profile is byte-identical across runs; under
// -j>1 the memo cache's duplicate-work trade makes aggregates
// scheduling-dependent. A nil or absent Profiler costs nothing.
type Profiler struct {
	p *core.Profiler
}

// NewProfiler returns an empty self-profiler.
func NewProfiler() *Profiler { return &Profiler{p: core.NewProfiler()} }

// Snapshot returns the headline aggregate.
func (p *Profiler) Snapshot() SelfProfile { return p.p.Snapshot() }

// WriteProfile writes the full metric snapshot as name-sorted JSON —
// the profile.json payload of `snicbench -profile`.
func (p *Profiler) WriteProfile(w io.Writer) error { return p.p.WriteProfile(w) }

// WithSelfProfile attaches a self-profiler to the testbed: every
// simulation's engine counters, every memo-cache lookup and every
// worker-pool fan-out is folded into prof.
func WithSelfProfile(prof *Profiler) Option {
	return func(t *Testbed) {
		if prof != nil {
			t.runner.SetProfiler(prof.p)
		}
	}
}

// WithInvariantChecks enables checked execution: every simulation
// validates the engine's physical laws online — request and byte
// conservation, causality, clock monotonicity, queue sanity — and
// panics with a typed *invariant.Violation carrying the run label,
// virtual time, station and request the moment one breaks. Results are
// byte-identical with checks on or off (the checker is a pure observer);
// the cost is bookkeeping proportional to events, so keep it off for
// timing-sensitive benchmarking and on everywhere else. See
// internal/invariant and `snicbench -check`.
func WithInvariantChecks() Option {
	return func(t *Testbed) { t.runner.Checks = true }
}

// WriteTrace writes all collected runs as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func (t *Telemetry) WriteTrace(w io.Writer) error { return t.c.WriteTrace(w) }

// WriteMetricsCSV writes every sampled series as long-format CSV.
func (t *Telemetry) WriteMetricsCSV(w io.Writer) error { return t.c.WriteMetricsCSV(w) }

// WriteMetricsJSON writes every sampled series and counter as JSON.
func (t *Telemetry) WriteMetricsJSON(w io.Writer) error { return t.c.WriteMetricsJSON(w) }

// WriteManifests writes the per-run manifests as JSON.
func (t *Telemetry) WriteManifests(w io.Writer) error { return t.c.WriteManifests(w) }

// RenderManifests writes the per-run manifests as a text table.
func (t *Telemetry) RenderManifests(w io.Writer) { report.Manifests(w, t.c.Manifests()) }

// Totals reports how many runs, request spans and total spans the
// collector holds.
func (t *Telemetry) Totals() (runs, requests, spans int) { return t.c.Totals() }

// NewTestbed returns a testbed with the paper's §3.1 configuration —
// 8 host cores vs the 8-core SNIC, 2 accelerator staging cores,
// 100 GbE — adjusted by any options:
//
//	tb := snic.NewTestbed(
//		snic.WithHostCores(8),
//		snic.WithParallelism(runtime.NumCPU()),
//		snic.WithSeed(7),
//	)
func NewTestbed(opts ...Option) *Testbed {
	t := &Testbed{runner: core.NewRunner()}
	for _, opt := range opts {
		opt(t)
	}
	return t
}

// Simulations returns how many simulations the testbed has actually
// executed; memo-cache hits don't count.
func (t *Testbed) Simulations() uint64 { return t.runner.Sims() }

// CacheStats reports measurement memo-cache hits and misses.
func (t *Testbed) CacheStats() (hits, misses uint64) { return t.runner.CacheStats() }

// MaxThroughput finds a benchmark's maximum sustainable throughput on a
// platform and measures p99 latency and system-wide power there — the
// paper's §4 methodology.
func (t *Testbed) MaxThroughput(b *Benchmark, p Platform) Measurement {
	return t.runner.MaxThroughput(b, p)
}

// Run measures one fixed operating point (offered rate in Gb/s of
// request payload; ignored by closed-loop benchmarks).
//
// Deprecated: Run is the point-workload adapter kept for
// compatibility; new code should build a Workload (WorkloadPoint) and
// call Execute, which validates inputs with typed errors. Results are
// byte-identical either way.
func (t *Testbed) Run(b *Benchmark, p Platform, offeredGbps float64, requests int) Measurement {
	opts := core.DefaultRunOpts()
	if requests > 0 {
		opts.Requests = requests
	}
	opts.OfferedGbps = offeredGbps
	return t.runner.Run(b, p, opts)
}

// Fig4 reproduces the paper's headline figure over the whole catalog.
// This runs dozens of max-throughput searches; expect tens of seconds.
func (t *Testbed) Fig4() []Fig4Row { return t.runner.Fig4() }

// Fig4For reproduces Fig. 4 for a subset.
func (t *Testbed) Fig4For(benchmarks []*Benchmark) []Fig4Row {
	return t.runner.Fig4For(benchmarks)
}

// Fig5 sweeps REM offered rates (Gb/s) and returns the three curves.
func (t *Testbed) Fig5(rates []float64) []Fig5Point {
	if rates == nil {
		rates = core.DefaultFig5Rates()
	}
	return t.runner.Fig5(rates)
}

// Table4 replays the hyperscaler trace through REM on the host and the
// SNIC accelerator (§5.1).
func (t *Testbed) Table4() []TraceReplayResult {
	return t.runner.Table4(core.DefaultTable4Config())
}

// HyperscalerTrace returns the Fig. 7 synthetic datacenter trace.
func HyperscalerTrace() *trace.HyperscalerTrace {
	return trace.NewHyperscalerTrace(trace.DefaultHyperscalerConfig())
}

// ---- TCO (§5.2) ----

// TCORow is one Table 5 column.
type TCORow = tco.Row

// TCOInput is a fleet measurement for the TCO model.
type TCOInput = tco.AppMeasurement

// PaperTable5 reproduces Table 5 from the published inputs.
func PaperTable5() []TCORow { return tco.PaperTable5() }

// AnalyzeTCO computes a Table 5 column from your own measurements using
// the paper's cost parameters.
func AnalyzeTCO(app string, snicFleet, nicFleet TCOInput) TCORow {
	return tco.PaperCostModel().Analyze(app, snicFleet, nicFleet)
}

// ---- Strategies (§5.3) ----

// Advisor predicts per-platform behaviour and recommends offload
// decisions under an SLO (Strategy 2).
type Advisor = core.Advisor

// Recommendation is the advisor's output.
type Recommendation = core.Recommendation

// NewAdvisor returns an advisor over a testbed built from the options
// (none: the paper's default configuration).
func NewAdvisor(opts ...Option) *Advisor {
	return core.NewAdvisorWith(NewTestbed(opts...).runner)
}

// LoadBalancer splits traffic between the SNIC accelerator and host
// (Strategy 3).
type LoadBalancer = core.LoadBalancer

// BalancedResult reports a balanced replay.
type BalancedResult = core.BalancedResult

// SoftwareBalancer returns the paper's prototyped software balancer
// (per-packet monitoring cost on the SNIC cores, coarse reaction).
func SoftwareBalancer() LoadBalancer { return core.DefaultLoadBalancer() }

// HardwareBalancer returns the paper's proposed hardware-assisted
// balancer (free monitoring, per-packet redirection).
func HardwareBalancer() LoadBalancer { return core.HWLoadBalancer() }

// RunBalanced replays a rate trace through the balancer.
//
// Deprecated: RunBalanced is the balanced-workload adapter kept for
// compatibility; new code should build a Workload (WorkloadBalanced)
// and call Execute. Results are byte-identical either way.
func (t *Testbed) RunBalanced(lb LoadBalancer, tr *trace.HyperscalerTrace, hostCores int, seed uint64) BalancedResult {
	return t.runner.RunBalanced(lb, tr, hostCores, seed)
}

// BurstyTrace builds a synthetic bursty rate trace for balancer studies.
func BurstyTrace(baseGbps, burstGbps float64, points, burstEvery int, interval Duration) *trace.HyperscalerTrace {
	return core.BurstyTrace(baseGbps, burstGbps, points, burstEvery, interval)
}

// ---- Fault injection & failover (robustness experiments) ----

// FaultScenario is a named fault plan replayed against a trace.
type FaultScenario = core.FaultScenario

// FaultResult is one fault-scenario replay report.
type FaultResult = core.FaultResult

// FailoverPolicy carries the timeout/retry/backoff/watermark knobs.
type FailoverPolicy = core.FailoverPolicy

// HealthRouter is the health-aware extension of the §5.3 load balancer.
type HealthRouter = core.HealthRouter

// DefaultFailoverPolicy returns the trace-replay-tuned policy.
func DefaultFailoverPolicy() FailoverPolicy { return core.DefaultFailoverPolicy() }

// NewHealthRouter combines a balancer with a failover policy.
func NewHealthRouter(lb LoadBalancer, pol FailoverPolicy) *HealthRouter {
	return core.NewHealthRouter(lb, pol)
}

// DefaultFaultScenarios returns the three stock scenarios (accelerator
// crash, link flap, SNIC core throttle) placed relative to a trace span.
func DefaultFaultScenarios(span Duration) []FaultScenario {
	return core.DefaultFaultScenarios(span)
}

// RunFaulted replays a trace while a fault scenario runs, with failover.
// A scenario with an empty plan is the fault-free baseline.
//
// Deprecated: RunFaulted is the faulted-workload adapter kept for
// compatibility; new code should build a Workload (WorkloadFaulted)
// and call Execute. Results are byte-identical either way.
func (t *Testbed) RunFaulted(scn FaultScenario, hr *HealthRouter, tr *trace.HyperscalerTrace, hostCores int, seed uint64) FaultResult {
	return t.runner.RunFaulted(scn, hr, tr, hostCores, seed)
}

// RunFaultedSet replays every scenario, fanning them across the
// testbed's parallelism; mkRouter builds a fresh router per scenario so
// no router state is shared. Results merge in scenario order.
func (t *Testbed) RunFaultedSet(scns []FaultScenario, mkRouter func() *HealthRouter, tr *trace.HyperscalerTrace, hostCores int, seed uint64) []FaultResult {
	return t.runner.RunFaultedSet(scns, mkRouter, tr, hostCores, seed)
}

// ---- Rendering ----

// RenderFig4 writes the Fig. 4 tables.
func RenderFig4(w io.Writer, rows []Fig4Row) { report.Fig4(w, rows) }

// RenderFig5 writes the Fig. 5 series.
func RenderFig5(w io.Writer, points []Fig5Point) { report.Fig5(w, points) }

// RenderFig6 writes the Fig. 6 power/efficiency table.
func RenderFig6(w io.Writer, rows []Fig4Row) { report.Fig6(w, rows) }

// RenderFig7 writes the Fig. 7 sparkline.
func RenderFig7(w io.Writer, tr *trace.HyperscalerTrace) { report.Fig7(w, tr.Series(), 96) }

// RenderTable4 writes the Table 4 comparison.
func RenderTable4(w io.Writer, rows []TraceReplayResult) { report.Table4(w, rows) }

// RenderTable5 writes the Table 5 TCO analysis.
func RenderTable5(w io.Writer, rows []TCORow) { report.Table5(w, rows) }

// RenderFaults writes the fault-scenario comparison table.
func RenderFaults(w io.Writer, baseline FaultResult, rows []FaultResult) {
	report.Faults(w, baseline, rows)
}

// FunctionalReport summarizes an execution-driven verification run.
type FunctionalReport = core.FunctionalReport

// RunFunctional executes n REAL operations of a benchmark's actual
// implementation (the matcher matches, Deflate deflates, the KVS stores)
// and verifies every output against an independent oracle. Zero failures
// is the expected result of a correct build.
func RunFunctional(function, variant string, n int, seed uint64) (FunctionalReport, error) {
	return core.RunFunctional(function, variant, n, seed)
}

// Version identifies the testbed release.
const Version = "1.0.0"

// Describe summarizes a benchmark for help output.
func Describe(b *Benchmark) string {
	return fmt.Sprintf("%s [%s, %s] platforms=%v", b.Name(), b.Stack, b.Category, b.Platforms)
}
