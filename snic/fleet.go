package snic

import (
	"io"

	"repro/internal/fleet"
	"repro/internal/report"
)

// Fleet-level simulation (DESIGN.md S22): a datacenter of servers built
// from the single-server models, a dispatcher with pluggable placement
// policies, and the provisioning search that generalizes Table 5.

// Fleet types re-exported from internal/fleet.
type (
	FleetClass      = fleet.Class
	FleetConfig     = fleet.Config
	FleetOutage     = fleet.Outage
	FleetPolicy     = fleet.Policy
	FleetResult     = fleet.Result
	FleetServer     = fleet.ServerResult
	ProvisionSpec   = fleet.ProvisionSpec
	ProvisionOpts   = fleet.ProvisionOpts
	ProvisionResult = fleet.ProvisionResult
)

// Dispatch policies.
const (
	RoundRobin       = fleet.RoundRobin
	LeastOutstanding = fleet.LeastOutstanding
	SLOAware         = fleet.SLOAware
	AdvisorDriven    = fleet.AdvisorDriven
)

// FleetPolicies lists every dispatch policy in presentation order.
func FleetPolicies() []FleetPolicy { return fleet.Policies() }

// NICHosts, SNICCPUs and SNICAccels build the three standard server
// classes of a fleet mix.
func NICHosts(n int) FleetClass   { return fleet.NICHosts(n) }
func SNICCPUs(n int) FleetClass   { return fleet.SNICCPUs(n) }
func SNICAccels(n int) FleetClass { return fleet.SNICAccels(n) }

// RunFleet simulates a fleet on this testbed: dispatches the trace
// across the servers under the configured policy, replays every server
// (in parallel, memoized, byte-identical at any parallelism) and rolls
// up throughput, SLO attainment, utilization, power, energy and 5-year
// TCO.
func (t *Testbed) RunFleet(cfg FleetConfig) (FleetResult, error) {
	return fleet.Run(t.runner, cfg)
}

// Provision binary-searches the minimum server count of each flavour
// (SNIC-side platform vs NIC-only host) that serves the spec's target
// load, and prices both fleets.
func (t *Testbed) Provision(spec ProvisionSpec, opts ProvisionOpts) (ProvisionResult, error) {
	return fleet.Provision(t.runner, spec, opts)
}

// ProvisionTable5 provisions the paper's four Table 5 applications.
func (t *Testbed) ProvisionTable5(opts ProvisionOpts) ([]ProvisionResult, error) {
	return fleet.ProvisionTable5(t.runner, opts)
}

// Table5Specs returns the paper's four provisioning applications.
func Table5Specs() []ProvisionSpec { return fleet.Table5Specs() }

// RenderFleet writes fleet results as a policy-comparison table.
func RenderFleet(w io.Writer, rows []FleetResult) { report.Fleet(w, rows) }

// RenderFleetServers writes one fleet run's per-class server detail.
func RenderFleetServers(w io.Writer, r FleetResult) { report.FleetServers(w, r) }

// RenderProvision writes the provisioning-search table.
func RenderProvision(w io.Writer, rows []ProvisionResult) { report.Provision(w, rows) }

// RenderManifestsFor writes the manifests of the named telemetry runs
// only — e.g. a fleet result's ServerRunIDs — in export order.
func (t *Telemetry) RenderManifestsFor(w io.Writer, ids []uint64) {
	report.Manifests(w, t.c.ManifestsFor(ids))
}
