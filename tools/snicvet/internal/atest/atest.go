// Package atest is a self-contained stand-in for
// golang.org/x/tools/go/analysis/analysistest: it typechecks a fixture
// package under testdata, runs analyzers over it through the same
// lint.Run path the driver uses (so suppression directives behave
// identically), and diffs the findings against `// want "regexp"`
// comments in the fixture source.
//
// Imports in fixtures — standard library or this module's packages —
// are resolved by asking the go command for export data, the same
// type information the vet-tool protocol hands the real driver.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/tools/snicvet/internal/analyzers"
	"repro/tools/snicvet/internal/lint"
)

var (
	exportMu    sync.Mutex
	exportFiles = map[string]string{} // import path -> export data file
)

// exportFile asks the go command where the compiled export data for an
// import path lives, building it if needed. Results are cached for the
// life of the test binary.
func exportFile(path string) (string, error) {
	exportMu.Lock()
	defer exportMu.Unlock()
	if f, ok := exportFiles[path]; ok {
		return f, nil
	}
	out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
	if err != nil {
		return "", fmt.Errorf("go list -export %s: %v", path, err)
	}
	f := strings.TrimSpace(string(out))
	if f == "" {
		return "", fmt.Errorf("no export data for %q", path)
	}
	exportFiles[path] = f
	return f, nil
}

// expectation is one `// want "regexp"` clause.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// wantRe matches the clause and its first quoted regexp; additional
// quoted strings after it are parsed by splitQuoted.
var wantRe = regexp.MustCompile(`want\s+(".*)$`)

// parseWants extracts expectations from a file's comments. A clause
// applies to the line its comment starts on and may carry several
// quoted regexps: // want "first" "second".
func parseWants(t *testing.T, fset *token.FileSet, f *ast.File) []*expectation {
	var wants []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			posn := fset.Position(c.Pos())
			for _, q := range splitQuoted(m[1]) {
				pat, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s: bad want clause %s: %v", posn, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", posn, pat, err)
				}
				wants = append(wants, &expectation{file: posn.Filename, line: posn.Line, re: re})
			}
		}
	}
	return wants
}

// splitQuoted returns the leading run of double-quoted Go strings in s.
func splitQuoted(s string) []string {
	var out []string
	for {
		s = strings.TrimLeft(s, " \t")
		if !strings.HasPrefix(s, `"`) {
			return out
		}
		end := 1
		for end < len(s) {
			if s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == '"' {
				break
			}
			end++
		}
		if end >= len(s) {
			return out
		}
		out = append(out, s[:end+1])
		s = s[end+1:]
	}
}

// parseDir parses the .go files directly in dir, in name order.
func parseDir(t *testing.T, fset *token.FileSet, dir string) []*ast.File {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	return files
}

// newInfo allocates the types.Info maps the analyzers rely on.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// compiledImporter resolves standard-library and module imports from
// the go command's export data.
func compiledImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, err := exportFile(path)
		if err != nil {
			return nil, err
		}
		return os.Open(f)
	})
}

// Load parses and typechecks the fixture package in dir.
func Load(t *testing.T, dir string) *lint.Unit {
	t.Helper()
	fset := token.NewFileSet()
	files := parseDir(t, fset, dir)
	tc := &types.Config{Importer: compiledImporter(fset)}
	info := newInfo()
	pkgPath := "snicvet.test/" + filepath.Base(dir)
	pkg, err := tc.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("typechecking fixture %s: %v", dir, err)
	}
	return &lint.Unit{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
}

// project loads a multi-package fixture: every subdirectory of root is
// one package, importable by its siblings as "snicvet.test/<base>/<sub>".
// Packages load lazily in dependency order; after each one typechecks,
// its facts are computed and round-tripped through the wire encoding
// into the shared FactDB — the same path the driver's vetx files take —
// so cross-package fact propagation behaves exactly as under go vet.
type project struct {
	t       *testing.T
	root    string
	base    string
	fset    *token.FileSet
	units   map[string]*lint.Unit
	order   []string
	loading map[string]bool
	facts   *lint.FactDB
}

// LoadProject typechecks the multi-package fixture rooted at dir and
// returns its units in dependency order plus the shared fact database.
func LoadProject(t *testing.T, dir string) ([]*lint.Unit, *lint.FactDB) {
	t.Helper()
	p := &project{
		t:       t,
		root:    dir,
		base:    "snicvet.test/" + filepath.Base(dir),
		fset:    token.NewFileSet(),
		units:   make(map[string]*lint.Unit),
		loading: make(map[string]bool),
		facts:   lint.NewFactDB(),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var subs []string
	for _, e := range entries {
		if e.IsDir() {
			subs = append(subs, e.Name())
		}
	}
	sort.Strings(subs)
	if len(subs) == 0 {
		t.Fatalf("no fixture packages in %s", dir)
	}
	for _, sub := range subs {
		p.ensure(p.base + "/" + sub)
	}
	units := make([]*lint.Unit, 0, len(p.order))
	for _, path := range p.order {
		units = append(units, p.units[path])
	}
	return units, p.facts
}

// ensure loads the fixture package at the given import path (and,
// recursively, the fixture packages it imports) exactly once.
func (p *project) ensure(path string) *types.Package {
	if u, ok := p.units[path]; ok {
		return u.Pkg
	}
	if p.loading[path] {
		p.t.Fatalf("fixture import cycle through %s", path)
	}
	p.loading[path] = true
	defer delete(p.loading, path)

	sub := strings.TrimPrefix(path, p.base+"/")
	files := parseDir(p.t, p.fset, filepath.Join(p.root, sub))
	compiled := compiledImporter(p.fset)
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if strings.HasPrefix(importPath, p.base+"/") {
			return p.ensure(importPath), nil
		}
		return compiled.Import(importPath)
	})
	tc := &types.Config{Importer: imp}
	info := newInfo()
	pkg, err := tc.Check(path, p.fset, files, info)
	if err != nil {
		p.t.Fatalf("typechecking fixture %s: %v", path, err)
	}
	u := &lint.Unit{Fset: p.fset, Files: files, Pkg: pkg, TypesInfo: info, Facts: p.facts}

	// Compute this package's facts against what its dependencies
	// published, then round-trip them through the vetx wire format.
	pf := analyzers.ComputeFacts(u, p.facts)
	data, err := pf.Encode()
	if err != nil {
		p.t.Fatalf("encoding facts for %s: %v", path, err)
	}
	decoded, err := lint.DecodeFacts(data)
	if err != nil {
		p.t.Fatalf("decoding facts for %s: %v", path, err)
	}
	p.facts.Add(decoded)

	p.units[path] = u
	p.order = append(p.order, path)
	return pkg
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Run loads the fixture package in dir, runs the analyzers, and
// reports any mismatch between findings and // want clauses.
func Run(t *testing.T, dir string, as ...*lint.Analyzer) {
	t.Helper()
	unit := Load(t, dir)
	findings, err := lint.Run(unit, as)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, f := range unit.Files {
		wants = append(wants, parseWants(t, unit.Fset, f)...)
	}
	diff(t, findings, wants)
}

// RunProject loads the multi-package fixture rooted at dir (see
// LoadProject), runs the analyzers over every package with the shared
// fact database attached, and diffs all findings against all // want
// clauses. This is how cross-package fact propagation is tested.
func RunProject(t *testing.T, dir string, as ...*lint.Analyzer) {
	t.Helper()
	units, _ := LoadProject(t, dir)
	var findings []lint.Finding
	var wants []*expectation
	for _, u := range units {
		fs, err := lint.Run(u, as)
		if err != nil {
			t.Fatal(err)
		}
		findings = append(findings, fs...)
		for _, f := range u.Files {
			wants = append(wants, parseWants(t, u.Fset, f)...)
		}
	}
	diff(t, findings, wants)
}

// diff matches findings against want clauses one-to-one and reports
// both unexpected findings and unmatched wants.
func diff(t *testing.T, findings []lint.Finding, wants []*expectation) {
	t.Helper()
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if w.used || w.file != f.Pos.Filename || w.line != f.Pos.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding [%s]: %s", f.Pos, f.Analyzer, f.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.re)
		}
	}
}
