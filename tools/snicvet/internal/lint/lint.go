// Package lint is a minimal, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough framework to write
// type-aware analyzers and run them over one typechecked compilation
// unit. The repository builds offline with a bare go.mod, so snicvet
// cannot vendor x/tools; the subset here (Analyzer, Pass, Diagnostic,
// suppression comments) is all the five snicvet analyzers need.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one analysis pass and the function that runs it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// "//snicvet:ignore <name> <reason>" suppression comments.
	// It must be a valid identifier.
	Name string

	// Doc is a one-paragraph description of what the analyzer checks
	// and why the invariant matters for the simulator.
	Doc string

	// Run executes the analyzer over one compilation unit.
	Run func(*Pass) error
}

// A Pass holds one typechecked compilation unit plus the reporting
// hooks for a single analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts holds the propagated per-function facts of the unit's
	// dependencies and of the unit itself (see facts.go). May be nil
	// when the driver runs without fact files.
	Facts *FactDB

	// Report delivers one diagnostic. Populated by the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding from one analyzer.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is a diagnostic tagged with the analyzer that produced it,
// as collected by Run.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// IgnorePrefix is the comment directive that suppresses a finding:
//
//	//snicvet:ignore <analyzer> <reason>
//
// The directive applies to findings on its own line (trailing comment)
// or on the statement beginning on the line immediately below
// (standalone comment line). When that statement spans several lines —
// a multi-line composite literal, wrapped call arguments — the
// suppression covers the whole statement, not just its first line.
// Statements with bodies (if/for/switch blocks, function declarations)
// are never extended: covering a whole block from one directive would
// hide unrelated findings. The analyzer field may be a comma-separated
// list of analyzer names or "all". A non-empty reason is mandatory: a
// suppression without a recorded justification is itself reported.
const IgnorePrefix = "//snicvet:ignore"

// suppression is one parsed ignore directive.
type suppression struct {
	analyzers map[string]bool // nil means "all"
	line      int
	// end is the last covered line: the end of the simple statement the
	// directive attaches to, or line+1 when none does.
	end int
}

// Suppressions indexes the ignore directives of one compilation unit.
type Suppressions struct {
	// byFile maps filename to the directives it contains.
	byFile map[string][]suppression
	// malformed collects directives missing a reason or analyzer list.
	malformed []Finding
}

// ParseSuppressions scans the comments of files for ignore directives.
func ParseSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{byFile: make(map[string][]suppression)}
	for _, f := range files {
		extents := stmtExtents(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, IgnorePrefix) {
					continue
				}
				posn := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, IgnorePrefix)
				fields := strings.Fields(rest)
				// fields[0] is the analyzer list, the remainder is the reason.
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Finding{
						Analyzer: "snicvet",
						Pos:      posn,
						Message: fmt.Sprintf("malformed %s directive: want %q",
							IgnorePrefix, IgnorePrefix+" <analyzer> <reason>"),
					})
					continue
				}
				sup := suppression{line: posn.Line, end: posn.Line + 1}
				// Attach to the statement starting on the directive's
				// line (trailing comment) or the next (standalone).
				if e := extents[posn.Line]; e > sup.end {
					sup.end = e
				}
				if e := extents[posn.Line+1]; e > sup.end {
					sup.end = e
				}
				if fields[0] != "all" {
					sup.analyzers = make(map[string]bool)
					for _, name := range strings.Split(fields[0], ",") {
						sup.analyzers[name] = true
					}
				}
				s.byFile[posn.Filename] = append(s.byFile[posn.Filename], sup)
			}
		}
	}
	return s
}

// stmtExtents maps each line on which a simple (body-less) statement or
// value spec begins to the last line of the widest such node. Control
// statements and declarations with blocks are excluded so a directive
// above `for` or `func` never blankets the whole body.
func stmtExtents(fset *token.FileSet, f *ast.File) map[int]int {
	extents := make(map[int]int)
	note := func(n ast.Node) {
		start := fset.Position(n.Pos()).Line
		end := fset.Position(n.End()).Line
		if end > extents[start] {
			extents[start] = end
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt, *ast.ExprStmt, *ast.ReturnStmt, *ast.DeferStmt,
			*ast.GoStmt, *ast.SendStmt, *ast.IncDecStmt, *ast.DeclStmt,
			*ast.ValueSpec:
			note(n)
		}
		return true
	})
	return extents
}

// Suppressed reports whether a finding by analyzer at posn is covered
// by a directive: same line, line above, or anywhere within the
// statement the directive attaches to.
func (s *Suppressions) Suppressed(analyzer string, posn token.Position) bool {
	for _, sup := range s.byFile[posn.Filename] {
		if posn.Line < sup.line || posn.Line > sup.end {
			continue
		}
		if sup.analyzers == nil || sup.analyzers[analyzer] {
			return true
		}
	}
	return false
}

// Unit is one compilation unit ready for analysis.
type Unit struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts carries the propagated facts of the unit's dependencies
	// plus the unit's own (computed before analysis). May be nil.
	Facts *FactDB

	// FileExempt, if non-nil, removes individual files from an
	// analyzer's view (e.g. _test.go files for wallclock). It receives
	// the analyzer name and the filename as recorded in the fileset.
	FileExempt func(analyzer, filename string) bool
}

// Run executes each analyzer over the unit, applies suppression
// directives, and returns the surviving findings sorted by position.
// Malformed directives are always reported.
func Run(u *Unit, analyzers []*Analyzer) ([]Finding, error) {
	sups := ParseSuppressions(u.Fset, u.Files)
	findings := append([]Finding(nil), sups.malformed...)
	for _, a := range analyzers {
		files := u.Files
		if u.FileExempt != nil {
			files = nil
			for _, f := range u.Files {
				if !u.FileExempt(a.Name, u.Fset.Position(f.Pos()).Filename) {
					files = append(files, f)
				}
			}
		}
		if len(files) == 0 {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     files,
			Pkg:       u.Pkg,
			TypesInfo: u.TypesInfo,
			Facts:     u.Facts,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			posn := u.Fset.Position(d.Pos)
			if sups.Suppressed(name, posn) {
				return
			}
			findings = append(findings, Finding{Analyzer: name, Pos: posn, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
