package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parse(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestParseSuppressionsMalformed(t *testing.T) {
	fset, f := parse(t, `package p

//snicvet:ignore wallclock
var a int

//snicvet:ignore
var b int

//snicvet:ignore floateq has a reason
var c int
`)
	s := ParseSuppressions(fset, []*ast.File{f})
	if len(s.malformed) != 2 {
		t.Fatalf("got %d malformed directives, want 2 (missing reasons)", len(s.malformed))
	}
	for _, m := range s.malformed {
		if !strings.Contains(m.Message, "malformed") {
			t.Errorf("malformed finding message %q should say so", m.Message)
		}
	}
	// The malformed directives must not suppress anything.
	if s.Suppressed("wallclock", token.Position{Filename: "fix.go", Line: 4}) {
		t.Error("reason-less directive must not suppress")
	}
	if !s.Suppressed("floateq", token.Position{Filename: "fix.go", Line: 10}) {
		t.Error("well-formed directive on the line above must suppress")
	}
}

func TestSuppressedScope(t *testing.T) {
	fset, f := parse(t, `package p

var a = 1 //snicvet:ignore floateq,unitcheck trailing directive with a reason

//snicvet:ignore all every analyzer silenced here
var b = 2
`)
	s := ParseSuppressions(fset, []*ast.File{f})
	at := func(line int) token.Position { return token.Position{Filename: "fix.go", Line: line} }

	if !s.Suppressed("floateq", at(3)) || !s.Suppressed("unitcheck", at(3)) {
		t.Error("listed analyzers should be suppressed on the directive line")
	}
	if s.Suppressed("wallclock", at(3)) {
		t.Error("unlisted analyzer should not be suppressed")
	}
	if !s.Suppressed("floateq", at(4)) {
		t.Error("directive should also cover the next line")
	}
	if !s.Suppressed("anything", at(6)) {
		t.Error(`"all" should suppress every analyzer on the following line`)
	}
	if s.Suppressed("floateq", at(7)) {
		t.Error("directive must not leak two lines down")
	}
	if s.Suppressed("floateq", token.Position{Filename: "other.go", Line: 3}) {
		t.Error("directives are scoped to their file")
	}
}

// TestSuppressedStatementExtent: a directive attaches to the whole
// statement below it, so findings inside a multi-line composite
// literal or wrapped call arguments are covered — but a directive above
// a statement with a body (for/if) must not blanket the body.
func TestSuppressedStatementExtent(t *testing.T) {
	fset, f := parse(t, `package p

func f() []int {
	//snicvet:ignore hotpath multi-line literal, covered in full
	xs := []int{
		1,
		2,
	}
	g( //snicvet:ignore hotpath wrapped args, covered in full
		1,
		2,
	)
	//snicvet:ignore maporder directive above a loop
	for range xs {
		g(1, 2)
	}
	return xs
}

func g(a, b int) {}
`)
	s := ParseSuppressions(fset, []*ast.File{f})
	at := func(line int) token.Position { return token.Position{Filename: "fix.go", Line: line} }

	for line := 5; line <= 8; line++ {
		if !s.Suppressed("hotpath", at(line)) {
			t.Errorf("line %d of the composite literal statement should be suppressed", line)
		}
	}
	for line := 9; line <= 12; line++ {
		if !s.Suppressed("hotpath", at(line)) {
			t.Errorf("line %d of the wrapped call should be suppressed", line)
		}
	}
	if s.Suppressed("hotpath", at(14)) {
		t.Error("suppression must end with its statement")
	}
	if !s.Suppressed("maporder", at(14)) {
		t.Error("directive above the for statement covers its first line")
	}
	if s.Suppressed("maporder", at(15)) {
		t.Error("directive above a block statement must not blanket its body")
	}
}

// TestFactsRoundTrip: facts survive the vetx wire format, encoding is
// deterministic, and changing a fact changes the bytes (which is what
// lets the go build cache invalidate importers).
func TestFactsRoundTrip(t *testing.T) {
	p := NewPackageFacts("repro/internal/leaf")
	p.Funcs["Stamp"] = FuncFact{ReadsWallClock: true, WallClockVia: "time.Now"}
	p.Funcs["(*T).Grow"] = FuncFact{Allocates: true, AllocatesVia: "append"}
	p.Funcs["Clean"] = FuncFact{} // empty: must be dropped from the wire form

	enc1, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(enc1) != string(enc2) {
		t.Fatal("encoding is not deterministic")
	}

	got, err := DecodeFacts(enc1)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Path != p.Path {
		t.Fatalf("decode lost the package path: %+v", got)
	}
	if f := got.Funcs["Stamp"]; !f.ReadsWallClock || f.WallClockVia != "time.Now" {
		t.Fatalf("Stamp fact did not round-trip: %+v", f)
	}
	if f := got.Funcs["(*T).Grow"]; !f.Allocates {
		t.Fatalf("method fact did not round-trip: %+v", f)
	}
	if _, ok := got.Funcs["Clean"]; ok {
		t.Fatal("empty fact entries must not reach the wire format")
	}

	// Changing a leaf fact must change the encoded bytes.
	p2 := NewPackageFacts("repro/internal/leaf")
	p2.Funcs["Stamp"] = FuncFact{ReadsWallClock: true, WallClockVia: "time.Now"}
	enc3, err := p2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(enc3) == string(enc1) {
		t.Fatal("different fact sets encoded to identical bytes")
	}

	// Legacy empty vetx files and foreign formats are tolerated.
	if pf, err := DecodeFacts(nil); err != nil || pf != nil {
		t.Fatalf("empty vetx: got %+v, %v", pf, err)
	}
	if pf, err := DecodeFacts([]byte("not a facts file")); err != nil || pf != nil {
		t.Fatalf("foreign vetx: got %+v, %v", pf, err)
	}
}

// TestRunReportsMalformedAndSorts drives Run end to end with a
// synthetic analyzer: malformed directives surface as findings, and
// output is ordered by position regardless of report order.
func TestRunReportsMalformedAndSorts(t *testing.T) {
	fset, f := parse(t, `package p

//snicvet:ignore wallclock
var a int

var b int
`)
	reversed := &Analyzer{
		Name: "rev",
		Doc:  "reports in reverse order",
		Run: func(p *Pass) error {
			decls := p.Files[0].Decls
			for i := len(decls) - 1; i >= 0; i-- {
				p.Reportf(decls[i].Pos(), "decl %d", i)
			}
			return nil
		},
	}
	findings, err := Run(&Unit{Fset: fset, Files: []*ast.File{f}}, []*Analyzer{reversed})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 3 {
		t.Fatalf("got %d findings, want 3 (2 decls + 1 malformed directive)", len(findings))
	}
	for i := 1; i < len(findings); i++ {
		if findings[i].Pos.Line < findings[i-1].Pos.Line {
			t.Fatalf("findings not sorted by line: %v", findings)
		}
	}
}

// TestRunFileExempt checks the per-analyzer file filter the driver
// uses for _test.go exemptions.
func TestRunFileExempt(t *testing.T) {
	fset, f := parse(t, "package p\nvar a int\n")
	hit := 0
	a := &Analyzer{
		Name: "counter",
		Doc:  "counts runs",
		Run:  func(p *Pass) error { hit++; return nil },
	}
	u := &Unit{
		Fset:       fset,
		Files:      []*ast.File{f},
		FileExempt: func(analyzer, filename string) bool { return analyzer == "counter" },
	}
	if _, err := Run(u, []*Analyzer{a}); err != nil {
		t.Fatal(err)
	}
	if hit != 0 {
		t.Fatal("analyzer ran despite all its files being exempt")
	}
	u.FileExempt = nil
	if _, err := Run(u, []*Analyzer{a}); err != nil {
		t.Fatal(err)
	}
	if hit != 1 {
		t.Fatal("analyzer should run when no exemption applies")
	}
}
