package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parse(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestParseSuppressionsMalformed(t *testing.T) {
	fset, f := parse(t, `package p

//snicvet:ignore wallclock
var a int

//snicvet:ignore
var b int

//snicvet:ignore floateq has a reason
var c int
`)
	s := ParseSuppressions(fset, []*ast.File{f})
	if len(s.malformed) != 2 {
		t.Fatalf("got %d malformed directives, want 2 (missing reasons)", len(s.malformed))
	}
	for _, m := range s.malformed {
		if !strings.Contains(m.Message, "malformed") {
			t.Errorf("malformed finding message %q should say so", m.Message)
		}
	}
	// The malformed directives must not suppress anything.
	if s.Suppressed("wallclock", token.Position{Filename: "fix.go", Line: 4}) {
		t.Error("reason-less directive must not suppress")
	}
	if !s.Suppressed("floateq", token.Position{Filename: "fix.go", Line: 10}) {
		t.Error("well-formed directive on the line above must suppress")
	}
}

func TestSuppressedScope(t *testing.T) {
	fset, f := parse(t, `package p

var a = 1 //snicvet:ignore floateq,unitcheck trailing directive with a reason

//snicvet:ignore all every analyzer silenced here
var b = 2
`)
	s := ParseSuppressions(fset, []*ast.File{f})
	at := func(line int) token.Position { return token.Position{Filename: "fix.go", Line: line} }

	if !s.Suppressed("floateq", at(3)) || !s.Suppressed("unitcheck", at(3)) {
		t.Error("listed analyzers should be suppressed on the directive line")
	}
	if s.Suppressed("wallclock", at(3)) {
		t.Error("unlisted analyzer should not be suppressed")
	}
	if !s.Suppressed("floateq", at(4)) {
		t.Error("directive should also cover the next line")
	}
	if !s.Suppressed("anything", at(6)) {
		t.Error(`"all" should suppress every analyzer on the following line`)
	}
	if s.Suppressed("floateq", at(7)) {
		t.Error("directive must not leak two lines down")
	}
	if s.Suppressed("floateq", token.Position{Filename: "other.go", Line: 3}) {
		t.Error("directives are scoped to their file")
	}
}

// TestRunReportsMalformedAndSorts drives Run end to end with a
// synthetic analyzer: malformed directives surface as findings, and
// output is ordered by position regardless of report order.
func TestRunReportsMalformedAndSorts(t *testing.T) {
	fset, f := parse(t, `package p

//snicvet:ignore wallclock
var a int

var b int
`)
	reversed := &Analyzer{
		Name: "rev",
		Doc:  "reports in reverse order",
		Run: func(p *Pass) error {
			decls := p.Files[0].Decls
			for i := len(decls) - 1; i >= 0; i-- {
				p.Reportf(decls[i].Pos(), "decl %d", i)
			}
			return nil
		},
	}
	findings, err := Run(&Unit{Fset: fset, Files: []*ast.File{f}}, []*Analyzer{reversed})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 3 {
		t.Fatalf("got %d findings, want 3 (2 decls + 1 malformed directive)", len(findings))
	}
	for i := 1; i < len(findings); i++ {
		if findings[i].Pos.Line < findings[i-1].Pos.Line {
			t.Fatalf("findings not sorted by line: %v", findings)
		}
	}
}

// TestRunFileExempt checks the per-analyzer file filter the driver
// uses for _test.go exemptions.
func TestRunFileExempt(t *testing.T) {
	fset, f := parse(t, "package p\nvar a int\n")
	hit := 0
	a := &Analyzer{
		Name: "counter",
		Doc:  "counts runs",
		Run:  func(p *Pass) error { hit++; return nil },
	}
	u := &Unit{
		Fset:       fset,
		Files:      []*ast.File{f},
		FileExempt: func(analyzer, filename string) bool { return analyzer == "counter" },
	}
	if _, err := Run(u, []*Analyzer{a}); err != nil {
		t.Fatal(err)
	}
	if hit != 0 {
		t.Fatal("analyzer ran despite all its files being exempt")
	}
	u.FileExempt = nil
	if _, err := Run(u, []*Analyzer{a}); err != nil {
		t.Fatal(err)
	}
	if hit != 1 {
		t.Fatal("analyzer should run when no exemption applies")
	}
}
