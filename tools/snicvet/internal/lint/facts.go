package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/types"
)

// Per-function facts, propagated bottom-up over the call graph and
// serialized through the vet-tool "vetx" fact files. The go command
// runs the tool over every dependency before the package that imports
// it and chains the resulting vetx files through the build cache, so a
// fact computed for a leaf helper is visible — and cache-invalidated —
// wherever the helper is called, however many packages away.
//
// Facts make the determinism analyzers transitive: a time.Now laundered
// through three helpers is reported at the model-code call site, not
// just at the read. A fact is cleared at its root when the root is
// suppressed with a //snicvet:ignore directive, so one justified
// suppression silences the whole downstream chain — reports are driven
// by facts, not by line matching.

// FuncFact is the fact set of one function or method. The Via strings
// carry a representative provenance chain ("helper.Label → leaf.Stamp →
// time.Now") for diagnostics; they do not affect fact identity.
type FuncFact struct {
	// ReadsWallClock: the function (or something it calls) reads or
	// schedules against the host clock via the time package.
	ReadsWallClock bool   `json:"wallclock,omitempty"`
	WallClockVia   string `json:"wallclock_via,omitempty"`

	// UsesUnseededRand: the function reaches math/rand (v1 or v2).
	UsesUnseededRand bool   `json:"rand,omitempty"`
	RandVia          string `json:"rand_via,omitempty"`

	// MapOrderEscapes: the function returns data whose order depends on
	// map iteration (an unsorted collect inside a map range).
	MapOrderEscapes bool   `json:"maporder,omitempty"`
	MapOrderVia     string `json:"maporder_via,omitempty"`

	// Allocates: the function may allocate on the heap. Consumed by the
	// hotpath analyzer at call sites inside //snicvet:hotpath functions.
	Allocates    bool   `json:"allocates,omitempty"`
	AllocatesVia string `json:"allocates_via,omitempty"`
}

// Empty reports whether no fact bit is set.
func (f FuncFact) Empty() bool {
	return !f.ReadsWallClock && !f.UsesUnseededRand && !f.MapOrderEscapes && !f.Allocates
}

// PackageFacts is the fact set of one package, keyed by FuncKey.
type PackageFacts struct {
	Schema int                 `json:"schema"`
	Path   string              `json:"path"`
	Funcs  map[string]FuncFact `json:"funcs,omitempty"`
}

// FactSchema versions the vetx wire format; bump on incompatible change.
const FactSchema = 1

// factsMagic heads every snicvet vetx file so foreign or legacy (empty)
// fact files are recognized and skipped rather than misparsed.
const factsMagic = "snicvet-facts\n"

// NewPackageFacts returns an empty fact set for the package path.
func NewPackageFacts(path string) *PackageFacts {
	return &PackageFacts{Schema: FactSchema, Path: path, Funcs: make(map[string]FuncFact)}
}

// Encode serializes the facts deterministically: identical fact sets
// produce identical bytes (encoding/json writes map keys sorted), so
// the vetx file — and through it the go build cache key of every
// importer — changes exactly when the facts change.
func (p *PackageFacts) Encode() ([]byte, error) {
	// Drop all-empty entries so incidental bookkeeping never perturbs
	// the bytes importers hash.
	for k, f := range p.Funcs {
		if f.Empty() {
			delete(p.Funcs, k)
		}
	}
	body, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("lint: encoding facts for %s: %w", p.Path, err)
	}
	return append([]byte(factsMagic), body...), nil
}

// DecodeFacts parses an encoded fact file. Empty input (the pre-fact
// vetx files, and std-library placeholders) and foreign formats yield
// (nil, nil): no facts, not an error.
func DecodeFacts(data []byte) (*PackageFacts, error) {
	if len(data) == 0 || !bytes.HasPrefix(data, []byte(factsMagic)) {
		return nil, nil
	}
	p := new(PackageFacts)
	if err := json.Unmarshal(data[len(factsMagic):], p); err != nil {
		return nil, fmt.Errorf("lint: decoding facts: %w", err)
	}
	if p.Schema != FactSchema {
		// A schema bump changes the tool binary and with it the -V=full
		// cache key, so stale files should not survive; tolerate them
		// anyway (facts are an optimization, not a soundness input).
		return nil, nil
	}
	return p, nil
}

// FactDB indexes the fact sets of a unit's dependencies (and, once
// computed, the unit itself) by package path.
type FactDB struct {
	pkgs map[string]*PackageFacts
}

// NewFactDB returns an empty database.
func NewFactDB() *FactDB {
	return &FactDB{pkgs: make(map[string]*PackageFacts)}
}

// Add registers a package's facts, replacing any previous entry.
func (db *FactDB) Add(p *PackageFacts) {
	if p != nil {
		db.pkgs[p.Path] = p
	}
}

// Package returns the facts recorded for an import path, or nil.
func (db *FactDB) Package(path string) *PackageFacts {
	if db == nil {
		return nil
	}
	return db.pkgs[path]
}

// Lookup returns the fact set of a resolved function, if its package's
// facts are loaded.
func (db *FactDB) Lookup(fn *types.Func) (FuncFact, bool) {
	if db == nil || fn == nil || fn.Pkg() == nil {
		return FuncFact{}, false
	}
	p := db.pkgs[fn.Pkg().Path()]
	if p == nil {
		return FuncFact{}, false
	}
	f, ok := p.Funcs[FuncKey(fn)]
	return f, ok
}

// FuncKey is the stable per-package identifier facts are keyed by:
// "Name" for functions, "(Recv).Name" for methods, with the receiver
// printed package-locally ("(*Engine).At"). Generic instantiations key
// as their origin.
func FuncKey(fn *types.Func) string {
	fn = fn.Origin()
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		recv := types.TypeString(sig.Recv().Type(), func(*types.Package) string { return "" })
		return "(" + recv + ")." + fn.Name()
	}
	return fn.Name()
}

// FuncDisplay renders a function for diagnostics and Via chains:
// "sim.(*Engine).At", "leaf.Stamp".
func FuncDisplay(fn *types.Func) string {
	key := FuncKey(fn)
	if fn.Pkg() == nil {
		return key
	}
	return fn.Pkg().Name() + "." + key
}
