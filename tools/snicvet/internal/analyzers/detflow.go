package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/snicvet/internal/lint"
)

// Detflow is the determinism taint analyzer: a per-function dataflow
// pass from nondeterminism sources to output-order-sensitive sinks.
//
// Sources: map range variables, sync.Map iteration callbacks, wall
// clock reads, math/rand draws — directly or through any call whose
// propagated fact (ReadsWallClock / UsesUnseededRand / MapOrderEscapes)
// says it launders one of them.
//
// Sinks: io.Writer writes, the fmt/log emit families, calls into the
// telemetry (internal/obs) and report layers and testing helpers,
// memoization-key construction in internal/core, and stores to exported
// fields of Measurement/Result types (the structs exporters serialize).
//
// Two rules fire:
//   - value taint: a tainted value reaches a sink argument or an
//     exported result field;
//   - order taint: a sink is called inside a map (or sync.Map)
//     iteration body, so the sink's own call order is nondeterministic
//     regardless of its arguments.
//
// The analysis is intra-procedural and flow-insensitive by design: an
// object passed to sort/slices anywhere in the function counts as
// sanitized (matching maporder's collect-then-sort idiom). This pass
// subsumes and retires the ad-hoc emission sink list maporder carried
// through snicvet v1.
var Detflow = &lint.Analyzer{
	Name: "detflow",
	Doc: "track nondeterminism taint (map order, wall clock, unseeded rand) " +
		"from sources to output sinks: writers, telemetry, memo keys, result fields",
	Run: runDetflow,
}

// emitFuncs lists package-level functions that write directly to a
// stream; an emission with tainted data or inside map iteration makes
// output bytes nondeterministic.
var emitFuncs = map[string]map[string]bool{
	"fmt": {
		"Print": true, "Printf": true, "Println": true,
		"Fprint": true, "Fprintf": true, "Fprintln": true,
	},
	"log": {
		"Print": true, "Printf": true, "Println": true,
		"Fatal": true, "Fatalf": true, "Fatalln": true,
		"Panic": true, "Panicf": true, "Panicln": true,
	},
}

// sinkPkgs are packages whose functions and methods record or emit in
// call order.
var sinkPkgs = map[string]bool{
	"repro/internal/obs":    true,
	"repro/internal/report": true,
	"testing":               true,
}

// memoKeyFuncs are internal/core's memoization-key constructors: a
// tainted fragment in a memo key makes cache identity nondeterministic,
// which silently breaks replay dedup across runs.
var memoKeyFuncs = map[string]bool{
	"cacheKey": true, "runKey": true, "replayKey": true, "serverKey": true,
	"pipelineKey": true, "offloadKey": true, "traceFingerprint": true,
}

// memoKeyPkg is where the memo-key constructors live.
const memoKeyPkg = "repro/internal/core"

// ioWriterIface is a structural io.Writer, built by hand so the
// analyzer needs no dependency on the io package's export data.
var ioWriterIface = func() *types.Interface {
	errType := types.Universe.Lookup("error").Type()
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(
			types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
			types.NewVar(token.NoPos, nil, "err", errType)),
		false)
	iface := types.NewInterfaceType([]*types.Func{types.NewFunc(token.NoPos, nil, "Write", sig)}, nil)
	iface.Complete()
	return iface
}()

// writerMethods are the io.Writer-family method names treated as sinks
// when the receiver implements io.Writer.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func runDetflow(pass *lint.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			newTaintState(pass, fd).run()
		}
	}
	return nil
}

// region is one lexical range whose statement order depends on map
// iteration.
type region struct {
	from, to token.Pos
	desc     string
}

// taintState is the per-function analysis state.
type taintState struct {
	pass *lint.Pass
	fd   *ast.FuncDecl
	// tainted maps an object to a short description of its taint source.
	tainted map[types.Object]string
	// sanitized holds objects sorted anywhere in the function; they never
	// acquire taint, so values derived from them stay clean too.
	sanitized map[types.Object]bool
	regions   []region
}

func newTaintState(pass *lint.Pass, fd *ast.FuncDecl) *taintState {
	return &taintState{
		pass: pass, fd: fd,
		tainted:   make(map[types.Object]string),
		sanitized: make(map[types.Object]bool),
	}
}

func (ts *taintState) run() {
	// Sanitized objects are collected before seeding: sanitization is
	// flow-insensitive, so a sorted slice must stay clean through the
	// whole fixpoint — clearing it afterwards would leave stale taint on
	// everything derived from it in between.
	ts.collectSanitized()
	ts.collectSources()
	ts.propagate()
	ts.checkSinks()
}

// collectSources seeds taint from map ranges and sync.Map iteration and
// records their bodies as order regions.
func (ts *taintState) collectSources() {
	info := ts.pass.TypesInfo
	ast.Inspect(ts.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			t := info.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			ts.regions = append(ts.regions, region{from: n.Body.Pos(), to: n.Body.End(), desc: "map iteration order"})
			ts.taintIdent(n.Key, "map iteration order")
			ts.taintIdent(n.Value, "map iteration order")
		case *ast.CallExpr:
			// sync.Map.Range(func(k, v any) bool { ... })
			fn := calleeFunc2(info, n)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != "Range" {
				return true
			}
			if len(n.Args) != 1 {
				return true
			}
			lit, ok := ast.Unparen(n.Args[0]).(*ast.FuncLit)
			if !ok {
				return true
			}
			ts.regions = append(ts.regions, region{from: lit.Body.Pos(), to: lit.Body.End(), desc: "sync.Map iteration order"})
			for _, field := range lit.Type.Params.List {
				for _, name := range field.Names {
					if obj := info.Defs[name]; obj != nil {
						ts.tainted[obj] = "sync.Map iteration order"
					}
				}
			}
		}
		return true
	})
}

func (ts *taintState) taintIdent(e ast.Expr, desc string) {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	ts.taintObj(ts.pass.TypesInfo.ObjectOf(id), desc)
}

// propagate runs assignments to a fixpoint: a variable assigned from a
// tainted expression becomes tainted.
func (ts *taintState) propagate() {
	info := ts.pass.TypesInfo
	for round := 0; round < 16; round++ {
		changed := false
		ast.Inspect(ts.fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, rhs := range n.Rhs {
						if desc := ts.exprTaint(rhs); desc != "" {
							changed = ts.taintLHS(n.Lhs[i], desc) || changed
						}
					}
				} else if len(n.Rhs) == 1 {
					if desc := ts.exprTaint(n.Rhs[0]); desc != "" {
						for _, lhs := range n.Lhs {
							changed = ts.taintLHS(lhs, desc) || changed
						}
					}
				}
			case *ast.ValueSpec:
				for i, v := range n.Values {
					desc := ts.exprTaint(v)
					if desc == "" {
						continue
					}
					if len(n.Values) == len(n.Names) {
						changed = ts.taintObj(info.Defs[n.Names[i]], desc) || changed
					} else {
						for _, name := range n.Names {
							changed = ts.taintObj(info.Defs[name], desc) || changed
						}
					}
				}
			case *ast.RangeStmt:
				// Ranging over a tainted collection taints its elements
				// (the slice came out of a map walk, say).
				if desc := ts.exprTaint(n.X); desc != "" {
					if id, ok := n.Key.(*ast.Ident); ok && id.Name != "_" {
						changed = ts.taintObj(info.ObjectOf(id), desc) || changed
					}
					if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
						changed = ts.taintObj(info.ObjectOf(id), desc) || changed
					}
				}
			}
			return true
		})
		if !changed {
			return
		}
	}
}

func (ts *taintState) taintLHS(lhs ast.Expr, desc string) bool {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
		return ts.taintObj(ts.pass.TypesInfo.ObjectOf(id), desc)
	}
	return false
}

func (ts *taintState) taintObj(obj types.Object, desc string) bool {
	if obj == nil || ts.sanitized[obj] {
		return false
	}
	if _, ok := ts.tainted[obj]; ok {
		return false
	}
	ts.tainted[obj] = desc
	return true
}

// exprTaint returns the taint description carried by an expression, or
// "". Unknown calls launder taint (their results are considered clean);
// value-preserving standard helpers and operators pass it through.
func (ts *taintState) exprTaint(e ast.Expr) string {
	info := ts.pass.TypesInfo
	switch e := e.(type) {
	case *ast.Ident:
		if obj := info.ObjectOf(e); obj != nil {
			return ts.tainted[obj]
		}
	case *ast.ParenExpr:
		return ts.exprTaint(e.X)
	case *ast.StarExpr:
		return ts.exprTaint(e.X)
	case *ast.UnaryExpr:
		return ts.exprTaint(e.X)
	case *ast.BinaryExpr:
		if d := ts.exprTaint(e.X); d != "" {
			return d
		}
		return ts.exprTaint(e.Y)
	case *ast.IndexExpr:
		return ts.exprTaint(e.X)
	case *ast.SliceExpr:
		return ts.exprTaint(e.X)
	case *ast.SelectorExpr:
		return ts.exprTaint(e.X)
	case *ast.TypeAssertExpr:
		return ts.exprTaint(e.X)
	case *ast.KeyValueExpr:
		return ts.exprTaint(e.Value)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if d := ts.exprTaint(el); d != "" {
				return d
			}
		}
	case *ast.CallExpr:
		return ts.callTaint(e)
	}
	return ""
}

// callTaint classifies a call's result taint: direct sources (wall
// clock, math/rand), fact-tainted callees, and transparent helpers
// that pass argument taint through.
func (ts *taintState) callTaint(call *ast.CallExpr) string {
	info := ts.pass.TypesInfo
	// Builtins and conversions pass taint through.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := info.Uses[id]; obj == nil || obj.Parent() == types.Universe || isTypeName(obj) {
			return ts.argsTaint(call)
		}
	}
	fn := calleeFunc2(info, call)
	if fn == nil || fn.Pkg() == nil {
		// Dynamic call or conversion through a selector type.
		if isConversion(info, call) {
			return ts.argsTaint(call)
		}
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallclockFuncs[fn.Name()] {
			return "wall-clock time"
		}
	case "math/rand", "math/rand/v2":
		return "unseeded randomness"
	}
	if f, ok := ts.pass.Facts.Lookup(fn); ok {
		switch {
		case f.MapOrderEscapes:
			return "map iteration order via " + lint.FuncDisplay(fn)
		case f.ReadsWallClock:
			return "wall-clock time via " + lint.FuncDisplay(fn)
		case f.UsesUnseededRand:
			return "unseeded randomness via " + lint.FuncDisplay(fn)
		}
	}
	if transparentCall(fn) {
		return ts.argsTaint(call)
	}
	return ""
}

func (ts *taintState) argsTaint(call *ast.CallExpr) string {
	for _, arg := range call.Args {
		if d := ts.exprTaint(arg); d != "" {
			return d
		}
	}
	return ""
}

// transparentCall lists standard helpers whose results are pure
// functions of their inputs, so taint flows through them.
func transparentCall(fn *types.Func) bool {
	switch fn.Pkg().Path() {
	case "fmt":
		switch fn.Name() {
		case "Sprint", "Sprintf", "Sprintln", "Errorf":
			return true
		}
	case "strings", "strconv", "bytes":
		return true
	}
	return false
}

func isTypeName(obj types.Object) bool {
	_, ok := obj.(*types.TypeName)
	return ok
}

// isConversion reports whether the call expression is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// collectSanitized marks objects that are sorted anywhere in the
// function — the collect-then-sort idiom makes their order canonical.
func (ts *taintState) collectSanitized() {
	info := ts.pass.TypesInfo
	ast.Inspect(ts.fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil {
						ts.sanitized[obj] = true
					}
				}
				return true
			})
		}
		return true
	})
}

// inRegion returns the description of the order region containing pos,
// or "".
func (ts *taintState) inRegion(pos token.Pos) string {
	for _, r := range ts.regions {
		if pos >= r.from && pos <= r.to {
			return r.desc
		}
	}
	return ""
}

// checkSinks walks the function reporting taint that reaches a sink and
// sinks called inside iteration regions.
func (ts *taintState) checkSinks() {
	info := ts.pass.TypesInfo
	ast.Inspect(ts.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			kind := ts.sinkKind(n)
			if kind == "" {
				return true
			}
			if desc := ts.inRegion(n.Pos()); desc != "" && kind != "memo key" {
				ts.pass.Reportf(n.Pos(),
					"%s inside map iteration emits in nondeterministic order (%s); sort the keys before emitting",
					kind, desc)
				return true
			}
			for _, arg := range n.Args {
				if desc := ts.exprTaint(arg); desc != "" {
					ts.pass.Reportf(n.Pos(),
						"determinism taint (%s) reaches %s; sort or derive the value deterministically before the sink",
						desc, kind)
					return true
				}
			}
		case *ast.AssignStmt:
			// Stores into exported fields of Measurement/Result types:
			// these structs are what exporters serialize.
			for i, lhs := range n.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok || !sel.Sel.IsExported() {
					continue
				}
				tname := resultTypeName(info, sel.X)
				if tname == "" {
					continue
				}
				var rhs ast.Expr
				if len(n.Lhs) == len(n.Rhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				if rhs == nil {
					continue
				}
				if desc := ts.exprTaint(rhs); desc != "" {
					ts.pass.Reportf(n.Pos(),
						"determinism taint (%s) stored into exported field %s.%s; results must be deterministic functions of the config",
						desc, tname, sel.Sel.Name)
				}
			}
		}
		return true
	})
}

// sinkKind classifies a call as a sink, returning a short description
// or "".
func (ts *taintState) sinkKind(call *ast.CallExpr) string {
	info := ts.pass.TypesInfo
	fn := calleeFunc2(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	pkg := fn.Pkg().Path()
	if names, ok := emitFuncs[pkg]; ok && names[fn.Name()] {
		return pkg + "." + fn.Name()
	}
	if sinkPkgs[pkg] {
		return "call to " + lint.FuncDisplay(fn)
	}
	if pkg == memoKeyPkg && memoKeyFuncs[fn.Name()] {
		return "memo key"
	}
	if recv := recvType(fn); recv != nil && writerMethods[fn.Name()] && types.Implements(recv, ioWriterIface) {
		return "write to " + types.TypeString(recv, types.RelativeTo(ts.pass.Pkg))
	}
	return ""
}

// recvType returns the receiver type of a method, or nil for plain functions.
func recvType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// resultTypeName returns the named type of e (through pointers) when
// its name marks an exported result struct: Measurement/Result suffixes.
func resultTypeName(info *types.Info, e ast.Expr) string {
	t := info.TypeOf(e)
	if t == nil {
		return ""
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	name := named.Obj().Name()
	if len(name) >= len("Result") && (hasSuffix(name, "Result") || hasSuffix(name, "Measurement")) {
		return name
	}
	return ""
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}
