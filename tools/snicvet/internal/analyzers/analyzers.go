// Package analyzers holds the snicvet analysis passes. Each analyzer
// turns one of the simulator's determinism or unit-safety conventions
// into a compile-time checked property; see DESIGN.md §9 for the
// rationale behind the suite.
package analyzers

import "repro/tools/snicvet/internal/lint"

// All returns the full snicvet suite in reporting order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{Wallclock, Seedrand, Maporder, Detflow, Hotpath, Unitcheck, Floateq}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *lint.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
