package analyzers

import (
	"go/ast"
	"go/types"
	"strconv"

	"repro/tools/snicvet/internal/lint"
)

// Seedrand forbids math/rand (v1 and v2) and package-level RNG state.
// Calibrated experiments stay stable across refactors only because
// every component owns a sim.RNG forked from the run's master seed:
// a shared or global stream means adding one component perturbs the
// draws of every other.
var Seedrand = &lint.Analyzer{
	Name: "seedrand",
	Doc: "forbid math/rand and global RNG state; use internal/sim's " +
		"per-component seeded RNG (sim.NewRNG / RNG.Fork) instead",
	Run: runSeedrand,
}

// simRNGType reports whether t is sim.RNG or *sim.RNG.
func simRNGType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "RNG" && obj.Pkg() != nil &&
		obj.Pkg().Path() == "repro/internal/sim"
}

func runSeedrand(pass *lint.Pass) error {
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s is forbidden in model code: its global stream breaks per-component determinism; use sim.NewRNG / RNG.Fork",
					path)
			}
		}
		// Transitive: helpers that reach math/rand through any number of
		// calls, reported at the model-code call site via facts.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc2(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() == pass.Pkg.Path() {
				return true
			}
			if f, ok := pass.Facts.Lookup(fn); ok && f.UsesUnseededRand {
				pass.Reportf(call.Pos(),
					"call to %s transitively draws from math/rand (%s); use sim.NewRNG / RNG.Fork per component",
					lint.FuncDisplay(fn), f.RandVia)
			}
			return true
		})
		// Package-level RNG variables are shared mutable streams: any
		// new caller perturbs every existing caller's draws.
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok.String() != "var" {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
					if !ok || !simRNGType(obj.Type()) {
						continue
					}
					pass.Reportf(name.Pos(),
						"package-level RNG %s is a shared stream; embed the RNG in the component and fork it from the run seed",
						name.Name)
				}
			}
		}
	}
	return nil
}
