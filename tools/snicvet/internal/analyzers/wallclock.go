package analyzers

import (
	"go/ast"
	"go/types"

	"repro/tools/snicvet/internal/lint"
)

// wallclockFuncs are the time-package functions that read or schedule
// against the host's wall clock. Pure conversions and formatting on
// time.Duration values (sim.Duration.Std, String) are fine: they carry
// no host-time dependence.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Wallclock forbids wall-clock time in simulator model code. Every
// state change in the models must happen at a virtual timestamp on the
// sim.Engine event loop; reading the host clock makes runs depend on
// scheduling and GC pauses and breaks byte-identical replay.
var Wallclock = &lint.Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/Sleep/After and friends in model packages; " +
		"use the sim.Engine virtual clock (sim.Time, sim.Duration) instead",
	Run: runWallclock,
}

func runWallclock(pass *lint.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				fn, ok := pass.TypesInfo.Uses[n.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
					return true
				}
				if wallclockFuncs[fn.Name()] {
					pass.Reportf(n.Pos(),
						"time.%s reads the wall clock; model code must use the sim.Engine virtual clock (sim.Time/sim.Duration)",
						fn.Name())
				}
			case *ast.CallExpr:
				// Transitive: a call to a function whose propagated fact
				// says it reaches the wall clock, however many helpers
				// deep. Same-package roots are reported directly above;
				// here only cross-package laundering is flagged.
				fn := calleeFunc2(pass.TypesInfo, n)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() == pass.Pkg.Path() {
					return true
				}
				if f, ok := pass.Facts.Lookup(fn); ok && f.ReadsWallClock {
					pass.Reportf(n.Pos(),
						"call to %s transitively reads the wall clock (%s); model code must use the sim.Engine virtual clock",
						lint.FuncDisplay(fn), f.WallClockVia)
				}
			}
			return true
		})
	}
	return nil
}
