package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/snicvet/internal/lint"
)

// Maporder flags `for range` over a map whose body feeds an
// order-sensitive sink: appending to a slice that is never sorted,
// writing through fmt/log/io.Writer/testing helpers, or calling into
// the telemetry (internal/obs) or report layers. Go randomizes map
// iteration order per process, so any of these silently breaks the
// byte-identical-output guarantee the golden-file diffs enforce.
//
// The canonical collect-keys-then-sort idiom is recognized: an append
// target that is later passed to a sort/slices call in the same
// function is not reported.
var Maporder = &lint.Analyzer{
	Name: "maporder",
	Doc: "flag map iteration that emits output or collects into an " +
		"unsorted slice; sort keys before emission to keep output byte-identical",
	Run: runMaporder,
}

// emitFuncs lists package-level functions that write directly to a
// stream. Sprint* variants are excluded: their results flow into
// expressions the append/collect rule already covers.
var emitFuncs = map[string]map[string]bool{
	"fmt": {
		"Print": true, "Printf": true, "Println": true,
		"Fprint": true, "Fprintf": true, "Fprintln": true,
	},
	"log": {
		"Print": true, "Printf": true, "Println": true,
		"Fatal": true, "Fatalf": true, "Fatalln": true,
		"Panic": true, "Panicf": true, "Panicln": true,
	},
}

// emitMethodPkgs are packages whose functions and methods record or
// emit in call order: anything reached from an unsorted map walk makes
// trace/report bytes depend on iteration order.
var emitMethodPkgs = map[string]bool{
	"repro/internal/obs":    true,
	"repro/internal/report": true,
	"testing":               true,
}

// ioWriterIface is a structural io.Writer, built by hand so the
// analyzer needs no dependency on the io package's export data.
var ioWriterIface = func() *types.Interface {
	errType := types.Universe.Lookup("error").Type()
	sig := types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(
			types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
			types.NewVar(token.NoPos, nil, "err", errType)),
		false)
	iface := types.NewInterfaceType([]*types.Func{types.NewFunc(token.NoPos, nil, "Write", sig)}, nil)
	iface.Complete()
	return iface
}()

func runMaporder(pass *lint.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncMapRanges(pass, fd.Body)
		}
	}
	return nil
}

// checkFuncMapRanges finds map-range statements anywhere in body
// (including nested function literals) and inspects their bodies for
// order-sensitive sinks. Sort calls are searched in the whole enclosing
// declaration, which is where the collect-then-sort idiom puts them.
func checkFuncMapRanges(pass *lint.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkRangeBody(pass, rs, body)
		return true
	})
}

func checkRangeBody(pass *lint.Pass, rs *ast.RangeStmt, enclosing *ast.BlockStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// append to a slice declared outside the loop, never sorted.
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
			target, ok := call.Args[0].(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.ObjectOf(target)
			if obj == nil || insideRange(obj.Pos(), rs) {
				return true
			}
			if !sortedLater(pass, obj, enclosing) {
				pass.Reportf(call.Pos(),
					"append to %s inside map iteration has nondeterministic order; sort the keys (or %s) before use",
					target.Name, target.Name)
			}
			return true
		}
		// Direct emission: fmt/log print family, testing helpers,
		// telemetry/report calls, io.Writer methods.
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		if names, ok := emitFuncs[pkg]; ok && names[fn.Name()] {
			pass.Reportf(call.Pos(),
				"%s.%s inside map iteration emits in nondeterministic order; sort the keys before emitting",
				pkg, fn.Name())
			return true
		}
		if emitMethodPkgs[pkg] {
			pass.Reportf(call.Pos(),
				"call to %s.%s inside map iteration records in nondeterministic order; sort the keys first",
				pkg, fn.Name())
			return true
		}
		if recv := recvType(fn); recv != nil && types.Implements(recv, ioWriterIface) &&
			(fn.Name() == "Write" || fn.Name() == "WriteString" || fn.Name() == "WriteByte" || fn.Name() == "WriteRune") {
			pass.Reportf(call.Pos(),
				"write to %v inside map iteration emits in nondeterministic order; sort the keys before writing", recv)
		}
		return true
	})
}

// calleeFunc resolves the called function or method, if statically known.
func calleeFunc(pass *lint.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// recvType returns the receiver type of a method, or nil for plain functions.
func recvType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// insideRange reports whether pos falls within the range statement.
func insideRange(pos token.Pos, rs *ast.RangeStmt) bool {
	return pos >= rs.Pos() && pos <= rs.End()
}

// sortedLater reports whether obj is passed (possibly nested in a
// conversion such as sort.Sort(byName(s))) to a sort or slices call
// anywhere in the enclosing function body.
func sortedLater(pass *lint.Pass, obj types.Object, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
