package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/snicvet/internal/lint"
)

// Maporder flags map-ordered data escaping into later use: appending
// inside a `for range` over a map to a slice that is never sorted, and
// — via propagated MapOrderEscapes facts — calls to functions that
// return such data. Go randomizes map iteration order per process, so
// either silently breaks the byte-identical-output guarantee the
// golden-file diffs enforce.
//
// The canonical collect-keys-then-sort idiom is recognized: an append
// target (or a call result) that is later passed to a sort/slices call
// in the same function is not reported.
//
// Emission sinks inside map iteration (fmt/log, io.Writer, telemetry,
// testing helpers) were part of this analyzer through snicvet v1; that
// ad-hoc sink list is retired in favour of the detflow taint pass,
// which tracks the same sinks plus value flow (see detflow.go and
// DESIGN.md §14).
var Maporder = &lint.Analyzer{
	Name: "maporder",
	Doc: "flag map iteration that collects into an unsorted slice, and " +
		"calls to functions whose results carry map iteration order",
	Run: runMaporder,
}

func runMaporder(pass *lint.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncMapRanges(pass, fd.Body)
			checkMapOrderedCalls(pass, fd.Body)
		}
	}
	return nil
}

// checkFuncMapRanges finds map-range statements anywhere in body
// (including nested function literals) and inspects their bodies for
// unsorted collects. Sort calls are searched in the whole enclosing
// declaration, which is where the collect-then-sort idiom puts them.
func checkFuncMapRanges(pass *lint.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkRangeBody(pass, rs, body)
		return true
	})
}

func checkRangeBody(pass *lint.Pass, rs *ast.RangeStmt, enclosing *ast.BlockStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// append to a slice declared outside the loop, never sorted.
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" || len(call.Args) == 0 {
			return true
		}
		target, ok := call.Args[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.ObjectOf(target)
		if obj == nil || insideRange(obj.Pos(), rs) {
			return true
		}
		if !sortedLater(pass.TypesInfo, obj, enclosing) {
			pass.Reportf(call.Pos(),
				"append to %s inside map iteration has nondeterministic order; sort the keys (or %s) before use",
				target.Name, target.Name)
		}
		return true
	})
}

// checkMapOrderedCalls flags cross-package calls to functions whose
// propagated MapOrderEscapes fact is set, unless the result is sorted:
// assigned to variables that a later sort/slices call covers, or passed
// directly into one.
func checkMapOrderedCalls(pass *lint.Pass, body *ast.BlockStmt) {
	// Pass 1: find call results that are sanctioned by a sort.
	sanctioned := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, lhs := range n.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok || lid.Name == "_" {
					continue
				}
				obj := pass.TypesInfo.ObjectOf(lid)
				if obj == nil || !sortedLater(pass.TypesInfo, obj, body) {
					return true
				}
			}
			sanctioned[call] = true
		case *ast.CallExpr:
			// sort.Strings(pkg.Keys(m)): the nested call is sorted
			// in place before any use.
			fn := calleeFunc2(pass.TypesInfo, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p == "sort" || p == "slices" {
				for _, arg := range n.Args {
					if c, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
						sanctioned[c] = true
					}
				}
			}
		}
		return true
	})
	// Pass 2: report un-sanctioned calls with the MapOrderEscapes fact.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || sanctioned[call] {
			return true
		}
		fn := calleeFunc2(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() == pass.Pkg.Path() {
			return true
		}
		if f, ok := pass.Facts.Lookup(fn); ok && f.MapOrderEscapes {
			pass.Reportf(call.Pos(),
				"call to %s returns map-ordered data (%s); sort the result before it reaches output or state",
				lint.FuncDisplay(fn), f.MapOrderVia)
		}
		return true
	})
}

// calleeFunc resolves the called function or method, if statically known.
func calleeFunc(pass *lint.Pass, call *ast.CallExpr) *types.Func {
	return calleeFunc2(pass.TypesInfo, call)
}

// insideRange reports whether pos falls within the range statement.
func insideRange(pos token.Pos, rs *ast.RangeStmt) bool {
	return pos >= rs.Pos() && pos <= rs.End()
}

// sortedLater reports whether obj is passed (possibly nested in a
// conversion such as sort.Sort(byName(s))) to a sort or slices call
// anywhere in the enclosing function body.
func sortedLater(info *types.Info, obj types.Object, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && info.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
