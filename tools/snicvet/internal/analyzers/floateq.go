package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"repro/tools/snicvet/internal/lint"
)

// Floateq flags == and != between floating-point operands in model
// code. Exact float equality silently depends on association order and
// intermediate rounding, which differs across refactors even when the
// math is "the same"; the stats package's tolerance helpers
// (stats.ApproxEqual) make the intended precision explicit.
//
// Comparisons against an exact constant zero are allowed: the
// resample-until-nonzero and division-guard idioms test a value that
// is zero by construction, not by arithmetic.
var Floateq = &lint.Analyzer{
	Name: "floateq",
	Doc: "flag ==/!= between floats; use stats.ApproxEqual or an " +
		"explicit tolerance (comparisons with literal 0 are allowed)",
	Run: runFloateq,
}

func runFloateq(pass *lint.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, be.X) || !isFloat(pass, be.Y) {
				return true
			}
			if isZeroConst(pass, be.X) || isZeroConst(pass, be.Y) {
				return true
			}
			// Two constants fold at compile time; nothing to round.
			if constVal(pass, be.X) != nil && constVal(pass, be.Y) != nil {
				return true
			}
			pass.Reportf(be.Pos(),
				"floating-point %s is exact; use stats.ApproxEqual (internal/stats) or an explicit tolerance",
				be.Op)
			return true
		})
	}
	return nil
}

func isFloat(pass *lint.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func constVal(pass *lint.Pass, e ast.Expr) constant.Value {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Value
	}
	return nil
}

func isZeroConst(pass *lint.Pass, e ast.Expr) bool {
	v := constVal(pass, e)
	if v == nil {
		return false
	}
	f, ok := constant.Float64Val(v)
	return ok && f == 0
}
