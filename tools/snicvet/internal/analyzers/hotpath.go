package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/tools/snicvet/internal/lint"
)

// HotpathMarker is the annotation that puts a function under the
// allocation-free contract.
const HotpathMarker = "//snicvet:hotpath"

// Hotpath enforces an allocation-free contract on functions annotated
// //snicvet:hotpath: the per-event paths of the simulator (engine
// scheduling, station dispatch, observer callbacks, flow-table
// inserts). One allocation per event caps throughput at allocator
// speed and turns the events/s benchmarks into GC benchmarks; the
// contract is verified statically here and dynamically by the
// zero-alloc tests in internal/sim.
//
// Flagged inside an annotated function body:
//   - slice/map composite literals and &T{...} (heap escape)
//   - make / new / append builtins
//   - function literals (closure allocation)
//   - string concatenation and fmt/strings/strconv/sort helpers
//   - go statements
//   - interface conversions boxing non-pointer values
//   - calls to any function whose propagated Allocates fact is set
//
// Setup paths (constructors, Report, golden-file export) are free to
// allocate — the contract applies only where the annotation is.
var Hotpath = &lint.Analyzer{
	Name: "hotpath",
	Doc: "functions annotated //snicvet:hotpath must not allocate: no " +
		"composite literals, closures, append, boxing, or calls to allocating helpers",
	Run: runHotpath,
}

func runHotpath(pass *lint.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hotpathAnnotated(fd) {
				continue
			}
			checkHotpathBody(pass, fd)
		}
	}
	return nil
}

// hotpathAnnotated reports whether the declaration's doc comment
// carries the //snicvet:hotpath marker.
func hotpathAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), HotpathMarker) {
			return true
		}
	}
	return false
}

func checkHotpathBody(pass *lint.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if compositeAllocates(info, n) {
				pass.Reportf(n.Pos(),
					"hot path allocates: %s literal needs a backing store; reuse a pooled buffer",
					typeKind(info, n))
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := n.X.(*ast.CompositeLit); isLit {
					pass.Reportf(n.Pos(),
						"hot path allocates: &composite literal escapes to the heap; reuse a pooled object")
				}
			}
		case *ast.CallExpr:
			checkHotpathCall(pass, fd, n)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(),
				"hot path allocates: function literal captures its environment on the heap; use a method value on a pooled struct")
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) {
				pass.Reportf(n.Pos(),
					"hot path allocates: string concatenation builds a new string each event")
			}
		case *ast.GoStmt:
			pass.Reportf(n.Pos(),
				"hot path allocates: go statement spawns a goroutine per event; the simulator is single-threaded by design")
		}
		checkBoxing(pass, n)
		return true
	})
}

// checkHotpathCall flags builtin allocators, known-allocating standard
// library helpers, and calls whose propagated Allocates fact is set.
func checkHotpathCall(pass *lint.Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	info := pass.TypesInfo
	if desc := allocDesc(info, call); desc != "" {
		pass.Reportf(call.Pos(), "hot path allocates: %s", desc)
		return
	}
	fn := calleeFunc2(info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	// Same-package callees have no published facts yet; recompute would
	// be circular. Annotate them too and the direct checks cover them.
	if fn.Pkg().Path() == pass.Pkg.Path() {
		return
	}
	if f, ok := pass.Facts.Lookup(fn); ok && f.Allocates {
		pass.Reportf(call.Pos(),
			"hot path allocates: call to %s allocates (%s); inline an allocation-free variant or pool the result",
			lint.FuncDisplay(fn), f.AllocatesVia)
	}
}

// checkBoxing flags implicit interface conversions of non-pointer
// values: assigning a struct or scalar to an interface boxes it on the
// heap. Pointer and interface operands convert without allocating.
func checkBoxing(pass *lint.Pass, n ast.Node) {
	info := pass.TypesInfo
	check := func(e ast.Expr, target types.Type) {
		if e == nil || target == nil {
			return
		}
		if _, isIface := target.Underlying().(*types.Interface); !isIface {
			return
		}
		// Constants box to compiler-built static interface data (rodata),
		// not a runtime allocation — panic("message") is the common case.
		if tv, ok := info.Types[e]; ok && tv.Value != nil {
			return
		}
		src := info.TypeOf(e)
		if src == nil || boxingFree(src) {
			return
		}
		pass.Reportf(e.Pos(),
			"hot path allocates: %s boxed into %s; pass a pointer or a pre-boxed value",
			types.TypeString(src, nil), types.TypeString(target, nil))
	}
	switch n := n.(type) {
	case *ast.CallExpr:
		sig, ok := info.TypeOf(n.Fun).(*types.Signature)
		if !ok { // conversion or builtin — no boxing through params
			return
		}
		params := sig.Params()
		for i, arg := range n.Args {
			var target types.Type
			if sig.Variadic() && i >= params.Len()-1 {
				if slice, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok && !n.Ellipsis.IsValid() {
					target = slice.Elem()
				}
			} else if i < params.Len() {
				target = params.At(i).Type()
			}
			check(arg, target)
		}
	case *ast.AssignStmt:
		if len(n.Lhs) != len(n.Rhs) {
			return
		}
		for i := range n.Rhs {
			check(n.Rhs[i], info.TypeOf(n.Lhs[i]))
		}
	}
}

// boxingFree reports whether converting a value of type t to an
// interface allocates nothing: pointers, interfaces, channels, maps,
// funcs and unsafe pointers share a word-sized representation.
func boxingFree(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Chan, *types.Map,
		*types.Signature, *types.Slice:
		// Slices are three words but their backing store is shared; the
		// header itself still allocates when boxed — but slice-to-any is
		// overwhelmingly a fmt call, caught separately. Treat headers of
		// reference kinds as out of scope to keep the signal clean.
		return true
	case *types.Basic:
		// Untyped constants box to a compiler-interned value.
		b := t.Underlying().(*types.Basic)
		return b.Info()&types.IsUntyped != 0
	}
	return false
}

// typeKind names the composite literal kind for diagnostics.
func typeKind(info *types.Info, lit *ast.CompositeLit) string {
	t := info.TypeOf(lit)
	if t == nil {
		return "composite"
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}
