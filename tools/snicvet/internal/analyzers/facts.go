package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/tools/snicvet/internal/lint"
)

// Fact computation: derive the per-function fact set of one compilation
// unit (see lint/facts.go) from its syntax, its type information, and
// the already-computed facts of its dependencies, then propagate
// bottom-up over the intra-package call graph to a fixpoint.
//
// Suppressions participate: a root (the time.Now call, the allocation,
// the map-range collect) or a propagating call that is covered by a
// //snicvet:ignore directive for the matching analyzer contributes no
// fact. That is what makes one justified suppression at the source
// silence the transitive reports at every call site above it.

// factAnalyzer maps each fact kind to the analyzer name whose
// suppressions clear it.
const (
	factWallclock = "wallclock"
	factSeedrand  = "seedrand"
	factMaporder  = "maporder"
	factHotpath   = "hotpath"
)

// funcInfo is the per-function working state during fact computation.
type funcInfo struct {
	obj  *types.Func
	decl *ast.FuncDecl
	fact lint.FuncFact
	// calls are the statically-resolved callees in source order.
	calls []callSite
}

type callSite struct {
	fn  *types.Func
	pos token.Pos
}

// ComputeFacts derives the unit's fact set. db supplies imported facts
// (may be nil); suppressions are parsed from the unit's files so root
// suppressions clear facts exactly as they clear reports.
func ComputeFacts(u *lint.Unit, db *lint.FactDB) *lint.PackageFacts {
	pf := lint.NewPackageFacts(u.Pkg.Path())
	sups := lint.ParseSuppressions(u.Fset, u.Files)
	suppressed := func(analyzer string, pos token.Pos) bool {
		return sups.Suppressed(analyzer, u.Fset.Position(pos))
	}

	// Collect the package's functions in source order (determinism: the
	// first discovered provenance chain wins and must not depend on map
	// iteration).
	var funcs []*funcInfo
	byObj := make(map[*types.Func]*funcInfo)
	for _, file := range u.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := u.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{obj: fn, decl: fd}
			funcs = append(funcs, fi)
			byObj[fn] = fi
		}
	}

	for _, fi := range funcs {
		scanRoots(u, fi, suppressed)
	}

	// Seed from imported facts at cross-package call sites, then close
	// over same-package calls to a fixpoint. Function literals are
	// attributed to their enclosing declaration: a closure's behaviour
	// is conservatively its creator's.
	for changed := true; changed; {
		changed = false
		for _, fi := range funcs {
			for _, cs := range fi.calls {
				var callee lint.FuncFact
				if local, ok := byObj[cs.fn]; ok {
					callee = local.fact
				} else if f, ok := db.Lookup(cs.fn); ok {
					callee = f
				} else {
					continue
				}
				changed = propagate(&fi.fact, callee, cs, suppressed) || changed
			}
		}
	}

	for _, fi := range funcs {
		if !fi.fact.Empty() {
			pf.Funcs[lint.FuncKey(fi.obj)] = fi.fact
		}
	}
	return pf
}

// propagate folds a callee's facts into the caller at one call site,
// honoring suppressions per fact kind. Reports whether anything changed.
func propagate(dst *lint.FuncFact, callee lint.FuncFact, cs callSite, suppressed func(string, token.Pos) bool) bool {
	changed := false
	via := func(calleeVia string) string {
		name := lint.FuncDisplay(cs.fn)
		if calleeVia == "" {
			return name
		}
		return name + " → " + calleeVia
	}
	if callee.ReadsWallClock && !dst.ReadsWallClock && !suppressed(factWallclock, cs.pos) {
		dst.ReadsWallClock = true
		dst.WallClockVia = via(callee.WallClockVia)
		changed = true
	}
	if callee.UsesUnseededRand && !dst.UsesUnseededRand && !suppressed(factSeedrand, cs.pos) {
		dst.UsesUnseededRand = true
		dst.RandVia = via(callee.RandVia)
		changed = true
	}
	if callee.MapOrderEscapes && !dst.MapOrderEscapes && !suppressed(factMaporder, cs.pos) {
		dst.MapOrderEscapes = true
		dst.MapOrderVia = via(callee.MapOrderVia)
		changed = true
	}
	if callee.Allocates && !dst.Allocates && !suppressed(factHotpath, cs.pos) {
		dst.Allocates = true
		dst.AllocatesVia = via(callee.AllocatesVia)
		changed = true
	}
	return changed
}

// scanRoots walks one function declaration (including nested literals)
// recording direct fact roots and the statically-known call sites for
// the propagation pass.
func scanRoots(u *lint.Unit, fi *funcInfo, suppressed func(string, token.Pos) bool) {
	returned := returnedObjects(u, fi.decl)
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			fn, ok := u.TypesInfo.Uses[n.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallclockFuncs[fn.Name()] && !fi.fact.ReadsWallClock && !suppressed(factWallclock, n.Pos()) {
					fi.fact.ReadsWallClock = true
					fi.fact.WallClockVia = "time." + fn.Name()
				}
			case "math/rand", "math/rand/v2":
				if !fi.fact.UsesUnseededRand && !suppressed(factSeedrand, n.Pos()) {
					fi.fact.UsesUnseededRand = true
					fi.fact.RandVia = fn.Pkg().Path() + "." + fn.Name()
				}
			}
		case *ast.CallExpr:
			if fn := calleeFunc2(u.TypesInfo, n); fn != nil {
				fi.calls = append(fi.calls, callSite{fn: fn, pos: n.Pos()})
			}
			if desc := allocDesc(u.TypesInfo, n); desc != "" &&
				!fi.fact.Allocates && !suppressed(factHotpath, n.Pos()) {
				fi.fact.Allocates = true
				fi.fact.AllocatesVia = desc
			}
		case *ast.CompositeLit:
			if !fi.fact.Allocates && compositeAllocates(u.TypesInfo, n) && !suppressed(factHotpath, n.Pos()) {
				fi.fact.Allocates = true
				fi.fact.AllocatesVia = "composite literal"
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := n.X.(*ast.CompositeLit); isLit &&
					!fi.fact.Allocates && !suppressed(factHotpath, n.Pos()) {
					fi.fact.Allocates = true
					fi.fact.AllocatesVia = "&composite literal"
				}
			}
		case *ast.FuncLit:
			if !fi.fact.Allocates && !suppressed(factHotpath, n.Pos()) {
				fi.fact.Allocates = true
				fi.fact.AllocatesVia = "closure"
			}
			return true // closures are attributed to the enclosing decl
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(u.TypesInfo.TypeOf(n)) &&
				!fi.fact.Allocates && !suppressed(factHotpath, n.Pos()) {
				fi.fact.Allocates = true
				fi.fact.AllocatesVia = "string concatenation"
			}
		case *ast.GoStmt:
			if !fi.fact.Allocates && !suppressed(factHotpath, n.Pos()) {
				fi.fact.Allocates = true
				fi.fact.AllocatesVia = "go statement"
			}
		case *ast.RangeStmt:
			scanMapRangeEscape(u, fi, n, returned, suppressed)
		}
		return true
	})
}

// scanMapRangeEscape sets the MapOrderEscapes fact when a map range
// collects into a value the function returns without sorting it: the
// caller receives map-ordered data.
func scanMapRangeEscape(u *lint.Unit, fi *funcInfo, rs *ast.RangeStmt, returned map[types.Object]bool, suppressed func(string, token.Pos) bool) {
	if fi.fact.MapOrderEscapes {
		return
	}
	t := u.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "append" || len(call.Args) == 0 {
			return true
		}
		target, ok := call.Args[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := u.TypesInfo.ObjectOf(target)
		if obj == nil || !returned[obj] || suppressed(factMaporder, call.Pos()) {
			return true
		}
		if sortedLater(u.TypesInfo, obj, fi.decl.Body) {
			return true
		}
		fi.fact.MapOrderEscapes = true
		fi.fact.MapOrderVia = "map range collected into returned " + target.Name
		return false
	})
}

// returnedObjects collects the objects the function returns: named
// results plus identifiers appearing in return statements.
func returnedObjects(u *lint.Unit, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				if obj := u.TypesInfo.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // a literal's returns are not the decl's
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if id, ok := res.(*ast.Ident); ok {
				if obj := u.TypesInfo.ObjectOf(id); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// calleeFunc2 resolves a call's static callee through TypesInfo,
// unwrapping the selector or identifier form. Returns nil for dynamic
// calls, conversions and builtins.
func calleeFunc2(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// allocDesc classifies a call expression that always (or usually)
// allocates: make/new/append builtins, the fmt family, and a deny-list
// of standard-library helpers that build new strings or slices. It
// returns a short description, or "" when the call is not a known
// allocator.
func allocDesc(info *types.Info, call *ast.CallExpr) string {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "make", "new", "append":
			if obj := info.Uses[id]; obj == nil || obj.Parent() == types.Universe {
				return id.Name
			}
		}
	}
	fn := calleeFunc2(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if allocStdCall(fn) {
		return lint.FuncDisplay(fn)
	}
	return ""
}

// allocStdCall reports whether a standard-library function is a known
// allocator worth tracking as an Allocates root: formatting, string
// building, sorting scaffolds, and pool refills.
func allocStdCall(fn *types.Func) bool {
	pkg := fn.Pkg().Path()
	name := fn.Name()
	switch pkg {
	case "fmt":
		return true
	case "errors":
		return name == "New"
	case "strings":
		switch name {
		case "Join", "Repeat", "Split", "SplitN", "Fields", "Replace",
			"ReplaceAll", "ToUpper", "ToLower", "Map", "TrimFunc", "Clone":
			return true
		}
	case "strconv":
		switch name {
		case "Itoa", "FormatInt", "FormatUint", "FormatFloat", "Quote", "AppendQuote":
			return true
		}
	case "sort":
		switch name {
		case "Slice", "SliceStable", "Sort", "Stable", "Strings", "Ints", "Float64s":
			return true
		}
	case "sync":
		// (*Pool).Get may run the New hook — an allocation on pool miss.
		return name == "Get"
	}
	return false
}

// compositeAllocates reports whether a bare composite literal allocates
// a backing store: slice and map literals do, plain struct values do
// not (escape via & is handled separately).
func compositeAllocates(info *types.Info, lit *ast.CompositeLit) bool {
	t := info.TypeOf(lit)
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// ReproPackage reports whether a package path belongs to this module —
// the only packages facts are computed and loaded for.
func ReproPackage(path string) bool {
	return path == "repro" || strings.HasPrefix(path, "repro/")
}
