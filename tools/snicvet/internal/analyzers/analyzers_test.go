package analyzers_test

import (
	"path/filepath"
	"testing"

	"repro/tools/snicvet/internal/analyzers"
	"repro/tools/snicvet/internal/atest"
)

func fixture(name string) string {
	return filepath.Join("..", "..", "testdata", "src", name)
}

func TestWallclock(t *testing.T) {
	atest.Run(t, fixture("wallclock"), analyzers.Wallclock)
}

func TestSeedrand(t *testing.T) {
	atest.Run(t, fixture("seedrand"), analyzers.Seedrand)
}

func TestMaporder(t *testing.T) {
	atest.Run(t, fixture("maporder"), analyzers.Maporder)
}

func TestUnitcheck(t *testing.T) {
	atest.Run(t, fixture("unitcheck"), analyzers.Unitcheck)
}

func TestFloateq(t *testing.T) {
	atest.Run(t, fixture("floateq"), analyzers.Floateq)
}

// TestSuppressions runs two analyzers together over the suppression
// fixture: directives silence exactly the named analyzers on exactly
// their line, through the same lint.Run path the driver uses.
func TestSuppressions(t *testing.T) {
	atest.Run(t, fixture("suppress"), analyzers.Wallclock, analyzers.Floateq)
}

func TestRegistry(t *testing.T) {
	all := analyzers.All()
	if len(all) != 5 {
		t.Fatalf("suite has %d analyzers, want 5", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incompletely declared", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if analyzers.ByName(a.Name) != a {
			t.Errorf("ByName(%q) does not round-trip", a.Name)
		}
	}
	if analyzers.ByName("nope") != nil {
		t.Error("ByName of unknown analyzer should be nil")
	}
}
