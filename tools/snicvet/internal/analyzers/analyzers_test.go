package analyzers_test

import (
	"path/filepath"
	"testing"

	"repro/tools/snicvet/internal/analyzers"
	"repro/tools/snicvet/internal/atest"
)

func fixture(name string) string {
	return filepath.Join("..", "..", "testdata", "src", name)
}

func TestWallclock(t *testing.T) {
	atest.Run(t, fixture("wallclock"), analyzers.Wallclock)
}

func TestSeedrand(t *testing.T) {
	atest.Run(t, fixture("seedrand"), analyzers.Seedrand)
}

func TestMaporder(t *testing.T) {
	atest.Run(t, fixture("maporder"), analyzers.Maporder)
}

func TestDetflow(t *testing.T) {
	atest.Run(t, fixture("detflow"), analyzers.Detflow)
}

func TestHotpath(t *testing.T) {
	atest.Run(t, fixture("hotpath"), analyzers.Hotpath)
}

func TestUnitcheck(t *testing.T) {
	atest.Run(t, fixture("unitcheck"), analyzers.Unitcheck)
}

func TestFloateq(t *testing.T) {
	atest.Run(t, fixture("floateq"), analyzers.Floateq)
}

// TestSuppressions runs two analyzers together over the suppression
// fixture: directives silence exactly the named analyzers on exactly
// their line, through the same lint.Run path the driver uses.
func TestSuppressions(t *testing.T) {
	atest.Run(t, fixture("suppress"), analyzers.Wallclock, analyzers.Floateq)
}

// TestFactPropagation runs the three-package fixture (model → helper →
// leaf) through the full pipeline: facts computed bottom-up, encoded
// to the vetx wire format, decoded back, and consumed by the analyzers
// two call levels above the roots.
func TestFactPropagation(t *testing.T) {
	atest.RunProject(t, fixture("factprop"),
		analyzers.Wallclock, analyzers.Seedrand, analyzers.Maporder, analyzers.Hotpath)
}

// TestFactPropagationSuppressed proves facts drive the transitive
// reports: the same call chain as factprop, but helper suppresses its
// leaf call with a reason, which clears the fact — model is clean with
// byte-identical code.
func TestFactPropagationSuppressed(t *testing.T) {
	atest.RunProject(t, fixture("factprop_clean"), analyzers.Wallclock)
}

// TestFactDBProvenance inspects the decoded fact database directly:
// provenance chains must survive the wire round-trip, and the leaf's
// fact bytes must differ from the helper's (different facts → different
// vetx content → different build-cache key for importers).
func TestFactDBProvenance(t *testing.T) {
	_, db := atest.LoadProject(t, fixture("factprop"))
	leaf := db.Package("snicvet.test/factprop/leaf")
	helper := db.Package("snicvet.test/factprop/helper")
	if leaf == nil || helper == nil {
		t.Fatal("fact DB is missing fixture packages")
	}
	if f := leaf.Funcs["Stamp"]; !f.ReadsWallClock || f.WallClockVia != "time.Now" {
		t.Errorf("leaf.Stamp fact = %+v, want ReadsWallClock via time.Now", f)
	}
	if f := helper.Funcs["Tag"]; !f.ReadsWallClock || f.WallClockVia != "leaf.Stamp → time.Now" {
		t.Errorf("helper.Tag fact = %+v, want chained provenance", f)
	}
	if f := helper.Funcs["Push"]; !f.Allocates || f.AllocatesVia != "leaf.Grow → append" {
		t.Errorf("helper.Push fact = %+v, want Allocates via leaf.Grow → append", f)
	}
	if f := helper.Funcs["Names"]; !f.MapOrderEscapes {
		t.Errorf("helper.Names fact = %+v, want MapOrderEscapes", f)
	}
	if f := helper.Funcs["Roll"]; !f.UsesUnseededRand {
		t.Errorf("helper.Roll fact = %+v, want UsesUnseededRand", f)
	}
	leafBytes, err := leaf.Encode()
	if err != nil {
		t.Fatal(err)
	}
	helperBytes, err := helper.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(leafBytes) == string(helperBytes) {
		t.Error("different fact sets encoded to identical vetx bytes")
	}
}

func TestRegistry(t *testing.T) {
	all := analyzers.All()
	if len(all) != 7 {
		t.Fatalf("suite has %d analyzers, want 7", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incompletely declared", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if analyzers.ByName(a.Name) != a {
			t.Errorf("ByName(%q) does not round-trip", a.Name)
		}
	}
	if analyzers.ByName("nope") != nil {
		t.Error("ByName of unknown analyzer should be nil")
	}
}
