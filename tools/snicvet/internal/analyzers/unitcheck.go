package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/tools/snicvet/internal/lint"
)

// Unitcheck flags expressions that mix identifiers carrying conflicting
// unit suffixes, and bare numeric literals passed to unit-suffixed
// parameters. The calibration tables mix nanoseconds, CPU cycles,
// Gbit/s and bytes; a silent ns-vs-cycles or Gbps-vs-GBps slip skews
// every downstream figure without failing a single test, which is
// exactly the measurement-path corruption the BlueField-2
// characterization work warns about.
//
// Checked forms (deliberately conservative — only plain identifiers
// and field selectors, so arithmetic conversions like ns := us*1000
// never trip it):
//
//   - assignment:  xNs = yUs, x.LatencyNs += y.WaitUs
//   - comparison/additive op:  aCycles < bNs, aGbps + bGBps
//   - call argument vs parameter name:  f(xMs) where f(durNs ...)
//   - bare non-zero numeric literal for a unit-suffixed parameter
//     (non-test files only; named constants encode intent, raw
//     literals do not)
var Unitcheck = &lint.Analyzer{
	Name: "unitcheck",
	Doc: "flag mixed unit suffixes (Ns/Us/Ms, Cycles, Gbps/GBps, Bytes/KB) " +
		"in assignments, comparisons and call arguments",
	Run: runUnitcheck,
}

// unitDims maps each recognized suffix to its dimension. Suffixes in
// the same dimension are different scales of one quantity (still an
// error to mix without conversion); different dimensions are distinct
// physical quantities.
var unitDims = map[string]string{
	"Ns": "time", "Us": "time", "Ms": "time",
	"Cycles": "cycles",
	"Gbps":   "rate", "GBps": "rate",
	"Bytes": "size", "KB": "size",
}

// unitSuffixes is ordered longest-first so e.g. Cycles wins over a
// shorter accidental match.
var unitSuffixes = []string{"Cycles", "Bytes", "Gbps", "GBps", "KB", "Ns", "Us", "Ms"}

// unitOf extracts the unit suffix of an identifier, honoring camelCase
// word boundaries: RoundTripNs and sizeBytes carry units, DNS and
// Pens do not. A bare lowercase unit name (gbps, cycles) also counts.
func unitOf(name string) string {
	for _, suf := range unitSuffixes {
		if name == strings.ToLower(suf) || name == suf {
			return suf
		}
		if !strings.HasSuffix(name, suf) {
			continue
		}
		prev := rune(name[len(name)-len(suf)-1])
		if prev >= 'a' && prev <= 'z' || prev >= '0' && prev <= '9' {
			return suf
		}
	}
	return ""
}

// unitOfExpr returns the unit carried by a plain identifier or field
// selector, and "" for anything else.
func unitOfExpr(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return unitOf(e.Name)
	case *ast.SelectorExpr:
		return unitOf(e.Sel.Name)
	}
	return ""
}

func mismatch(a, b string) string {
	if a == "" || b == "" || a == b {
		return ""
	}
	if unitDims[a] == unitDims[b] {
		return "different scales of the same quantity"
	}
	return "different physical quantities"
}

func runUnitcheck(pass *lint.Pass) error {
	for _, file := range pass.Files {
		isTest := strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkAssign(pass, n)
			case *ast.BinaryExpr:
				checkBinary(pass, n)
			case *ast.CallExpr:
				checkCall(pass, n, isTest)
			}
			return true
		})
	}
	return nil
}

func checkAssign(pass *lint.Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		lu, ru := unitOfExpr(as.Lhs[i]), unitOfExpr(as.Rhs[i])
		if why := mismatch(lu, ru); why != "" {
			pass.Reportf(as.Pos(),
				"assignment mixes units %s and %s (%s); convert explicitly",
				lu, ru, why)
		}
	}
}

// additive and comparison operators preserve units, so both sides must
// agree; * and / legitimately change units and are not checked.
var unitPreservingOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true,
	token.EQL: true, token.NEQ: true,
	token.LSS: true, token.LEQ: true,
	token.GTR: true, token.GEQ: true,
}

func checkBinary(pass *lint.Pass, be *ast.BinaryExpr) {
	if !unitPreservingOps[be.Op] {
		return
	}
	lu, ru := unitOfExpr(be.X), unitOfExpr(be.Y)
	if why := mismatch(lu, ru); why != "" {
		pass.Reportf(be.Pos(),
			"%s mixes units %s and %s (%s); convert explicitly",
			be.Op, lu, ru, why)
	}
}

func checkCall(pass *lint.Pass, call *ast.CallExpr, isTest bool) {
	// Conversions like sim.Duration(x) and builtins have no
	// *types.Signature and are skipped here.
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		idx := i
		if sig.Variadic() && idx >= params.Len()-1 {
			idx = params.Len() - 1
		}
		if idx >= params.Len() {
			continue
		}
		param := params.At(idx)
		punit := unitOf(param.Name())
		if punit == "" {
			continue
		}
		if au := unitOfExpr(arg); au != "" {
			if why := mismatch(punit, au); why != "" {
				pass.Reportf(arg.Pos(),
					"argument %s has unit %s but parameter %s wants %s (%s)",
					exprString(arg), au, param.Name(), punit, why)
			}
			continue
		}
		if isTest {
			continue
		}
		if lit, ok := arg.(*ast.BasicLit); ok &&
			(lit.Kind == token.INT || lit.Kind == token.FLOAT) &&
			lit.Value != "0" && lit.Value != "0.0" {
			pass.Reportf(arg.Pos(),
				"bare literal %s passed to unit-suffixed parameter %s (%s); use a named constant so the unit is checked",
				lit.Value, param.Name(), punit)
		}
	}
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	}
	return "expression"
}
