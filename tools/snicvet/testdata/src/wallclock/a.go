// Fixture for the wallclock analyzer: host-clock reads are forbidden,
// pure time.Duration plumbing is not.
package wallclock

import "time"

func bad() {
	_ = time.Now()                 // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond)   // want "time.Sleep reads the wall clock"
	_ = time.Since(time.Time{})    // want "time.Since reads the wall clock"
	_ = time.After(time.Second)    // want "time.After reads the wall clock"
	_ = time.Tick(time.Second)     // want "time.Tick reads the wall clock"
	_ = time.NewTicker(time.Hour)  // want "time.NewTicker reads the wall clock"
	_ = time.NewTimer(time.Hour)   // want "time.NewTimer reads the wall clock"
	_ = time.Until(time.Time{})    // want "time.Until reads the wall clock"
	time.AfterFunc(time.Hour, bad) // want "time.AfterFunc reads the wall clock"
}

func good() string {
	// Duration conversion and formatting carry no host-time dependence.
	var d time.Duration = 3 * time.Millisecond
	return d.String()
}
