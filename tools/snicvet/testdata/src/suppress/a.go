// Fixture for suppression directives: a directive on the offending
// line or the line above silences the named analyzers (or "all"), and
// naming the wrong analyzer silences nothing.
package suppress

import "time"

func directives(a, b float64) bool {
	_ = time.Now() //snicvet:ignore wallclock calibration harness measures host setup overhead here

	//snicvet:ignore floateq golden value is assigned verbatim upstream, never computed
	eq := a == b

	//snicvet:ignore wallclock,floateq calibration row exercises both invariants deliberately
	both := a == b || time.Now().IsZero()

	//snicvet:ignore all calibration-only block
	all := a == b || time.Now().IsZero()

	_ = time.Now() //snicvet:ignore floateq naming the wrong analyzer suppresses nothing; want "time.Now reads the wall clock"

	if a == b { // want "floating-point == is exact"
		return both
	}
	_ = time.Now() // want "time.Now reads the wall clock"
	return eq || all
}
