// Fixture for the seedrand analyzer: math/rand in both versions is
// forbidden, as is package-level sim.RNG state; a component-embedded
// RNG is the approved pattern.
package seedrand

import (
	"math/rand"           // want "import of math/rand is forbidden"
	randv2 "math/rand/v2" // want "import of math/rand/v2 is forbidden"

	"repro/internal/sim"
)

var _ = rand.Int()
var _ = randv2.IntN(3)

var globalRNG = sim.NewRNG(1) // want "package-level RNG globalRNG is a shared stream"

var pool sim.RNG // want "package-level RNG pool is a shared stream"

// component embeds its RNG, forked from the run seed by its parent:
// this is the approved pattern and must not be reported.
type component struct {
	rng *sim.RNG
}

func (c *component) draw() uint64 { return c.rng.Uint64() }

func newComponent(parent *sim.RNG) *component {
	return &component{rng: parent.Fork(7)}
}
