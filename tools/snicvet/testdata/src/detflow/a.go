// Fixture for the detflow analyzer: nondeterminism taint from map
// iteration, the wall clock, and math/rand must not reach emission
// sinks, telemetry, or exported result fields. The map-iteration sink
// cases at the top carried over from maporder when detflow subsumed
// its sink list.
package detflow

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// RunResult mimics the exported result structs the exporters serialize.
type RunResult struct {
	Fingerprint string
	Elapsed     string
}

func badPrint(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "fmt.Printf inside map iteration emits"
	}
}

func badWriter(m map[string]int, sb *strings.Builder) {
	for k := range m {
		sb.WriteString(k) // want "strings.Builder inside map iteration emits"
	}
}

func badTestHelper(t *testing.T, m map[string]bool) {
	for k := range m {
		t.Errorf("missing %s", k) // want "Errorf inside map iteration emits"
	}
}

func badTelemetry(rec *obs.Recorder, m map[string]float64) {
	for k, v := range m {
		rec.Count(k, v) // want "Count inside map iteration emits"
	}
}

func badSyncMap(sm *sync.Map, w io.Writer) {
	sm.Range(func(k, v any) bool {
		fmt.Fprintln(w, k) // want "fmt.Fprintln inside map iteration emits"
		return true
	})
}

func badKeysToWriter(m map[string]int, w io.Writer) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	fmt.Fprintf(w, "%v\n", keys) // want "determinism taint .map iteration order. reaches fmt.Fprintf"
}

func goodSortedKeys(m map[string]int, w io.Writer) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "%v\n", keys) // ok: sorted above
}

func badResultField(m map[string]int, r *RunResult) {
	s := ""
	for k := range m {
		s = s + k
	}
	r.Fingerprint = s // want "determinism taint .map iteration order. stored into exported field RunResult.Fingerprint"
}

func badClockField(r *RunResult) {
	r.Elapsed = fmt.Sprintf("%v", time.Now()) // want "determinism taint .wall-clock time. stored into exported field RunResult.Elapsed"
}

func badRandEmit(w io.Writer) {
	fmt.Fprintf(w, "%d\n", rand.Int()) // want "determinism taint .unseeded randomness. reaches fmt.Fprintf"
}

func goodSliceRange(xs []string, w io.Writer) {
	for _, x := range xs {
		fmt.Fprintln(w, x) // ok: slices iterate in order
	}
}

func goodCommutativeCount(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total // ok: no sink — returning a reduction is the caller's concern
}
