// Top of the fact-propagation fixture: two calls above the roots.
// Reports here prove facts chain through intermediate packages with
// their provenance intact.
package model

import (
	"sort"

	"snicvet.test/factprop/helper"
)

func Sample() int64 {
	return helper.Tag() // want "call to helper.Tag transitively reads the wall clock"
}

func Jitter() int {
	return helper.Roll() // want "call to helper.Roll transitively draws from math/rand"
}

func Export(m map[string]int) []string {
	return helper.Names(m) // want "call to helper.Names returns map-ordered data"
}

func ExportSorted(m map[string]int) []string {
	names := helper.Names(m) // ok: sorted below sanctions the call
	sort.Strings(names)
	return names
}

//snicvet:hotpath
func Hot(xs []int) []int {
	return helper.Push(xs) // want "call to helper.Push allocates"
}

// Cold is the negative: unannotated, so the allocating call is fine.
func Cold(xs []int) []int {
	return helper.Push(xs)
}
