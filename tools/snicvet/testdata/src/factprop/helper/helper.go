// Middle layer of the fact-propagation fixture: one call deep. Every
// wrapper inherits its leaf callee's fact, so the violations report
// here too — and the facts keep climbing to model.
package helper

import "snicvet.test/factprop/leaf"

func Tag() int64 {
	return leaf.Stamp() // want "call to leaf.Stamp transitively reads the wall clock"
}

func Roll() int {
	return leaf.Draw() // want "call to leaf.Draw transitively draws from math/rand"
}

func Names(m map[string]int) []string {
	return leaf.Keys(m) // want "call to leaf.Keys returns map-ordered data"
}

func Push(xs []int) []int {
	return leaf.Grow(xs)
}
