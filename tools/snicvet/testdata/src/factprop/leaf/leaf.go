// Leaf of the fact-propagation fixture: the actual violation roots.
// Facts computed here must survive the vetx wire encoding and surface
// as transitive reports in helper and model.
package leaf

import (
	"math/rand" // want "import of math/rand is forbidden"
	"time"
)

// Stamp reads the wall clock: the ReadsWallClock root.
func Stamp() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

// Draw uses the global rand stream: the UsesUnseededRand root.
func Draw() int {
	return rand.Int()
}

// Keys collects map keys unsorted: the MapOrderEscapes root.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "append to out inside map iteration"
	}
	return out
}

// Grow appends: the Allocates root.
func Grow(xs []int) []int {
	return append(xs, 1)
}
