// Fixture for the maporder analyzer: map iteration collecting into a
// slice used later is reported unless the slice is sorted afterwards.
// Emission sinks inside map iteration moved to the detflow fixture
// when that analyzer subsumed maporder's sink list.
package maporder

import (
	"fmt"
	"sort"
)

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside map iteration"
	}
	return keys
}

func goodCollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // ok: sorted below
	}
	sort.Strings(keys)
	return keys
}

func goodSortIndirect(m map[int]string) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id) // ok: sorted below through a conversion
	}
	sort.Sort(sort.IntSlice(ids))
	return ids
}

func goodLocalSlice(m map[string]int) {
	for k := range m {
		parts := make([]string, 0, 1)
		parts = append(parts, k) // ok: slice scoped to one iteration
		_ = parts
	}
}

func goodCommutative(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // ok: order-independent reduction
	}
	return total
}

func goodSliceRange(xs []string) {
	for _, x := range xs {
		fmt.Println(x) // ok: slices iterate in order
	}
}
