// Fixture for the maporder analyzer: map iteration feeding an
// order-sensitive sink is reported unless the collected slice is
// sorted afterwards.
package maporder

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/obs"
)

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside map iteration"
	}
	return keys
}

func goodCollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // ok: sorted below
	}
	sort.Strings(keys)
	return keys
}

func goodSortIndirect(m map[int]string) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id) // ok: sorted below through a conversion
	}
	sort.Sort(sort.IntSlice(ids))
	return ids
}

func badPrint(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "fmt.Printf inside map iteration emits"
	}
}

func badWriter(m map[string]int, sb *strings.Builder) {
	for k := range m {
		sb.WriteString(k) // want "strings.Builder inside map iteration emits"
	}
}

func badTestHelper(t *testing.T, m map[string]bool) {
	for k := range m {
		t.Errorf("missing %s", k) // want "testing.Errorf inside map iteration records"
	}
}

func badTelemetry(rec *obs.Recorder, m map[string]float64) {
	for k, v := range m {
		rec.Count(k, v) // want "obs.Count inside map iteration records"
	}
}

func goodLocalSlice(m map[string]int) {
	for k := range m {
		parts := make([]string, 0, 1)
		parts = append(parts, k) // ok: slice scoped to one iteration
		_ = parts
	}
}

func goodCommutative(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // ok: order-independent reduction
	}
	return total
}

func goodSliceRange(xs []string) {
	for _, x := range xs {
		fmt.Println(x) // ok: slices iterate in order
	}
}
