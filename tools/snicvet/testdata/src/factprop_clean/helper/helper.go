// Middle layer of the suppression-clears-facts fixture: the justified
// suppression at this propagating call site both silences the report
// here and clears the ReadsWallClock fact, so model sees nothing.
package helper

import "snicvet.test/factprop_clean/leaf"

func Tag() int64 {
	//snicvet:ignore wallclock -- boot stamp taken once before the event loop starts
	return leaf.Stamp()
}
