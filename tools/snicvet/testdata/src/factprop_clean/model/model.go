// Top of the suppression-clears-facts fixture: byte-identical call
// shape to factprop's model, but the helper's suppression cleared the
// fact chain, so no want clauses here — the whole package is clean.
package model

import "snicvet.test/factprop_clean/helper"

func Sample() int64 {
	return helper.Tag()
}
