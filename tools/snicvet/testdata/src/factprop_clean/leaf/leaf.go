// Leaf of the suppression-clears-facts fixture: same wall-clock root
// as factprop's leaf.
package leaf

import "time"

func Stamp() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}
