// Fixture for the hotpath analyzer: functions annotated
// //snicvet:hotpath must not allocate. Unannotated functions are free
// to; suppressions clear individual findings with a recorded reason.
package hotpath

import (
	"fmt"
	"io"
)

type point struct{ x, y int }

type pool struct{ free []*point }

//snicvet:hotpath
func badSliceLit(n int) []int {
	return []int{n} // want "slice literal needs a backing store"
}

//snicvet:hotpath
func badMapLit() map[string]int {
	return map[string]int{} // want "map literal needs a backing store"
}

//snicvet:hotpath
func badAddrLit() *point {
	return &point{1, 2} // want "composite literal escapes to the heap"
}

//snicvet:hotpath
func badMake(n int) []int {
	return make([]int, n) // want "hot path allocates: make"
}

//snicvet:hotpath
func badAppend(xs []int, x int) []int {
	return append(xs, x) // want "hot path allocates: append"
}

//snicvet:hotpath
func badClosure(n int) func() int {
	return func() int { return n } // want "function literal captures"
}

//snicvet:hotpath
func badConcat(a, b string) string {
	return a + b // want "string concatenation"
}

//snicvet:hotpath
func badFmt(w io.Writer, n int64) {
	fmt.Fprintln(w, n) // want "hot path allocates: fmt.Fprintln" "boxed into"
}

//snicvet:hotpath
func badGo(f func()) {
	go f() // want "go statement spawns a goroutine"
}

//snicvet:hotpath
func badBoxing(v point) any {
	var a any
	a = v // want "boxed into"
	return a
}

//snicvet:hotpath
func goodPointerJuggle(p *pool) *point {
	if len(p.free) == 0 {
		return nil
	}
	it := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	it.x, it.y = 0, 0
	return it // ok: pops from a free list, no allocation anywhere
}

//snicvet:hotpath
func goodPointerBox(p *point) any {
	return boxAny(p)
}

//snicvet:hotpath
func boxAny(p *point) any {
	var a any
	a = p // ok: pointers share the interface word, no boxing
	return a
}

//snicvet:hotpath
func goodSuppressed() int {
	//snicvet:ignore hotpath -- fixture: demonstrating a justified one-off
	buf := make([]byte, 0, 64)
	return cap(buf)
}

func unannotatedAllocates() []int {
	return []int{1, 2, 3} // ok: contract applies only under the annotation
}
