// Fixture for the floateq analyzer: exact float equality is reported
// except against constant zero (the resample/guard idiom) or between
// compile-time constants.
package floateq

func compare(a, b float64, xs []float32) bool {
	if a == b { // want "floating-point == is exact"
		return true
	}
	if a != b { // want "floating-point != is exact"
		return false
	}
	if a == 0 { // ok: exact-zero guard idiom
		return false
	}
	if 0.0 != b { // ok: exact-zero guard idiom
		return false
	}
	if xs[0] == xs[1] { // want "floating-point == is exact"
		return true
	}
	const c1, c2 = 1.5, 2.5
	if c1 == c2 { // ok: constants fold at compile time
		return true
	}
	// Integer equality is exact by nature and never reported.
	i, j := 1, 2
	return i == j
}
