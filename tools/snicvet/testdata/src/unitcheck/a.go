// Fixture for the unitcheck analyzer: identifiers carry their unit in
// a suffix, and mixing suffixes without an explicit conversion is
// reported, as are bare non-zero literals for unit-suffixed parameters.
package unitcheck

func takeNs(durNs int64) { _ = durNs }

func copyBytes(nBytes int64) { _ = nBytes }

func setRate(rateGBps float64) { _ = rateGBps }

func process(latencyNs, budgetUs, rxCycles int64) {
	var waitNs int64
	waitNs = budgetUs // want "assignment mixes units Ns and Us .different scales"
	_ = waitNs

	if latencyNs > budgetUs { // want "> mixes units Ns and Us"
		return
	}
	if latencyNs > rxCycles { // want "> mixes units Ns and Cycles .different physical quantities"
		return
	}
	_ = latencyNs + budgetUs // want ". mixes units Ns and Us"

	takeNs(budgetUs)  // want "argument budgetUs has unit Us but parameter durNs wants Ns"
	takeNs(1500)      // want "bare literal 1500 passed to unit-suffixed parameter durNs"
	takeNs(0)         // ok: zero is a sentinel, not a measurement
	takeNs(latencyNs) // ok: units agree

	sizeKB := int64(4)
	copyBytes(sizeKB) // want "argument sizeKB has unit KB but parameter nBytes wants Bytes .different scales"

	gbps := 12.5
	setRate(gbps) // want "argument gbps has unit Gbps but parameter rateGBps wants GBps .different scales"

	// Multiplication and division change units by design.
	scaledNs := budgetUs * 1000
	_ = scaledNs

	// Unsuffixed identifiers carry no unit and are never reported.
	plain := latencyNs
	_ = plain
}
