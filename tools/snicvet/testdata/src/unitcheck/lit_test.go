// The bare-literal rule is off in _test.go files: tests pin literal
// scenario values constantly and the suffix mix rules still apply.
package unitcheck

func fromTest(latencyNs, budgetUs int64) {
	takeNs(1500)      // ok: bare literals are allowed in tests
	takeNs(budgetUs)  // want "argument budgetUs has unit Us but parameter durNs wants Ns"
	takeNs(latencyNs) // ok
}
