package main

import "testing"

// The driver's package policy: the determinism suite guards the model
// packages and public facade; drivers and this tool itself are exempt.
func TestActiveAnalyzers(t *testing.T) {
	active := []string{
		"repro/internal/sim",
		"repro/internal/funcs/nat",
		"repro/internal/nic",          // includes in-package _test.go units
		"repro/internal/stats_test",   // external test packages follow their package
		"repro/snic",
		"repro/snic_test",
	}
	for _, p := range active {
		if got := activeAnalyzers(p); len(got) != 5 {
			t.Errorf("activeAnalyzers(%q) = %d analyzers, want full suite", p, len(got))
		}
	}
	exempt := []string{
		"repro",                  // root package: benchmarks measure wall time
		"repro/cmd/snicbench",    // drivers print for humans
		"repro/cmd/snicsim",
		"repro/examples/fleet",
		"repro/tools/snicvet",    // the linter may inspect what it forbids
		"fmt",                    // std dependencies pass through VetxOnly
		"time",
	}
	for _, p := range exempt {
		if got := activeAnalyzers(p); got != nil {
			t.Errorf("activeAnalyzers(%q) = %d analyzers, want none", p, len(got))
		}
	}
}

// File-level exemptions: benchmarks in _test.go legitimately time the
// host and pin exact float goldens; map-order and seeding rules stay on
// because nondeterministic test output breaks golden diffs too.
func TestFileExempt(t *testing.T) {
	cases := []struct {
		analyzer string
		filename string
		want     bool
	}{
		{"wallclock", "internal/nic/nic_test.go", true},
		{"floateq", "internal/stats/edge_test.go", true},
		{"wallclock", "internal/nic/nic.go", false},
		{"floateq", "internal/core/catalog.go", false},
		{"maporder", "internal/nic/nic_test.go", false},
		{"seedrand", "internal/trace/trace_test.go", false},
		{"unitcheck", "internal/core/parallel_test.go", false},
	}
	for _, c := range cases {
		if got := fileExempt(c.analyzer, c.filename); got != c.want {
			t.Errorf("fileExempt(%q, %q) = %v, want %v", c.analyzer, c.filename, got, c.want)
		}
	}
}
