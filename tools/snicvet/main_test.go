package main

import (
	"io"
	"os"
	"testing"
)

// The driver's package policy: the determinism suite guards the model
// packages, the public facade, and (self-hosting) the linter's own
// tree; cmd/ and examples/ drivers are exempt.
func TestActiveAnalyzers(t *testing.T) {
	active := []string{
		"repro/internal/sim",
		"repro/internal/funcs/nat",
		"repro/internal/nic",          // includes in-package _test.go units
		"repro/internal/stats_test",   // external test packages follow their package
		"repro/snic",
		"repro/snic_test",
		"repro/tools/snicvet",         // self-hosting: the linter lints itself
		"repro/tools/snicvet/internal/lint",
	}
	for _, p := range active {
		if got := activeAnalyzers(p); len(got) != 7 {
			t.Errorf("activeAnalyzers(%q) = %d analyzers, want full suite", p, len(got))
		}
	}
	exempt := []string{
		"repro",                  // root package: benchmarks measure wall time
		"repro/cmd/snicbench",    // drivers print for humans
		"repro/cmd/snicsim",
		"repro/examples/fleet",
		"fmt",                    // std dependencies pass through VetxOnly
		"time",
	}
	for _, p := range exempt {
		if got := activeAnalyzers(p); got != nil {
			t.Errorf("activeAnalyzers(%q) = %d analyzers, want none", p, len(got))
		}
	}
}

// The -V=full identity is the go command's cache key for vet results.
// A fact-dump run must not be served from the cached silence of a
// plain run, so the SNICVET_FACTS env var is part of the key.
func TestVersionHashTracksFactsEnv(t *testing.T) {
	capture := func(env string) string {
		t.Setenv("SNICVET_FACTS", env)
		r, w, err := os.Pipe()
		if err != nil {
			t.Fatal(err)
		}
		old := os.Stdout
		os.Stdout = w
		printVersion()
		w.Close()
		os.Stdout = old
		out, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	if capture("") == capture("1") {
		t.Error("SNICVET_FACTS must change the -V=full cache key")
	}
}

// File-level exemptions: benchmarks in _test.go legitimately time the
// host and pin exact float goldens; map-order and seeding rules stay on
// because nondeterministic test output breaks golden diffs too.
func TestFileExempt(t *testing.T) {
	cases := []struct {
		analyzer string
		filename string
		want     bool
	}{
		{"wallclock", "internal/nic/nic_test.go", true},
		{"floateq", "internal/stats/edge_test.go", true},
		{"wallclock", "internal/nic/nic.go", false},
		{"floateq", "internal/core/catalog.go", false},
		{"maporder", "internal/nic/nic_test.go", false},
		{"seedrand", "internal/trace/trace_test.go", false},
		{"unitcheck", "internal/core/parallel_test.go", false},
	}
	for _, c := range cases {
		if got := fileExempt(c.analyzer, c.filename); got != c.want {
			t.Errorf("fileExempt(%q, %q) = %v, want %v", c.analyzer, c.filename, got, c.want)
		}
	}
}
