package main

import (
	"strings"

	"repro/tools/snicvet/internal/analyzers"
	"repro/tools/snicvet/internal/lint"
)

// Where the suite applies. The determinism and unit-safety invariants
// protect the simulation models and the public facade built on them —
// and, self-hostingly, the linter's own tree: snicvet's output must be
// deterministic for the build cache to work, so it lives by its own
// rules. cmd/ and examples/ are drivers and may read the wall clock,
// print maps for humans, and take literal flag defaults.
var checkedPkgPrefixes = []string{
	"repro/internal/",
	"repro/snic",
	"repro/tools/",
}

// Analyzers exempt in _test.go files. Benchmarks legitimately measure
// wall time, and tests pin exact float goldens against a fixed binary;
// maporder and seedrand stay on in tests because nondeterministic test
// *output* and reseeded streams break golden-file comparisons just as
// badly there.
var testFileExempt = map[string]bool{
	"wallclock": true,
	"floateq":   true,
}

// activeAnalyzers returns the analyzers that apply to a package, or
// nil if the package is out of scope (std, cmd/, examples/, tools/).
// External test packages (the "_test" suffix) follow the package they
// test.
func activeAnalyzers(pkgPath string) []*lint.Analyzer {
	p := strings.TrimSuffix(pkgPath, "_test")
	for _, prefix := range checkedPkgPrefixes {
		if p == strings.TrimSuffix(prefix, "/") || strings.HasPrefix(p, prefix) {
			return analyzers.All()
		}
	}
	return nil
}

// fileExempt removes individual files from one analyzer's view.
func fileExempt(analyzer, filename string) bool {
	return testFileExempt[analyzer] && strings.HasSuffix(filename, "_test.go")
}
