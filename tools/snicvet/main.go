// Command snicvet is the repository's determinism and unit-safety
// linter, invoked through the standard vet-tool protocol:
//
//	go build -o bin/snicvet ./tools/snicvet
//	go vet -vettool=bin/snicvet ./...
//
// It speaks the same command-line protocol as
// golang.org/x/tools/go/analysis/unitchecker (-V=full, -flags, and a
// JSON *.cfg describing one compilation unit) but is implemented with
// the standard library only, because this module builds offline with
// no external dependencies. The go command hands us parsed-out
// compilation units with export data for every import, so no package
// loading machinery is needed here.
//
// Findings are suppressed per line with:
//
//	//snicvet:ignore <analyzer>[,<analyzer>] <reason>
//
// placed on the offending line or the line above. The reason is
// mandatory and directives without one are themselves reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"sort"
	"strings"

	"repro/tools/snicvet/internal/analyzers"
	"repro/tools/snicvet/internal/lint"
)

// vetConfig mirrors the JSON compilation-unit description the go
// command writes for vet tools (see unitchecker.Config in x/tools).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("snicvet: ")
	args := os.Args[1:]
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			// We accept no analyzer-selection flags: the policy in
			// policy.go decides where each analyzer applies.
			fmt.Println("[]")
			return
		case "help", "-help", "--help":
			usage()
			return
		}
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		usage()
		os.Exit(2)
	}
	os.Exit(runUnit(args[0]))
}

// printVersion emits the tool identity the go command uses as a build
// cache key. Hashing our own executable makes the key track analyzer
// changes, so editing snicvet invalidates cached vet results. The
// SNICVET_FACTS environment variable is folded in too: a fact dump run
// (make lint-facts) must not be satisfied from the silent cached
// results of a plain lint run, and vice versa.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	io.WriteString(h, "facts="+os.Getenv("SNICVET_FACTS"))
	fmt.Printf("snicvet version devel buildID=%x\n", h.Sum(nil)[:16])
}

func usage() {
	fmt.Fprintf(os.Stderr, "snicvet checks simulator determinism and unit-safety invariants.\n")
	fmt.Fprintf(os.Stderr, "It is a vet tool; run it via:\n\n\tgo vet -vettool=bin/snicvet ./...\n\nAnalyzers:\n")
	for _, a := range analyzers.All() {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nSuppress one line with: %s <analyzer> <reason>\n", lint.IgnorePrefix)
}

func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode vet config %s: %v", cfgPath, err)
	}

	// The go command runs the tool over every dependency and threads
	// the vetx outputs through the build cache: a unit's vetx is an
	// input to every importer's vet action, so changing a leaf's facts
	// re-vets everything above it. Module packages get real fact
	// payloads; everything else writes an empty file (it must exist).
	emptyVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0666); err != nil {
				log.Fatal(err)
			}
		}
	}
	if !analyzers.ReproPackage(cfg.ImportPath) {
		emptyVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				emptyVetx()
				return 0
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}
	pkg, info, err := typecheck(cfg, fset, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			emptyVetx()
			return 0
		}
		log.Fatalf("typechecking %s: %v", cfg.ImportPath, err)
	}

	unit := &lint.Unit{
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		FileExempt: fileExempt,
		Facts:      readImportedFacts(cfg),
	}
	pf := analyzers.ComputeFacts(unit, unit.Facts)
	if cfg.VetxOutput != "" {
		payload, err := pf.Encode()
		if err != nil {
			log.Fatalf("encoding facts for %s: %v", cfg.ImportPath, err)
		}
		if err := os.WriteFile(cfg.VetxOutput, payload, 0666); err != nil {
			log.Fatal(err)
		}
	}
	if os.Getenv("SNICVET_FACTS") != "" {
		dumpFacts(pf)
	}
	if cfg.VetxOnly {
		return 0
	}
	active := activeAnalyzers(cfg.ImportPath)
	if len(active) == 0 {
		return 0
	}
	findings, err := lint.Run(unit, active)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s [snicvet:%s]\n", f.Pos, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// readImportedFacts loads the fact payloads of this unit's module
// dependencies from the vetx files the go command supplied. Standard
// library entries are empty and decode to nil; foreign or stale
// payloads are tolerated the same way.
func readImportedFacts(cfg *vetConfig) *lint.FactDB {
	db := lint.NewFactDB()
	// Sorted so a decode failure is reported at the same package no
	// matter how the map iterates (and so the linter passes its own
	// detflow rule).
	paths := make([]string, 0, len(cfg.PackageVetx))
	for path := range cfg.PackageVetx {
		if analyzers.ReproPackage(path) {
			paths = append(paths, path)
		}
	}
	sort.Strings(paths)
	for _, path := range paths {
		data, err := os.ReadFile(cfg.PackageVetx[path])
		if err != nil {
			continue // missing vetx: treat as fact-free
		}
		pf, err := lint.DecodeFacts(data)
		if err != nil {
			log.Fatalf("decoding facts of %s: %v", path, err)
		}
		db.Add(pf)
	}
	return db
}

// dumpFacts prints the unit's propagated facts to stderr in
// deterministic order — the payload behind `make lint-facts`.
func dumpFacts(pf *lint.PackageFacts) {
	var keys []string
	for k, f := range pf.Funcs {
		if !f.Empty() {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return
	}
	sort.Strings(keys)
	fmt.Fprintf(os.Stderr, "facts: %s\n", pf.Path)
	for _, k := range keys {
		f := pf.Funcs[k]
		if f.ReadsWallClock {
			fmt.Fprintf(os.Stderr, "  %s: wallclock via %s\n", k, f.WallClockVia)
		}
		if f.UsesUnseededRand {
			fmt.Fprintf(os.Stderr, "  %s: seedrand via %s\n", k, f.RandVia)
		}
		if f.MapOrderEscapes {
			fmt.Fprintf(os.Stderr, "  %s: maporder via %s\n", k, f.MapOrderVia)
		}
		if f.Allocates {
			fmt.Fprintf(os.Stderr, "  %s: allocates via %s\n", k, f.AllocatesVia)
		}
	}
}

// typecheck type-checks one compilation unit against the export data
// the go command supplied for its imports.
func typecheck(cfg *vetConfig, fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info, error) {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped // resolve vendoring and test variants
		}
		return compilerImporter.Import(importPath)
	})
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:     make(map[ast.Expr]types.TypeAndValue),
		Defs:      make(map[*ast.Ident]types.Object),
		Uses:      make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
