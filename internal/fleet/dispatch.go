package fleet

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/invariant"
	"repro/internal/sim"
)

// The dispatcher works at trace-interval granularity: each interval's
// fleet-level offered rate (Gb/s) is split into per-server rate shares,
// producing a rate matrix that the per-server replays then simulate
// independently. Splitting rates rather than individual packets is what
// keeps the fleet embarrassingly parallel — and it is faithful to how
// datacenter load balancers actually steer load: by adjusting weights at
// coarse timescales, not by choosing a server per packet with global
// knowledge.
//
// All policy arithmetic is plain float math over slices in server-index
// order — no map iteration, no RNG — so the same inputs produce the same
// assignment on every run at any parallelism.

// Policy names a dispatcher placement policy.
type Policy string

const (
	// RoundRobin spreads load evenly and is deliberately health- and
	// capacity-blind: a crashed server keeps receiving (and losing) its
	// share, and a weak server gets as much as a strong one.
	RoundRobin Policy = "round-robin"
	// LeastOutstanding weights servers by estimated free capacity
	// (capacity minus dispatcher-tracked backlog), the classic
	// least-outstanding-requests balancer at rate granularity.
	LeastOutstanding Policy = "least-outstanding"
	// SLOAware routes around unhealthy servers (draining their parked
	// backlog to healthy peers, as the failover router does for a
	// single server's queue) and water-fills healthy servers up to a
	// headroom target below capacity so tails stay short.
	SLOAware Policy = "slo-aware"
	// AdvisorDriven greedily fills the most energy-efficient servers
	// first (advisor efficiency score: predicted throughput per total
	// watt), spilling the remainder capacity-proportionally.
	AdvisorDriven Policy = "advisor"
)

// Policies lists every dispatch policy in presentation order.
func Policies() []Policy {
	return []Policy{RoundRobin, LeastOutstanding, SLOAware, AdvisorDriven}
}

// Assignment is a dispatcher's complete decision: one rate row per
// server plus the bookkeeping the tests assert on.
type Assignment struct {
	// Rates[s][i] is the Gb/s assigned to server s in interval i.
	Rates [][]float64
	// Lost[i] is the Gb/s the dispatcher dropped in interval i (traffic
	// sent to a dead server by a health-blind policy, or offered load
	// with no healthy server to take it).
	Lost []float64
	// Carry[s][i] is server s's modeled backlog (in Gb/s·interval
	// units) after interval i: assigned work beyond estimated capacity
	// that queues into the next interval.
	Carry [][]float64
}

// LostGbps is the mean dispatch-level loss rate over the trace.
func (a *Assignment) LostGbps() float64 {
	if len(a.Lost) == 0 {
		return 0
	}
	var sum float64
	for _, v := range a.Lost {
		sum += v
	}
	return sum / float64(len(a.Lost))
}

// Dispatch computes the per-server rate matrix for cfg's trace, given
// per-server capacity estimates and advisor efficiency scores (scores
// are only read by AdvisorDriven and may be nil otherwise).
func Dispatch(cfg *Config, caps, scores []float64) (*Assignment, error) {
	n := cfg.Servers()
	if n == 0 {
		return nil, fmt.Errorf("fleet: no servers")
	}
	if len(caps) != n {
		return nil, fmt.Errorf("fleet: %d capacity estimates for %d servers", len(caps), n)
	}
	if cfg.Policy == AdvisorDriven && len(scores) != n {
		return nil, fmt.Errorf("fleet: advisor policy needs %d scores, got %d", n, len(scores))
	}
	intervals := len(cfg.Trace.RatesGbps)
	a := &Assignment{
		Rates: make([][]float64, n),
		Lost:  make([]float64, intervals),
		Carry: make([][]float64, n),
	}
	for s := 0; s < n; s++ {
		a.Rates[s] = make([]float64, intervals)
		a.Carry[s] = make([]float64, intervals)
	}
	margin := cfg.sloMargin()
	carry := make([]float64, n)
	down := make([]bool, n)
	for i := 0; i < intervals; i++ {
		rate := cfg.Trace.RatesGbps[i]
		var carryBefore float64
		for s := 0; s < n; s++ {
			down[s] = cfg.ServerDown(s, i)
			carryBefore += carry[s]
		}
		switch cfg.Policy {
		case RoundRobin:
			dispatchRoundRobin(a, i, rate, carry, down)
		case LeastOutstanding:
			dispatchLeastOutstanding(a, i, rate, caps, carry, down)
		case SLOAware:
			dispatchSLOAware(a, i, rate, caps, margin, carry, down)
		case AdvisorDriven:
			dispatchAdvisor(a, i, rate, caps, scores, margin, carry, down)
		default:
			return nil, fmt.Errorf("fleet: unknown policy %q", cfg.Policy)
		}
		// Conservation audit: a policy may move rate mass between server
		// assignments, parked backlog and the loss bucket, but it must
		// never create or destroy any — offered + backlog in equals
		// assigned + lost + backlog out, to float tolerance. A policy that
		// leaks here would silently understate fleet load.
		out := a.Lost[i]
		for s := 0; s < n; s++ {
			out += a.Rates[s][i] + carry[s]
		}
		in := rate + carryBefore
		if math.Abs(in-out) > 1e-9*math.Max(1, math.Abs(in)) {
			return nil, &invariant.Violation{
				Rule: invariant.RuleDispatch,
				Time: sim.Time(i) * sim.Time(cfg.Trace.Interval),
				Detail: fmt.Sprintf("policy %s interval %d: offered %.9g + backlog %.9g != assigned+lost+backlog %.9g",
					cfg.Policy, i, rate, carryBefore, out),
			}
		}
		// Backlog bookkeeping: healthy servers work off (or grow) their
		// queue against estimated capacity; a down server's carry was
		// already resolved by the policy (lost or drained) or parks.
		for s := 0; s < n; s++ {
			if !down[s] {
				carry[s] = math.Max(0, carry[s]+a.Rates[s][i]-caps[s])
			}
			a.Carry[s][i] = carry[s]
		}
	}
	return a, nil
}

// dispatchRoundRobin sends an equal share to every server, dead or
// alive. A dead server's share — and whatever backlog it had parked —
// is lost.
func dispatchRoundRobin(a *Assignment, i int, rate float64, carry []float64, down []bool) {
	share := rate / float64(len(down))
	for s := range down {
		if down[s] {
			a.Lost[i] += share + carry[s]
			carry[s] = 0
			continue
		}
		a.Rates[s][i] = share
	}
}

// dispatchLeastOutstanding splits proportionally to estimated free
// capacity. A down server receives nothing and its backlog parks until
// it returns (this policy tracks queues but not liveness transfers).
func dispatchLeastOutstanding(a *Assignment, i int, rate float64, caps, carry []float64, down []bool) {
	var sumW float64
	w := make([]float64, len(caps))
	for s := range caps {
		if down[s] {
			continue
		}
		// A fully backlogged server still gets a trickle (5% of
		// capacity) so its weight never pins to zero.
		w[s] = math.Max(caps[s]-carry[s], 0.05*caps[s])
		sumW += w[s]
	}
	if sumW == 0 {
		a.Lost[i] += rate
		return
	}
	for s := range caps {
		if !down[s] {
			a.Rates[s][i] = rate * w[s] / sumW
		}
	}
}

// drainDown moves dead servers' parked backlog into the interval's
// dispatch pool — the fleet-level analogue of the failover router
// re-routing a crashed server's queue to healthy peers.
func drainDown(rate float64, carry []float64, down []bool) float64 {
	pool := rate
	for s := range down {
		if down[s] {
			pool += carry[s]
			carry[s] = 0
		}
	}
	return pool
}

// dispatchSLOAware water-fills healthy servers up to margin×capacity so
// every server keeps tail headroom; only the overflow beyond everyone's
// headroom target spills capacity-proportionally.
func dispatchSLOAware(a *Assignment, i int, rate float64, caps []float64, margin float64, carry []float64, down []bool) {
	pool := drainDown(rate, carry, down)
	var sumT, sumCap float64
	for s := range caps {
		if !down[s] {
			sumT += margin * caps[s]
			sumCap += caps[s]
		}
	}
	if sumCap == 0 {
		a.Lost[i] += pool
		return
	}
	for s := range caps {
		if down[s] {
			continue
		}
		t := margin * caps[s]
		if pool <= sumT {
			a.Rates[s][i] = pool * t / sumT
		} else {
			a.Rates[s][i] = t + (pool-sumT)*caps[s]/sumCap
		}
	}
}

// dispatchAdvisor fills servers in descending efficiency-score order up
// to margin×capacity, then spreads any remainder capacity-
// proportionally across healthy servers. Ties break on server index.
func dispatchAdvisor(a *Assignment, i int, rate float64, caps, scores []float64, margin float64, carry []float64, down []bool) {
	pool := drainDown(rate, carry, down)
	order := make([]int, 0, len(caps))
	var sumCap float64
	for s := range caps {
		if !down[s] {
			order = append(order, s)
			sumCap += caps[s]
		}
	}
	if sumCap == 0 {
		a.Lost[i] += pool
		return
	}
	sort.SliceStable(order, func(x, y int) bool {
		//snicvet:ignore floateq sort comparators need an exact strict weak order; a tolerance would make it intransitive
		if scores[order[x]] != scores[order[y]] {
			return scores[order[x]] > scores[order[y]]
		}
		return order[x] < order[y]
	})
	rem := pool
	for _, s := range order {
		take := math.Min(rem, margin*caps[s])
		a.Rates[s][i] = take
		rem -= take
		if rem <= 0 {
			break
		}
	}
	if rem > 0 {
		for _, s := range order {
			a.Rates[s][i] += rem * caps[s] / sumCap
		}
	}
}
