package fleet

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func flatTrace(rate float64, points int) *trace.HyperscalerTrace {
	tr := &trace.HyperscalerTrace{Interval: 300 * sim.Microsecond}
	for i := 0; i < points; i++ {
		tr.RatesGbps = append(tr.RatesGbps, rate)
	}
	return tr
}

func testConfig(policy Policy, tr *trace.HyperscalerTrace, outages ...Outage) *Config {
	return &Config{
		Classes: []Class{{Name: "a", Platform: "host-cpu", Count: 2}, {Name: "b", Platform: "snic-cpu", Count: 1}},
		Policy:  policy,
		Trace:   tr,
		Outages: outages,
	}
}

func sumAssigned(a *Assignment, i int) float64 {
	var s float64
	for srv := range a.Rates {
		s += a.Rates[srv][i]
	}
	return s
}

func TestDispatchRoundRobinEvenSplit(t *testing.T) {
	cfg := testConfig(RoundRobin, flatTrace(9, 4))
	a, err := Dispatch(cfg, []float64{10, 10, 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for s := 0; s < 3; s++ {
			if a.Rates[s][i] != 3 {
				t.Fatalf("server %d interval %d: got %v, want 3", s, i, a.Rates[s][i])
			}
		}
		if a.Lost[i] != 0 {
			t.Fatalf("no outage but lost %v", a.Lost[i])
		}
	}
}

func TestDispatchRoundRobinLosesDeadServersShare(t *testing.T) {
	cfg := testConfig(RoundRobin, flatTrace(9, 4), Outage{Server: 2, FromInterval: 1, ToInterval: 3})
	a, err := Dispatch(cfg, []float64{10, 10, 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Lost[0] != 0 || a.Lost[3] != 0 {
		t.Fatalf("lost traffic outside the outage: %v", a.Lost)
	}
	// Round-robin keeps sending the dead server its share and loses it.
	if a.Lost[1] != 3 || a.Lost[2] != 3 {
		t.Fatalf("expected 3 Gb/s lost per outage interval, got %v", a.Lost)
	}
	if a.Rates[2][1] != 0 || a.Rates[2][2] != 0 {
		t.Fatalf("dead server still assigned traffic")
	}
}

func TestDispatchSLOAwareDrainsCrashedQueueToPeers(t *testing.T) {
	// Overload server 2 (cap 5) before the crash so it parks a backlog,
	// then crash it: the SLO-aware dispatcher must move that backlog to
	// the healthy peers — nothing lost, conservation holds.
	// 100 Gb/s exceeds the fleet's 85 Gb/s estimated capacity, so the
	// weak server (cap 5) accumulates backlog under capacity-
	// proportional overflow.
	tr := flatTrace(100, 4)
	cfg := testConfig(SLOAware, tr, Outage{Server: 2, FromInterval: 2, ToInterval: 4})
	caps := []float64{40, 40, 5}
	a, err := Dispatch(cfg, caps, nil)
	if err != nil {
		t.Fatal(err)
	}
	carryBefore := a.Carry[2][1]
	if carryBefore <= 0 {
		t.Fatalf("server 2 should have parked a backlog before the crash (carry=%v)", carryBefore)
	}
	// Crash interval: the parked backlog joins the dispatch pool.
	want := 100 + carryBefore
	if got := sumAssigned(a, 2); math.Abs(got-want) > 1e-9 {
		t.Fatalf("interval 2 assigned %v, want rate+drained=%v", got, want)
	}
	if a.Rates[2][2] != 0 || a.Rates[2][3] != 0 {
		t.Fatalf("dead server still assigned traffic")
	}
	for i := range a.Lost {
		if a.Lost[i] != 0 {
			t.Fatalf("SLO-aware dispatch lost traffic: %v", a.Lost)
		}
	}
	if a.Carry[2][2] != 0 {
		t.Fatalf("crashed server's carry not drained: %v", a.Carry[2][2])
	}
}

func TestDispatchLeastOutstandingParksCarry(t *testing.T) {
	tr := flatTrace(100, 4)
	cfg := testConfig(LeastOutstanding, tr, Outage{Server: 2, FromInterval: 2, ToInterval: 3})
	a, err := Dispatch(cfg, []float64{40, 40, 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	carryBefore := a.Carry[2][1]
	if carryBefore <= 0 {
		t.Fatalf("server 2 should have parked a backlog (carry=%v)", carryBefore)
	}
	// Least-outstanding parks the queue: not lost, not redistributed.
	if a.Carry[2][2] != carryBefore {
		t.Fatalf("carry should park across the outage: %v -> %v", carryBefore, a.Carry[2][2])
	}
	for i := range a.Lost {
		if a.Lost[i] != 0 {
			t.Fatalf("least-outstanding lost traffic: %v", a.Lost)
		}
	}
	// After the server returns, its share is weighted by free capacity
	// (capacity minus the parked backlog), exactly as for its peers.
	caps := []float64{40, 40, 5}
	var sumW float64
	w := make([]float64, 3)
	for s := range w {
		w[s] = math.Max(caps[s]-a.Carry[s][2], 0.05*caps[s])
		sumW += w[s]
	}
	if want := 100 * w[2] / sumW; math.Abs(a.Rates[2][3]-want) > 1e-9 {
		t.Fatalf("returning server share %v, want free-capacity weighted %v", a.Rates[2][3], want)
	}
}

func TestDispatchConservation(t *testing.T) {
	tr := flatTrace(30, 6)
	caps := []float64{40, 40, 5}
	scores := []float64{0.2, 0.2, 0.1}
	for _, pol := range Policies() {
		cfg := testConfig(pol, tr)
		a, err := Dispatch(cfg, caps, scores)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			total := sumAssigned(a, i) + a.Lost[i]
			if math.Abs(total-30) > 1e-9 {
				t.Fatalf("%s interval %d: assigned+lost = %v, want 30", pol, i, total)
			}
		}
	}
}

func TestDispatchAdvisorFillsEfficientFirst(t *testing.T) {
	tr := flatTrace(10, 1)
	cfg := testConfig(AdvisorDriven, tr)
	caps := []float64{40, 40, 40}
	// Server 1 is most efficient: it must fill to margin×cap before the
	// others see anything beyond spill.
	scores := []float64{0.1, 0.9, 0.2}
	a, err := Dispatch(cfg, caps, scores)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rates[1][0] != 10 {
		t.Fatalf("most efficient server should take the whole 10 Gb/s, got %v", a.Rates[1][0])
	}
	if a.Rates[0][0] != 0 || a.Rates[2][0] != 0 {
		t.Fatalf("less efficient servers should idle: %v %v", a.Rates[0][0], a.Rates[2][0])
	}
}

func TestDispatchAllDownLosesEverything(t *testing.T) {
	tr := flatTrace(10, 2)
	for _, pol := range Policies() {
		cfg := &Config{
			Classes: []Class{{Name: "a", Platform: "host-cpu", Count: 1}},
			Policy:  pol,
			Trace:   tr,
			Outages: []Outage{{Server: 0, FromInterval: 0, ToInterval: 2}},
		}
		a, err := Dispatch(cfg, []float64{40}, []float64{1})
		if err != nil {
			t.Fatal(err)
		}
		if a.Lost[0] != 10 || a.Lost[1] != 10 {
			t.Fatalf("%s: all servers down should lose the full rate, got %v", pol, a.Lost)
		}
	}
}
