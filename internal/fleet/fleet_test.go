package fleet

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

// burstyFleetConfig is a small heterogeneous fleet on a bursty trace:
// bursts that overload the weak snic-cpu servers (cap ≈ 6.6 Gb/s for
// the trace workload) under an even split while the hosts (cap ≈ 65)
// have plenty of headroom.
func burstyFleetConfig(policy Policy) Config {
	return Config{
		Classes: []Class{NICHosts(2), SNICCPUs(2)},
		Policy:  policy,
		Trace:   core.BurstyTrace(4, 48, 12, 3, 300*sim.Microsecond),
		Seed:    7,
	}
}

func TestFleetRunBasics(t *testing.T) {
	r := core.NewRunner()
	res, err := Run(r, burstyFleetConfig(SLOAware))
	if err != nil {
		t.Fatal(err)
	}
	if res.Servers != 4 || len(res.PerServer) != 4 {
		t.Fatalf("expected 4 servers, got %d/%d", res.Servers, len(res.PerServer))
	}
	if res.AggTputGbps <= 0 || res.PowerW <= 0 || res.TCO5yrUSD <= 0 {
		t.Fatalf("empty rollup: %+v", res)
	}
	if res.Latency.Count == 0 || res.FleetP99 <= 0 {
		t.Fatalf("no latency distribution: %+v", res.Latency)
	}
	if res.Attainment < 0 || res.Attainment > 1 {
		t.Fatalf("attainment out of range: %v", res.Attainment)
	}
	if res.UtilMin > res.UtilMean || res.UtilMean > res.UtilMax {
		t.Fatalf("utilization ordering broken: %v %v %v", res.UtilMin, res.UtilMean, res.UtilMax)
	}
	// Identical servers within a class share one simulation.
	if got := r.Sims(); got > 2 {
		t.Fatalf("symmetric 2-class fleet should memoize to ≤2 sims, ran %d", got)
	}
}

func TestFleetDeterministicAcrossParallelism(t *testing.T) {
	run := func(parallelism int) (Result, []obs.RunManifest) {
		r := core.NewRunner()
		r.Parallelism = parallelism
		r.Telemetry = obs.NewCollector()
		cfg := burstyFleetConfig(SLOAware)
		cfg.Classes = []Class{NICHosts(2), SNICCPUs(1), SNICAccels(1)}
		cfg.Outages = []Outage{{Server: 1, FromInterval: 4, ToInterval: 8}}
		res, err := Run(r, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, r.Telemetry.ManifestsFor(res.ServerRunIDs)
	}
	r1, m1 := run(1)
	r8, m8 := run(8)
	if !reflect.DeepEqual(r1, r8) {
		t.Fatalf("fleet result differs between -j 1 and -j 8:\n%+v\n%+v", r1, r8)
	}
	if !reflect.DeepEqual(m1, m8) {
		t.Fatalf("fleet telemetry manifests differ between -j 1 and -j 8")
	}
}

func TestSLOAwareBeatsRoundRobinP99OnBurstyTrace(t *testing.T) {
	r := core.NewRunner()
	rr, err := Run(r, burstyFleetConfig(RoundRobin))
	if err != nil {
		t.Fatal(err)
	}
	slo, err := Run(r, burstyFleetConfig(SLOAware))
	if err != nil {
		t.Fatal(err)
	}
	if slo.FleetP99 >= rr.FleetP99 {
		t.Fatalf("SLO-aware p99 %v should strictly beat round-robin %v", slo.FleetP99, rr.FleetP99)
	}
	if slo.Attainment < rr.Attainment {
		t.Fatalf("SLO-aware attainment %v worse than round-robin %v", slo.Attainment, rr.Attainment)
	}
}

func TestFailoverReroutingDrainsToHealthyPeers(t *testing.T) {
	// Crash one of three hosts mid-trace. Round-robin keeps sending it
	// traffic (lost); SLO-aware re-routes, so the fleet delivers more.
	mk := func(policy Policy) Config {
		return Config{
			Classes: []Class{NICHosts(3)},
			Policy:  policy,
			Trace:   core.BurstyTrace(6, 30, 12, 4, 300*sim.Microsecond),
			Seed:    11,
			Outages: []Outage{{Server: 0, FromInterval: 4, ToInterval: 9}},
		}
	}
	r := core.NewRunner()
	rr, err := Run(r, mk(RoundRobin))
	if err != nil {
		t.Fatal(err)
	}
	slo, err := Run(r, mk(SLOAware))
	if err != nil {
		t.Fatal(err)
	}
	if rr.LostGbps <= 0 {
		t.Fatalf("round-robin should lose the dead server's share, lost %v", rr.LostGbps)
	}
	if slo.LostGbps != 0 {
		t.Fatalf("SLO-aware should re-route around the dead server, lost %v", slo.LostGbps)
	}
	if slo.AggTputGbps <= rr.AggTputGbps {
		t.Fatalf("re-routing should deliver more: SLO-aware %v vs round-robin %v Gb/s",
			slo.AggTputGbps, rr.AggTputGbps)
	}
	if slo.DeliveredFrac <= rr.DeliveredFrac {
		t.Fatalf("delivered fraction: SLO-aware %v vs round-robin %v", slo.DeliveredFrac, rr.DeliveredFrac)
	}
}

func TestFleetValidation(t *testing.T) {
	r := core.NewRunner()
	bad := []Config{
		{},
		{Classes: []Class{NICHosts(2)}},                        // no trace
		{Classes: []Class{NICHosts(2)}, Trace: flatTrace(1, 4)}, // no policy
		{Classes: []Class{NICHosts(1)}, Trace: flatTrace(1, 4), Policy: RoundRobin,
			Outages: []Outage{{Server: 5}}},
		{Classes: []Class{NICHosts(1)}, Trace: flatTrace(1, 4), Policy: RoundRobin,
			Function: "nope"},
	}
	for i, cfg := range bad {
		if _, err := Run(r, cfg); err == nil {
			t.Fatalf("config %d should have been rejected", i)
		}
	}
}

func TestFleetReportStableUnderRerun(t *testing.T) {
	render := func() []byte {
		r := core.NewRunner()
		res, err := Run(r, burstyFleetConfig(AdvisorDriven))
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		for _, s := range res.PerServer {
			b.WriteString(s.Class)
			b.WriteByte(' ')
		}
		b.WriteString(res.FleetP99.String())
		return b.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Fatalf("re-running the same fleet produced different output")
	}
}
