package fleet

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/tco"
	"repro/internal/trace"
)

// Provisioning answers Table 5's question in its general form: how many
// servers of each flavour does a target offered load take, at a target
// SLO? The paper fixes the SNIC fleet at 10 servers and sizes the NIC
// fleet to equal aggregate throughput; here both sides are found by the
// same minimum-server search, so the published ratios (equal fleets for
// fio/OvS/REM, ≈3.5× NIC servers for Compress) fall out of measured
// capacities instead of being assumed.

// ProvisionSpec names one application column of the provisioning table.
type ProvisionSpec struct {
	App      string
	Function string
	Variant  string
	// SNICPlatform is the SmartNIC-side deployment (the NIC side is
	// always the host CPU).
	SNICPlatform core.Platform
	// FleetSim selects the search predicate. True runs a full SLO-aware
	// fleet simulation per probe (the trace-replay regime: bursty load,
	// attainment measured from latency distributions). False sizes by
	// measured max-throughput capacity, which is the paper's own
	// arithmetic for throughput-bound applications.
	FleetSim bool
}

// Table5Specs returns the paper's four applications. REM is the trace
// workload, so it provisions through fleet simulation; the others are
// capacity-bound and size by measured max throughput.
func Table5Specs() []ProvisionSpec {
	return []ProvisionSpec{
		{App: "fio", Function: "fio", Variant: "read", SNICPlatform: core.SNICCPU},
		{App: "OVS", Function: "ovs", Variant: "load100", SNICPlatform: core.SNICCPU},
		{App: "REM", Function: "rem", Variant: string(trace.RuleSetExecutable), SNICPlatform: core.SNICAccel, FleetSim: true},
		{App: "Compress", Function: "compress", Variant: "app", SNICPlatform: core.SNICAccel},
	}
}

// ProvisionOpts tunes the search.
type ProvisionOpts struct {
	// TargetGbps is the offered load both fleets must serve. Zero sizes
	// it to BaselineSNICServers times the SNIC side's measured capacity
	// (mirroring Table 5's fixed SNIC baseline).
	TargetGbps float64
	// BaselineSNICServers is that baseline (default 8).
	BaselineSNICServers int
	// SLO and TargetAttainment gate the fleet-sim predicate
	// (defaults 300µs, 0.99).
	SLO              sim.Duration
	TargetAttainment float64
	// Trace is the normalized offered-load shape for fleet-sim probes;
	// it is rescaled so its mean hits TargetGbps. Default: the diurnal
	// trace subsampled and time-compressed for fast probes.
	Trace *trace.HyperscalerTrace
	Seed  uint64
	// MaxServers bounds the search (default 4096).
	MaxServers int
}

func (o ProvisionOpts) withDefaults() ProvisionOpts {
	if o.BaselineSNICServers <= 0 {
		o.BaselineSNICServers = 8
	}
	if o.SLO <= 0 {
		o.SLO = defaultSLO
	}
	if o.TargetAttainment <= 0 {
		o.TargetAttainment = defaultAttainment
	}
	if o.Trace == nil {
		o.Trace = trace.NewHyperscalerTrace(trace.DefaultHyperscalerConfig()).
			Subsample(16).Compress(150 * sim.Microsecond)
	}
	if o.MaxServers <= 0 {
		o.MaxServers = 4096
	}
	return o
}

// ProvisionResult is one application's provisioning outcome.
type ProvisionResult struct {
	App          string
	SNICPlatform core.Platform
	TargetGbps   float64

	ServersSNIC int
	ServersNIC  int
	// Ratio is NIC servers per SNIC server — Table 5's headline number.
	Ratio float64

	// Per-server measured power on each side.
	SNICPowerW float64
	NICPowerW  float64

	TCOSNIC     float64
	TCONIC      float64
	SavingsFrac float64

	// Probes counts predicate evaluations across both searches.
	Probes int
}

func (p ProvisionResult) String() string {
	return fmt.Sprintf("%-10s %d× %s vs %d× NIC host (%.2fx) — savings %.1f%%",
		p.App, p.ServersSNIC, p.SNICPlatform, p.ServersNIC, p.Ratio, p.SavingsFrac*100)
}

// Provision runs the minimum-server search for one application.
func Provision(r *core.Runner, spec ProvisionSpec, opts ProvisionOpts) (ProvisionResult, error) {
	opts = opts.withDefaults()
	cfg, err := core.Lookup(spec.Function, spec.Variant)
	if err != nil {
		return ProvisionResult{}, fmt.Errorf("fleet: %v", err)
	}
	res := ProvisionResult{App: spec.App, SNICPlatform: spec.SNICPlatform}
	if spec.FleetSim {
		// Fleet probes replay the MTU trace workload; size and meter
		// against the same shape.
		cfg = core.TraceWorkload(spec.Function, spec.Variant)
	}

	// Measured per-server operating points (memoized across calls).
	snicCap := r.MaxThroughput(cfg, spec.SNICPlatform)
	nicCap := r.MaxThroughput(cfg, core.HostCPU)
	res.SNICPowerW = snicCap.ServerPowerW
	res.NICPowerW = nicCap.ServerPowerW

	res.TargetGbps = opts.TargetGbps
	if res.TargetGbps <= 0 {
		res.TargetGbps = float64(opts.BaselineSNICServers) * snicCap.TputGbps
	}

	probes := 0
	meets := func(plat core.Platform, capGbps float64) func(int) bool {
		if !spec.FleetSim {
			return func(n int) bool {
				probes++
				return float64(n)*capGbps >= res.TargetGbps
			}
		}
		return func(n int) bool {
			probes++
			fc := Config{
				Classes:          []Class{{Name: "prov-" + string(plat), Platform: plat, Count: n}},
				Policy:           SLOAware,
				Function:         spec.Function,
				Variant:          spec.Variant,
				Trace:            opts.Trace.Scale(res.TargetGbps / opts.Trace.MeanGbps()),
				SLO:              opts.SLO,
				TargetAttainment: opts.TargetAttainment,
				Seed:             opts.Seed,
			}
			fr, err := Run(r, fc)
			if err != nil {
				panic(err) // config is internally constructed; can't fail
			}
			return fr.MeetsSLO && fr.DeliveredFrac >= 0.97
		}
	}

	res.ServersSNIC, err = searchMin(opts.MaxServers, meets(spec.SNICPlatform, snicCap.TputGbps))
	if err != nil {
		return res, fmt.Errorf("fleet: %s SNIC side: %v", spec.App, err)
	}
	res.ServersNIC, err = searchMin(opts.MaxServers, meets(core.HostCPU, nicCap.TputGbps))
	if err != nil {
		return res, fmt.Errorf("fleet: %s NIC side: %v", spec.App, err)
	}
	res.Probes = probes
	res.Ratio = float64(res.ServersNIC) / float64(res.ServersSNIC)

	m := tco.PaperCostModel()
	res.TCOSNIC = m.FleetTCO(homogeneous(res.ServersSNIC, true, res.SNICPowerW))
	res.TCONIC = m.FleetTCO(homogeneous(res.ServersNIC, false, res.NICPowerW))
	res.SavingsFrac = 1 - res.TCOSNIC/res.TCONIC
	return res, nil
}

// ProvisionTable5 provisions every Table 5 application.
func ProvisionTable5(r *core.Runner, opts ProvisionOpts) ([]ProvisionResult, error) {
	specs := Table5Specs()
	out := make([]ProvisionResult, len(specs))
	for i, spec := range specs {
		res, err := Provision(r, spec, opts)
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

func homogeneous(n int, snic bool, powerW float64) []tco.FleetServer {
	out := make([]tco.FleetServer, n)
	for i := range out {
		out[i] = tco.FleetServer{SNIC: snic, PowerW: powerW}
	}
	return out
}

// searchMin finds the smallest n in [1, max] with meets(n) true,
// assuming meets is monotone in n: exponential doubling to bracket, then
// binary search inside the bracket.
func searchMin(max int, meets func(int) bool) (int, error) {
	lo, hi := 0, 1
	for !meets(hi) {
		if hi >= max {
			return 0, fmt.Errorf("no fleet of ≤ %d servers meets the target", max)
		}
		lo = hi
		hi = int(math.Min(float64(hi*2), float64(max)))
	}
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if meets(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
