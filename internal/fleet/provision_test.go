package fleet

import (
	"testing"

	"repro/internal/core"
)

func TestSearchMin(t *testing.T) {
	probes := 0
	meets := func(threshold int) func(int) bool {
		return func(n int) bool { probes++; return n >= threshold }
	}
	for _, want := range []int{1, 2, 3, 7, 100, 4096} {
		n, err := searchMin(4096, meets(want))
		if err != nil {
			t.Fatal(err)
		}
		if n != want {
			t.Fatalf("searchMin found %d, want %d", n, want)
		}
	}
	if probes == 0 {
		t.Fatalf("predicate never evaluated")
	}
	if _, err := searchMin(8, meets(9)); err == nil {
		t.Fatalf("unreachable target should error")
	}
}

// TestProvisionCompressRatio is the acceptance check on Table 5's
// headline generalization: the compression engine's throughput advantage
// means one SNIC-accelerator server replaces ≈3.5 NIC servers.
func TestProvisionCompressRatio(t *testing.T) {
	r := core.NewRunner()
	r.Parallelism = 4
	res, err := Provision(r, ProvisionSpec{
		App: "Compress", Function: "compress", Variant: "app", SNICPlatform: core.SNICAccel,
	}, ProvisionOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio < 3.0 || res.Ratio > 4.0 {
		t.Fatalf("Compress NIC/SNIC server ratio %.2f, want ≈3.5 (paper Table 5)", res.Ratio)
	}
	if res.SavingsFrac <= 0 {
		t.Fatalf("Compress SNIC fleet should be cheaper, savings %.1f%%", res.SavingsFrac*100)
	}
	if res.Probes == 0 {
		t.Fatalf("search reported no probes")
	}
}

func TestProvisionEqualThroughputAppsNearUnity(t *testing.T) {
	r := core.NewRunner()
	r.Parallelism = 4
	res, err := Provision(r, ProvisionSpec{
		App: "OVS", Function: "ovs", Variant: "load100", SNICPlatform: core.SNICCPU,
	}, ProvisionOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// OvS forwards in the eSwitch on both platforms: equal fleets.
	if res.Ratio < 0.9 || res.Ratio > 1.3 {
		t.Fatalf("OVS server ratio %.2f, want ≈1.0", res.Ratio)
	}
}

// TestProvisionFleetSimREM exercises the SLO-bound fleet-simulation
// predicate end to end on a deliberately small probe trace.
func TestProvisionFleetSimREM(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet-simulation search in -short mode")
	}
	r := core.NewRunner()
	r.Parallelism = 4
	res, err := Provision(r, ProvisionSpec{
		App: "REM", Function: "rem", Variant: "file_executable",
		SNICPlatform: core.SNICAccel, FleetSim: true,
	}, ProvisionOpts{BaselineSNICServers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.ServersSNIC < 1 || res.ServersNIC < 1 {
		t.Fatalf("degenerate fleets: %+v", res)
	}
	// The paper's REM column: SNIC and NIC fleets are comparable in
	// size and the SNIC fleet does NOT save money (its hardware premium
	// isn't paid back by REM's power delta).
	if res.SavingsFrac >= 0 {
		t.Fatalf("REM SNIC fleet should cost more (paper Table 5), savings %.1f%%", res.SavingsFrac*100)
	}
	// Determinism: a second search over a fresh runner reproduces the
	// same provisioning answer.
	r2 := core.NewRunner()
	r2.Parallelism = 1
	res2, err := Provision(r2, ProvisionSpec{
		App: "REM", Function: "rem", Variant: "file_executable",
		SNICPlatform: core.SNICAccel, FleetSim: true,
	}, ProvisionOpts{BaselineSNICServers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res != res2 {
		t.Fatalf("provisioning not deterministic:\n%+v\n%+v", res, res2)
	}
}
