// Package fleet simulates a datacenter of servers built from the
// single-server testbed models: a configurable mix of NIC-only hosts,
// SNIC-CPU servers and SNIC-accelerator servers behind a dispatcher
// with pluggable placement policies, driven by the diurnal hyperscaler
// trace scaled to fleet-level offered rates. It rolls the per-server
// measurements up into the quantities the paper's closing argument is
// really about — aggregate throughput, fleet p99 SLO attainment,
// utilization spread, energy, and 5-year TCO — and provisions fleets by
// searching for the minimum server count that meets an SLO (the
// generalization of Table 5's "how many NIC servers equal one SNIC
// server").
package fleet

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tco"
	"repro/internal/trace"
)

// Class is a homogeneous group of servers.
type Class struct {
	// Name labels the class in reports and seeds its servers' RNG
	// streams.
	Name string
	// Platform selects which single-server model the class runs on.
	Platform core.Platform
	// Count is how many servers the class contributes.
	Count int
}

// NICHosts, SNICCPUs and SNICAccels are the three standard classes.
func NICHosts(n int) Class   { return Class{Name: "nic-host", Platform: core.HostCPU, Count: n} }
func SNICCPUs(n int) Class   { return Class{Name: "snic-cpu", Platform: core.SNICCPU, Count: n} }
func SNICAccels(n int) Class { return Class{Name: "snic-accel", Platform: core.SNICAccel, Count: n} }

// Outage marks one server down for the trace intervals in
// [FromInterval, ToInterval).
type Outage struct {
	Server       int
	FromInterval int
	ToInterval   int
}

// Config describes one fleet run.
type Config struct {
	// Classes composes the fleet; server indices run through the
	// classes in order.
	Classes []Class
	// Policy selects the dispatcher.
	Policy Policy
	// Function/Variant pick the served workload from the catalog
	// (default: REM with the executable rule set, the paper's trace
	// workload).
	Function string
	Variant  string
	// Trace is the fleet-level offered load (scale the single-server
	// diurnal trace up with HyperscalerTrace.Scale).
	Trace *trace.HyperscalerTrace
	// SLO is the p99 latency target (default 300µs).
	SLO sim.Duration
	// TargetAttainment is the fraction of requests that must meet the
	// SLO for the fleet to pass (default 0.99).
	TargetAttainment float64
	// SLOMargin is the per-server load headroom target the SLO-aware
	// and advisor policies fill to, as a fraction of estimated capacity
	// (default 0.85).
	SLOMargin float64
	// Seed shifts every server's RNG streams.
	Seed uint64
	// Outages inject per-server downtime.
	Outages []Outage
}

const (
	defaultSLO        = 300 * sim.Microsecond
	defaultAttainment = 0.99
	defaultSLOMargin  = 0.85
)

// Servers is the fleet size.
func (c *Config) Servers() int {
	n := 0
	for _, cl := range c.Classes {
		n += cl.Count
	}
	return n
}

// ClassOf maps a server index to its class.
func (c *Config) ClassOf(s int) Class {
	for _, cl := range c.Classes {
		if s < cl.Count {
			return cl
		}
		s -= cl.Count
	}
	panic(fmt.Sprintf("fleet: server %d out of range", s))
}

// ServerDown reports whether server s is down in trace interval i.
func (c *Config) ServerDown(s, i int) bool {
	for _, o := range c.Outages {
		if o.Server == s && i >= o.FromInterval && i < o.ToInterval {
			return true
		}
	}
	return false
}

func (c *Config) slo() sim.Duration {
	if c.SLO > 0 {
		return c.SLO
	}
	return defaultSLO
}

func (c *Config) targetAttainment() float64 {
	if c.TargetAttainment > 0 {
		return c.TargetAttainment
	}
	return defaultAttainment
}

func (c *Config) sloMargin() float64 {
	if c.SLOMargin > 0 {
		return c.SLOMargin
	}
	return defaultSLOMargin
}

func (c *Config) function() (string, string) {
	if c.Function == "" {
		return "rem", string(trace.RuleSetExecutable)
	}
	return c.Function, c.Variant
}

// validate rejects configurations the run could only misreport.
func (c *Config) validate() error {
	if c.Servers() < 1 {
		return fmt.Errorf("fleet: need at least one server")
	}
	for _, cl := range c.Classes {
		if cl.Count < 0 {
			return fmt.Errorf("fleet: class %q has negative count", cl.Name)
		}
	}
	if c.Trace == nil || len(c.Trace.RatesGbps) == 0 {
		return fmt.Errorf("fleet: need a non-empty trace")
	}
	fn, variant := c.function()
	if _, err := core.Lookup(fn, variant); err != nil {
		return fmt.Errorf("fleet: %v", err)
	}
	n := c.Servers()
	for _, o := range c.Outages {
		if o.Server < 0 || o.Server >= n {
			return fmt.Errorf("fleet: outage for server %d in a %d-server fleet", o.Server, n)
		}
	}
	if c.Policy == "" {
		return fmt.Errorf("fleet: no dispatch policy")
	}
	return nil
}

// key serializes the fleet run identity; the fleet RunID and the group
// component of every server's memo key derive from it.
func (c *Config) key() string {
	fn, variant := c.function()
	classes := ""
	for _, cl := range c.Classes {
		classes += fmt.Sprintf("%s/%s/%d,", cl.Name, cl.Platform, cl.Count)
	}
	return fmt.Sprintf("fleet|%s/%s|pol:%s|cl:%s|tr:%s|slo:%d|att:%g|margin:%g|seed:%d|out:%v",
		fn, variant, c.Policy, classes, core.TraceFingerprint(c.Trace),
		c.slo(), c.targetAttainment(), c.sloMargin(), c.Seed, c.Outages)
}

// ServerResult is one server's share of a fleet run.
type ServerResult struct {
	Index    int
	Class    string
	Platform core.Platform

	OfferedGbps float64
	TputGbps    float64
	Util        float64
	PowerW      float64
	P99         sim.Duration
	Dropped     uint64
	Sent        uint64
	Completed   uint64
	// RunID names the server's telemetry run (shared by identical
	// servers, which share one simulation).
	RunID uint64
}

// Result is the fleet-level rollup.
type Result struct {
	Policy  Policy
	Servers int
	SLO     sim.Duration
	// RunID identifies the fleet run; per-server telemetry groups
	// under it via ServerRunIDs.
	RunID uint64

	OfferedGbps   float64 // trace mean at fleet level
	AggTputGbps   float64 // sum of per-server achieved rates
	LostGbps      float64 // mean dispatch-level loss (dead-server traffic)
	DeliveredFrac float64

	Latency    stats.Summary // merged across all servers
	FleetP99   sim.Duration
	Attainment float64 // fraction of issued requests completed within SLO
	MeetsSLO   bool

	UtilMin, UtilMean, UtilMax float64

	PowerW             float64 // fleet total average draw
	AvgPowerPerServerW float64
	EnergyKWhPerDay    float64
	TCO5yrUSD          float64

	PerServer    []ServerResult
	ServerRunIDs []uint64
}

// Run simulates the fleet: dispatch the trace across the servers, replay
// every server (one parallel worker per distinct server behaviour,
// memoized and merged in server order, so output is byte-identical at
// any parallelism), and roll the measurements up.
func Run(r *core.Runner, cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	fn, variant := cfg.function()
	workload := core.TraceWorkload(fn, variant)
	n := cfg.Servers()
	caps, scores := capacities(r, workload, &cfg)
	asg, err := Dispatch(&cfg, caps, scores)
	if err != nil {
		return Result{}, err
	}

	runID := obs.DeriveRunID(cfg.key())
	group := fmt.Sprintf("%016x", runID)

	// Identical servers — same class (platform + seed) and same
	// assigned rate row — share one simulation. Under a symmetric
	// policy a homogeneous 1000-server fleet costs one replay.
	type item struct {
		plat  core.Platform
		rates []float64
		seed  uint64
		label string
	}
	var items []item
	itemIdx := make(map[string]int)
	srvItem := make([]int, n)
	for s := 0; s < n; s++ {
		cl := cfg.ClassOf(s)
		row := asg.Rates[s]
		k := cl.Name + "|" + core.TraceFingerprint(&trace.HyperscalerTrace{Interval: cfg.Trace.Interval, RatesGbps: row})
		idx, ok := itemIdx[k]
		if !ok {
			idx = len(items)
			itemIdx[k] = idx
			items = append(items, item{
				plat:  cl.Platform,
				rates: row,
				seed:  cfg.Seed ^ classSeed(cl.Name),
				label: fmt.Sprintf("fleet %s %s", cfg.Policy, cl.Name),
			})
		}
		srvItem[s] = idx
	}

	replays := make([]core.ServerReplay, len(items))
	step := r.StepProgress(len(items))
	r.ForEach(len(items), func(k int) {
		it := items[k]
		replays[k] = r.ReplayServer(workload, it.plat, it.rates, cfg.Trace.Interval, it.seed, group)
		step(it.label)
	})

	res := Result{
		Policy:      cfg.Policy,
		Servers:     n,
		SLO:         cfg.slo(),
		RunID:       runID,
		OfferedGbps: cfg.Trace.MeanGbps(),
		LostGbps:    asg.LostGbps(),
	}
	merged := stats.NewHistogram()
	var sent, within uint64
	var utilSum float64
	res.UtilMin = math.Inf(1)
	servers := make([]tco.FleetServer, 0, n)
	for s := 0; s < n; s++ {
		rep := replays[srvItem[s]]
		cl := cfg.ClassOf(s)
		res.AggTputGbps += rep.AvgTputGbps
		res.PowerW += rep.AvgPowerW
		utilSum += rep.Util
		res.UtilMin = math.Min(res.UtilMin, rep.Util)
		res.UtilMax = math.Max(res.UtilMax, rep.Util)
		merged.Merge(rep.Hist)
		sent += rep.Sent
		within += rep.Hist.CountAtOrBelow(cfg.slo())
		servers = append(servers, tco.FleetServer{SNIC: cl.Platform != core.HostCPU, PowerW: rep.AvgPowerW})
		res.PerServer = append(res.PerServer, ServerResult{
			Index: s, Class: cl.Name, Platform: cl.Platform,
			OfferedGbps: rep.OfferedGbps, TputGbps: rep.AvgTputGbps,
			Util: rep.Util, PowerW: rep.AvgPowerW, P99: rep.Latency.P99,
			Dropped: rep.Dropped, Sent: rep.Sent, Completed: rep.Completed,
			RunID: rep.RunID,
		})
		res.ServerRunIDs = append(res.ServerRunIDs, rep.RunID)
	}
	res.Latency = merged.Summarize()
	res.FleetP99 = res.Latency.P99
	// Attainment counts every issued request: one that never completed
	// (dropped, or stuck behind a dead server) cannot have met the SLO.
	if sent > 0 {
		res.Attainment = float64(within) / float64(sent)
	} else {
		res.Attainment = 1
	}
	res.MeetsSLO = res.Attainment >= cfg.targetAttainment()
	if res.OfferedGbps > 0 {
		res.DeliveredFrac = res.AggTputGbps / res.OfferedGbps
	} else {
		res.DeliveredFrac = 1
	}
	res.UtilMean = utilSum / float64(n)
	if res.UtilMin > res.UtilMax {
		res.UtilMin, res.UtilMax = 0, 0
	}
	res.AvgPowerPerServerW = res.PowerW / float64(n)
	res.EnergyKWhPerDay = power.EnergyKWh(power.Watts(res.PowerW), 24*3600*sim.Second)
	res.TCO5yrUSD = tco.PaperCostModel().FleetTCO(servers)
	return res, nil
}

// capacities estimates per-server capacity and efficiency score from the
// advisor's analytic predictor — the same model a real dispatcher would
// hold, and deliberately an estimate rather than ground truth.
func capacities(r *core.Runner, workload *core.Config, cfg *Config) (caps, scores []float64) {
	adv := core.NewAdvisorWith(r)
	type est struct{ cap, score float64 }
	byPlat := make(map[core.Platform]est)
	n := cfg.Servers()
	caps = make([]float64, n)
	scores = make([]float64, n)
	for s := 0; s < n; s++ {
		cl := cfg.ClassOf(s)
		e, ok := byPlat[cl.Platform]
		if !ok {
			p := adv.Predict(workload, cl.Platform)
			// Efficiency: predicted throughput per total watt (idle
			// server draw + active delta), as the advisor ranks.
			e = est{cap: p.TputGbps, score: p.TputGbps / (252 + p.ActivePowerW)}
			byPlat[cl.Platform] = e
		}
		caps[s] = e.cap
		scores[s] = e.score
	}
	return caps, scores
}

// classSeed folds a class name into a seed offset so every class gets
// its own deterministic RNG stream family.
func classSeed(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}
