package fleet

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/trace"
)

// assertConserved re-derives the dispatcher's conservation law from the
// outputs alone: over the whole trace, offered mass equals assigned +
// lost + final parked backlog + mass worked off against capacity. The
// per-interval audit inside Dispatch checks the same law before backlog
// resolution; this closes the loop on the public result.
func assertConserved(t *testing.T, cfg *Config, a *Assignment, caps []float64) {
	t.Helper()
	n := cfg.Servers()
	intervals := len(cfg.Trace.RatesGbps)
	var offered, assigned, lost float64
	for i := 0; i < intervals; i++ {
		offered += cfg.Trace.RatesGbps[i]
		lost += a.Lost[i]
		assigned += sumAssigned(a, i)
	}
	// Assigned mass either re-enters a later interval as carry (already
	// counted in that interval's audit) or is served. Here: every
	// interval's assigned + prior carry <= capacity + new carry, so
	// summing the final carry plus all interval-level (assigned - carry
	// deltas) must equal... simpler: replay the backlog recurrence.
	carry := make([]float64, n)
	var served float64
	for i := 0; i < intervals; i++ {
		for s := 0; s < n; s++ {
			if cfg.ServerDown(s, i) {
				// The policy already resolved this server's carry (lost
				// or drained); its published carry must match.
				carry[s] = a.Carry[s][i]
				continue
			}
			load := carry[s] + a.Rates[s][i]
			work := math.Min(load, caps[s])
			served += work
			carry[s] = load - work
			if math.Abs(carry[s]-a.Carry[s][i]) > 1e-9 {
				t.Fatalf("server %d interval %d: replayed carry %v != published %v",
					s, i, carry[s], a.Carry[s][i])
			}
		}
	}
	var parked float64
	for s := 0; s < n; s++ {
		parked += carry[s]
	}
	if math.Abs(offered-(served+lost+parked)) > 1e-6*math.Max(1, offered) {
		t.Fatalf("trace-level conservation broken: offered %v != served %v + lost %v + parked %v",
			offered, served, lost, parked)
	}
}

// Every policy must conserve rate mass, including under outages that
// force loss (round-robin), parking (least-outstanding) and draining
// (slo-aware, advisor), and under overload that builds carry.
func TestDispatchConservationAllPolicies(t *testing.T) {
	caps := []float64{10, 10, 5}
	scores := []float64{1.0, 0.8, 1.2}
	scenarios := []struct {
		name    string
		tr      *trace.HyperscalerTrace
		outages []Outage
	}{
		{"steady", flatTrace(9, 6), nil},
		{"overload builds carry", flatTrace(30, 6), nil},
		{"mid-trace outage", flatTrace(9, 8), []Outage{{Server: 1, FromInterval: 2, ToInterval: 5}}},
		{"all down", flatTrace(9, 4), []Outage{
			{Server: 0, FromInterval: 1, ToInterval: 3},
			{Server: 1, FromInterval: 1, ToInterval: 3},
			{Server: 2, FromInterval: 1, ToInterval: 3}}},
	}
	for _, pol := range Policies() {
		for _, sc := range scenarios {
			t.Run(string(pol)+"/"+sc.name, func(t *testing.T) {
				cfg := testConfig(pol, sc.tr, sc.outages...)
				a, err := Dispatch(cfg, caps, scores)
				if err != nil {
					t.Fatalf("Dispatch: %v", err)
				}
				assertConserved(t, cfg, a, caps)
				for i := range a.Lost {
					if a.Lost[i] < 0 {
						t.Fatalf("negative loss %v at interval %d", a.Lost[i], i)
					}
					for s := range a.Rates {
						if a.Rates[s][i] < 0 || a.Carry[s][i] < 0 {
							t.Fatalf("negative rate/carry for server %d interval %d", s, i)
						}
					}
				}
			})
		}
	}
}

// FuzzDispatch throws byte-derived topologies, traces, outages and
// capacities at every policy: Dispatch must never error on a well-formed
// config, never emit negative mass, and always pass its own built-in
// per-interval conservation audit (an error return here IS the audit
// tripping).
func FuzzDispatch(f *testing.F) {
	f.Add([]byte{3, 10, 20, 5, 9, 9, 9, 9, 1, 2, 4})
	f.Add([]byte{1, 1, 255, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		if len(data) > 64 {
			data = data[:64]
		}
		n := 1 + int(data[0])%5
		caps := make([]float64, n)
		scores := make([]float64, n)
		for s := 0; s < n; s++ {
			caps[s] = 0.5 + float64(data[(s+1)%len(data)])/16
			scores[s] = float64(data[(s+2)%len(data)]) / 64
		}
		intervals := 1 + int(data[1])%12
		tr := flatTrace(0, 0)
		for i := 0; i < intervals; i++ {
			tr.RatesGbps = append(tr.RatesGbps, float64(data[(i+3)%len(data)])/4)
		}
		var outages []Outage
		for i := 2; i+2 < len(data) && len(outages) < 4; i += 7 {
			from := int(data[i]) % intervals
			outages = append(outages, Outage{
				Server:       int(data[i+1]) % n,
				FromInterval: from,
				ToInterval:   from + 1 + int(data[i+2])%intervals,
			})
		}
		for pi, pol := range Policies() {
			cfg := &Config{
				Classes: []Class{{Name: "f", Platform: "host-cpu", Count: n}},
				Policy:  pol,
				Trace:   tr,
				Outages: outages,
				// Exercise non-default headroom targets too.
				SLOMargin: 0.5 + float64(data[pi%len(data)]%64)/128,
			}
			a, err := Dispatch(cfg, caps, scores)
			if err != nil {
				t.Fatalf("%s: %v", pol, err)
			}
			for i := 0; i < intervals; i++ {
				if a.Lost[i] < 0 {
					t.Fatalf("%s: negative loss at %d", pol, i)
				}
				for s := 0; s < n; s++ {
					if a.Rates[s][i] < 0 || math.IsNaN(a.Rates[s][i]) {
						t.Fatalf("%s: bad rate %v for server %d interval %d", pol, a.Rates[s][i], s, i)
					}
					if a.Carry[s][i] < 0 || math.IsNaN(a.Carry[s][i]) {
						t.Fatalf("%s: bad carry %v for server %d interval %d", pol, a.Carry[s][i], s, i)
					}
				}
			}
			// Determinism: the same config dispatches identically.
			b, err := Dispatch(cfg, caps, scores)
			if err != nil {
				t.Fatalf("%s replay: %v", pol, err)
			}
			if fmt.Sprint(a.Lost) != fmt.Sprint(b.Lost) {
				t.Fatalf("%s: loss series diverged between identical dispatches", pol)
			}
		}
	})
}
