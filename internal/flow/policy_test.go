package flow

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestStaticPolicyKeys(t *testing.T) {
	if k := (StaticFunction{}).Key(); k != "static-func" {
		t.Fatalf("StaticFunction key %q", k)
	}
	if k := (StaticThreshold{K: 8}).Key(); k != "static-flow@8" {
		t.Fatalf("StaticThreshold key %q", k)
	}
	// Sub-1 thresholds normalize to 1 in both Key and Threshold.
	p := StaticThreshold{K: 0}
	if p.Key() != "static-flow@1" || p.Threshold() != 1 {
		t.Fatalf("StaticThreshold{0} should normalize to 1: %q / %d", p.Key(), p.Threshold())
	}
	a := NewAdaptive(DefaultAdaptiveConfig())
	if k := a.Key(); !strings.HasPrefix(k, "adaptive@") {
		t.Fatalf("Adaptive key %q", k)
	}
}

func snapAt(now sim.Duration, occ int, c Counters, drops uint64) Snapshot {
	return Snapshot{
		Now:       sim.Time(0).Add(now),
		Occupancy: occ,
		Capacity:  100,
		Counters:  c,
		Drops:     drops,
	}
}

func TestAdaptiveRaisesOnChurn(t *testing.T) {
	cfg := DefaultAdaptiveConfig()
	cfg.Initial, cfg.Min, cfg.Max = 4, 1, 12
	cfg.ChurnTolerance = 2
	a := NewAdaptive(cfg)

	// Interval with 10 hot evictions: far beyond tolerance —
	// multiplicative (1.5x) raise.
	a.Observe(snapAt(sim.Millisecond, 50, Counters{Evictions: 10, Thrash: 10}, 0))
	if a.Threshold() != 6 {
		t.Fatalf("threshold after churn: want 6, got %d", a.Threshold())
	}
	// More churn: keeps raising, then clamps at Max (6 -> 9 -> 12 -> 12).
	a.Observe(snapAt(2*sim.Millisecond, 50, Counters{Evictions: 30, Thrash: 30}, 0))
	a.Observe(snapAt(3*sim.Millisecond, 50, Counters{Evictions: 60, Thrash: 60}, 0))
	a.Observe(snapAt(4*sim.Millisecond, 50, Counters{Evictions: 90, Thrash: 90}, 0))
	a.Observe(snapAt(5*sim.Millisecond, 50, Counters{Evictions: 120, Thrash: 120}, 0))
	if a.Threshold() != cfg.Max {
		t.Fatalf("threshold should clamp at Max %d, got %d", cfg.Max, a.Threshold())
	}
	// A raise from K=1 still moves: 1.5x rounds up to at least +1.
	b := NewAdaptive(AdaptiveConfig{Initial: 1, Min: 1, Max: 8, HighOccFrac: 0.9, ChurnTolerance: 0})
	b.Observe(snapAt(sim.Millisecond, 50, Counters{Thrash: 5}, 0))
	if b.Threshold() != 2 {
		t.Fatalf("raise from 1 should reach 2, got %d", b.Threshold())
	}
	raises, _ := a.Steps()
	if raises == 0 {
		t.Fatal("raises not recorded")
	}
}

func TestAdaptiveLowersWithHeadroom(t *testing.T) {
	cfg := DefaultAdaptiveConfig()
	cfg.Initial, cfg.Min, cfg.Max = 4, 1, 64
	a := NewAdaptive(cfg)

	// Quiet table, slow path still seeing misses: additive decrease to Min.
	for i := 1; i <= 10; i++ {
		a.Observe(snapAt(sim.Duration(i)*sim.Millisecond, 10, Counters{Misses: uint64(20 * i)}, 0))
	}
	if a.Threshold() != cfg.Min {
		t.Fatalf("threshold should decay to Min %d, got %d", cfg.Min, a.Threshold())
	}
	_, lowers := a.Steps()
	if lowers != 3 {
		t.Fatalf("expected 3 lowering steps (4→1), got %d", lowers)
	}
}

func TestAdaptiveHoldsWhenPressuredWithoutChurn(t *testing.T) {
	cfg := DefaultAdaptiveConfig()
	cfg.Initial = 4
	a := NewAdaptive(cfg)

	// Table nearly full (no headroom) but no churn: hold, don't lower.
	a.Observe(snapAt(sim.Millisecond, 95, Counters{Misses: 100}, 5))
	if a.Threshold() != 4 {
		t.Fatalf("pressured-but-calm interval should hold K: got %d", a.Threshold())
	}
	// Pressured with any hot churn: back off.
	a.Observe(snapAt(2*sim.Millisecond, 95, Counters{Misses: 150, Evictions: 1, Thrash: 1}, 5))
	if a.Threshold() != 6 {
		t.Fatalf("pressured churny interval should raise K: got %d", a.Threshold())
	}
}

func TestAdaptiveConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*AdaptiveConfig)
	}{
		{"min below 1", func(c *AdaptiveConfig) { c.Min = 0 }},
		{"max below min", func(c *AdaptiveConfig) { c.Max = c.Min - 1 }},
		{"initial outside range", func(c *AdaptiveConfig) { c.Initial = c.Max + 1 }},
		{"bad occupancy fraction", func(c *AdaptiveConfig) { c.HighOccFrac = 1.5 }},
	}
	for _, tc := range cases {
		cfg := DefaultAdaptiveConfig()
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
	cfg := DefaultAdaptiveConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default adaptive config should validate: %v", err)
	}
}

func TestControllerRequestsInsertAtThreshold(t *testing.T) {
	eng := sim.NewEngine()
	tbl := NewTable(eng, DefaultTableConfig())
	ctl := NewController(tbl, StaticThreshold{K: 3})

	if n := ctl.OnMiss(42); n != 1 {
		t.Fatalf("first miss should return 1, got %d", n)
	}
	ctl.OnMiss(42)
	if tbl.Pending(42) {
		t.Fatal("insert requested before the threshold")
	}
	ctl.OnMiss(42)
	if !tbl.Pending(42) {
		t.Fatal("insert not requested at the threshold")
	}
	if ctl.FlowsSeen() != 1 {
		t.Fatalf("FlowsSeen: want 1, got %d", ctl.FlowsSeen())
	}
}

func TestControllerTickTracksThresholdRange(t *testing.T) {
	eng := sim.NewEngine()
	tbl := NewTable(eng, DefaultTableConfig())
	cfg := DefaultAdaptiveConfig()
	cfg.Initial, cfg.Min, cfg.Max = 4, 1, 64
	ctl := NewController(tbl, NewAdaptive(cfg))

	// One quiet interval with slow-path misses lowers K to 3. The miss
	// counter lives in the table, so the datapath order is lookup-then-miss.
	if tbl.Lookup(1, eng.Now()) {
		t.Fatal("empty table should miss")
	}
	ctl.OnMiss(1)
	ctl.Tick(eng.Now().Add(sim.Millisecond))
	lo, hi, final := ctl.ThresholdRange()
	if lo != 3 || hi != 4 || final != 3 {
		t.Fatalf("threshold range: want (3, 4, 3), got (%d, %d, %d)", lo, hi, final)
	}
	if ctl.Ticks() != 1 {
		t.Fatalf("Ticks: want 1, got %d", ctl.Ticks())
	}
}
