package flow

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// fuzzRun replays one op tape against a fresh table, auditing the
// internal ledgers after every engine step, and returns the final
// resident set (in eviction order) plus counters for determinism
// comparison.
func fuzzRun(t *testing.T, cfg TableConfig, ops []byte) ([]uint64, Counters) {
	t.Helper()
	eng := sim.NewEngine()
	tbl := NewTable(eng, cfg)
	at := sim.Time(0)
	for i := 0; i+1 < len(ops); i += 2 {
		op := ops[i]
		flowID := uint64(ops[i+1]) % 48
		at = at.Add(sim.Duration(int(op)%9+1) * sim.Microsecond)
		switch op % 2 {
		case 0:
			eng.At(at, func() { tbl.Lookup(flowID, eng.Now()) })
		default:
			prio := int(op) / 16
			eng.At(at, func() { tbl.RequestInsert(flowID, prio) })
		}
	}
	for eng.Step() {
		if err := tbl.audit(); err != nil {
			t.Fatalf("audit at %v: %v", eng.Now(), err)
		}
	}
	return tbl.residentFlows(), tbl.Counters()
}

// FuzzFlowTable drives random lookup/insert tapes through every
// eviction policy and asserts only invariants: occupancy bounded by
// capacity, no lost rules (inserts − evictions = resident), map and
// recency list in agreement, and bit-identical table state when the
// same tape replays.
func FuzzFlowTable(f *testing.F) {
	f.Add(uint8(8), uint8(0), []byte{1, 1, 0, 1, 3, 2, 1, 2, 1, 3})
	f.Add(uint8(2), uint8(1), []byte{1, 1, 1, 2, 1, 3, 1, 4, 0, 1})
	f.Add(uint8(63), uint8(2), []byte{17, 5, 33, 5, 49, 6, 1, 7})
	f.Add(uint8(1), uint8(0), []byte{})
	f.Fuzz(func(t *testing.T, capSel, evictSel uint8, ops []byte) {
		if len(ops) > 4096 {
			ops = ops[:4096]
		}
		cfg := DefaultTableConfig()
		cfg.Capacity = int(capSel)%64 + 1
		cfg.InsertQueueCap = int(capSel)%16 + 1
		cfg.Evict = []EvictPolicy{EvictLRU, EvictIdle, EvictPriority}[int(evictSel)%3]
		cfg.InsertLatency = sim.Duration(int(capSel)%40+10) * sim.Microsecond
		cfg.IdleTimeout = sim.Duration(int(evictSel)%200+50) * sim.Microsecond

		resident, counters := fuzzRun(t, cfg, ops)
		if len(resident) > cfg.Capacity {
			t.Fatalf("resident %d exceeds capacity %d", len(resident), cfg.Capacity)
		}
		if counters.Inserts-counters.Evictions != uint64(len(resident)) {
			t.Fatalf("lost rules: inserts %d - evictions %d != resident %d",
				counters.Inserts, counters.Evictions, len(resident))
		}

		// Determinism: the same tape must produce the same resident set in
		// the same eviction order and the same counters.
		resident2, counters2 := fuzzRun(t, cfg, ops)
		if !reflect.DeepEqual(resident, resident2) {
			t.Fatalf("eviction order diverged between identical runs:\n%v\n%v", resident, resident2)
		}
		if counters != counters2 {
			t.Fatalf("counters diverged between identical runs:\n%+v\n%+v", counters, counters2)
		}
	})
}
