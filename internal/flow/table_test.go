package flow

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func smallConfig() TableConfig {
	cfg := DefaultTableConfig()
	cfg.Capacity = 3
	cfg.InsertQueueCap = 4
	return cfg
}

// drain runs the engine dry, auditing after every event.
func drain(t *testing.T, eng *sim.Engine, tbl *Table) {
	t.Helper()
	for eng.Step() {
		if err := tbl.audit(); err != nil {
			t.Fatalf("audit after step at %v: %v", eng.Now(), err)
		}
	}
}

func TestInsertTakesSlowPathLatency(t *testing.T) {
	eng := sim.NewEngine()
	cfg := smallConfig()
	tbl := NewTable(eng, cfg)

	if !tbl.RequestInsert(7, 1) {
		t.Fatal("first insert request should be accepted")
	}
	if tbl.Contains(7) {
		t.Fatal("rule resident before the slow path finished")
	}
	if !tbl.Pending(7) {
		t.Fatal("rule not pending after accepted request")
	}
	// Re-requesting while pending is a no-op, not a reject.
	if tbl.RequestInsert(7, 1) {
		t.Fatal("duplicate pending request should be refused")
	}
	if c := tbl.Counters(); c.InsertRejects != 0 {
		t.Fatalf("duplicate pending request counted as reject: %+v", c)
	}

	eng.RunUntil(sim.Time(0).Add(cfg.InsertLatency - 1))
	if tbl.Contains(7) {
		t.Fatalf("rule resident at %v, before insert latency %v", eng.Now(), cfg.InsertLatency)
	}
	eng.Run()
	if !tbl.Contains(7) || tbl.Occupancy() != 1 {
		t.Fatalf("rule not resident after slow path: occupancy %d", tbl.Occupancy())
	}
	if c := tbl.Counters(); c.Inserts != 1 {
		t.Fatalf("expected 1 install, got %+v", c)
	}
}

func TestInsertQueueRejectsWhenFull(t *testing.T) {
	eng := sim.NewEngine()
	cfg := smallConfig()
	cfg.InsertQueueCap = 2
	tbl := NewTable(eng, cfg)

	if !tbl.RequestInsert(1, 1) || !tbl.RequestInsert(2, 1) {
		t.Fatal("queue-capacity requests should be accepted")
	}
	if tbl.RequestInsert(3, 1) {
		t.Fatal("request past queue capacity should be rejected")
	}
	if c := tbl.Counters(); c.InsertRejects != 1 {
		t.Fatalf("expected 1 reject, got %+v", c)
	}
	drain(t, eng, tbl)
	if tbl.Occupancy() != 2 {
		t.Fatalf("expected the 2 queued rules installed, occupancy %d", tbl.Occupancy())
	}
}

func TestLRUEvictionOrderFollowsRecency(t *testing.T) {
	eng := sim.NewEngine()
	tbl := NewTable(eng, smallConfig()) // capacity 3

	for _, id := range []uint64{1, 2, 3} {
		tbl.RequestInsert(id, 1)
	}
	drain(t, eng, tbl)

	// Touch 1 so 2 becomes the least recently hit.
	if !tbl.Lookup(1, eng.Now()) {
		t.Fatal("resident rule 1 should hit")
	}
	tbl.RequestInsert(4, 1)
	drain(t, eng, tbl)

	if tbl.Contains(2) {
		t.Fatal("LRU eviction should have removed flow 2")
	}
	for _, id := range []uint64{1, 3, 4} {
		if !tbl.Contains(id) {
			t.Fatalf("flow %d should still be resident", id)
		}
	}
	if c := tbl.Counters(); c.Evictions != 1 {
		t.Fatalf("expected 1 eviction, got %+v", c)
	}
}

func TestIdleEvictionAbortsWhenNothingIsIdle(t *testing.T) {
	eng := sim.NewEngine()
	cfg := smallConfig()
	cfg.Evict = EvictIdle
	cfg.IdleTimeout = sim.Millisecond
	tbl := NewTable(eng, cfg)

	for _, id := range []uint64{1, 2, 3} {
		tbl.RequestInsert(id, 1)
	}
	drain(t, eng, tbl)

	// All rules were hit "now" (installed this instant); nothing is idle,
	// so a fourth insert must abort rather than evict a hot rule.
	for _, id := range []uint64{1, 2, 3} {
		tbl.Lookup(id, eng.Now())
	}
	tbl.RequestInsert(4, 1)
	drain(t, eng, tbl)
	if tbl.Contains(4) {
		t.Fatal("insert into a table with no idle victim should abort")
	}
	if c := tbl.Counters(); c.InsertAborts != 1 || c.Evictions != 0 {
		t.Fatalf("expected 1 abort and no evictions, got %+v", c)
	}

	// Let every rule age past the idle timeout: now the coldest is fair game.
	eng.At(eng.Now().Add(2*sim.Millisecond), func() { tbl.RequestInsert(4, 1) })
	drain(t, eng, tbl)
	if !tbl.Contains(4) {
		t.Fatal("insert should succeed once a rule has gone idle")
	}
	if c := tbl.Counters(); c.Evictions != 1 {
		t.Fatalf("expected 1 idle eviction, got %+v", c)
	}
}

func TestPriorityEvictionPicksLowestPriority(t *testing.T) {
	eng := sim.NewEngine()
	cfg := smallConfig()
	cfg.Evict = EvictPriority
	tbl := NewTable(eng, cfg)

	tbl.RequestInsert(1, 5)
	tbl.RequestInsert(2, 1) // lowest priority — the designated victim
	tbl.RequestInsert(3, 9)
	drain(t, eng, tbl)

	tbl.RequestInsert(4, 7)
	drain(t, eng, tbl)
	if tbl.Contains(2) {
		t.Fatal("priority eviction should have removed the lowest-priority rule")
	}
	if !tbl.Contains(4) {
		t.Fatal("new rule should be resident after priority eviction")
	}
}

func TestThrashCountsHotVictims(t *testing.T) {
	eng := sim.NewEngine()
	cfg := smallConfig()
	cfg.ThrashWindow = 200 * sim.Microsecond
	tbl := NewTable(eng, cfg)

	for _, id := range []uint64{1, 2, 3} {
		tbl.RequestInsert(id, 1)
	}
	drain(t, eng, tbl)

	// Victim hit just before the eviction: thrash.
	tbl.RequestInsert(4, 1)
	for eng.Step() {
	}
	if c := tbl.Counters(); c.Thrash != 1 {
		t.Fatalf("hot victim should count as thrash: %+v", c)
	}

	// Let the survivors go cold, then evict again: not thrash.
	eng.At(eng.Now().Add(sim.Millisecond), func() { tbl.RequestInsert(5, 1) })
	drain(t, eng, tbl)
	if c := tbl.Counters(); c.Thrash != 1 || c.Evictions != 2 {
		t.Fatalf("cold victim should not count as thrash: %+v", c)
	}
}

func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	eng := sim.NewEngine()
	cfg := smallConfig()
	cfg.InsertQueueCap = 64
	tbl := NewTable(eng, cfg)

	for id := uint64(0); id < 40; id++ {
		tbl.RequestInsert(id, int(id))
	}
	for eng.Step() {
		if tbl.Occupancy() > tbl.Capacity() {
			t.Fatalf("occupancy %d exceeded capacity %d", tbl.Occupancy(), tbl.Capacity())
		}
		if err := tbl.audit(); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.OccupancyPeak() != cfg.Capacity {
		t.Fatalf("expected peak occupancy %d, got %d", cfg.Capacity, tbl.OccupancyPeak())
	}
}

func TestTableConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*TableConfig)
		want string
	}{
		{"zero capacity", func(c *TableConfig) { c.Capacity = 0 }, "capacity"},
		{"zero latency", func(c *TableConfig) { c.InsertLatency = 0 }, "latency"},
		{"zero queue", func(c *TableConfig) { c.InsertQueueCap = 0 }, "queue"},
		{"negative thrash", func(c *TableConfig) { c.ThrashWindow = -1 }, "thrash"},
		{"idle without timeout", func(c *TableConfig) { c.Evict = EvictIdle; c.IdleTimeout = 0 }, "idle"},
		{"unknown policy", func(c *TableConfig) { c.Evict = "mru" }, "unknown"},
	}
	for _, tc := range cases {
		cfg := DefaultTableConfig()
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}
	cfg := DefaultTableConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config should validate: %v", err)
	}
}

func TestNewTablePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTable with zero capacity should panic")
		}
	}()
	cfg := DefaultTableConfig()
	cfg.Capacity = 0
	NewTable(sim.NewEngine(), cfg)
}

func TestExpireIdleAgesOutColdRules(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultTableConfig() // IdleTimeout 1ms
	tbl := NewTable(eng, cfg)
	tbl.RequestInsert(1, 1)
	tbl.RequestInsert(2, 1)
	drain(t, eng, tbl)

	// Keep flow 2 hot past the timeout horizon; flow 1 goes cold.
	eng.At(eng.Now().Add(900*sim.Microsecond), func() {
		if !tbl.Lookup(2, eng.Now()) {
			t.Error("flow 2 should be resident")
		}
	})
	drain(t, eng, tbl)

	now := eng.Now().Add(300 * sim.Microsecond) // flow 1 idle >1ms, flow 2 not
	if n := tbl.ExpireIdle(now); n != 1 {
		t.Fatalf("want 1 expiry, got %d", n)
	}
	if tbl.Contains(1) || !tbl.Contains(2) {
		t.Fatal("expiry removed the wrong rule")
	}
	c := tbl.Counters()
	if c.Expired != 1 || c.Evictions != 0 {
		t.Fatalf("expiries must not count as evictions: %+v", c)
	}
	if err := tbl.audit(); err != nil {
		t.Fatalf("audit after expiry: %v", err)
	}

	// Zero timeout disables aging entirely.
	cfg2 := DefaultTableConfig()
	cfg2.IdleTimeout = 0
	tbl2 := NewTable(sim.NewEngine(), cfg2)
	if n := tbl2.ExpireIdle(sim.Time(0).Add(sim.Second)); n != 0 {
		t.Fatalf("zero IdleTimeout should disable aging, expired %d", n)
	}
}
