// Offload threshold policies and the control loop that drives them.
//
// The threshold K is "how many slow-path packets must a flow show
// before it earns a rule". K = 1 offloads everything (the static
// per-function advisor's behavior); large K offloads only elephants.
// The adaptive policy moves K online from the table's own counters, in
// the spirit of chen622's SmartNICSimulator threshold feedback:
// multiplicative increase when the table thrashes, additive decrease
// when the slow path still carries traffic and the table has headroom.
package flow

import (
	"fmt"

	"repro/internal/sim"
)

// Snapshot is one control-interval observation of the table and
// datapath, with cumulative counters — policies diff consecutive
// snapshots to get per-interval rates.
type Snapshot struct {
	// Now is the virtual time of the observation.
	Now sim.Time
	// Occupancy / Capacity / PendingInserts mirror the table accessors.
	Occupancy      int
	Capacity       int
	PendingInserts int
	// Counters is the table's cumulative op accounting.
	Counters Counters
	// Drops is the cumulative slow-path drop count (full service queue).
	Drops uint64
}

// Policy decides the offload threshold. Observe is called once per
// control interval; Threshold may change between calls for adaptive
// policies. Key must serialize the policy's identity and parameters
// (it feeds experiment labels and memoization keys).
type Policy interface {
	Key() string
	Threshold() int
	Observe(s Snapshot)
}

// StaticFunction is the per-function advisor's behavior ported to flow
// granularity: offload every flow from its first packet (K = 1).
type StaticFunction struct{}

// Key identifies the policy.
func (StaticFunction) Key() string { return "static-func" }

// Threshold is always 1: every first packet requests a rule.
func (StaticFunction) Threshold() int { return 1 }

// Observe ignores feedback; the policy is open-loop.
func (StaticFunction) Observe(Snapshot) {}

// StaticThreshold offloads a flow after a fixed K slow-path packets —
// a hand-tuned per-flow filter that never adapts.
type StaticThreshold struct {
	// K is the fixed threshold; values below 1 behave as 1.
	K int
}

func (p StaticThreshold) k() int {
	if p.K < 1 {
		return 1
	}
	return p.K
}

// Key identifies the policy and its parameter.
func (p StaticThreshold) Key() string { return fmt.Sprintf("static-flow@%d", p.k()) }

// Threshold returns the fixed K.
func (p StaticThreshold) Threshold() int { return p.k() }

// Observe ignores feedback; the policy is open-loop.
func (StaticThreshold) Observe(Snapshot) {}

// AdaptiveConfig parameterizes the AIMD threshold controller.
type AdaptiveConfig struct {
	// Initial is the starting threshold; Min and Max clamp it.
	Initial int
	Min     int
	Max     int
	// HighOccFrac is the occupancy-plus-pending fraction of capacity at
	// which the table counts as under pressure.
	HighOccFrac float64
	// ChurnTolerance is the per-interval thrash+reject+abort budget
	// considered benign; above it the controller backs off.
	ChurnTolerance uint64
}

// DefaultAdaptiveConfig returns the controller tuning used by the
// offload experiments.
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{
		Initial:        4,
		Min:            1,
		Max:            32,
		HighOccFrac:    0.9,
		ChurnTolerance: 0,
	}
}

// Validate reports the first configuration problem, or nil.
func (c *AdaptiveConfig) Validate() error {
	switch {
	case c.Min < 1:
		return fmt.Errorf("flow: adaptive Min threshold must be at least 1 (got %d)", c.Min)
	case c.Max < c.Min:
		return fmt.Errorf("flow: adaptive Max %d below Min %d", c.Max, c.Min)
	case c.Initial < c.Min || c.Initial > c.Max:
		return fmt.Errorf("flow: adaptive Initial %d outside [%d, %d]", c.Initial, c.Min, c.Max)
	case c.HighOccFrac <= 0 || c.HighOccFrac > 1:
		return fmt.Errorf("flow: adaptive HighOccFrac must be in (0, 1] (got %g)", c.HighOccFrac)
	}
	return nil
}

// Adaptive moves the threshold online: multiplicative increase (offload
// fewer flows) when the interval shows table churn beyond tolerance or
// pressure at high occupancy, additive decrease (offload more) when the
// slow path still sees traffic and the table has headroom.
type Adaptive struct {
	cfg            AdaptiveConfig
	k              int
	last           Snapshot
	raises, lowers uint64
}

// NewAdaptive builds the controller; it panics on an invalid config.
func NewAdaptive(cfg AdaptiveConfig) *Adaptive {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Adaptive{cfg: cfg, k: cfg.Initial}
}

// Key identifies the policy and its tuning.
func (a *Adaptive) Key() string {
	return fmt.Sprintf("adaptive@%d[%d..%d]", a.cfg.Initial, a.cfg.Min, a.cfg.Max)
}

// Threshold returns the current K.
func (a *Adaptive) Threshold() int { return a.k }

// Steps reports how many times the controller raised and lowered K.
func (a *Adaptive) Steps() (raises, lowers uint64) { return a.raises, a.lowers }

// Observe consumes one control-interval snapshot and moves K. The churn
// signal counts only *harmful* events — still-hot rules evicted
// (thrash) and insert requests refused or aborted (the serialized rule
// path oversubscribed) — not plain evictions, which mostly reclaim dead
// flows and are benign.
func (a *Adaptive) Observe(s Snapshot) {
	churn := (s.Counters.Thrash - a.last.Counters.Thrash) +
		(s.Counters.InsertRejects - a.last.Counters.InsertRejects) +
		(s.Counters.InsertAborts - a.last.Counters.InsertAborts)
	misses := s.Counters.Misses - a.last.Counters.Misses
	drops := s.Drops - a.last.Drops
	a.last = s

	pressured := float64(s.Occupancy+s.PendingInserts) >= a.cfg.HighOccFrac*float64(s.Capacity)
	switch {
	case churn > a.cfg.ChurnTolerance || (pressured && churn > 0):
		// The table is thrashing or the insert path is oversubscribed:
		// admitting more flows only wastes rule updates. Back off
		// multiplicatively (gently — 1.5x — so the controller hunts the
		// admission boundary instead of vaulting past it).
		if a.k < a.cfg.Max {
			next := a.k + a.k/2
			if next == a.k {
				next++
			}
			if next > a.cfg.Max {
				next = a.cfg.Max
			}
			a.k = next
			a.raises++
		}
	case (misses > 0 || drops > 0) && !pressured:
		// The slow path still carries traffic and the table has
		// headroom: admit more flows, one step at a time.
		if a.k > a.cfg.Min {
			a.k--
			a.lowers++
		}
	}
}

// Controller mediates between the slow-path datapath and the table: it
// tracks per-flow slow-path packet counts, requests rule insertion once
// a flow crosses the policy threshold, and feeds the policy a snapshot
// every control interval.
type Controller struct {
	tbl    *Table
	pol    Policy
	counts map[uint64]uint32
	drops  uint64
	ticks  uint64

	minK, maxK int
}

// NewController wires a policy to a table.
func NewController(tbl *Table, pol Policy) *Controller {
	if tbl == nil || pol == nil {
		panic("flow: NewController needs a table and a policy")
	}
	k := pol.Threshold()
	return &Controller{tbl: tbl, pol: pol, counts: make(map[uint64]uint32), minK: k, maxK: k}
}

// OnMiss records one slow-path packet for the flow and requests rule
// insertion once the flow's count reaches the policy threshold. It
// returns the flow's updated slow-path packet count (1 = first packet
// ever seen from this flow, which pays the rule-decision cost).
func (c *Controller) OnMiss(flowID uint64) int {
	n := c.counts[flowID] + 1
	c.counts[flowID] = n
	if int(n) >= c.pol.Threshold() {
		c.tbl.RequestInsert(flowID, int(n))
	}
	return int(n)
}

// NoteDrop records a slow-path drop (full service queue) for the next
// snapshot.
func (c *Controller) NoteDrop() { c.drops++ }

// Tick runs one control interval: age out idle rules (the periodic
// sweep real offload datapaths run), then assemble a snapshot and let
// the policy observe it. The run loop arms it on the engine's
// control-interval ticker.
func (c *Controller) Tick(now sim.Time) {
	c.ticks++
	c.tbl.ExpireIdle(now)
	c.pol.Observe(Snapshot{
		Now:            now,
		Occupancy:      c.tbl.Occupancy(),
		Capacity:       c.tbl.Capacity(),
		PendingInserts: c.tbl.PendingInserts(),
		Counters:       c.tbl.Counters(),
		Drops:          c.drops,
	})
	k := c.pol.Threshold()
	if k < c.minK {
		c.minK = k
	}
	if k > c.maxK {
		c.maxK = k
	}
}

// ThresholdRange reports the minimum, maximum and final threshold the
// policy used across the run.
func (c *Controller) ThresholdRange() (minK, maxK, final int) {
	return c.minK, c.maxK, c.pol.Threshold()
}

// Ticks returns the number of control intervals observed.
func (c *Controller) Ticks() uint64 { return c.ticks }

// FlowsSeen returns the number of distinct flows that hit the slow path.
func (c *Controller) FlowsSeen() int { return len(c.counts) }
