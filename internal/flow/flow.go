// Package flow models the SmartNIC's per-flow offload control plane:
// the bounded eSwitch flow table behind hardware fast-path forwarding,
// and the policies that decide which flows earn a rule.
//
// The paper treats the eSwitch as an ideal forwarder; real deployments
// offload *per flow* through a table with three first-order limits that
// DPU studies report as SLO bottlenecks:
//
//   - bounded capacity: a few hundred to a few thousand exact-match
//     rules, far fewer than concurrently active flows under churn;
//   - slow rule insertion: programming a rule crosses the SNIC slow
//     path (an OvS-style upcall plus firmware command), so rule updates
//     serialize at tens of microseconds each and queue behind a small
//     pending buffer;
//   - eviction pressure: when the table is full, installing one rule
//     evicts another — under flow churn the evicted rule is often still
//     hot, and the thrash turns the fast path against itself.
//
// Table models all three in virtual time. Policy (policy.go) closes the
// loop: an offload threshold — how many slow-path packets a flow must
// show before it earns a rule — either fixed (static per-function,
// static per-flow) or adapted online from the table's own counters.
//
// Everything is deterministic: eviction order is defined by an explicit
// recency list (never map iteration), and insertion completions are
// engine events, so the same op sequence always produces the same table
// state.
package flow

import (
	"fmt"

	"repro/internal/sim"
)

// EvictPolicy names the victim-selection discipline used when a rule
// must be installed into a full table.
type EvictPolicy string

// The eviction disciplines.
const (
	// EvictLRU evicts the least-recently-hit rule unconditionally.
	EvictLRU EvictPolicy = "lru"
	// EvictIdle evicts the least-recently-hit rule only if it has been
	// idle at least IdleTimeout; otherwise the insertion aborts.
	EvictIdle EvictPolicy = "idle"
	// EvictPriority evicts the lowest-priority rule (ties broken toward
	// least recently hit).
	EvictPriority EvictPolicy = "priority"
)

// TableConfig sizes the flow table and its slow path.
type TableConfig struct {
	// Capacity is the rule budget (exact-match entries).
	Capacity int
	// InsertLatency is the per-rule programming time through the SNIC
	// slow path; insertions serialize at this rate.
	InsertLatency sim.Duration
	// InsertQueueCap bounds the pending rule-update queue; requests past
	// it are rejected (counted, not queued).
	InsertQueueCap int
	// Evict selects the victim discipline for installs into a full table.
	Evict EvictPolicy
	// IdleTimeout ages rules out: ExpireIdle removes rules idle at least
	// this long (the OvS-offload idle_timeout), and EvictIdle uses it as
	// the minimum victim idle age. Zero disables aging.
	IdleTimeout sim.Duration
	// ThrashWindow classifies an eviction as thrash when the victim was
	// hit within this window of the eviction — the rule was still hot.
	ThrashWindow sim.Duration
}

// DefaultTableConfig returns a BlueField-2-flavoured table: a small rule
// budget against thousands of concurrent flows, and a slow path that
// sustains ~20K rule updates/s.
func DefaultTableConfig() TableConfig {
	return TableConfig{
		Capacity:       512,
		InsertLatency:  50 * sim.Microsecond,
		InsertQueueCap: 64,
		Evict:          EvictLRU,
		IdleTimeout:    sim.Millisecond,
		ThrashWindow:   200 * sim.Microsecond,
	}
}

// Validate reports the first configuration problem, or nil.
func (c *TableConfig) Validate() error {
	switch {
	case c.Capacity <= 0:
		return fmt.Errorf("flow: table capacity must be positive (got %d)", c.Capacity)
	case c.InsertLatency <= 0:
		return fmt.Errorf("flow: insert latency must be positive (got %v)", c.InsertLatency)
	case c.InsertQueueCap <= 0:
		return fmt.Errorf("flow: insert queue capacity must be positive (got %d)", c.InsertQueueCap)
	case c.ThrashWindow < 0:
		return fmt.Errorf("flow: thrash window must not be negative (got %v)", c.ThrashWindow)
	}
	switch c.Evict {
	case EvictLRU, EvictPriority:
	case EvictIdle:
		if c.IdleTimeout <= 0 {
			return fmt.Errorf("flow: idle eviction needs a positive idle timeout (got %v)", c.IdleTimeout)
		}
	default:
		return fmt.Errorf("flow: unknown eviction policy %q", c.Evict)
	}
	return nil
}

// Counters is the table's cumulative op accounting — the signal set the
// adaptive threshold controller feeds on.
type Counters struct {
	// FastHits are lookups that matched a resident rule (hardware path).
	FastHits uint64
	// Misses are lookups with no resident rule (slow path).
	Misses uint64
	// Inserts are rules actually installed.
	Inserts uint64
	// InsertRejects are insert requests refused at a full pending queue.
	InsertRejects uint64
	// InsertAborts are insertions abandoned at install time because the
	// table was full and the eviction policy produced no victim.
	InsertAborts uint64
	// Evictions are rules removed to make room.
	Evictions uint64
	// Expired are rules aged out after IdleTimeout without a hit — dead
	// flows reclaimed, not capacity pressure.
	Expired uint64
	// Thrash are evictions whose victim was hit within ThrashWindow —
	// still-hot rules sacrificed to churn.
	Thrash uint64
}

// rule is one resident entry; rules chain into a recency list ordered
// least- to most-recently hit so eviction never iterates a map.
type rule struct {
	flow       uint64
	prio       int
	lastHit    sim.Time
	hits       uint64
	prev, next *rule
}

// pendingInsert is one queued rule-update request.
type pendingInsert struct {
	flow uint64
	prio int
}

// Table is the bounded eSwitch flow table. All methods are driven
// synchronously from one engine's event loop — no locking. It satisfies
// nic.FlowTable, so an eSwitch can steer on it directly.
type Table struct {
	eng *sim.Engine
	cfg TableConfig

	rules      map[uint64]*rule
	head, tail *rule // recency list: head = least recently hit
	// freeRules recycles evicted/expired rule records so steady-state
	// churn (the regime the offload experiments live in) installs rules
	// without allocating.
	freeRules []*rule

	// pending is a ring-flavoured FIFO like Station.queue: pendingHead
	// indexes the oldest request and completions advance it instead of
	// re-slicing, so the backing array is reused under sustained churn.
	pending     []pendingInsert
	pendingHead int
	pendingSet  map[uint64]struct{}
	inserting   bool

	occPeak int
	c       Counters
}

// NewTable returns an empty table; it panics on an invalid config (the
// constructor discipline of the sim layer).
func NewTable(eng *sim.Engine, cfg TableConfig) *Table {
	if eng == nil {
		panic("flow: NewTable needs an engine")
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Table{
		eng:        eng,
		cfg:        cfg,
		rules:      make(map[uint64]*rule),
		pendingSet: make(map[uint64]struct{}),
	}
}

// Lookup consults the table for a resident rule at virtual time now,
// refreshing the rule's recency on a hit. It is the eSwitch's per-packet
// hardware match: hit = fast path, miss = slow path.
//
//snicvet:hotpath
func (t *Table) Lookup(flowID uint64, now sim.Time) bool {
	r, ok := t.rules[flowID]
	if !ok {
		t.c.Misses++
		return false
	}
	r.lastHit = now
	r.hits++
	t.moveToBack(r)
	t.c.FastHits++
	return true
}

// RequestInsert queues a rule installation for the flow through the
// slow path. It reports whether the request was accepted: resident and
// already-pending flows are benign no-ops (false), and a full pending
// queue rejects the request (false, counted). The rule becomes resident
// only after its turn in the serialized insertion pipeline completes.
//
//snicvet:hotpath
func (t *Table) RequestInsert(flowID uint64, prio int) bool {
	if _, resident := t.rules[flowID]; resident {
		return false
	}
	if _, queued := t.pendingSet[flowID]; queued {
		return false
	}
	if t.PendingInserts() >= t.cfg.InsertQueueCap {
		t.c.InsertRejects++
		return false
	}
	if t.pendingHead > 0 && len(t.pending) == cap(t.pending) {
		// Compact the live region to the front so append reuses the
		// backing array instead of growing it.
		n := copy(t.pending, t.pending[t.pendingHead:])
		t.pending = t.pending[:n]
		t.pendingHead = 0
	}
	//snicvet:ignore hotpath -- amortized ring growth; sustained churn reuses the pending array
	t.pending = append(t.pending, pendingInsert{flow: flowID, prio: prio})
	t.pendingSet[flowID] = struct{}{}
	if !t.inserting {
		t.inserting = true
		t.eng.AfterCall(t.cfg.InsertLatency, t, nil)
	}
	return true
}

// HandleEvent fires when the slow path finishes programming the oldest
// pending rule; the table schedules itself as the engine handler so a
// completion costs no closure. Never call it directly.
//
//snicvet:hotpath
func (t *Table) HandleEvent(any) { t.completeInsert() }

// completeInsert finishes the oldest pending insertion: evicts a victim
// if the table is full (aborting when the policy yields none), installs
// the rule, and re-arms for the next pending request.
//
//snicvet:hotpath
func (t *Table) completeInsert() {
	pi := t.pending[t.pendingHead]
	t.pendingHead++
	if t.pendingHead == len(t.pending) {
		// Drained: rewind to the front of the backing array.
		t.pending = t.pending[:0]
		t.pendingHead = 0
	}
	delete(t.pendingSet, pi.flow)
	now := t.eng.Now()
	if _, dup := t.rules[pi.flow]; !dup {
		if len(t.rules) < t.cfg.Capacity || t.evictOne(now) {
			r := t.newRule(pi.flow, pi.prio, now)
			t.rules[pi.flow] = r
			t.pushBack(r)
			t.c.Inserts++
			if len(t.rules) > t.occPeak {
				t.occPeak = len(t.rules)
			}
		} else {
			t.c.InsertAborts++
		}
	}
	if t.PendingInserts() > 0 {
		t.eng.AfterCall(t.cfg.InsertLatency, t, nil)
	} else {
		t.inserting = false
	}
}

// newRule takes a record off the free list, or allocates when the pool
// is dry (cold start, or occupancy growing past its previous churn).
//
//snicvet:hotpath
func (t *Table) newRule(flow uint64, prio int, now sim.Time) *rule {
	if n := len(t.freeRules); n > 0 {
		r := t.freeRules[n-1]
		t.freeRules[n-1] = nil
		t.freeRules = t.freeRules[:n-1]
		r.flow, r.prio, r.lastHit, r.hits = flow, prio, now, 0
		return r
	}
	//snicvet:ignore hotpath -- cold start only; steady-state churn reuses evicted records
	return &rule{flow: flow, prio: prio, lastHit: now}
}

// recycleRule returns an unlinked rule record to the free list.
//
//snicvet:hotpath
func (t *Table) recycleRule(r *rule) {
	//snicvet:ignore hotpath -- free-list growth tops out at table capacity
	t.freeRules = append(t.freeRules, r)
}

// evictOne removes one victim per the configured policy and reports
// success. Victim choice walks the recency list, never a map.
//
//snicvet:hotpath
func (t *Table) evictOne(now sim.Time) bool {
	var victim *rule
	switch t.cfg.Evict {
	case EvictIdle:
		// The list is ordered by last hit, so if the coldest rule is not
		// idle enough, none is.
		if t.head != nil && now.Sub(t.head.lastHit) >= t.cfg.IdleTimeout {
			victim = t.head
		}
	case EvictPriority:
		for r := t.head; r != nil; r = r.next {
			if victim == nil || r.prio < victim.prio {
				victim = r
			}
		}
	default: // EvictLRU
		victim = t.head
	}
	if victim == nil {
		return false
	}
	t.remove(victim)
	delete(t.rules, victim.flow)
	t.c.Evictions++
	if now.Sub(victim.lastHit) <= t.cfg.ThrashWindow {
		t.c.Thrash++
	}
	t.recycleRule(victim)
	return true
}

// ExpireIdle ages out every rule idle at least IdleTimeout, walking the
// recency list from its cold end, and returns how many were removed.
// The control loop calls it once per control interval — the periodic
// aging sweep real offload datapaths run — so occupancy tracks the live
// working set instead of pinning at capacity under dead rules. A zero
// IdleTimeout disables aging.
func (t *Table) ExpireIdle(now sim.Time) int {
	if t.cfg.IdleTimeout <= 0 {
		return 0
	}
	n := 0
	for t.head != nil && now.Sub(t.head.lastHit) >= t.cfg.IdleTimeout {
		victim := t.head
		t.remove(victim)
		delete(t.rules, victim.flow)
		t.c.Expired++
		t.recycleRule(victim)
		n++
	}
	return n
}

// Occupancy returns the number of resident rules.
func (t *Table) Occupancy() int { return len(t.rules) }

// Capacity returns the rule budget.
func (t *Table) Capacity() int { return t.cfg.Capacity }

// OccupancyPeak returns the high-water mark of resident rules.
func (t *Table) OccupancyPeak() int { return t.occPeak }

// PendingInserts returns the rule-update queue depth.
//
//snicvet:hotpath
func (t *Table) PendingInserts() int { return len(t.pending) - t.pendingHead }

// Contains reports whether the flow has a resident rule.
func (t *Table) Contains(flowID uint64) bool {
	_, ok := t.rules[flowID]
	return ok
}

// Pending reports whether the flow has a queued (not yet installed)
// rule-update request.
func (t *Table) Pending(flowID uint64) bool {
	_, ok := t.pendingSet[flowID]
	return ok
}

// Counters returns the cumulative op accounting.
func (t *Table) Counters() Counters { return t.c }

// ---- recency list plumbing ----

//snicvet:hotpath
func (t *Table) pushBack(r *rule) {
	r.prev, r.next = t.tail, nil
	if t.tail != nil {
		t.tail.next = r
	} else {
		t.head = r
	}
	t.tail = r
}

//snicvet:hotpath
func (t *Table) remove(r *rule) {
	if r.prev != nil {
		r.prev.next = r.next
	} else {
		t.head = r.next
	}
	if r.next != nil {
		r.next.prev = r.prev
	} else {
		t.tail = r.prev
	}
	r.prev, r.next = nil, nil
}

//snicvet:hotpath
func (t *Table) moveToBack(r *rule) {
	if t.tail == r {
		return
	}
	t.remove(r)
	t.pushBack(r)
}

// residentFlows returns the resident flow IDs in recency order (least
// recently hit first) — the deterministic eviction order.
func (t *Table) residentFlows() []uint64 {
	out := make([]uint64, 0, len(t.rules))
	for r := t.head; r != nil; r = r.next {
		out = append(out, r.flow)
	}
	return out
}

// audit cross-checks the table's internal ledgers: map and recency list
// must agree, occupancy and queues must respect their bounds, and the
// install/evict counters must explain the resident population. The fuzz
// harness calls it after every engine step.
func (t *Table) audit() error {
	n := 0
	for r := t.head; r != nil; r = r.next {
		if got, ok := t.rules[r.flow]; !ok || got != r {
			return fmt.Errorf("flow: list entry %d missing from rule map", r.flow)
		}
		n++
		if n > len(t.rules) {
			return fmt.Errorf("flow: recency list longer than rule map (cycle?)")
		}
	}
	if n != len(t.rules) {
		return fmt.Errorf("flow: recency list has %d entries, map has %d", n, len(t.rules))
	}
	if len(t.rules) > t.cfg.Capacity {
		return fmt.Errorf("flow: occupancy %d exceeds capacity %d", len(t.rules), t.cfg.Capacity)
	}
	if t.PendingInserts() > t.cfg.InsertQueueCap {
		return fmt.Errorf("flow: pending queue %d exceeds capacity %d", t.PendingInserts(), t.cfg.InsertQueueCap)
	}
	if t.PendingInserts() != len(t.pendingSet) {
		return fmt.Errorf("flow: pending queue %d disagrees with pending set %d", t.PendingInserts(), len(t.pendingSet))
	}
	if t.pendingHead < 0 || t.pendingHead > len(t.pending) {
		return fmt.Errorf("flow: pending head %d outside queue of length %d", t.pendingHead, len(t.pending))
	}
	if t.c.Inserts-t.c.Evictions-t.c.Expired != uint64(len(t.rules)) {
		return fmt.Errorf("flow: inserts %d - evictions %d - expired %d != occupancy %d (lost rules)",
			t.c.Inserts, t.c.Evictions, t.c.Expired, len(t.rules))
	}
	return nil
}
