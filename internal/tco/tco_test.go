package tco

import (
	"math"
	"testing"
	"testing/quick"
)

// TestPaperTable5Reproduction checks our arithmetic against every number
// in the published Table 5.
func TestPaperTable5Reproduction(t *testing.T) {
	rows := PaperTable5()
	byApp := map[string]Row{}
	for _, r := range rows {
		byApp[r.Application] = r
	}

	want := []struct {
		app                     string
		serversSNIC, serversNIC int
		kwhSNIC, kwhNIC         float64 // paper: power use per server
		costSNIC, costNIC       float64 // paper: power cost per server
		tcoSNIC, tcoNIC         float64
		savings                 float64 // percent
	}{
		{"fio", 10, 10, 11260, 15023, 1824, 2434, 99223, 101928, 2.7},
		{"OVS", 10, 10, 11178, 14349, 1811, 2325, 99088, 100835, 1.7},
		{"REM", 10, 10, 11147, 11743, 1806, 1902, 99038, 96613, -2.5},
		{"Compress", 10, 35, 11169, 11773, 1809, 1907, 99074, 338320, 70.7},
	}
	for _, w := range want {
		r, ok := byApp[w.app]
		if !ok {
			t.Fatalf("missing row %s", w.app)
		}
		if r.ServersSNIC != w.serversSNIC || r.ServersNIC != w.serversNIC {
			t.Errorf("%s servers = %d/%d, want %d/%d", w.app, r.ServersSNIC, r.ServersNIC, w.serversSNIC, w.serversNIC)
		}
		// kWh within 1% (the paper's table has its own rounding).
		checkRel(t, w.app+" kWh SNIC", r.KWhPerServerSNIC, w.kwhSNIC, 0.01)
		checkRel(t, w.app+" kWh NIC", r.KWhPerServerNIC, w.kwhNIC, 0.01)
		checkRel(t, w.app+" power cost SNIC", r.PowerCostPerServerSNIC, w.costSNIC, 0.01)
		checkRel(t, w.app+" power cost NIC", r.PowerCostPerServerNIC, w.costNIC, 0.01)
		checkRel(t, w.app+" TCO SNIC", r.TCOSNIC, w.tcoSNIC, 0.005)
		checkRel(t, w.app+" TCO NIC", r.TCONIC, w.tcoNIC, 0.005)
		if math.Abs(r.SavingsFrac*100-w.savings) > 0.25 {
			t.Errorf("%s savings = %.2f%%, want %.1f%%", w.app, r.SavingsFrac*100, w.savings)
		}
	}
}

func checkRel(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		return
	}
	if math.Abs(got-want)/math.Abs(want) > tol {
		t.Errorf("%s = %.1f, want %.1f", name, got, want)
	}
}

func TestCompressNeeds35NICServers(t *testing.T) {
	// The headline of Table 5: the accelerator's 3.5× compression
	// throughput means 35 plain-NIC servers replace 10 SNIC servers,
	// for a 70.7% TCO saving.
	m := PaperCostModel()
	r := m.Analyze("Compress", AppMeasurement{3.5, 255}, AppMeasurement{1, 269})
	if r.ServersNIC != 35 {
		t.Fatalf("NIC servers = %d, want 35", r.ServersNIC)
	}
	if r.SavingsFrac < 0.70 || r.SavingsFrac > 0.72 {
		t.Fatalf("savings = %v, want ~0.707", r.SavingsFrac)
	}
}

func TestREMTCOIsNegative(t *testing.T) {
	// The paper's cautionary result: for REM at trace rates the SNIC
	// fleet costs 2.5% MORE (hardware premium outweighs 13 W saved).
	rows := PaperTable5()
	for _, r := range rows {
		if r.Application == "REM" && r.SavingsFrac >= 0 {
			t.Fatalf("REM savings = %v, want negative", r.SavingsFrac)
		}
	}
}

func TestAnalyzeScalesWithPowerPrice(t *testing.T) {
	m := PaperCostModel()
	cheap := m.Analyze("x", AppMeasurement{1, 255}, AppMeasurement{1, 328})
	m.PowerUSDPerKWh *= 2
	dear := m.Analyze("x", AppMeasurement{1, 255}, AppMeasurement{1, 328})
	if dear.SavingsFrac <= cheap.SavingsFrac {
		t.Fatal("doubling electricity price must favour the lower-power fleet more")
	}
}

func TestAnalyzeEqualEverythingFavoursCheaperHardware(t *testing.T) {
	m := PaperCostModel()
	r := m.Analyze("x", AppMeasurement{1, 300}, AppMeasurement{1, 300})
	if r.SavingsFrac >= 0 {
		t.Fatal("identical power and throughput must favour the cheaper NIC fleet")
	}
}

// Property: NIC fleet size is the ceiling of the throughput ratio scaled
// by the baseline, and TCO components are consistent.
func TestAnalyzeConsistencyProperty(t *testing.T) {
	m := PaperCostModel()
	f := func(tputRatioPct uint8, pw1, pw2 uint8) bool {
		ratio := 0.25 + float64(tputRatioPct%100)/25 // 0.25..4.2
		snic := AppMeasurement{ThroughputGbps: ratio, PowerW: 200 + float64(pw1)}
		nic := AppMeasurement{ThroughputGbps: 1, PowerW: 200 + float64(pw2)}
		r := m.Analyze("p", snic, nic)
		wantServers := int(math.Ceil(10 * ratio))
		if r.ServersNIC != wantServers {
			return false
		}
		wantTCO := float64(r.ServersSNIC) * (m.ServerWithSNICUSD + r.PowerCostPerServerSNIC)
		return math.Abs(r.TCOSNIC-wantTCO) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeBadInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero throughput did not panic")
		}
	}()
	PaperCostModel().Analyze("x", AppMeasurement{0, 1}, AppMeasurement{1, 1})
}

func TestComponentPricesQuoted(t *testing.T) {
	// §5.2's component prices (the composite differs by $6 in the paper
	// itself; we carry the composites in the model and the components
	// as documentation).
	if ServerBareUSD != 6287 || BlueField2USD != 1817 || ConnectX6DxUSD != 1478 {
		t.Fatal("component prices must match §5.2")
	}
}
