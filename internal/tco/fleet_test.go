package tco

import (
	"math"
	"testing"
)

func TestFleetTCOMatchesAnalyzeHomogeneous(t *testing.T) {
	m := PaperCostModel()
	in := PaperTable5Inputs()["fio"]
	row := m.Analyze("fio", in[0], in[1])

	snicFleet := make([]FleetServer, row.ServersSNIC)
	for i := range snicFleet {
		snicFleet[i] = FleetServer{SNIC: true, PowerW: in[0].PowerW}
	}
	nicFleet := make([]FleetServer, row.ServersNIC)
	for i := range nicFleet {
		nicFleet[i] = FleetServer{SNIC: false, PowerW: in[1].PowerW}
	}
	if got := m.FleetTCO(snicFleet); math.Abs(got-row.TCOSNIC) > 1e-6 {
		t.Fatalf("SNIC fleet TCO %v != Analyze %v", got, row.TCOSNIC)
	}
	if got := m.FleetTCO(nicFleet); math.Abs(got-row.TCONIC) > 1e-6 {
		t.Fatalf("NIC fleet TCO %v != Analyze %v", got, row.TCONIC)
	}
}

func TestFleetTCOMixedFleet(t *testing.T) {
	m := PaperCostModel()
	fleet := []FleetServer{
		{SNIC: true, PowerW: 255},
		{SNIC: false, PowerW: 268},
	}
	kwh := func(w float64) float64 { return w * 24 * 365 * m.Years / 1000 }
	want := (m.ServerWithSNICUSD + kwh(255)*m.PowerUSDPerKWh) +
		(m.ServerWithNICUSD + kwh(268)*m.PowerUSDPerKWh)
	if got := m.FleetTCO(fleet); math.Abs(got-want) > 1e-6 {
		t.Fatalf("mixed fleet TCO %v != %v", got, want)
	}
	if m.FleetTCO(nil) != 0 {
		t.Fatalf("empty fleet should cost 0")
	}
}
