// Package tco implements the 5-year total-cost-of-ownership analysis of
// paper §5.2 (Table 5): comparing a fleet of servers equipped with
// SmartNICs against a fleet with comparable standard NICs, sized to
// deliver the same aggregate throughput, combining hardware cost with
// the electricity cost of the measured per-server power draw.
package tco

import (
	"fmt"
	"math"
)

// CostModel carries the fixed economic parameters of §5.2.
type CostModel struct {
	// ServerWithSNICUSD and ServerWithNICUSD are full-system prices.
	// The paper quotes $8,098 and $7,759 (built from $6,287 server +
	// $1,817 BlueField-2 MBF2M516A-CEEOT / $1,478 ConnectX-6 Dx
	// MCX623106AC-CDAT; the composites are what Table 5 uses).
	ServerWithSNICUSD float64
	ServerWithNICUSD  float64
	// PowerUSDPerKWh is the electricity price.
	PowerUSDPerKWh float64
	// Years is the server lifetime.
	Years float64
	// BaselineServers is the SNIC fleet size the workload is sized for.
	BaselineServers int
}

// PaperCostModel returns the §5.2 parameters: $0.162/kWh, 5 years, a
// 10-server SNIC fleet.
func PaperCostModel() CostModel {
	return CostModel{
		ServerWithSNICUSD: 8098,
		ServerWithNICUSD:  7759,
		PowerUSDPerKWh:    0.162,
		Years:             5,
		BaselineServers:   10,
	}
}

// Component prices quoted in §5.2 (informational; Table 5 uses the
// composite system prices above).
const (
	ServerBareUSD  = 6287
	BlueField2USD  = 1817
	ConnectX6DxUSD = 1478
)

// AppMeasurement is what the testbed measures for one application on one
// fleet flavour.
type AppMeasurement struct {
	// ThroughputGbps is the per-server application throughput.
	ThroughputGbps float64
	// PowerW is the average per-server power while serving it.
	PowerW float64
}

// Row is one application column of Table 5.
type Row struct {
	Application string

	SNIC AppMeasurement
	NIC  AppMeasurement

	// ServersSNIC/ServersNIC are fleet sizes delivering equal aggregate
	// throughput (SNIC fleet = baseline).
	ServersSNIC int
	ServersNIC  int

	// KWhPerServerSNIC/NIC over the lifetime.
	KWhPerServerSNIC float64
	KWhPerServerNIC  float64
	// PowerCostPerServerSNIC/NIC in USD over the lifetime.
	PowerCostPerServerSNIC float64
	PowerCostPerServerNIC  float64

	// TCOSNIC/TCONIC are fleet lifetime totals.
	TCOSNIC float64
	TCONIC  float64
	// SavingsFrac is 1 - TCOSNIC/TCONIC: positive means the SNIC fleet
	// is cheaper (Table 5's bottom row; REM comes out negative).
	SavingsFrac float64
}

func (r Row) String() string {
	return fmt.Sprintf("%-10s SNIC: %d srv × (%.0f W, $%.0f) = $%.0f | NIC: %d srv × (%.0f W, $%.0f) = $%.0f | savings %.1f%%",
		r.Application,
		r.ServersSNIC, r.SNIC.PowerW, r.PowerCostPerServerSNIC, r.TCOSNIC,
		r.ServersNIC, r.NIC.PowerW, r.PowerCostPerServerNIC, r.TCONIC,
		r.SavingsFrac*100)
}

// hoursPerYear uses the paper's apparent convention (24 × 365).
const hoursPerYear = 24 * 365

// Analyze computes one Table 5 column from measurements.
func (m CostModel) Analyze(app string, snic, nic AppMeasurement) Row {
	if snic.ThroughputGbps <= 0 || nic.ThroughputGbps <= 0 {
		panic(fmt.Sprintf("tco: %s needs positive throughputs", app))
	}
	row := Row{Application: app, SNIC: snic, NIC: nic}
	row.ServersSNIC = m.BaselineServers
	// NIC fleet sized to match the SNIC fleet's aggregate throughput.
	// The 1% epsilon keeps measurement noise from tipping an equal-
	// throughput comparison into an extra server (the paper's fio/OvS/
	// REM columns all use equal fleets).
	row.ServersNIC = int(math.Ceil(float64(m.BaselineServers)*snic.ThroughputGbps/nic.ThroughputGbps - 0.01))
	if row.ServersNIC < 1 {
		row.ServersNIC = 1
	}

	row.KWhPerServerSNIC = snic.PowerW * hoursPerYear * m.Years / 1000
	row.KWhPerServerNIC = nic.PowerW * hoursPerYear * m.Years / 1000
	row.PowerCostPerServerSNIC = row.KWhPerServerSNIC * m.PowerUSDPerKWh
	row.PowerCostPerServerNIC = row.KWhPerServerNIC * m.PowerUSDPerKWh

	row.TCOSNIC = float64(row.ServersSNIC) * (m.ServerWithSNICUSD + row.PowerCostPerServerSNIC)
	row.TCONIC = float64(row.ServersNIC) * (m.ServerWithNICUSD + row.PowerCostPerServerNIC)
	row.SavingsFrac = 1 - row.TCOSNIC/row.TCONIC
	return row
}

// FleetServer is one server of a heterogeneous fleet for lifetime-cost
// rollups: whether it carries a SmartNIC (full-system price) and its
// measured average power draw.
type FleetServer struct {
	SNIC   bool
	PowerW float64
}

// FleetTCO sums the lifetime cost of an arbitrary server mix: hardware
// price plus electricity for each server's own measured power. This
// generalizes Analyze (which compares two homogeneous equal-throughput
// fleets) to the mixed fleets the fleet simulator provisions.
func (m CostModel) FleetTCO(servers []FleetServer) float64 {
	var total float64
	for _, s := range servers {
		price := m.ServerWithNICUSD
		if s.SNIC {
			price = m.ServerWithSNICUSD
		}
		kwh := s.PowerW * hoursPerYear * m.Years / 1000
		total += price + kwh*m.PowerUSDPerKWh
	}
	return total
}

// PaperTable5Inputs returns the power/throughput values as published in
// Table 5, for reproducing the table verbatim (our simulator produces
// its own measured variants; see the snicbench -exp table5 command).
func PaperTable5Inputs() map[string][2]AppMeasurement {
	// Throughputs are expressed as relative units; only the ratio (and
	// hence the NIC fleet size) matters to the paper's arithmetic:
	// equal for fio/OVS/REM, 3.5× for Compress.
	return map[string][2]AppMeasurement{
		"fio":      {{ThroughputGbps: 1, PowerW: 257}, {ThroughputGbps: 1, PowerW: 343}},
		"OVS":      {{ThroughputGbps: 1, PowerW: 255}, {ThroughputGbps: 1, PowerW: 328}},
		"REM":      {{ThroughputGbps: 1, PowerW: 255}, {ThroughputGbps: 1, PowerW: 268}},
		"Compress": {{ThroughputGbps: 3.5, PowerW: 255}, {ThroughputGbps: 1, PowerW: 269}},
	}
}

// PaperTable5 reproduces Table 5 from the published inputs.
func PaperTable5() []Row {
	m := PaperCostModel()
	order := []string{"fio", "OVS", "REM", "Compress"}
	inputs := PaperTable5Inputs()
	rows := make([]Row, 0, len(order))
	for _, app := range order {
		in := inputs[app]
		rows = append(rows, m.Analyze(app, in[0], in[1]))
	}
	return rows
}
