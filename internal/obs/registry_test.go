package obs

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/sim"
)

// The registry is the substrate every counter and gauge in the repo now
// sits on, so its contract is pinned directly: strict writes fail with
// typed errors, merges commute, and exports are byte-stable.

func TestRegistryTypedHandles(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs", "reqs")
	c.Add(2)
	c.Add(3)
	if c.Value() != 5 {
		t.Fatalf("counter = %v, want 5", c.Value())
	}
	if again := r.Counter("reqs", "reqs"); again != c {
		t.Fatal("re-registering a counter returned a different handle")
	}

	h := r.Histogram("depth", "events")
	for _, v := range []float64{1, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 3 || h.Min() != 1 || h.Max() != 100 || h.Sum() != 104 {
		t.Fatalf("histogram = count %d min %v max %v sum %v", h.Count(), h.Min(), h.Max(), h.Sum())
	}

	g := r.Gauge("load", "frac", 0, func() float64 { return 0.5 })
	if g.Series() == nil || g.Series().Period != DefaultSamplePeriod {
		t.Fatalf("gauge series not defaulted: %+v", g.Series())
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
}

// TestRegistryUnknownWriteTypedError is the negative contract: a write
// to a name nothing registered must fail loudly with a typed error a
// caller can errors.As on — never accumulate into nowhere.
func TestRegistryUnknownWriteTypedError(t *testing.T) {
	r := NewRegistry()
	r.Counter("known", "")

	var unknown *UnknownMetricError
	if err := r.Add("unknwon", 1); !errors.As(err, &unknown) {
		t.Fatalf("Add to unregistered name: err = %v, want *UnknownMetricError", err)
	} else if unknown.Name != "unknwon" {
		t.Fatalf("error names %q, want the typo'd name back", unknown.Name)
	}
	if err := r.Set("nope", 1); !errors.As(err, &unknown) {
		t.Fatalf("Set: err = %v, want *UnknownMetricError", err)
	}
	if err := r.Observe("nope", 1); !errors.As(err, &unknown) {
		t.Fatalf("Observe: err = %v, want *UnknownMetricError", err)
	}

	// Right name, wrong kind: also typed.
	r.Histogram("hist", "")
	var mismatch *KindMismatchError
	if err := r.Add("hist", 1); !errors.As(err, &mismatch) {
		t.Fatalf("Add to histogram: err = %v, want *KindMismatchError", err)
	} else if mismatch.Have != KindHistogram || mismatch.Want != KindCounter {
		t.Fatalf("mismatch = %+v", mismatch)
	}
	if err := r.Observe("known", 1); !errors.As(err, &mismatch) {
		t.Fatalf("Observe on counter: err = %v, want *KindMismatchError", err)
	}

	// The happy path stays nil.
	if err := r.Add("known", 2); err != nil {
		t.Fatalf("Add to registered counter: %v", err)
	}
	if r.Counter("known", "").Value() != 2 {
		t.Fatal("strict Add did not reach the counter")
	}
}

func TestRegistryKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name under two kinds did not panic")
		}
	}()
	r.Histogram("x", "")
}

// exportBytes renders a registry through the deterministic JSON writer.
func exportBytes(t *testing.T, r *Registry) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// buildRegistry makes a registry with all three kinds, parameterized so
// two calls can produce overlapping-but-different contents.
func buildRegistry(counter, hist float64, gaugeSamples int) *Registry {
	r := NewRegistry()
	r.Counter("shared/counter", "n").Add(counter)
	h := r.Histogram("shared/hist", "us")
	h.Observe(hist)
	h.Observe(hist * 8)
	if gaugeSamples > 0 {
		g := r.Gauge("own/gauge", "frac", sim.Millisecond, nil)
		for i := 0; i < gaugeSamples; i++ {
			g.Series().Times = append(g.Series().Times, sim.Time(i))
			g.Series().Values = append(g.Series().Values, float64(i))
		}
	}
	return r
}

// TestRegistryMergeCommutes: A+B and B+A must export byte-identically —
// the property that makes per-run registries mergeable in any worker
// completion order.
func TestRegistryMergeCommutes(t *testing.T) {
	ab := buildRegistry(3, 2, 2)
	if err := ab.Merge(buildRegistry(5, 900, 0)); err != nil {
		t.Fatal(err)
	}
	ba := buildRegistry(5, 900, 0)
	if err := ba.Merge(buildRegistry(3, 2, 2)); err != nil {
		t.Fatal(err)
	}
	a, b := exportBytes(t, ab), exportBytes(t, ba)
	if !bytes.Equal(a, b) {
		t.Fatalf("merge is not commutative:\nA+B %s\nB+A %s", a, b)
	}

	// Sanity on the merged values themselves.
	if v := ab.Counter("shared/counter", "").Value(); v != 8 {
		t.Fatalf("merged counter = %v, want 8", v)
	}
	h := ab.Histogram("shared/hist", "")
	if h.Count() != 4 || h.Min() != 2 || h.Max() != 7200 {
		t.Fatalf("merged histogram = count %d min %v max %v", h.Count(), h.Min(), h.Max())
	}
}

func TestRegistryMergeGaugeConflict(t *testing.T) {
	a := buildRegistry(1, 1, 2)
	b := buildRegistry(1, 1, 1)
	var conflict *MergeConflictError
	if err := a.Merge(b); !errors.As(err, &conflict) {
		t.Fatalf("merging two sampled copies of one gauge: err = %v, want *MergeConflictError", err)
	}

	// Disjoint gauges adopt cleanly, and the copy must not alias.
	c := NewRegistry()
	if err := c.Merge(a); err != nil {
		t.Fatal(err)
	}
	a.Gauge("own/gauge", "", 0, nil).Series().Values[0] = 99
	if c.Gauge("own/gauge", "", 0, nil).Series().Values[0] == 99 {
		t.Fatal("merge aliased the source gauge's series")
	}
}

func TestRegistryScope(t *testing.T) {
	r := NewRegistry()
	s := r.Scope("engine/pka")
	s.Counter("cmds", "n").Add(7)
	if err := r.Add("engine/pka/cmds", 1); err != nil {
		t.Fatalf("scoped counter not visible at its full name: %v", err)
	}
	if v := r.Counter("engine/pka/cmds", "").Value(); v != 8 {
		t.Fatalf("scoped counter = %v, want 8", v)
	}
}

func TestRegistryNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("a", "").Add(1)
	r.Gauge("b", "", 0, nil).Series()
	r.Histogram("c", "").Observe(1)
	r.Scope("s").Counter("d", "").Add(1)
	if err := r.Add("a", 1); err != nil {
		t.Fatalf("nil registry strict write: %v, want nil", err)
	}
	if err := r.Merge(NewRegistry()); err != nil {
		t.Fatal(err)
	}
	if r.Snapshot() != nil || r.Len() != 0 {
		t.Fatal("nil registry is not empty")
	}
	r.StartSampler(nil)
	r.EachCounter(func(string, *CounterMetric) { t.Fatal("nil registry yielded a counter") })
}

func TestRegistryWriteJSONStable(t *testing.T) {
	mk := func() *Registry {
		r := NewRegistry()
		// Register in an order that differs from the sorted export order.
		r.Counter("z/last", "n").Add(1)
		r.Histogram("m/mid", "us").Observe(3)
		r.Counter("a/first", "n").Add(2.5)
		return r
	}
	a, b := exportBytes(t, mk()), exportBytes(t, mk())
	if !bytes.Equal(a, b) {
		t.Fatal("two identical registries exported differently")
	}
	want := "[\n" +
		" {\"name\":\"a/first\",\"kind\":\"counter\",\"unit\":\"n\",\"value\":2.5},\n" +
		" {\"name\":\"m/mid\",\"kind\":\"histogram\",\"unit\":\"us\",\"value\":3,\"count\":1,\"min\":3,\"max\":3},\n" +
		" {\"name\":\"z/last\",\"kind\":\"counter\",\"unit\":\"n\",\"value\":1}\n" +
		"]\n"
	if string(a) != want {
		t.Fatalf("export:\n%s\nwant:\n%s", a, want)
	}
}
