package obs

import (
	"repro/internal/sim"
)

// DefaultSamplePeriod is the gauge cadence when a registration passes
// period 0: 1 ms of simulated time.
const DefaultSamplePeriod = sim.Millisecond

// Series is one sampled metric: (time, value) pairs at a nominal
// period. Sensor traces imported from the power model reuse the same
// shape, so exporters treat emulated IPMI/Yocto-Watt readings and
// simulator gauges uniformly.
type Series struct {
	Name   string
	Unit   string
	Period sim.Duration
	Times  []sim.Time
	Values []float64
}

// gauge is a registered sampling closure feeding a Series.
type gauge struct {
	series *Series
	fn     func() float64
}

// Gauge registers a sampled metric. fn is polled on the virtual-time
// sampler at the given period (0 means DefaultSamplePeriod) and must be
// a pure read of model state. Nil-safe.
func (r *Recorder) Gauge(name, unit string, period sim.Duration, fn func() float64) {
	if r == nil {
		return
	}
	if fn == nil {
		panic("obs: nil gauge")
	}
	if period <= 0 {
		period = DefaultSamplePeriod
	}
	s := &Series{Name: name, Unit: unit, Period: period}
	r.series = append(r.series, s)
	r.gauges = append(r.gauges, gauge{series: s, fn: fn})
}

// AddSeries attaches a pre-sampled series (e.g. a power.Sensor trace
// copied at end of run). Times and values are copied. Nil-safe.
func (r *Recorder) AddSeries(name, unit string, period sim.Duration, times []sim.Time, values []float64) {
	if r == nil {
		return
	}
	if len(times) != len(values) {
		panic("obs: series length mismatch")
	}
	s := &Series{Name: name, Unit: unit, Period: period}
	s.Times = append(s.Times, times...)
	s.Values = append(s.Values, values...)
	r.series = append(r.series, s)
}

// Series returns the recorded series in registration order.
func (r *Recorder) Series() []*Series {
	if r == nil {
		return nil
	}
	return r.series
}

// SampleCount returns the total number of samples across all series.
func (r *Recorder) SampleCount() int {
	if r == nil {
		return 0
	}
	n := 0
	for _, s := range r.series {
		n += len(s.Times)
	}
	return n
}

// StartSampler begins polling registered gauges on eng's virtual-time
// tickers. Gauges sharing a period share one ticker, every gauge is
// sampled once immediately (the t=0 baseline), and sampling stops by
// itself when the model drains (see sim.Engine.Ticker). Nil-safe.
func (r *Recorder) StartSampler(eng *sim.Engine) {
	if r == nil || len(r.gauges) == 0 {
		return
	}
	byPeriod := make(map[sim.Duration][]gauge)
	var periods []sim.Duration
	for _, g := range r.gauges {
		p := g.series.Period
		if _, ok := byPeriod[p]; !ok {
			periods = append(periods, p)
		}
		byPeriod[p] = append(byPeriod[p], g)
	}
	for _, p := range periods {
		group := byPeriod[p]
		sample := func() {
			now := eng.Now()
			for _, g := range group {
				g.series.Times = append(g.series.Times, now)
				g.series.Values = append(g.series.Values, g.fn())
			}
		}
		sample()
		eng.Ticker(p, sample)
	}
}
