package obs

import (
	"repro/internal/sim"
)

// DefaultSamplePeriod is the gauge cadence when a registration passes
// period 0: 1 ms of simulated time.
const DefaultSamplePeriod = sim.Millisecond

// Series is one sampled metric: (time, value) pairs at a nominal
// period. Sensor traces imported from the power model reuse the same
// shape, so exporters treat emulated IPMI/Yocto-Watt readings and
// simulator gauges uniformly.
type Series struct {
	Name   string
	Unit   string
	Period sim.Duration
	Times  []sim.Time
	Values []float64
}

// Gauge registers a sampled metric in the run's registry. fn is polled
// on the virtual-time sampler at the given period (0 means
// DefaultSamplePeriod) and must be a pure read of model state. Series
// names are unique per run. Nil-safe.
func (r *Recorder) Gauge(name, unit string, period sim.Duration, fn func() float64) {
	if r == nil {
		return
	}
	if fn == nil {
		panic("obs: nil gauge")
	}
	g := r.reg.Gauge(name, unit, period, fn)
	r.series = append(r.series, g.Series())
}

// AddSeries attaches a pre-sampled series (e.g. a power.Sensor trace
// copied at end of run) as a registry gauge with no sampling closure.
// Times and values are copied. Nil-safe.
func (r *Recorder) AddSeries(name, unit string, period sim.Duration, times []sim.Time, values []float64) {
	if r == nil {
		return
	}
	if len(times) != len(values) {
		panic("obs: series length mismatch")
	}
	s := r.reg.Gauge(name, unit, period, nil).Series()
	s.Times = append(s.Times, times...)
	s.Values = append(s.Values, values...)
	r.series = append(r.series, s)
}

// Series returns the recorded series in registration order.
func (r *Recorder) Series() []*Series {
	if r == nil {
		return nil
	}
	return r.series
}

// SampleCount returns the total number of samples across all series.
func (r *Recorder) SampleCount() int {
	if r == nil {
		return 0
	}
	n := 0
	for _, s := range r.series {
		n += len(s.Times)
	}
	return n
}

// StartSampler begins polling registered gauges on eng's virtual-time
// tickers — see Registry.StartSampler, which this delegates to.
// Nil-safe.
func (r *Recorder) StartSampler(eng *sim.Engine) {
	if r == nil {
		return
	}
	r.reg.StartSampler(eng)
}
