package obs

import (
	"sort"
	"sync"

	"repro/internal/sim"
)

// DeriveRunID maps a run's memoization key to a stable 64-bit ID by
// hashing the key (FNV-1a) and drawing one value from the simulator's
// seeded RNG stream type. The ID is a pure function of the key, so two
// workers racing the same run produce the same ID and the Collector can
// deduplicate them.
func DeriveRunID(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return sim.NewRNG(h).Uint64()
}

// Collector accumulates finished Recorders across concurrent runs and
// exports them deterministically. The zero of *Collector (nil) is the
// "telemetry off" state: NewRecorder on a nil Collector returns a nil
// Recorder, and every Recorder method is nil-safe.
type Collector struct {
	mu     sync.Mutex
	detail bool
	byID   map[uint64]*Recorder
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{byID: make(map[uint64]*Recorder)}
}

// EnableDetail makes future recorders also capture per-job and
// per-frame resource spans (high volume; off by default).
func (c *Collector) EnableDetail() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.detail = true
	c.mu.Unlock()
}

// NewRecorder returns a recorder for the run identified by key, or nil
// when the collector itself is nil (telemetry disabled).
func (c *Collector) NewRecorder(runID uint64, label string) *Recorder {
	if c == nil {
		return nil
	}
	r := NewRecorder(runID, label)
	c.mu.Lock()
	r.Detail = c.detail
	c.mu.Unlock()
	return r
}

// Attach hands a finished recorder to the collector. Duplicate run IDs
// (two workers raced the same memoized run; both simulated identical
// event sequences) keep the first attached copy; the loser's span
// chunks go back on the free list immediately rather than waiting for
// the garbage collector. Nil-safe on both sides.
func (c *Collector) Attach(r *Recorder) {
	if c == nil || r == nil {
		return
	}
	c.mu.Lock()
	_, dup := c.byID[r.runID]
	if !dup {
		c.byID[r.runID] = r
	}
	c.mu.Unlock()
	if dup {
		r.ReleaseSpans()
	}
}

// Runs returns the attached recorders sorted by (label, runID) — the
// deterministic export order, independent of attach order and hence of
// worker parallelism.
func (c *Collector) Runs() []*Recorder {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := make([]*Recorder, 0, len(c.byID))
	for _, r := range c.byID {
		out = append(out, r)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].label != out[j].label {
			return out[i].label < out[j].label
		}
		return out[i].runID < out[j].runID
	})
	return out
}

// Totals sums headline quantities across all runs.
func (c *Collector) Totals() (runs, requests, spans int) {
	for _, r := range c.Runs() {
		runs++
		requests += r.RootCount()
		spans += r.SpanCount()
	}
	return
}

// Counter is one named counter value in a manifest.
type Counter struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// RunManifest summarizes one run's telemetry for `internal/report` and
// JSON export.
type RunManifest struct {
	RunID     uint64    `json:"run_id"`
	Label     string    `json:"label"`
	Requests  int       `json:"requests"`
	Spans     int       `json:"spans"`
	OpenSpans int       `json:"open_spans"`
	Series    int       `json:"series"`
	Samples   int       `json:"samples"`
	Counters  []Counter `json:"counters,omitempty"`
}

// Manifest builds the manifest for one recorder. Resource aggregates
// appear as derived counters (name-sorted after the explicit ones).
func (r *Recorder) Manifest() RunManifest {
	m := RunManifest{
		RunID:     r.RunID(),
		Label:     r.Label(),
		Requests:  r.RootCount(),
		Spans:     r.SpanCount(),
		OpenSpans: r.OpenCount(),
		Series:    len(r.Series()),
		Samples:   r.SampleCount(),
	}
	if r == nil {
		return m
	}
	r.reg.EachCounter(func(name string, c *CounterMetric) {
		m.Counters = append(m.Counters, Counter{Name: name, Value: c.Value()})
	})
	keys := append([]string(nil), r.resourceKeys...)
	sort.Strings(keys)
	for _, k := range keys {
		rs := r.resources[k]
		add := func(suffix string, v uint64) {
			if v != 0 {
				m.Counters = append(m.Counters, Counter{Name: k + "." + suffix, Value: float64(v)})
			}
		}
		add("queued", rs.queued)
		add("started", rs.started)
		add("finished", rs.finished)
		add("dropped", rs.dropped)
		add("peak_queue", uint64(rs.peakQueue))
		add("frames", rs.frames)
		add("bytes", rs.bytes)
		add("lost_frames", rs.lostFrames)
		add("batches", rs.batches)
		add("batch_tasks", rs.batchTasks)
	}
	return m
}

// Manifests returns one manifest per run, in export order.
func (c *Collector) Manifests() []RunManifest {
	runs := c.Runs()
	out := make([]RunManifest, len(runs))
	for i, r := range runs {
		out[i] = r.Manifest()
	}
	return out
}

// ManifestsFor returns the manifests of the named runs only, preserving
// the collector's export order (so a fleet run can list exactly its own
// servers' telemetry, byte-identically at any parallelism).
func (c *Collector) ManifestsFor(ids []uint64) []RunManifest {
	if c == nil || len(ids) == 0 {
		return nil
	}
	want := make(map[uint64]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	var out []RunManifest
	for _, r := range c.Runs() {
		if want[r.RunID()] {
			out = append(out, r.Manifest())
		}
	}
	return out
}
