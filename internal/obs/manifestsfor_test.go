package obs

import "testing"

func TestManifestsForSubsetInExportOrder(t *testing.T) {
	c := NewCollector()
	ids := make([]uint64, 4)
	for i, label := range []string{"b", "a", "d", "c"} {
		id := DeriveRunID(label)
		ids[i] = id
		c.Attach(c.NewRecorder(id, label))
	}
	got := c.ManifestsFor([]uint64{ids[2], ids[0]}) // "d" and "b"
	if len(got) != 2 {
		t.Fatalf("got %d manifests, want 2", len(got))
	}
	// Export order is label-sorted, not request order: "b" before "d".
	if got[0].Label != "b" || got[1].Label != "d" {
		t.Fatalf("wrong order: %q, %q", got[0].Label, got[1].Label)
	}
	if got := c.ManifestsFor(nil); got != nil {
		t.Fatalf("empty id list should return nil")
	}
	var nilc *Collector
	if got := nilc.ManifestsFor(ids); got != nil {
		t.Fatalf("nil collector should return nil")
	}
}
