package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"

	"repro/internal/sim"
)

// Registry is the typed metric substrate of the telemetry layer: named
// counters, sampled gauges and histograms registered per component.
// A Registry belongs to one owner (a Recorder's run, or a Runner's
// self-profile) and is driven from one goroutine at a time — callers
// that share a Registry across workers serialize access themselves,
// exactly as the Collector does for Recorders.
//
// Everything is deterministic: registration order is preserved for
// insertion-ordered export (manifests), snapshots are name-sorted for
// order-independent export (profiles, merges), and no wall-clock or map
// iteration order ever reaches an exporter. A nil *Registry is the
// "metrics off" state: every method no-ops and every registration
// returns a nil handle whose methods also no-op, mirroring the
// nil-Recorder contract.
type Registry struct {
	metrics map[string]*metricEntry
	order   []string // registration order
}

// MetricKind discriminates the three metric types.
type MetricKind int

const (
	// KindCounter is a monotonic (or set-once) accumulated value.
	KindCounter MetricKind = iota
	// KindGauge is a sampled instantaneous value feeding a Series.
	KindGauge
	// KindHistogram is a distribution over observed values.
	KindHistogram
)

func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// UnknownMetricError reports a write to a metric name nothing
// registered. Writes are strict by design: a typo'd name silently
// accumulating into nowhere is exactly the observability blind spot
// this layer exists to close.
type UnknownMetricError struct {
	Name string
}

func (e *UnknownMetricError) Error() string {
	return fmt.Sprintf("obs: write to unregistered metric %q", e.Name)
}

// KindMismatchError reports a name registered (or merged) under two
// different metric kinds.
type KindMismatchError struct {
	Name       string
	Have, Want MetricKind
}

func (e *KindMismatchError) Error() string {
	return fmt.Sprintf("obs: metric %q is a %v, not a %v", e.Name, e.Have, e.Want)
}

// MergeConflictError reports a merge between two registries that both
// sampled the same gauge. Gauge series belong to one run's timeline;
// cross-run aggregation goes through the Collector, not Merge.
type MergeConflictError struct {
	Name string
}

func (e *MergeConflictError) Error() string {
	return fmt.Sprintf("obs: merge conflict: gauge %q sampled by both registries", e.Name)
}

// metricEntry is one registered metric.
type metricEntry struct {
	kind    MetricKind
	counter *CounterMetric
	gauge   *GaugeMetric
	hist    *HistogramMetric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metricEntry)}
}

func (r *Registry) lookup(name string, kind MetricKind) *metricEntry {
	e, ok := r.metrics[name]
	if !ok {
		return nil
	}
	if e.kind != kind {
		panic(&KindMismatchError{Name: name, Have: e.kind, Want: kind})
	}
	return e
}

func (r *Registry) insert(name string, e *metricEntry) {
	r.metrics[name] = e
	r.order = append(r.order, name)
}

// ---- typed handles ----

// CounterMetric accumulates a named value. The zero/nil handle no-ops.
type CounterMetric struct {
	name, unit string
	v          float64
}

// Add accumulates delta. Nil-safe.
func (c *CounterMetric) Add(delta float64) {
	if c != nil {
		c.v += delta
	}
}

// Set overwrites the accumulated value (end-of-run absolute counters).
// Nil-safe.
func (c *CounterMetric) Set(v float64) {
	if c != nil {
		c.v = v
	}
}

// Value returns the accumulated value.
func (c *CounterMetric) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v
}

// GaugeMetric is a sampled metric: a sampling closure polled on the
// virtual-time ticker, feeding a Series. A pre-sampled gauge (imported
// sensor trace) has no closure and is never polled.
type GaugeMetric struct {
	series *Series
	fn     func() float64
}

// Series returns the gauge's backing series.
func (g *GaugeMetric) Series() *Series {
	if g == nil {
		return nil
	}
	return g.series
}

// Last returns the most recent sample, or 0 before the first.
func (g *GaugeMetric) Last() float64 {
	if g == nil || len(g.series.Values) == 0 {
		return 0
	}
	return g.series.Values[len(g.series.Values)-1]
}

// HistogramMetric accumulates a distribution in power-of-two buckets:
// bucket i holds observations with 2^(i-1) < |v| <= 2^i (bucket 0 holds
// |v| <= 1). Bucketed sums merge exactly, so cross-run aggregation is
// deterministic without retaining raw samples.
type HistogramMetric struct {
	name, unit string
	count      uint64
	sum        float64
	min, max   float64
	buckets    [64]uint64
}

// Observe records one value. Nil-safe.
func (h *HistogramMetric) Observe(v float64) {
	if h == nil {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

// bucketOf maps |v| to its power-of-two bucket index.
func bucketOf(v float64) int {
	a := math.Abs(v)
	if a <= 1 {
		return 0
	}
	u := uint64(math.Ceil(a))
	b := bits.Len64(u - 1) // ceil(log2(u))
	if b > 63 {
		b = 63
	}
	return b
}

// Count returns how many values were observed.
func (h *HistogramMetric) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of observed values.
func (h *HistogramMetric) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the observed mean, or 0 with no observations.
func (h *HistogramMetric) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min and Max return the observed extrema (0 with no observations).
func (h *HistogramMetric) Min() float64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest observed value.
func (h *HistogramMetric) Max() float64 {
	if h == nil {
		return 0
	}
	return h.max
}

// ---- registration ----

// Counter registers (or retrieves) a counter. Registering an existing
// name under a different kind panics: that is a wiring bug, not a
// runtime condition. Nil-safe: a nil registry returns a nil handle.
func (r *Registry) Counter(name, unit string) *CounterMetric {
	if r == nil {
		return nil
	}
	if e := r.lookup(name, KindCounter); e != nil {
		return e.counter
	}
	c := &CounterMetric{name: name, unit: unit}
	r.insert(name, &metricEntry{kind: KindCounter, counter: c})
	return c
}

// Gauge registers a sampled gauge. fn is polled on the virtual-time
// sampler at period (0 means DefaultSamplePeriod) and must be a pure
// read of model state; nil fn registers a pre-sampled gauge whose
// series the caller fills (imported sensor traces). Nil-safe.
func (r *Registry) Gauge(name, unit string, period sim.Duration, fn func() float64) *GaugeMetric {
	if r == nil {
		return nil
	}
	if e := r.lookup(name, KindGauge); e != nil {
		return e.gauge
	}
	if period <= 0 {
		period = DefaultSamplePeriod
	}
	g := &GaugeMetric{series: &Series{Name: name, Unit: unit, Period: period}, fn: fn}
	r.insert(name, &metricEntry{kind: KindGauge, gauge: g})
	return g
}

// Histogram registers (or retrieves) a histogram. Nil-safe.
func (r *Registry) Histogram(name, unit string) *HistogramMetric {
	if r == nil {
		return nil
	}
	if e := r.lookup(name, KindHistogram); e != nil {
		return e.hist
	}
	h := &HistogramMetric{name: name, unit: unit}
	r.insert(name, &metricEntry{kind: KindHistogram, hist: h})
	return h
}

// ---- strict name-based writes ----

// Add accumulates delta into a registered counter. Writing an
// unregistered name returns a typed *UnknownMetricError; a registered
// non-counter returns a *KindMismatchError. Nil-safe (no-op, nil
// error): with metrics off there is nothing to misspell against.
func (r *Registry) Add(name string, delta float64) error {
	if r == nil {
		return nil
	}
	e, ok := r.metrics[name]
	if !ok {
		return &UnknownMetricError{Name: name}
	}
	if e.kind != KindCounter {
		return &KindMismatchError{Name: name, Have: e.kind, Want: KindCounter}
	}
	e.counter.Add(delta)
	return nil
}

// Set overwrites a registered counter's value, with Add's strictness.
func (r *Registry) Set(name string, v float64) error {
	if r == nil {
		return nil
	}
	e, ok := r.metrics[name]
	if !ok {
		return &UnknownMetricError{Name: name}
	}
	if e.kind != KindCounter {
		return &KindMismatchError{Name: name, Have: e.kind, Want: KindCounter}
	}
	e.counter.Set(v)
	return nil
}

// Observe records a value into a registered histogram, with Add's
// strictness.
func (r *Registry) Observe(name string, v float64) error {
	if r == nil {
		return nil
	}
	e, ok := r.metrics[name]
	if !ok {
		return &UnknownMetricError{Name: name}
	}
	if e.kind != KindHistogram {
		return &KindMismatchError{Name: name, Have: e.kind, Want: KindHistogram}
	}
	e.hist.Observe(v)
	return nil
}

// ---- scoping ----

// Scope returns a view that prefixes every registration and write with
// "prefix/" — one component's corner of a shared registry.
func (r *Registry) Scope(prefix string) *Scope {
	if r == nil {
		return nil
	}
	return &Scope{reg: r, prefix: prefix + "/"}
}

// Scope is a prefixed view of a Registry. A nil Scope no-ops.
type Scope struct {
	reg    *Registry
	prefix string
}

// Counter registers prefix/name in the underlying registry.
func (s *Scope) Counter(name, unit string) *CounterMetric {
	if s == nil {
		return nil
	}
	return s.reg.Counter(s.prefix+name, unit)
}

// Gauge registers prefix/name in the underlying registry.
func (s *Scope) Gauge(name, unit string, period sim.Duration, fn func() float64) *GaugeMetric {
	if s == nil {
		return nil
	}
	return s.reg.Gauge(s.prefix+name, unit, period, fn)
}

// Histogram registers prefix/name in the underlying registry.
func (s *Scope) Histogram(name, unit string) *HistogramMetric {
	if s == nil {
		return nil
	}
	return s.reg.Histogram(s.prefix+name, unit)
}

// ---- merge ----

// Merge folds other into r: counters sum, histograms merge bucket-wise,
// and metrics absent from r are adopted (gauge series copied). Both
// operations are commutative and associative over snapshots, so merging
// per-run registries in any order yields byte-identical exports. A
// gauge sampled by both sides returns a *MergeConflictError (cross-run
// series aggregation is the Collector's job); a name held under two
// kinds returns a *KindMismatchError. Nil-safe on both sides.
func (r *Registry) Merge(other *Registry) error {
	if r == nil || other == nil {
		return nil
	}
	for _, name := range other.order {
		oe := other.metrics[name]
		e, ok := r.metrics[name]
		if !ok {
			r.insert(name, copyEntry(oe))
			continue
		}
		if e.kind != oe.kind {
			return &KindMismatchError{Name: name, Have: e.kind, Want: oe.kind}
		}
		switch e.kind {
		case KindCounter:
			e.counter.v += oe.counter.v
		case KindHistogram:
			h, oh := e.hist, oe.hist
			if oh.count > 0 {
				if h.count == 0 || oh.min < h.min {
					h.min = oh.min
				}
				if h.count == 0 || oh.max > h.max {
					h.max = oh.max
				}
				h.count += oh.count
				h.sum += oh.sum
				for i := range h.buckets {
					h.buckets[i] += oh.buckets[i]
				}
			}
		case KindGauge:
			if len(e.gauge.series.Times) > 0 && len(oe.gauge.series.Times) > 0 {
				return &MergeConflictError{Name: name}
			}
			if len(oe.gauge.series.Times) > 0 {
				e.gauge.series.Times = append([]sim.Time(nil), oe.gauge.series.Times...)
				e.gauge.series.Values = append([]float64(nil), oe.gauge.series.Values...)
			}
		}
	}
	return nil
}

// copyEntry deep-copies a metric entry so merged registries never alias
// the source's mutable state.
func copyEntry(e *metricEntry) *metricEntry {
	out := &metricEntry{kind: e.kind}
	switch e.kind {
	case KindCounter:
		c := *e.counter
		out.counter = &c
	case KindHistogram:
		h := *e.hist
		out.hist = &h
	case KindGauge:
		s := &Series{Name: e.gauge.series.Name, Unit: e.gauge.series.Unit, Period: e.gauge.series.Period}
		s.Times = append(s.Times, e.gauge.series.Times...)
		s.Values = append(s.Values, e.gauge.series.Values...)
		out.gauge = &GaugeMetric{series: s}
	}
	return out
}

// ---- sampling ----

// StartSampler begins polling registered gauge closures on eng's
// virtual-time tickers. Gauges sharing a period share one ticker, every
// gauge is sampled once immediately (the t=0 baseline), and sampling
// stops by itself when the model drains (see sim.Engine.Ticker).
// Nil-safe.
func (r *Registry) StartSampler(eng *sim.Engine) {
	if r == nil {
		return
	}
	byPeriod := make(map[sim.Duration][]*GaugeMetric)
	var periods []sim.Duration
	for _, name := range r.order {
		e := r.metrics[name]
		if e.kind != KindGauge || e.gauge.fn == nil {
			continue
		}
		p := e.gauge.series.Period
		if _, ok := byPeriod[p]; !ok {
			periods = append(periods, p)
		}
		byPeriod[p] = append(byPeriod[p], e.gauge)
	}
	for _, p := range periods {
		group := byPeriod[p]
		sample := func() {
			now := eng.Now()
			for _, g := range group {
				g.series.Times = append(g.series.Times, now)
				g.series.Values = append(g.series.Values, g.fn())
			}
		}
		sample()
		eng.Ticker(p, sample)
	}
}

// ---- export ----

// MetricValue is one metric's exported state: the scalar summary for
// counters and gauges, the aggregate for histograms.
type MetricValue struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Unit string `json:"unit,omitempty"`
	// Value is the counter total, the gauge's last sample, or the
	// histogram sum.
	Value float64 `json:"value"`
	// Count is histogram observations (also gauge sample count).
	Count uint64  `json:"count,omitempty"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
}

// Snapshot returns every metric's current state, name-sorted — the
// deterministic export order, independent of registration order.
func (r *Registry) Snapshot() []MetricValue {
	if r == nil {
		return nil
	}
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	out := make([]MetricValue, 0, len(names))
	for _, name := range names {
		e := r.metrics[name]
		mv := MetricValue{Name: name, Kind: e.kind.String()}
		switch e.kind {
		case KindCounter:
			mv.Unit = e.counter.unit
			mv.Value = e.counter.v
		case KindGauge:
			mv.Unit = e.gauge.series.Unit
			mv.Value = e.gauge.Last()
			mv.Count = uint64(len(e.gauge.series.Times))
		case KindHistogram:
			mv.Unit = e.hist.unit
			mv.Value = e.hist.sum
			mv.Count = e.hist.count
			mv.Min = e.hist.min
			mv.Max = e.hist.max
		}
		out = append(out, mv)
	}
	return out
}

// EachCounter calls fn for every registered counter in registration
// order — the insertion-ordered export manifests use. Nil-safe.
func (r *Registry) EachCounter(fn func(name string, c *CounterMetric)) {
	if r == nil {
		return
	}
	for _, name := range r.order {
		if e := r.metrics[name]; e.kind == KindCounter {
			fn(name, e.counter)
		}
	}
}

// Len returns how many metrics are registered.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.order)
}

// WriteJSON writes the name-sorted snapshot as one JSON array, built
// with the same exact formatting rules as the other exporters (strconv
// shortest-float, no map order) so output is byte-identical across
// processes and parallelism.
func (r *Registry) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	snap := r.Snapshot()
	for i, mv := range snap {
		fmt.Fprintf(bw, " {\"name\":%q,\"kind\":%q", mv.Name, mv.Kind)
		if mv.Unit != "" {
			fmt.Fprintf(bw, ",\"unit\":%q", mv.Unit)
		}
		fmt.Fprintf(bw, ",\"value\":%s", ffloat(mv.Value))
		if mv.Count != 0 {
			fmt.Fprintf(bw, ",\"count\":%d", mv.Count)
		}
		if mv.Kind == KindHistogram.String() {
			fmt.Fprintf(bw, ",\"min\":%s,\"max\":%s", ffloat(mv.Min), ffloat(mv.Max))
		}
		if i < len(snap)-1 {
			bw.WriteString("},\n")
		} else {
			bw.WriteString("}\n")
		}
	}
	if _, err := bw.WriteString("]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
