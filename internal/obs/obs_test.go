package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestDeriveRunIDStable(t *testing.T) {
	a := DeriveRunID("run|foo|@host-cpu")
	b := DeriveRunID("run|foo|@host-cpu")
	c := DeriveRunID("run|bar|@host-cpu")
	if a != b {
		t.Fatalf("same key gave different IDs: %x vs %x", a, b)
	}
	if a == c {
		t.Fatalf("distinct keys collided: %x", a)
	}
}

func TestSpanOpenCloseAndCounts(t *testing.T) {
	r := NewRecorder(1, "t")
	root := r.Open(TrackRequests, "request", 100)
	child := r.OpenChild(TrackRequests, "stage", root, 110)
	r.Close(child, 150)
	r.Span(TrackRequests, "stage2", root, 150, 190)
	r.Close(root, 200)
	if r.SpanCount() != 3 {
		t.Fatalf("SpanCount = %d, want 3", r.SpanCount())
	}
	if r.RootCount() != 1 {
		t.Fatalf("RootCount = %d, want 1", r.RootCount())
	}
	if r.OpenCount() != 0 {
		t.Fatalf("OpenCount = %d, want 0", r.OpenCount())
	}
	// Closing twice, or closing span 0, must be harmless no-ops.
	r.Close(root, 999)
	r.Close(0, 999)
	left := r.Open(TrackRequests, "request", 300) // never closed
	_ = left
	if r.OpenCount() != 1 {
		t.Fatalf("OpenCount after dangling open = %d, want 1", r.OpenCount())
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	id := r.Open(TrackRequests, "request", 0)
	if id != 0 {
		t.Fatalf("nil recorder Open = %d, want 0", id)
	}
	r.Close(id, 10)
	r.Span(TrackRequests, "x", 0, 0, 1)
	r.Gauge("g", "u", 0, func() float64 { return 1 })
	r.SetCount("c", 1)
	r.Count("c", 1)
	if r.SpanCount() != 0 || r.SampleCount() != 0 {
		t.Fatal("nil recorder must report zero everything")
	}
}

func TestSamplerGroupsByPeriod(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRecorder(1, "t")
	var fast, slow float64
	r.Gauge("fast", "u", 10, func() float64 { fast++; return fast })
	r.Gauge("slow", "u", 40, func() float64 { slow++; return slow })
	r.StartSampler(eng)
	eng.At(100, func() {}) // model horizon
	eng.Run()
	series := r.Series()
	if len(series) != 2 {
		t.Fatalf("series count = %d, want 2", len(series))
	}
	byName := map[string]*Series{}
	for _, s := range series {
		byName[s.Name] = s
	}
	nf, ns := len(byName["fast"].Times), len(byName["slow"].Times)
	// Both sample once at t=0, then at their own cadence to ~t=100.
	if nf < 10 || nf > 12 {
		t.Fatalf("fast samples = %d, want ~11", nf)
	}
	if ns < 3 || ns > 4 {
		t.Fatalf("slow samples = %d, want ~3", ns)
	}
	if byName["fast"].Times[0] != 0 {
		t.Fatalf("first sample at %v, want 0", byName["fast"].Times[0])
	}
}

// buildRecorder makes a deterministic recorder with spans and metrics.
func buildRecorder(id uint64, label string) *Recorder {
	r := NewRecorder(id, label)
	for i := 0; i < 3; i++ {
		at := sim.Time(i * 1000)
		root := r.Open(TrackRequests, "request", at)
		r.Span(TrackRequests, "stage", root, at.Add(10), at.Add(400))
		r.Close(root, at.Add(500))
	}
	r.AddSeries("q", "jobs", 100, []sim.Time{0, 100, 200}, []float64{0, 2, 1})
	r.SetCount("requests.sent", 3)
	return r
}

func TestExportDeterministicUnderAttachOrder(t *testing.T) {
	mk := func(reverse bool) *Collector {
		c := NewCollector()
		recs := []*Recorder{
			buildRecorder(7, "run b"),
			buildRecorder(3, "run a"),
			buildRecorder(9, "run a"), // label tie → run-ID order
		}
		if reverse {
			for i, j := 0, len(recs)-1; i < j; i, j = i+1, j-1 {
				recs[i], recs[j] = recs[j], recs[i]
			}
		}
		for _, r := range recs {
			c.Attach(r)
		}
		return c
	}
	for _, export := range []struct {
		name  string
		write func(*Collector, *bytes.Buffer) error
	}{
		{"trace", func(c *Collector, b *bytes.Buffer) error { return c.WriteTrace(b) }},
		{"csv", func(c *Collector, b *bytes.Buffer) error { return c.WriteMetricsCSV(b) }},
		{"json", func(c *Collector, b *bytes.Buffer) error { return c.WriteMetricsJSON(b) }},
		{"manifests", func(c *Collector, b *bytes.Buffer) error { return c.WriteManifests(b) }},
	} {
		var fwd, rev bytes.Buffer
		if err := export.write(mk(false), &fwd); err != nil {
			t.Fatalf("%s: %v", export.name, err)
		}
		if err := export.write(mk(true), &rev); err != nil {
			t.Fatalf("%s: %v", export.name, err)
		}
		if !bytes.Equal(fwd.Bytes(), rev.Bytes()) {
			t.Fatalf("%s export depends on attach order", export.name)
		}
	}
}

func TestAttachDeduplicatesByRunID(t *testing.T) {
	c := NewCollector()
	c.Attach(buildRecorder(5, "x"))
	c.Attach(buildRecorder(5, "x")) // racing worker of the same memo key
	runs, requests, spans := c.Totals()
	if runs != 1 || requests != 3 || spans != 6 {
		t.Fatalf("totals = %d/%d/%d, want 1/3/6", runs, requests, spans)
	}
}

func TestTraceIsValidChromeJSON(t *testing.T) {
	c := NewCollector()
	c.Attach(buildRecorder(1, "run"))
	var buf bytes.Buffer
	if err := c.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []map[string]any
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var begins, ends, counters, meta int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "b":
			begins++
		case "e":
			ends++
		case "C":
			counters++
		case "M":
			meta++
		}
	}
	// 3 requests + 3 stages as async begin/end pairs; 3 counter samples.
	if begins != 6 || ends != 6 {
		t.Fatalf("async pairs = %d/%d, want 6/6", begins, ends)
	}
	if counters != 3 {
		t.Fatalf("counter events = %d, want 3", counters)
	}
	if meta == 0 {
		t.Fatal("expected process/thread metadata events")
	}
}

func TestMetricsCSVShape(t *testing.T) {
	c := NewCollector()
	c.Attach(buildRecorder(1, "run one"))
	var buf bytes.Buffer
	if err := c.WriteMetricsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "run,series,unit,period_ns,time_ns,value" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 4 { // header + 3 samples
		t.Fatalf("line count = %d, want 4:\n%s", len(lines), buf.String())
	}
	for _, l := range lines[1:] {
		if got := len(strings.Split(l, ",")); got != 6 {
			t.Fatalf("row %q has %d fields, want 6", l, got)
		}
	}
}

func TestManifestCounts(t *testing.T) {
	c := NewCollector()
	r := buildRecorder(2, "m")
	r.Open(TrackRequests, "request", 5000) // dangling
	c.Attach(r)
	ms := c.Manifests()
	if len(ms) != 1 {
		t.Fatalf("manifest count = %d", len(ms))
	}
	m := ms[0]
	if m.Requests != 4 || m.Spans != 7 || m.OpenSpans != 1 {
		t.Fatalf("manifest = %+v", m)
	}
	if m.Series != 1 || m.Samples != 3 {
		t.Fatalf("series/samples = %d/%d, want 1/3", m.Series, m.Samples)
	}
	found := false
	for _, cn := range m.Counters {
		if cn.Name == "requests.sent" && cn.Value == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("explicit counter missing: %+v", m.Counters)
	}
}
