package obs

import (
	"testing"

	"repro/internal/sim"
)

// Spans live in fixed chunks; the interesting cases are the boundary
// (IDs spanning two chunks) and release (chunks going back to the free
// list when the Collector drops a deduplicated recorder).

func TestSpanChunkBoundary(t *testing.T) {
	r := NewRecorder(1, "chunks")
	const n = spanChunkSize + spanChunkSize/2
	ids := make([]SpanID, n)
	for i := 0; i < n; i++ {
		ids[i] = r.Open(TrackRequests, "request", sim.Time(i))
	}
	if r.SpanCount() != n {
		t.Fatalf("SpanCount = %d, want %d", r.SpanCount(), n)
	}
	// Close one span on each side of the boundary and the last one.
	for _, i := range []int{0, spanChunkSize - 1, spanChunkSize, n - 1} {
		r.Close(ids[i], sim.Time(i+10))
	}
	if got := r.OpenCount(); got != n-4 {
		t.Fatalf("OpenCount = %d, want %d", got, n-4)
	}
	seen := 0
	r.EachSpan(func(id SpanID, s SpanView) {
		seen++
		if s.Start != sim.Time(int(id)-1) {
			t.Fatalf("span %d start = %v, want %v", id, s.Start, sim.Time(int(id)-1))
		}
	})
	if seen != n {
		t.Fatalf("EachSpan yielded %d spans, want %d", seen, n)
	}
	if r.RootCount() != n {
		t.Fatalf("RootCount = %d, want %d", r.RootCount(), n)
	}

	// Out-of-range and zero IDs stay no-ops at chunked sizes too.
	r.Close(0, 1)
	r.Close(SpanID(n+1), 1)
}

func TestCollectorReleasesDuplicateSpans(t *testing.T) {
	c := NewCollector()
	first := c.NewRecorder(42, "run")
	first.Span(TrackRequests, "request", 0, 0, 1)
	c.Attach(first)

	dup := c.NewRecorder(42, "run")
	dup.Span(TrackRequests, "request", 0, 0, 1)
	c.Attach(dup)

	// The first copy is kept intact; the loser's chunks were released.
	if dup.SpanCount() != 0 || len(dup.chunks) != 0 {
		t.Fatalf("duplicate recorder kept %d spans in %d chunks after Attach", dup.SpanCount(), len(dup.chunks))
	}
	runs := c.Runs()
	if len(runs) != 1 || runs[0] != first || runs[0].SpanCount() != 1 {
		t.Fatalf("collector kept %d runs, first has %d spans", len(runs), runs[0].SpanCount())
	}
}
