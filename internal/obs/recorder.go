// Package obs is the virtual-time telemetry layer: request spans,
// sampled metrics, and deterministic trace export.
//
// A Recorder belongs to exactly one simulation run (one sim.Engine) and
// is driven synchronously from that run's event loop, so it needs no
// locking. Recorders are handed to a Collector when the run finishes;
// the Collector sorts and deduplicates at export time so output is
// byte-identical at any parallelism.
//
// Everything here is a pure observer: recording never mutates model
// state, never draws from model RNG streams, and never schedules model
// events, so enabling telemetry cannot change simulation results.
package obs

import (
	"sync"

	"repro/internal/sim"
)

// TrackRequests is the span track that carries request lifecycles. One
// root span is opened per simulated request; stage children link to it.
const TrackRequests = "requests"

// SpanID identifies a span within one Recorder. IDs are 1-based; zero
// means "no span" and is safe to pass to every Recorder method.
type SpanID uint32

// span is the compact in-memory form. Track and name are interned
// per-recorder; end is open (span still in flight) while < start.
type span struct {
	start, end sim.Time
	parent     SpanID
	track      uint16
	name       uint16
}

// openEnd marks a span whose Close was never reached (e.g. the request
// was shed at a full queue). Exporters render these with zero duration
// and manifests count them.
const openEnd = sim.Time(-1)

// Spans are stored in fixed-size chunks rather than one growing slice.
// A run records millions of spans, and slice growth re-copies the whole
// backing array each time it doubles — profiled at ~25% of a
// telemetry-enabled run before chunking. Chunks never move once
// allocated, and retired recorders (deduplicated replays at -jN) hand
// their chunks back to a free list instead of the garbage collector.
const (
	spanChunkShift = 12 // 4096 spans (96 KiB) per chunk
	spanChunkSize  = 1 << spanChunkShift
	spanChunkMask  = spanChunkSize - 1
)

var spanChunkPool = sync.Pool{New: func() any { return new([spanChunkSize]span) }}

// resourceStats aggregates the observer callbacks per resource name.
type resourceStats struct {
	queued, started, finished, dropped uint64
	frames, bytes, lostFrames          uint64
	batches, batchTasks                uint64
	peakQueue                          int
}

// Recorder captures one run's telemetry.
type Recorder struct {
	runID uint64
	label string
	// Detail additionally records a span per station job and link frame
	// on per-resource tracks. Off by default: request spans plus gauges
	// explain saturation without the O(events) volume.
	Detail bool

	tracks   []string
	trackIdx map[string]uint16
	names    []string
	nameIdx  map[string]uint16
	chunks   []*[spanChunkSize]span
	nspans   int

	// reg is the run's metric registry: counters (Count/SetCount) and
	// sampled gauges (Gauge/AddSeries) both live here; the Recorder is
	// the span layer over it. series keeps the registration-order view
	// the exporters emit.
	reg    *Registry
	series []*Series

	resources    map[string]*resourceStats
	resourceKeys []string
}

// NewRecorder returns a recorder for one run. runID must be unique and
// deterministic across processes (see DeriveRunID); label is the
// human-readable run description used in exports.
func NewRecorder(runID uint64, label string) *Recorder {
	return &Recorder{
		runID:     runID,
		label:     label,
		trackIdx:  make(map[string]uint16),
		nameIdx:   make(map[string]uint16),
		reg:       NewRegistry(),
		resources: make(map[string]*resourceStats),
	}
}

// Metrics returns the run's metric registry, for callers that want the
// typed handles or strict name-based writes directly. Nil-safe: a nil
// recorder returns a nil registry, whose methods all no-op.
func (r *Recorder) Metrics() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// RunID returns the recorder's deterministic run identifier.
func (r *Recorder) RunID() uint64 {
	if r == nil {
		return 0
	}
	return r.runID
}

// Label returns the recorder's run description.
func (r *Recorder) Label() string {
	if r == nil {
		return ""
	}
	return r.label
}

//snicvet:hotpath
func (r *Recorder) internTrack(track string) uint16 {
	if i, ok := r.trackIdx[track]; ok {
		return i
	}
	i := uint16(len(r.tracks))
	//snicvet:ignore hotpath -- first use of a track name; the interning table is tiny and stops growing
	r.tracks = append(r.tracks, track)
	r.trackIdx[track] = i
	return i
}

//snicvet:hotpath
func (r *Recorder) internName(name string) uint16 {
	if i, ok := r.nameIdx[name]; ok {
		return i
	}
	i := uint16(len(r.names))
	//snicvet:ignore hotpath -- first use of a span name; the interning table is tiny and stops growing
	r.names = append(r.names, name)
	r.nameIdx[name] = i
	return i
}

// alloc reserves the next span slot, pulling a fresh chunk from the
// free list when the current one fills. Slots are written in full by
// every caller, so recycled chunk contents never leak into exports.
//
//snicvet:hotpath
func (r *Recorder) alloc() *span {
	if r.nspans>>spanChunkShift == len(r.chunks) {
		//snicvet:ignore hotpath -- chunk boundary, amortized over 4096 spans; chunks come from the shared pool
		r.chunks = append(r.chunks, spanChunkPool.Get().(*[spanChunkSize]span))
	}
	sp := &r.chunks[r.nspans>>spanChunkShift][r.nspans&spanChunkMask]
	r.nspans++
	return sp
}

// spanAt returns the i-th recorded span (0-based). Callers bound i by
// nspans.
//
//snicvet:hotpath
func (r *Recorder) spanAt(i int) *span {
	return &r.chunks[i>>spanChunkShift][i&spanChunkMask]
}

// ReleaseSpans returns the recorder's span storage to the shared free
// list and forgets every recorded span. The Collector calls this when
// it discards a deduplicated replay of a run it already holds; after
// release the recorder must not record or export spans.
func (r *Recorder) ReleaseSpans() {
	if r == nil {
		return
	}
	for _, c := range r.chunks {
		spanChunkPool.Put(c)
	}
	r.chunks = nil
	r.nspans = 0
}

// Open starts a span on track at start and returns its ID. Nil-safe:
// a nil recorder returns 0.
//
//snicvet:hotpath
func (r *Recorder) Open(track, name string, start sim.Time) SpanID {
	if r == nil {
		return 0
	}
	*r.alloc() = span{
		start: start, end: openEnd,
		track: r.internTrack(track), name: r.internName(name),
	}
	return SpanID(r.nspans)
}

// OpenChild starts a span linked to parent. Nil-safe.
//
//snicvet:hotpath
func (r *Recorder) OpenChild(track, name string, parent SpanID, start sim.Time) SpanID {
	id := r.Open(track, name, start)
	if id != 0 {
		r.spanAt(int(id) - 1).parent = parent
	}
	return id
}

// Close ends an open span. Closing span 0 or an already-closed span is
// a no-op. Nil-safe.
//
//snicvet:hotpath
func (r *Recorder) Close(id SpanID, end sim.Time) {
	if r == nil || id == 0 || int(id) > r.nspans {
		return
	}
	sp := r.spanAt(int(id) - 1)
	if sp.end == openEnd {
		sp.end = end
	}
}

// Span records a complete child span in one call. parent may be 0 for
// a free-standing span. Nil-safe.
//
//snicvet:hotpath
func (r *Recorder) Span(track, name string, parent SpanID, start, end sim.Time) SpanID {
	if r == nil {
		return 0
	}
	*r.alloc() = span{
		start: start, end: end, parent: parent,
		track: r.internTrack(track), name: r.internName(name),
	}
	return SpanID(r.nspans)
}

// SpanView is the read-only export of one recorded span, with interned
// track/name indices resolved back to strings. Open marks spans whose
// Close was never reached; their End is meaningless.
type SpanView struct {
	Track, Name string
	Parent      SpanID
	Start, End  sim.Time
	Open        bool
}

// EachSpan calls fn for every recorded span in record order. The span
// audit in internal/invariant is built on this. Nil-safe.
func (r *Recorder) EachSpan(fn func(id SpanID, s SpanView)) {
	if r == nil {
		return
	}
	for i := 0; i < r.nspans; i++ {
		sp := r.spanAt(i)
		fn(SpanID(i+1), SpanView{
			Track:  r.tracks[sp.track],
			Name:   r.names[sp.name],
			Parent: sp.parent,
			Start:  sp.start,
			End:    sp.end,
			Open:   sp.end == openEnd,
		})
	}
}

// SpanCount returns the number of spans recorded so far.
func (r *Recorder) SpanCount() int {
	if r == nil {
		return 0
	}
	return r.nspans
}

// RootCount returns the number of parentless spans on the requests
// track — by construction, one per simulated request.
func (r *Recorder) RootCount() int {
	if r == nil {
		return 0
	}
	ti, ok := r.trackIdx[TrackRequests]
	if !ok {
		return 0
	}
	n := 0
	for i := 0; i < r.nspans; i++ {
		sp := r.spanAt(i)
		if sp.parent == 0 && sp.track == ti {
			n++
		}
	}
	return n
}

// OpenCount returns spans never closed (requests shed mid-flight).
func (r *Recorder) OpenCount() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := 0; i < r.nspans; i++ {
		if r.spanAt(i).end == openEnd {
			n++
		}
	}
	return n
}

// Count adds delta to a named counter, registering it on first use.
// Nil-safe.
//
//snicvet:hotpath
func (r *Recorder) Count(name string, delta float64) {
	if r == nil {
		return
	}
	r.reg.Counter(name, "").Add(delta)
}

// SetCount sets a named counter to an absolute value, registering it on
// first use. Nil-safe.
//
//snicvet:hotpath
func (r *Recorder) SetCount(name string, v float64) {
	if r == nil {
		return
	}
	r.reg.Counter(name, "").Set(v)
}

//snicvet:hotpath
func (r *Recorder) resource(name string) *resourceStats {
	rs, ok := r.resources[name]
	if !ok {
		//snicvet:ignore hotpath -- first callback from a resource; the stats set stops growing after warm-up
		rs = &resourceStats{}
		r.resources[name] = rs
		//snicvet:ignore hotpath -- first callback from a resource; the stats set stops growing after warm-up
		r.resourceKeys = append(r.resourceKeys, name)
	}
	return rs
}

// ---- sim observer implementations ----
// A Recorder can be installed directly as the observer on every station,
// batch engine, and link of a testbed.

// JobQueued implements sim.StationObserver.
//
//snicvet:hotpath
func (r *Recorder) JobQueued(station string, _ sim.Time, queueLen int) {
	rs := r.resource(station)
	rs.queued++
	if queueLen > rs.peakQueue {
		rs.peakQueue = queueLen
	}
}

// JobStarted implements sim.StationObserver.
//
//snicvet:hotpath
func (r *Recorder) JobStarted(station string, _ sim.Time, _ sim.Duration) {
	r.resource(station).started++
}

// JobFinished implements sim.StationObserver.
//
//snicvet:hotpath
func (r *Recorder) JobFinished(station string, start, end sim.Time) {
	r.resource(station).finished++
	if r.Detail {
		r.Span(station, "job", 0, start, end)
	}
}

// JobDropped implements sim.StationObserver.
//
//snicvet:hotpath
func (r *Recorder) JobDropped(station string, _ sim.Time) {
	r.resource(station).dropped++
}

// FrameSent implements sim.LinkObserver.
//
//snicvet:hotpath
func (r *Recorder) FrameSent(link string, size int, start, done sim.Time, lost bool) {
	rs := r.resource(link)
	rs.frames++
	rs.bytes += uint64(size)
	if lost {
		rs.lostFrames++
	}
	if r.Detail {
		r.Span(link, "frame", 0, start, done)
	}
}

// BatchFlushed implements sim.BatchObserver.
//
//snicvet:hotpath
func (r *Recorder) BatchFlushed(station string, tasks int, _ sim.Duration, _ sim.Time) {
	rs := r.resource(station)
	rs.batches++
	rs.batchTasks += uint64(tasks)
}
