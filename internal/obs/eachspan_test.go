package obs

import (
	"testing"

	"repro/internal/sim"
)

// EachSpan backs the invariant layer's span audit, so its view must be
// faithful: record order, resolved track/name strings, parent links and
// the open marker.
func TestEachSpanView(t *testing.T) {
	rec := NewRecorder(7, "run")
	root := rec.Open("requests", "req", sim.Time(10))
	child := rec.OpenChild("host", "serve", root, sim.Time(20))
	rec.Close(child, sim.Time(30))
	rec.Close(root, sim.Time(35))
	rec.Open("requests", "shed", sim.Time(40)) // never closed

	var ids []SpanID
	var views []SpanView
	rec.EachSpan(func(id SpanID, s SpanView) {
		ids = append(ids, id)
		views = append(views, s)
	})
	if len(views) != 3 || len(views) != rec.SpanCount() {
		t.Fatalf("saw %d spans, want 3 (SpanCount %d)", len(views), rec.SpanCount())
	}
	for i, id := range ids {
		if id != SpanID(i+1) {
			t.Fatalf("ids %v not in record order", ids)
		}
	}
	if v := views[0]; v.Track != "requests" || v.Name != "req" || v.Parent != 0 || v.Open {
		t.Fatalf("root view = %+v", v)
	}
	if v := views[1]; v.Track != "host" || v.Parent != root || v.Start != sim.Time(20) || v.End != sim.Time(30) || v.Open {
		t.Fatalf("child view = %+v", v)
	}
	if v := views[2]; !v.Open {
		t.Fatalf("never-closed span not marked open: %+v", v)
	}
}

func TestEachSpanNilRecorder(t *testing.T) {
	var rec *Recorder
	rec.EachSpan(func(SpanID, SpanView) { t.Fatal("nil recorder yielded a span") })
}
