package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Exporters. All output is deterministic: runs are emitted in
// Collector.Runs order, spans and samples in recording order, and all
// numbers are formatted by exact integer math or strconv's shortest
// round-trip form — no map iteration, no wall-clock timestamps.

// usec renders a virtual-time instant or duration (ns) as the
// microsecond string Chrome trace viewers expect. Three decimals keep
// nanosecond exactness.
func usec(ns int64) string {
	sign := ""
	if ns < 0 {
		sign = "-"
		ns = -ns
	}
	return fmt.Sprintf("%s%d.%03d", sign, ns/1000, ns%1000)
}

func ffloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteTrace emits the Chrome trace-event JSON form of every attached
// run, loadable in Perfetto or chrome://tracing.
//
// Layout: each run is a process (pid in export order) whose name is the
// run label. Request spans are async events ("b"/"e") grouped by their
// root span's ID, so concurrent requests nest correctly; detail-mode
// resource spans are complete ("X") events on per-resource threads; and
// every metric series becomes a counter ("C") track.
func (c *Collector) WriteTrace(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString("\n")
		bw.WriteString(s)
	}
	for pi, rec := range c.Runs() {
		pid := pi + 1
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":%s}}`,
			pid, strconv.Quote(rec.label)))
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"name":"process_sort_index","args":{"sort_index":%d}}`,
			pid, pid))
		for ti, track := range rec.tracks {
			emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
				pid, ti+1, strconv.Quote(track)))
		}
		reqTrack, hasReq := rec.trackIdx[TrackRequests]
		for i := 0; i < rec.nspans; i++ {
			sp := rec.spanAt(i)
			id := SpanID(i + 1)
			end := sp.end
			if end == openEnd {
				end = sp.start
			}
			name := strconv.Quote(rec.names[sp.name])
			tid := int(sp.track) + 1
			if hasReq && sp.track == reqTrack {
				// Async pair keyed by the request's root span so every
				// stage of one request lands on one nested track.
				group := id
				if sp.parent != 0 {
					group = sp.parent
				}
				emit(fmt.Sprintf(`{"ph":"b","cat":"request","id":"0x%x","pid":%d,"tid":%d,"name":%s,"ts":%s}`,
					uint32(group), pid, tid, name, usec(int64(sp.start))))
				emit(fmt.Sprintf(`{"ph":"e","cat":"request","id":"0x%x","pid":%d,"tid":%d,"name":%s,"ts":%s}`,
					uint32(group), pid, tid, name, usec(int64(end))))
				continue
			}
			emit(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"name":%s,"ts":%s,"dur":%s}`,
				pid, tid, name, usec(int64(sp.start)), usec(int64(end.Sub(sp.start)))))
		}
		for _, s := range rec.series {
			name := strconv.Quote(s.Name)
			for i, t := range s.Times {
				emit(fmt.Sprintf(`{"ph":"C","pid":%d,"name":%s,"ts":%s,"args":{"value":%s}}`,
					pid, name, usec(int64(t)), ffloat(s.Values[i])))
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteMetricsCSV dumps every sampled series as CSV with the columns
// run,series,unit,period_ns,time_ns,value. Labels avoid commas by
// construction; any embedded comma or quote is CSV-quoted.
func (c *Collector) WriteMetricsCSV(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString("run,series,unit,period_ns,time_ns,value\n"); err != nil {
		return err
	}
	for _, rec := range c.Runs() {
		label := csvField(rec.label)
		for _, s := range rec.series {
			prefix := fmt.Sprintf("%s,%s,%s,%d,", label, csvField(s.Name), csvField(s.Unit), int64(s.Period))
			for i, t := range s.Times {
				fmt.Fprintf(bw, "%s%d,%s\n", prefix, int64(t), ffloat(s.Values[i]))
			}
		}
	}
	return bw.Flush()
}

func csvField(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == ',' || s[i] == '"' || s[i] == '\n' {
			return strconv.Quote(s)
		}
	}
	return s
}

// metricsRun / metricsSeries are the JSON metrics shapes.
type metricsSeries struct {
	Name     string   `json:"name"`
	Unit     string   `json:"unit"`
	PeriodNs int64    `json:"period_ns"`
	Samples  [][2]any `json:"samples"`
}

type metricsRun struct {
	RunID    uint64          `json:"run_id"`
	Label    string          `json:"label"`
	Series   []metricsSeries `json:"series"`
	Counters []Counter       `json:"counters,omitempty"`
}

// WriteMetricsJSON dumps the same data as WriteMetricsCSV, plus the
// per-run counters, as one JSON document.
func (c *Collector) WriteMetricsJSON(w io.Writer) error {
	var runs []metricsRun
	for _, rec := range c.Runs() {
		mr := metricsRun{RunID: rec.runID, Label: rec.label, Counters: rec.Manifest().Counters}
		for _, s := range rec.series {
			ms := metricsSeries{Name: s.Name, Unit: s.Unit, PeriodNs: int64(s.Period)}
			for i, t := range s.Times {
				ms.Samples = append(ms.Samples, [2]any{int64(t), s.Values[i]})
			}
			mr.Series = append(mr.Series, ms)
		}
		runs = append(runs, mr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(struct {
		Runs []metricsRun `json:"runs"`
	}{runs})
}

// WriteManifests dumps the per-run manifests as indented JSON.
func (c *Collector) WriteManifests(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(c.Manifests())
}
