package compressfn

import "sync"

// ExpectedRatio measures the deflate ratio of one ChunkBytes corpus
// chunk of the input class at PaperLevel — the calibration a pipeline's
// compress phase uses to scale the payload it hands downstream. The
// corpus generation is seeded, so the ratio is a deterministic property
// of the input class; the deflate run is memoized per process.
func ExpectedRatio(in Input) float64 {
	ratioMu.Lock()
	defer ratioMu.Unlock()
	if r, ok := ratioMemo[in]; ok {
		return r
	}
	data := GenCorpus(in, ChunkBytes, ratioSeed)
	comp, err := Compress(data, PaperLevel)
	if err != nil {
		panic(err)
	}
	r := Ratio(data, comp)
	ratioMemo[in] = r
	return r
}

// ratioSeed fixes the calibration chunk; any seed works, but it must
// never vary between calls or the ratio stops being a class property.
const ratioSeed = 0x5eed

var (
	ratioMu   sync.Mutex
	ratioMemo = map[Input]float64{}
)
