package compressfn

import (
	"bytes"
	"testing"
)

func TestRoundTripBothInputs(t *testing.T) {
	for _, in := range PaperInputs() {
		data := GenCorpus(in, 256<<10, 42)
		comp, err := Compress(data, PaperLevel)
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		back, err := Decompress(comp)
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("%s: lossy round trip", in)
		}
	}
}

func TestCompressibilityByClass(t *testing.T) {
	app := GenCorpus(InputApp, 512<<10, 42)
	txt := GenCorpus(InputTxt, 512<<10, 42)
	appC, err := Compress(app, PaperLevel)
	if err != nil {
		t.Fatal(err)
	}
	txtC, err := Compress(txt, PaperLevel)
	if err != nil {
		t.Fatal(err)
	}
	appR, txtR := Ratio(app, appC), Ratio(txt, txtC)
	if appR < 1.5 || appR > 3.0 {
		t.Errorf("app ratio = %.2f, want ~2:1 (binary class)", appR)
	}
	if txtR < 2.5 {
		t.Errorf("txt ratio = %.2f, want >= 2.5 (text class)", txtR)
	}
	if txtR <= appR {
		t.Errorf("text (%.2f) must compress better than binary (%.2f)", txtR, appR)
	}
}

func TestLevelAffectsRatio(t *testing.T) {
	data := GenCorpus(InputTxt, 256<<10, 7)
	l1, err := Compress(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	l9, err := Compress(data, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(l9) > len(l1) {
		t.Fatalf("level 9 (%d) larger than level 1 (%d)", len(l9), len(l1))
	}
}

func TestGenCorpusDeterministicAndSized(t *testing.T) {
	a := GenCorpus(InputApp, 10000, 5)
	b := GenCorpus(InputApp, 10000, 5)
	if !bytes.Equal(a, b) {
		t.Fatal("corpus not deterministic")
	}
	if len(a) != 10000 {
		t.Fatalf("size = %d", len(a))
	}
	c := GenCorpus(InputApp, 10000, 6)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestDecompressGarbageFails(t *testing.T) {
	if _, err := Decompress([]byte{0xff, 0x00, 0xab, 0xcd}); err == nil {
		t.Fatal("garbage inflated without error")
	}
}

func TestCompressBadLevelFails(t *testing.T) {
	if _, err := Compress([]byte("x"), 42); err == nil {
		t.Fatal("invalid level accepted")
	}
}

func TestHostRatesCalibration(t *testing.T) {
	// Accelerator effective ~51 Gb/s over host 14.6 Gb/s ≈ 3.5×
	// (paper: "up to 3.5× maximum throughput" for Compression).
	if r := 51e9 / HostRates(InputApp); r < 3.3 || r > 3.7 {
		t.Errorf("accel/host compression ratio = %.2f, want ~3.5", r)
	}
	if HostRates(InputTxt) >= HostRates(InputApp) {
		t.Error("txt should cost slightly more per byte than app")
	}
}

func TestRatioEdgeCases(t *testing.T) {
	if Ratio([]byte("abc"), nil) != 0 {
		t.Fatal("empty compressed must yield ratio 0")
	}
}

func BenchmarkDeflateLevel9Txt(b *testing.B) {
	data := GenCorpus(InputTxt, ChunkBytes, 42)
	b.SetBytes(ChunkBytes)
	for i := 0; i < b.N; i++ {
		if _, err := Compress(data, PaperLevel); err != nil {
			b.Fatal(err)
		}
	}
}
