// Package compressfn implements the compression benchmark of paper §3.4:
// the Deflate algorithm at level 9 ("to get the best compression ratio")
// over two inputs from a compression corpus — an application binary
// ("app", Application3) and a text file ("txt", Text1). The host path is
// ISA-L-accelerated Deflate; the SNIC path stages buffers to the
// BlueField-2 compression engine via two staging cores.
//
// Compression here is real compress/flate: the corpus generator produces
// inputs whose compressibility matches the two file classes, and tests
// verify ratios and lossless round trips.
package compressfn

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"

	"repro/internal/sim"
)

// Input names the two corpus files of Table 3.
type Input string

const (
	// InputApp resembles Application3: machine code and mixed binary
	// structure; moderate compressibility (~2:1).
	InputApp Input = "app"
	// InputTxt resembles Text1: natural-language text; ~3:1 at level 9.
	InputTxt Input = "txt"
)

// PaperInputs lists the Table 3 configurations.
func PaperInputs() []Input { return []Input{InputApp, InputTxt} }

// PaperLevel is the paper's Deflate setting.
const PaperLevel = 9

// GenCorpus deterministically generates size bytes resembling the named
// input class.
func GenCorpus(in Input, size int, seed uint64) []byte {
	r := sim.NewRNG(seed ^ uint64(len(in)))
	switch in {
	case InputApp:
		return genBinary(r, size)
	case InputTxt:
		return genText(r, size)
	default:
		panic(fmt.Sprintf("compressfn: unknown input %q", in))
	}
}

// genBinary emits opcode-like byte runs: a skewed byte histogram with
// repeated short sequences (function prologues, padding) and incompressible
// stretches (embedded data).
func genBinary(r *sim.RNG, size int) []byte {
	out := make([]byte, 0, size)
	idioms := make([][]byte, 24)
	for i := range idioms {
		seq := make([]byte, 3+r.Intn(10))
		for j := range seq {
			seq[j] = byte(r.Uint64())
		}
		idioms[i] = seq
	}
	for len(out) < size {
		switch r.Intn(10) {
		case 0, 1, 2, 3: // common idiom repeated
			out = append(out, idioms[r.Intn(len(idioms))]...)
		case 4, 5: // zero padding
			n := 4 + r.Intn(28)
			out = append(out, make([]byte, n)...)
		case 6, 7, 8: // skewed "opcodes"
			for i := 0; i < 8; i++ {
				out = append(out, byte(r.Intn(64)))
			}
		default: // incompressible embedded data
			n := 8 + r.Intn(40)
			for i := 0; i < n; i++ {
				out = append(out, byte(r.Uint64()))
			}
		}
	}
	return out[:size]
}

var textWords = []string{
	"the", "of", "and", "a", "to", "in", "is", "was", "he", "for",
	"it", "with", "as", "his", "on", "be", "at", "by", "i", "this",
	"had", "not", "are", "but", "from", "or", "have", "an", "they",
	"which", "one", "you", "were", "her", "all", "she", "there",
	"would", "their", "we", "him", "been", "has", "when", "who",
	"will", "more", "no", "if", "out", "system", "network", "packet",
	"server", "measurement", "throughput", "latency", "energy",
}

// genText emits word-frequency-realistic English-like text.
func genText(r *sim.RNG, size int) []byte {
	z := sim.NewZipf(r.Fork(3), uint64(len(textWords)), 1.0)
	var buf bytes.Buffer
	buf.Grow(size + 16)
	col := 0
	for buf.Len() < size {
		w := textWords[z.Next()]
		buf.WriteString(w)
		col += len(w) + 1
		if col > 70 {
			buf.WriteByte('\n')
			col = 0
		} else {
			buf.WriteByte(' ')
		}
	}
	return buf.Bytes()[:size]
}

// Compress deflates data at the given level.
func Compress(data []byte, level int) ([]byte, error) {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, level)
	if err != nil {
		return nil, fmt.Errorf("compressfn: %w", err)
	}
	if _, err := w.Write(data); err != nil {
		return nil, fmt.Errorf("compressfn: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("compressfn: %w", err)
	}
	return buf.Bytes(), nil
}

// Decompress inflates a Compress output.
func Decompress(data []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(data))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("compressfn: %w", err)
	}
	return out, nil
}

// Ratio returns original/compressed size.
func Ratio(original, compressed []byte) float64 {
	if len(compressed) == 0 {
		return 0
	}
	return float64(len(original)) / float64(len(compressed))
}

// HostRates quotes the calibrated host Deflate throughput with ISA-L
// (paper: the accelerator achieves up to 3.5× the host, and the engine
// caps near 50 Gb/s → host ISA-L level-9 ≈ 14.6 Gb/s). The txt input
// compresses further but costs slightly more per byte.
func HostRates(in Input) float64 {
	switch in {
	case InputApp:
		return 14.6e9
	case InputTxt:
		return 13.2e9
	default:
		panic(fmt.Sprintf("compressfn: unknown input %q", in))
	}
}

// ChunkBytes is the staging buffer size used when feeding files to the
// engine (dpdk-test-compress-perf style).
const ChunkBytes = 64 << 10
