package cryptofn

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAESRoundTrip(t *testing.T) {
	c := NewAESCipher("seed1")
	msg := []byte("the quick brown fox")
	ct := c.Encrypt(msg)
	if bytes.Equal(ct, msg) {
		t.Fatal("ciphertext equals plaintext")
	}
	if got := c.Decrypt(ct); !bytes.Equal(got, msg) {
		t.Fatalf("round trip = %q", got)
	}
}

func TestAESDeterministicPerSeed(t *testing.T) {
	a := NewAESCipher("s").Encrypt([]byte("data"))
	b := NewAESCipher("s").Encrypt([]byte("data"))
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different ciphertexts")
	}
	c := NewAESCipher("other").Encrypt([]byte("data"))
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical ciphertexts")
	}
}

func TestAESRoundTripProperty(t *testing.T) {
	c := NewAESCipher("prop")
	f := func(msg []byte) bool {
		return bytes.Equal(c.Decrypt(c.Encrypt(msg)), msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSHA1KnownVector(t *testing.T) {
	// FIPS 180 test vector: SHA1("abc").
	got := SHA1Sum([]byte("abc"))
	want := [20]byte{
		0xa9, 0x99, 0x3e, 0x36, 0x47, 0x06, 0x81, 0x6a, 0xba, 0x3e,
		0x25, 0x71, 0x78, 0x50, 0xc2, 0x6c, 0x9c, 0xd0, 0xd8, 0x9d,
	}
	if got != want {
		t.Fatalf("SHA1(abc) = %x", got)
	}
}

func TestRSASignVerify(t *testing.T) {
	msg := []byte("sign me")
	sig, err := RSASign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) != 256 {
		t.Fatalf("RSA-2048 signature length = %d, want 256", len(sig))
	}
	if err := RSAVerify(msg, sig); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if err := RSAVerify([]byte("tampered"), sig); err == nil {
		t.Fatal("verify accepted tampered message")
	}
}

func TestCalibratedHostRatesMatchPaperRatios(t *testing.T) {
	// Fig. 4 discussion: host beats engine by 38.5% (AES) and 91.2%
	// (RSA); engine beats host by 1/0.528 = 1.894x on SHA-1.
	hr := CalibratedHostRates()
	const engineAES, engineSHA, engineRSA = 34e9, 25e9, 21_000
	if r := hr.AESBits / engineAES; r < 1.38 || r > 1.39 {
		t.Errorf("AES host/engine = %v, want 1.385", r)
	}
	if r := hr.RSAOps / engineRSA; r < 1.91 || r > 1.92 {
		t.Errorf("RSA host/engine = %v, want 1.912", r)
	}
	if r := engineSHA / hr.SHABits; r < 1.88 || r > 1.90 {
		t.Errorf("SHA engine/host = %v, want ~1.894", r)
	}
}

func TestPaperAlgos(t *testing.T) {
	algos := PaperAlgos()
	if len(algos) != 3 {
		t.Fatal("paper evaluates AES, RSA, SHA-1")
	}
}

func BenchmarkAESEncrypt1KB(b *testing.B) {
	c := NewAESCipher("bench")
	buf := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		c.Encrypt(buf)
	}
}

func BenchmarkSHA1_1KB(b *testing.B) {
	buf := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		SHA1Sum(buf)
	}
}
