// Package cryptofn implements the cryptography benchmark of paper §3.4:
// the AES, RSA and SHA-1 algorithms OpenSSL-style applications use, run
// locally on the server (no client packets). The host path leverages ISA
// extensions (AES-NI, RDRAND-assisted paths); the SNIC path submits
// commands to the BlueField-2 PKA accelerator.
//
// The implementations are the real stdlib algorithms — outputs are
// verified in tests — while experiment timing comes from the calibrated
// platform cost models.
package cryptofn

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha1"
	"crypto/sha256"
	"fmt"
	"sync"
)

// Algo names the paper's three algorithms.
type Algo string

const (
	AES Algo = "aes-256-ctr"
	RSA Algo = "rsa-2048"
	SHA Algo = "sha-1"
)

// PaperAlgos lists the Table 3 configuration set.
func PaperAlgos() []Algo { return []Algo{AES, RSA, SHA} }

// AESCipher is a reusable AES-256-CTR encryptor.
type AESCipher struct {
	block cipher.Block
	iv    [aes.BlockSize]byte
}

// NewAESCipher derives a cipher from a seed string (deterministic keys
// keep simulations reproducible; this is a benchmark, not a KMS).
func NewAESCipher(seed string) *AESCipher {
	key := sha256.Sum256([]byte("key:" + seed))
	block, err := aes.NewCipher(key[:])
	if err != nil {
		panic(fmt.Sprintf("cryptofn: %v", err)) // 32-byte key cannot fail
	}
	c := &AESCipher{block: block}
	ivh := sha256.Sum256([]byte("iv:" + seed))
	copy(c.iv[:], ivh[:aes.BlockSize])
	return c
}

// Encrypt returns the CTR keystream XOR of src.
func (c *AESCipher) Encrypt(src []byte) []byte {
	dst := make([]byte, len(src))
	cipher.NewCTR(c.block, c.iv[:]).XORKeyStream(dst, src)
	return dst
}

// Decrypt inverts Encrypt (CTR is symmetric).
func (c *AESCipher) Decrypt(src []byte) []byte { return c.Encrypt(src) }

// SHA1Sum returns the SHA-1 digest of data.
func SHA1Sum(data []byte) [20]byte { return sha1.Sum(data) }

// rsaKey is generated once per process: 2048-bit keygen is expensive and
// irrelevant to the benchmark, which measures sign/verify throughput.
var (
	rsaOnce sync.Once
	rsaPriv *rsa.PrivateKey
)

func rsaKeyPair() *rsa.PrivateKey {
	rsaOnce.Do(func() {
		k, err := rsa.GenerateKey(rand.Reader, 2048)
		if err != nil {
			panic(fmt.Sprintf("cryptofn: RSA keygen: %v", err))
		}
		rsaPriv = k
	})
	return rsaPriv
}

// RSASign performs one RSA-2048 private-key operation (PKCS#1 v1.5 over a
// SHA-256 digest) — the op the PKA engine rate and the host rate are
// quoted in.
func RSASign(msg []byte) ([]byte, error) {
	digest := sha256.Sum256(msg)
	return signPKCS1v15(rsaKeyPair(), digest)
}

// RSAVerify checks a signature from RSASign.
func RSAVerify(msg, sig []byte) error {
	digest := sha256.Sum256(msg)
	return verifyPKCS1v15(&rsaKeyPair().PublicKey, digest, sig)
}

// HostRates quotes the calibrated host-CPU rates for each algorithm when
// its ISA extensions are available (paper Fig. 4 discussion):
//
//	AES:  engine × 1.385  (host 38.5% higher)   → ~47.1 Gb/s
//	RSA:  engine × 1.912  (host 91.2% higher)   → ~40.2 kops/s
//	SHA1: engine × 0.528  (host 47.2% lower)    → ~13.2 Gb/s
//
// Bulk rates are bits/s; RSA is ops/s.
type HostRates struct {
	AESBits float64
	SHABits float64
	RSAOps  float64
}

// CalibratedHostRates returns the Fig. 4 anchors, derived from the PKA
// engine rates in package accel (34 Gb/s AES, 25 Gb/s SHA-1, 21 kops/s
// RSA).
func CalibratedHostRates() HostRates {
	return HostRates{
		AESBits: 34e9 * 1.385,
		RSAOps:  21_000 * 1.912,
		SHABits: 25e9 * 0.528,
	}
}
