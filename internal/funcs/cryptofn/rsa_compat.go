package cryptofn

import (
	"crypto"
	"crypto/rand"
	"crypto/rsa"
)

// Thin wrappers isolating the stdlib RSA call shapes; kept in one place
// so the main file reads as the benchmark surface.

func signPKCS1v15(k *rsa.PrivateKey, digest [32]byte) ([]byte, error) {
	return rsa.SignPKCS1v15(rand.Reader, k, crypto.SHA256, digest[:])
}

func verifyPKCS1v15(pub *rsa.PublicKey, digest [32]byte, sig []byte) error {
	return rsa.VerifyPKCS1v15(pub, crypto.SHA256, digest[:], sig)
}
