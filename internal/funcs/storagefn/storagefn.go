// Package storagefn implements the fio benchmark substrate of paper
// §3.4: remote storage access over NVMe-oF. The storage server runs a
// RAMDisk emulating a fast 16 GB block device; the compute server (host
// CPU or SNIC CPU) issues 64 KB block I/O at iodepth 4 through the
// NVMe-oF offloading engine in the (S)NIC.
package storagefn

import (
	"fmt"

	"repro/internal/sim"
)

// Paper configuration constants.
const (
	// BlockBytes is the fio request size.
	BlockBytes = 64 << 10
	// IODepth is the fio queue depth.
	IODepth = 4
	// RAMDiskBytes is the emulated device size.
	RAMDiskBytes = 16 << 30
)

// OpKind is the fio operation (Table 3: Read, Write).
type OpKind int

const (
	// RandRead is fio randread.
	RandRead OpKind = iota
	// RandWrite is fio randwrite.
	RandWrite
)

func (o OpKind) String() string {
	if o == RandWrite {
		return "randwrite"
	}
	return "randread"
}

// RAMDisk is a sparse in-memory block device: blocks materialize on
// first write, reads of untouched blocks return zeros (exactly how a
// fresh RAMDisk behaves). Sparseness keeps a 16 GB device testable.
type RAMDisk struct {
	sizeBytes int64
	blockSize int
	blocks    map[int64][]byte

	reads, writes uint64
}

// NewRAMDisk returns a device of sizeBytes with the given block size.
func NewRAMDisk(sizeBytes int64, blockSize int) *RAMDisk {
	if sizeBytes <= 0 || blockSize <= 0 || sizeBytes%int64(blockSize) != 0 {
		panic("storagefn: size must be a positive multiple of block size")
	}
	return &RAMDisk{
		sizeBytes: sizeBytes,
		blockSize: blockSize,
		blocks:    make(map[int64][]byte),
	}
}

// PaperRAMDisk returns the 16 GB / 64 KB-block device of §3.4.
func PaperRAMDisk() *RAMDisk { return NewRAMDisk(RAMDiskBytes, BlockBytes) }

// NumBlocks returns the device's block count.
func (d *RAMDisk) NumBlocks() int64 { return d.sizeBytes / int64(d.blockSize) }

// BlockSize returns the device block size.
func (d *RAMDisk) BlockSize() int { return d.blockSize }

func (d *RAMDisk) checkBlock(idx int64) error {
	if idx < 0 || idx >= d.NumBlocks() {
		return fmt.Errorf("storagefn: block %d out of range [0,%d)", idx, d.NumBlocks())
	}
	return nil
}

// ReadBlock copies block idx into dst (len >= BlockSize).
func (d *RAMDisk) ReadBlock(idx int64, dst []byte) error {
	if err := d.checkBlock(idx); err != nil {
		return err
	}
	if len(dst) < d.blockSize {
		return fmt.Errorf("storagefn: read buffer %d < block size %d", len(dst), d.blockSize)
	}
	d.reads++
	if b, ok := d.blocks[idx]; ok {
		copy(dst, b)
		return nil
	}
	for i := 0; i < d.blockSize; i++ {
		dst[i] = 0
	}
	return nil
}

// WriteBlock stores src (len >= BlockSize) as block idx.
func (d *RAMDisk) WriteBlock(idx int64, src []byte) error {
	if err := d.checkBlock(idx); err != nil {
		return err
	}
	if len(src) < d.blockSize {
		return fmt.Errorf("storagefn: write buffer %d < block size %d", len(src), d.blockSize)
	}
	d.writes++
	b, ok := d.blocks[idx]
	if !ok {
		b = make([]byte, d.blockSize)
		d.blocks[idx] = b
	}
	copy(b, src)
	return nil
}

// Reads and Writes expose counters.
func (d *RAMDisk) Reads() uint64  { return d.reads }
func (d *RAMDisk) Writes() uint64 { return d.writes }

// MaterializedBytes reports resident memory (written blocks only).
func (d *RAMDisk) MaterializedBytes() int64 {
	return int64(len(d.blocks)) * int64(d.blockSize)
}

// Target is the NVMe-oF target: the RAMDisk behind an NVMe-oF offload
// engine. With the offload engine (present in both ConnectX-6 and
// BlueField-2, and used in the paper's runs) the data path bypasses the
// storage server's CPU entirely; only device service time and fabric
// latency remain.
type Target struct {
	Disk *RAMDisk
	// DeviceLatency is the RAMDisk service time per block op.
	DeviceLatency sim.Duration
	// OffloadEngine marks the NVMe-oF data path as NIC-resident.
	OffloadEngine bool
}

// NewTarget returns the paper's storage server.
func NewTarget() *Target {
	return &Target{
		Disk:          PaperRAMDisk(),
		DeviceLatency: 9 * sim.Microsecond, // DRAM-backed block service
		OffloadEngine: true,
	}
}

// JobSpec is a fio job description.
type JobSpec struct {
	Op      OpKind
	Blocks  int64 // number of I/Os to issue
	IODepth int
	Seed    uint64
}

// PaperJob returns the §3.4 fio job for the given op.
func PaperJob(op OpKind) JobSpec {
	return JobSpec{Op: op, Blocks: 4096, IODepth: IODepth, Seed: 0xf10}
}

// NextOffsets precomputes the random block offsets a job touches.
func (j JobSpec) NextOffsets(numBlocks int64) []int64 {
	r := sim.NewRNG(j.Seed)
	out := make([]int64, j.Blocks)
	for i := range out {
		out[i] = int64(r.Uint64n(uint64(numBlocks)))
	}
	return out
}
