package storagefn

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRAMDiskReadWrite(t *testing.T) {
	d := NewRAMDisk(1<<20, 4096)
	src := bytes.Repeat([]byte{0xAB}, 4096)
	if err := d.WriteBlock(5, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 4096)
	if err := d.ReadBlock(5, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatal("read returned different data")
	}
}

func TestRAMDiskFreshBlocksZero(t *testing.T) {
	d := NewRAMDisk(1<<20, 4096)
	dst := bytes.Repeat([]byte{0xFF}, 4096)
	if err := d.ReadBlock(0, dst); err != nil {
		t.Fatal(err)
	}
	for _, b := range dst {
		if b != 0 {
			t.Fatal("unwritten block not zero")
		}
	}
}

func TestRAMDiskSparse(t *testing.T) {
	d := PaperRAMDisk()
	if d.NumBlocks() != (16<<30)/(64<<10) {
		t.Fatalf("blocks = %d", d.NumBlocks())
	}
	buf := make([]byte, BlockBytes)
	if err := d.WriteBlock(d.NumBlocks()-1, buf); err != nil {
		t.Fatal(err)
	}
	// One 64 KB block materialized from a 16 GB device.
	if d.MaterializedBytes() != BlockBytes {
		t.Fatalf("materialized = %d", d.MaterializedBytes())
	}
}

func TestRAMDiskBounds(t *testing.T) {
	d := NewRAMDisk(1<<20, 4096)
	buf := make([]byte, 4096)
	if err := d.ReadBlock(-1, buf); err == nil {
		t.Fatal("negative block accepted")
	}
	if err := d.WriteBlock(d.NumBlocks(), buf); err == nil {
		t.Fatal("out-of-range block accepted")
	}
	if err := d.ReadBlock(0, buf[:10]); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestRAMDiskCopiesOnWrite(t *testing.T) {
	d := NewRAMDisk(1<<20, 4096)
	src := make([]byte, 4096)
	src[0] = 1
	d.WriteBlock(0, src)
	src[0] = 99
	dst := make([]byte, 4096)
	d.ReadBlock(0, dst)
	if dst[0] != 1 {
		t.Fatal("device aliased caller buffer")
	}
}

func TestRAMDiskCounters(t *testing.T) {
	d := NewRAMDisk(1<<20, 4096)
	buf := make([]byte, 4096)
	d.WriteBlock(0, buf)
	d.ReadBlock(0, buf)
	d.ReadBlock(1, buf)
	if d.Writes() != 1 || d.Reads() != 2 {
		t.Fatalf("reads=%d writes=%d", d.Reads(), d.Writes())
	}
}

func TestRAMDiskBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-multiple size did not panic")
		}
	}()
	NewRAMDisk(1000, 4096)
}

// Property: write-then-read is identity for any block content.
func TestWriteReadIdentityProperty(t *testing.T) {
	d := NewRAMDisk(1<<20, 256)
	f := func(idx uint8, content [256]byte) bool {
		block := int64(idx) % d.NumBlocks()
		if err := d.WriteBlock(block, content[:]); err != nil {
			return false
		}
		out := make([]byte, 256)
		if err := d.ReadBlock(block, out); err != nil {
			return false
		}
		return bytes.Equal(out, content[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTargetConfigMatchesPaper(t *testing.T) {
	tgt := NewTarget()
	if !tgt.OffloadEngine {
		t.Fatal("paper uses the NVMe-oF offloading engine")
	}
	if tgt.Disk.BlockSize() != 64<<10 {
		t.Fatal("fio block size must be 64 KB")
	}
}

func TestJobOffsetsInRangeAndDeterministic(t *testing.T) {
	j := PaperJob(RandRead)
	if j.IODepth != 4 {
		t.Fatal("iodepth must be 4")
	}
	d := PaperRAMDisk()
	a := j.NextOffsets(d.NumBlocks())
	b := j.NextOffsets(d.NumBlocks())
	if len(a) != int(j.Blocks) {
		t.Fatalf("offsets = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("offsets not deterministic")
		}
		if a[i] < 0 || a[i] >= d.NumBlocks() {
			t.Fatalf("offset %d out of range", a[i])
		}
	}
}

func TestOpKindString(t *testing.T) {
	if RandRead.String() != "randread" || RandWrite.String() != "randwrite" {
		t.Fatal("op names wrong")
	}
}
