// Package ids implements the Snort-like intrusion detection benchmark of
// paper §3.4 and the REM (regular-expression matching) function of §2.2
// as real, executable engines: compiled rule sets, per-packet inspection
// with verdicts, and alert accounting. The Snort engine is the
// full-featured detector (decode → inspect → log); the REM engine is the
// bare matching function the RXP accelerator implements in hardware.
package ids

import (
	"fmt"

	"repro/internal/funcs/match"
	"repro/internal/trace"
)

// Verdict is the per-packet decision.
type Verdict int

const (
	// Pass lets the packet through.
	Pass Verdict = iota
	// Alert flags the packet (detection mode).
	Alert
	// Drop discards it (prevention mode).
	Drop
)

func (v Verdict) String() string {
	switch v {
	case Alert:
		return "alert"
	case Drop:
		return "drop"
	default:
		return "pass"
	}
}

// Mode selects detection (alert and pass) or prevention (drop).
type Mode int

const (
	// Detection logs matches and forwards packets (Snort's IDS mode).
	Detection Mode = iota
	// Prevention drops matching packets (IPS mode; what the REM
	// deployment of §2.2 does: "drops the packets containing matching
	// patterns").
	Prevention
)

// AlertRecord is one logged detection.
type AlertRecord struct {
	PacketSeq uint64
	RuleIndex int
	Offset    int
}

// Engine is a compiled inspection engine over one rule set.
type Engine struct {
	Name    string
	RuleSet *trace.RuleSet
	Mode    Mode

	matcher *match.Matcher

	inspected uint64
	alerts    uint64
	dropped   uint64
	log       []AlertRecord
	// LogCap bounds the alert log (Snort rotates logs; unbounded growth
	// in a long simulation would be a leak, not a feature).
	LogCap int
}

// NewEngine compiles the rule set into an engine.
func NewEngine(name string, rs *trace.RuleSet, mode Mode) (*Engine, error) {
	if rs == nil || len(rs.Patterns) == 0 {
		return nil, fmt.Errorf("ids: empty rule set")
	}
	m, err := match.NewMatcher(rs.Patterns)
	if err != nil {
		return nil, fmt.Errorf("ids: compiling %s: %w", name, err)
	}
	return &Engine{Name: name, RuleSet: rs, Mode: mode, matcher: m, LogCap: 65536}, nil
}

// NewPaperEngine compiles one of the paper's three rule sets.
func NewPaperEngine(set trace.RuleSetName, mode Mode, seed uint64) (*Engine, error) {
	return NewEngine(string(set), trace.GenRuleSet(set, seed), mode)
}

// Inspect scans one packet payload and returns the verdict. Detection
// mode records an alert per matching packet (first match wins, like
// Snort's default fast-pattern behaviour).
func (e *Engine) Inspect(seq uint64, payload []byte) Verdict {
	e.inspected++
	matches := e.matcher.Scan(payload)
	if len(matches) == 0 {
		return Pass
	}
	first := matches[0]
	e.alerts++
	if len(e.log) < e.LogCap {
		e.log = append(e.log, AlertRecord{PacketSeq: seq, RuleIndex: first.Pattern, Offset: first.End})
	}
	if e.Mode == Prevention {
		e.dropped++
		return Drop
	}
	return Alert
}

// InspectFast is the REM accelerator's semantic: match/no-match only, no
// alert bookkeeping beyond counters.
func (e *Engine) InspectFast(payload []byte) bool {
	e.inspected++
	if e.matcher.Contains(payload) {
		e.alerts++
		return true
	}
	return false
}

// Inspected, Alerts and Dropped expose counters.
func (e *Engine) Inspected() uint64 { return e.inspected }
func (e *Engine) Alerts() uint64    { return e.alerts }
func (e *Engine) Dropped() uint64   { return e.dropped }

// AlertRate returns alerts per inspected packet.
func (e *Engine) AlertRate() float64 {
	if e.inspected == 0 {
		return 0
	}
	return float64(e.alerts) / float64(e.inspected)
}

// Log returns the recorded alerts.
func (e *Engine) Log() []AlertRecord { return e.log }

// States exposes the compiled automaton size (rule-set table pressure).
func (e *Engine) States() int { return e.matcher.States() }

func (e *Engine) String() string {
	return fmt.Sprintf("ids(%s, %d rules, %d states, %s)",
		e.Name, len(e.RuleSet.Patterns), e.States(), modeName(e.Mode))
}

func modeName(m Mode) string {
	if m == Prevention {
		return "prevention"
	}
	return "detection"
}
