package ids

import (
	"testing"

	"repro/internal/trace"
)

func TestDetectionVsPrevention(t *testing.T) {
	rs := &trace.RuleSet{Name: "t", Patterns: []string{"evil"}, MatchDensity: 1}
	det, err := NewEngine("det", rs, Detection)
	if err != nil {
		t.Fatal(err)
	}
	prev, _ := NewEngine("prev", rs, Prevention)

	if v := det.Inspect(1, []byte("an evil payload")); v != Alert {
		t.Fatalf("detection verdict = %v, want alert", v)
	}
	if v := prev.Inspect(1, []byte("an evil payload")); v != Drop {
		t.Fatalf("prevention verdict = %v, want drop", v)
	}
	if v := det.Inspect(2, []byte("benign")); v != Pass {
		t.Fatalf("clean packet verdict = %v, want pass", v)
	}
	if det.Alerts() != 1 || det.Dropped() != 0 {
		t.Fatalf("detection counters: alerts=%d dropped=%d", det.Alerts(), det.Dropped())
	}
	if prev.Dropped() != 1 {
		t.Fatalf("prevention dropped = %d", prev.Dropped())
	}
}

func TestAlertLogRecordsRuleAndOffset(t *testing.T) {
	rs := &trace.RuleSet{Name: "t", Patterns: []string{"aaa", "bbb"}}
	e, _ := NewEngine("e", rs, Detection)
	e.Inspect(7, []byte("xx bbb yy"))
	log := e.Log()
	if len(log) != 1 {
		t.Fatalf("log has %d entries", len(log))
	}
	if log[0].PacketSeq != 7 || log[0].RuleIndex != 1 {
		t.Fatalf("log entry = %+v", log[0])
	}
	if log[0].Offset != 6 { // "xx bbb" ends at byte 6
		t.Fatalf("offset = %d, want 6", log[0].Offset)
	}
}

func TestLogCapBoundsMemory(t *testing.T) {
	rs := &trace.RuleSet{Name: "t", Patterns: []string{"x"}}
	e, _ := NewEngine("e", rs, Detection)
	e.LogCap = 10
	for i := uint64(0); i < 100; i++ {
		e.Inspect(i, []byte("x"))
	}
	if len(e.Log()) != 10 {
		t.Fatalf("log grew to %d past cap", len(e.Log()))
	}
	if e.Alerts() != 100 {
		t.Fatalf("alerts = %d; counters must keep counting past the cap", e.Alerts())
	}
}

func TestPaperEnginesMatchGroundTruth(t *testing.T) {
	// End-to-end over all three paper rule sets: engine verdicts must
	// agree exactly with the payload generator's ground truth, and the
	// observed alert rate must track each set's match density.
	for _, set := range trace.RuleSetNames() {
		e, err := NewPaperEngine(set, Prevention, 42)
		if err != nil {
			t.Fatal(err)
		}
		pg := trace.NewPayloadGen(e.RuleSet, 9)
		const n = 5000
		for i := 0; i < n; i++ {
			payload, truth := pg.Next(1500)
			got := e.Inspect(uint64(i), payload) == Drop
			if got != truth {
				t.Fatalf("%s: verdict %v != ground truth %v at packet %d", set, got, truth, i)
			}
		}
		rate := e.AlertRate()
		want := e.RuleSet.MatchDensity
		if rate < want-0.02 || rate > want+0.02 {
			t.Errorf("%s alert rate = %.3f, want ~%.3f", set, rate, want)
		}
	}
}

func TestInspectFastAgreesWithInspect(t *testing.T) {
	a, _ := NewPaperEngine(trace.RuleSetFlash, Detection, 42)
	b, _ := NewPaperEngine(trace.RuleSetFlash, Detection, 42)
	pg := trace.NewPayloadGen(a.RuleSet, 3)
	for i := 0; i < 2000; i++ {
		payload, _ := pg.Next(512)
		slow := a.Inspect(uint64(i), payload) != Pass
		fast := b.InspectFast(payload)
		if slow != fast {
			t.Fatal("InspectFast disagrees with Inspect")
		}
	}
}

func TestRuleSetTablePressureOrdering(t *testing.T) {
	// file_image compiles to the biggest automaton — the table pressure
	// behind its poor host-side scan economics.
	img, _ := NewPaperEngine(trace.RuleSetImage, Detection, 42)
	fla, _ := NewPaperEngine(trace.RuleSetFlash, Detection, 42)
	if img.States() <= fla.States() {
		t.Fatalf("file_image states %d should exceed file_flash %d", img.States(), fla.States())
	}
}

func TestEmptyRuleSetRejected(t *testing.T) {
	if _, err := NewEngine("x", &trace.RuleSet{}, Detection); err == nil {
		t.Fatal("empty rule set accepted")
	}
	if _, err := NewEngine("x", nil, Detection); err == nil {
		t.Fatal("nil rule set accepted")
	}
}

func TestVerdictStrings(t *testing.T) {
	if Pass.String() != "pass" || Alert.String() != "alert" || Drop.String() != "drop" {
		t.Fatal("verdict names wrong")
	}
}

func BenchmarkInspectMTU(b *testing.B) {
	e, _ := NewPaperEngine(trace.RuleSetExecutable, Prevention, 42)
	pg := trace.NewPayloadGen(e.RuleSet, 7)
	payload, _ := pg.Next(1500)
	b.SetBytes(1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.InspectFast(payload)
	}
}
