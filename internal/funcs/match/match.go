// Package match implements multi-pattern string matching with an
// Aho–Corasick automaton. It is the functional core shared by the
// Snort-like intrusion detection benchmark and the REM (regular
// expression matching) benchmark: the same compiled rule set the paper
// programs into Hyperscan on the host and into the RXP engine on the
// BlueField-2.
//
// The implementation is a complete goto/fail automaton with byte-level
// transitions, built once per rule set and safe for concurrent readers.
package match

import "fmt"

// Match reports one pattern occurrence.
type Match struct {
	// Pattern is the index into the compiled pattern list.
	Pattern int
	// End is the byte offset one past the occurrence's last byte.
	End int
}

type node struct {
	next map[byte]int32 // goto function
	fail int32
	// out lists pattern indices ending at this node (including via
	// suffix links, pre-flattened at build time).
	out []int32
}

// Matcher is a compiled pattern set.
type Matcher struct {
	nodes    []node
	patterns []string
}

// NewMatcher compiles the patterns. Empty pattern lists and empty
// patterns are rejected: an empty pattern would match everywhere and
// always indicates caller confusion.
func NewMatcher(patterns []string) (*Matcher, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("match: empty pattern list")
	}
	m := &Matcher{
		nodes:    []node{{next: make(map[byte]int32)}},
		patterns: make([]string, len(patterns)),
	}
	copy(m.patterns, patterns)
	for i, p := range patterns {
		if p == "" {
			return nil, fmt.Errorf("match: pattern %d is empty", i)
		}
		m.insert(p, int32(i))
	}
	m.buildFailLinks()
	return m, nil
}

// MustMatcher is NewMatcher that panics on error, for compiled-in sets.
func MustMatcher(patterns []string) *Matcher {
	m, err := NewMatcher(patterns)
	if err != nil {
		panic(err)
	}
	return m
}

func (m *Matcher) insert(p string, id int32) {
	cur := int32(0)
	for i := 0; i < len(p); i++ {
		c := p[i]
		nxt, ok := m.nodes[cur].next[c]
		if !ok {
			nxt = int32(len(m.nodes))
			m.nodes = append(m.nodes, node{next: make(map[byte]int32)})
			m.nodes[cur].next[c] = nxt
		}
		cur = nxt
	}
	m.nodes[cur].out = append(m.nodes[cur].out, id)
}

// buildFailLinks runs the standard BFS, flattening output links so the
// scan loop never chases suffix chains.
func (m *Matcher) buildFailLinks() {
	// Walk goto edges in byte order, not map order: the automaton the
	// BFS produces is the same either way, but a deterministic build
	// order keeps node visit order — and therefore any instrumentation
	// or debug output — reproducible run to run.
	queue := make([]int32, 0, len(m.nodes))
	for c := 0; c < 256; c++ {
		if v, ok := m.nodes[0].next[byte(c)]; ok {
			m.nodes[v].fail = 0
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for ci := 0; ci < 256; ci++ {
			c := byte(ci)
			v, ok := m.nodes[u].next[c]
			if !ok {
				continue
			}
			queue = append(queue, v)
			f := m.nodes[u].fail
			for f != 0 {
				if nxt, ok := m.nodes[f].next[c]; ok {
					f = nxt
					goto linked
				}
				f = m.nodes[f].fail
			}
			if nxt, ok := m.nodes[0].next[c]; ok && nxt != v {
				f = nxt
			} else {
				f = 0
			}
		linked:
			m.nodes[v].fail = f
			m.nodes[v].out = append(m.nodes[v].out, m.nodes[f].out...)
		}
	}
}

// step advances the automaton from state s on byte c.
func (m *Matcher) step(s int32, c byte) int32 {
	for {
		if nxt, ok := m.nodes[s].next[c]; ok {
			return nxt
		}
		if s == 0 {
			return 0
		}
		s = m.nodes[s].fail
	}
}

// Scan returns every pattern occurrence in data, in end-offset order.
func (m *Matcher) Scan(data []byte) []Match {
	var out []Match
	s := int32(0)
	for i := 0; i < len(data); i++ {
		s = m.step(s, data[i])
		for _, id := range m.nodes[s].out {
			out = append(out, Match{Pattern: int(id), End: i + 1})
		}
	}
	return out
}

// Contains reports whether any pattern occurs in data, bailing at the
// first hit — the IDS/REM drop decision needs only this.
func (m *Matcher) Contains(data []byte) bool {
	s := int32(0)
	for i := 0; i < len(data); i++ {
		s = m.step(s, data[i])
		if len(m.nodes[s].out) > 0 {
			return true
		}
	}
	return false
}

// NumPatterns returns the compiled pattern count.
func (m *Matcher) NumPatterns() int { return len(m.patterns) }

// Pattern returns the i-th compiled pattern.
func (m *Matcher) Pattern(i int) string { return m.patterns[i] }

// States returns the automaton's state count, a proxy for the rule set's
// table pressure (what makes file_image expensive to scan on a CPU).
func (m *Matcher) States() int { return len(m.nodes) }
