package match

import (
	"bytes"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/trace"
)

func TestBasicMatches(t *testing.T) {
	m := MustMatcher([]string{"he", "she", "his", "hers"})
	got := m.Scan([]byte("ushers"))
	// "ushers": she@4, he@4, hers@6.
	want := []Match{{Pattern: 1, End: 4}, {Pattern: 0, End: 4}, {Pattern: 3, End: 6}}
	if len(got) != len(want) {
		t.Fatalf("matches = %v, want %v", got, want)
	}
	sortMatches(got)
	sortMatches(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("matches = %v, want %v", got, want)
		}
	}
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].End != ms[j].End {
			return ms[i].End < ms[j].End
		}
		return ms[i].Pattern < ms[j].Pattern
	})
}

func TestNoMatch(t *testing.T) {
	m := MustMatcher([]string{"abc", "def"})
	if m.Contains([]byte("xyzuvw")) {
		t.Fatal("false positive")
	}
	if got := m.Scan([]byte("xyzuvw")); len(got) != 0 {
		t.Fatalf("scan returned %v on clean input", got)
	}
}

func TestOverlappingPatterns(t *testing.T) {
	m := MustMatcher([]string{"aa", "aaa"})
	got := m.Scan([]byte("aaaa"))
	// aa@2, aa@3+aaa@3, aa@4+aaa@4 => 5 matches.
	if len(got) != 5 {
		t.Fatalf("overlap scan found %d matches, want 5: %v", len(got), got)
	}
}

func TestPatternAtBoundaries(t *testing.T) {
	m := MustMatcher([]string{"start", "end"})
	data := []byte("start middle end")
	got := m.Scan(data)
	if len(got) != 2 {
		t.Fatalf("boundary matches = %v", got)
	}
	if got[0].End != 5 || got[1].End != len(data) {
		t.Fatalf("boundary offsets wrong: %v", got)
	}
}

func TestContainsShortCircuit(t *testing.T) {
	m := MustMatcher([]string{"needle"})
	data := append([]byte("needle"), bytes.Repeat([]byte("x"), 1<<20)...)
	if !m.Contains(data) {
		t.Fatal("missed needle at start")
	}
}

func TestBinaryPatterns(t *testing.T) {
	m := MustMatcher([]string{string([]byte{0x00, 0xff, 0x7f}), string([]byte{0xde, 0xad})})
	data := []byte{0x01, 0x00, 0xff, 0x7f, 0x02, 0xde, 0xad}
	got := m.Scan(data)
	if len(got) != 2 {
		t.Fatalf("binary scan = %v", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	if _, err := NewMatcher(nil); err == nil {
		t.Fatal("empty pattern list accepted")
	}
	if _, err := NewMatcher([]string{"ok", ""}); err == nil {
		t.Fatal("empty pattern accepted")
	}
	m := MustMatcher([]string{"x"})
	if m.Contains(nil) {
		t.Fatal("match in empty data")
	}
}

func TestDuplicatePatternsBothReported(t *testing.T) {
	m := MustMatcher([]string{"dup", "dup"})
	got := m.Scan([]byte("dup"))
	if len(got) != 2 {
		t.Fatalf("duplicate patterns: %d matches, want 2", len(got))
	}
}

// naiveScan is the ground truth for property testing.
func naiveScan(patterns []string, data []byte) []Match {
	var out []Match
	for pi, p := range patterns {
		for i := 0; i+len(p) <= len(data); i++ {
			if string(data[i:i+len(p)]) == p {
				out = append(out, Match{Pattern: pi, End: i + len(p)})
			}
		}
	}
	return out
}

func TestScanMatchesNaiveProperty(t *testing.T) {
	r := sim.NewRNG(99)
	alphabet := "abc" // small alphabet maximizes overlaps
	randPat := func() string {
		n := 1 + r.Intn(4)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(alphabet[r.Intn(len(alphabet))])
		}
		return sb.String()
	}
	for iter := 0; iter < 300; iter++ {
		np := 1 + r.Intn(6)
		pats := make([]string, np)
		for i := range pats {
			pats[i] = randPat()
		}
		data := make([]byte, r.Intn(64))
		for i := range data {
			data[i] = alphabet[r.Intn(len(alphabet))]
		}
		m := MustMatcher(pats)
		got := m.Scan(data)
		want := naiveScan(pats, data)
		sortMatches(got)
		sortMatches(want)
		if len(got) != len(want) {
			t.Fatalf("iter %d: pats=%q data=%q got %v want %v", iter, pats, data, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("iter %d: pats=%q data=%q got %v want %v", iter, pats, data, got, want)
			}
		}
	}
}

func TestContainsAgreesWithScanProperty(t *testing.T) {
	m := MustMatcher([]string{"ab", "bca", "c"})
	f := func(data []byte) bool {
		return m.Contains(data) == (len(m.Scan(data)) > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPaperRuleSetsCompile(t *testing.T) {
	// The three synthesized Snort-style rule sets must compile and find
	// the embedded patterns the payload generator plants.
	for _, name := range trace.RuleSetNames() {
		rs := trace.GenRuleSet(name, 42)
		m := MustMatcher(rs.Patterns)
		if m.NumPatterns() != len(rs.Patterns) {
			t.Fatalf("%s: pattern count mismatch", name)
		}
		pg := trace.NewPayloadGen(rs, 7)
		agree := 0
		const n = 3000
		for i := 0; i < n; i++ {
			payload, has := pg.Next(1500)
			if m.Contains(payload) == has {
				agree++
			}
		}
		if agree != n {
			t.Fatalf("%s: matcher disagreed with ground truth on %d/%d payloads", name, n-agree, n)
		}
	}
}

func TestStatesGrowWithRules(t *testing.T) {
	img := MustMatcher(trace.GenRuleSet(trace.RuleSetImage, 42).Patterns)
	fla := MustMatcher(trace.GenRuleSet(trace.RuleSetFlash, 42).Patterns)
	if img.States() <= 1 || fla.States() <= 1 {
		t.Fatal("automata too small")
	}
}

func BenchmarkScanMTU(b *testing.B) {
	rs := trace.GenRuleSet(trace.RuleSetExecutable, 42)
	m := MustMatcher(rs.Patterns)
	pg := trace.NewPayloadGen(rs, 7)
	payload, _ := pg.Next(1500)
	b.SetBytes(1500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Contains(payload)
	}
}
