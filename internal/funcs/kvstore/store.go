// Package kvstore implements the two key-value-store benchmarks of paper
// §3.4: a Redis-like TCP store driven by YCSB, and a MICA-like
// kernel-bypass store (Lim et al. [42]) with a partitioned design,
// RDMA-delivered requests, and batched GETs.
package kvstore

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// Store is the Redis-like single-namespace store: one logical hash table
// serving GET/SET, sized by the YCSB load phase (30 K × 1 KB records in
// the paper's runs).
type Store struct {
	data map[string][]byte

	gets, sets, hits uint64
	bytesStored      int64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{data: make(map[string][]byte)}
}

// Set stores a copy of value under key.
func (s *Store) Set(key string, value []byte) {
	s.sets++
	if old, ok := s.data[key]; ok {
		s.bytesStored -= int64(len(old))
	}
	v := make([]byte, len(value))
	copy(v, value)
	s.data[key] = v
	s.bytesStored += int64(len(v))
}

// Get returns the value for key. The returned slice is the store's own;
// callers must not mutate it.
func (s *Store) Get(key string) ([]byte, bool) {
	s.gets++
	v, ok := s.data[key]
	if ok {
		s.hits++
	}
	return v, ok
}

// Len returns the record count.
func (s *Store) Len() int { return len(s.data) }

// Gets, Sets and Hits expose operation counters.
func (s *Store) Gets() uint64 { return s.gets }
func (s *Store) Sets() uint64 { return s.sets }
func (s *Store) Hits() uint64 { return s.hits }

// WorkingSetBytes estimates resident size for the memory model.
func (s *Store) WorkingSetBytes() int64 {
	const perRecordOverhead = 64 // map bucket + key + header
	return s.bytesStored + int64(len(s.data))*perRecordOverhead
}

// ---- Wire protocol (RESP-flavoured, length-prefixed) ----
//
// The simulator carries request/response payloads as real bytes so that
// functional tests exercise genuine encode → serve → decode round trips.

// Command is a parsed request.
type Command struct {
	Op    byte // 'G' or 'S'
	Key   string
	Value []byte
}

// Op codes.
const (
	OpGet byte = 'G'
	OpSet byte = 'S'
)

// EncodeCommand renders a command to wire bytes:
// op(1) keyLen(2) key valLen(4) value.
func EncodeCommand(c Command) []byte {
	buf := make([]byte, 1+2+len(c.Key)+4+len(c.Value))
	buf[0] = c.Op
	binary.BigEndian.PutUint16(buf[1:], uint16(len(c.Key)))
	copy(buf[3:], c.Key)
	off := 3 + len(c.Key)
	binary.BigEndian.PutUint32(buf[off:], uint32(len(c.Value)))
	copy(buf[off+4:], c.Value)
	return buf
}

// DecodeCommand parses wire bytes.
func DecodeCommand(b []byte) (Command, error) {
	if len(b) < 7 {
		return Command{}, fmt.Errorf("kvstore: short command (%d bytes)", len(b))
	}
	op := b[0]
	if op != OpGet && op != OpSet {
		return Command{}, fmt.Errorf("kvstore: unknown op %q", op)
	}
	kl := int(binary.BigEndian.Uint16(b[1:]))
	if len(b) < 3+kl+4 {
		return Command{}, fmt.Errorf("kvstore: truncated key")
	}
	key := string(b[3 : 3+kl])
	off := 3 + kl
	vl := int(binary.BigEndian.Uint32(b[off:]))
	if len(b) < off+4+vl {
		return Command{}, fmt.Errorf("kvstore: truncated value")
	}
	var val []byte
	if vl > 0 {
		val = b[off+4 : off+4+vl]
	}
	return Command{Op: op, Key: key, Value: val}, nil
}

// Serve executes one decoded command and returns the response payload:
// status(1) valLen(4) value.
func (s *Store) Serve(c Command) []byte {
	switch c.Op {
	case OpSet:
		s.Set(c.Key, c.Value)
		return []byte{'+', 0, 0, 0, 0}
	case OpGet:
		v, ok := s.Get(c.Key)
		if !ok {
			return []byte{'-', 0, 0, 0, 0}
		}
		out := make([]byte, 5+len(v))
		out[0] = '+'
		binary.BigEndian.PutUint32(out[1:], uint32(len(v)))
		copy(out[5:], v)
		return out
	default:
		return []byte{'-', 0, 0, 0, 0}
	}
}

// ServeWire is the full request path: decode, execute, encode.
func (s *Store) ServeWire(req []byte) ([]byte, error) {
	c, err := DecodeCommand(req)
	if err != nil {
		return nil, err
	}
	return s.Serve(c), nil
}

// keyHash is the partition/key hash shared by Store users and MICA.
func keyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}
