package kvstore

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func TestStoreSetGet(t *testing.T) {
	s := NewStore()
	s.Set("k1", []byte("v1"))
	v, ok := s.Get("k1")
	if !ok || string(v) != "v1" {
		t.Fatalf("get = %q,%v", v, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("phantom key")
	}
	if s.Gets() != 2 || s.Hits() != 1 || s.Sets() != 1 {
		t.Fatalf("counters: gets=%d hits=%d sets=%d", s.Gets(), s.Hits(), s.Sets())
	}
}

func TestStoreSetCopies(t *testing.T) {
	s := NewStore()
	buf := []byte("original")
	s.Set("k", buf)
	buf[0] = 'X'
	v, _ := s.Get("k")
	if string(v) != "original" {
		t.Fatal("store aliased caller's buffer")
	}
}

func TestStoreWorkingSetTracksOverwrites(t *testing.T) {
	s := NewStore()
	s.Set("k", make([]byte, 1000))
	ws1 := s.WorkingSetBytes()
	s.Set("k", make([]byte, 10))
	if s.WorkingSetBytes() >= ws1 {
		t.Fatal("overwrite with smaller value must shrink working set")
	}
	if s.Len() != 1 {
		t.Fatal("overwrite duplicated record")
	}
}

func TestCommandWireRoundTrip(t *testing.T) {
	for _, c := range []Command{
		{Op: OpGet, Key: "user0000000001"},
		{Op: OpSet, Key: "k", Value: []byte("hello")},
		{Op: OpSet, Key: "empty-value", Value: nil},
	} {
		got, err := DecodeCommand(EncodeCommand(c))
		if err != nil {
			t.Fatalf("decode(%+v): %v", c, err)
		}
		if got.Op != c.Op || got.Key != c.Key || !bytes.Equal(got.Value, c.Value) {
			t.Fatalf("round trip: %+v -> %+v", c, got)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{
		nil, {1, 2}, {'X', 0, 1, 'k', 0, 0, 0, 0},
		EncodeCommand(Command{Op: OpSet, Key: "k", Value: []byte("v")})[:8],
	} {
		if _, err := DecodeCommand(b); err == nil {
			t.Fatalf("decoded garbage %v", b)
		}
	}
}

func TestServeWireFullPath(t *testing.T) {
	s := NewStore()
	resp, err := s.ServeWire(EncodeCommand(Command{Op: OpSet, Key: "a", Value: []byte("val")}))
	if err != nil || resp[0] != '+' {
		t.Fatalf("set resp = %v, %v", resp, err)
	}
	resp, err = s.ServeWire(EncodeCommand(Command{Op: OpGet, Key: "a"}))
	if err != nil || resp[0] != '+' || string(resp[5:]) != "val" {
		t.Fatalf("get resp = %v, %v", resp, err)
	}
	resp, _ = s.ServeWire(EncodeCommand(Command{Op: OpGet, Key: "nope"}))
	if resp[0] != '-' {
		t.Fatal("miss must return '-' status")
	}
}

// Property: any encode/decode pair is identity for printable keys.
func TestWireRoundTripProperty(t *testing.T) {
	f := func(key string, value []byte, isSet bool) bool {
		if len(key) == 0 || len(key) > 60000 {
			return true
		}
		op := OpGet
		if isSet {
			op = OpSet
		} else {
			value = nil
		}
		c := Command{Op: op, Key: key, Value: value}
		got, err := DecodeCommand(EncodeCommand(c))
		return err == nil && got.Key == key && bytes.Equal(got.Value, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestYCSBDrivesStore(t *testing.T) {
	// End-to-end functional run of the paper's Redis setup: load 30K
	// records, run 10K ops of workload A through the wire protocol.
	s := NewStore()
	g := trace.NewYCSBGen(trace.WorkloadA, trace.PaperRecords, trace.PaperValueSize, 42)
	val := make([]byte, trace.PaperValueSize)
	for _, k := range g.LoadKeys() {
		s.Set(k, val)
	}
	if s.Len() != trace.PaperRecords {
		t.Fatalf("loaded %d records", s.Len())
	}
	misses := 0
	for i := 0; i < trace.PaperOps; i++ {
		op := g.Next()
		var c Command
		if op.Type == trace.OpRead {
			c = Command{Op: OpGet, Key: op.Key}
		} else {
			c = Command{Op: OpSet, Key: op.Key, Value: op.Value}
		}
		resp, err := s.ServeWire(EncodeCommand(c))
		if err != nil {
			t.Fatal(err)
		}
		if resp[0] == '-' {
			misses++
		}
	}
	if misses != 0 {
		t.Fatalf("%d misses on a fully loaded keyspace", misses)
	}
}

func TestMICAPartitioning(t *testing.T) {
	m := NewMICA(8)
	if m.NumPartitions() != 8 {
		t.Fatal("partition count")
	}
	for i := 0; i < 8000; i++ {
		m.Set(trace.Key(uint64(i)), []byte("v"))
	}
	lens := m.PartitionLens()
	for i, l := range lens {
		if l < 500 || l > 1500 {
			t.Fatalf("partition %d holds %d records: badly unbalanced %v", i, l, lens)
		}
	}
	if m.Len() != 8000 {
		t.Fatalf("total = %d", m.Len())
	}
}

func TestMICAPartitionStable(t *testing.T) {
	m := NewMICA(8)
	for i := 0; i < 100; i++ {
		k := trace.Key(uint64(i))
		if m.Partition(k) != m.Partition(k) {
			t.Fatal("partition function unstable")
		}
	}
}

func TestMICAGetBatch(t *testing.T) {
	m := NewMICA(4)
	m.Set("a", []byte("1"))
	m.Set("b", []byte("2"))
	out := m.GetBatch([]string{"a", "missing", "b"})
	if string(out[0]) != "1" || out[1] != nil || string(out[2]) != "2" {
		t.Fatalf("batch = %q", out)
	}
	if m.Gets() != 3 || m.Hits() != 2 {
		t.Fatalf("counters gets=%d hits=%d", m.Gets(), m.Hits())
	}
	if hr := m.HitRate(); hr < 0.66 || hr > 0.67 {
		t.Fatalf("hit rate = %v", hr)
	}
}

func TestMICA100PercentGetWorkload(t *testing.T) {
	// The paper runs MICA with a 100% GET workload: after load, batched
	// GETs over the loaded keyspace must all hit.
	m := NewMICA(8)
	g := trace.NewYCSBGen(trace.WorkloadC, 10000, 64, 9)
	for _, k := range g.LoadKeys() {
		m.Set(k, []byte("value"))
	}
	for _, batchSize := range PaperBatchSizes {
		batch := make([]string, batchSize)
		for i := 0; i < 100; i++ {
			for j := range batch {
				batch[j] = g.Next().Key
			}
			for _, v := range m.GetBatch(batch) {
				if v == nil {
					t.Fatal("miss in 100% GET workload over loaded keys")
				}
			}
		}
	}
	if m.HitRate() != 1.0 {
		t.Fatalf("hit rate = %v, want 1.0", m.HitRate())
	}
}

func TestMICABadPartitionsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero partitions did not panic")
		}
	}()
	NewMICA(0)
}
