package kvstore

import "fmt"

// MICA is the kernel-bypass store of Lim et al. [42] as the paper runs
// it: a partitioned design where each partition is owned by one core
// (EREW mode), requests are steered to the owning partition by key hash,
// and clients batch GETs (batch sizes 4 and 32 in Table 3) to amortize
// per-message overhead.
type MICA struct {
	partitions []partition
	gets, hits uint64
}

type partition struct {
	data map[string][]byte
}

// PaperBatchSizes are the Table 3 configurations.
var PaperBatchSizes = []int{4, 32}

// NewMICA returns a store with the given partition count (one per
// serving core; 8 in the paper's runs).
func NewMICA(partitions int) *MICA {
	if partitions <= 0 {
		panic("kvstore: MICA needs at least one partition")
	}
	m := &MICA{partitions: make([]partition, partitions)}
	for i := range m.partitions {
		m.partitions[i].data = make(map[string][]byte)
	}
	return m
}

// NumPartitions returns the partition count.
func (m *MICA) NumPartitions() int { return len(m.partitions) }

// Partition returns the owning partition index for a key.
func (m *MICA) Partition(key string) int {
	return int(keyHash(key) % uint64(len(m.partitions)))
}

// Set stores a copy of value in the key's owning partition.
func (m *MICA) Set(key string, value []byte) {
	p := &m.partitions[m.Partition(key)]
	v := make([]byte, len(value))
	copy(v, value)
	p.data[key] = v
}

// Get fetches from the owning partition.
func (m *MICA) Get(key string) ([]byte, bool) {
	m.gets++
	v, ok := m.partitions[m.Partition(key)].data[key]
	if ok {
		m.hits++
	}
	return v, ok
}

// GetBatch serves a client batch. All keys are looked up; the returned
// slice is parallel to keys with nil for misses. Batches that span
// partitions are legal — the client library splits them per partition in
// real MICA; here the split cost is the runner's concern, the semantics
// are the store's.
func (m *MICA) GetBatch(keys []string) [][]byte {
	out := make([][]byte, len(keys))
	for i, k := range keys {
		v, ok := m.Get(k)
		if ok {
			out[i] = v
		}
	}
	return out
}

// Len returns total records across partitions.
func (m *MICA) Len() int {
	n := 0
	for i := range m.partitions {
		n += len(m.partitions[i].data)
	}
	return n
}

// PartitionLens returns per-partition record counts, for balance checks.
func (m *MICA) PartitionLens() []int {
	out := make([]int, len(m.partitions))
	for i := range m.partitions {
		out[i] = len(m.partitions[i].data)
	}
	return out
}

// Gets and Hits expose counters.
func (m *MICA) Gets() uint64 { return m.gets }
func (m *MICA) Hits() uint64 { return m.hits }

// HitRate returns the fraction of GETs that found a record.
func (m *MICA) HitRate() float64 {
	if m.gets == 0 {
		return 0
	}
	return float64(m.hits) / float64(m.gets)
}

func (m *MICA) String() string {
	return fmt.Sprintf("MICA(%d partitions, %d records)", m.NumPartitions(), m.Len())
}
