package bm25

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func docsFrom(texts ...string) []Document {
	docs := make([]Document, len(texts))
	for i, t := range texts {
		docs[i] = Document{ID: i, Terms: ParseQuery([]byte(t))}
	}
	return docs
}

func TestIDFOrdering(t *testing.T) {
	idx := NewIndex(docsFrom(
		"common rare1 common",
		"common filler filler",
		"common filler other",
	))
	if idx.IDF("rare1") <= idx.IDF("common") {
		t.Fatalf("rare term IDF %v must exceed common term IDF %v",
			idx.IDF("rare1"), idx.IDF("common"))
	}
	if idx.IDF("common") < 0 {
		t.Fatal("IDF must be non-negative in the +1 formulation")
	}
}

func TestScoreRelevantDocWins(t *testing.T) {
	idx := NewIndex(docsFrom(
		"apple banana cherry",
		"apple apple apple",
		"dog cat mouse",
	))
	q := []string{"apple"}
	s0, s1, s2 := idx.Score(0, q), idx.Score(1, q), idx.Score(2, q)
	if s1 <= s0 {
		t.Fatalf("tf saturation: doc1 (%v) must outscore doc0 (%v)", s1, s0)
	}
	if s2 != 0 {
		t.Fatalf("non-matching doc scored %v", s2)
	}
}

func TestTFSaturation(t *testing.T) {
	// BM25's k1 term saturates: tripling tf must NOT triple the score.
	idx := NewIndex(docsFrom("x a b", "x x x", "c d e"))
	q := []string{"x"}
	s1 := idx.Score(0, q)
	s3 := idx.Score(1, q)
	if s3 >= 3*s1 {
		t.Fatalf("no saturation: tf=3 score %v vs tf=1 score %v", s3, s1)
	}
	if s3 <= s1 {
		t.Fatal("higher tf must still score higher")
	}
}

func TestLengthNormalization(t *testing.T) {
	// Same tf, longer doc => lower score.
	idx := NewIndex(docsFrom(
		"term a",
		"term a b c d e f g h i j k l m n o p",
	))
	q := []string{"term"}
	if idx.Score(1, q) >= idx.Score(0, q) {
		t.Fatal("length normalization missing")
	}
}

func TestTopKOrderingAndDeterminism(t *testing.T) {
	docs := GenCorpus(200, 10, 42)
	idx := NewIndex(docs)
	r := sim.NewRNG(7)
	q := GenQuery(3, r)
	res := idx.TopK(q, 10)
	if len(res) > 10 {
		t.Fatalf("TopK returned %d", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatal("TopK not sorted by score")
		}
	}
	// TopK must agree with brute-force Score on every returned doc.
	for _, r := range res {
		want := idx.Score(r.DocID, q)
		if math.Abs(r.Score-want) > 1e-9 {
			t.Fatalf("TopK score %v != Score %v for doc %d", r.Score, want, r.DocID)
		}
	}
	res2 := idx.TopK(q, 10)
	for i := range res {
		if res[i] != res2[i] {
			t.Fatal("TopK not deterministic")
		}
	}
}

func TestGenCorpusShape(t *testing.T) {
	docs := GenCorpus(1000, 10, 1)
	if len(docs) != 1000 {
		t.Fatalf("corpus size = %d", len(docs))
	}
	var total int
	for _, d := range docs {
		total += len(d.Terms)
	}
	mean := float64(total) / 1000
	if mean < 8 || mean > 12 {
		t.Fatalf("mean doc length = %v, want ~10 (paper §3.4)", mean)
	}
	// Determinism.
	again := GenCorpus(1000, 10, 1)
	for i := range docs {
		for j := range docs[i].Terms {
			if docs[i].Terms[j] != again[i].Terms[j] {
				t.Fatal("corpus generation not deterministic")
			}
		}
	}
}

func TestPaperCorpusSizes(t *testing.T) {
	if PaperCorpusSizes[0] != 100 || PaperCorpusSizes[1] != 1000 {
		t.Fatal("paper corpus sizes are 100 and 1000 (Table 3)")
	}
}

func TestScoreOutOfRangePanics(t *testing.T) {
	idx := NewIndex(docsFrom("a"))
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range doc did not panic")
		}
	}()
	idx.Score(5, []string{"a"})
}

func TestParseQuery(t *testing.T) {
	q := ParseQuery([]byte("  foo  bar\tbaz\n"))
	if len(q) != 3 || q[0] != "foo" || q[2] != "baz" {
		t.Fatalf("ParseQuery = %v", q)
	}
}

func BenchmarkTopK1000Docs(b *testing.B) {
	idx := NewIndex(GenCorpus(1000, 10, 42))
	q := GenQuery(3, sim.NewRNG(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.TopK(q, 10)
	}
}
