// Package bm25 implements the Okapi BM25 ranking function of paper §3.4
// (Robertson & Zaragoza [66]): the search-engine relevance benchmark run
// on a UDP server with 100- and 1000-document corpora of ~10 words each,
// one query scored per arriving packet.
package bm25

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Standard BM25 free parameters.
const (
	K1 = 1.2
	B  = 0.75
)

// PaperCorpusSizes are the two configurations of Table 3.
var PaperCorpusSizes = []int{100, 1000}

// Document is one indexed document.
type Document struct {
	ID    int
	Terms []string
}

// Index is an inverted index with BM25 scoring.
type Index struct {
	docs      []Document
	docLen    []int
	avgDocLen float64
	// postings maps term -> docID -> term frequency.
	postings map[string]map[int]int
	df       map[string]int
}

// NewIndex builds an index over the documents.
func NewIndex(docs []Document) *Index {
	idx := &Index{
		docs:     docs,
		docLen:   make([]int, len(docs)),
		postings: make(map[string]map[int]int),
		df:       make(map[string]int),
	}
	var total int
	for i, d := range docs {
		idx.docLen[i] = len(d.Terms)
		total += len(d.Terms)
		seen := map[string]bool{}
		for _, term := range d.Terms {
			m := idx.postings[term]
			if m == nil {
				m = make(map[int]int)
				idx.postings[term] = m
			}
			m[d.ID]++
			if !seen[term] {
				idx.df[term]++
				seen[term] = true
			}
		}
	}
	if len(docs) > 0 {
		idx.avgDocLen = float64(total) / float64(len(docs))
	}
	return idx
}

// NumDocs returns the corpus size.
func (idx *Index) NumDocs() int { return len(idx.docs) }

// IDF returns the BM25 inverse document frequency of a term
// (the [ln((N-df+0.5)/(df+0.5)+1)] form, always non-negative).
func (idx *Index) IDF(term string) float64 {
	n := float64(len(idx.docs))
	df := float64(idx.df[term])
	return math.Log((n-df+0.5)/(df+0.5) + 1)
}

// Score returns the BM25 relevance of a document to the query terms.
func (idx *Index) Score(docID int, query []string) float64 {
	if docID < 0 || docID >= len(idx.docs) {
		panic(fmt.Sprintf("bm25: document %d out of range", docID))
	}
	dl := float64(idx.docLen[docID])
	var s float64
	for _, term := range query {
		post := idx.postings[term]
		tf := float64(post[docID])
		if tf == 0 {
			continue
		}
		idf := idx.IDF(term)
		s += idf * tf * (K1 + 1) / (tf + K1*(1-B+B*dl/idx.avgDocLen))
	}
	return s
}

// Result is one ranked document.
type Result struct {
	DocID int
	Score float64
}

// TopK scores every document against the query and returns the k best,
// ties broken by document ID for determinism. This full scan over the
// corpus is the per-packet work of the benchmark — which is why the
// 1000-document variant is ~10× the 100-document one.
func (idx *Index) TopK(query []string, k int) []Result {
	scores := make(map[int]float64)
	for _, term := range query {
		post, ok := idx.postings[term]
		if !ok {
			continue
		}
		idf := idx.IDF(term)
		for docID, tfInt := range post {
			tf := float64(tfInt)
			dl := float64(idx.docLen[docID])
			scores[docID] += idf * tf * (K1 + 1) / (tf + K1*(1-B+B*dl/idx.avgDocLen))
		}
	}
	res := make([]Result, 0, len(scores))
	for id, s := range scores {
		res = append(res, Result{DocID: id, Score: s})
	}
	sort.Slice(res, func(i, j int) bool {
		//snicvet:ignore floateq sort comparators need an exact strict weak order; a tolerance would make it intransitive
		if res[i].Score != res[j].Score {
			return res[i].Score > res[j].Score
		}
		return res[i].DocID < res[j].DocID
	})
	if k < len(res) {
		res = res[:k]
	}
	return res
}

// vocabulary for synthetic corpora: realistic Zipf-ish reuse comes from
// drawing word indices from a skewed distribution.
const vocabSize = 4000

func word(i uint64) string { return fmt.Sprintf("w%04d", i) }

// GenCorpus deterministically generates n documents of ~wordsPerDoc terms
// with Zipf-distributed vocabulary, matching the paper's "randomly
// generated" documents of ~10 words.
func GenCorpus(n, wordsPerDoc int, seed uint64) []Document {
	r := sim.NewRNG(seed)
	z := sim.NewZipf(r.Fork(1), vocabSize, 1.05)
	docs := make([]Document, n)
	for i := range docs {
		nw := wordsPerDoc/2 + r.Intn(wordsPerDoc) // mean ≈ wordsPerDoc
		terms := make([]string, nw)
		for j := range terms {
			terms[j] = word(z.Next())
		}
		docs[i] = Document{ID: i, Terms: terms}
	}
	return docs
}

// GenQuery draws a query of nTerms words from the same distribution.
func GenQuery(nTerms int, r *sim.RNG) []string {
	z := sim.NewZipf(r.Fork(2), vocabSize, 1.05)
	q := make([]string, nTerms)
	for i := range q {
		q[i] = word(z.Next())
	}
	return q
}

// ParseQuery splits a whitespace query payload, the wire format of the
// UDP benchmark server.
func ParseQuery(payload []byte) []string {
	return strings.Fields(string(payload))
}
