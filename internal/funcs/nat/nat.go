// Package nat implements the network-address-translation benchmark of
// paper §3.4 (RFC 1631-style): a translation table mapping public
// endpoints to private ones, evaluated at 10 K and 1 M randomly generated
// entries. Each ingress packet's destination is rewritten through the
// table; each egress packet's source is mapped back.
package nat

import (
	"fmt"
	"sort"

	"repro/internal/invariant"
	"repro/internal/sim"
)

// IPv4 is a 32-bit address.
type IPv4 uint32

// String renders dotted quad.
func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Entry is one translation pair.
type Entry struct {
	Public  IPv4
	Private IPv4
}

// Table is the NAT mapping. Lookups are exact-match hash lookups both
// ways; memory footprint grows linearly with entries, which is what makes
// the 1 M-entry variant memory-bound (its working set spills the SNIC's
// small LLC).
type Table struct {
	toPrivate map[IPv4]IPv4
	toPublic  map[IPv4]IPv4
	misses    uint64
}

// PaperEntrySizes are the two configurations of Table 3.
var PaperEntrySizes = []int{10_000, 1_000_000}

// NewTable builds an empty table.
func NewTable() *Table {
	return &Table{
		toPrivate: make(map[IPv4]IPv4),
		toPublic:  make(map[IPv4]IPv4),
	}
}

// GenerateTable builds a table with n random, collision-free entries.
// Public addresses draw from 128.0.0.0/2 and private from 10.0.0.0/8, so
// the two spaces never collide.
func GenerateTable(n int, seed uint64) *Table {
	t := NewTable()
	r := sim.NewRNG(seed)
	for len(t.toPrivate) < n {
		pub := IPv4(0x80000000 | uint32(r.Uint64n(1<<30)))
		priv := IPv4(0x0a000000 | uint32(r.Uint64n(1<<24)))
		if _, dup := t.toPrivate[pub]; dup {
			continue
		}
		if _, dup := t.toPublic[priv]; dup {
			continue
		}
		t.Add(Entry{Public: pub, Private: priv})
	}
	return t
}

// Add inserts a translation pair, replacing any previous mapping of the
// same public address.
func (t *Table) Add(e Entry) {
	if old, ok := t.toPrivate[e.Public]; ok {
		delete(t.toPublic, old)
	}
	t.toPrivate[e.Public] = e.Private
	t.toPublic[e.Private] = e.Public
}

// Len returns the entry count.
func (t *Table) Len() int { return len(t.toPrivate) }

// Inbound translates an ingress packet's destination (public → private).
func (t *Table) Inbound(dst IPv4) (IPv4, bool) {
	priv, ok := t.toPrivate[dst]
	if !ok {
		t.misses++
	}
	return priv, ok
}

// Outbound translates an egress packet's source (private → public).
func (t *Table) Outbound(src IPv4) (IPv4, bool) {
	pub, ok := t.toPublic[src]
	if !ok {
		t.misses++
	}
	return pub, ok
}

// Misses returns failed lookups (packets a real NAT would drop or punt).
func (t *Table) Misses() uint64 { return t.misses }

// WorkingSetBytes estimates the table's resident size for the memory
// model: two map entries of ~(key+value+overhead) per translation.
func (t *Table) WorkingSetBytes() int64 {
	const perEntry = 2 * (4 + 4 + 40) // both directions, map overhead
	return int64(t.Len()) * perEntry
}

// Validate checks the table's two-way consistency: the forward and
// reverse maps must be the same size and exact inverses of each other —
// Add preserves this by construction, so a failure means the bijection
// was corrupted. Keys are checked in sorted order, so the reported
// violation is deterministic. Returns the first *invariant.Violation or
// nil.
func (t *Table) Validate() error {
	if len(t.toPrivate) != len(t.toPublic) {
		return &invariant.Violation{Rule: invariant.RuleBijection, Station: "nat",
			Detail: fmt.Sprintf("forward map has %d entries, reverse has %d",
				len(t.toPrivate), len(t.toPublic))}
	}
	pubs := make([]IPv4, 0, len(t.toPrivate))
	for pub := range t.toPrivate {
		pubs = append(pubs, pub)
	}
	sort.Slice(pubs, func(i, j int) bool { return pubs[i] < pubs[j] })
	for _, pub := range pubs {
		priv := t.toPrivate[pub]
		back, ok := t.toPublic[priv]
		if !ok {
			return &invariant.Violation{Rule: invariant.RuleBijection, Station: "nat",
				Detail: fmt.Sprintf("%v -> %v has no reverse mapping", pub, priv)}
		}
		if back != pub {
			return &invariant.Violation{Rule: invariant.RuleBijection, Station: "nat",
				Detail: fmt.Sprintf("%v -> %v maps back to %v", pub, priv, back)}
		}
	}
	return nil
}

// Header is the minimal packet header NAT rewrites.
type Header struct {
	Src, Dst IPv4
}

// RewriteInbound applies inbound translation to a header in place,
// reporting whether a mapping existed.
func (t *Table) RewriteInbound(h *Header) bool {
	priv, ok := t.Inbound(h.Dst)
	if !ok {
		return false
	}
	h.Dst = priv
	return true
}

// RewriteOutbound applies outbound translation to a header in place.
func (t *Table) RewriteOutbound(h *Header) bool {
	pub, ok := t.Outbound(h.Src)
	if !ok {
		return false
	}
	h.Src = pub
	return true
}

// SomePublic returns a deterministic sample of n public addresses from
// the table, for request generation. The previous implementation took
// the first n keys of a map walk, which is randomized per process; now
// the keys are sorted and a seeded partial Fisher–Yates picks the
// sample, so the same (table, n, seed) always yields the same slice.
func (t *Table) SomePublic(n int, seed uint64) []IPv4 {
	all := make([]IPv4, 0, len(t.toPrivate))
	for pub := range t.toPrivate {
		all = append(all, pub)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if n >= len(all) {
		return all
	}
	r := sim.NewRNG(seed)
	for i := 0; i < n; i++ {
		j := i + r.Intn(len(all)-i)
		all[i], all[j] = all[j], all[i]
	}
	return all[:n]
}
