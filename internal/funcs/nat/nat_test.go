package nat

import (
	"testing"
	"testing/quick"
)

func TestAddAndTranslate(t *testing.T) {
	tbl := NewTable()
	tbl.Add(Entry{Public: 0x80000001, Private: 0x0a000001})
	priv, ok := tbl.Inbound(0x80000001)
	if !ok || priv != 0x0a000001 {
		t.Fatalf("inbound = %v,%v", priv, ok)
	}
	pub, ok := tbl.Outbound(0x0a000001)
	if !ok || pub != 0x80000001 {
		t.Fatalf("outbound = %v,%v", pub, ok)
	}
}

func TestMissCounting(t *testing.T) {
	tbl := NewTable()
	if _, ok := tbl.Inbound(1); ok {
		t.Fatal("hit on empty table")
	}
	tbl.Outbound(2)
	if tbl.Misses() != 2 {
		t.Fatalf("misses = %d, want 2", tbl.Misses())
	}
}

func TestAddReplaces(t *testing.T) {
	tbl := NewTable()
	tbl.Add(Entry{Public: 10, Private: 100})
	tbl.Add(Entry{Public: 10, Private: 200})
	if priv, _ := tbl.Inbound(10); priv != 200 {
		t.Fatalf("replacement failed: %v", priv)
	}
	// Old reverse mapping must be gone.
	if _, ok := tbl.Outbound(100); ok {
		t.Fatal("stale reverse mapping survived replacement")
	}
	if tbl.Len() != 1 {
		t.Fatalf("len = %d, want 1", tbl.Len())
	}
}

func TestGenerateTableSizes(t *testing.T) {
	for _, n := range []int{100, 10_000} {
		tbl := GenerateTable(n, 42)
		if tbl.Len() != n {
			t.Fatalf("generated %d entries, want %d", tbl.Len(), n)
		}
	}
}

func TestGenerateTableDeterministic(t *testing.T) {
	a := GenerateTable(1000, 7)
	b := GenerateTable(1000, 7)
	for _, pub := range a.SomePublic(100, 0) {
		pa, _ := a.Inbound(pub)
		pb, ok := b.Inbound(pub)
		if !ok || pa != pb {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestGeneratedSpacesDisjoint(t *testing.T) {
	tbl := GenerateTable(5000, 3)
	for _, pub := range tbl.SomePublic(5000, 0) {
		priv, _ := tbl.Inbound(pub)
		if pub>>24 == 10 {
			t.Fatalf("public address %v in private space", pub)
		}
		if priv>>24 != 10 {
			t.Fatalf("private address %v outside 10.0.0.0/8", priv)
		}
	}
}

func TestRewriteInPlace(t *testing.T) {
	tbl := NewTable()
	tbl.Add(Entry{Public: 0x80000005, Private: 0x0a000005})
	h := Header{Src: 1, Dst: 0x80000005}
	if !tbl.RewriteInbound(&h) || h.Dst != 0x0a000005 {
		t.Fatalf("inbound rewrite: %+v", h)
	}
	h2 := Header{Src: 0x0a000005, Dst: 2}
	if !tbl.RewriteOutbound(&h2) || h2.Src != 0x80000005 {
		t.Fatalf("outbound rewrite: %+v", h2)
	}
	h3 := Header{Dst: 999}
	if tbl.RewriteInbound(&h3) || h3.Dst != 999 {
		t.Fatal("rewrite on miss must leave header untouched")
	}
}

// Property: round-trip through the table is identity for every entry.
func TestRoundTripProperty(t *testing.T) {
	tbl := GenerateTable(2000, 11)
	f := func(idx uint16) bool {
		pubs := tbl.SomePublic(2000, 0)
		pub := pubs[int(idx)%len(pubs)]
		priv, ok := tbl.Inbound(pub)
		if !ok {
			return false
		}
		back, ok := tbl.Outbound(priv)
		return ok && back == pub
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWorkingSetScales(t *testing.T) {
	small := GenerateTable(1000, 1).WorkingSetBytes()
	big := GenerateTable(10_000, 1).WorkingSetBytes()
	if big != 10*small {
		t.Fatalf("working set not linear: %d vs %d", small, big)
	}
	// The paper's 1M-entry table must overflow the SNIC's 6MB LLC.
	perEntry := big / 10_000
	if perEntry*1_000_000 <= 6<<20 {
		t.Fatal("1M-entry working set should exceed the SNIC LLC")
	}
}

func TestIPv4String(t *testing.T) {
	if s := IPv4(0x0a000001).String(); s != "10.0.0.1" {
		t.Fatalf("String = %q", s)
	}
}
