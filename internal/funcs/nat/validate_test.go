package nat

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/invariant"
)

// Generated tables are bijections by construction; Validate must agree,
// at several sizes and seeds.
func TestValidateAcceptsGeneratedTables(t *testing.T) {
	for _, n := range []int{1, 100, 5000} {
		for seed := uint64(0); seed < 3; seed++ {
			tbl := GenerateTable(n, seed)
			if err := tbl.Validate(); err != nil {
				t.Fatalf("n=%d seed=%d: generated table rejected: %v", n, seed, err)
			}
		}
	}
	if err := NewTable().Validate(); err != nil {
		t.Fatalf("empty table rejected: %v", err)
	}
}

// Add replaces a public address's old mapping including its reverse
// entry; the replacement path must keep the bijection intact.
func TestValidateAfterReplacement(t *testing.T) {
	tbl := NewTable()
	tbl.Add(Entry{Public: 0x80000001, Private: 0x0a000001})
	tbl.Add(Entry{Public: 0x80000001, Private: 0x0a000002}) // remap
	if err := tbl.Validate(); err != nil {
		t.Fatalf("replacement broke the bijection: %v", err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("len = %d after replacement, want 1", tbl.Len())
	}
}

// Corrupted tables must be caught, with the typed violation naming what
// broke. Corruption is simulated directly on the maps — exactly what a
// buggy future Add/Remove refactor would do.
func TestValidateCatchesCorruption(t *testing.T) {
	t.Run("size mismatch", func(t *testing.T) {
		tbl := GenerateTable(10, 1)
		tbl.toPublic[0x0affffff] = 0x9fffffff // phantom reverse entry
		assertBijectionViolation(t, tbl, "entries")
	})
	t.Run("missing reverse mapping", func(t *testing.T) {
		tbl := GenerateTable(10, 2)
		for pub, priv := range tbl.toPrivate {
			delete(tbl.toPublic, priv)
			// Keep sizes equal so the size check cannot mask the hole.
			tbl.toPublic[0x0affffff] = pub
			break
		}
		assertBijectionViolation(t, tbl, "no reverse mapping")
	})
	t.Run("reverse maps elsewhere", func(t *testing.T) {
		tbl := GenerateTable(10, 3)
		for _, priv := range tbl.toPrivate {
			tbl.toPublic[priv] = 0x9e000000 // points at a different public
			break
		}
		assertBijectionViolation(t, tbl, "maps back to")
	})
}

func assertBijectionViolation(t *testing.T, tbl *Table, detail string) {
	t.Helper()
	err := tbl.Validate()
	var v *invariant.Violation
	if !errors.As(err, &v) {
		t.Fatalf("Validate = %v, want *invariant.Violation", err)
	}
	if v.Rule != invariant.RuleBijection || v.Station != "nat" {
		t.Fatalf("violation = %+v, want table-bijection on nat", v)
	}
	if !strings.Contains(v.Detail, detail) {
		t.Fatalf("detail %q, want substring %q", v.Detail, detail)
	}
}

// Validate must be deterministic even though corruption sits in a map:
// the first reported violation is the same on every call.
func TestValidateDeterministicReport(t *testing.T) {
	tbl := GenerateTable(50, 4)
	for pub, priv := range tbl.toPrivate {
		tbl.toPublic[priv] = pub + 1
	}
	first := tbl.Validate().Error()
	for i := 0; i < 5; i++ {
		if got := tbl.Validate().Error(); got != first {
			t.Fatalf("report changed between calls:\n  %s\n  %s", first, got)
		}
	}
}
