// Package ovs implements the Open vSwitch benchmark of paper §3.4: a
// software switch with the classic OvS split between a slow path
// (priority-ordered wildcard classifier) and a fast path (exact-match
// megaflow cache). In the paper's setup the data plane is offloaded to
// the embedded switch in both the ConnectX-6 and the BlueField-2, with
// the host or SNIC CPU running only the control plane; the software
// datapath here is what the control plane programs and what handles
// cache-miss upcalls.
package ovs

import "fmt"

// Proto is an L4 protocol number.
type Proto uint8

// Common protocols.
const (
	ProtoTCP Proto = 6
	ProtoUDP Proto = 17
)

// FiveTuple is the flow key.
type FiveTuple struct {
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	Proto            Proto
}

// Action is what the switch does with a matching packet.
type Action struct {
	// OutPort < 0 drops the packet.
	OutPort int
}

// Drop is the discard action.
var Drop = Action{OutPort: -1}

// Rule is a wildcard classifier entry: each field matches if the masked
// packet field equals the masked rule field.
type Rule struct {
	Priority int
	Match    FiveTuple
	Mask     FiveTuple // 0 bits are wildcarded
	Action   Action
}

// Matches reports whether the rule covers the key.
func (r *Rule) Matches(k FiveTuple) bool {
	return k.SrcIP&r.Mask.SrcIP == r.Match.SrcIP&r.Mask.SrcIP &&
		k.DstIP&r.Mask.DstIP == r.Match.DstIP&r.Mask.DstIP &&
		k.SrcPort&r.Mask.SrcPort == r.Match.SrcPort&r.Mask.SrcPort &&
		k.DstPort&r.Mask.DstPort == r.Match.DstPort&r.Mask.DstPort &&
		k.Proto&r.Mask.Proto == r.Match.Proto&r.Mask.Proto
}

// Switch is the two-tier datapath.
type Switch struct {
	rules    []Rule // sorted by descending priority
	megaflow map[FiveTuple]Action
	// CacheCapacity bounds the megaflow cache; zero means unbounded.
	CacheCapacity int

	hits, misses, drops uint64
}

// NewSwitch returns an empty switch.
func NewSwitch() *Switch {
	return &Switch{megaflow: make(map[FiveTuple]Action)}
}

// AddRule installs a classifier rule, keeping priority order. Equal
// priorities keep insertion order (first installed wins), matching OvS
// semantics closely enough for the benchmark.
func (s *Switch) AddRule(r Rule) {
	idx := len(s.rules)
	for i, existing := range s.rules {
		if r.Priority > existing.Priority {
			idx = i
			break
		}
	}
	s.rules = append(s.rules, Rule{})
	copy(s.rules[idx+1:], s.rules[idx:])
	s.rules[idx] = r
	// A new rule can shadow cached decisions; OvS revalidates, we flush.
	s.FlushCache()
}

// NumRules returns the classifier size.
func (s *Switch) NumRules() int { return len(s.rules) }

// FlushCache clears the megaflow cache.
func (s *Switch) FlushCache() {
	s.megaflow = make(map[FiveTuple]Action)
}

// CacheLen returns the megaflow cache occupancy.
func (s *Switch) CacheLen() int { return len(s.megaflow) }

// Classify runs the full lookup: fast path first, slow path on miss with
// megaflow installation. Unmatched packets drop (OvS default for a
// table-miss with no controller).
func (s *Switch) Classify(k FiveTuple) Action {
	if a, ok := s.megaflow[k]; ok {
		s.hits++
		return a
	}
	s.misses++
	a := s.slowPath(k)
	if s.CacheCapacity == 0 || len(s.megaflow) < s.CacheCapacity {
		s.megaflow[k] = a
	}
	if a.OutPort < 0 {
		s.drops++
	}
	return a
}

func (s *Switch) slowPath(k FiveTuple) Action {
	for i := range s.rules {
		if s.rules[i].Matches(k) {
			return s.rules[i].Action
		}
	}
	return Drop
}

// Hits, Misses and Drops expose datapath counters.
func (s *Switch) Hits() uint64   { return s.hits }
func (s *Switch) Misses() uint64 { return s.misses }
func (s *Switch) Drops() uint64  { return s.drops }

// HitRate returns fast-path hit fraction.
func (s *Switch) HitRate() float64 {
	total := s.hits + s.misses
	if total == 0 {
		return 0
	}
	return float64(s.hits) / float64(total)
}

func (s *Switch) String() string {
	return fmt.Sprintf("ovs(%d rules, %d megaflows, %.1f%% hit)",
		len(s.rules), len(s.megaflow), s.HitRate()*100)
}

// GenForwardingRules installs a typical multi-tenant rule set: nTenants
// subnets each forwarded to a port, plus a low-priority drop-all. Returns
// flow keys that exercise every tenant for traffic generation.
func GenForwardingRules(s *Switch, nTenants int) []FiveTuple {
	keys := make([]FiveTuple, 0, nTenants)
	for i := 0; i < nTenants; i++ {
		subnet := uint32(0x0a000000 | i<<16) // 10.i.0.0/16
		s.AddRule(Rule{
			Priority: 100,
			Match:    FiveTuple{DstIP: subnet},
			Mask:     FiveTuple{DstIP: 0xffff0000},
			Action:   Action{OutPort: i % 8},
		})
		keys = append(keys, FiveTuple{
			SrcIP: 0xc0a80001, DstIP: subnet | 0x0101,
			SrcPort: 12345, DstPort: 80, Proto: ProtoTCP,
		})
	}
	s.AddRule(Rule{Priority: 0, Action: Drop}) // wildcard-all drop
	return keys
}

// PaperLoads are the Table 3 traffic-load configurations (fractions of
// the 100 Gb/s line rate, MTU packets).
var PaperLoads = []float64{0.10, 1.00}
