package ovs

import (
	"testing"

	"repro/internal/sim"
)

func TestExactRuleMatch(t *testing.T) {
	s := NewSwitch()
	k := FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: ProtoTCP}
	s.AddRule(Rule{
		Priority: 10, Match: k,
		Mask:   FiveTuple{SrcIP: ^uint32(0), DstIP: ^uint32(0), SrcPort: ^uint16(0), DstPort: ^uint16(0), Proto: ^Proto(0)},
		Action: Action{OutPort: 7},
	})
	if a := s.Classify(k); a.OutPort != 7 {
		t.Fatalf("action = %+v", a)
	}
	other := k
	other.DstPort = 99
	if a := s.Classify(other); a.OutPort != -1 {
		t.Fatalf("non-matching packet forwarded: %+v", a)
	}
}

func TestWildcardMatch(t *testing.T) {
	s := NewSwitch()
	// Forward everything to 10.5.0.0/16 regardless of ports.
	s.AddRule(Rule{
		Priority: 10,
		Match:    FiveTuple{DstIP: 0x0a050000},
		Mask:     FiveTuple{DstIP: 0xffff0000},
		Action:   Action{OutPort: 3},
	})
	for _, dst := range []uint32{0x0a050001, 0x0a05ffff} {
		if a := s.Classify(FiveTuple{DstIP: dst, SrcPort: uint16(dst)}); a.OutPort != 3 {
			t.Fatalf("subnet member %x not forwarded", dst)
		}
	}
	if a := s.Classify(FiveTuple{DstIP: 0x0a060001}); a.OutPort != -1 {
		t.Fatal("outside subnet forwarded")
	}
}

func TestPriorityOrdering(t *testing.T) {
	s := NewSwitch()
	anyMask := FiveTuple{}
	s.AddRule(Rule{Priority: 1, Mask: anyMask, Action: Action{OutPort: 1}})
	s.AddRule(Rule{Priority: 100, Mask: anyMask, Action: Action{OutPort: 2}})
	if a := s.Classify(FiveTuple{}); a.OutPort != 2 {
		t.Fatalf("high-priority rule lost: %+v", a)
	}
}

func TestMegaflowCache(t *testing.T) {
	s := NewSwitch()
	GenForwardingRules(s, 4)
	k := FiveTuple{DstIP: 0x0a000101, Proto: ProtoTCP}
	s.Classify(k)
	if s.Misses() != 1 || s.Hits() != 0 {
		t.Fatalf("first lookup: hits=%d misses=%d", s.Hits(), s.Misses())
	}
	for i := 0; i < 9; i++ {
		s.Classify(k)
	}
	if s.Hits() != 9 {
		t.Fatalf("cache hits = %d, want 9", s.Hits())
	}
	if s.HitRate() != 0.9 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
}

func TestRuleInstallFlushesCache(t *testing.T) {
	s := NewSwitch()
	anyMask := FiveTuple{}
	s.AddRule(Rule{Priority: 1, Mask: anyMask, Action: Action{OutPort: 1}})
	k := FiveTuple{SrcIP: 42}
	s.Classify(k)
	if s.CacheLen() != 1 {
		t.Fatal("megaflow not installed")
	}
	// A higher-priority rule must not be shadowed by the stale cache.
	s.AddRule(Rule{Priority: 50, Mask: anyMask, Action: Action{OutPort: 9}})
	if a := s.Classify(k); a.OutPort != 9 {
		t.Fatalf("stale megaflow served after rule install: %+v", a)
	}
}

func TestCacheCapacity(t *testing.T) {
	s := NewSwitch()
	s.AddRule(Rule{Priority: 1, Action: Action{OutPort: 1}})
	s.CacheCapacity = 10
	for i := uint32(0); i < 100; i++ {
		s.Classify(FiveTuple{SrcIP: i})
	}
	if s.CacheLen() > 10 {
		t.Fatalf("cache grew to %d past capacity", s.CacheLen())
	}
}

func TestDefaultDropAndCounters(t *testing.T) {
	s := NewSwitch()
	if a := s.Classify(FiveTuple{DstIP: 5}); a.OutPort != -1 {
		t.Fatal("empty switch must drop")
	}
	if s.Drops() != 1 {
		t.Fatalf("drops = %d", s.Drops())
	}
}

func TestGenForwardingRules(t *testing.T) {
	s := NewSwitch()
	keys := GenForwardingRules(s, 16)
	if len(keys) != 16 {
		t.Fatalf("keys = %d", len(keys))
	}
	if s.NumRules() != 17 { // 16 tenants + drop-all
		t.Fatalf("rules = %d", s.NumRules())
	}
	for i, k := range keys {
		a := s.Classify(k)
		if a.OutPort != i%8 {
			t.Fatalf("tenant %d routed to %d", i, a.OutPort)
		}
	}
}

// Property: classification is deterministic and cache-transparent — the
// cached answer always equals the slow-path answer.
func TestCacheTransparencyProperty(t *testing.T) {
	s := NewSwitch()
	GenForwardingRules(s, 8)
	r := sim.NewRNG(5)
	for i := 0; i < 5000; i++ {
		k := FiveTuple{
			SrcIP: uint32(r.Uint64()), DstIP: 0x0a000000 | uint32(r.Uint64n(1<<20)),
			SrcPort: uint16(r.Uint64()), DstPort: uint16(r.Uint64()),
			Proto: Proto(r.Uint64n(2))*11 + 6,
		}
		first := s.Classify(k)  // may be slow path
		second := s.Classify(k) // cached
		if first != second {
			t.Fatalf("cache changed decision for %+v: %+v vs %+v", k, first, second)
		}
	}
	if s.HitRate() < 0.4 {
		t.Fatalf("hit rate %v implausibly low for repeated keys", s.HitRate())
	}
}

func TestPaperLoads(t *testing.T) {
	if PaperLoads[0] != 0.10 || PaperLoads[1] != 1.00 {
		t.Fatal("paper evaluates 10% and 100% traffic loads")
	}
}
