package mem

import (
	"testing"
	"testing/quick"
)

func TestPeakBandwidths(t *testing.T) {
	// Server: 6 ch × 2666 MT/s × 8 B = 127.97 GB/s.
	if bw := ServerDDR4().PeakBytesPerSec(); bw < 127e9 || bw > 129e9 {
		t.Errorf("server peak = %v, want ~128 GB/s", bw)
	}
	// SNIC: 1 ch × 3200 MT/s × 8 B = 25.6 GB/s.
	if bw := BlueField2DDR4().PeakBytesPerSec(); bw != 25.6e9 {
		t.Errorf("SNIC peak = %v, want 25.6 GB/s", bw)
	}
}

func TestCapacitiesMatchPaper(t *testing.T) {
	if BlueField2DDR4().CapacityB != 16<<30 {
		t.Error("SNIC memory must be 16 GB (Table 1)")
	}
	if ServerDDR4().CapacityB != 128<<30 {
		t.Error("server memory must be 128 GB (Table 2)")
	}
}

func TestPenaltyZeroIntensity(t *testing.T) {
	if p := BlueField2DDR4().Penalty(0, 1<<30, 6<<20); p != 1.0 {
		t.Fatalf("zero intensity penalty = %v, want 1.0", p)
	}
}

func TestPenaltySNICWorseThanHost(t *testing.T) {
	ws := int64(64 << 20)
	hostLLC := int64(24750 * 1024)
	snicLLC := int64(6 << 20)
	h := ServerDDR4().Penalty(0.5, ws, hostLLC)
	s := BlueField2DDR4().Penalty(0.5, ws, snicLLC)
	if s <= h {
		t.Fatalf("SNIC penalty %v must exceed host %v for a memory-bound workload", s, h)
	}
	if h < 1.0 {
		t.Fatalf("penalty below 1.0: %v", h)
	}
}

func TestPenaltyReferenceIsNeutral(t *testing.T) {
	// The server subsystem with a cache-resident working set pays nothing.
	if p := ServerDDR4().Penalty(1.0, 1<<20, 24750*1024); p != 1.0 {
		t.Fatalf("reference penalty = %v, want 1.0", p)
	}
}

// Property: penalty is >= 1, and monotone in intensity.
func TestPenaltyMonotoneProperty(t *testing.T) {
	f := func(wsMB uint16) bool {
		ws := int64(wsMB)<<20 + 1
		spec := BlueField2DDR4()
		prev := 0.0
		for _, in := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
			p := spec.Penalty(in, ws, 6<<20)
			if p < 1.0 || p < prev {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPenaltyBadIntensityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("intensity > 1 did not panic")
		}
	}()
	ServerDDR4().Penalty(1.5, 0, 0)
}
