// Package mem models the memory subsystems of paper Tables 1 and 2: the
// server's 8-DIMM DDR4-2666 six-channel configuration versus the
// BlueField-2's single-package 16 GB DDR4-3200 onboard DRAM.
//
// The paper attributes part of the host's advantage to being "backed by a
// more powerful memory subsystem" (Key Observation 2). We capture that as
// a multiplicative service-time penalty that grows with a workload's
// memory intensity and with how badly its working set overflows the LLC.
package mem

import "fmt"

// Spec describes a memory subsystem.
type Spec struct {
	Name      string
	Channels  int
	MTps      int     // mega-transfers/s per channel (DDR4-2666 => 2666)
	CapacityB int64   // total capacity in bytes
	LatencyNs float64 // idle random-access latency
}

// PeakBytesPerSec returns the theoretical peak bandwidth (8 bytes per
// transfer per channel).
func (s *Spec) PeakBytesPerSec() float64 {
	return float64(s.Channels) * float64(s.MTps) * 1e6 * 8
}

func (s *Spec) String() string {
	return fmt.Sprintf("%s (%d ch × DDR4-%d, %.1f GB/s peak)",
		s.Name, s.Channels, s.MTps, s.PeakBytesPerSec()/1e9)
}

// ServerDDR4 returns the host configuration of Table 2: 128 GB DDR4-2666,
// 8 DIMMs over 6 channels.
func ServerDDR4() *Spec {
	return &Spec{
		Name:      "Server DDR4-2666 x6ch",
		Channels:  6,
		MTps:      2666,
		CapacityB: 128 << 30,
		LatencyNs: 85,
	}
}

// BlueField2DDR4 returns the SNIC's onboard memory of Table 1: 16 GB
// DDR4-3200 on a single package channel.
func BlueField2DDR4() *Spec {
	return &Spec{
		Name:      "BlueField-2 onboard DDR4-3200",
		Channels:  1,
		MTps:      3200,
		CapacityB: 16 << 30,
		LatencyNs: 110,
	}
}

// ClientDDR4 returns the client configuration of Table 2.
func ClientDDR4() *Spec {
	return &Spec{
		Name:      "Client DDR4-1866 x4ch",
		Channels:  4,
		MTps:      1866,
		CapacityB: 32 << 30,
		LatencyNs: 90,
	}
}

// Penalty returns the multiplicative slow-down a workload suffers on this
// memory subsystem relative to an ideal (infinite-bandwidth) one.
//
// intensity in [0,1] is the fraction of the workload's time that is
// memory-bound; workingSet is its resident bytes; llcBytes the cache
// behind it. A workload that fits in cache pays only latency-weight
// intensity; one that streams pays bandwidth-scaled intensity. The paper
// notes its benchmarks "do not exhibit notable performance sensitivity to
// cache capacity since they serve either streaming or random memory
// accesses" — the model honours that by keeping the cache term gentle.
func (s *Spec) Penalty(intensity float64, workingSet int64, llcBytes int64) float64 {
	if intensity < 0 || intensity > 1 {
		panic(fmt.Sprintf("mem: intensity %v out of [0,1]", intensity))
	}
	if intensity == 0 {
		return 1.0
	}
	// A cache-resident working set never leaves the LLC: DRAM bandwidth
	// is irrelevant and the subsystem difference disappears.
	if llcBytes > 0 && workingSet <= llcBytes {
		return 1.0
	}
	// Bandwidth term: normalize against the server subsystem as 1.0,
	// capped at 2.5 — per-request access streams are latency-limited
	// long before they expose the full 5× channel-count gap.
	ref := ServerDDR4().PeakBytesPerSec()
	bw := s.PeakBytesPerSec()
	bwTerm := ref / bw
	if bwTerm < 1 {
		bwTerm = 1 // a faster subsystem never penalizes
	}
	if bwTerm > 2.5 {
		bwTerm = 2.5
	}
	// Cache-overflow term: a working set spilling the LLC pays extra
	// latency trips, saturating at 1.35x.
	over := float64(workingSet-llcBytes) / float64(workingSet)
	cacheTerm := 1 + 0.35*over
	return 1 + intensity*(bwTerm*cacheTerm-1)
}
