// Package fault is the deterministic fault-injection layer of the
// testbed: a virtual-time-scheduled plan of component degradations that
// the discrete-event engine replays bit-identically for a given seed.
//
// The paper's §5.3 strategies implicitly assume the SNIC datapath is
// always healthy, but BlueField-class hardware studies (Liu et al.,
// "Performance Characteristics of the BlueField-2 SmartNIC"; the DPA
// off-path characterizations) report engine stalls, saturation cliffs and
// thermal throttling in steady operation. This package supplies the
// machinery to ask what those events do to SLO and energy efficiency:
// accelerator crashes/stalls/degradation, link flaps and rate caps, SNIC
// or host core throttling, and power-sensor dropouts, each injected at a
// planned virtual time and cleared after a planned window.
//
// Components expose small capability interfaces (Engine, Link, Pool,
// Sensor) that the real models in internal/accel, internal/nic,
// internal/cpu and internal/power already satisfy; a Registry binds plan
// target names to components, and Plan.Arm schedules the begin/end
// transitions on the simulation engine.
package fault

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Kind names a fault class.
type Kind int

const (
	// EngineCrash: the accelerator engine rejects submissions (typed
	// error) until the window ends and the driver reset runs.
	EngineCrash Kind = iota
	// EngineStall: the engine accepts work but retires nothing for the
	// window (pipeline wedge).
	EngineStall
	// EngineDegrade: the engine's service rate drops to Factor × nominal
	// for the window.
	EngineDegrade
	// LinkFlap: the link loses carrier; frames in the window are lost.
	LinkFlap
	// LinkRateCap: the link renegotiates to Factor × nominal rate.
	LinkRateCap
	// CoreThrottle: the CPU pool's frequency drops to Factor × base.
	CoreThrottle
	// SensorDropout: the power sensor records nothing for the window.
	SensorDropout
)

func (k Kind) String() string {
	switch k {
	case EngineCrash:
		return "engine-crash"
	case EngineStall:
		return "engine-stall"
	case EngineDegrade:
		return "engine-degrade"
	case LinkFlap:
		return "link-flap"
	case LinkRateCap:
		return "link-rate-cap"
	case CoreThrottle:
		return "core-throttle"
	case SensorDropout:
		return "sensor-dropout"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one planned fault: Kind hits Target at At and clears after For.
// Factor carries the degradation magnitude for the *Degrade/*Cap/Throttle
// kinds and is ignored by the binary kinds.
type Event struct {
	At     sim.Time
	For    sim.Duration
	Kind   Kind
	Target string
	Factor float64
}

// End returns the instant the fault clears.
func (e Event) End() sim.Time { return e.At.Add(e.For) }

func (e Event) String() string {
	s := fmt.Sprintf("%v on %q at %v for %v", e.Kind, e.Target, e.At, e.For)
	if e.Factor > 0 {
		s += fmt.Sprintf(" (factor %.2f)", e.Factor)
	}
	return s
}

// Plan is an ordered set of fault events. The zero value is a fault-free
// plan; experiments use it as the baseline.
type Plan struct {
	Events []Event
}

// Add appends an event and returns the plan for chaining.
func (p *Plan) Add(ev Event) *Plan {
	p.Events = append(p.Events, ev)
	return p
}

// Empty reports whether the plan injects anything.
func (p *Plan) Empty() bool { return len(p.Events) == 0 }

// Start returns the earliest fault onset (0 for an empty plan).
func (p *Plan) Start() sim.Time {
	if len(p.Events) == 0 {
		return 0
	}
	start := p.Events[0].At
	for _, ev := range p.Events[1:] {
		if ev.At < start {
			start = ev.At
		}
	}
	return start
}

// End returns the instant the last fault clears (0 for an empty plan).
// Experiments use it to split completions into fault-era and post-fault
// populations without running the plan first.
func (p *Plan) End() sim.Time {
	var end sim.Time
	for _, ev := range p.Events {
		if t := ev.End(); t > end {
			end = t
		}
	}
	return end
}

// ---- Component capability interfaces ----

// Engine is the accelerator-side fault surface (accel.ByteEngine and
// accel.PKAEngine satisfy it).
type Engine interface {
	Fail()
	Recover()
	Stall(until sim.Time)
	SetRateFactor(f float64)
}

// Link is the wire/link fault surface (nic.Wire and sim.Link satisfy it).
type Link interface {
	SetDown(down bool)
	SetRateFactor(f float64)
}

// Pool is the CPU fault surface (cpu.Pool satisfies it).
type Pool interface {
	SetThrottle(f float64)
}

// Sensor is the instrumentation fault surface (power.Sensor satisfies it).
type Sensor interface {
	DropUntil(t sim.Time)
}

// Registry binds plan target names to injectable components. Each name
// lives in the namespace of its kind: an engine and a link may share a
// name without colliding.
type Registry struct {
	engines map[string]Engine
	links   map[string]Link
	pools   map[string]Pool
	sensors map[string]Sensor
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		engines: make(map[string]Engine),
		links:   make(map[string]Link),
		pools:   make(map[string]Pool),
		sensors: make(map[string]Sensor),
	}
}

// AddEngine registers an accelerator engine under name.
func (r *Registry) AddEngine(name string, e Engine) *Registry {
	r.engines[name] = e
	return r
}

// AddLink registers a link/wire under name.
func (r *Registry) AddLink(name string, l Link) *Registry {
	r.links[name] = l
	return r
}

// AddPool registers a CPU pool under name.
func (r *Registry) AddPool(name string, p Pool) *Registry {
	r.pools[name] = p
	return r
}

// AddSensor registers a power sensor under name.
func (r *Registry) AddSensor(name string, s Sensor) *Registry {
	r.sensors[name] = s
	return r
}

// Transition is one applied or cleared fault, for deterministic reports.
type Transition struct {
	At    sim.Time
	Event Event
	Begin bool // true at fault onset, false at clear
}

func (t Transition) String() string {
	verb := "clear"
	if t.Begin {
		verb = "begin"
	}
	return fmt.Sprintf("%v %s %v on %q", t.At, verb, t.Event.Kind, t.Event.Target)
}

// Log records the plan's transitions as they execute and tracks how many
// faults are concurrently active — experiments use ActiveFaults to split
// completions into fault-window and clean populations.
type Log struct {
	Transitions []Transition
	active      int
}

// ActiveFaults returns the number of currently active fault windows.
func (l *Log) ActiveFaults() int { return l.active }

// Arm schedules every event's begin and clear transitions on eng against
// the registry's components and returns the live log. onChange, if
// non-nil, fires after each transition is applied — experiments hook it to
// timestamp fault windows. An event naming an unregistered target panics
// at Arm time: a plan aimed at nothing is a configuration bug, and failing
// at injection time would be silent until the report looked wrong.
func (p *Plan) Arm(eng *sim.Engine, reg *Registry, onChange func(Transition)) *Log {
	log := &Log{}
	for _, ev := range p.Events {
		ev := ev
		begin, clear := reg.actions(ev)
		note := func(tr Transition) {
			log.Transitions = append(log.Transitions, tr)
			if tr.Begin {
				log.active++
			} else {
				log.active--
			}
			if onChange != nil {
				onChange(tr)
			}
		}
		eng.At(ev.At, func() {
			begin()
			note(Transition{At: eng.Now(), Event: ev, Begin: true})
		})
		eng.At(ev.End(), func() {
			clear()
			note(Transition{At: eng.Now(), Event: ev, Begin: false})
		})
	}
	return log
}

// actions resolves an event to its begin/clear closures, panicking on an
// unknown target or a kind/factor mismatch.
func (r *Registry) actions(ev Event) (begin, clear func()) {
	needFactor := func() {
		if ev.Factor <= 0 || ev.Factor > 1 {
			panic(fmt.Sprintf("fault: %v needs a factor in (0,1], got %v", ev.Kind, ev.Factor))
		}
	}
	switch ev.Kind {
	case EngineCrash:
		e := r.engine(ev)
		return e.Fail, e.Recover
	case EngineStall:
		e := r.engine(ev)
		return func() { e.Stall(ev.End()) }, func() {}
	case EngineDegrade:
		needFactor()
		e := r.engine(ev)
		return func() { e.SetRateFactor(ev.Factor) }, func() { e.SetRateFactor(1) }
	case LinkFlap:
		l := r.link(ev)
		return func() { l.SetDown(true) }, func() { l.SetDown(false) }
	case LinkRateCap:
		needFactor()
		l := r.link(ev)
		return func() { l.SetRateFactor(ev.Factor) }, func() { l.SetRateFactor(1) }
	case CoreThrottle:
		needFactor()
		pl := r.pool(ev)
		return func() { pl.SetThrottle(ev.Factor) }, func() { pl.SetThrottle(1) }
	case SensorDropout:
		s := r.sensor(ev)
		return func() { s.DropUntil(ev.End()) }, func() {}
	default:
		panic(fmt.Sprintf("fault: unknown kind %v", ev.Kind))
	}
}

func (r *Registry) engine(ev Event) Engine {
	e, ok := r.engines[ev.Target]
	if !ok {
		panic(fmt.Sprintf("fault: %v targets unregistered engine %q", ev.Kind, ev.Target))
	}
	return e
}

func (r *Registry) link(ev Event) Link {
	l, ok := r.links[ev.Target]
	if !ok {
		panic(fmt.Sprintf("fault: %v targets unregistered link %q", ev.Kind, ev.Target))
	}
	return l
}

func (r *Registry) pool(ev Event) Pool {
	p, ok := r.pools[ev.Target]
	if !ok {
		panic(fmt.Sprintf("fault: %v targets unregistered pool %q", ev.Kind, ev.Target))
	}
	return p
}

func (r *Registry) sensor(ev Event) Sensor {
	s, ok := r.sensors[ev.Target]
	if !ok {
		panic(fmt.Sprintf("fault: %v targets unregistered sensor %q", ev.Kind, ev.Target))
	}
	return s
}

// ---- Seeded plan generation ----

// RandomPlanConfig parameterizes NewRandomPlan. Targets absent from a
// category simply exclude that category's kinds from the draw.
type RandomPlanConfig struct {
	Seed uint64
	// Horizon bounds event onset times; windows may run past it.
	Horizon sim.Duration
	// Events is how many faults to draw.
	Events int
	// MaxWindow bounds each fault's duration.
	MaxWindow sim.Duration
	// MinFactor floors drawn degradation factors (degrade/cap/throttle
	// factors are drawn uniformly in [MinFactor, 1)).
	MinFactor float64

	Engines []string
	Links   []string
	Pools   []string
	Sensors []string
}

// NewRandomPlan draws a seeded fault plan: same config, same plan, byte
// for byte. Soak tests use it to stress the failover machinery with
// arbitrary-but-reproducible fault mixes. Drawn plans always pass
// Validate: windows of the same kind on the same target never overlap
// (onsets are redrawn a bounded number of times; an unplaceable event is
// skipped, so a saturated timeline may yield slightly fewer than
// cfg.Events faults).
func NewRandomPlan(cfg RandomPlanConfig) Plan {
	if cfg.Events <= 0 || cfg.Horizon <= 0 {
		panic("fault: random plan needs positive events and horizon")
	}
	if cfg.MaxWindow <= 0 {
		cfg.MaxWindow = cfg.Horizon / 10
	}
	if cfg.MinFactor <= 0 || cfg.MinFactor > 1 {
		cfg.MinFactor = 0.3
	}
	var kinds []Kind
	if len(cfg.Engines) > 0 {
		kinds = append(kinds, EngineCrash, EngineStall, EngineDegrade)
	}
	if len(cfg.Links) > 0 {
		kinds = append(kinds, LinkFlap, LinkRateCap)
	}
	if len(cfg.Pools) > 0 {
		kinds = append(kinds, CoreThrottle)
	}
	if len(cfg.Sensors) > 0 {
		kinds = append(kinds, SensorDropout)
	}
	if len(kinds) == 0 {
		panic("fault: random plan has no targets")
	}
	r := sim.NewRNG(cfg.Seed)
	var p Plan
	for i := 0; i < cfg.Events; i++ {
		k := kinds[r.Intn(len(kinds))]
		ev := Event{
			For:  1 + sim.Duration(r.Uint64n(uint64(cfg.MaxWindow))),
			Kind: k,
		}
		switch k {
		case EngineCrash, EngineStall, EngineDegrade:
			ev.Target = cfg.Engines[r.Intn(len(cfg.Engines))]
		case LinkFlap, LinkRateCap:
			ev.Target = cfg.Links[r.Intn(len(cfg.Links))]
		case CoreThrottle:
			ev.Target = cfg.Pools[r.Intn(len(cfg.Pools))]
		case SensorDropout:
			ev.Target = cfg.Sensors[r.Intn(len(cfg.Sensors))]
		}
		if needsFactor(k) {
			ev.Factor = cfg.MinFactor + (1-cfg.MinFactor)*r.Float64()
		}
		// Draw an onset that does not overlap an already-drawn window of
		// the same kind and target — Validate rejects such plans, and a
		// clear racing another window's hold would be meaningless anyway.
		// Deterministic redraw, bounded so a saturated timeline cannot
		// spin forever; on exhaustion the event is skipped.
		placed := false
		for try := 0; try < 32 && !placed; try++ {
			ev.At = sim.Time(r.Uint64n(uint64(cfg.Horizon)))
			placed = true
			for _, prev := range p.Events {
				if prev.Kind == ev.Kind && prev.Target == ev.Target &&
					prev.At < ev.End() && ev.At < prev.End() {
					placed = false
					break
				}
			}
		}
		if placed {
			p.Add(ev)
		}
	}
	// Sort by onset so plans read chronologically; Arm does not care, but
	// humans inspecting a report do.
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
	return p
}
