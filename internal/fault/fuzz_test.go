package fault

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

// FuzzPlanValidate feeds Validate arbitrary byte-derived plans: it must
// never panic, must be idempotent, and must accept exactly the plans
// whose events are individually sane and pairwise non-overlapping.
func FuzzPlanValidate(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{255, 255, 255, 0, 0, 0})
	f.Add([]byte{})

	targets := []string{"comp", "pka", "wire", "bus", "host", "snic", "power"}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 96 {
			data = data[:96]
		}
		var p Plan
		// Six bytes per event: onset, window, kind, target, factor, sign.
		for i := 0; i+6 <= len(data); i += 6 {
			ev := Event{
				At:     sim.Time(int64(data[i]) * 1000),
				For:    sim.Duration(int64(data[i+1]) * 1000),
				Kind:   Kind(int(data[i+2]) % 8), // includes one out-of-range kind
				Target: targets[int(data[i+3])%len(targets)],
				Factor: float64(data[i+4]) / 128, // spans 0..~2, straddling (0,1]
			}
			if data[i+5]%16 == 0 {
				ev.At = -ev.At // occasionally negative onsets
			}
			if data[i+5]%16 == 1 {
				ev.For = -ev.For
			}
			p.Add(ev)
		}
		horizon := sim.Time(128_000)
		err := p.Validate(horizon)
		if err2 := p.Validate(horizon); (err == nil) != (err2 == nil) {
			t.Fatalf("Validate not idempotent: %v then %v", err, err2)
		}
		if err != nil {
			var pe *PlanError
			if !errors.As(err, &pe) {
				t.Fatalf("rejection is %T, want *PlanError", err)
			}
			if pe.Index < 0 || pe.Index >= len(p.Events) {
				t.Fatalf("rejection index %d out of range (%d events)", pe.Index, len(p.Events))
			}
			return
		}
		// Accepted: re-derive the laws independently.
		for i, ev := range p.Events {
			if ev.At < 0 || ev.For <= 0 || ev.At > horizon {
				t.Fatalf("accepted out-of-range event %d: %v", i, ev)
			}
			if needsFactor(ev.Kind) && (ev.Factor <= 0 || ev.Factor > 1) {
				t.Fatalf("accepted bad factor on event %d: %v", i, ev)
			}
			for j := i + 1; j < len(p.Events); j++ {
				b := p.Events[j]
				if ev.Kind == b.Kind && ev.Target == b.Target &&
					ev.At < b.End() && b.At < ev.End() {
					t.Fatalf("accepted overlap between events %d and %d", i, j)
				}
			}
		}
	})
}
