package fault

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestValidateRejections(t *testing.T) {
	ms := sim.Duration(1_000_000)
	cases := []struct {
		name   string
		plan   Plan
		reason string
		index  int
	}{
		{"negative onset",
			*(&Plan{}).Add(Event{At: -1, For: ms, Kind: LinkFlap, Target: "wire"}),
			"before time zero", 0},
		{"zero window",
			*(&Plan{}).Add(Event{At: 0, For: 0, Kind: LinkFlap, Target: "wire"}),
			"non-positive fault window", 0},
		{"negative window",
			*(&Plan{}).Add(Event{At: 0, For: -1, Kind: EngineCrash, Target: "comp"}),
			"non-positive fault window", 0},
		{"onset past horizon",
			*(&Plan{}).Add(Event{At: sim.Time(20 * ms), For: ms, Kind: LinkFlap, Target: "wire"}),
			"past run horizon", 0},
		{"factor zero",
			*(&Plan{}).Add(Event{At: 0, For: ms, Kind: EngineDegrade, Target: "comp", Factor: 0}),
			"outside (0,1]", 0},
		{"factor above one",
			*(&Plan{}).Add(Event{At: 0, For: ms, Kind: CoreThrottle, Target: "host", Factor: 1.5}),
			"outside (0,1]", 0},
		{"overlapping windows",
			*(&Plan{}).
				Add(Event{At: 0, For: 10 * ms, Kind: LinkFlap, Target: "wire"}).
				Add(Event{At: sim.Time(5 * ms), For: ms, Kind: LinkFlap, Target: "wire"}),
			"overlaps event 0", 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate(sim.Time(10 * ms))
			var pe *PlanError
			if !errors.As(err, &pe) {
				t.Fatalf("Validate = %v, want *PlanError", err)
			}
			if !strings.Contains(pe.Reason, tc.reason) {
				t.Fatalf("reason %q, want substring %q", pe.Reason, tc.reason)
			}
			if pe.Index != tc.index {
				t.Fatalf("index = %d, want %d", pe.Index, tc.index)
			}
		})
	}
}

func TestValidateAccepts(t *testing.T) {
	ms := sim.Duration(1_000_000)
	p := (&Plan{}).
		Add(Event{At: 0, For: 2 * ms, Kind: LinkFlap, Target: "wire"}).
		// Same window instants, different target: no conflict.
		Add(Event{At: 0, For: 2 * ms, Kind: LinkFlap, Target: "bus"}).
		// Same target, different kind: no conflict.
		Add(Event{At: 0, For: 2 * ms, Kind: LinkRateCap, Target: "wire", Factor: 0.5}).
		Add(Event{At: sim.Time(5 * ms), For: ms, Kind: EngineDegrade, Target: "comp", Factor: 1}) // factor 1 is the boundary
	if err := p.Validate(sim.Time(10 * ms)); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if err := p.Validate(0); err != nil {
		t.Fatalf("horizon 0 must skip the horizon check: %v", err)
	}
	if err := (&Plan{}).Validate(sim.Time(ms)); err != nil {
		t.Fatalf("empty plan rejected: %v", err)
	}
}

// Windows are half-open: a window starting the instant its predecessor
// clears is back-to-back, not overlapping.
func TestValidateBackToBackWindows(t *testing.T) {
	ms := sim.Duration(1_000_000)
	first := Event{At: 0, For: 2 * ms, Kind: LinkFlap, Target: "wire"}
	p := (&Plan{}).
		Add(first).
		Add(Event{At: first.End(), For: ms, Kind: LinkFlap, Target: "wire"})
	if err := p.Validate(sim.Time(10 * ms)); err != nil {
		t.Fatalf("back-to-back windows rejected: %v", err)
	}
}

// NewRandomPlan promises every drawn plan passes Validate.
func TestRandomPlansAlwaysValidate(t *testing.T) {
	for seed := uint64(0); seed < 40; seed++ {
		cfg := RandomPlanConfig{
			Seed:    seed,
			Horizon: sim.Duration(50_000_000),
			Events:  12,
			// A tight window budget forces redraws on a crowded timeline.
			MaxWindow: sim.Duration(20_000_000),
			Engines:   []string{"comp"},
			Links:     []string{"wire"},
			Pools:     []string{"host"},
			Sensors:   []string{"power"},
		}
		p := NewRandomPlan(cfg)
		if err := p.Validate(0); err != nil {
			t.Fatalf("seed %d drew an invalid plan: %v", seed, err)
		}
		if len(p.Events) == 0 {
			t.Fatalf("seed %d drew an empty plan", seed)
		}
	}
}
