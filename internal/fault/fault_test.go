package fault

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/accel"
	"repro/internal/sim"
)

// fake components record the calls the plan makes against them.
type fakeEngine struct {
	failed, recovered int
	stalledUntil      sim.Time
	rate              float64
}

func (f *fakeEngine) Fail()                 { f.failed++ }
func (f *fakeEngine) Recover()              { f.recovered++ }
func (f *fakeEngine) Stall(t sim.Time)      { f.stalledUntil = t }
func (f *fakeEngine) SetRateFactor(v float64) { f.rate = v }

type fakeLink struct {
	down bool
	rate float64
}

func (f *fakeLink) SetDown(d bool)           { f.down = d }
func (f *fakeLink) SetRateFactor(v float64)  { f.rate = v }

type fakePool struct{ throttle float64 }

func (f *fakePool) SetThrottle(v float64) { f.throttle = v }

type fakeSensor struct{ dropUntil sim.Time }

func (f *fakeSensor) DropUntil(t sim.Time) { f.dropUntil = t }

func TestPlanArmAppliesAndClearsInVirtualTime(t *testing.T) {
	eng := sim.NewEngine()
	fe := &fakeEngine{}
	fl := &fakeLink{}
	fp := &fakePool{}
	fs := &fakeSensor{}
	reg := NewRegistry().
		AddEngine("rem", fe).AddLink("wire", fl).
		AddPool("staging", fp).AddSensor("bmc", fs)

	var p Plan
	p.Add(Event{At: 100, For: 50, Kind: EngineCrash, Target: "rem"})
	p.Add(Event{At: 200, For: 30, Kind: LinkFlap, Target: "wire"})
	p.Add(Event{At: 300, For: 40, Kind: CoreThrottle, Target: "staging", Factor: 0.5})
	p.Add(Event{At: 400, For: 60, Kind: SensorDropout, Target: "bmc"})
	p.Add(Event{At: 500, For: 25, Kind: EngineStall, Target: "rem"})
	p.Add(Event{At: 600, For: 20, Kind: EngineDegrade, Target: "rem", Factor: 0.7})
	p.Add(Event{At: 700, For: 10, Kind: LinkRateCap, Target: "wire", Factor: 0.25})

	log := p.Arm(eng, reg, nil)
	if p.End() != 710 {
		t.Fatalf("Plan.End() = %v, want 710", p.End())
	}

	eng.RunUntil(120)
	if fe.failed != 1 || fe.recovered != 0 {
		t.Fatalf("at t=120: failed=%d recovered=%d, want 1/0", fe.failed, fe.recovered)
	}
	if log.ActiveFaults() != 1 {
		t.Fatalf("at t=120: active = %d, want 1", log.ActiveFaults())
	}
	eng.RunUntil(210)
	if fe.recovered != 1 {
		t.Fatalf("engine crash did not clear at 150")
	}
	if !fl.down {
		t.Fatalf("link not down at t=210")
	}
	eng.RunUntil(320)
	if fl.down {
		t.Fatalf("link still down after flap window")
	}
	if fp.throttle != 0.5 {
		t.Fatalf("pool throttle = %v at t=320, want 0.5", fp.throttle)
	}
	eng.Run()
	if fp.throttle != 1 {
		t.Fatalf("pool throttle = %v at end, want restored to 1", fp.throttle)
	}
	if fs.dropUntil != 460 {
		t.Fatalf("sensor dropUntil = %v, want 460", fs.dropUntil)
	}
	if fe.stalledUntil != 525 {
		t.Fatalf("engine stalledUntil = %v, want 525", fe.stalledUntil)
	}
	if fe.rate != 1 {
		t.Fatalf("engine rate = %v at end, want restored to 1", fe.rate)
	}
	if fl.rate != 1 {
		t.Fatalf("link rate = %v at end, want restored to 1", fl.rate)
	}
	if log.ActiveFaults() != 0 {
		t.Fatalf("active = %d after all windows, want 0", log.ActiveFaults())
	}
	if len(log.Transitions) != 14 {
		t.Fatalf("logged %d transitions, want 14 (7 begin + 7 clear)", len(log.Transitions))
	}
}

func TestPlanArmUnknownTargetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arming a plan at an unregistered target did not panic")
		}
	}()
	var p Plan
	p.Add(Event{At: 1, For: 1, Kind: EngineCrash, Target: "nope"})
	p.Arm(sim.NewEngine(), NewRegistry(), nil)
}

// The plan must drive the real accelerator model end to end: reject while
// crashed, accept after recovery.
func TestPlanDrivesRealEngine(t *testing.T) {
	eng := sim.NewEngine()
	rem := accel.REMEngine(eng)
	reg := NewRegistry().AddEngine("rem", rem)
	var p Plan
	p.Add(Event{At: sim.Time(10 * sim.Microsecond), For: 20 * sim.Microsecond, Kind: EngineCrash, Target: "rem"})
	p.Arm(eng, reg, nil)

	var errAt, okAfter error
	eng.At(sim.Time(15*sim.Microsecond), func() {
		errAt = rem.Submit(1500, nil)
	})
	eng.At(sim.Time(40*sim.Microsecond), func() {
		okAfter = rem.Submit(1500, nil)
	})
	eng.Run()
	if !errors.Is(errAt, accel.ErrEngineDown) {
		t.Fatalf("submit during crash window: err = %v, want ErrEngineDown", errAt)
	}
	if okAfter != nil {
		t.Fatalf("submit after recovery: err = %v, want nil", okAfter)
	}
}

func TestRandomPlanIsDeterministic(t *testing.T) {
	cfg := RandomPlanConfig{
		Seed:    42,
		Horizon: sim.Duration(10 * sim.Millisecond),
		Events:  32,
		Engines: []string{"rem", "deflate"},
		Links:   []string{"wire"},
		Pools:   []string{"staging", "host"},
		Sensors: []string{"bmc"},
	}
	a, b := NewRandomPlan(cfg), NewRandomPlan(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	cfg.Seed = 43
	c := NewRandomPlan(cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i].At < a.Events[i-1].At {
			t.Fatal("plan events not sorted by onset")
		}
	}
	for _, ev := range a.Events {
		switch ev.Kind {
		case EngineDegrade, LinkRateCap, CoreThrottle:
			if ev.Factor <= 0 || ev.Factor > 1 {
				t.Fatalf("%v: factor %v outside (0,1]", ev, ev.Factor)
			}
		}
		if ev.For <= 0 {
			t.Fatalf("%v: non-positive window", ev)
		}
	}
}
