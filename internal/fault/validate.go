package fault

import (
	"fmt"

	"repro/internal/sim"
)

// PlanError is the typed rejection a malformed plan fails with at
// construction time, before anything is armed on an engine.
type PlanError struct {
	// Index is the offending event's position in Plan.Events.
	Index  int
	Event  Event
	Reason string
}

// Error implements error.
func (e *PlanError) Error() string {
	return fmt.Sprintf("fault: invalid plan event %d (%v): %s", e.Index, e.Event, e.Reason)
}

// needsFactor reports whether the kind carries a degradation factor.
func needsFactor(k Kind) bool {
	switch k {
	case EngineDegrade, LinkRateCap, CoreThrottle:
		return true
	}
	return false
}

// Validate rejects plans that would silently misbehave when armed:
// onsets before time zero, non-positive windows, out-of-range factors,
// onsets past the run horizon (pass 0 to skip the horizon check), and
// two windows of the same kind on the same target overlapping — the
// second clear would un-fault a component the first window still holds
// down. Windows are half-open [At, End()), so a window starting exactly
// when its predecessor clears is fine. Returns the first *PlanError in
// event order, or nil.
func (p *Plan) Validate(horizon sim.Time) error {
	for i, ev := range p.Events {
		switch {
		case ev.At < 0:
			return &PlanError{Index: i, Event: ev, Reason: "onset before time zero"}
		case ev.For <= 0:
			return &PlanError{Index: i, Event: ev, Reason: "non-positive fault window"}
		case horizon > 0 && ev.At > horizon:
			return &PlanError{Index: i, Event: ev,
				Reason: fmt.Sprintf("onset past run horizon %v", horizon)}
		}
		if needsFactor(ev.Kind) && (ev.Factor <= 0 || ev.Factor > 1) {
			return &PlanError{Index: i, Event: ev,
				Reason: fmt.Sprintf("factor %v outside (0,1]", ev.Factor)}
		}
	}
	for i, a := range p.Events {
		for j := i + 1; j < len(p.Events); j++ {
			b := p.Events[j]
			if a.Kind != b.Kind || a.Target != b.Target {
				continue
			}
			if a.At < b.End() && b.At < a.End() {
				return &PlanError{Index: j, Event: b,
					Reason: fmt.Sprintf("window overlaps event %d (%v)", i, a)}
			}
		}
	}
	return nil
}
