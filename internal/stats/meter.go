package stats

import (
	"fmt"

	"repro/internal/sim"
)

// Meter accumulates operation and byte counts over virtual time and
// reports rates. It is the throughput instrument: "maximum sustainable
// throughput" in the experiments is a Meter read at the end of the
// measurement window.
type Meter struct {
	ops   uint64
	bytes uint64
	start sim.Time
	end   sim.Time
	open  bool
}

// NewMeter returns a meter whose window opens at start.
func NewMeter(start sim.Time) *Meter {
	return &Meter{start: start, end: start, open: true}
}

// Mark records one operation of the given byte size at time now.
func (m *Meter) Mark(now sim.Time, size int) {
	if !m.open {
		return
	}
	m.ops++
	m.bytes += uint64(size)
	if now > m.end {
		m.end = now
	}
}

// Close freezes the window at now; later Marks are ignored. Closing lets
// an experiment stop measuring at a well-defined instant while the
// simulation drains.
func (m *Meter) Close(now sim.Time) {
	if now > m.end {
		m.end = now
	}
	m.open = false
}

// Ops returns the operation count.
func (m *Meter) Ops() uint64 { return m.ops }

// Bytes returns the byte count.
func (m *Meter) Bytes() uint64 { return m.bytes }

// Elapsed returns the window length.
func (m *Meter) Elapsed() sim.Duration { return m.end.Sub(m.start) }

// OpsPerSec returns the operation rate over the window.
func (m *Meter) OpsPerSec() float64 {
	el := m.Elapsed().Seconds()
	if el <= 0 {
		return 0
	}
	return float64(m.ops) / el
}

// Gbps returns the data rate over the window in gigabits per second.
func (m *Meter) Gbps() float64 {
	el := m.Elapsed().Seconds()
	if el <= 0 {
		return 0
	}
	return float64(m.bytes) * 8 / el / 1e9
}

func (m *Meter) String() string {
	return fmt.Sprintf("%d ops, %.3f Gb/s over %v", m.ops, m.Gbps(), m.Elapsed())
}

// TimeSeries records (time, value) points, e.g. a power trace or the
// Fig. 7 network data-rate trace.
type TimeSeries struct {
	Times  []sim.Time
	Values []float64
}

// Add appends a point. Times must be non-decreasing.
func (ts *TimeSeries) Add(t sim.Time, v float64) {
	if n := len(ts.Times); n > 0 && t < ts.Times[n-1] {
		panic("stats: time series points must be added in time order")
	}
	ts.Times = append(ts.Times, t)
	ts.Values = append(ts.Values, v)
}

// Len returns the number of points.
func (ts *TimeSeries) Len() int { return len(ts.Times) }

// Mean returns the arithmetic mean of the values (not time-weighted).
func (ts *TimeSeries) Mean() float64 {
	if len(ts.Values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range ts.Values {
		sum += v
	}
	return sum / float64(len(ts.Values))
}

// Max returns the largest value.
func (ts *TimeSeries) Max() float64 {
	var max float64
	for i, v := range ts.Values {
		if i == 0 || v > max {
			max = v
		}
	}
	return max
}

// Min returns the smallest value.
func (ts *TimeSeries) Min() float64 {
	var min float64
	for i, v := range ts.Values {
		if i == 0 || v < min {
			min = v
		}
	}
	return min
}

// TimeWeightedMean integrates the series (step-wise, value held until the
// next sample) and divides by total time. This is how average power is
// computed from a sensor trace.
func (ts *TimeSeries) TimeWeightedMean() float64 {
	n := len(ts.Times)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return ts.Values[0]
	}
	var integral float64
	for i := 0; i < n-1; i++ {
		dt := ts.Times[i+1].Sub(ts.Times[i]).Seconds()
		integral += ts.Values[i] * dt
	}
	total := ts.Times[n-1].Sub(ts.Times[0]).Seconds()
	if total <= 0 {
		return ts.Values[0]
	}
	return integral / total
}

// Downsample returns a series with at most maxPoints points, averaging
// value runs. Used to render long traces compactly.
func (ts *TimeSeries) Downsample(maxPoints int) *TimeSeries {
	if maxPoints <= 0 || ts.Len() <= maxPoints {
		return ts
	}
	out := &TimeSeries{}
	stride := (ts.Len() + maxPoints - 1) / maxPoints
	for i := 0; i < ts.Len(); i += stride {
		end := i + stride
		if end > ts.Len() {
			end = ts.Len()
		}
		var sum float64
		for _, v := range ts.Values[i:end] {
			sum += v
		}
		out.Add(ts.Times[i], sum/float64(end-i))
	}
	return out
}
