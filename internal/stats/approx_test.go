package stats

import (
	"math"
	"testing"
)

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		name    string
		a, b    float64
		tol     float64
		want    bool
	}{
		{"exact", 1.5, 1.5, 1e-12, true},
		{"within-rel", 1e12, 1e12 * (1 + 1e-10), 1e-9, true},
		{"outside-rel", 1e12, 1e12 * (1 + 1e-8), 1e-9, false},
		{"near-zero-abs", 0, 1e-12, 1e-9, true},
		{"near-zero-outside", 0, 1e-6, 1e-9, false},
		{"both-zero", 0, 0, 0, true},
		{"signed-zero", 0, math.Copysign(0, -1), 0, true},
		{"nan-left", math.NaN(), 1, 1e-3, false},
		{"nan-both", math.NaN(), math.NaN(), 1e-3, false},
		{"inf-equal", math.Inf(1), math.Inf(1), 1e-9, true},
		{"inf-mixed", math.Inf(1), math.Inf(-1), 1e-9, false},
		{"inf-vs-finite", math.Inf(1), 1e300, 1e-9, false},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("%s: ApproxEqual(%v, %v, %v) = %v, want %v",
				c.name, c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestNear(t *testing.T) {
	if !Near(1.0, 1.0+1e-12) {
		t.Error("Near should absorb sub-DefaultTol drift")
	}
	if Near(1.0, 1.0+1e-6) {
		t.Error("Near should reject drift above DefaultTol")
	}
	// The symmetric pair must agree regardless of argument order.
	if Near(3.14, 2.71) || Near(2.71, 3.14) {
		t.Error("Near on clearly different values")
	}
}
