// Package stats provides the measurement primitives used by the testbed:
// log-bucketed latency histograms with percentile queries, throughput
// meters, and time series, all in virtual time.
//
// The paper reports maximum sustainable throughput and 99th-percentile
// (p99) latency; this package is where those numbers come from.
package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// Histogram records durations in logarithmically spaced buckets covering
// [1ns, ~1000s) with a configurable number of sub-buckets per power of two
// (HDR-histogram style). Quantile error is bounded by the bucket width:
// with 32 sub-buckets, below ~1.6%.
type Histogram struct {
	counts   []uint64
	total    uint64
	sum      float64
	min, max sim.Duration
	sub      int // sub-buckets per octave
}

const histOctaves = 40 // 2^40 ns ≈ 18 minutes, ample for any latency

// NewHistogram returns an empty histogram with the default resolution of
// 32 sub-buckets per octave.
func NewHistogram() *Histogram { return NewHistogramRes(32) }

// NewHistogramRes returns an empty histogram with sub sub-buckets per
// power of two.
func NewHistogramRes(sub int) *Histogram {
	if sub <= 0 {
		panic("stats: sub-buckets must be positive")
	}
	return &Histogram{
		counts: make([]uint64, histOctaves*sub),
		min:    math.MaxInt64,
		sub:    sub,
	}
}

// bucket maps a duration to a bucket index.
func (h *Histogram) bucket(d sim.Duration) int {
	if d < 1 {
		d = 1
	}
	f := float64(d)
	idx := int(math.Log2(f) * float64(h.sub))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	return idx
}

// bucketValue maps a bucket index back to a representative duration
// (geometric midpoint of the bucket).
func (h *Histogram) bucketValue(idx int) sim.Duration {
	lo := math.Exp2(float64(idx) / float64(h.sub))
	hi := math.Exp2(float64(idx+1) / float64(h.sub))
	return sim.Duration(math.Sqrt(lo * hi))
}

// Record adds one observation.
func (h *Histogram) Record(d sim.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("stats: negative duration %v", d))
	}
	h.counts[h.bucket(d)]++
	h.total++
	h.sum += float64(d)
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the arithmetic mean of all observations.
func (h *Histogram) Mean() sim.Duration {
	if h.total == 0 {
		return 0
	}
	return sim.Duration(h.sum / float64(h.total))
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() sim.Duration {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation.
func (h *Histogram) Max() sim.Duration {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the duration at quantile q in [0,1]. Exact min/max are
// returned at the extremes; interior quantiles carry bucket-width error.
func (h *Histogram) Quantile(q float64) sim.Duration {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			v := h.bucketValue(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// P50, P99 and P999 are the quantiles the paper reports.
func (h *Histogram) P50() sim.Duration  { return h.Quantile(0.50) }
func (h *Histogram) P99() sim.Duration  { return h.Quantile(0.99) }
func (h *Histogram) P999() sim.Duration { return h.Quantile(0.999) }

// CountAtOrBelow returns the number of observations whose bucket
// representative is at or below d — the numerator of an SLO attainment
// ratio (fraction of requests meeting a latency target). Like Quantile,
// the answer carries bucket-width error at interior thresholds.
func (h *Histogram) CountAtOrBelow(d sim.Duration) uint64 {
	if h.total == 0 || d < h.min {
		return 0
	}
	if d >= h.max {
		return h.total
	}
	var n uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		v := h.bucketValue(i)
		if v < h.min {
			v = h.min
		}
		if v > d {
			break
		}
		n += c
	}
	return n
}

// Merge folds other into h. Resolutions must match.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.total == 0 {
		return
	}
	if other.sub != h.sub {
		panic("stats: merging histograms of different resolution")
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset clears all recorded observations.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = 0
}

// Summary is a compact snapshot of a latency distribution.
type Summary struct {
	Count          uint64
	Mean, P50, P99 sim.Duration
	P999, Min, Max sim.Duration
}

// Summarize captures the distribution's headline numbers.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.total,
		Mean:  h.Mean(),
		P50:   h.P50(),
		P99:   h.P99(),
		P999:  h.P999(),
		Min:   h.Min(),
		Max:   h.Max(),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v p99.9=%v max=%v",
		s.Count, s.Mean, s.P50, s.P99, s.P999, s.Max)
}

// ExactQuantile computes a quantile exactly from raw samples; the test
// suite uses it as ground truth against Histogram's bucketed answer.
func ExactQuantile(samples []sim.Duration, q float64) sim.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := make([]sim.Duration, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	idx := int(q * float64(len(s)))
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
