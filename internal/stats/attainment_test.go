package stats

import (
	"testing"

	"repro/internal/sim"
)

func TestCountAtOrBelow(t *testing.T) {
	h := NewHistogram()
	if got := h.CountAtOrBelow(sim.Millisecond); got != 0 {
		t.Fatalf("empty histogram: got %d, want 0", got)
	}
	for i := 1; i <= 1000; i++ {
		h.Record(sim.Duration(i) * sim.Microsecond)
	}
	if got := h.CountAtOrBelow(0); got != 0 {
		t.Fatalf("below min: got %d, want 0", got)
	}
	if got := h.CountAtOrBelow(h.Max()); got != h.Count() {
		t.Fatalf("at max: got %d, want %d", got, h.Count())
	}
	// Interior threshold: 300µs SLO over a uniform 1..1000µs spread should
	// admit ~30% of observations, within the ~1.6% bucket-width error.
	got := float64(h.CountAtOrBelow(300*sim.Microsecond)) / float64(h.Count())
	if got < 0.27 || got > 0.33 {
		t.Fatalf("attainment at 300µs = %.3f, want ≈0.30", got)
	}
	// Monotone in the threshold.
	prev := uint64(0)
	for us := 1; us <= 1000; us += 37 {
		n := h.CountAtOrBelow(sim.Duration(us) * sim.Microsecond)
		if n < prev {
			t.Fatalf("CountAtOrBelow not monotone at %dµs: %d < %d", us, n, prev)
		}
		prev = n
	}
}

func TestCountAtOrBelowMergeAdds(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 100; i++ {
		a.Record(100 * sim.Microsecond)
		b.Record(900 * sim.Microsecond)
	}
	sum := a.CountAtOrBelow(500*sim.Microsecond) + b.CountAtOrBelow(500*sim.Microsecond)
	a.Merge(b)
	if got := a.CountAtOrBelow(500 * sim.Microsecond); got != sum {
		t.Fatalf("merged count %d != sum of parts %d", got, sum)
	}
}
