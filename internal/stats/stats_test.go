package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(sim.Duration(i) * sim.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if h.Min() != sim.Microsecond {
		t.Fatalf("min = %v, want 1µs", h.Min())
	}
	if h.Max() != 100*sim.Microsecond {
		t.Fatalf("max = %v, want 100µs", h.Max())
	}
	mean := h.Mean()
	if mean < 50*sim.Microsecond || mean > 51*sim.Microsecond {
		t.Fatalf("mean = %v, want ~50.5µs", mean)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	var raw []sim.Duration
	r := sim.NewRNG(1)
	for i := 0; i < 50000; i++ {
		d := r.LogNormalDur(10*sim.Microsecond, 0.5)
		h.Record(d)
		raw = append(raw, d)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := float64(h.Quantile(q))
		want := float64(ExactQuantile(raw, q))
		if rel := math.Abs(got-want) / want; rel > 0.05 {
			t.Errorf("q=%v: histogram %v vs exact %v (rel err %.3f)", q, got, want, rel)
		}
	}
}

func TestHistogramEmptyIsZero(t *testing.T) {
	h := NewHistogram()
	if h.P99() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramExtremeQuantiles(t *testing.T) {
	h := NewHistogram()
	h.Record(5)
	h.Record(500)
	if h.Quantile(0) != 5 {
		t.Fatalf("q0 = %v, want 5", h.Quantile(0))
	}
	if h.Quantile(1) != 500 {
		t.Fatalf("q1 = %v, want 500", h.Quantile(1))
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 100; i++ {
		a.Record(sim.Microsecond)
		b.Record(100 * sim.Microsecond)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d, want 200", a.Count())
	}
	if a.Max() != 100*sim.Microsecond || a.Min() != sim.Microsecond {
		t.Fatal("merge lost min/max")
	}
	p50 := a.P50()
	if p50 < sim.Microsecond || p50 > 110*sim.Microsecond {
		t.Fatalf("merged p50 = %v out of plausible range", p50)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(1000)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear histogram")
	}
}

func TestHistogramNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative duration did not panic")
		}
	}()
	NewHistogram().Record(-1)
}

// Property: quantiles are monotone in q, and bounded by [min, max].
func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		h := NewHistogram()
		for i := 0; i < 500; i++ {
			h.Record(sim.Duration(r.Uint64n(1_000_000) + 1))
		}
		prev := sim.Duration(0)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev || v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMeterRates(t *testing.T) {
	m := NewMeter(0)
	// 1000 ops × 1250 bytes over 1 ms = 10 Gb/s, 1 Mops/s.
	for i := 1; i <= 1000; i++ {
		m.Mark(sim.Time(i)*sim.Time(sim.Microsecond), 1250)
	}
	if g := m.Gbps(); math.Abs(g-10) > 0.01 {
		t.Fatalf("Gbps = %v, want 10", g)
	}
	if o := m.OpsPerSec(); math.Abs(o-1e6) > 1e3 {
		t.Fatalf("ops/s = %v, want 1e6", o)
	}
}

func TestMeterCloseFreezes(t *testing.T) {
	m := NewMeter(0)
	m.Mark(100, 10)
	m.Close(200)
	m.Mark(300, 10) // ignored
	if m.Ops() != 1 {
		t.Fatalf("ops = %d, want 1 (post-close mark must be ignored)", m.Ops())
	}
	if m.Elapsed() != 200 {
		t.Fatalf("elapsed = %v, want 200", m.Elapsed())
	}
}

func TestMeterEmpty(t *testing.T) {
	m := NewMeter(0)
	if m.Gbps() != 0 || m.OpsPerSec() != 0 {
		t.Fatal("empty meter should report zero rates")
	}
}

func TestTimeSeriesStats(t *testing.T) {
	ts := &TimeSeries{}
	ts.Add(0, 10)
	ts.Add(sim.Time(sim.Second), 20)
	ts.Add(2*sim.Time(sim.Second), 30)
	if ts.Mean() != 20 {
		t.Fatalf("mean = %v, want 20", ts.Mean())
	}
	if ts.Max() != 30 || ts.Min() != 10 {
		t.Fatal("min/max wrong")
	}
	// Step integral: 10*1s + 20*1s over 2s = 15.
	if tw := ts.TimeWeightedMean(); tw != 15 {
		t.Fatalf("time-weighted mean = %v, want 15", tw)
	}
}

func TestTimeSeriesOrderEnforced(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order add did not panic")
		}
	}()
	ts := &TimeSeries{}
	ts.Add(100, 1)
	ts.Add(50, 2)
}

func TestTimeSeriesDownsample(t *testing.T) {
	ts := &TimeSeries{}
	for i := 0; i < 1000; i++ {
		ts.Add(sim.Time(i), float64(i))
	}
	ds := ts.Downsample(10)
	if ds.Len() > 10 {
		t.Fatalf("downsampled to %d points, want <= 10", ds.Len())
	}
	// Mean must be approximately preserved.
	if math.Abs(ds.Mean()-ts.Mean()) > 50 {
		t.Fatalf("downsample shifted mean: %v vs %v", ds.Mean(), ts.Mean())
	}
}

func TestExactQuantile(t *testing.T) {
	samples := []sim.Duration{50, 10, 40, 20, 30}
	if q := ExactQuantile(samples, 0.5); q != 30 {
		t.Fatalf("median = %v, want 30", q)
	}
	if q := ExactQuantile(samples, 0); q != 10 {
		t.Fatalf("q0 = %v, want 10", q)
	}
	if q := ExactQuantile(samples, 1); q != 50 {
		t.Fatalf("q1 = %v, want 50", q)
	}
	if q := ExactQuantile(nil, 0.5); q != 0 {
		t.Fatalf("empty = %v, want 0", q)
	}
}
