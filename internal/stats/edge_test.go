package stats

import (
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

func TestMeterWindowedRates(t *testing.T) {
	m := NewMeter(sim.Time(1000))
	if m.Gbps() != 0 || m.OpsPerSec() != 0 {
		t.Fatalf("empty window must rate 0, got %v Gbps, %v ops/s", m.Gbps(), m.OpsPerSec())
	}
	m.Mark(sim.Time(1000), 125) // 1000 bits at window start
	if m.Gbps() != 0 {
		t.Fatalf("zero-length window must rate 0, got %v", m.Gbps())
	}
	m.Mark(sim.Time(1000).Add(sim.Microsecond), 125)
	// 2000 bits over 1 µs = 2 Gb/s, 2 ops over 1 µs = 2e6 ops/s.
	if got := m.Gbps(); got != 2 {
		t.Fatalf("Gbps = %v, want 2", got)
	}
	if got := m.OpsPerSec(); got != 2e6 {
		t.Fatalf("OpsPerSec = %v, want 2e6", got)
	}

	// Close freezes the window: later marks are ignored entirely.
	m.Close(sim.Time(1000).Add(sim.Microsecond))
	m.Mark(sim.Time(1000).Add(2*sim.Microsecond), 1<<20)
	if m.Ops() != 2 || m.Bytes() != 250 {
		t.Fatalf("post-Close Mark must be ignored: ops=%d bytes=%d", m.Ops(), m.Bytes())
	}
	if got := m.Gbps(); got != 2 {
		t.Fatalf("Gbps after ignored Mark = %v, want 2", got)
	}

	// Close can also extend the window past the last mark, diluting rates.
	m2 := NewMeter(0)
	m2.Mark(sim.Time(sim.Microsecond), 250) // 2000 bits
	m2.Close(sim.Time(2 * sim.Microsecond))
	if got := m2.Gbps(); got != 1 {
		t.Fatalf("Gbps over drain-extended window = %v, want 1", got)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram()
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
	if h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram min/max/mean must be 0: %v %v %v", h.Min(), h.Max(), h.Mean())
	}

	h.Record(42 * sim.Microsecond)
	for _, q := range []float64{-0.5, 0, 0.25, 0.5, 0.99, 1, 1.5} {
		if got := h.Quantile(q); got != 42*sim.Microsecond {
			t.Fatalf("single-sample Quantile(%v) = %v, want 42µs", q, got)
		}
	}

	h.Record(10 * sim.Microsecond)
	h.Record(999 * sim.Microsecond)
	if got := h.Quantile(0); got != 10*sim.Microsecond {
		t.Fatalf("Quantile(0) = %v, want exact min", got)
	}
	if got := h.Quantile(-3); got != 10*sim.Microsecond {
		t.Fatalf("Quantile(q<0) = %v, want exact min", got)
	}
	if got := h.Quantile(1); got != 999*sim.Microsecond {
		t.Fatalf("Quantile(1) = %v, want exact max", got)
	}
	if got := h.Quantile(7); got != 999*sim.Microsecond {
		t.Fatalf("Quantile(q>1) = %v, want exact max", got)
	}
	// Interior quantiles are clamped into [min, max].
	for _, q := range []float64{0.01, 0.5, 0.99} {
		got := h.Quantile(q)
		if got < 10*sim.Microsecond || got > 999*sim.Microsecond {
			t.Fatalf("Quantile(%v) = %v outside [min,max]", q, got)
		}
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Record(sim.Duration(i) * sim.Microsecond)
	}
	want := h.Summarize()
	raw, err := json.Marshal(want)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got Summary
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got != want {
		t.Fatalf("round trip changed summary:\n got %+v\nwant %+v", got, want)
	}

	// The encoded form must expose every field (no unexported surprises).
	var fields map[string]any
	if err := json.Unmarshal(raw, &fields); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"Count", "Mean", "P50", "P99", "P999", "Min", "Max"} {
		if _, ok := fields[k]; !ok {
			t.Fatalf("summary JSON missing field %s: %s", k, raw)
		}
	}
}
