package stats

import "math"

// DefaultTol is the tolerance used by Near: loose enough to absorb
// association-order and FMA differences across refactors, tight enough
// that any modeling change is still visible.
const DefaultTol = 1e-9

// ApproxEqual reports whether a and b agree within tol. tol bounds the
// relative error for magnitudes above 1 and the absolute error below,
// so callers need not special-case values near zero. NaN compares
// unequal to everything, like ==; equal infinities compare equal.
//
// This is the helper the floateq lint analyzer points at: exact
// floating-point == in model code silently depends on evaluation
// order, while an explicit tolerance documents the intended precision.
func ApproxEqual(a, b, tol float64) bool {
	if a == b { //snicvet:ignore floateq exact fast path; also the only correct way to match equal infinities
		return true
	}
	// Past the fast path, any infinity is a mismatch: inf-vs-finite
	// and opposite infinities both produce an infinite difference that
	// would otherwise satisfy diff <= tol*inf.
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	diff := math.Abs(a - b)
	if math.IsNaN(diff) {
		return false
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*math.Max(scale, 1)
}

// Near is ApproxEqual at DefaultTol.
func Near(a, b float64) bool { return ApproxEqual(a, b, DefaultTol) }
