// Package accel models the three BlueField-2 fixed-function accelerators
// of paper §2.2: (A1) regular-expression matching, (A2) public-key
// cryptography, and (A3) Deflate compression.
//
// All three are DOCA-style engines: SNIC CPU cores acquire work (DPDK for
// packets, file buffers for compression), stage it into task buffers, and
// submit task batches; the engine retires batches at a fixed service rate
// and returns results to the buffers. Two properties drive the paper's
// Key Observations 2 and 3 and are modelled explicitly:
//
//   - the engines' sustained rate is ~50 Gb/s, half the 100 Gb/s line
//     rate, so the accelerators alone can never keep up with the wire;
//   - batching amortizes submission overhead but adds a batch-assembly
//     wait, so accelerator p99 latency sits tens of microseconds above a
//     busy-polling CPU even at low load (Table 4's 17.43 µs vs 5.07 µs).
package accel

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// Health is an engine's operational state. Real BlueField-class engines
// are not always healthy: Liu et al. and the DPA off-path studies report
// engine stalls, saturation cliffs, and outright wedges requiring a
// driver-level reset. The fault layer drives these transitions.
type Health int

const (
	// Healthy: accepting and retiring work normally.
	Healthy Health = iota
	// Stalled: accepting work, but the pipeline is wedged — queued batches
	// do not retire until the stall clears.
	Stalled
	// Down: crashed. Submissions are rejected with an *EngineError until
	// Recover (the driver reset) runs.
	Down
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Stalled:
		return "stalled"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("health(%d)", int(h))
	}
}

// ErrEngineDown is the sentinel matched by errors.Is for any submission
// rejected because the target engine is not accepting work.
var ErrEngineDown = errors.New("accel: engine down")

// EngineError is the typed rejection returned when work is submitted to a
// crashed engine. A silent drop here would orphan the caller's completion
// callback — the failover machinery needs the rejection to reroute.
type EngineError struct {
	Engine string
	State  Health
}

func (e *EngineError) Error() string {
	return fmt.Sprintf("accel: %s is %s, submission rejected", e.Engine, e.State)
}

// Unwrap lets errors.Is(err, ErrEngineDown) match.
func (e *EngineError) Unwrap() error { return ErrEngineDown }

// ByteEngine is a fixed-rate streaming engine (REM scan, Deflate): task
// service time is proportional to payload bytes.
type ByteEngine struct {
	Name string
	// RateBits is the engine's sustained processing rate in bits/s.
	RateBits float64
	// PerTaskOverhead is the descriptor-handling time per task within a
	// batch, independent of size.
	PerTaskOverhead sim.Duration

	batch *sim.BatchStation
	eng   *sim.Engine

	down bool
	// rateFactor scales the effective service rate in (0,1]; the fault
	// layer lowers it to model clock/thermal degradation. 0 means unset.
	rateFactor float64
	rejected   uint64
}

// ByteEngineConfig carries the batching parameters of a ByteEngine.
type ByteEngineConfig struct {
	Name            string
	RateBits        float64
	MaxBatch        int
	MaxWait         sim.Duration
	PerBatch        sim.Duration // doorbell + descriptor DMA per batch
	PerTaskOverhead sim.Duration
}

// NewByteEngine builds a streaming engine.
func NewByteEngine(eng *sim.Engine, cfg ByteEngineConfig) *ByteEngine {
	if cfg.RateBits <= 0 {
		panic(fmt.Sprintf("accel: %s rate must be positive", cfg.Name))
	}
	return &ByteEngine{
		Name:            cfg.Name,
		RateBits:        cfg.RateBits,
		PerTaskOverhead: cfg.PerTaskOverhead,
		batch:           sim.NewBatchStation(eng, cfg.MaxBatch, cfg.MaxWait, cfg.PerBatch),
		eng:             eng,
	}
}

// Submit queues one task of size bytes; done fires when its batch
// retires. Submitting to a crashed engine returns an *EngineError
// (matching ErrEngineDown) and done never fires — callers that can
// failover reroute on the rejection.
func (b *ByteEngine) Submit(size int, done func(start, end sim.Time)) error {
	if b.down {
		b.rejected++
		return &EngineError{Engine: b.Name, State: Down}
	}
	svc := sim.DurationOf(size, b.effectiveRate()) + b.PerTaskOverhead
	b.batch.Submit(&sim.Job{Service: svc, Done: done, Size: size})
	return nil
}

// effectiveRate applies any degradation factor to the nominal rate.
func (b *ByteEngine) effectiveRate() float64 {
	if b.rateFactor > 0 {
		return b.RateBits * b.rateFactor
	}
	return b.RateBits
}

// Fail crashes the engine: submissions are rejected until Recover.
func (b *ByteEngine) Fail() { b.down = true }

// Recover resets a crashed engine (the driver-level reset) and clears any
// active stall gate. Work queued before a stall resumes retiring; a rate
// degradation persists until SetRateFactor(1).
func (b *ByteEngine) Recover() {
	b.down = false
	b.batch.Stall(b.eng.Now())
}

// Stall wedges the engine pipeline until t: tasks keep queueing but no
// batch retires before the stall clears.
func (b *ByteEngine) Stall(t sim.Time) { b.batch.Stall(t) }

// SetRateFactor degrades the engine's service rate to f × nominal for
// subsequently submitted tasks. f must be in (0,1]; 1 restores full rate.
func (b *ByteEngine) SetRateFactor(f float64) {
	if f <= 0 || f > 1 {
		panic(fmt.Sprintf("accel: %s rate factor %v outside (0,1]", b.Name, f))
	}
	b.rateFactor = f
}

// Health reports the engine's current operational state.
func (b *ByteEngine) Health() Health {
	switch {
	case b.down:
		return Down
	case b.batch.Stalled():
		return Stalled
	default:
		return Healthy
	}
}

// Observe installs telemetry observers under the given name: obs on the
// internal engine station, batchObs on batch assembly. Either may be nil.
func (b *ByteEngine) Observe(name string, obs sim.StationObserver, batchObs sim.BatchObserver) {
	b.batch.Observe(name, obs, batchObs)
}

// Completed returns retired task count.
func (b *ByteEngine) Completed() uint64 { return b.batch.Completed() }

// Rejected returns submissions refused while the engine was down.
func (b *ByteEngine) Rejected() uint64 { return b.rejected }

// Utilization returns the engine busy fraction.
func (b *ByteEngine) Utilization() float64 { return b.batch.Utilization() }

// QueueLen returns batches waiting behind the engine.
func (b *ByteEngine) QueueLen() int { return b.batch.EngineQueueLen() }

// REMEngine returns the BlueField-2 regular-expression engine (RXP).
// Sustained scan rate ~50 Gb/s regardless of rule set (paper Fig. 5: "the
// maximum throughput of the SNIC accelerator processing REM is capped to
// ~50 Gbps (regardless of the input rule set)").
func REMEngine(eng *sim.Engine) *ByteEngine {
	// Raw scan rate 66 Gb/s; after per-batch doorbell/DMA and per-task
	// descriptor overheads the effective goodput on MTU packets is
	// ~49 Gb/s, the paper's observed cap.
	return NewByteEngine(eng, ByteEngineConfig{
		Name:            "BF-2 REM (RXP)",
		RateBits:        66e9,
		MaxBatch:        48,
		MaxWait:         11 * sim.Microsecond,
		PerBatch:        2500 * sim.Nanosecond,
		PerTaskOverhead: 25 * sim.Nanosecond,
	})
}

// CompressEngine returns the BlueField-2 Deflate engine. Also caps near
// 50 Gb/s; level-9 Deflate on the host is several times slower, which is
// where Compression's 3.5× accelerator win comes from.
func CompressEngine(eng *sim.Engine) *ByteEngine {
	// Compression tasks are file chunks (tens of KB), so per-batch
	// overhead amortizes well; effective goodput on 64 KB chunks is
	// ~52 Gb/s.
	return NewByteEngine(eng, ByteEngineConfig{
		Name:            "BF-2 Deflate",
		RateBits:        55e9,
		MaxBatch:        16,
		MaxWait:         20 * sim.Microsecond,
		PerBatch:        3 * sim.Microsecond,
		PerTaskOverhead: 250 * sim.Nanosecond,
	})
}

// PKAAlgo names a public-key/crypto algorithm the PKA engine supports
// (24 in hardware; the paper evaluates these three).
type PKAAlgo string

const (
	AlgoAES PKAAlgo = "aes-256"
	AlgoRSA PKAAlgo = "rsa-2048"
	AlgoSHA PKAAlgo = "sha-1"
)

// PKAEngine is the public-key-acceleration block: the SNIC CPU programs a
// memory region and rings a command-count register; the engine retires
// commands at per-algorithm rates.
//
// Rates are expressed as bytes/s for bulk algorithms (AES, SHA-1 over
// buffers) and ops/s for RSA (per 2048-bit private-key operation).
type PKAEngine struct {
	// BulkRateBits is the engine's bulk cipher/hash rate.
	BulkRateBits map[PKAAlgo]float64
	// OpRate is the op-based rate for modular-exponentiation algorithms.
	OpRate map[PKAAlgo]float64
	// CommandOverhead is the fixed per-command engine time.
	CommandOverhead sim.Duration

	station *sim.Station
	eng     *sim.Engine

	down       bool
	rateFactor float64
	rejected   uint64
}

// NewPKAEngine returns the BlueField-2 crypto block with calibrated
// rates. Calibration anchors (paper Fig. 4 discussion): the host with
// AES-NI/RDRAND beats the engine by 38.5% on AES and 91.2% on RSA, while
// the engine beats the host by 1.89× on SHA-1 (no good ISA path).
func NewPKAEngine(eng *sim.Engine) *PKAEngine {
	return &PKAEngine{
		BulkRateBits: map[PKAAlgo]float64{
			AlgoAES: 38e9, // host AES-NI path reaches ~47 Gb/s
			AlgoSHA: 29e9, // host SHA-1 path reaches ~13.2 Gb/s
		},
		OpRate: map[PKAAlgo]float64{
			AlgoRSA: 21_800, // host RSA-2048 reaches ~40 kops/s
		},
		CommandOverhead: 1500 * sim.Nanosecond,
		station:         sim.NewStation(eng, 1),
		eng:             eng,
	}
}

// SubmitBulk queues size bytes of a bulk algorithm. A crashed engine
// rejects the command with an *EngineError (matching ErrEngineDown).
func (p *PKAEngine) SubmitBulk(algo PKAAlgo, size int, done func(start, end sim.Time)) error {
	rate, ok := p.BulkRateBits[algo]
	if !ok {
		panic(fmt.Sprintf("accel: %s is not a bulk PKA algorithm", algo))
	}
	if p.down {
		p.rejected++
		return &EngineError{Engine: "BF-2 PKA", State: Down}
	}
	if p.rateFactor > 0 {
		rate *= p.rateFactor
	}
	svc := sim.DurationOf(size, rate) + p.CommandOverhead
	p.station.Submit(&sim.Job{Service: svc, Done: done, Size: size})
	return nil
}

// SubmitOp queues one op-based command (e.g. one RSA-2048 signature).
// A crashed engine rejects it with an *EngineError.
func (p *PKAEngine) SubmitOp(algo PKAAlgo, done func(start, end sim.Time)) error {
	rate, ok := p.OpRate[algo]
	if !ok {
		panic(fmt.Sprintf("accel: %s is not an op-based PKA algorithm", algo))
	}
	if p.down {
		p.rejected++
		return &EngineError{Engine: "BF-2 PKA", State: Down}
	}
	if p.rateFactor > 0 {
		rate *= p.rateFactor
	}
	svc := sim.Duration(float64(sim.Second)/rate) + p.CommandOverhead
	p.station.Submit(&sim.Job{Service: svc, Done: done})
	return nil
}

// Fail crashes the engine: submissions are rejected until Recover.
func (p *PKAEngine) Fail() { p.down = true }

// Recover resets a crashed engine and clears any stall gate.
func (p *PKAEngine) Recover() {
	p.down = false
	p.station.StallUntil(p.eng.Now())
}

// Stall wedges the command pipeline until t.
func (p *PKAEngine) Stall(t sim.Time) { p.station.StallUntil(t) }

// SetRateFactor degrades the per-command rates to f × nominal.
func (p *PKAEngine) SetRateFactor(f float64) {
	if f <= 0 || f > 1 {
		panic(fmt.Sprintf("accel: PKA rate factor %v outside (0,1]", f))
	}
	p.rateFactor = f
}

// Health reports the engine's current operational state.
func (p *PKAEngine) Health() Health {
	switch {
	case p.down:
		return Down
	case p.station.Stalled():
		return Stalled
	default:
		return Healthy
	}
}

// Observe installs a telemetry observer on the command station under
// the given name.
func (p *PKAEngine) Observe(name string, obs sim.StationObserver) {
	p.station.Observe(name, obs)
}

// Completed returns retired command count.
func (p *PKAEngine) Completed() uint64 { return p.station.Completed() }

// Rejected returns submissions refused while the engine was down.
func (p *PKAEngine) Rejected() uint64 { return p.rejected }

// Utilization returns the engine busy fraction.
func (p *PKAEngine) Utilization() float64 { return p.station.Utilization() }

// QueueLen returns commands waiting behind the engine. Hardware exposes
// this as the command-count register delta (commands rung minus
// completions DMA'd back); earlier versions of this model omitted the
// read, which left spill policies blind to crypto backlog — a policy
// watermark can only be as good as the counter beneath it.
func (p *PKAEngine) QueueLen() int { return p.station.QueueLen() }

// StagingCyclesPerTask is the SNIC CPU work to acquire one packet/buffer
// with DPDK and stage it into an accelerator task. Sized so that exactly
// two Arm cores keep the REM engine fed at its ~50 Gb/s maximum on MTU
// packets (paper §3.4: "we use two SNIC CPU cores for processing DPDK
// packets and supplying the packets to the SNIC accelerator").
const StagingCyclesPerTask = 340.0

// StagingCyclesPerByte is the additional staging cost per payload byte
// (buffer fill via DMA descriptor setup).
const StagingCyclesPerByte = 0.02
