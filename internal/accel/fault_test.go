package accel

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

func TestCrashedEngineReturnsTypedError(t *testing.T) {
	eng := sim.NewEngine()
	be := REMEngine(eng)
	be.Fail()
	fired := false
	err := be.Submit(1500, func(_, _ sim.Time) { fired = true })
	if err == nil {
		t.Fatal("submit to a crashed engine returned nil error")
	}
	if !errors.Is(err, ErrEngineDown) {
		t.Fatalf("err = %v, want errors.Is(_, ErrEngineDown)", err)
	}
	var ee *EngineError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %T, want *EngineError", err)
	}
	if ee.State != Down {
		t.Fatalf("EngineError.State = %v, want Down", ee.State)
	}
	eng.Run()
	if fired {
		t.Fatal("done callback fired for a rejected submission")
	}
	if be.Rejected() != 1 {
		t.Fatalf("Rejected() = %d, want 1", be.Rejected())
	}
	if be.Health() != Down {
		t.Fatalf("Health() = %v, want Down", be.Health())
	}

	be.Recover()
	if be.Health() != Healthy {
		t.Fatalf("Health() after Recover = %v, want Healthy", be.Health())
	}
	if err := be.Submit(1500, nil); err != nil {
		t.Fatalf("submit after Recover returned %v", err)
	}
}

func TestCrashedPKAReturnsTypedError(t *testing.T) {
	eng := sim.NewEngine()
	pka := NewPKAEngine(eng)
	pka.Fail()
	if err := pka.SubmitBulk(AlgoAES, 1024, nil); !errors.Is(err, ErrEngineDown) {
		t.Fatalf("SubmitBulk err = %v, want ErrEngineDown", err)
	}
	if err := pka.SubmitOp(AlgoRSA, nil); !errors.Is(err, ErrEngineDown) {
		t.Fatalf("SubmitOp err = %v, want ErrEngineDown", err)
	}
	if pka.Rejected() != 2 {
		t.Fatalf("Rejected() = %d, want 2", pka.Rejected())
	}
	pka.Recover()
	if err := pka.SubmitOp(AlgoRSA, nil); err != nil {
		t.Fatalf("SubmitOp after Recover returned %v", err)
	}
}

// Degrading the rate must stretch service time proportionally: one task
// alone in a batch at factor 0.5 takes twice the payload time.
func TestRateFactorDegradesServiceRate(t *testing.T) {
	eng := sim.NewEngine()
	timeFor := func(factor float64) sim.Duration {
		e := sim.NewEngine()
		be := REMEngine(e)
		if factor > 0 {
			be.SetRateFactor(factor)
		}
		var end sim.Time
		be.Submit(1500, func(_, e2 sim.Time) { end = e2 })
		e.Run()
		return end.Sub(0)
	}
	full := timeFor(0)
	half := timeFor(0.5)
	if half <= full {
		t.Fatalf("degraded completion %v not later than full-rate %v", half, full)
	}
	// The payload-proportional part doubles; overheads (batch wait,
	// per-batch, per-task) are unchanged.
	extra := half - full
	payload := sim.DurationOf(1500, 66e9)
	if extra < payload*9/10 || extra > payload*11/10 {
		t.Fatalf("degradation added %v, want ~%v (payload time at half rate)", extra, payload)
	}
	_ = eng
}

// A stalled engine keeps accepting work but retires nothing until the
// stall clears.
func TestStallDefersRetirementUntilClear(t *testing.T) {
	eng := sim.NewEngine()
	be := REMEngine(eng)
	stallEnd := sim.Time(5 * sim.Millisecond)
	be.Stall(stallEnd)
	var end sim.Time
	if err := be.Submit(1500, func(_, e2 sim.Time) { end = e2 }); err != nil {
		t.Fatalf("submit to a stalled engine returned %v (stall must queue, not reject)", err)
	}
	if be.Health() != Stalled {
		t.Fatalf("Health() = %v, want Stalled", be.Health())
	}
	eng.Run()
	if end < stallEnd {
		t.Fatalf("task retired at %v, before the stall cleared at %v", end, stallEnd)
	}
	if be.Completed() != 1 {
		t.Fatalf("Completed() = %d, want 1 after stall cleared", be.Completed())
	}
}
