package accel

import (
	"testing"

	"repro/internal/sim"
)

// drive submits MTU-sized tasks open-loop at the given rate for the given
// window and returns achieved throughput in Gb/s.
func driveByteEngine(t *testing.T, mk func(*sim.Engine) *ByteEngine, size int, offeredGbps float64, window sim.Duration) float64 {
	t.Helper()
	eng := sim.NewEngine()
	be := mk(eng)
	interArrival := sim.DurationOf(size, offeredGbps*1e9)
	var doneBytes uint64
	var submit func()
	submit = func() {
		if eng.Now() >= sim.Time(window) {
			return
		}
		be.Submit(size, func(_, _ sim.Time) { doneBytes += uint64(size) })
		eng.After(interArrival, submit)
	}
	eng.At(0, submit)
	eng.RunUntil(sim.Time(window))
	return float64(doneBytes) * 8 / window.Seconds() / 1e9
}

func TestREMEngineCapsNear50Gbps(t *testing.T) {
	// Offer 90 Gb/s; the engine must cap near 50 (Key Observation 3).
	got := driveByteEngine(t, REMEngine, 1500, 90, 20*sim.Millisecond)
	if got < 44 || got > 52 {
		t.Fatalf("REM engine sustained %.1f Gb/s, want ~48-50", got)
	}
}

func TestREMEngineKeepsUpBelowCap(t *testing.T) {
	got := driveByteEngine(t, REMEngine, 1500, 30, 20*sim.Millisecond)
	if got < 29 || got > 31 {
		t.Fatalf("REM engine at 30 Gb/s offered delivered %.1f", got)
	}
}

func TestCompressEngineCapsNear50Gbps(t *testing.T) {
	got := driveByteEngine(t, CompressEngine, 64<<10, 90, 20*sim.Millisecond)
	if got < 42 || got > 52 {
		t.Fatalf("compress engine sustained %.1f Gb/s, want ~48-50", got)
	}
}

func TestEnginesBelowLineRate(t *testing.T) {
	// O3: no accelerator reaches the 100 Gb/s line rate.
	eng := sim.NewEngine()
	for _, e := range []*ByteEngine{REMEngine(eng), CompressEngine(eng)} {
		if e.RateBits >= 100e9 {
			t.Errorf("%s rate %.0f >= line rate", e.Name, e.RateBits)
		}
	}
}

func TestByteEngineLowLoadLatencyIsBatchWaitDominated(t *testing.T) {
	// A single task must wait out MaxWait before the batch flushes:
	// that is the accelerator's latency floor at low packet rates and
	// the root of Table 4's 17.43 µs vs 5.07 µs.
	eng := sim.NewEngine()
	be := REMEngine(eng)
	var lat sim.Duration
	start := eng.Now()
	be.Submit(1500, func(_, end sim.Time) { lat = end.Sub(start) })
	eng.Run()
	if lat < 11*sim.Microsecond {
		t.Fatalf("single-task latency %v below the 11µs batch wait", lat)
	}
	if lat > 22*sim.Microsecond {
		t.Fatalf("single-task latency %v unreasonably high", lat)
	}
}

func TestByteEngineFullBatchSkipsWait(t *testing.T) {
	eng := sim.NewEngine()
	be := REMEngine(eng)
	var last sim.Duration
	start := eng.Now()
	for i := 0; i < 48; i++ { // exactly MaxBatch
		be.Submit(1500, func(_, end sim.Time) { last = end.Sub(start) })
	}
	eng.Run()
	// 48×1500B at 66 Gb/s ≈ 8.7µs + 2.5µs batch + per-task overhead ≈ 12.5µs,
	// but crucially no 11µs arming wait on top.
	if last > 15*sim.Microsecond {
		t.Fatalf("full batch latency %v, want < 15µs (no timeout wait)", last)
	}
}

func TestPKABulkRates(t *testing.T) {
	eng := sim.NewEngine()
	pka := NewPKAEngine(eng)
	// Saturate with 64 KB AES tasks for 50 ms.
	const size = 64 << 10
	var bytes uint64
	var submit func()
	submit = func() {
		if eng.Now() >= sim.Time(50*sim.Millisecond) {
			return
		}
		pka.SubmitBulk(AlgoAES, size, func(_, _ sim.Time) {
			bytes += size
			submit()
		})
	}
	// Keep 4 in flight.
	for i := 0; i < 4; i++ {
		eng.At(0, submit)
	}
	eng.RunUntil(sim.Time(50 * sim.Millisecond))
	gbps := float64(bytes) * 8 / 0.05 / 1e9
	if gbps < 33 || gbps > 39 {
		t.Fatalf("PKA AES rate = %.1f Gb/s, want ~38", gbps)
	}
}

func TestPKARSAOpRate(t *testing.T) {
	eng := sim.NewEngine()
	pka := NewPKAEngine(eng)
	ops := 0
	var submit func()
	submit = func() {
		if eng.Now() >= sim.Time(sim.Second) {
			return
		}
		pka.SubmitOp(AlgoRSA, func(_, _ sim.Time) {
			ops++
			submit()
		})
	}
	for i := 0; i < 2; i++ {
		eng.At(0, submit)
	}
	eng.RunUntil(sim.Time(sim.Second))
	// ~21 kops/s minus command overhead.
	if ops < 19500 || ops > 22200 {
		t.Fatalf("RSA ops/s = %d, want ~21000", ops)
	}
}

func TestPKAWrongKindPanics(t *testing.T) {
	eng := sim.NewEngine()
	pka := NewPKAEngine(eng)
	defer func() {
		if recover() == nil {
			t.Fatal("RSA as bulk did not panic")
		}
	}()
	pka.SubmitBulk(AlgoRSA, 1024, nil)
}

func TestPKAOpKindPanics(t *testing.T) {
	eng := sim.NewEngine()
	pka := NewPKAEngine(eng)
	defer func() {
		if recover() == nil {
			t.Fatal("AES as op did not panic")
		}
	}()
	pka.SubmitOp(AlgoAES, nil)
}
