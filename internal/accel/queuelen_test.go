package accel

import (
	"testing"

	"repro/internal/sim"
)

// TestPKAQueueLenTracksBacklog pins the command-count register read:
// commands rung minus completions DMA'd back. Spill policies watermark
// on this number, so it must rise while the engine is behind and read
// zero once the queue drains — the earlier always-zero blind spot made
// SpillToHost and DropWhenFull measure identical crypto-chain knees.
func TestPKAQueueLenTracksBacklog(t *testing.T) {
	eng := sim.NewEngine()
	pka := NewPKAEngine(eng)
	if pka.QueueLen() != 0 {
		t.Fatalf("idle QueueLen = %d, want 0", pka.QueueLen())
	}

	// Ring 32 bulk commands at one instant: the engine serves one at a
	// time, so everything behind the head is queued backlog.
	const cmds = 32
	done := 0
	peak := 0
	for i := 0; i < cmds; i++ {
		if err := pka.SubmitBulk(AlgoAES, 64<<10, func(_, _ sim.Time) { done++ }); err != nil {
			t.Fatal(err)
		}
		if q := pka.QueueLen(); q > peak {
			peak = q
		}
	}
	if peak < cmds/2 {
		t.Fatalf("peak QueueLen = %d after ringing %d commands, want a real backlog", peak, cmds)
	}

	// Drain partially and re-read: backlog must shrink monotonically to
	// zero with the completions.
	eng.Run()
	if done != cmds {
		t.Fatalf("completed %d of %d commands", done, cmds)
	}
	if pka.QueueLen() != 0 {
		t.Fatalf("drained QueueLen = %d, want 0", pka.QueueLen())
	}
}
