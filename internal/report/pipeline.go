package report

import (
	"fmt"
	"io"

	"repro/internal/core"
)

// Pipeline renders multi-phase pipeline operating points: the familiar
// throughput/latency/power row per measurement, then a per-phase
// breakdown of where each request family's work ran (served on the
// phase's own resource, spilled to a host core by the fallback policy,
// or dropped at a full queue).
func Pipeline(w io.Writer, ms []core.PipelineMeasurement) {
	t := NewTable("Pipelines — multi-phase requests with heterogeneous fallback",
		"pipeline", "policy", "offered Gb/s", "tput Gb/s", "delivered",
		"p99", "spilled", "dropped", "power W")
	for _, m := range ms {
		t.Add(
			m.Pipeline, m.Policy,
			fmt.Sprintf("%.2f", m.Point.OfferedGbps),
			fmt.Sprintf("%.2f", m.Point.TputGbps),
			fmt.Sprintf("%.0f%%", m.Point.DeliveredFrac*100),
			m.Point.Latency.P99.String(),
			fmt.Sprintf("%d", m.Spilled),
			fmt.Sprintf("%d", m.Dropped),
			fmt.Sprintf("%.1f", m.Point.ServerPowerW),
		)
	}
	t.Render(w)
	pt := NewTable("  per-phase accounting",
		"pipeline", "policy", "phase", "resource", "served", "spilled", "dropped")
	for _, m := range ms {
		for _, ph := range m.Phases {
			pt.Add(
				m.Pipeline, m.Policy, ph.Name, string(ph.Resource),
				fmt.Sprintf("%d", ph.Served),
				fmt.Sprintf("%d", ph.Spilled),
				fmt.Sprintf("%d", ph.Dropped),
			)
		}
	}
	pt.Render(w)
}

// Saturation renders saturation-search load walks: one curve per
// (pipeline, policy) with the knee — the highest offered load still
// sustained at a reasonable p99 — marked on its row.
func Saturation(w io.Writer, rs []core.SaturationResult) {
	for _, r := range rs {
		t := NewTable(
			fmt.Sprintf("Saturation — %s [%s] (knee %.2f Gb/s)", r.Pipeline, r.Policy, r.KneeGbps),
			"offered Gb/s", "tput Gb/s", "delivered", "p99", "spilled", "dropped", "knee")
		for _, p := range r.Points {
			mark := ""
			//snicvet:ignore floateq knee is copied from the point's offered load, never recomputed
			if r.KneeGbps > 0 && p.OfferedGbps == r.KneeGbps {
				mark = "◄"
			}
			t.Add(
				fmt.Sprintf("%.2f", p.OfferedGbps),
				fmt.Sprintf("%.2f", p.M.Point.TputGbps),
				fmt.Sprintf("%.0f%%", p.M.Point.DeliveredFrac*100),
				p.M.Point.Latency.P99.String(),
				fmt.Sprintf("%d", p.M.Spilled),
				fmt.Sprintf("%d", p.M.Dropped),
				mark,
			)
		}
		t.Render(w)
	}
}
