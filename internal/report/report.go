// Package report renders experiment results in the paper's shapes:
// Fig. 4-style normalized bars, Fig. 5 rate-sweep series, Fig. 6 power
// and efficiency columns, Fig. 7 rate traces, and the Table 4/Table 5
// layouts — all as plain text suitable for terminals and EXPERIMENTS.md.
package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/tco"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns an empty table.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; cells beyond the header count are dropped loudly.
func (t *Table) Add(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("report: row has %d cells, table has %d columns", len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Fig4 renders the normalized throughput/p99 rows grouped by category.
func Fig4(w io.Writer, rows []core.Fig4Row) {
	byCat := map[core.Category][]core.Fig4Row{}
	var order []core.Category
	for _, r := range rows {
		if _, seen := byCat[r.Config.Category]; !seen {
			order = append(order, r.Config.Category)
		}
		byCat[r.Config.Category] = append(byCat[r.Config.Category], r)
	}
	fmt.Fprintln(w, "Fig. 4 — Max sustainable throughput and p99 latency of the SNIC")
	fmt.Fprintln(w, "processor, normalized to the host CPU (SNIC ÷ host)")
	for _, cat := range order {
		t := NewTable(fmt.Sprintf("\n[%s]", cat),
			"function/variant", "platform", "tput ratio", "p99 ratio",
			"host Gb/s", "host p99", "snic Gb/s", "snic p99")
		for _, r := range byCat[cat] {
			t.Add(
				r.Config.Name(),
				string(r.Config.SNICPlatform()),
				fmt.Sprintf("%.2fx", r.TputRatio),
				fmt.Sprintf("%.2fx", r.P99Ratio),
				fmt.Sprintf("%.2f", r.Host.TputGbps),
				r.Host.Latency.P99.String(),
				fmt.Sprintf("%.2f", r.SNIC.TputGbps),
				r.SNIC.Latency.P99.String(),
			)
		}
		t.Render(w)
	}
}

// Fig5 renders the REM rate sweep as aligned series.
func Fig5(w io.Writer, points []core.Fig5Point) {
	t := NewTable("Fig. 5 — REM throughput and p99 vs offered rate (MTU packets)",
		"offered Gb/s",
		"host-img Gb/s", "host-img p99",
		"host-exe Gb/s", "host-exe p99",
		"accel Gb/s", "accel p99")
	for _, p := range points {
		img := p.Curves["host/file_image"]
		exe := p.Curves["host/file_executable"]
		acc := p.Curves["accel"]
		t.Add(
			fmt.Sprintf("%.0f", p.OfferedGbps),
			fmt.Sprintf("%.1f", img.TputGbps), img.Latency.P99.String(),
			fmt.Sprintf("%.1f", exe.TputGbps), exe.Latency.P99.String(),
			fmt.Sprintf("%.1f", acc.TputGbps), acc.Latency.P99.String(),
		)
	}
	t.Render(w)
}

// Fig6 renders the power/efficiency columns.
func Fig6(w io.Writer, rows []core.Fig4Row) {
	t := NewTable("Fig. 6 — Average power and normalized energy efficiency",
		"function/variant",
		"host W", "host SNIC-W", "snic W", "snic SNIC-W",
		"eff ratio")
	for _, r := range rows {
		t.Add(
			r.Config.Name(),
			fmt.Sprintf("%.1f", r.Host.ServerPowerW),
			fmt.Sprintf("%.1f", r.Host.SNICPowerW),
			fmt.Sprintf("%.1f", r.SNIC.ServerPowerW),
			fmt.Sprintf("%.1f", r.SNIC.SNICPowerW),
			fmt.Sprintf("%.2fx", r.EffRatio),
		)
	}
	t.Render(w)
}

// Fig7 renders a rate trace as a coarse ASCII sparkline plus stats.
func Fig7(w io.Writer, series *stats.TimeSeries, maxPoints int) {
	ds := series.Downsample(maxPoints)
	max := ds.Max()
	fmt.Fprintf(w, "Fig. 7 — Network data rate over time (mean %.2f Gb/s, peak %.2f Gb/s)\n",
		series.Mean(), series.Max())
	glyphs := []rune("▁▂▃▄▅▆▇█")
	var sb strings.Builder
	for _, v := range ds.Values {
		idx := 0
		if max > 0 {
			idx = int(v / max * float64(len(glyphs)-1))
		}
		if idx >= len(glyphs) {
			idx = len(glyphs) - 1
		}
		sb.WriteRune(glyphs[idx])
	}
	fmt.Fprintf(w, "  %s\n", sb.String())
}

// Table4 renders the trace-replay comparison.
func Table4(w io.Writer, rows []core.TraceReplayResult) {
	t := NewTable("Table 4 — REM on the hyperscaler trace",
		"metric", "host processing", "SNIC processing")
	var host, snic core.TraceReplayResult
	for _, r := range rows {
		if r.Platform == core.HostCPU {
			host = r
		} else {
			snic = r
		}
	}
	t.Add("Throughput (Gb/s)", fmt.Sprintf("%.2f", host.AvgTputGbps), fmt.Sprintf("%.2f", snic.AvgTputGbps))
	t.Add("p99 Latency (µs)", fmt.Sprintf("%.2f", host.P99.Micros()), fmt.Sprintf("%.2f", snic.P99.Micros()))
	t.Add("Average Power (W)", fmt.Sprintf("%.2f", host.AvgPowerW), fmt.Sprintf("%.2f", snic.AvgPowerW))
	t.Render(w)
}

// Faults renders the fault-scenario replay family: per scenario, the
// throughput dip, the p99 split around the fault window, recovery time
// and the request fates (retried / rescued / failed-over / dropped).
func Faults(w io.Writer, baseline core.FaultResult, rows []core.FaultResult) {
	t := NewTable("Fault scenarios — hyperscaler trace replay under injected faults",
		"scenario", "tput Gb/s", "dip", "p99 pre", "p99 fault", "p99 post",
		"recovery", "retries", "rescued", "failover", "dropped", "power W")
	add := func(r core.FaultResult) {
		t.Add(
			r.Scenario,
			fmt.Sprintf("%.2f", r.AvgTputGbps),
			fmt.Sprintf("%.0f%%", (1-r.MinDeliveredFrac)*100),
			r.P99Pre.String(), r.P99Fault.String(), r.P99Post.String(),
			r.RecoveryTime.String(),
			fmt.Sprintf("%d", r.Retries),
			fmt.Sprintf("%d", r.Rescued),
			fmt.Sprintf("%d", r.FailedOver),
			fmt.Sprintf("%d", r.Dropped),
			fmt.Sprintf("%.1f", r.AvgPowerW),
		)
	}
	add(baseline)
	for _, r := range rows {
		add(r)
	}
	t.Render(w)
	// Sensor dropouts make the power column untrustworthy for the gapped
	// window; say so instead of letting the average silently span the gap.
	missed := func(r core.FaultResult) uint64 { return r.BMCMissedSamples + r.YoctoMissedSamples }
	all := append([]core.FaultResult{baseline}, rows...)
	gapped := false
	for _, r := range all {
		if missed(r) > 0 {
			gapped = true
			break
		}
	}
	if gapped {
		fmt.Fprintln(w, "  note: power sensors dropped samples during replay; averages span the gaps:")
		for _, r := range all {
			if missed(r) > 0 {
				fmt.Fprintf(w, "    %s: missed %d BMC + %d Yocto-Watt samples\n",
					r.Scenario, r.BMCMissedSamples, r.YoctoMissedSamples)
			}
		}
	}
}

// Table5 renders the TCO analysis.
func Table5(w io.Writer, rows []tco.Row) {
	t := NewTable("Table 5 — 5-year TCO analysis",
		"application", "fleet", "servers", "power/server (W)",
		"power use (kWh)", "power cost ($)", "5-year TCO ($)", "savings")
	for _, r := range rows {
		t.Add(r.Application, "SNIC",
			fmt.Sprintf("%d", r.ServersSNIC),
			fmt.Sprintf("%.0f", r.SNIC.PowerW),
			fmt.Sprintf("%.0f", r.KWhPerServerSNIC),
			fmt.Sprintf("%.0f", r.PowerCostPerServerSNIC),
			fmt.Sprintf("%.0f", r.TCOSNIC),
			fmt.Sprintf("%.1f%%", r.SavingsFrac*100))
		t.Add("", "NIC",
			fmt.Sprintf("%d", r.ServersNIC),
			fmt.Sprintf("%.0f", r.NIC.PowerW),
			fmt.Sprintf("%.0f", r.KWhPerServerNIC),
			fmt.Sprintf("%.0f", r.PowerCostPerServerNIC),
			fmt.Sprintf("%.0f", r.TCONIC),
			"")
	}
	t.Render(w)
}
