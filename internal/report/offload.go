package report

import (
	"fmt"
	"io"

	"repro/internal/core"
)

// Offload renders the flow-offload policy comparison: one row per
// offload policy on the same churny trace, then a flow-plane breakdown
// showing where each policy's rule budget went. The interesting columns
// are SLO attainment and drop rate (the headline comparison), the
// fast-path share (how much traffic the eSwitch actually absorbed), and
// the reject/thrash counts (how hard the policy fought the bounded
// table to get there).
func Offload(w io.Writer, rs []core.OffloadResult) {
	t := NewTable("Flow offload — policies under churn",
		"trace", "policy", "SLO attain", "drop rate", "fast path",
		"p99", "tput Gb/s", "power W")
	for _, r := range rs {
		t.Add(
			r.Name, r.Policy,
			fmt.Sprintf("%.1f%%", r.SLOAttainment*100),
			fmt.Sprintf("%.1f%%", r.DropRate*100),
			fmt.Sprintf("%.1f%%", r.FastPathShare()*100),
			r.P99.String(),
			fmt.Sprintf("%.2f", r.AvgTputGbps),
			fmt.Sprintf("%.1f", r.AvgPowerW),
		)
	}
	t.Render(w)
	ft := NewTable("  flow-plane accounting",
		"policy", "flows", "churned", "inserts", "evictions",
		"rejects", "aborts", "thrash", "occ peak", "K range")
	for _, r := range rs {
		kRange := fmt.Sprintf("%d", r.ThresholdFinal)
		if r.ThresholdMin != r.ThresholdMax {
			kRange = fmt.Sprintf("%d..%d → %d", r.ThresholdMin, r.ThresholdMax, r.ThresholdFinal)
		}
		ft.Add(
			r.Policy,
			fmt.Sprintf("%d", r.FlowsStarted),
			fmt.Sprintf("%d", r.FlowsChurned),
			fmt.Sprintf("%d", r.Inserts),
			fmt.Sprintf("%d", r.Evictions),
			fmt.Sprintf("%d", r.InsertRejects),
			fmt.Sprintf("%d", r.InsertAborts),
			fmt.Sprintf("%d", r.Thrash),
			fmt.Sprintf("%d", r.OccupancyPeak),
			kRange,
		)
	}
	ft.Render(w)
}
