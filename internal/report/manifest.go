package report

import (
	"fmt"
	"io"

	"repro/internal/obs"
)

// Manifests renders the telemetry collector's per-run manifests as a
// text table: one row per instrumented simulation, in the collector's
// deterministic (label, run ID) order.
func Manifests(w io.Writer, ms []obs.RunManifest) {
	t := NewTable("Telemetry — per-run manifests",
		"run id", "label", "requests", "spans", "open", "series", "samples")
	for _, m := range ms {
		t.Add(
			fmt.Sprintf("%016x", m.RunID),
			m.Label,
			fmt.Sprintf("%d", m.Requests),
			fmt.Sprintf("%d", m.Spans),
			fmt.Sprintf("%d", m.OpenSpans),
			fmt.Sprintf("%d", m.Series),
			fmt.Sprintf("%d", m.Samples),
		)
	}
	t.Render(w)
}
