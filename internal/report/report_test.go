package report

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tco"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("title", "a", "bbbb")
	tb.Add("x", "y")
	tb.Add("longer", "z")
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "longer") {
		t.Fatalf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + rule + 2 rows.
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns aligned: header and rows share the separator offset.
	if len(lines[1]) != len(lines[2]) {
		t.Fatalf("header and rule widths differ:\n%s", out)
	}
}

func TestTableBadRowPanics(t *testing.T) {
	tb := NewTable("t", "one")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong cell count did not panic")
		}
	}()
	tb.Add("a", "b")
}

func sampleRow(cat core.Category) core.Fig4Row {
	cfg, err := core.Lookup("udp-echo", "64B")
	if err != nil {
		panic(err)
	}
	return core.Fig4Row{
		Config:    cfg,
		Host:      core.Measurement{TputGbps: 1, Latency: stats.Summary{P99: 100 * sim.Microsecond}, ServerPowerW: 340},
		SNIC:      core.Measurement{TputGbps: 0.14, Latency: stats.Summary{P99: 140 * sim.Microsecond}, ServerPowerW: 255},
		TputRatio: 0.14, P99Ratio: 1.4, EffRatio: 0.19,
	}
}

func TestFig4Render(t *testing.T) {
	var sb strings.Builder
	Fig4(&sb, []core.Fig4Row{sampleRow(core.CategoryMicro)})
	out := sb.String()
	for _, want := range []string{"Fig. 4", "udp-echo/64B", "0.14x", "1.40x"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig4 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig6Render(t *testing.T) {
	var sb strings.Builder
	Fig6(&sb, []core.Fig4Row{sampleRow(core.CategoryMicro)})
	if !strings.Contains(sb.String(), "0.19x") {
		t.Fatalf("Fig6 missing efficiency ratio:\n%s", sb.String())
	}
}

func TestFig7Render(t *testing.T) {
	ts := &stats.TimeSeries{}
	for i := 0; i < 100; i++ {
		ts.Add(sim.Time(i)*sim.Time(sim.Second), float64(i%10))
	}
	var sb strings.Builder
	Fig7(&sb, ts, 40)
	out := sb.String()
	if !strings.Contains(out, "Fig. 7") || !strings.Contains(out, "mean") {
		t.Fatalf("Fig7 header missing:\n%s", out)
	}
	if !strings.ContainsAny(out, "▁▂▃▄▅▆▇█") {
		t.Fatal("sparkline missing")
	}
}

func TestTable4Render(t *testing.T) {
	rows := []core.TraceReplayResult{
		{Platform: core.HostCPU, AvgTputGbps: 0.76, P99: 5070 * sim.Nanosecond, AvgPowerW: 278.3},
		{Platform: core.SNICAccel, AvgTputGbps: 0.76, P99: 17430 * sim.Nanosecond, AvgPowerW: 254.5},
	}
	var sb strings.Builder
	Table4(&sb, rows)
	out := sb.String()
	for _, want := range []string{"0.76", "5.07", "17.43", "278.30", "254.50"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table4 missing %q:\n%s", want, out)
		}
	}
}

func TestTable5Render(t *testing.T) {
	var sb strings.Builder
	Table5(&sb, tco.PaperTable5())
	out := sb.String()
	// REM's savings renders as -2.6% under full-precision arithmetic
	// (the paper's own rounding gives -2.5%); match the sign and leading
	// digits only.
	for _, want := range []string{"Compress", "35", "70.7%", "-2."} {
		if !strings.Contains(out, want) {
			t.Errorf("Table5 missing %q:\n%s", want, out)
		}
	}
}

func TestFig5Render(t *testing.T) {
	p := core.Fig5Point{OfferedGbps: 40, Curves: map[string]core.Measurement{
		"host/file_image":      {TputGbps: 39, Latency: stats.Summary{P99: 40 * sim.Microsecond}},
		"host/file_executable": {TputGbps: 40, Latency: stats.Summary{P99: 5 * sim.Microsecond}},
		"accel":                {TputGbps: 40, Latency: stats.Summary{P99: 25 * sim.Microsecond}},
	}}
	var sb strings.Builder
	Fig5(&sb, []core.Fig5Point{p})
	if !strings.Contains(sb.String(), "Fig. 5") || !strings.Contains(sb.String(), "40") {
		t.Fatalf("Fig5 render broken:\n%s", sb.String())
	}
}

func TestFaultsRenderSensorDropoutFootnote(t *testing.T) {
	base := core.FaultResult{Scenario: "baseline", MinDeliveredFrac: 1}
	clean := core.FaultResult{Scenario: "accel-crash", MinDeliveredFrac: 1}
	gapped := core.FaultResult{Scenario: "sensor-gap", MinDeliveredFrac: 1,
		BMCMissedSamples: 2, YoctoMissedSamples: 7}

	var sb strings.Builder
	Faults(&sb, base, []core.FaultResult{clean, gapped})
	out := sb.String()
	if !strings.Contains(out, "sensor-gap: missed 2 BMC + 7 Yocto-Watt samples") {
		t.Fatalf("dropout footnote missing:\n%s", out)
	}
	if strings.Contains(out, "accel-crash: missed") {
		t.Fatalf("clean scenario must not appear in the footnote:\n%s", out)
	}

	// No dropouts anywhere: no footnote at all.
	sb.Reset()
	Faults(&sb, base, []core.FaultResult{clean})
	if strings.Contains(sb.String(), "missed") {
		t.Fatalf("unexpected footnote without dropouts:\n%s", sb.String())
	}
}

func TestManifestsRender(t *testing.T) {
	var sb strings.Builder
	Manifests(&sb, []obs.RunManifest{
		{RunID: 0xabc, Label: "run x", Requests: 10, Spans: 40, Series: 3, Samples: 90},
	})
	out := sb.String()
	for _, want := range []string{"Telemetry", "run x", "10", "40", "0000000000000abc"} {
		if !strings.Contains(out, want) {
			t.Fatalf("manifest table missing %q:\n%s", want, out)
		}
	}
}
