package report

import (
	"fmt"
	"io"

	"repro/internal/fleet"
)

// Fleet renders fleet-run results in the paper's table style: one row
// per run (typically one per dispatch policy over the same fleet and
// trace), with the 5-year TCO column shown as a delta against the first
// row so policy comparisons read at a glance.
func Fleet(w io.Writer, rows []fleet.Result) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "Fleet — %d servers on the scaled diurnal trace (offered %.2f Gb/s, SLO p99 ≤ %v)\n",
		rows[0].Servers, rows[0].OfferedGbps, rows[0].SLO)
	t := NewTable("",
		"policy", "servers", "agg Gb/s", "delivered", "fleet p99", "SLO att.",
		"util min/avg/max", "W/server", "kWh/day", "5-yr TCO Δ")
	base := rows[0].TCO5yrUSD
	for i, r := range rows {
		delta := "baseline"
		if i > 0 {
			delta = fmt.Sprintf("%+.0f $", r.TCO5yrUSD-base)
		}
		t.Add(
			string(r.Policy),
			fmt.Sprintf("%d", r.Servers),
			fmt.Sprintf("%.2f", r.AggTputGbps),
			fmt.Sprintf("%.1f%%", r.DeliveredFrac*100),
			r.FleetP99.String(),
			fmt.Sprintf("%.2f%%", r.Attainment*100),
			fmt.Sprintf("%.2f/%.2f/%.2f", r.UtilMin, r.UtilMean, r.UtilMax),
			fmt.Sprintf("%.1f", r.AvgPowerPerServerW),
			fmt.Sprintf("%.1f", r.EnergyKWhPerDay),
			delta,
		)
	}
	t.Render(w)
}

// FleetServers renders the per-server breakdown of one fleet run,
// grouped by class (identical servers in a class share one simulated
// measurement, so one row per class suffices).
func FleetServers(w io.Writer, r fleet.Result) {
	fmt.Fprintf(w, "Per-server detail — policy %s\n", r.Policy)
	t := NewTable("", "class", "platform", "servers", "offered Gb/s", "tput Gb/s", "util", "W", "p99", "dropped")
	type agg struct {
		count   int
		first   fleet.ServerResult
		dropped uint64
	}
	var order []string
	byClass := map[string]*agg{}
	for _, s := range r.PerServer {
		a, ok := byClass[s.Class]
		if !ok {
			a = &agg{first: s}
			byClass[s.Class] = a
			order = append(order, s.Class)
		}
		a.count++
		a.dropped += s.Dropped
	}
	for _, cl := range order {
		a := byClass[cl]
		s := a.first
		t.Add(cl, string(s.Platform), fmt.Sprintf("%d", a.count),
			fmt.Sprintf("%.3f", s.OfferedGbps), fmt.Sprintf("%.3f", s.TputGbps),
			fmt.Sprintf("%.2f", s.Util), fmt.Sprintf("%.1f", s.PowerW),
			s.P99.String(), fmt.Sprintf("%d", a.dropped))
	}
	t.Render(w)
}

// Provision renders the provisioning-search table — the generalization
// of Table 5: per application, the minimum fleet of each flavour that
// serves the target load, and the lifetime cost of each.
func Provision(w io.Writer, rows []fleet.ProvisionResult) {
	fmt.Fprintln(w, "Provisioning — minimum servers meeting the target load (generalized Table 5)")
	t := NewTable("",
		"app", "target Gb/s", "SNIC fleet", "NIC fleet", "NIC/SNIC",
		"W/SNIC srv", "W/NIC srv", "TCO SNIC", "TCO NIC", "savings", "probes")
	for _, r := range rows {
		t.Add(
			r.App,
			fmt.Sprintf("%.1f", r.TargetGbps),
			fmt.Sprintf("%d× %s", r.ServersSNIC, r.SNICPlatform),
			fmt.Sprintf("%d× host", r.ServersNIC),
			fmt.Sprintf("%.2fx", r.Ratio),
			fmt.Sprintf("%.1f", r.SNICPowerW),
			fmt.Sprintf("%.1f", r.NICPowerW),
			fmt.Sprintf("$%.0f", r.TCOSNIC),
			fmt.Sprintf("$%.0f", r.TCONIC),
			fmt.Sprintf("%.1f%%", r.SavingsFrac*100),
			fmt.Sprintf("%d", r.Probes),
		)
	}
	t.Render(w)
}
