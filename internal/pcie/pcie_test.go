package pcie

import (
	"testing"

	"repro/internal/sim"
)

func TestGen4x16Bandwidth(t *testing.T) {
	cfg := Gen4x16()
	// 16 GT/s × 16 lanes × 128/130 × 0.8 ≈ 201.6 Gb/s ≈ 25.2 GB/s.
	bps := cfg.UsableBitsPerSec()
	if bps < 195e9 || bps > 210e9 {
		t.Fatalf("usable bandwidth = %v bits/s, want ~202e9", bps)
	}
}

func TestDMALatencyFloor(t *testing.T) {
	eng := sim.NewEngine()
	bus := NewBus(eng, Gen4x16())
	var arrived sim.Time
	bus.DMA(ToHost, 64, func() { arrived = eng.Now() })
	eng.Run()
	// Descriptor round trip (900ns) + half-RT propagation (450ns) +
	// 64B serialization: a small DMA is dominated by latency, not size.
	if arrived < 1300 || arrived > 1500 {
		t.Fatalf("64B DMA arrival = %v, want ~1.35-1.4µs", arrived)
	}
}

func TestDMABandwidthForLargeTransfers(t *testing.T) {
	eng := sim.NewEngine()
	bus := NewBus(eng, Gen4x16())
	const size = 1 << 20 // 1 MB
	var arrived sim.Time
	bus.DMA(ToDevice, size, func() { arrived = eng.Now() })
	eng.Run()
	// 1 MB at ~202 Gb/s ≈ 41.5 µs; latency adds ~1.35 µs.
	us := sim.Duration(arrived).Micros()
	if us < 40 || us > 46 {
		t.Fatalf("1MB DMA took %.1f µs, want ~43", us)
	}
}

func TestDMADirectionsIndependent(t *testing.T) {
	eng := sim.NewEngine()
	bus := NewBus(eng, Gen4x16())
	var upDone, downDone sim.Time
	bus.DMA(ToHost, 1<<20, func() { upDone = eng.Now() })
	bus.DMA(ToDevice, 1<<20, func() { downDone = eng.Now() })
	eng.Run()
	// Full duplex: both finish at the same time, not serialized.
	diff := upDone - downDone
	if diff < 0 {
		diff = -diff
	}
	if diff > sim.Time(sim.Microsecond) {
		t.Fatalf("directions serialized: up=%v down=%v", upDone, downDone)
	}
	if bus.DMACount() != 2 {
		t.Fatalf("DMA count = %d, want 2", bus.DMACount())
	}
}

func TestDoorbell(t *testing.T) {
	eng := sim.NewEngine()
	bus := NewBus(eng, Gen4x16())
	var at sim.Time
	bus.Doorbell(func() { at = eng.Now() })
	eng.Run()
	// 120ns MMIO + 450ns half-RT = 570ns.
	if at != 570 {
		t.Fatalf("doorbell visible at %v, want 570ns", at)
	}
	if bus.DoorbellCount() != 1 {
		t.Fatal("doorbell not counted")
	}
}

func TestUnknownGenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown PCIe gen did not panic")
		}
	}()
	(Config{Gen: 9, Lanes: 16}).UsableBitsPerSec()
}
