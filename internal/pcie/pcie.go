// Package pcie models the PCIe Gen4 ×16 interconnect between the host CPU
// and the BlueField-2 (paper Table 1, §2.1).
//
// The paper's framing of SNICs leans on prior work's point that
// "PCIe-attached accelerators [struggle to] efficiently execute
// latency-sensitive functions processing small microsecond-scale tasks
// ... due to long latency of the PCIe interconnect". This package is that
// latency: MMIO doorbells, DMA round trips, and the lanes' serialization
// bandwidth.
package pcie

import (
	"fmt"

	"repro/internal/sim"
)

// Config describes a PCIe connection.
type Config struct {
	Name  string
	Gen   int
	Lanes int
	// MMIOWriteNs is the posted-write cost for a doorbell ring as seen by
	// the issuing CPU.
	MMIOWriteNs float64
	// RoundTripNs is the non-posted read / completion round-trip latency.
	RoundTripNs float64
}

// Gen4x16 returns the BlueField-2's host interface: PCIe 4.0 ×16.
// Usable payload bandwidth after 128b/130b and TLP overhead is ~25 GB/s
// per direction.
func Gen4x16() Config {
	return Config{
		Name:        "PCIe Gen4 x16",
		Gen:         4,
		Lanes:       16,
		MMIOWriteNs: 120,
		RoundTripNs: 900,
	}
}

// UsableBitsPerSec returns effective per-direction bandwidth in bits/s.
func (c Config) UsableBitsPerSec() float64 {
	perLaneGTps := map[int]float64{1: 2.5, 2: 5, 3: 8, 4: 16, 5: 32}[c.Gen]
	if perLaneGTps == 0 {
		panic(fmt.Sprintf("pcie: unknown generation %d", c.Gen))
	}
	raw := perLaneGTps * 1e9 * float64(c.Lanes)
	// 128b/130b line coding plus ~20% TLP/DLLP protocol overhead.
	return raw * (128.0 / 130.0) * 0.80
}

func (c Config) String() string {
	return fmt.Sprintf("%s (%.1f GB/s usable, %.0f ns RT)",
		c.Name, c.UsableBitsPerSec()/8e9, c.RoundTripNs)
}

// Bus is a live PCIe connection with independent upstream (device→host)
// and downstream (host→device) serialization resources.
type Bus struct {
	Config Config
	eng    *sim.Engine
	up     *sim.Link
	down   *sim.Link

	dmas      uint64
	doorbells uint64
}

// NewBus returns a bus using the given configuration.
func NewBus(eng *sim.Engine, cfg Config) *Bus {
	prop := sim.Duration(cfg.RoundTripNs / 2)
	bps := cfg.UsableBitsPerSec()
	return &Bus{
		Config: cfg,
		eng:    eng,
		up:     sim.NewLink(eng, bps, prop),
		down:   sim.NewLink(eng, bps, prop),
	}
}

// Direction selects a transfer direction.
type Direction int

const (
	// ToDevice moves data host → SNIC.
	ToDevice Direction = iota
	// ToHost moves data SNIC → host.
	ToHost
)

// DMA transfers size bytes in the given direction and calls done when the
// last byte lands. The descriptor fetch adds one round trip up front,
// which is why microsecond-scale tasks feel PCIe so acutely.
func (b *Bus) DMA(dir Direction, size int, done func()) {
	b.dmas++
	l := b.down
	if dir == ToHost {
		l = b.up
	}
	b.eng.After(sim.Duration(b.Config.RoundTripNs), func() {
		l.Send(size, done)
	})
}

// Doorbell models an MMIO posted write (e.g. ringing an accelerator's
// command-count register) and calls rung after the write is visible to
// the device.
func (b *Bus) Doorbell(rung func()) {
	b.doorbells++
	b.eng.After(sim.Duration(b.Config.MMIOWriteNs)+sim.Duration(b.Config.RoundTripNs/2), rung)
}

// Observe installs a telemetry observer on both directions, named
// "pcie/up" (device→host) and "pcie/down" (host→device).
func (b *Bus) Observe(obs sim.LinkObserver) {
	b.up.Observe("pcie/up", obs)
	b.down.Observe("pcie/down", obs)
}

// UpBacklog returns the device→host serialization backlog.
func (b *Bus) UpBacklog() sim.Duration { return b.up.Backlog() }

// DownBacklog returns the host→device serialization backlog.
func (b *Bus) DownBacklog() sim.Duration { return b.down.Backlog() }

// DMACount returns the number of DMA transfers issued.
func (b *Bus) DMACount() uint64 { return b.dmas }

// DoorbellCount returns the number of doorbell writes issued.
func (b *Bus) DoorbellCount() uint64 { return b.doorbells }

// UpUtilization returns the device→host direction's busy fraction.
func (b *Bus) UpUtilization() float64 { return b.up.Utilization() }

// DownUtilization returns the host→device direction's busy fraction.
func (b *Bus) DownUtilization() float64 { return b.down.Utilization() }
