package nic

import (
	"testing"

	"repro/internal/sim"
)

// fakeFlowTable marks a fixed set of flows as resident and records the
// lookup sequence.
type fakeFlowTable struct {
	resident map[uint64]bool
	lookups  []uint64
}

func (f *fakeFlowTable) Lookup(flowID uint64, _ sim.Time) bool {
	f.lookups = append(f.lookups, flowID)
	return f.resident[flowID]
}

func TestFlowSteerSplitsFastAndSlow(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewESwitch(eng)
	tbl := &fakeFlowTable{resident: map[uint64]bool{7: true}}
	sw.Program(FlowSteer(eng, tbl, ToWire, ToSNICCPU))

	var fast, slow []uint64
	sw.Connect(ToWire, func(p *Packet) { fast = append(fast, p.Flow) })
	sw.Connect(ToSNICCPU, func(p *Packet) { slow = append(slow, p.Flow) })

	for _, fl := range []uint64{7, 9, 7} {
		sw.Ingress(&Packet{Seq: fl, Size: MTU, Flow: fl})
	}
	eng.Run()

	if len(fast) != 2 || fast[0] != 7 || fast[1] != 7 {
		t.Fatalf("resident flow should take the fast path: %v", fast)
	}
	if len(slow) != 1 || slow[0] != 9 {
		t.Fatalf("non-resident flow should take the slow path: %v", slow)
	}
	if sw.Forwarded(ToWire) != 2 || sw.Forwarded(ToSNICCPU) != 1 {
		t.Fatalf("forwarded counters: fast %d slow %d", sw.Forwarded(ToWire), sw.Forwarded(ToSNICCPU))
	}
	if len(tbl.lookups) != 3 {
		t.Fatalf("every ingress packet should consult the table: %v", tbl.lookups)
	}
}

// The fast path pays only the hardware match-action delay — no PCIe
// crossing — so it must deliver strictly earlier than a host-destined
// packet steered at the same instant.
func TestFastPathPaysOnlySwitchDelay(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewESwitch(eng)
	tbl := &fakeFlowTable{resident: map[uint64]bool{1: true}}
	sw.Program(FlowSteer(eng, tbl, ToWire, ToHostCPU))

	var fastAt, slowAt sim.Time
	sw.Connect(ToWire, func(*Packet) { fastAt = eng.Now() })
	sw.Connect(ToHostCPU, func(*Packet) { slowAt = eng.Now() })

	sw.Ingress(&Packet{Seq: 1, Flow: 1, Size: MTU})
	sw.Ingress(&Packet{Seq: 2, Flow: 2, Size: MTU})
	eng.Run()

	if fastAt != sim.Time(0).Add(sw.SwitchDelay) {
		t.Fatalf("fast path delivered at %v, want switch delay %v", fastAt, sw.SwitchDelay)
	}
	if want := sim.Time(0).Add(sw.SwitchDelay + sw.HostExtraDelay); slowAt != want {
		t.Fatalf("host path delivered at %v, want %v", slowAt, want)
	}
}

func TestFlowSteerPanicsOnNilInputs(t *testing.T) {
	eng := sim.NewEngine()
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"nil engine", func() { FlowSteer(nil, &fakeFlowTable{}, ToWire, ToSNICCPU) }},
		{"nil table", func() { FlowSteer(eng, nil, ToWire, ToSNICCPU) }},
	} {
		name, fn := tc.name, tc.fn
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
