// Package nic models the network interface hardware of the testbed: the
// 100 Gb/s ConnectX-6 Dx port, the embedded switch (eSwitch) inside it,
// and the BlueField-2 operation modes of paper §2.3.
//
// In on-path mode (the only mode the paper evaluates — NVIDIA discontinued
// off-path support) the BlueField-2 CPU programs OvS forwarding rules into
// the eSwitch, which then steers each ingress packet in hardware either to
// the SNIC CPU's local stack or across PCIe to the host CPU.
package nic

import (
	"fmt"

	"repro/internal/sim"
)

// LineRateBits is the port speed of both the ConnectX-6 Dx and the
// BlueField-2 (dual 100 Gb/s ports; the testbed uses one).
const LineRateBits = 100e9

// EthernetOverhead is the per-frame wire overhead (preamble 8 + FCS 4 +
// IFG 12) added on top of the L2 frame.
const EthernetOverhead = 24

// MTU is the paper's OvS/REM packet size (§3.4).
const MTU = 1500

// Packet is the unit that crosses the simulated wire.
type Packet struct {
	Seq    uint64
	Size   int      // L2 frame bytes (headers + payload)
	Flow   uint64   // flow identifier for steering and NAT/OvS lookups
	SentAt sim.Time // client-side departure time, for RTT accounting
	// Span optionally carries a telemetry span identifier so sinks can
	// attach stage timings to the request that triggered them; zero
	// means untraced.
	Span uint32
	// Payload carries the application-level object (a KVS request, a
	// chunk to compress, ...). The simulator moves it; functions parse it.
	Payload any
}

// Destination names the on-NIC steering targets of Fig. 2.
type Destination int

const (
	// ToHostCPU steers across PCIe into the host networking stack.
	ToHostCPU Destination = iota
	// ToSNICCPU steers into the BlueField-2 Arm cores' local stack.
	ToSNICCPU
	// ToAccelerator steers to SNIC CPU staging cores that feed a
	// fixed-function engine (REM/compress path of §2.2).
	ToAccelerator
	// Drop discards the packet in hardware.
	Drop
	// ToWire forwards straight back out the port in hardware — the
	// per-flow offload fast path: a resident eSwitch rule rewrites and
	// reflects the packet with no CPU anywhere touching it.
	ToWire
)

func (d Destination) String() string {
	switch d {
	case ToHostCPU:
		return "host-cpu"
	case ToSNICCPU:
		return "snic-cpu"
	case ToAccelerator:
		return "snic-accel"
	case Drop:
		return "drop"
	case ToWire:
		return "wire-fast"
	default:
		return fmt.Sprintf("dest(%d)", int(d))
	}
}

// Mode is the BlueField-2 operation mode (paper §2.3).
type Mode int

const (
	// OnPath: SNIC CPU is the control plane; all steering rules live in
	// the eSwitch it programs. Required for the accelerators.
	OnPath Mode = iota
	// OffPath: the SNIC appears as an independent Ethernet node;
	// forwarding is by destination MAC. Modelled for completeness but
	// unused by the experiments, as in the paper.
	OffPath
)

func (m Mode) String() string {
	if m == OffPath {
		return "off-path"
	}
	return "on-path"
}

// SteerFunc decides a packet's destination; it is the data-plane rule set
// the control plane installs.
type SteerFunc func(*Packet) Destination

// Sink consumes steered packets.
type Sink func(*Packet)

// ESwitch is the embedded switch: hardware match-action steering at line
// rate. Forwarding adds a small fixed latency; host-destined packets pay
// an additional PCIe crossing handled by the configured hostDelay.
type ESwitch struct {
	eng   *sim.Engine
	mode  Mode
	steer SteerFunc
	sinks map[Destination]Sink

	// SwitchDelay is the hardware match-action latency.
	SwitchDelay sim.Duration
	// HostExtraDelay is the added PCIe DMA latency for ToHostCPU
	// deliveries (the packet must cross the interconnect to host DRAM).
	HostExtraDelay sim.Duration

	forwarded map[Destination]uint64
}

// NewESwitch returns an eSwitch in on-path mode with typical ConnectX-6
// hardware latencies and a default-drop rule set.
func NewESwitch(eng *sim.Engine) *ESwitch {
	return &ESwitch{
		eng:            eng,
		mode:           OnPath,
		steer:          func(*Packet) Destination { return Drop },
		sinks:          make(map[Destination]Sink),
		SwitchDelay:    300 * sim.Nanosecond,
		HostExtraDelay: 700 * sim.Nanosecond,
		forwarded:      make(map[Destination]uint64),
	}
}

// SetMode selects the operation mode.
func (sw *ESwitch) SetMode(m Mode) { sw.mode = m }

// Mode returns the current operation mode.
func (sw *ESwitch) Mode() Mode { return sw.mode }

// Program installs the steering rules (the OvS control-plane action).
func (sw *ESwitch) Program(f SteerFunc) {
	if f == nil {
		panic("nic: programming nil steering function")
	}
	sw.steer = f
}

// Connect registers the consumer for a destination.
func (sw *ESwitch) Connect(d Destination, s Sink) {
	if s == nil {
		panic("nic: connecting nil sink")
	}
	sw.sinks[d] = s
}

// Ingress accepts a packet from the wire and steers it.
func (sw *ESwitch) Ingress(p *Packet) {
	d := sw.steer(p)
	sw.forwarded[d]++
	if d == Drop {
		return
	}
	delay := sw.SwitchDelay
	if d == ToHostCPU {
		delay += sw.HostExtraDelay
	}
	sink, ok := sw.sinks[d]
	if !ok {
		// A rule steering to an unconnected destination is a
		// configuration bug; drop loudly.
		panic(fmt.Sprintf("nic: no sink connected for %v", d))
	}
	sw.eng.After(delay, func() { sink(p) })
}

// Forwarded returns how many packets were steered to d (including drops).
func (sw *ESwitch) Forwarded(d Destination) uint64 { return sw.forwarded[d] }

// Wire is a full-duplex 100 GbE cable between client and server. Each
// direction is an independent serializing link; per-frame Ethernet
// overhead is added here so models deal only in L2 frame sizes.
type Wire struct {
	eng            *sim.Engine
	clientToServer *sim.Link
	serverToClient *sim.Link
}

// NewWire returns a wire with the given one-way propagation delay
// (back-to-back DAC cables are a few hundred nanoseconds end to end).
func NewWire(eng *sim.Engine, propagation sim.Duration) *Wire {
	return NewWireRate(eng, LineRateBits, propagation)
}

// NewWireRate returns a wire whose two directions serialize at rateBits
// bits/s instead of the default 100 GbE line rate (rateBits <= 0 keeps
// the default) — slower optics or a rate-limited testbed port.
func NewWireRate(eng *sim.Engine, rateBits float64, propagation sim.Duration) *Wire {
	if rateBits <= 0 {
		rateBits = LineRateBits
	}
	return &Wire{
		eng:            eng,
		clientToServer: sim.NewLink(eng, rateBits, propagation),
		serverToClient: sim.NewLink(eng, rateBits, propagation),
	}
}

// SendToServer transmits a frame toward the server and delivers it to
// recv at arrival.
func (w *Wire) SendToServer(p *Packet, recv func(*Packet)) {
	w.clientToServer.Send(p.Size+EthernetOverhead, func() { recv(p) })
}

// SendToClient transmits a frame toward the client.
func (w *Wire) SendToClient(p *Packet, recv func(*Packet)) {
	w.serverToClient.Send(p.Size+EthernetOverhead, func() { recv(p) })
}

// SetDown flaps both directions of the cable (carrier loss): frames sent
// while down are lost in transit and never delivered. Transport-level
// recovery — timeouts, retries — is the caller's job, exactly as on a
// real wire.
func (w *Wire) SetDown(down bool) {
	w.clientToServer.SetDown(down)
	w.serverToClient.SetDown(down)
}

// Down reports whether the wire is currently flapped.
func (w *Wire) Down() bool { return w.clientToServer.Down() }

// SetRateFactor caps both directions at factor × line rate (a link
// renegotiated down under thermal or signal-integrity pressure).
func (w *Wire) SetRateFactor(f float64) {
	w.clientToServer.SetRateFactor(f)
	w.serverToClient.SetRateFactor(f)
}

// Lost returns frames lost to flaps, both directions combined.
func (w *Wire) Lost() uint64 { return w.clientToServer.Lost() + w.serverToClient.Lost() }

// ServerDirUtilization reports the client→server direction utilization.
func (w *Wire) ServerDirUtilization() float64 { return w.clientToServer.Utilization() }

// ClientDirUtilization reports the server→client direction utilization.
func (w *Wire) ClientDirUtilization() float64 { return w.serverToClient.Utilization() }

// Observe installs a telemetry observer on both directions, named
// "wire/c2s" (client→server) and "wire/s2c" (server→client).
func (w *Wire) Observe(obs sim.LinkObserver) {
	w.clientToServer.Observe("wire/c2s", obs)
	w.serverToClient.Observe("wire/s2c", obs)
}

// ServerDirBacklog returns the client→server serialization backlog.
func (w *Wire) ServerDirBacklog() sim.Duration { return w.clientToServer.Backlog() }

// ClientDirBacklog returns the server→client serialization backlog.
func (w *Wire) ClientDirBacklog() sim.Duration { return w.serverToClient.Backlog() }

// ServerDirBytes returns bytes sent toward the server.
func (w *Wire) ServerDirBytes() uint64 { return w.clientToServer.BytesSent() }

// ClientDirBytes returns bytes sent toward the client.
func (w *Wire) ClientDirBytes() uint64 { return w.serverToClient.BytesSent() }
