package nic

import (
	"testing"

	"repro/internal/sim"
)

func TestESwitchSteering(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewESwitch(eng)
	var toHost, toSNIC int
	sw.Connect(ToHostCPU, func(*Packet) { toHost++ })
	sw.Connect(ToSNICCPU, func(*Packet) { toSNIC++ })
	sw.Program(func(p *Packet) Destination {
		if p.Flow%2 == 0 {
			return ToHostCPU
		}
		return ToSNICCPU
	})
	for i := uint64(0); i < 10; i++ {
		sw.Ingress(&Packet{Flow: i, Size: 64})
	}
	eng.Run()
	if toHost != 5 || toSNIC != 5 {
		t.Fatalf("steered host=%d snic=%d, want 5/5", toHost, toSNIC)
	}
	if sw.Forwarded(ToHostCPU) != 5 {
		t.Fatal("forwarding counter wrong")
	}
}

func TestESwitchHostPathCostsMore(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewESwitch(eng)
	var hostAt, snicAt sim.Time
	sw.Connect(ToHostCPU, func(*Packet) { hostAt = eng.Now() })
	sw.Connect(ToSNICCPU, func(*Packet) { snicAt = eng.Now() })
	sw.Program(func(p *Packet) Destination {
		if p.Flow == 0 {
			return ToHostCPU
		}
		return ToSNICCPU
	})
	sw.Ingress(&Packet{Flow: 0})
	sw.Ingress(&Packet{Flow: 1})
	eng.Run()
	if hostAt <= snicAt {
		t.Fatalf("host delivery (%v) must be slower than SNIC-local (%v): PCIe crossing", hostAt, snicAt)
	}
}

func TestESwitchDrop(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewESwitch(eng)
	sw.Program(func(*Packet) Destination { return Drop })
	sw.Ingress(&Packet{})
	eng.Run()
	if sw.Forwarded(Drop) != 1 {
		t.Fatal("drop not counted")
	}
}

func TestESwitchUnconnectedSinkPanics(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewESwitch(eng)
	sw.Program(func(*Packet) Destination { return ToAccelerator })
	defer func() {
		if recover() == nil {
			t.Fatal("steering to unconnected destination did not panic")
		}
	}()
	sw.Ingress(&Packet{})
}

func TestESwitchDefaultsOnPath(t *testing.T) {
	sw := NewESwitch(sim.NewEngine())
	if sw.Mode() != OnPath {
		t.Fatal("default mode must be on-path (paper evaluates only on-path)")
	}
	sw.SetMode(OffPath)
	if sw.Mode() != OffPath {
		t.Fatal("mode switch failed")
	}
}

func TestWireLineRate(t *testing.T) {
	eng := sim.NewEngine()
	w := NewWire(eng, 200*sim.Nanosecond)
	received := 0
	// Blast MTU frames for 1 simulated millisecond.
	var send func()
	seq := uint64(0)
	send = func() {
		if eng.Now() >= sim.Time(sim.Millisecond) {
			return
		}
		seq++
		w.SendToServer(&Packet{Seq: seq, Size: MTU}, func(*Packet) { received++ })
		eng.After(sim.DurationOf(MTU+EthernetOverhead, LineRateBits), send)
	}
	eng.At(0, send)
	eng.Run()
	// Goodput at MTU: 1500/1524 × 100 Gb/s ≈ 98.4 Gb/s.
	gbps := float64(received) * MTU * 8 / 1e-3 / 1e9
	if gbps < 96 || gbps > 100 {
		t.Fatalf("MTU goodput = %.1f Gb/s, want ~98", gbps)
	}
}

func TestWireDirectionsIndependent(t *testing.T) {
	eng := sim.NewEngine()
	w := NewWire(eng, 0)
	var a, b sim.Time
	w.SendToServer(&Packet{Size: MTU}, func(*Packet) { a = eng.Now() })
	w.SendToClient(&Packet{Size: MTU}, func(*Packet) { b = eng.Now() })
	eng.Run()
	if a != b {
		t.Fatalf("full duplex broken: %v vs %v", a, b)
	}
	if w.ServerDirBytes() != MTU+EthernetOverhead {
		t.Fatalf("server-dir bytes = %d", w.ServerDirBytes())
	}
}

func TestDestinationStrings(t *testing.T) {
	// Ordered slice, not a map: failure output stays stable run to run.
	for _, c := range []struct {
		d    Destination
		want string
	}{
		{ToHostCPU, "host-cpu"}, {ToSNICCPU, "snic-cpu"},
		{ToAccelerator, "snic-accel"}, {Drop, "drop"},
	} {
		if c.d.String() != c.want {
			t.Errorf("%d.String() = %q, want %q", int(c.d), c.d.String(), c.want)
		}
	}
}
