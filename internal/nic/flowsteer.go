// Flow-table steering: the eSwitch consulting the offload control
// plane's bounded rule table on every ingress packet.
package nic

import "repro/internal/sim"

// FlowTable is the eSwitch-side view of the offload control plane's
// flow table (implemented by internal/flow.Table): a per-packet
// resident-rule match that refreshes rule recency on hit. The lookup
// itself is hardware TCAM/hash matching and adds no latency beyond the
// eSwitch's SwitchDelay.
type FlowTable interface {
	Lookup(flowID uint64, now sim.Time) bool
}

// FlowSteer builds the per-flow offload rule set over a bounded flow
// table: packets whose flow has a resident rule take the hardware fast
// path (fast), everything else goes to the software slow path (slow).
func FlowSteer(eng *sim.Engine, tbl FlowTable, fast, slow Destination) SteerFunc {
	if eng == nil {
		panic("nic: FlowSteer needs an engine")
	}
	if tbl == nil {
		panic("nic: FlowSteer needs a flow table")
	}
	return func(p *Packet) Destination {
		if tbl.Lookup(p.Flow, eng.Now()) {
			return fast
		}
		return slow
	}
}
