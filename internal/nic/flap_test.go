package nic

import (
	"testing"

	"repro/internal/sim"
)

func TestWireFlapLosesFramesBothWays(t *testing.T) {
	eng := sim.NewEngine()
	w := NewWire(eng, 250*sim.Nanosecond)
	delivered := 0
	w.SetDown(true)
	if !w.Down() {
		t.Fatal("wire does not report down after SetDown(true)")
	}
	w.SendToServer(&Packet{Size: MTU}, func(*Packet) { delivered++ })
	w.SendToClient(&Packet{Size: 64}, func(*Packet) { delivered++ })
	eng.Run()
	if delivered != 0 || w.Lost() != 2 {
		t.Fatalf("flapped wire delivered=%d lost=%d, want 0/2", delivered, w.Lost())
	}
	w.SetDown(false)
	w.SendToServer(&Packet{Size: MTU}, func(*Packet) { delivered++ })
	eng.Run()
	if delivered != 1 {
		t.Fatalf("recovered wire delivered=%d, want 1", delivered)
	}
}

func TestWireRateCapDelaysDelivery(t *testing.T) {
	eng := sim.NewEngine()
	w := NewWire(eng, 0)
	var at sim.Time
	// 1226 B frame + 24 B overhead = 1250 B = 100 ns at line rate.
	w.SendToServer(&Packet{Size: 1226}, func(*Packet) { at = eng.Now() })
	eng.Run()
	if at != 100 {
		t.Fatalf("full-rate delivery at %v, want 100ns", at)
	}
	w.SetRateFactor(0.25)
	base := eng.Now()
	w.SendToServer(&Packet{Size: 1226}, func(*Packet) { at = eng.Now() })
	eng.Run()
	if got := at.Sub(base); got != 400 {
		t.Fatalf("quarter-rate delivery took %v, want 400ns", got)
	}
}
