package invariant

import (
	"errors"
	"strings"
	"testing"
)

func TestPhaseLedgerBalancedRunPasses(t *testing.T) {
	c := New("phases").Soft()
	c.PhaseEnter("nat", 1, 0)
	c.PhaseExit("nat", 1, 10)
	c.PhaseEnter("ids", 1, 11)
	c.PhaseExit("ids", 1, 20)
	c.PhaseEnter("nat", 2, 21)
	c.PhaseDrop("nat", 2, 22)
	if err := c.Finish(30); err != nil {
		t.Fatalf("balanced phase ledger should pass: %v", err)
	}
	if got := c.PhaseEntered("nat"); got != 2 {
		t.Fatalf("PhaseEntered(nat) = %d, want 2", got)
	}
}

func TestPhaseDoubleEnterViolates(t *testing.T) {
	c := New("phases").Soft()
	c.PhaseEnter("nat", 1, 0)
	c.PhaseEnter("ids", 1, 1)
	var v *Violation
	if !errors.As(c.Err(), &v) || v.Rule != RulePhase {
		t.Fatalf("want RulePhase violation, got %v", c.Err())
	}
	if !strings.Contains(v.Detail, "still in phase") {
		t.Fatalf("unexpected detail %q", v.Detail)
	}
}

func TestPhaseExitWithoutEnterViolates(t *testing.T) {
	c := New("phases").Soft()
	c.PhaseExit("nat", 7, 0)
	var v *Violation
	if !errors.As(c.Err(), &v) || v.Rule != RulePhase {
		t.Fatalf("want RulePhase violation, got %v", c.Err())
	}
}

func TestPhaseDropInWrongPhaseViolates(t *testing.T) {
	c := New("phases").Soft()
	c.PhaseEnter("nat", 1, 0)
	c.PhaseDrop("ids", 1, 1)
	var v *Violation
	if !errors.As(c.Err(), &v) || v.Rule != RulePhase {
		t.Fatalf("want RulePhase violation, got %v", c.Err())
	}
}

func TestPhaseImbalanceCaughtAtFinish(t *testing.T) {
	c := New("phases").Soft()
	c.PhaseEnter("nat", 1, 0)
	var v *Violation
	if !errors.As(c.Finish(5), &v) || v.Rule != RulePhase {
		t.Fatalf("want RulePhase violation at finish, got %v", c.Finish(5))
	}
}

func TestPhaseMethodsNilSafe(t *testing.T) {
	var c *Checker
	c.PhaseEnter("nat", 1, 0)
	c.PhaseExit("nat", 1, 1)
	c.PhaseDrop("nat", 1, 2)
	if got := c.PhaseEntered("nat"); got != 0 {
		t.Fatalf("nil checker PhaseEntered = %d, want 0", got)
	}
}
