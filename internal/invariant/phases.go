package invariant

import (
	"fmt"

	"repro/internal/sim"
)

// Per-phase conservation ledger for multi-phase pipelines: every hop a
// request takes through a named phase is audited the same way the
// whole-run ledger audits injection/completion. The laws:
//
//   - a request is in at most one phase at a time;
//   - a phase exit or drop matches the phase the request entered;
//   - per phase, entered == exited + dropped at end of run;
//   - no request is still inside a phase when the run finishes.
//
// The ledger allocates lazily on first PhaseEnter, so non-pipeline runs
// pay nothing.

// phaseLedger is one phase's hop accounting.
type phaseLedger struct {
	entered, exited, dropped uint64
}

// ensurePhases lazily allocates the phase ledger maps.
func (c *Checker) ensurePhases() {
	if c.phases == nil {
		c.phases = make(map[string]*phaseLedger)
		c.inPhase = make(map[uint64]string)
	}
}

// phase returns (allocating) the named phase's ledger, tracking
// first-seen order so end-of-run verification is deterministic.
func (c *Checker) phase(name string) *phaseLedger {
	pl, ok := c.phases[name]
	if !ok {
		pl = &phaseLedger{}
		c.phases[name] = pl
		c.phaseOrder = append(c.phaseOrder, name)
	}
	return pl
}

// PhaseEnter records a request entering a named phase. Nil-safe.
func (c *Checker) PhaseEnter(phase string, seq uint64, now sim.Time) {
	if c == nil {
		return
	}
	c.advance(now)
	c.ensurePhases()
	if cur, ok := c.inPhase[seq]; ok {
		c.violate(&Violation{Rule: RulePhase, Time: now, Station: phase, Request: seq,
			Detail: fmt.Sprintf("entered while still in phase %q", cur)})
		return
	}
	c.inPhase[seq] = phase
	c.phase(phase).entered++
}

// PhaseExit records a request leaving the phase it entered. Nil-safe.
func (c *Checker) PhaseExit(phase string, seq uint64, now sim.Time) {
	if c == nil {
		return
	}
	c.advance(now)
	c.ensurePhases()
	cur, ok := c.inPhase[seq]
	switch {
	case !ok:
		c.violate(&Violation{Rule: RulePhase, Time: now, Station: phase, Request: seq,
			Detail: "exited a phase it never entered"})
		return
	case cur != phase:
		c.violate(&Violation{Rule: RulePhase, Time: now, Station: phase, Request: seq,
			Detail: fmt.Sprintf("exited while in phase %q", cur)})
		return
	}
	delete(c.inPhase, seq)
	c.phase(phase).exited++
}

// PhaseDrop records a request shed inside the phase it entered.
// Nil-safe.
func (c *Checker) PhaseDrop(phase string, seq uint64, now sim.Time) {
	if c == nil {
		return
	}
	c.advance(now)
	c.ensurePhases()
	cur, ok := c.inPhase[seq]
	switch {
	case !ok:
		c.violate(&Violation{Rule: RulePhase, Time: now, Station: phase, Request: seq,
			Detail: "dropped in a phase it never entered"})
		return
	case cur != phase:
		c.violate(&Violation{Rule: RulePhase, Time: now, Station: phase, Request: seq,
			Detail: fmt.Sprintf("dropped while in phase %q", cur)})
		return
	}
	delete(c.inPhase, seq)
	c.phase(phase).dropped++
}

// PhaseEntered returns how many hops the named phase admitted. Nil-safe.
func (c *Checker) PhaseEntered(phase string) uint64 {
	if c == nil || c.phases == nil {
		return 0
	}
	pl, ok := c.phases[phase]
	if !ok {
		return 0
	}
	return pl.entered
}

// finishPhases runs the end-of-run per-phase conservation checks, in
// first-seen phase order (deterministic across runs).
func (c *Checker) finishPhases(now sim.Time) {
	for _, name := range c.phaseOrder {
		pl := c.phases[name]
		if pl.entered != pl.exited+pl.dropped {
			c.violate(&Violation{Rule: RulePhase, Time: now, Station: name,
				Detail: fmt.Sprintf("entered %d != exited %d + dropped %d",
					pl.entered, pl.exited, pl.dropped)})
		}
	}
	if n := len(c.inPhase); n > 0 {
		c.violate(&Violation{Rule: RulePhase, Time: now,
			Detail: fmt.Sprintf("%d requests still inside a phase at end of run", n)})
	}
}
