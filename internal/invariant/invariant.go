// Package invariant is the checked-execution mode of the testbed: a set
// of composable observers that validate the simulator's physical laws
// online, while a run executes, instead of trusting golden outputs.
//
// The laws are spec-derived, not behaviour-derived, so they survive any
// engine refactor:
//
//   - request conservation: injected == completed + dropped (+ explained
//     in-flight), for plain runs, trace replays, fleet servers and
//     faulted/failover replays alike;
//   - byte conservation: payload bytes follow the same ledger;
//   - causality: every recorded phase of a request starts no earlier
//     than its arrival and (straggler-free runs) ends no later than its
//     completion, and no span has negative duration;
//   - clock monotonicity: observed virtual time never runs backwards;
//   - queue sanity: station occupancy is never negative, never exceeds
//     the server count, and queues never exceed their capacity.
//
// A Checker is wired exactly like the telemetry recorder (see
// internal/obs): it implements the internal/sim observer interfaces and
// is installed next to the recorder through a tee. With checks off the
// hot path is unchanged — the same single nil guard as telemetry.
//
// Violations fail fast: the checker panics with a typed *Violation
// carrying the run label, virtual time, station and request so a failing
// fuzz case or CI run pinpoints the broken law immediately.
package invariant

import (
	"fmt"

	"repro/internal/sim"
)

// Rule names the class of physical law a violation broke.
type Rule string

// The checked rules.
const (
	// RuleConservation: injected != completed + dropped + in-flight.
	RuleConservation Rule = "request-conservation"
	// RuleBytes: payload bytes in != bytes completed + bytes dropped.
	RuleBytes Rule = "byte-conservation"
	// RuleRequestState: an impossible per-request transition (complete
	// without inject, double complete, drop after complete, ...).
	RuleRequestState Rule = "request-state"
	// RuleCausality: a span violates arrival ≤ enter ≤ exit ≤ completion.
	RuleCausality Rule = "causality"
	// RuleClock: observed virtual time ran backwards.
	RuleClock Rule = "clock-monotonic"
	// RuleQueue: negative occupancy, occupancy beyond the server count,
	// or a queue beyond its capacity.
	RuleQueue Rule = "queue-sanity"
	// RuleDispatch: the fleet dispatcher lost or invented rate mass in
	// an interval (offered + backlog != assigned + lost + parked).
	RuleDispatch Rule = "dispatch-conservation"
	// RulePhase: a pipeline phase broke its hop ledger (entered !=
	// exited + dropped, a request in two phases at once, or an exit
	// from a phase the request never entered).
	RulePhase Rule = "phase-conservation"
	// RuleBijection: a translation table lost its two-way consistency.
	RuleBijection Rule = "table-bijection"
	// RuleFlow: the offload datapath broke its classification ledger
	// (a packet on two paths, fast + slow != injected) or the bounded
	// flow table exceeded its capacity or insert-queue budget.
	RuleFlow Rule = "flow-conservation"
)

// Violation is the typed error every check fails with. Fields are the
// structured context of the failure; zero values mean "not applicable"
// (e.g. a clock violation carries no request).
type Violation struct {
	Rule Rule
	// Run is the human-readable run label (empty for standalone checks).
	Run string
	// Time is the virtual time at which the violation was detected.
	Time sim.Time
	// Station is the resource involved, when one is.
	Station string
	// Request is the request sequence number involved, when one is.
	Request uint64
	// Detail states the broken equation with its observed values.
	Detail string
}

// Error implements error.
func (v *Violation) Error() string {
	s := fmt.Sprintf("invariant: %s violated", v.Rule)
	if v.Run != "" {
		s += fmt.Sprintf(" in %q", v.Run)
	}
	s += fmt.Sprintf(" at %v", v.Time)
	if v.Station != "" {
		s += fmt.Sprintf(" on %q", v.Station)
	}
	if v.Request != 0 {
		s += fmt.Sprintf(" (request %d)", v.Request)
	}
	return s + ": " + v.Detail
}
