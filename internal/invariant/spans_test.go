package invariant

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

func TestCheckSpansCleanTree(t *testing.T) {
	rec := obs.NewRecorder(1, "clean")
	root := rec.Open("req", "request", sim.Time(100))
	child := rec.OpenChild("req", "serve", root, sim.Time(120))
	rec.Close(child, sim.Time(180))
	rec.Close(root, sim.Time(200))
	if err := CheckSpans(rec, SpanCheckOpts{}); err != nil {
		t.Fatalf("clean tree flagged: %v", err)
	}
}

func TestCheckSpansNegativeDuration(t *testing.T) {
	rec := obs.NewRecorder(1, "neg")
	rec.Span("req", "serve", 0, sim.Time(100), sim.Time(60))
	err := CheckSpans(rec, SpanCheckOpts{})
	v, ok := err.(*Violation)
	if !ok || v.Rule != RuleCausality {
		t.Fatalf("err = %v, want a causality violation", err)
	}
	if !strings.Contains(v.Detail, "negative duration") {
		t.Fatalf("detail = %q", v.Detail)
	}
	if v.Run != "neg" || v.Station != "req/serve" {
		t.Fatalf("context = %q/%q, want run and track/name", v.Run, v.Station)
	}
}

func TestCheckSpansChildBeforeParent(t *testing.T) {
	rec := obs.NewRecorder(1, "early")
	root := rec.Open("req", "request", sim.Time(100))
	// Child claims to start before the request arrived.
	child := rec.OpenChild("req", "serve", root, sim.Time(50))
	rec.Close(child, sim.Time(150))
	rec.Close(root, sim.Time(200))
	err := CheckSpans(rec, SpanCheckOpts{})
	v, ok := err.(*Violation)
	if !ok || !strings.Contains(v.Detail, "before its parent") {
		t.Fatalf("err = %v, want a child-before-parent violation", err)
	}
}

func TestCheckSpansStraggler(t *testing.T) {
	rec := obs.NewRecorder(1, "strag")
	root := rec.Open("req", "request", sim.Time(100))
	child := rec.OpenChild("req", "serve", root, sim.Time(120))
	rec.Close(root, sim.Time(150))  // request abandoned at timeout
	rec.Close(child, sim.Time(300)) // stale service copy finishes later
	if err := CheckSpans(rec, SpanCheckOpts{}); err == nil {
		t.Fatal("straggler not flagged in strict mode")
	}
	if err := CheckSpans(rec, SpanCheckOpts{AllowStragglers: true}); err != nil {
		t.Fatalf("straggler flagged despite AllowStragglers: %v", err)
	}
}

// Shed requests legitimately leave their root span open; only the start
// side is checkable.
func TestCheckSpansOpenSpansPass(t *testing.T) {
	rec := obs.NewRecorder(1, "open")
	root := rec.Open("req", "request", sim.Time(100))
	rec.OpenChild("req", "serve", root, sim.Time(120)) // never closed
	rec.Close(root, sim.Time(150))
	if err := CheckSpans(rec, SpanCheckOpts{}); err != nil {
		t.Fatalf("open child flagged: %v", err)
	}
}

func TestCheckSpansNilRecorder(t *testing.T) {
	if err := CheckSpans(nil, SpanCheckOpts{}); err != nil {
		t.Fatalf("nil recorder flagged: %v", err)
	}
}
