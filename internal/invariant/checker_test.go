package invariant

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestConservationCatchesLostRequest is the acceptance negative test:
// a driver that drops a request on the floor without accounting for it
// (neither Complete nor Drop) must be caught at Finish.
func TestConservationCatchesLostRequest(t *testing.T) {
	c := New("lossy-run").Soft()
	c.Inject(1, 1500, 0)
	c.Inject(2, 1500, sim.Time(10))
	c.Complete(1, 1500, sim.Time(20))
	// Request 2 silently vanishes — the bug this layer exists to catch.
	err := c.Finish(sim.Time(30))
	if err == nil {
		t.Fatal("Finish accepted a run that lost a request")
	}
	v, ok := err.(*Violation)
	if !ok {
		t.Fatalf("Finish returned %T, want *Violation", err)
	}
	if v.Rule != RuleConservation {
		t.Fatalf("rule = %q, want %q", v.Rule, RuleConservation)
	}
	if !strings.Contains(v.Detail, "1 unaccounted") {
		t.Fatalf("detail %q does not name the unaccounted request", v.Detail)
	}
	if v.Run != "lossy-run" {
		t.Fatalf("violation run = %q, want the checker's label", v.Run)
	}
}

func TestFinishCatchesByteLeak(t *testing.T) {
	c := New("byte-leak").Soft()
	c.Inject(1, 100, 0)
	c.Complete(1, 60, sim.Time(5)) // 40 bytes vanish
	err := c.Finish(sim.Time(10))
	v, ok := err.(*Violation)
	if !ok || v.Rule != RuleBytes {
		t.Fatalf("Finish = %v, want a %s violation", err, RuleBytes)
	}
}

func TestFinishPassesBalancedRun(t *testing.T) {
	c := New("clean")
	c.Inject(1, 100, 0)
	c.Inject(2, 200, sim.Time(1))
	c.Complete(1, 100, sim.Time(2))
	c.Drop(2, 200, sim.Time(3))
	if err := c.Finish(sim.Time(4)); err != nil {
		t.Fatalf("balanced run failed: %v", err)
	}
	if c.Injected() != 2 || c.Completed() != 1 || c.Dropped() != 1 || c.InFlight() != 0 {
		t.Fatalf("ledger = %d/%d/%d/%d, want 2/1/1/0",
			c.Injected(), c.Completed(), c.Dropped(), c.InFlight())
	}
}

// TestFailFastPanicsWithTypedViolation: the production mode dies with
// the *Violation itself, so a recovering harness gets structured context.
func TestFailFastPanicsWithTypedViolation(t *testing.T) {
	c := New("fail-fast")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("fail-fast checker did not panic")
		}
		v, ok := r.(*Violation)
		if !ok {
			t.Fatalf("panicked with %T, want *Violation", r)
		}
		if v.Rule != RuleRequestState || v.Run != "fail-fast" || v.Request != 7 {
			t.Fatalf("violation = %+v, want request-state for request 7", v)
		}
	}()
	c.Complete(7, 0, sim.Time(5)) // never injected
}

func TestSoftKeepsFirstViolation(t *testing.T) {
	c := New("soft").Soft()
	c.Complete(1, 0, 0) // first: complete without inject
	c.Drop(2, 0, 0)     // second: drop without inject
	v := c.Err().(*Violation)
	if v.Request != 1 || !strings.Contains(v.Detail, "completed without") {
		t.Fatalf("Err kept %+v, want the first violation (request 1)", v)
	}
}

func TestRequestStateTransitions(t *testing.T) {
	cases := []struct {
		name   string
		drive  func(c *Checker)
		detail string
	}{
		{"double inject", func(c *Checker) {
			c.Inject(1, 0, 0)
			c.Inject(1, 0, 0)
		}, "injected twice"},
		{"double complete", func(c *Checker) {
			c.Inject(1, 0, 0)
			c.Complete(1, 0, 0)
			c.Complete(1, 0, 0)
		}, "completed twice"},
		{"complete after drop", func(c *Checker) {
			c.Inject(1, 0, 0)
			c.Drop(1, 0, 0)
			c.Complete(1, 0, 0)
		}, "completed after being dropped"},
		{"drop after complete", func(c *Checker) {
			c.Inject(1, 0, 0)
			c.Complete(1, 0, 0)
			c.Drop(1, 0, 0)
		}, "dropped after already being resolved"},
		{"drop without inject", func(c *Checker) {
			c.Drop(1, 0, 0)
		}, "dropped without being injected"},
		{"negative payload", func(c *Checker) {
			c.Inject(1, -4, 0)
		}, "negative payload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New("t").Soft()
			tc.drive(c)
			v, ok := c.Err().(*Violation)
			if !ok {
				t.Fatalf("no violation recorded")
			}
			if !strings.Contains(v.Detail, tc.detail) {
				t.Fatalf("detail %q, want substring %q", v.Detail, tc.detail)
			}
		})
	}
}

func TestClockMonotonicity(t *testing.T) {
	c := New("clock").Soft()
	c.JobStarted("pool/host", sim.Time(100), 0)
	c.JobQueued("pool/host", sim.Time(40), 1) // time ran backwards
	v, ok := c.Err().(*Violation)
	if !ok || v.Rule != RuleClock {
		t.Fatalf("Err = %v, want a %s violation", c.Err(), RuleClock)
	}
	if c.Now() != sim.Time(100) {
		t.Fatalf("high-water mark moved backwards to %v", c.Now())
	}
}

func TestCausalityInCallbacks(t *testing.T) {
	t.Run("negative service", func(t *testing.T) {
		c := New("t").Soft()
		c.JobFinished("s", sim.Time(50), sim.Time(20))
		if v := c.Err().(*Violation); v.Rule != RuleCausality {
			t.Fatalf("rule = %q, want causality", v.Rule)
		}
	})
	t.Run("negative wait", func(t *testing.T) {
		c := New("t").Soft()
		c.JobStarted("s", sim.Time(50), sim.Duration(-1))
		if v := c.Err().(*Violation); v.Rule != RuleCausality {
			t.Fatalf("rule = %q, want causality", v.Rule)
		}
	})
	t.Run("negative batch wait", func(t *testing.T) {
		c := New("t").Soft()
		c.BatchFlushed("s", 3, sim.Duration(-1), sim.Time(10))
		if v := c.Err().(*Violation); v.Rule != RuleCausality {
			t.Fatalf("rule = %q, want causality", v.Rule)
		}
	})
	t.Run("empty batch", func(t *testing.T) {
		c := New("t").Soft()
		c.BatchFlushed("s", 0, 0, sim.Time(10))
		if v := c.Err().(*Violation); v.Rule != RuleQueue {
			t.Fatalf("rule = %q, want queue-sanity", v.Rule)
		}
	})
}

func TestQueueSanityViaProbe(t *testing.T) {
	cases := []struct {
		name         string
		busy, queued int
		detail       string
	}{
		{"negative occupancy", -1, 0, "is negative"},
		{"occupancy beyond servers", 5, 0, "exceeds 4 servers"},
		{"negative queue", 0, -2, "is negative"},
		{"queue beyond capacity", 0, 9, "exceeds capacity 8"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New("t").Soft()
			c.RegisterStation("pool/host", 4, 8, func() (int, int) { return tc.busy, tc.queued })
			c.JobQueued("pool/host", sim.Time(1), 1)
			v, ok := c.Err().(*Violation)
			if !ok || v.Rule != RuleQueue {
				t.Fatalf("Err = %v, want a queue-sanity violation", c.Err())
			}
			if !strings.Contains(v.Detail, tc.detail) {
				t.Fatalf("detail %q, want substring %q", v.Detail, tc.detail)
			}
			if v.Station != "pool/host" {
				t.Fatalf("station = %q", v.Station)
			}
		})
	}
	t.Run("sane counters pass", func(t *testing.T) {
		c := New("t")
		c.RegisterStation("pool/host", 4, 8, func() (int, int) { return 4, 8 })
		c.JobQueued("pool/host", sim.Time(1), 8)
		c.JobStarted("pool/host", sim.Time(2), sim.Duration(1))
		c.JobFinished("pool/host", sim.Time(2), sim.Time(3))
		if c.Err() != nil {
			t.Fatalf("boundary occupancy flagged: %v", c.Err())
		}
	})
}

func TestQueuedCallbackBounds(t *testing.T) {
	c := New("t").Soft()
	c.RegisterStation("s", 2, 4, nil)
	c.JobQueued("s", sim.Time(1), 5) // beyond capacity
	if v := c.Err().(*Violation); v.Rule != RuleQueue {
		t.Fatalf("rule = %q", v.Rule)
	}
	c2 := New("t").Soft()
	c2.JobQueued("s", sim.Time(1), 0) // a queued job means length >= 1
	if v := c2.Err().(*Violation); v.Rule != RuleQueue {
		t.Fatalf("rule = %q", v.Rule)
	}
}

func TestDropAtUnboundedQueue(t *testing.T) {
	c := New("t").Soft()
	c.RegisterStation("s", 2, 0, nil) // capacity 0 = unbounded
	c.JobDropped("s", sim.Time(1))
	v, ok := c.Err().(*Violation)
	if !ok || !strings.Contains(v.Detail, "unbounded") {
		t.Fatalf("Err = %v, want an unbounded-queue drop violation", c.Err())
	}
	// An unregistered station's drop is fine: bounds unknown.
	c2 := New("t")
	c2.JobDropped("other", sim.Time(1))
	if c2.Err() != nil {
		t.Fatalf("drop at unknown station flagged: %v", c2.Err())
	}
}

// TestFrameSentDoesNotAdvanceClock: the link callback fires at
// submission time with a serialization slot possibly in the future;
// treating that slot as "now" would make every later event look like a
// clock regression.
func TestFrameSentDoesNotAdvanceClock(t *testing.T) {
	c := New("t")
	c.JobStarted("s", sim.Time(10), 0)
	c.FrameSent("wire", 1500, sim.Time(500), sim.Time(600), false)
	if c.Now() != sim.Time(10) {
		t.Fatalf("FrameSent advanced the clock to %v", c.Now())
	}
	c.JobStarted("s", sim.Time(20), 0) // must not be a regression
	if c.Err() != nil {
		t.Fatalf("future slot poisoned the clock: %v", c.Err())
	}
}

func TestFrameSentChecks(t *testing.T) {
	t.Run("slot before now", func(t *testing.T) {
		c := New("t").Soft()
		c.JobStarted("s", sim.Time(100), 0)
		c.FrameSent("wire", 64, sim.Time(40), sim.Time(50), false)
		if v := c.Err().(*Violation); v.Rule != RuleClock {
			t.Fatalf("rule = %q, want clock-monotonic", v.Rule)
		}
	})
	t.Run("slot ends before start", func(t *testing.T) {
		c := New("t").Soft()
		c.FrameSent("wire", 64, sim.Time(50), sim.Time(40), false)
		if v := c.Err().(*Violation); v.Rule != RuleCausality {
			t.Fatalf("rule = %q, want causality", v.Rule)
		}
	})
	t.Run("negative size", func(t *testing.T) {
		c := New("t").Soft()
		c.FrameSent("wire", -1, sim.Time(0), sim.Time(1), false)
		if v := c.Err().(*Violation); v.Rule != RuleBytes {
			t.Fatalf("rule = %q, want byte-conservation", v.Rule)
		}
	})
}

func TestVerifyCountsCrossCheck(t *testing.T) {
	c := New("t").Soft()
	c.Inject(1, 0, 0)
	c.Complete(1, 0, 0)
	c.VerifyCounts(1, 1, sim.Time(1))
	if c.Err() != nil {
		t.Fatalf("matching counters flagged: %v", c.Err())
	}
	c.VerifyCounts(2, 1, sim.Time(2)) // driver claims one more send
	v, ok := c.Err().(*Violation)
	if !ok || v.Rule != RuleConservation {
		t.Fatalf("Err = %v, want a conservation violation", c.Err())
	}
}

// TestNilCheckerIsNoOp: checks-off mode routes every call through a nil
// receiver; none may dereference it.
func TestNilCheckerIsNoOp(t *testing.T) {
	var c *Checker
	c.Inject(1, 10, 0)
	c.Complete(1, 10, 0)
	c.Drop(2, 10, 0)
	c.RegisterStation("s", 1, 1, nil)
	c.JobQueued("s", 0, 1)
	c.JobStarted("s", 0, 0)
	c.JobFinished("s", 0, 0)
	c.JobDropped("s", 0)
	c.FrameSent("w", 1, 0, 0, false)
	c.BatchFlushed("s", 1, 0, 0)
	c.VerifyCounts(9, 9, 0)
	if c.Err() != nil || c.Run() != "" || c.Now() != 0 {
		t.Fatal("nil checker returned non-zero state")
	}
	if c.Injected()+c.Completed()+c.Dropped()+c.InFlight() != 0 {
		t.Fatal("nil checker counted something")
	}
	if err := c.Finish(0); err != nil {
		t.Fatalf("nil Finish = %v", err)
	}
}

// TestFinishDoesNotPanicInFailFastMode: end-of-run collection must
// return the violation, not die mid-audit, so run drivers control how a
// failed run reports.
func TestFinishDoesNotPanicInFailFastMode(t *testing.T) {
	c := New("t") // fail-fast
	c.Inject(1, 0, 0)
	err := c.Finish(sim.Time(1)) // in-flight request: violation, no panic
	if err == nil {
		t.Fatal("Finish missed the in-flight request")
	}
	// And fail-fast is restored afterwards.
	defer func() {
		if recover() == nil {
			t.Fatal("checker lost fail-fast after Finish")
		}
	}()
	c.Drop(99, 0, sim.Time(2))
}

func TestViolationErrorFormatting(t *testing.T) {
	full := &Violation{Rule: RuleCausality, Run: "redis@snic-cpu", Time: sim.Time(1500),
		Station: "pool/snic", Request: 42, Detail: "ended before it started"}
	s := full.Error()
	for _, want := range []string{"causality", "redis@snic-cpu", "pool/snic", "request 42", "ended before"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Error() = %q, missing %q", s, want)
		}
	}
	bare := &Violation{Rule: RuleClock, Detail: "d"}
	s = bare.Error()
	if strings.Contains(s, "request") || strings.Contains(s, `""`) {
		t.Fatalf("Error() = %q renders empty fields", s)
	}
}

// recording observers for the tee tests.
type recordingStation struct{ events []string }

func (r *recordingStation) JobQueued(s string, _ sim.Time, _ int) { r.events = append(r.events, "q:"+s) }
func (r *recordingStation) JobStarted(s string, _ sim.Time, _ sim.Duration) {
	r.events = append(r.events, "s:"+s)
}
func (r *recordingStation) JobFinished(s string, _, _ sim.Time) { r.events = append(r.events, "f:"+s) }
func (r *recordingStation) JobDropped(s string, _ sim.Time)     { r.events = append(r.events, "d:"+s) }

type recordingLink struct{ frames int }

func (r *recordingLink) FrameSent(string, int, sim.Time, sim.Time, bool) { r.frames++ }

type recordingBatch struct{ flushes int }

func (r *recordingBatch) BatchFlushed(string, int, sim.Duration, sim.Time) { r.flushes++ }

func TestTeesForwardToBoth(t *testing.T) {
	a, b := &recordingStation{}, &recordingStation{}
	so := TeeStations(a, b)
	so.JobQueued("x", 0, 1)
	so.JobStarted("x", 0, 0)
	so.JobFinished("x", 0, 0)
	so.JobDropped("x", 0)
	if len(a.events) != 4 || len(b.events) != 4 {
		t.Fatalf("station tee forwarded %d/%d events, want 4/4", len(a.events), len(b.events))
	}
	for i := range a.events {
		if a.events[i] != b.events[i] {
			t.Fatalf("tee order diverged: %v vs %v", a.events, b.events)
		}
	}

	la, lb := &recordingLink{}, &recordingLink{}
	TeeLinks(la, lb).FrameSent("w", 64, 0, 1, false)
	if la.frames != 1 || lb.frames != 1 {
		t.Fatalf("link tee forwarded %d/%d frames", la.frames, lb.frames)
	}

	ba, bb := &recordingBatch{}, &recordingBatch{}
	TeeBatches(ba, bb).BatchFlushed("s", 2, 0, 0)
	if ba.flushes != 1 || bb.flushes != 1 {
		t.Fatalf("batch tee forwarded %d/%d flushes", ba.flushes, bb.flushes)
	}
}
