package invariant

import (
	"fmt"

	"repro/internal/sim"
)

// Per-request lifecycle states for the conservation ledger.
const (
	reqAbsent uint8 = iota
	reqInFlight
	reqCompleted
	reqDropped
)

// stationState is what the checker knows about one observed station.
type stationState struct {
	// known marks stations registered explicitly (with authoritative
	// servers/capacity) as opposed to ones discovered from callbacks.
	known    bool
	servers  int
	capacity int
	// probe reads the station's live (busy, queued) counters; nil when
	// the station's internals are not reachable (batch engines).
	probe func() (busy, queued int)
}

// Checker validates the simulator's physical laws online. It implements
// sim.StationObserver, sim.LinkObserver and sim.BatchObserver, so it
// installs exactly where the telemetry recorder does; the request ledger
// (Inject/Complete/Drop) is driven by the run drivers themselves.
//
// Like the recorder, a Checker belongs to one run and is driven
// synchronously from that run's event loop — no locking. All methods are
// nil-safe: a nil *Checker is "checks off" and costs one nil test.
type Checker struct {
	run      string
	failFast bool
	first    *Violation

	// clock is the high-water mark of observed virtual time.
	clock sim.Time

	injected, completed, dropped  uint64
	bytesIn, bytesDone, bytesDrop uint64
	state                         map[uint64]uint8

	stations map[string]*stationState

	// Per-phase hop ledgers (pipeline runs); nil until the first
	// PhaseEnter. phaseOrder keeps first-seen order for deterministic
	// end-of-run verification; inPhase tracks each request's current
	// phase.
	phases     map[string]*phaseLedger
	phaseOrder []string
	inPhase    map[uint64]string

	// Flow-offload datapath ledger (offload runs); nil until the first
	// fast/slow classification (see flows.go).
	flows *flowLedger
}

// New returns a fail-fast checker for the named run: the first violation
// panics with the typed *Violation.
func New(run string) *Checker {
	return &Checker{
		run:      run,
		failFast: true,
		state:    make(map[uint64]uint8),
		stations: make(map[string]*stationState),
	}
}

// Soft switches the checker to collecting mode: violations record (first
// one wins) instead of panicking. Tests use it to assert on the
// violation; production wiring keeps fail-fast.
func (c *Checker) Soft() *Checker {
	c.failFast = false
	return c
}

// Run returns the checker's run label. Nil-safe.
func (c *Checker) Run() string {
	if c == nil {
		return ""
	}
	return c.run
}

// Err returns the first recorded violation, or nil. Nil-safe.
func (c *Checker) Err() error {
	if c == nil || c.first == nil {
		return nil
	}
	return c.first
}

// violate records v (first violation wins) and panics in fail-fast mode.
func (c *Checker) violate(v *Violation) {
	v.Run = c.run
	if c.first == nil {
		c.first = v
	}
	if c.failFast {
		panic(v)
	}
}

// advance checks clock monotonicity against an observed event time and
// moves the high-water mark.
func (c *Checker) advance(now sim.Time) {
	if now < c.clock {
		c.violate(&Violation{
			Rule: RuleClock, Time: now,
			Detail: fmt.Sprintf("observed time %v after %v", now, c.clock),
		})
		return
	}
	c.clock = now
}

// Now returns the checker's observed-time high-water mark. Nil-safe.
func (c *Checker) Now() sim.Time {
	if c == nil {
		return 0
	}
	return c.clock
}

// RegisterStation declares a station's ground truth: its server count
// and queue capacity (0 = unbounded), plus an optional probe reading its
// live (busy, queued) counters. Registered bounds turn the occupancy and
// capacity checks from non-negativity into exact range checks. Nil-safe.
func (c *Checker) RegisterStation(name string, servers, capacity int, probe func() (busy, queued int)) {
	if c == nil {
		return
	}
	c.stations[name] = &stationState{known: true, servers: servers, capacity: capacity, probe: probe}
}

func (c *Checker) station(name string) *stationState {
	st, ok := c.stations[name]
	if !ok {
		st = &stationState{}
		c.stations[name] = st
	}
	return st
}

// probeCheck validates a station's live counters against its bounds.
func (c *Checker) probeCheck(name string, st *stationState, now sim.Time) {
	if st.probe == nil {
		return
	}
	busy, queued := st.probe()
	switch {
	case busy < 0:
		c.violate(&Violation{Rule: RuleQueue, Time: now, Station: name,
			Detail: fmt.Sprintf("occupancy %d is negative", busy)})
	case st.servers > 0 && busy > st.servers:
		c.violate(&Violation{Rule: RuleQueue, Time: now, Station: name,
			Detail: fmt.Sprintf("occupancy %d exceeds %d servers", busy, st.servers)})
	}
	switch {
	case queued < 0:
		c.violate(&Violation{Rule: RuleQueue, Time: now, Station: name,
			Detail: fmt.Sprintf("queue length %d is negative", queued)})
	case st.capacity > 0 && queued > st.capacity:
		c.violate(&Violation{Rule: RuleQueue, Time: now, Station: name,
			Detail: fmt.Sprintf("queue length %d exceeds capacity %d", queued, st.capacity)})
	}
}

// ---- request/byte conservation ledger ----

// Inject records a request entering the system with its payload size.
// Nil-safe.
func (c *Checker) Inject(seq uint64, bytes int, now sim.Time) {
	if c == nil {
		return
	}
	c.advance(now)
	if bytes < 0 {
		c.violate(&Violation{Rule: RuleBytes, Time: now, Request: seq,
			Detail: fmt.Sprintf("negative payload %d bytes", bytes)})
		return
	}
	if st := c.state[seq]; st != reqAbsent {
		c.violate(&Violation{Rule: RuleRequestState, Time: now, Request: seq,
			Detail: fmt.Sprintf("injected twice (state %d)", st)})
		return
	}
	c.state[seq] = reqInFlight
	c.injected++
	c.bytesIn += uint64(bytes)
}

// Complete records a request's single successful completion. Nil-safe.
func (c *Checker) Complete(seq uint64, bytes int, now sim.Time) {
	if c == nil {
		return
	}
	c.advance(now)
	switch c.state[seq] {
	case reqInFlight:
		c.state[seq] = reqCompleted
		c.completed++
		if bytes > 0 {
			c.bytesDone += uint64(bytes)
		}
	case reqAbsent:
		c.violate(&Violation{Rule: RuleRequestState, Time: now, Request: seq,
			Detail: "completed without being injected"})
	case reqCompleted:
		c.violate(&Violation{Rule: RuleRequestState, Time: now, Request: seq,
			Detail: "completed twice"})
	case reqDropped:
		c.violate(&Violation{Rule: RuleRequestState, Time: now, Request: seq,
			Detail: "completed after being dropped"})
	}
}

// Drop records a request shed or abandoned. Nil-safe.
func (c *Checker) Drop(seq uint64, bytes int, now sim.Time) {
	if c == nil {
		return
	}
	c.advance(now)
	switch c.state[seq] {
	case reqInFlight:
		c.state[seq] = reqDropped
		c.dropped++
		if bytes > 0 {
			c.bytesDrop += uint64(bytes)
		}
	case reqAbsent:
		c.violate(&Violation{Rule: RuleRequestState, Time: now, Request: seq,
			Detail: "dropped without being injected"})
	default:
		c.violate(&Violation{Rule: RuleRequestState, Time: now, Request: seq,
			Detail: "dropped after already being resolved"})
	}
}

// Injected, Completed, Dropped and InFlight expose the ledger. Nil-safe.
func (c *Checker) Injected() uint64 {
	if c == nil {
		return 0
	}
	return c.injected
}

// Completed returns resolved-successfully requests. Nil-safe.
func (c *Checker) Completed() uint64 {
	if c == nil {
		return 0
	}
	return c.completed
}

// Dropped returns shed or abandoned requests. Nil-safe.
func (c *Checker) Dropped() uint64 {
	if c == nil {
		return 0
	}
	return c.dropped
}

// InFlight returns requests injected but not yet resolved. Nil-safe.
func (c *Checker) InFlight() uint64 {
	if c == nil {
		return 0
	}
	return c.injected - c.completed - c.dropped
}

// VerifyCounts cross-checks the ledger against a run driver's own
// sent/completed counters — the two are maintained independently, so a
// mismatch means one side lost track of a request. Nil-safe.
func (c *Checker) VerifyCounts(sent, completed uint64, now sim.Time) {
	if c == nil {
		return
	}
	c.advance(now)
	if c.injected != sent {
		c.violate(&Violation{Rule: RuleConservation, Time: now,
			Detail: fmt.Sprintf("ledger saw %d injections, driver sent %d", c.injected, sent)})
	}
	if c.completed != completed {
		c.violate(&Violation{Rule: RuleConservation, Time: now,
			Detail: fmt.Sprintf("ledger saw %d completions, driver recorded %d", c.completed, completed)})
	}
}

// Finish runs the end-of-run conservation checks: every injected request
// must be completed or dropped (a drained engine leaves nothing in
// flight), and payload bytes must balance the same way. It returns the
// first violation (including any recorded earlier) rather than
// panicking, so callers decide how a failed run dies. Nil-safe.
func (c *Checker) Finish(now sim.Time) error {
	if c == nil {
		return nil
	}
	ff := c.failFast
	c.failFast = false
	defer func() { c.failFast = ff }()
	c.advance(now)
	if inflight := c.injected - c.completed - c.dropped; inflight != 0 {
		c.violate(&Violation{Rule: RuleConservation, Time: now,
			Detail: fmt.Sprintf("injected %d != completed %d + dropped %d (%d unaccounted)",
				c.injected, c.completed, c.dropped, inflight)})
	}
	if c.bytesIn != c.bytesDone+c.bytesDrop {
		c.violate(&Violation{Rule: RuleBytes, Time: now,
			Detail: fmt.Sprintf("bytes in %d != completed %d + dropped %d",
				c.bytesIn, c.bytesDone, c.bytesDrop)})
	}
	c.finishPhases(now)
	c.finishFlows(now)
	return c.Err()
}

// ---- sim observer implementations ----

// JobQueued implements sim.StationObserver.
func (c *Checker) JobQueued(station string, now sim.Time, queueLen int) {
	if c == nil {
		return
	}
	c.advance(now)
	st := c.station(station)
	if queueLen < 1 {
		c.violate(&Violation{Rule: RuleQueue, Time: now, Station: station,
			Detail: fmt.Sprintf("queued callback with queue length %d", queueLen)})
	} else if st.capacity > 0 && queueLen > st.capacity {
		c.violate(&Violation{Rule: RuleQueue, Time: now, Station: station,
			Detail: fmt.Sprintf("queue length %d exceeds capacity %d", queueLen, st.capacity)})
	}
	c.probeCheck(station, st, now)
}

// JobStarted implements sim.StationObserver.
func (c *Checker) JobStarted(station string, now sim.Time, waited sim.Duration) {
	if c == nil {
		return
	}
	c.advance(now)
	if waited < 0 {
		c.violate(&Violation{Rule: RuleCausality, Time: now, Station: station,
			Detail: fmt.Sprintf("negative queue wait %v", waited)})
	}
	c.probeCheck(station, c.station(station), now)
}

// JobFinished implements sim.StationObserver.
func (c *Checker) JobFinished(station string, start, end sim.Time) {
	if c == nil {
		return
	}
	c.advance(end)
	if end < start {
		c.violate(&Violation{Rule: RuleCausality, Time: end, Station: station,
			Detail: fmt.Sprintf("service ended at %v before it started at %v", end, start)})
	}
	c.probeCheck(station, c.station(station), end)
}

// JobDropped implements sim.StationObserver.
func (c *Checker) JobDropped(station string, now sim.Time) {
	if c == nil {
		return
	}
	c.advance(now)
	st := c.station(station)
	if st.known && st.capacity == 0 {
		c.violate(&Violation{Rule: RuleQueue, Time: now, Station: station,
			Detail: "job dropped at an unbounded queue"})
	}
	c.probeCheck(station, st, now)
}

// FrameSent implements sim.LinkObserver. The callback fires at
// submission time with a serialization slot possibly in the future, so
// it must not advance the clock — it only checks the slot's sanity.
func (c *Checker) FrameSent(link string, size int, start, done sim.Time, lost bool) {
	if c == nil {
		return
	}
	if size < 0 {
		c.violate(&Violation{Rule: RuleBytes, Time: start, Station: link,
			Detail: fmt.Sprintf("negative frame size %d", size)})
	}
	if start < c.clock {
		c.violate(&Violation{Rule: RuleClock, Time: start, Station: link,
			Detail: fmt.Sprintf("serialization slot starts at %v before observed time %v", start, c.clock)})
	}
	if done < start {
		c.violate(&Violation{Rule: RuleCausality, Time: start, Station: link,
			Detail: fmt.Sprintf("serialization ends at %v before it starts at %v", done, start)})
	}
	_ = lost
}

// BatchFlushed implements sim.BatchObserver.
func (c *Checker) BatchFlushed(station string, tasks int, waited sim.Duration, now sim.Time) {
	if c == nil {
		return
	}
	c.advance(now)
	if tasks < 1 {
		c.violate(&Violation{Rule: RuleQueue, Time: now, Station: station,
			Detail: fmt.Sprintf("batch flushed with %d tasks", tasks)})
	}
	if waited < 0 {
		c.violate(&Violation{Rule: RuleCausality, Time: now, Station: station,
			Detail: fmt.Sprintf("negative batch assembly wait %v", waited)})
	}
}
