package invariant

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestFlowLedgerCleanRun(t *testing.T) {
	c := New("flow-clean")
	now := sim.Time(0)
	// Three packets: one fast, one slow completed, one slow dropped.
	c.Inject(1, 100, now)
	c.Inject(2, 100, now)
	c.Inject(3, 100, now)
	c.FlowFast(1, now)
	c.Complete(1, 100, now)
	c.FlowSlow(2, now)
	c.Complete(2, 100, now.Add(sim.Microsecond))
	c.FlowSlow(3, now.Add(sim.Microsecond))
	c.FlowSlowDrop(3, now.Add(sim.Microsecond))
	c.Drop(3, 100, now.Add(sim.Microsecond))
	if err := c.Finish(now.Add(sim.Millisecond)); err != nil {
		t.Fatalf("clean flow run should finish without violation: %v", err)
	}
	if c.FlowFastCount() != 1 || c.FlowSlowCount() != 2 {
		t.Fatalf("fast/slow counts: %d/%d", c.FlowFastCount(), c.FlowSlowCount())
	}
}

func TestFlowDoubleClassificationViolates(t *testing.T) {
	c := New("flow-double").Soft()
	now := sim.Time(0)
	c.Inject(1, 100, now)
	c.FlowFast(1, now)
	c.FlowSlow(1, now)
	var v *Violation
	if !errors.As(c.Err(), &v) || v.Rule != RuleFlow {
		t.Fatalf("double classification should violate %s, got %v", RuleFlow, c.Err())
	}
}

func TestFlowDropWithoutSlowPathViolates(t *testing.T) {
	c := New("flow-baddrop").Soft()
	now := sim.Time(0)
	c.Inject(1, 100, now)
	c.FlowFast(1, now)
	c.FlowSlowDrop(1, now)
	var v *Violation
	if !errors.As(c.Err(), &v) || v.Rule != RuleFlow {
		t.Fatalf("fast-path drop should violate %s, got %v", RuleFlow, c.Err())
	}
}

func TestFlowUnclassifiedPacketViolatesAtFinish(t *testing.T) {
	c := New("flow-missing").Soft()
	now := sim.Time(0)
	c.Inject(1, 100, now)
	c.Inject(2, 100, now)
	c.FlowFast(1, now)
	c.Complete(1, 100, now)
	c.Complete(2, 100, now)
	err := c.Finish(now.Add(sim.Microsecond))
	var v *Violation
	if !errors.As(err, &v) || v.Rule != RuleFlow {
		t.Fatalf("unclassified packet should violate %s at finish, got %v", RuleFlow, err)
	}
	if !strings.Contains(v.Detail, "injected") {
		t.Fatalf("violation should state the broken equation: %s", v.Detail)
	}
}

func TestFlowTableOccupancyBounds(t *testing.T) {
	now := sim.Time(0)
	cases := []struct {
		name                               string
		occupancy, capacity, pending, qcap int
		bad                                bool
	}{
		{"in bounds", 10, 16, 2, 4, false},
		{"at capacity", 16, 16, 4, 4, false},
		{"negative occupancy", -1, 16, 0, 4, true},
		{"over capacity", 17, 16, 0, 4, true},
		{"negative pending", 0, 16, -1, 4, true},
		{"pending over queue", 0, 16, 5, 4, true},
	}
	for _, tc := range cases {
		c := New("flow-occ").Soft()
		c.FlowTableOccupancy(tc.occupancy, tc.capacity, tc.pending, tc.qcap, now)
		if got := c.Err() != nil; got != tc.bad {
			t.Errorf("%s: violation=%v, want %v (err: %v)", tc.name, got, tc.bad, c.Err())
		}
	}
}

func TestFlowLedgerNilSafe(t *testing.T) {
	var c *Checker
	now := sim.Time(0)
	c.FlowFast(1, now)
	c.FlowSlow(2, now)
	c.FlowSlowDrop(2, now)
	c.FlowTableOccupancy(1, 2, 0, 1, now)
	if c.FlowFastCount() != 0 || c.FlowSlowCount() != 0 {
		t.Fatal("nil checker should report zero counts")
	}
}

// Non-offload runs never touch the flow ledger, so Finish must not
// demand flow classification from them.
func TestFlowLedgerLazyAllocation(t *testing.T) {
	c := New("no-flows")
	now := sim.Time(0)
	c.Inject(1, 10, now)
	c.Complete(1, 10, now)
	if err := c.Finish(now); err != nil {
		t.Fatalf("run without flow classification should finish clean: %v", err)
	}
	if c.flows != nil {
		t.Fatal("flow ledger should stay unallocated for non-offload runs")
	}
}
