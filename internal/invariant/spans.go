package invariant

import (
	"fmt"

	"repro/internal/obs"
)

// SpanCheckOpts tunes the end-of-run span audit.
type SpanCheckOpts struct {
	// AllowStragglers permits a child span to end after its parent
	// closes. Failover replays need this: a request abandoned at its
	// retry timeout closes its root span while the stale in-service
	// copy still finishes (and records) later.
	AllowStragglers bool
}

// CheckSpans audits a finished run's span tree for causality: no closed
// span has negative duration, every child starts no earlier than its
// parent (a request phase cannot precede the request's arrival), and —
// unless AllowStragglers — every closed child ends no later than its
// closed parent. Open spans are legitimate (requests shed mid-flight)
// and are only checked on the start side. Returns the first *Violation
// found, or nil. Nil-safe.
func CheckSpans(rec *obs.Recorder, opts SpanCheckOpts) error {
	if rec == nil {
		return nil
	}
	views := make([]obs.SpanView, rec.SpanCount()+1)
	rec.EachSpan(func(id obs.SpanID, s obs.SpanView) {
		views[id] = s
	})
	for id := 1; id < len(views); id++ {
		s := views[id]
		name := s.Track + "/" + s.Name
		if !s.Open && s.End < s.Start {
			return &Violation{Rule: RuleCausality, Run: rec.Label(), Time: s.Start, Station: name,
				Detail: fmt.Sprintf("span %d has negative duration (%v .. %v)", id, s.Start, s.End)}
		}
		if s.Parent == 0 {
			continue
		}
		if int(s.Parent) >= len(views) || int(s.Parent) == id {
			return &Violation{Rule: RuleCausality, Run: rec.Label(), Time: s.Start, Station: name,
				Detail: fmt.Sprintf("span %d links to impossible parent %d", id, s.Parent)}
		}
		p := views[s.Parent]
		if s.Start < p.Start {
			return &Violation{Rule: RuleCausality, Run: rec.Label(), Time: s.Start, Station: name,
				Detail: fmt.Sprintf("span %d starts at %v before its parent at %v", id, s.Start, p.Start)}
		}
		if !opts.AllowStragglers && !s.Open && !p.Open && s.End > p.End {
			return &Violation{Rule: RuleCausality, Run: rec.Label(), Time: s.End, Station: name,
				Detail: fmt.Sprintf("span %d ends at %v after its parent at %v", id, s.End, p.End)}
		}
	}
	return nil
}
