package invariant

import "repro/internal/sim"

// Tee observers fan one resource's callbacks out to both the telemetry
// recorder and the checker, since each resource holds a single observer
// slot. Callers must pass non-nil observers — with only one of the two
// enabled the resource gets that observer directly, with neither it gets
// nil, so the tee never appears on an unobserved hot path.

type teeStations struct{ a, b sim.StationObserver }

// TeeStations returns a StationObserver forwarding to a then b.
func TeeStations(a, b sim.StationObserver) sim.StationObserver {
	return &teeStations{a: a, b: b}
}

func (t *teeStations) JobQueued(station string, now sim.Time, queueLen int) {
	t.a.JobQueued(station, now, queueLen)
	t.b.JobQueued(station, now, queueLen)
}

func (t *teeStations) JobStarted(station string, now sim.Time, waited sim.Duration) {
	t.a.JobStarted(station, now, waited)
	t.b.JobStarted(station, now, waited)
}

func (t *teeStations) JobFinished(station string, start, end sim.Time) {
	t.a.JobFinished(station, start, end)
	t.b.JobFinished(station, start, end)
}

func (t *teeStations) JobDropped(station string, now sim.Time) {
	t.a.JobDropped(station, now)
	t.b.JobDropped(station, now)
}

type teeLinks struct{ a, b sim.LinkObserver }

// TeeLinks returns a LinkObserver forwarding to a then b.
func TeeLinks(a, b sim.LinkObserver) sim.LinkObserver {
	return &teeLinks{a: a, b: b}
}

func (t *teeLinks) FrameSent(link string, size int, start, done sim.Time, lost bool) {
	t.a.FrameSent(link, size, start, done, lost)
	t.b.FrameSent(link, size, start, done, lost)
}

type teeBatches struct{ a, b sim.BatchObserver }

// TeeBatches returns a BatchObserver forwarding to a then b.
func TeeBatches(a, b sim.BatchObserver) sim.BatchObserver {
	return &teeBatches{a: a, b: b}
}

func (t *teeBatches) BatchFlushed(station string, tasks int, waited sim.Duration, now sim.Time) {
	t.a.BatchFlushed(station, tasks, waited, now)
	t.b.BatchFlushed(station, tasks, waited, now)
}
