package invariant

import (
	"fmt"

	"repro/internal/sim"
)

// Flow-offload datapath conservation for `-exp offload` runs: every
// packet that enters the eSwitch is classified onto exactly one path —
// hardware fast path, software slow path, or dropped at a full
// slow-path queue — and the bounded flow table never holds more rules
// than its capacity (nor queues more inserts than its slot budget).
// The laws:
//
//   - a packet is classified exactly once (fast xor slow), and only a
//     slow-path packet can be dropped at the service queue;
//   - fast + slow == injected at end of run;
//   - 0 <= table occupancy <= capacity at every observation;
//   - 0 <= pending inserts <= insert queue capacity at every
//     observation.
//
// The ledger allocates lazily on first classification, so non-offload
// runs pay nothing.

// Per-packet datapath classifications.
const (
	pathAbsent uint8 = iota
	pathFast
	pathSlow
)

// flowLedger is the datapath classification accounting.
type flowLedger struct {
	fast, slow, dropped uint64
	path                map[uint64]uint8
	occPeak             int
}

// ensureFlows lazily allocates the flow ledger.
func (c *Checker) ensureFlows() {
	if c.flows == nil {
		c.flows = &flowLedger{path: make(map[uint64]uint8)}
	}
}

// FlowFast records a packet taking the hardware fast path (resident
// eSwitch rule). Nil-safe.
func (c *Checker) FlowFast(seq uint64, now sim.Time) {
	if c == nil {
		return
	}
	c.advance(now)
	c.ensureFlows()
	if p := c.flows.path[seq]; p != pathAbsent {
		c.violate(&Violation{Rule: RuleFlow, Time: now, Request: seq,
			Detail: fmt.Sprintf("classified fast-path after already being classified (%d)", p)})
		return
	}
	c.flows.path[seq] = pathFast
	c.flows.fast++
}

// FlowSlow records a packet taking the software slow path (flow-table
// miss). Nil-safe.
func (c *Checker) FlowSlow(seq uint64, now sim.Time) {
	if c == nil {
		return
	}
	c.advance(now)
	c.ensureFlows()
	if p := c.flows.path[seq]; p != pathAbsent {
		c.violate(&Violation{Rule: RuleFlow, Time: now, Request: seq,
			Detail: fmt.Sprintf("classified slow-path after already being classified (%d)", p)})
		return
	}
	c.flows.path[seq] = pathSlow
	c.flows.slow++
}

// FlowSlowDrop records a slow-path packet shed at a full service queue.
// Only slow-path packets can be dropped there — the fast path never
// queues. Nil-safe.
func (c *Checker) FlowSlowDrop(seq uint64, now sim.Time) {
	if c == nil {
		return
	}
	c.advance(now)
	c.ensureFlows()
	if p := c.flows.path[seq]; p != pathSlow {
		c.violate(&Violation{Rule: RuleFlow, Time: now, Request: seq,
			Detail: fmt.Sprintf("dropped on the slow path without slow-path classification (%d)", p)})
		return
	}
	c.flows.dropped++
}

// FlowTableOccupancy validates a flow-table observation: occupancy
// within [0, capacity] and pending inserts within [0, queueCap].
// Nil-safe.
func (c *Checker) FlowTableOccupancy(occupancy, capacity, pending, queueCap int, now sim.Time) {
	if c == nil {
		return
	}
	c.advance(now)
	c.ensureFlows()
	switch {
	case occupancy < 0:
		c.violate(&Violation{Rule: RuleFlow, Time: now, Station: "flow-table",
			Detail: fmt.Sprintf("occupancy %d is negative", occupancy)})
	case capacity > 0 && occupancy > capacity:
		c.violate(&Violation{Rule: RuleFlow, Time: now, Station: "flow-table",
			Detail: fmt.Sprintf("occupancy %d exceeds capacity %d", occupancy, capacity)})
	}
	switch {
	case pending < 0:
		c.violate(&Violation{Rule: RuleFlow, Time: now, Station: "flow-table",
			Detail: fmt.Sprintf("pending inserts %d is negative", pending)})
	case queueCap > 0 && pending > queueCap:
		c.violate(&Violation{Rule: RuleFlow, Time: now, Station: "flow-table",
			Detail: fmt.Sprintf("pending inserts %d exceed queue capacity %d", pending, queueCap)})
	}
	if occupancy > c.flows.occPeak {
		c.flows.occPeak = occupancy
	}
}

// FlowFastCount returns packets classified onto the fast path. Nil-safe.
func (c *Checker) FlowFastCount() uint64 {
	if c == nil || c.flows == nil {
		return 0
	}
	return c.flows.fast
}

// FlowSlowCount returns packets classified onto the slow path. Nil-safe.
func (c *Checker) FlowSlowCount() uint64 {
	if c == nil || c.flows == nil {
		return 0
	}
	return c.flows.slow
}

// finishFlows runs the end-of-run datapath conservation check: every
// injected packet was classified exactly once.
func (c *Checker) finishFlows(now sim.Time) {
	if c.flows == nil {
		return
	}
	if c.flows.fast+c.flows.slow != c.injected {
		c.violate(&Violation{Rule: RuleFlow, Time: now,
			Detail: fmt.Sprintf("fast %d + slow %d != injected %d",
				c.flows.fast, c.flows.slow, c.injected)})
	}
	if c.flows.dropped != c.dropped {
		c.violate(&Violation{Rule: RuleFlow, Time: now,
			Detail: fmt.Sprintf("slow-path drops %d disagree with ledger drops %d",
				c.flows.dropped, c.dropped)})
	}
}
