// Package trace generates the workloads and input data sets of the
// paper's methodology (§3.3–§3.4, §5.1): packet-size mixes standing in
// for the Stratosphere PCAP capture, Poisson/paced arrival processes,
// YCSB key-value workloads, synthetic Snort-style rule sets, and the
// hyperscaler diurnal network trace behind Fig. 7 and Table 4.
//
// Everything is produced from seeded sim.RNG streams: the data is
// synthetic but its distributional properties (bimodal datacenter packet
// sizes, Zipf key popularity, per-rule-set match densities, low-mean
// bursty datacenter rates) are the ones the paper's results depend on.
package trace

import (
	"fmt"

	"repro/internal/sim"
)

// SizeDist yields packet sizes in bytes.
type SizeDist interface {
	Next(r *sim.RNG) int
	Mean() float64
	String() string
}

// Fixed always returns the same size — the paper's 64 B and 1 KB
// microbenchmark packets and the MTU-sized OvS/REM streams.
type Fixed int

// Next implements SizeDist.
func (f Fixed) Next(*sim.RNG) int { return int(f) }

// Mean implements SizeDist.
func (f Fixed) Mean() float64 { return float64(f) }

func (f Fixed) String() string { return fmt.Sprintf("fixed %dB", int(f)) }

// Bimodal is the classic datacenter mix (Benson et al. [13]): most
// packets are tiny (ACKs, RPCs) or full-MTU (bulk), with a thin middle.
type Bimodal struct {
	SmallSize, LargeSize int
	SmallFrac            float64
	// MidFrac of packets draw uniformly between the modes.
	MidFrac float64
}

// CTUMixed returns a mix resembling the CTU-Mixed-Capture PCAP the paper
// replays with DPDK-Pktgen: ~45% small, ~45% MTU, 10% spread.
func CTUMixed() Bimodal {
	return Bimodal{SmallSize: 64, LargeSize: 1500, SmallFrac: 0.45, MidFrac: 0.10}
}

// Next implements SizeDist.
func (b Bimodal) Next(r *sim.RNG) int {
	u := r.Float64()
	switch {
	case u < b.SmallFrac:
		return b.SmallSize
	case u < b.SmallFrac+b.MidFrac:
		return b.SmallSize + r.Intn(b.LargeSize-b.SmallSize)
	default:
		return b.LargeSize
	}
}

// Mean implements SizeDist.
func (b Bimodal) Mean() float64 {
	mid := float64(b.SmallSize+b.LargeSize) / 2
	largeFrac := 1 - b.SmallFrac - b.MidFrac
	return b.SmallFrac*float64(b.SmallSize) + b.MidFrac*mid + largeFrac*float64(b.LargeSize)
}

func (b Bimodal) String() string {
	return fmt.Sprintf("bimodal %dB/%dB (%.0f%% small)", b.SmallSize, b.LargeSize, b.SmallFrac*100)
}

// Arrivals produces packet inter-arrival gaps for a target data rate.
type Arrivals struct {
	rng     *sim.RNG
	poisson bool
}

// NewPoissonArrivals returns an open-loop Poisson arrival process, the
// standard model for aggregated datacenter traffic and what pktgen-style
// load generators approximate.
func NewPoissonArrivals(seed uint64) *Arrivals {
	return &Arrivals{rng: sim.NewRNG(seed), poisson: true}
}

// NewPacedArrivals returns deterministic, evenly spaced arrivals — what
// DPDK-Pktgen produces at a fixed rate setting.
func NewPacedArrivals(seed uint64) *Arrivals {
	return &Arrivals{rng: sim.NewRNG(seed), poisson: false}
}

// Gap returns the next inter-arrival time for packets of size bytes at
// rate bits/s.
func (a *Arrivals) Gap(size int, rateBits float64) sim.Duration {
	mean := sim.DurationOf(size, rateBits)
	if !a.poisson {
		return mean
	}
	return a.rng.Exp(mean)
}
