// Per-flow decomposition of the aggregate traces.
//
// The hyperscaler traces say how many bits per second arrive; the flow
// layer says which *flow* each packet belongs to. That identity is what
// the offload control plane keys on: the eSwitch flow table holds
// per-flow rules, so SLO behavior under a bounded table is entirely a
// function of the flow mix — how many flows are live at once, how the
// packet mass splits between a few elephants and many mice, and how
// fast flows churn.
//
// FlowAssigner is a seeded, deterministic generator: a fixed set of
// active flow slots, each holding a flow with a Zipf-drawn remaining
// packet budget. Every packet picks a slot uniformly; exhausted or
// churned-out slots respawn a fresh flow (a new flow ID, whose first
// packet is flagged so the datapath can charge the rule-decision cost).
package trace

import (
	"fmt"

	"repro/internal/sim"
)

// FlowMix parameterizes the flow decomposition of a trace.
type FlowMix struct {
	// Seed makes the decomposition reproducible.
	Seed uint64
	// Concurrency is the number of simultaneously active flows.
	Concurrency int
	// ElephantFrac is the probability a freshly spawned flow is an
	// elephant (long-lived, many packets) rather than a mouse.
	ElephantFrac float64
	// MiceMaxPkts bounds a mouse's packet budget: 1 + Zipf over
	// [0, MiceMaxPkts), so most mice are a packet or two.
	MiceMaxPkts int
	// ElephantMinPkts / ElephantMaxPkts bound an elephant's packet
	// budget: Min + Zipf over the range.
	ElephantMinPkts int
	ElephantMaxPkts int
	// ZipfS is the Zipf exponent for both budget draws.
	ZipfS float64
	// ChurnPerPacket is the per-packet probability that one random
	// active flow is force-retired (connection reset, migration): its
	// slot respawns a new flow on next use. Churn is what turns a
	// bounded flow table into a moving target.
	ChurnPerPacket float64
}

// DefaultFlowMix returns the elephant/mice mix used by the offload
// experiments: a few percent elephants carrying most of the packet
// mass over thousands of concurrent flows.
func DefaultFlowMix() FlowMix {
	return FlowMix{
		Seed:            0xf10f,
		Concurrency:     2048,
		ElephantFrac:    0.06,
		MiceMaxPkts:     12,
		ElephantMinPkts: 512,
		ElephantMaxPkts: 16384,
		ZipfS:           1.25,
		ChurnPerPacket:  0.001,
	}
}

// Validate reports the first configuration problem, or nil.
func (m *FlowMix) Validate() error {
	switch {
	case m.Concurrency <= 0:
		return fmt.Errorf("trace: flow mix concurrency must be positive (got %d)", m.Concurrency)
	case m.ElephantFrac < 0 || m.ElephantFrac > 1:
		return fmt.Errorf("trace: elephant fraction must be in [0, 1] (got %g)", m.ElephantFrac)
	case m.MiceMaxPkts < 1:
		return fmt.Errorf("trace: mice max packets must be at least 1 (got %d)", m.MiceMaxPkts)
	case m.ElephantMinPkts < 1:
		return fmt.Errorf("trace: elephant min packets must be at least 1 (got %d)", m.ElephantMinPkts)
	case m.ElephantMaxPkts < m.ElephantMinPkts:
		return fmt.Errorf("trace: elephant max packets %d below min %d", m.ElephantMaxPkts, m.ElephantMinPkts)
	case m.ZipfS <= 0:
		return fmt.Errorf("trace: Zipf exponent must be positive (got %g)", m.ZipfS)
	case m.ChurnPerPacket < 0 || m.ChurnPerPacket >= 1:
		return fmt.Errorf("trace: churn per packet must be in [0, 1) (got %g)", m.ChurnPerPacket)
	}
	return nil
}

// flowSlot is one active-flow slot: the live flow's identity and its
// remaining packet budget. remaining == 0 means empty (respawn on use).
type flowSlot struct {
	id        uint64
	remaining int
	elephant  bool
}

// FlowAssigner hands out flow identities packet by packet.
type FlowAssigner struct {
	mix   FlowMix
	rng   *sim.RNG
	mice  *sim.Zipf
	eleph *sim.Zipf
	slots []flowSlot

	nextID   uint64
	started  uint64
	churned  uint64
	elephant uint64

	pkts      uint64
	elephPkts uint64
}

// NewAssigner builds the generator; it panics on an invalid mix (the
// constructor discipline of the trace layer).
func (m FlowMix) NewAssigner() *FlowAssigner {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	rng := sim.NewRNG(m.Seed)
	a := &FlowAssigner{
		mix:   m,
		rng:   rng,
		mice:  sim.NewZipf(rng.Fork(1), uint64(m.MiceMaxPkts), m.ZipfS),
		slots: make([]flowSlot, m.Concurrency),
	}
	if span := m.ElephantMaxPkts - m.ElephantMinPkts; span > 0 {
		a.eleph = sim.NewZipf(rng.Fork(2), uint64(span)+1, m.ZipfS)
	}
	return a
}

// Next assigns the next packet to a flow. It returns the flow's ID and
// whether this packet is the first of the flow (a brand-new flow ID:
// the packet that pays the slow-path rule-decision cost).
func (a *FlowAssigner) Next() (id uint64, first bool) {
	a.pkts++
	// Churn: with the configured probability, force-retire one random
	// active flow. Its slot respawns a fresh flow when next picked.
	if a.mix.ChurnPerPacket > 0 && a.rng.Float64() < a.mix.ChurnPerPacket {
		s := &a.slots[a.rng.Intn(len(a.slots))]
		if s.remaining > 0 {
			s.remaining = 0
			a.churned++
		}
	}
	s := &a.slots[a.rng.Intn(len(a.slots))]
	if s.remaining == 0 {
		a.spawn(s)
		first = true
	}
	s.remaining--
	if s.elephant {
		a.elephPkts++
	}
	return s.id, first
}

// spawn fills a slot with a fresh flow and its packet budget.
func (a *FlowAssigner) spawn(s *flowSlot) {
	a.nextID++
	a.started++
	s.id = a.nextID
	s.elephant = a.rng.Float64() < a.mix.ElephantFrac
	if s.elephant {
		a.elephant++
		s.remaining = a.mix.ElephantMinPkts
		if a.eleph != nil {
			s.remaining += int(a.eleph.Next())
		}
	} else {
		s.remaining = 1 + int(a.mice.Next())
	}
}

// FlowsStarted returns how many distinct flows have been spawned.
func (a *FlowAssigner) FlowsStarted() uint64 { return a.started }

// FlowsChurned returns how many flows were force-retired by churn.
func (a *FlowAssigner) FlowsChurned() uint64 { return a.churned }

// ElephantFlows returns how many spawned flows were elephants.
func (a *FlowAssigner) ElephantFlows() uint64 { return a.elephant }

// Packets returns how many packets have been assigned.
func (a *FlowAssigner) Packets() uint64 { return a.pkts }

// ElephantPacketShare returns the fraction of assigned packets that
// belonged to elephant flows — the "mass" of the mix.
func (a *FlowAssigner) ElephantPacketShare() float64 {
	if a.pkts == 0 {
		return 0
	}
	return float64(a.elephPkts) / float64(a.pkts)
}
