package trace

import (
	"strings"
	"testing"
)

func TestFlowAssignerDeterministic(t *testing.T) {
	mix := DefaultFlowMix()
	a, b := mix.NewAssigner(), mix.NewAssigner()
	for i := 0; i < 20000; i++ {
		aid, afirst := a.Next()
		bid, bfirst := b.Next()
		if aid != bid || afirst != bfirst {
			t.Fatalf("packet %d diverged: (%d,%v) vs (%d,%v)", i, aid, afirst, bid, bfirst)
		}
	}
	if a.FlowsStarted() != b.FlowsStarted() || a.FlowsChurned() != b.FlowsChurned() {
		t.Fatalf("stats diverged: %d/%d vs %d/%d",
			a.FlowsStarted(), a.FlowsChurned(), b.FlowsStarted(), b.FlowsChurned())
	}
}

func TestFlowAssignerSeedChangesStream(t *testing.T) {
	mix := DefaultFlowMix()
	a := mix.NewAssigner()
	mix.Seed++
	b := mix.NewAssigner()
	same := true
	for i := 0; i < 1000; i++ {
		aid, _ := a.Next()
		bid, _ := b.Next()
		if aid != bid {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced the same flow stream")
	}
}

func TestFlowFirstFlagMarksEachFlowOnce(t *testing.T) {
	mix := DefaultFlowMix()
	mix.Concurrency = 64
	a := mix.NewAssigner()
	seen := make(map[uint64]bool)
	for i := 0; i < 50000; i++ {
		id, first := a.Next()
		if first {
			if seen[id] {
				t.Fatalf("flow %d flagged first twice", id)
			}
			seen[id] = true
		} else if !seen[id] {
			t.Fatalf("flow %d seen before its first packet", id)
		}
	}
	if uint64(len(seen)) != a.FlowsStarted() {
		t.Fatalf("first flags %d disagree with FlowsStarted %d", len(seen), a.FlowsStarted())
	}
}

// The mix regression test: with the default parameters, a small share
// of elephant flows must carry the bulk of the packet mass — the
// defining property of an elephant/mice decomposition.
func TestDefaultMixElephantsCarryTheMass(t *testing.T) {
	a := DefaultFlowMix().NewAssigner()
	for i := 0; i < 300000; i++ {
		a.Next()
	}
	flowShare := float64(a.ElephantFlows()) / float64(a.FlowsStarted())
	if flowShare > 0.12 {
		t.Fatalf("elephants should be a small share of flows, got %.3f", flowShare)
	}
	if mass := a.ElephantPacketShare(); mass < 0.5 {
		t.Fatalf("elephants should carry most of the packet mass, got %.3f", mass)
	}
}

// Mean packets-per-flow regression, mirroring the trace.Scale tests:
// the spawn rate is pinned by the budget distributions, so flows
// started per packet must stay near its calibrated value.
func TestDefaultMixFlowArrivalRateStable(t *testing.T) {
	a := DefaultFlowMix().NewAssigner()
	const n = 300000
	for i := 0; i < n; i++ {
		a.Next()
	}
	perPkt := float64(a.FlowsStarted()) / float64(n)
	if perPkt < 0.05 || perPkt > 0.40 {
		t.Fatalf("flows started per packet %.4f outside calibrated band", perPkt)
	}
}

func TestChurnIncreasesFlowArrivals(t *testing.T) {
	const n = 200000
	calm := DefaultFlowMix()
	calm.ChurnPerPacket = 0
	churny := DefaultFlowMix()
	churny.ChurnPerPacket = 0.02

	a, b := calm.NewAssigner(), churny.NewAssigner()
	for i := 0; i < n; i++ {
		a.Next()
		b.Next()
	}
	if a.FlowsChurned() != 0 {
		t.Fatalf("zero churn rate still churned %d flows", a.FlowsChurned())
	}
	if b.FlowsChurned() == 0 {
		t.Fatal("churny mix never churned")
	}
	if b.FlowsStarted() <= a.FlowsStarted() {
		t.Fatalf("churn should raise flow arrivals: calm %d vs churny %d",
			a.FlowsStarted(), b.FlowsStarted())
	}
}

func TestFlowMixValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*FlowMix)
		want string
	}{
		{"zero concurrency", func(m *FlowMix) { m.Concurrency = 0 }, "concurrency"},
		{"bad elephant frac", func(m *FlowMix) { m.ElephantFrac = 1.5 }, "elephant fraction"},
		{"zero mice", func(m *FlowMix) { m.MiceMaxPkts = 0 }, "mice"},
		{"zero elephant min", func(m *FlowMix) { m.ElephantMinPkts = 0 }, "elephant min"},
		{"max below min", func(m *FlowMix) { m.ElephantMaxPkts = 1 }, "below min"},
		{"bad zipf", func(m *FlowMix) { m.ZipfS = 0 }, "Zipf"},
		{"bad churn", func(m *FlowMix) { m.ChurnPerPacket = 1 }, "churn"},
	}
	for _, tc := range cases {
		mix := DefaultFlowMix()
		tc.mut(&mix)
		err := mix.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}
	mix := DefaultFlowMix()
	if err := mix.Validate(); err != nil {
		t.Fatalf("default mix should validate: %v", err)
	}
}

func TestNewAssignerPanicsOnBadMix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewAssigner with invalid mix should panic")
		}
	}()
	mix := DefaultFlowMix()
	mix.Concurrency = -1
	mix.NewAssigner()
}
