package trace

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestFixedSize(t *testing.T) {
	r := sim.NewRNG(1)
	f := Fixed(1024)
	for i := 0; i < 10; i++ {
		if f.Next(r) != 1024 {
			t.Fatal("fixed dist not fixed")
		}
	}
	if f.Mean() != 1024 {
		t.Fatal("fixed mean wrong")
	}
}

func TestBimodalShape(t *testing.T) {
	r := sim.NewRNG(2)
	b := CTUMixed()
	var small, large, mid int
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		s := b.Next(r)
		sum += float64(s)
		switch {
		case s == 64:
			small++
		case s == 1500:
			large++
		default:
			mid++
		}
	}
	if frac := float64(small) / n; math.Abs(frac-0.45) > 0.02 {
		t.Errorf("small fraction = %v, want ~0.45", frac)
	}
	if frac := float64(large) / n; math.Abs(frac-0.45) > 0.02 {
		t.Errorf("large fraction = %v, want ~0.45", frac)
	}
	if math.Abs(sum/n-b.Mean())/b.Mean() > 0.02 {
		t.Errorf("empirical mean %v vs analytic %v", sum/n, b.Mean())
	}
}

func TestArrivalsPoissonMeanRate(t *testing.T) {
	a := NewPoissonArrivals(3)
	const size, rate = 1500, 10e9
	var sum sim.Duration
	const n = 50000
	for i := 0; i < n; i++ {
		sum += a.Gap(size, rate)
	}
	want := sim.DurationOf(size, rate)
	got := sum / n
	if math.Abs(float64(got-want))/float64(want) > 0.03 {
		t.Fatalf("mean gap = %v, want %v", got, want)
	}
}

func TestArrivalsPacedDeterministic(t *testing.T) {
	a := NewPacedArrivals(3)
	g1 := a.Gap(1500, 10e9)
	g2 := a.Gap(1500, 10e9)
	if g1 != g2 || g1 != sim.DurationOf(1500, 10e9) {
		t.Fatalf("paced gaps differ: %v vs %v", g1, g2)
	}
}

func TestHyperscalerTraceMeanExact(t *testing.T) {
	tr := NewHyperscalerTrace(DefaultHyperscalerConfig())
	if m := tr.MeanGbps(); math.Abs(m-0.76) > 1e-9 {
		t.Fatalf("trace mean = %v, want exactly 0.76 (rescaled)", m)
	}
	if tr.PeakGbps() <= 2*tr.MeanGbps() {
		t.Fatalf("trace not bursty: peak %v vs mean %v", tr.PeakGbps(), tr.MeanGbps())
	}
	if len(tr.RatesGbps) != 1440 {
		t.Fatalf("points = %d, want 1440", len(tr.RatesGbps))
	}
	for i, v := range tr.RatesGbps {
		if v < 0 {
			t.Fatalf("negative rate at %d", i)
		}
	}
}

func TestHyperscalerTraceDeterministic(t *testing.T) {
	a := NewHyperscalerTrace(DefaultHyperscalerConfig())
	b := NewHyperscalerTrace(DefaultHyperscalerConfig())
	for i := range a.RatesGbps {
		if a.RatesGbps[i] != b.RatesGbps[i] {
			t.Fatal("trace generation not deterministic")
		}
	}
}

func TestHyperscalerCompressAndSubsample(t *testing.T) {
	tr := NewHyperscalerTrace(DefaultHyperscalerConfig())
	c := tr.Compress(sim.Millisecond)
	if c.Duration() != sim.Duration(1440)*sim.Millisecond {
		t.Fatalf("compressed duration = %v", c.Duration())
	}
	if math.Abs(c.MeanGbps()-tr.MeanGbps()) > 1e-12 {
		t.Fatal("compression changed rates")
	}
	s := tr.Subsample(10)
	if len(s.RatesGbps) != 144 {
		t.Fatalf("subsample kept %d points, want 144", len(s.RatesGbps))
	}
}

func TestHyperscalerSeries(t *testing.T) {
	tr := NewHyperscalerTrace(DefaultHyperscalerConfig())
	ts := tr.Series()
	if ts.Len() != len(tr.RatesGbps) {
		t.Fatal("series length mismatch")
	}
	if math.Abs(ts.Mean()-0.76) > 1e-9 {
		t.Fatalf("series mean = %v", ts.Mean())
	}
}

func TestYCSBMixes(t *testing.T) {
	for _, tc := range []struct {
		w    YCSBWorkload
		want float64
	}{
		{WorkloadA, 0.50}, {WorkloadB, 0.95}, {WorkloadC, 1.00},
	} {
		g := NewYCSBGen(tc.w, 1000, 1024, 7)
		reads := 0
		const n = 20000
		for i := 0; i < n; i++ {
			op := g.Next()
			if op.Type == OpRead {
				reads++
			} else if len(op.Value) != 1024 {
				t.Fatalf("%s: update value size %d", tc.w, len(op.Value))
			}
		}
		if frac := float64(reads) / n; math.Abs(frac-tc.want) > 0.02 {
			t.Errorf("%s read fraction = %v, want %v", tc.w, frac, tc.want)
		}
	}
}

func TestYCSBKeysInRange(t *testing.T) {
	g := NewYCSBGen(WorkloadA, 100, 64, 9)
	keys := make(map[string]bool)
	for _, k := range g.LoadKeys() {
		keys[k] = true
	}
	if len(keys) != 100 {
		t.Fatalf("load keys = %d unique, want 100", len(keys))
	}
	for i := 0; i < 5000; i++ {
		op := g.Next()
		if !keys[op.Key] {
			t.Fatalf("generated key %q outside loaded keyspace", op.Key)
		}
	}
}

func TestYCSBZipfSkew(t *testing.T) {
	g := NewYCSBGen(WorkloadC, 10000, 64, 11)
	counts := make(map[string]int)
	for i := 0; i < 50000; i++ {
		counts[g.Next().Key]++
	}
	// The hottest key must dominate the median key heavily.
	var hottest int
	for _, c := range counts {
		if c > hottest {
			hottest = c
		}
	}
	if hottest < 500 {
		//snicvet:ignore detflow -- max over map values is the same whatever order the map yields them
		t.Fatalf("hottest key count %d: Zipf skew missing", hottest)
	}
}

func TestYCSBWireSizes(t *testing.T) {
	g := NewYCSBGen(WorkloadA, 100, 1024, 1)
	read := YCSBOp{Type: OpRead, Key: Key(1)}
	upd := YCSBOp{Type: OpUpdate, Key: Key(1), Value: make([]byte, 1024)}
	if g.RequestWireSize(upd) <= g.RequestWireSize(read) {
		t.Fatal("update request must be larger than read request")
	}
	if g.ResponseWireSize(read) <= g.ResponseWireSize(upd) {
		t.Fatal("read response must be larger than update response")
	}
	if g.ResponseWireSize(read) < 1024 {
		t.Fatal("read response must carry the value")
	}
}

func TestRuleSetGeneration(t *testing.T) {
	for _, name := range RuleSetNames() {
		rs := GenRuleSet(name, 42)
		if len(rs.Patterns) == 0 {
			t.Fatalf("%s: no patterns", name)
		}
		seen := map[string]bool{}
		for _, p := range rs.Patterns {
			if seen[p] {
				t.Fatalf("%s: duplicate pattern", name)
			}
			seen[p] = true
		}
	}
	// Image set: more, shorter patterns than executable.
	img, exe := GenRuleSet(RuleSetImage, 42), GenRuleSet(RuleSetExecutable, 42)
	if len(img.Patterns) <= len(exe.Patterns) {
		t.Error("file_image should have more patterns than file_executable")
	}
	if img.MatchDensity <= exe.MatchDensity {
		t.Error("file_image should match more often than file_executable")
	}
}

func TestRuleSetDeterministic(t *testing.T) {
	a := GenRuleSet(RuleSetFlash, 42)
	b := GenRuleSet(RuleSetFlash, 42)
	for i := range a.Patterns {
		if a.Patterns[i] != b.Patterns[i] {
			t.Fatal("rule generation not deterministic")
		}
	}
}

func TestPayloadGenMatchDensity(t *testing.T) {
	rs := GenRuleSet(RuleSetImage, 42)
	pg := NewPayloadGen(rs, 7)
	matches := 0
	const n = 20000
	for i := 0; i < n; i++ {
		payload, has := pg.Next(1500)
		if has {
			matches++
			// Ground truth: the payload must actually contain a pattern.
			found := false
			for _, p := range rs.Patterns {
				if bytes.Contains(payload, []byte(p)) {
					found = true
					break
				}
			}
			if !found {
				t.Fatal("hasMatch=true but no pattern present")
			}
		}
	}
	got := float64(matches) / n
	if math.Abs(got-rs.MatchDensity) > 0.01 {
		t.Fatalf("match density = %v, want ~%v", got, rs.MatchDensity)
	}
}

func TestPayloadGenNoFalseFiller(t *testing.T) {
	// Filler bytes live in 0x80+, patterns in 0x20–0x7e: a non-match
	// payload can never contain any pattern.
	rs := GenRuleSet(RuleSetExecutable, 42)
	pg := NewPayloadGen(rs, 9)
	for i := 0; i < 2000; i++ {
		payload, has := pg.Next(256)
		if has {
			continue
		}
		for _, p := range rs.Patterns {
			if bytes.Contains(payload, []byte(p)) {
				t.Fatal("filler accidentally contains a pattern")
			}
		}
	}
}

// Property: payload generator always returns exactly n bytes.
func TestPayloadGenSizeProperty(t *testing.T) {
	rs := GenRuleSet(RuleSetFlash, 1)
	pg := NewPayloadGen(rs, 2)
	f := func(n uint16) bool {
		size := int(n%2000) + 16
		p, _ := pg.Next(size)
		return len(p) == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestYCSBBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero records did not panic")
		}
	}()
	NewYCSBGen(WorkloadA, 0, 10, 1)
}
