package trace

import (
	"math"
	"testing"
)

// The paper reports ~0.76 Gb/s mean REM throughput on the proprietary
// hyperscaler trace; the synthetic stand-in must land within 5% of that
// at the default seed (it is rescaled to hit the mean exactly, so this
// is a guard against config drift, not generator noise).
func TestHyperscalerDefaultMeanNearPaper(t *testing.T) {
	h := NewHyperscalerTrace(DefaultHyperscalerConfig())
	const paperMean = 0.76
	if got := h.MeanGbps(); math.Abs(got-paperMean)/paperMean > 0.05 {
		t.Fatalf("default trace mean = %.4f Gb/s, want within 5%% of %.2f", got, paperMean)
	}
}

func TestHyperscalerScaleLinearMean(t *testing.T) {
	h := NewHyperscalerTrace(DefaultHyperscalerConfig())
	for _, factor := range []float64{0.5, 1, 36, 1000} {
		s := h.Scale(factor)
		want := h.MeanGbps() * factor
		if got := s.MeanGbps(); math.Abs(got-want) > 1e-9*math.Max(1, want) {
			t.Fatalf("Scale(%v) mean = %v, want %v", factor, got, want)
		}
		if s.Interval != h.Interval {
			t.Fatalf("Scale changed interval: %v != %v", s.Interval, h.Interval)
		}
	}
}

// Scaling must preserve burst structure: each scaled point, normalized by
// the scaled mean, equals the base point normalized by the base mean.
func TestHyperscalerScalePreservesShape(t *testing.T) {
	h := NewHyperscalerTrace(DefaultHyperscalerConfig())
	s := h.Scale(512)
	hm, sm := h.MeanGbps(), s.MeanGbps()
	for i := range h.RatesGbps {
		base := h.RatesGbps[i] / hm
		scaled := s.RatesGbps[i] / sm
		if math.Abs(base-scaled) > 1e-9 {
			t.Fatalf("point %d: normalized shape diverged (%v vs %v)", i, base, scaled)
		}
	}
	// Peak-to-mean ratio (burstiness) is invariant too.
	if math.Abs(h.PeakGbps()/hm-s.PeakGbps()/sm) > 1e-9 {
		t.Fatalf("peak-to-mean ratio changed under Scale")
	}
}

func TestHyperscalerScaleNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Scale(-1) did not panic")
		}
	}()
	NewHyperscalerTrace(DefaultHyperscalerConfig()).Scale(-1)
}
