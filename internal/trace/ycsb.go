package trace

import (
	"fmt"

	"repro/internal/sim"
)

// YCSB models the Yahoo! Cloud Serving Benchmark driver of paper §3.4:
// the Redis evaluation loads 30 K records of 1 KB and replays workloads
// A (50/50 read/update), B (95/5) and C (100% read) with Zipf-distributed
// key popularity.

// OpType is a key-value operation kind.
type OpType int

const (
	// OpRead fetches a record.
	OpRead OpType = iota
	// OpUpdate overwrites a record's value.
	OpUpdate
)

func (o OpType) String() string {
	if o == OpUpdate {
		return "update"
	}
	return "read"
}

// YCSBWorkload names one of the standard mixes.
type YCSBWorkload string

const (
	// WorkloadA is the update-heavy mix: 50% read, 50% update.
	WorkloadA YCSBWorkload = "workload_a"
	// WorkloadB is read-mostly: 95% read, 5% update.
	WorkloadB YCSBWorkload = "workload_b"
	// WorkloadC is read-only.
	WorkloadC YCSBWorkload = "workload_c"
)

// ReadFraction returns the workload's read ratio.
func (w YCSBWorkload) ReadFraction() float64 {
	switch w {
	case WorkloadA:
		return 0.50
	case WorkloadB:
		return 0.95
	case WorkloadC:
		return 1.00
	default:
		panic(fmt.Sprintf("trace: unknown YCSB workload %q", w))
	}
}

// YCSBOp is one generated operation.
type YCSBOp struct {
	Type  OpType
	Key   string
	Value []byte // nil for reads
}

// YCSBGen produces operations for a workload over a keyspace.
type YCSBGen struct {
	Workload  YCSBWorkload
	Records   int
	ValueSize int
	rng       *sim.RNG
	zipf      *sim.Zipf
	valueBuf  []byte
}

// PaperRecords and PaperValueSize are the §3.4 Redis parameters.
const (
	PaperRecords   = 30_000
	PaperValueSize = 1024
	PaperOps       = 10_000
)

// NewYCSBGen returns a generator. Records and valueSize must be positive.
func NewYCSBGen(w YCSBWorkload, records, valueSize int, seed uint64) *YCSBGen {
	if records <= 0 || valueSize <= 0 {
		panic("trace: YCSB needs positive records and value size")
	}
	r := sim.NewRNG(seed)
	g := &YCSBGen{
		Workload:  w,
		Records:   records,
		ValueSize: valueSize,
		rng:       r,
		zipf:      sim.NewZipf(r.Fork(1), uint64(records), 0.99),
		valueBuf:  make([]byte, valueSize),
	}
	for i := range g.valueBuf {
		g.valueBuf[i] = byte('a' + i%26)
	}
	return g
}

// Key formats the i-th record's key the way YCSB does.
func Key(i uint64) string { return fmt.Sprintf("user%010d", i) }

// Next generates one operation. The returned value slice is reused across
// calls; consumers that retain it must copy.
func (g *YCSBGen) Next() YCSBOp {
	key := Key(g.zipf.Next())
	if g.rng.Float64() < g.Workload.ReadFraction() {
		return YCSBOp{Type: OpRead, Key: key}
	}
	return YCSBOp{Type: OpUpdate, Key: key, Value: g.valueBuf}
}

// LoadKeys enumerates every record key for the initial database load.
func (g *YCSBGen) LoadKeys() []string {
	keys := make([]string, g.Records)
	for i := range keys {
		keys[i] = Key(uint64(i))
	}
	return keys
}

// RequestWireSize returns the approximate request packet payload for an
// op: key plus protocol framing, plus the value for updates.
func (g *YCSBGen) RequestWireSize(op YCSBOp) int {
	const framing = 32
	n := len(op.Key) + framing
	if op.Type == OpUpdate {
		n += len(op.Value)
	}
	return n
}

// ResponseWireSize returns the approximate response payload.
func (g *YCSBGen) ResponseWireSize(op YCSBOp) int {
	const framing = 16
	if op.Type == OpRead {
		return g.ValueSize + framing
	}
	return framing
}
