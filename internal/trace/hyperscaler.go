package trace

import (
	"math"

	"repro/internal/sim"
	"repro/internal/stats"
)

// HyperscalerTrace is the synthetic stand-in for the proprietary
// datacenter network trace of paper Fig. 7 / Table 4 / §5.1: a rate
// series whose average data rate is low (the paper reports 0.76 Gb/s of
// REM throughput on it, "relatively low and similar to values reported by
// prior work [13, 83]") with a diurnal swing and short heavy-tailed
// microbursts (Zhang et al. [83]).
type HyperscalerTrace struct {
	// Interval is the spacing between rate samples.
	Interval sim.Duration
	// RatesGbps holds the data rate for each interval.
	RatesGbps []float64
}

// HyperscalerConfig tunes the generator.
type HyperscalerConfig struct {
	Seed uint64
	// Points is the number of rate samples.
	Points int
	// Interval between samples.
	Interval sim.Duration
	// MeanGbps is the target average data rate.
	MeanGbps float64
	// DiurnalSwing in [0,1): peak-to-mean amplitude of the daily cycle.
	DiurnalSwing float64
	// BurstProb is the per-interval probability of a microburst.
	BurstProb float64
	// BurstMaxGbps caps burst magnitude.
	BurstMaxGbps float64
}

// DefaultHyperscalerConfig matches Table 4's regime: mean ≈ 0.76 Gb/s
// against a 100 Gb/s port, bursts to a few Gb/s.
func DefaultHyperscalerConfig() HyperscalerConfig {
	return HyperscalerConfig{
		Seed:         0x5eed,
		Points:       1440, // one day at 1-minute granularity
		Interval:     sim.Duration(60) * sim.Second,
		MeanGbps:     0.76,
		DiurnalSwing: 0.55,
		BurstProb:    0.02,
		BurstMaxGbps: 6,
	}
}

// NewHyperscalerTrace generates a trace from the config. The construction
// is: diurnal sinusoid around the mean, multiplicative log-normal noise,
// plus rare bounded-Pareto bursts; the series is then rescaled so its
// arithmetic mean hits MeanGbps exactly.
func NewHyperscalerTrace(cfg HyperscalerConfig) *HyperscalerTrace {
	if cfg.Points <= 0 || cfg.MeanGbps <= 0 {
		panic("trace: hyperscaler config needs positive points and mean")
	}
	r := sim.NewRNG(cfg.Seed)
	rates := make([]float64, cfg.Points)
	for i := range rates {
		phase := float64(i) / float64(cfg.Points) * 2 * math.Pi
		diurnal := 1 + cfg.DiurnalSwing*math.Sin(phase-1.2) // trough in the "early morning"
		noise := r.Normal(1, 0.18)
		if noise < 0.2 {
			noise = 0.2
		}
		v := cfg.MeanGbps * diurnal * noise
		if cfg.BurstProb > 0 && r.Float64() < cfg.BurstProb {
			v += r.Pareto(0.5, cfg.BurstMaxGbps, 1.5)
		}
		rates[i] = v
	}
	// Rescale to the exact target mean.
	var sum float64
	for _, v := range rates {
		sum += v
	}
	scale := cfg.MeanGbps * float64(cfg.Points) / sum
	for i := range rates {
		rates[i] *= scale
	}
	return &HyperscalerTrace{Interval: cfg.Interval, RatesGbps: rates}
}

// MeanGbps returns the arithmetic mean rate.
func (h *HyperscalerTrace) MeanGbps() float64 {
	if len(h.RatesGbps) == 0 {
		return 0
	}
	var sum float64
	for _, v := range h.RatesGbps {
		sum += v
	}
	return sum / float64(len(h.RatesGbps))
}

// PeakGbps returns the largest rate sample.
func (h *HyperscalerTrace) PeakGbps() float64 {
	var max float64
	for _, v := range h.RatesGbps {
		if v > max {
			max = v
		}
	}
	return max
}

// Duration returns the trace's covered time span.
func (h *HyperscalerTrace) Duration() sim.Duration {
	return sim.Duration(len(h.RatesGbps)) * h.Interval
}

// Series renders the trace as a time series (the Fig. 7 plot).
func (h *HyperscalerTrace) Series() *stats.TimeSeries {
	ts := &stats.TimeSeries{}
	for i, v := range h.RatesGbps {
		ts.Add(sim.Time(sim.Duration(i)*h.Interval), v)
	}
	return ts
}

// Compress returns a trace with the same rate sequence but each interval
// shortened to interval — replaying a full day in real simulated hours is
// pointless when every interval is statistically stationary, so the
// experiments replay a time-compressed trace with identical rates.
func (h *HyperscalerTrace) Compress(interval sim.Duration) *HyperscalerTrace {
	return &HyperscalerTrace{Interval: interval, RatesGbps: h.RatesGbps}
}

// Scale multiplies every rate sample by factor, turning the single-server
// trace (mean ≈ 0.76 Gb/s) into a fleet-level offered load (multi-Tb/s at
// datacenter scale). The burst structure is preserved exactly: the scaled
// series has the same normalized shape, just a linearly scaled mean.
func (h *HyperscalerTrace) Scale(factor float64) *HyperscalerTrace {
	if factor < 0 {
		panic("trace: negative scale factor")
	}
	out := &HyperscalerTrace{
		Interval:  h.Interval,
		RatesGbps: make([]float64, len(h.RatesGbps)),
	}
	for i, v := range h.RatesGbps {
		out.RatesGbps[i] = v * factor
	}
	return out
}

// Subsample keeps every k-th rate point.
func (h *HyperscalerTrace) Subsample(k int) *HyperscalerTrace {
	if k <= 1 {
		return h
	}
	out := &HyperscalerTrace{Interval: h.Interval}
	for i := 0; i < len(h.RatesGbps); i += k {
		out.RatesGbps = append(out.RatesGbps, h.RatesGbps[i])
	}
	return out
}
