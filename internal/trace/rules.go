package trace

import (
	"fmt"

	"repro/internal/sim"
)

// Rule sets stand in for the registered Snort rule-set snapshot the paper
// programs into both Hyperscan (host) and the RXP engine (SNIC): three
// subsets — file_image, file_flash, file_executable — that differ in rule
// count, pattern length, and how often real traffic matches them. Those
// differences are what flips the REM winner between rule sets (Key
// Observation 4), so the generator reproduces them parametrically.

// RuleSetName identifies one of the paper's three subsets.
type RuleSetName string

const (
	// RuleSetImage (file_image): many short magic-byte patterns; matches
	// are common in mixed traffic. Scanning is table-pressure-heavy on a
	// CPU, which is why the host's software REM knees early (~40 Gb/s).
	RuleSetImage RuleSetName = "file_image"
	// RuleSetFlash (file_flash): mid-sized set.
	RuleSetFlash RuleSetName = "file_flash"
	// RuleSetExecutable (file_executable): longer, more selective
	// patterns; CPU scanning stays cheap (host reaches 78 Gb/s).
	RuleSetExecutable RuleSetName = "file_executable"
)

// RuleSetNames lists the paper's three rule sets.
func RuleSetNames() []RuleSetName {
	return []RuleSetName{RuleSetImage, RuleSetFlash, RuleSetExecutable}
}

// RuleSet is a generated set of literal patterns plus the traffic
// characteristics the benchmarks need.
type RuleSet struct {
	Name     RuleSetName
	Patterns []string
	// MatchDensity is the probability that a generated packet payload
	// contains at least one pattern.
	MatchDensity float64
}

// ruleSetShape captures the per-set generation parameters.
type ruleSetShape struct {
	rules        int
	minLen       int
	maxLen       int
	matchDensity float64
}

var ruleShapes = map[RuleSetName]ruleSetShape{
	RuleSetImage:      {rules: 900, minLen: 4, maxLen: 8, matchDensity: 0.12},
	RuleSetFlash:      {rules: 350, minLen: 6, maxLen: 12, matchDensity: 0.05},
	RuleSetExecutable: {rules: 450, minLen: 8, maxLen: 16, matchDensity: 0.03},
}

// GenRuleSet deterministically synthesizes the named rule set.
func GenRuleSet(name RuleSetName, seed uint64) *RuleSet {
	shape, ok := ruleShapes[name]
	if !ok {
		panic(fmt.Sprintf("trace: unknown rule set %q", name))
	}
	r := sim.NewRNG(seed ^ hashName(string(name)))
	patterns := make([]string, shape.rules)
	seen := make(map[string]bool, shape.rules)
	for i := 0; i < shape.rules; {
		n := shape.minLen + r.Intn(shape.maxLen-shape.minLen+1)
		b := make([]byte, n)
		for j := range b {
			// Printable-ish bytes, skewed like protocol magic numbers.
			b[j] = byte(0x20 + r.Intn(0x5f))
		}
		p := string(b)
		if seen[p] {
			continue
		}
		seen[p] = true
		patterns[i] = p
		i++
	}
	return &RuleSet{Name: name, Patterns: patterns, MatchDensity: shape.matchDensity}
}

func hashName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// PayloadGen produces packet payloads that match a rule set at its
// configured density — the synthetic equivalent of replaying the
// CTU-Mixed capture against the Snort snapshot.
type PayloadGen struct {
	set *RuleSet
	rng *sim.RNG
}

// NewPayloadGen returns a generator for the set.
func NewPayloadGen(set *RuleSet, seed uint64) *PayloadGen {
	if set == nil {
		panic("trace: nil rule set")
	}
	return &PayloadGen{set: set, rng: sim.NewRNG(seed)}
}

// Next fills a payload of n bytes; with probability MatchDensity one of
// the set's patterns is embedded at a random offset. It reports whether a
// pattern was embedded, which tests use as matching ground truth.
func (p *PayloadGen) Next(n int) (payload []byte, hasMatch bool) {
	buf := make([]byte, n)
	for i := range buf {
		// Random filler drawn from a disjoint alphabet region (high bit
		// set) so filler can never accidentally contain a pattern.
		buf[i] = byte(0x80 + p.rng.Intn(0x7f))
	}
	if p.rng.Float64() < p.set.MatchDensity {
		pat := p.set.Patterns[p.rng.Intn(len(p.set.Patterns))]
		if len(pat) <= n {
			off := 0
			if n > len(pat) {
				off = p.rng.Intn(n - len(pat))
			}
			copy(buf[off:], pat)
			return buf, true
		}
	}
	return buf, false
}
