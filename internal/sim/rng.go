package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (SplitMix64 core) with the distribution helpers simulation models need.
//
// We deliberately do not use math/rand: models embed an RNG per component
// so that adding a new component never perturbs the random stream of an
// existing one, which keeps calibrated experiments stable across refactors.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two RNGs with the same seed
// produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed ^ 0x9e3779b97f4a7c15}
}

// Fork derives an independent child generator. The child's stream is a pure
// function of the parent's current state and the label, so component trees
// can hand out sub-streams deterministically.
func (r *RNG) Fork(label uint64) *RNG {
	return NewRNG(r.Uint64() ^ (label * 0xbf58476d1ce4e5b9))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a uniform integer in [0, n). n must be positive.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n(0)")
	}
	// Rejection sampling to avoid modulo bias.
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed duration with the given mean.
// Exponential inter-arrivals give Poisson packet arrivals, the standard
// open-loop load model used by the paper's pktgen-style generators.
func (r *RNG) Exp(mean Duration) Duration {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return Duration(-math.Log(u) * float64(mean))
}

// Normal returns a normally distributed value (Box–Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormalDur returns a log-normally distributed duration whose underlying
// normal has the given median and sigma. Service-time jitter in real systems
// is right-skewed; log-normal is the conventional fit and is what produces
// realistic p99/median gaps in our latency distributions.
func (r *RNG) LogNormalDur(median Duration, sigma float64) Duration {
	if median <= 0 {
		return 0
	}
	z := r.Normal(0, sigma)
	return Duration(float64(median) * math.Exp(z))
}

// Pareto returns a bounded Pareto sample in [min, max] with shape alpha.
// Used for heavy-tailed burst sizes in the hyperscaler trace generator.
func (r *RNG) Pareto(min, max, alpha float64) float64 {
	if min <= 0 || max <= min {
		panic("sim: Pareto requires 0 < min < max")
	}
	u := r.Float64()
	ha := math.Pow(max, alpha)
	la := math.Pow(min, alpha)
	x := -(u*ha - u*la - ha) / (ha * la)
	return math.Pow(x, -1/alpha)
}

// Zipf draws from a Zipf distribution over [0, n) with exponent s using
// rejection-inversion (Hörmann–Derflinger). It matches the key popularity
// skew of YCSB-style workloads.
type Zipf struct {
	r            *RNG
	n            uint64
	s            float64
	oneMinusS    float64
	hIntegralX1  float64
	hIntegralNum float64
	sDiv         float64
}

// NewZipf returns a Zipf sampler over [0, n) with exponent s (s != 1 is
// handled; s == 1 uses the limit form).
func NewZipf(r *RNG, n uint64, s float64) *Zipf {
	if n == 0 {
		panic("sim: NewZipf(n=0)")
	}
	z := &Zipf{r: r, n: n, s: s, oneMinusS: 1 - s}
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralNum = z.hIntegral(float64(n) + 0.5)
	z.sDiv = 2 - z.hIntegralInv(z.hIntegral(2.5)-z.h(2))
	return z
}

func (z *Zipf) h(x float64) float64 { return math.Exp(-z.s * math.Log(x)) }

func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2(z.oneMinusS*logX) * logX
}

func (z *Zipf) hIntegralInv(x float64) float64 {
	t := x * z.oneMinusS
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// Next returns the next Zipf sample in [0, n).
func (z *Zipf) Next() uint64 {
	for {
		u := z.hIntegralNum + z.r.Float64()*(z.hIntegralX1-z.hIntegralNum)
		x := z.hIntegralInv(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > float64(z.n) {
			k = float64(z.n)
		}
		if k-x <= z.sDiv || u >= z.hIntegral(k+0.5)-z.h(k) {
			return uint64(k) - 1
		}
	}
}

// helper1 computes log1p(x)/x with a series fallback near zero.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1/3.0-x*0.25))
}

// helper2 computes expm1(x)/x with a series fallback near zero.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x*(1/3.0)*(1+x*0.25))
}
