// Package sim provides a deterministic, virtual-time discrete-event
// simulation engine.
//
// All simulated components in this repository — CPU core pools, network
// links, PCIe lanes, hardware accelerators — are built on this package.
// The engine never reads the wall clock and never blocks on goroutines:
// every state change happens inside an event callback executed at a
// well-defined virtual timestamp, so simulations are reproducible
// bit-for-bit regardless of host scheduling or GC pauses.
package sim

import (
	"fmt"
	"time"
)

// Time is an absolute virtual timestamp in nanoseconds since the start of
// the simulation. It is deliberately a distinct type from time.Time so the
// two can never be confused.
type Time int64

// Duration is a span of virtual time in nanoseconds. It converts freely to
// and from time.Duration (which is also nanoseconds) via Std and FromStd.
type Duration int64

// Common durations, mirroring the time package.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time t+d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the time as a floating-point number of seconds since the
// simulation epoch.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the timestamp as a time.Duration for readability.
func (t Time) String() string { return time.Duration(t).String() }

// Std converts a virtual duration to a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// FromStd converts a time.Duration to a virtual duration.
func FromStd(d time.Duration) Duration { return Duration(d) }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros returns the duration as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// String formats the duration as a time.Duration for readability.
func (d Duration) String() string { return time.Duration(d).String() }

// DurationOf returns the time needed to move size bytes at rate bits/s.
// It is the workhorse conversion for link and accelerator serialization
// delays. A non-positive rate panics: a zero-rate resource is a
// configuration error, not a runtime condition.
func DurationOf(sizeBytes int, bitsPerSec float64) Duration {
	if bitsPerSec <= 0 {
		panic(fmt.Sprintf("sim: non-positive rate %v bits/s", bitsPerSec))
	}
	sec := float64(sizeBytes) * 8 / bitsPerSec
	return Duration(sec * float64(Second))
}

// Cycles returns the duration of n CPU cycles at freq Hz.
func Cycles(n float64, freqHz float64) Duration {
	if freqHz <= 0 {
		panic(fmt.Sprintf("sim: non-positive frequency %v Hz", freqHz))
	}
	return Duration(n / freqHz * float64(Second))
}
