package sim

import "fmt"

// Link models a serializing transmission resource: an Ethernet port, a
// PCIe lane bundle, or a memory channel. A payload of n bytes occupies the
// link for n*8/rate seconds (store-and-forward), then arrives after an
// additional fixed propagation delay.
//
// Link is a single-server FIFO: frames cannot overtake each other, which
// is exactly how wire serialization behaves and is what produces
// line-rate saturation effects.
type Link struct {
	eng         *Engine
	rateBits    float64
	propagation Duration
	freeAt      Time
	// rateFactor scales the effective rate in (0,1]; fault injection uses
	// it to model a link renegotiated down (e.g. thermal throttling to a
	// lower PAM4 rate). 0 means "unset" and is treated as 1.
	rateFactor float64
	// down marks a flapped link: frames sent while down are lost in
	// transit (no delivery), the model of a carrier drop.
	down bool

	// Statistics.
	bytesSent  uint64
	framesSent uint64
	busyTime   Duration
	lost       uint64

	// Optional telemetry hook (see Observe).
	name string
	obs  LinkObserver
}

// NewLink returns a link with the given rate in bits/s and one-way
// propagation delay.
func NewLink(eng *Engine, rateBitsPerSec float64, propagation Duration) *Link {
	if rateBitsPerSec <= 0 {
		panic("sim: link rate must be positive")
	}
	if propagation < 0 {
		panic("sim: negative propagation delay")
	}
	return &Link{eng: eng, rateBits: rateBitsPerSec, propagation: propagation}
}

// RateBits returns the link rate in bits/s.
func (l *Link) RateBits() float64 { return l.rateBits }

// Observe installs a telemetry observer identified by name. Observers
// are pure recorders: they must not mutate model state.
func (l *Link) Observe(name string, obs LinkObserver) {
	l.name = name
	l.obs = obs
}

// SetRateFactor caps the effective rate at factor × nominal for frames
// sent from now on. Factor must be in (0, 1]; 1 restores full rate.
func (l *Link) SetRateFactor(f float64) {
	if f <= 0 || f > 1 {
		panic(fmt.Sprintf("sim: link rate factor %v outside (0,1]", f))
	}
	l.rateFactor = f
}

// SetDown flaps the link. While down, every Send loses its frame: the
// serialization slot is still consumed (the transmitter does not know the
// carrier is gone) but delivery never happens.
func (l *Link) SetDown(down bool) { l.down = down }

// Down reports whether the link is flapped.
func (l *Link) Down() bool { return l.down }

// Lost returns frames sent while the link was down.
func (l *Link) Lost() uint64 { return l.lost }

// effectiveRate returns the rate with any fault cap applied.
func (l *Link) effectiveRate() float64 {
	if l.rateFactor > 0 {
		return l.rateBits * l.rateFactor
	}
	return l.rateBits
}

// Send transmits size bytes and invokes deliver at the instant the last
// bit arrives at the far end. It returns the departure completion time
// (when the link frees up, before propagation). The delivery callback
// is scheduled as-is — no wrapping closure — so a frame costs the link
// no allocation beyond whatever the caller's callback already is.
//
//snicvet:hotpath
func (l *Link) Send(size int, deliver func()) Time {
	now := l.eng.Now()
	start := now
	if l.freeAt > start {
		start = l.freeAt
	}
	ser := DurationOf(size, l.effectiveRate())
	done := start.Add(ser)
	l.freeAt = done
	l.bytesSent += uint64(size)
	l.framesSent++
	l.busyTime += ser
	if l.obs != nil {
		l.obs.FrameSent(l.name, size, start, done, l.down)
	}
	if l.down {
		l.lost++
		return done
	}
	if deliver == nil {
		// Still mark the arrival instant: a nil-deliver frame must keep
		// advancing the clock (Backlog drains on Run), just without work.
		deliver = nopDeliver
	}
	l.eng.At(done.Add(l.propagation), deliver)
	return done
}

// nopDeliver stands in for a nil delivery callback. A reference to a
// package-level function is a constant funcval — no per-frame closure.
func nopDeliver() {}

// Backlog returns how far in the future the link is already committed,
// i.e. the serialization queue depth expressed as time.
func (l *Link) Backlog() Duration {
	now := l.eng.Now()
	if l.freeAt <= now {
		return 0
	}
	return l.freeAt.Sub(now)
}

// BytesSent returns the total payload bytes transmitted.
func (l *Link) BytesSent() uint64 { return l.bytesSent }

// FramesSent returns the number of Send calls completed or in flight.
func (l *Link) FramesSent() uint64 { return l.framesSent }

// Utilization returns busy time divided by elapsed virtual time.
func (l *Link) Utilization() float64 {
	elapsed := l.eng.Now().Sub(0)
	if elapsed <= 0 {
		return 0
	}
	u := float64(l.busyTime) / float64(elapsed)
	if u > 1 {
		u = 1 // transmissions scheduled into the future
	}
	return u
}
