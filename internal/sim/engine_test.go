package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30ns", e.Now())
	}
}

func TestEngineFIFOAmongEqualTimestamps(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break not FIFO at index %d: got %d", i, v)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var fired []Time
	e.At(10, func() {
		e.After(5, func() { fired = append(fired, e.Now()) })
		e.After(1, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 11 || fired[1] != 15 {
		t.Fatalf("nested events fired at %v, want [11 15]", fired)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	id := e.At(10, func() { fired = true })
	e.Cancel(id)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Executed() != 0 {
		t.Fatalf("executed = %d, want 0", e.Executed())
	}
}

func TestEngineCancelAfterFireIsNoop(t *testing.T) {
	e := NewEngine()
	n := 0
	id := e.At(10, func() { n++ })
	e.Run()
	e.Cancel(id) // must not affect future events
	e.At(20, func() { n++ })
	e.Run()
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %d events by t=25, want 2", len(fired))
	}
	if e.Now() != 25 {
		t.Fatalf("clock = %v, want 25", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("fired %d events total, want 4", len(fired))
	}
}

func TestEngineStepOnEmptyQueue(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestDurationOf(t *testing.T) {
	// 1250 bytes at 100 Gb/s = 10000 bits / 1e11 bits/s = 100 ns.
	if d := DurationOf(1250, 100e9); d != 100 {
		t.Fatalf("DurationOf = %v, want 100ns", d)
	}
	// 1 KB at 1 Gb/s = 8192 ns.
	if d := DurationOf(1024, 1e9); d != 8192 {
		t.Fatalf("DurationOf = %v, want 8192ns", d)
	}
}

func TestCycles(t *testing.T) {
	// 2100 cycles at 2.1 GHz = 1 µs.
	if d := Cycles(2100, 2.1e9); d != Duration(Microsecond) {
		t.Fatalf("Cycles = %v, want 1µs", d)
	}
}

// Property: for any schedule of events, execution order is by timestamp.
func TestEngineOrderProperty(t *testing.T) {
	f := func(stamps []uint16) bool {
		if len(stamps) == 0 {
			return true
		}
		e := NewEngine()
		var fired []Time
		for _, s := range stamps {
			at := Time(s)
			e.At(at, func() { fired = append(fired, at) })
		}
		e.Run()
		if len(fired) != len(stamps) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
