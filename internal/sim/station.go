package sim

// Job is a unit of work submitted to a Station. Service is the time a
// server spends on it; Done is invoked on completion (it may be nil).
type Job struct {
	Service Duration
	Done    func(start, end Time)
	// Size optionally carries a byte size for utilization accounting by
	// callers; the station itself does not interpret it.
	Size int

	// enqueuedAt records submission time for queue-wait accounting when
	// an observer is installed; startedAt carries the service start to
	// the completion handler, so no per-job closure is needed.
	enqueuedAt Time
	startedAt  Time
}

// Station is a multi-server FIFO queue: the canonical model of a pool of
// CPU cores or a fixed-function engine with k parallel lanes.
//
// Jobs queue when all servers are busy. There is no preemption: datacenter
// packet processing runs to completion per packet, and the paper's
// latency behaviour (queueing delay exploding past the service-capacity
// knee) falls directly out of this model.
type Station struct {
	eng     *Engine
	servers int
	busy    int
	// queue is a ring-flavoured FIFO: qhead indexes the next job to
	// dispatch and pops advance it instead of re-slicing, so the backing
	// array is reused instead of crawling forward and forcing append to
	// reallocate every Capacity pushes.
	queue []*Job
	qhead int
	// Capacity limits the queue length; zero means unbounded. When the
	// queue is full new jobs are dropped and counted — this is how NIC RX
	// rings shed load at overrun.
	Capacity int
	// stallUntil gates job starts: a job starting before this instant has
	// the remaining stall prepended to its service time, modelling an
	// engine whose pipeline is wedged (lanes held, no progress). Jobs
	// already in service when the stall begins are unaffected — real engine
	// stalls hit the fetch stage, not work already in the retire queue.
	stallUntil Time

	// Statistics.
	completed  uint64
	dropped    uint64
	busyTime   Duration
	lastChange Time
	queuePeak  int

	// Optional telemetry hook (see Observe).
	name string
	obs  StationObserver
}

// NewStation returns a station with the given number of parallel servers.
func NewStation(eng *Engine, servers int) *Station {
	if servers <= 0 {
		panic("sim: station needs at least one server")
	}
	return &Station{eng: eng, servers: servers}
}

// Servers returns the number of parallel servers.
func (s *Station) Servers() int { return s.servers }

// Busy returns how many servers are currently serving a job.
func (s *Station) Busy() int { return s.busy }

// QueueLen returns the number of jobs waiting (not in service).
//
//snicvet:hotpath
func (s *Station) QueueLen() int { return len(s.queue) - s.qhead }

// Completed returns the number of jobs fully served.
func (s *Station) Completed() uint64 { return s.completed }

// Dropped returns the number of jobs rejected due to a full queue.
func (s *Station) Dropped() uint64 { return s.dropped }

// Utilization returns the mean fraction of busy server-time observed so
// far: busy server-seconds divided by servers × elapsed virtual time.
func (s *Station) Utilization() float64 {
	s.accrue()
	elapsed := s.eng.Now().Sub(0)
	if elapsed <= 0 {
		return 0
	}
	return float64(s.busyTime) / (float64(elapsed) * float64(s.servers))
}

// QueuePeak returns the maximum queue length observed.
func (s *Station) QueuePeak() int { return s.queuePeak }

// Observe installs a telemetry observer identified by name. Observers
// are pure recorders: they must not mutate model state.
func (s *Station) Observe(name string, obs StationObserver) {
	s.name = name
	s.obs = obs
}

// Submit enqueues a job. It reports false if the job was dropped because
// the queue is at capacity.
//
//snicvet:hotpath
func (s *Station) Submit(j *Job) bool {
	if j == nil {
		panic("sim: Submit(nil)")
	}
	j.enqueuedAt = s.eng.Now()
	if s.busy < s.servers {
		s.start(j)
		return true
	}
	if s.Capacity > 0 && s.QueueLen() >= s.Capacity {
		s.dropped++
		if s.obs != nil {
			s.obs.JobDropped(s.name, s.eng.Now())
		}
		return false
	}
	if s.qhead > 0 && len(s.queue) == cap(s.queue) {
		// Compact the live region to the front so append reuses the
		// backing array instead of growing it.
		n := copy(s.queue, s.queue[s.qhead:])
		for i := n; i < len(s.queue); i++ {
			s.queue[i] = nil
		}
		s.queue = s.queue[:n]
		s.qhead = 0
	}
	//snicvet:ignore hotpath -- amortized ring growth; a steady-state queue reuses its capacity
	s.queue = append(s.queue, j)
	if n := s.QueueLen(); n > s.queuePeak {
		s.queuePeak = n
	}
	if s.obs != nil {
		s.obs.JobQueued(s.name, s.eng.Now(), s.QueueLen())
	}
	return true
}

// StallUntil wedges the station until t: jobs starting before then serve
// only after the stall clears (their server is held busy meanwhile).
// Passing a time in the past clears the stall.
func (s *Station) StallUntil(t Time) { s.stallUntil = t }

// Stalled reports whether a stall gate is currently active.
func (s *Station) Stalled() bool { return s.stallUntil > s.eng.Now() }

//snicvet:hotpath
func (s *Station) start(j *Job) {
	s.accrue()
	s.busy++
	begin := s.eng.Now()
	j.startedAt = begin
	if s.obs != nil {
		s.obs.JobStarted(s.name, begin, begin.Sub(j.enqueuedAt))
	}
	svc := j.Service
	if hold := s.stallUntil.Sub(begin); hold > 0 {
		svc += hold
	}
	s.eng.AfterCall(svc, s, j)
}

// HandleEvent completes a job at service end: the station schedules
// itself as the engine handler with the job as argument, so completion
// costs no closure. Never call it directly.
//
//snicvet:hotpath
func (s *Station) HandleEvent(arg any) {
	j := arg.(*Job)
	s.accrue()
	s.busy--
	s.completed++
	// Dispatch queued work BEFORE invoking Done: a closed-loop
	// client that re-submits from its completion callback must go
	// to the back of the queue, not steal the freed server.
	s.dispatch()
	if s.obs != nil {
		s.obs.JobFinished(s.name, j.startedAt, s.eng.Now())
	}
	if j.Done != nil {
		j.Done(j.startedAt, s.eng.Now())
	}
}

//snicvet:hotpath
func (s *Station) dispatch() {
	for s.busy < s.servers && s.qhead < len(s.queue) {
		j := s.queue[s.qhead]
		s.queue[s.qhead] = nil
		s.qhead++
		if s.qhead == len(s.queue) {
			// Drained: rewind to the front of the backing array.
			s.queue = s.queue[:0]
			s.qhead = 0
		}
		s.start(j)
	}
}

// accrue folds busy-time since the last state change into the counter.
//
//snicvet:hotpath
func (s *Station) accrue() {
	now := s.eng.Now()
	s.busyTime += now.Sub(s.lastChange) * Duration(s.busy)
	s.lastChange = now
}
