package sim

import (
	"testing"
	"testing/quick"
)

func TestStationSingleServerFIFO(t *testing.T) {
	e := NewEngine()
	s := NewStation(e, 1)
	var ends []Time
	for i := 0; i < 3; i++ {
		s.Submit(&Job{Service: 10, Done: func(_, end Time) { ends = append(ends, end) }})
	}
	e.Run()
	want := []Time{10, 20, 30}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("completions %v, want %v", ends, want)
		}
	}
	if s.Completed() != 3 {
		t.Fatalf("completed = %d, want 3", s.Completed())
	}
}

func TestStationParallelServers(t *testing.T) {
	e := NewEngine()
	s := NewStation(e, 4)
	var ends []Time
	for i := 0; i < 4; i++ {
		s.Submit(&Job{Service: 10, Done: func(_, end Time) { ends = append(ends, end) }})
	}
	e.Run()
	for _, end := range ends {
		if end != 10 {
			t.Fatalf("parallel jobs should all finish at t=10, got %v", ends)
		}
	}
}

func TestStationQueueingDelay(t *testing.T) {
	e := NewEngine()
	s := NewStation(e, 2)
	var fifth Time
	for i := 0; i < 5; i++ {
		i := i
		s.Submit(&Job{Service: 10, Done: func(_, end Time) {
			if i == 4 {
				fifth = end
			}
		}})
	}
	e.Run()
	// 5 jobs, 2 servers, 10ns each: waves at 10, 20, 30.
	if fifth != 30 {
		t.Fatalf("fifth job finished at %v, want 30", fifth)
	}
}

func TestStationDropsAtCapacity(t *testing.T) {
	e := NewEngine()
	s := NewStation(e, 1)
	s.Capacity = 2
	accepted := 0
	for i := 0; i < 10; i++ {
		if s.Submit(&Job{Service: 10}) {
			accepted++
		}
	}
	// 1 in service + 2 queued.
	if accepted != 3 {
		t.Fatalf("accepted = %d, want 3", accepted)
	}
	if s.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", s.Dropped())
	}
	e.Run()
	if s.Completed() != 3 {
		t.Fatalf("completed = %d, want 3", s.Completed())
	}
}

func TestStationUtilization(t *testing.T) {
	e := NewEngine()
	s := NewStation(e, 2)
	// One server busy for the whole run => utilization 0.5.
	s.Submit(&Job{Service: 100})
	e.Run()
	if u := s.Utilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}

func TestStationQueuePeak(t *testing.T) {
	e := NewEngine()
	s := NewStation(e, 1)
	for i := 0; i < 5; i++ {
		s.Submit(&Job{Service: 10})
	}
	if s.QueuePeak() != 4 {
		t.Fatalf("queue peak = %d, want 4", s.QueuePeak())
	}
	e.Run()
}

// Property: work conservation — with one server, total completion time of n
// identical jobs equals n * service regardless of submission pattern.
func TestStationWorkConservationProperty(t *testing.T) {
	f := func(nJobs uint8, svc uint16) bool {
		n := int(nJobs%50) + 1
		service := Duration(svc%1000) + 1
		e := NewEngine()
		s := NewStation(e, 1)
		var last Time
		for i := 0; i < n; i++ {
			s.Submit(&Job{Service: service, Done: func(_, end Time) { last = end }})
		}
		e.Run()
		return last == Time(Duration(n)*service)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLinkSerialization(t *testing.T) {
	e := NewEngine()
	// 1 Gb/s, 100ns propagation. 125-byte frame = 1000 bits = 1000ns.
	l := NewLink(e, 1e9, 100)
	var arrivals []Time
	l.Send(125, func() { arrivals = append(arrivals, e.Now()) })
	l.Send(125, func() { arrivals = append(arrivals, e.Now()) })
	e.Run()
	if arrivals[0] != 1100 || arrivals[1] != 2100 {
		t.Fatalf("arrivals = %v, want [1100 2100]", arrivals)
	}
	if l.BytesSent() != 250 || l.FramesSent() != 2 {
		t.Fatalf("accounting wrong: %d bytes, %d frames", l.BytesSent(), l.FramesSent())
	}
}

func TestLinkBacklog(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, 1e9, 0)
	l.Send(125, nil) // 1000 ns
	l.Send(125, nil) // queued behind
	if bl := l.Backlog(); bl != 2000 {
		t.Fatalf("backlog = %v, want 2000ns", bl)
	}
	e.Run()
	if bl := l.Backlog(); bl != 0 {
		t.Fatalf("backlog after drain = %v, want 0", bl)
	}
}

func TestLinkLineRateSaturation(t *testing.T) {
	e := NewEngine()
	// 100 Gb/s link, MTU frames sent as fast as possible for 1 ms:
	// throughput must be exactly line rate.
	l := NewLink(e, 100e9, 0)
	frames := 0
	var send func()
	send = func() {
		if e.Now() >= Time(Millisecond) {
			return
		}
		l.Send(1500, func() { frames++ })
		e.At(l.freeAt, send)
	}
	e.At(0, send)
	e.Run()
	gbps := float64(frames) * 1500 * 8 / 1e-3 / 1e9
	if gbps < 99 || gbps > 101 {
		t.Fatalf("saturated throughput = %.1f Gb/s, want ~100", gbps)
	}
}

func TestBatchStationFlushBySize(t *testing.T) {
	e := NewEngine()
	b := NewBatchStation(e, 4, Duration(Millisecond), 100)
	done := 0
	for i := 0; i < 4; i++ {
		b.Submit(&Job{Service: 10, Done: func(_, _ Time) { done++ }})
	}
	e.Run()
	if done != 4 {
		t.Fatalf("done = %d, want 4", done)
	}
	if b.Batches() != 1 {
		t.Fatalf("batches = %d, want 1", b.Batches())
	}
	// Batch service = 100 + 4*10 = 140.
	if e.Now() != 140 {
		t.Fatalf("finished at %v, want 140", e.Now())
	}
}

func TestBatchStationFlushByTimeout(t *testing.T) {
	e := NewEngine()
	b := NewBatchStation(e, 100, 50, 10)
	var end Time
	b.Submit(&Job{Service: 5, Done: func(_, e2 Time) { end = e2 }})
	e.Run()
	// Waits 50 for companions, then 10+5 service.
	if end != 65 {
		t.Fatalf("end = %v, want 65", end)
	}
}

func TestBatchStationAmortization(t *testing.T) {
	// Throughput with batching must exceed throughput without (batch of 1),
	// because PerBatch overhead is amortized.
	run := func(batch int) Time {
		e := NewEngine()
		b := NewBatchStation(e, batch, 1, 100)
		for i := 0; i < 64; i++ {
			b.Submit(&Job{Service: 10})
		}
		e.Run()
		return e.Now()
	}
	if big, small := run(32), run(1); big >= small {
		t.Fatalf("batch-32 total %v not faster than batch-1 total %v", big, small)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Fatal("different seeds collided on first draw")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Exp(1000))
	}
	mean := sum / n
	if mean < 950 || mean > 1050 {
		t.Fatalf("Exp mean = %v, want ~1000", mean)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		m := int(n%100) + 1
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(3)
	z := NewZipf(r, 1000, 0.99)
	counts := make([]int, 1000)
	for i := 0; i < 200000; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must be far more popular than rank 500.
	if counts[0] < 10*counts[500]+1 {
		t.Fatalf("Zipf not skewed: rank0=%d rank500=%d", counts[0], counts[500])
	}
}

func TestParetoBounds(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(1, 100, 1.3)
		if v < 1 || v > 100 {
			t.Fatalf("Pareto out of bounds: %v", v)
		}
	}
}

func TestLogNormalDurPositive(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		if d := r.LogNormalDur(1000, 0.3); d <= 0 {
			t.Fatalf("LogNormalDur non-positive: %v", d)
		}
	}
}
