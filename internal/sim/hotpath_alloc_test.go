package sim_test

// Dynamic counterpart of the snicvet hotpath analyzer: the //snicvet:hotpath
// functions are statically allocation-free, and this test pins the same
// property at runtime. A closed loop of jobs circulates through a Station,
// a Link, and a flow.Table with a Recorder installed as the telemetry
// observer; once warm (free lists filled, rings at capacity, metric and
// resource names interned) one simulated event must not allocate at all.

import (
	"testing"

	"repro/internal/flow"
	"repro/internal/obs"
	"repro/internal/sim"
)

// closedLoop is a self-sustaining workload: every completion re-submits
// its job, so the engine never drains and every scheduling path (Submit,
// start, HandleEvent, dispatch, Send, Lookup, RequestInsert,
// completeInsert, evictions) stays hot.
type closedLoop struct {
	eng   *sim.Engine
	st    *sim.Station
	link  *sim.Link
	table *flow.Table
	rec   *obs.Recorder
	jobs  []*sim.Job
	next  uint64 // rotating flow ID driving table churn
}

func newClosedLoop(nJobs int) *closedLoop {
	eng := sim.NewEngine()
	cl := &closedLoop{
		eng:  eng,
		st:   sim.NewStation(eng, 2),
		link: sim.NewLink(eng, 100e9, sim.Microsecond),
		table: flow.NewTable(eng, flow.TableConfig{
			Capacity:       8,
			InsertLatency:  2 * sim.Microsecond,
			InsertQueueCap: 4,
			Evict:          flow.EvictLRU,
			ThrashWindow:   sim.Microsecond,
		}),
		rec: obs.NewRecorder(1, "hotpath-alloc"),
	}
	cl.st.Observe("pool", cl.rec)
	cl.link.Observe("wire", cl.rec)
	for i := 0; i < nJobs; i++ {
		j := &sim.Job{Service: 3 * sim.Microsecond}
		// The Done closure is the one allocation in the loop, made here at
		// setup time; steady-state completions reuse it forever.
		j.Done = func(start, end sim.Time) {
			cl.next++
			// One hot flow that stays resident (fast-path hits) plus a
			// cyclic cold tail 3× capacity wide (sustained eviction churn).
			if !cl.table.Lookup(1000, end) {
				cl.table.RequestInsert(1000, 1)
			}
			id := cl.next % 24
			if !cl.table.Lookup(id, end) {
				cl.table.RequestInsert(id, 0)
			}
			cl.link.Send(64, nil)
			cl.rec.Count("loop.completions", 1)
			cl.st.Submit(j)
		}
		cl.st.Submit(j)
	}
	return cl
}

// step fires n events; the closed loop guarantees they exist.
func (cl *closedLoop) step(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if !cl.eng.Step() {
			t.Fatal("closed loop drained — workload is not self-sustaining")
		}
	}
}

func TestHotPathZeroAllocs(t *testing.T) {
	cl := newClosedLoop(8)
	// Warm-up: grow the event free list, the station ring, the rule free
	// list and the pending ring to their high-water marks, and intern
	// every metric and resource name the observers will touch.
	cl.step(t, 20000)

	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < 200; i++ {
			if !cl.eng.Step() {
				panic("closed loop drained")
			}
		}
	})
	if allocs != 0 {
		t.Errorf("telemetry-enabled hot path allocates %.2f times per 200 events, want 0", allocs)
	}

	// The loop must actually have exercised the table's churn paths, or
	// the zero above proves nothing about them.
	c := cl.table.Counters()
	if c.Inserts == 0 || c.Evictions == 0 || c.FastHits == 0 || c.Misses == 0 {
		t.Errorf("flow table not exercised: %+v", c)
	}
	if cl.st.Completed() == 0 {
		t.Error("station completed no jobs")
	}
	if cl.link.FramesSent() == 0 {
		t.Error("link sent no frames")
	}
}

// BenchmarkEngineHotPath reports allocs/op for the same loop — the
// number make bench-compare gates on staying at zero.
func BenchmarkEngineHotPath(b *testing.B) {
	cl := newClosedLoop(8)
	for i := 0; i < 20000; i++ {
		if !cl.eng.Step() {
			b.Fatal("closed loop drained")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.eng.Step()
	}
}
