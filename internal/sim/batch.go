package sim

// BatchStation models a hardware engine that processes work in batches:
// the BlueField-2 REM and compression accelerators accept task batches
// assembled by staging CPU cores and retire whole batches at a fixed
// engine rate.
//
// Tasks accumulate until either MaxBatch tasks are pending or MaxWait has
// elapsed since the first task of the batch arrived, then the batch is
// submitted to an internal single-server engine whose service time is
// PerBatch + sum(per-task service). Batching amortizes submission overhead
// (raising throughput) at the cost of added queueing latency — exactly the
// throughput/latency trade the paper observes for the SNIC accelerators.
type BatchStation struct {
	eng *Engine

	// MaxBatch is the largest number of tasks submitted at once.
	MaxBatch int
	// MaxWait bounds how long the first task of a batch waits for
	// companions before the batch is flushed anyway.
	MaxWait Duration
	// PerBatch is the fixed engine overhead per batch submission
	// (doorbell + DMA descriptor fetch).
	PerBatch Duration

	engine  *Station
	pending []*Job
	timer   EventID
	armed   bool
	// firstAt is when the oldest pending task arrived, for batch-wait
	// accounting when an observer is installed.
	firstAt Time

	completed uint64
	batches   uint64

	// Optional telemetry hook (see Observe).
	name     string
	batchObs BatchObserver
}

// NewBatchStation returns a batching engine with one internal server.
func NewBatchStation(eng *Engine, maxBatch int, maxWait, perBatch Duration) *BatchStation {
	if maxBatch <= 0 {
		panic("sim: batch size must be positive")
	}
	return &BatchStation{
		eng:      eng,
		MaxBatch: maxBatch,
		MaxWait:  maxWait,
		PerBatch: perBatch,
		engine:   NewStation(eng, 1),
	}
}

// Observe installs telemetry observers identified by name: obs watches
// the internal engine station, batchObs watches batch assembly. Either
// may be nil. Observers must not mutate model state.
func (b *BatchStation) Observe(name string, obs StationObserver, batchObs BatchObserver) {
	b.name = name
	b.batchObs = batchObs
	if obs != nil {
		b.engine.Observe(name, obs)
	}
}

// Submit adds a task to the current batch.
func (b *BatchStation) Submit(j *Job) {
	if j == nil {
		panic("sim: Submit(nil)")
	}
	if len(b.pending) == 0 {
		b.firstAt = b.eng.Now()
	}
	b.pending = append(b.pending, j)
	if len(b.pending) >= b.MaxBatch {
		b.flush()
		return
	}
	if !b.armed {
		b.armed = true
		b.timer = b.eng.After(b.MaxWait, func() {
			b.armed = false
			b.flush()
		})
	}
}

// flush submits the accumulated batch to the engine.
func (b *BatchStation) flush() {
	if b.armed {
		b.eng.Cancel(b.timer)
		b.armed = false
	}
	if len(b.pending) == 0 {
		return
	}
	batch := b.pending
	b.pending = nil
	b.batches++
	if b.batchObs != nil {
		now := b.eng.Now()
		b.batchObs.BatchFlushed(b.name, len(batch), now.Sub(b.firstAt), now)
	}
	total := b.PerBatch
	for _, j := range batch {
		total += j.Service
	}
	b.engine.Submit(&Job{
		Service: total,
		Done: func(start, end Time) {
			b.completed += uint64(len(batch))
			for _, j := range batch {
				if j.Done != nil {
					j.Done(start, end)
				}
			}
		},
	})
}

// Completed returns the number of tasks retired.
func (b *BatchStation) Completed() uint64 { return b.completed }

// Batches returns the number of batches submitted to the engine.
func (b *BatchStation) Batches() uint64 { return b.batches }

// EngineQueueLen returns the number of batches waiting behind the engine.
func (b *BatchStation) EngineQueueLen() int { return b.engine.QueueLen() }

// Stall wedges the internal engine until t (see Station.StallUntil):
// batches starting before then hold the engine without retiring.
func (b *BatchStation) Stall(t Time) { b.engine.StallUntil(t) }

// Stalled reports whether the internal engine is currently stalled.
func (b *BatchStation) Stalled() bool { return b.engine.Stalled() }

// Utilization returns the engine's busy fraction.
func (b *BatchStation) Utilization() float64 { return b.engine.Utilization() }
