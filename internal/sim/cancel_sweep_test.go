package sim

import "testing"

// A long fault run disarms one timeout guard per request after it fires;
// without sweeping, every one of those IDs would sit in the cancelled map
// forever (fired events are never popped again).
func TestEngineCancelSweepBoundsMemory(t *testing.T) {
	e := NewEngine()
	const n = 20000
	for i := 0; i < n; i++ {
		id := e.After(1, func() {})
		e.Run() // the guard fires...
		e.Cancel(id)
	}
	if got := e.CancelledPending(); got > cancelSweepFloor+1 {
		t.Fatalf("cancelled set grew to %d entries after %d fire-then-cancel cycles, want <= %d",
			got, n, cancelSweepFloor+1)
	}
}

// Sweeping must not change which pending events fire or their order.
func TestEngineCancelSweepPreservesPendingEvents(t *testing.T) {
	e := NewEngine()
	var fired []int
	var ids []EventID
	// Enough live events to interleave with cancels past the sweep floor.
	for i := 0; i < 500; i++ {
		i := i
		ids = append(ids, e.At(Time(1000+i), func() { fired = append(fired, i) }))
	}
	// Cancel every odd event; the even ones must still fire in order.
	for i := 1; i < 500; i += 2 {
		e.Cancel(ids[i])
	}
	// Pile on fired-then-cancelled guards to force sweeps mid-stream.
	for i := 0; i < 2000; i++ {
		id := e.After(1, func() {})
		e.Step()
		e.Cancel(id)
	}
	e.Run()
	if len(fired) != 250 {
		t.Fatalf("fired %d events, want 250", len(fired))
	}
	for j, v := range fired {
		if v != 2*j {
			t.Fatalf("fired[%d] = %d, want %d (order disturbed by sweep)", j, v, 2*j)
		}
	}
}

// Cancelling a queued event must still work when a sweep ran in between.
func TestEngineCancelAfterSweepStillCancels(t *testing.T) {
	e := NewEngine()
	fired := false
	target := e.At(10_000, func() { fired = true })
	for i := 0; i < 1000; i++ {
		id := e.After(1, func() {})
		e.Step()
		e.Cancel(id)
	}
	e.Cancel(target)
	e.Run()
	if fired {
		t.Fatal("event cancelled after sweeps still fired")
	}
}

func TestStationStallHoldsJobsUntilClear(t *testing.T) {
	e := NewEngine()
	s := NewStation(e, 1)
	s.StallUntil(100)
	var end Time
	s.Submit(&Job{Service: 10, Done: func(_, e2 Time) { end = e2 }})
	e.Run()
	// Start at 0, stalled until 100, then 10 of service.
	if end != 110 {
		t.Fatalf("stalled job finished at %v, want 110", end)
	}
	if s.Stalled() {
		t.Fatal("station still reports stalled after the gate passed")
	}
}

func TestLinkDownLosesFramesAndUpDelivers(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, 100e9, 0)
	delivered := 0
	l.SetDown(true)
	l.Send(1250, func() { delivered++ })
	e.Run()
	if delivered != 0 || l.Lost() != 1 {
		t.Fatalf("down link delivered=%d lost=%d, want 0/1", delivered, l.Lost())
	}
	l.SetDown(false)
	l.Send(1250, func() { delivered++ })
	e.Run()
	if delivered != 1 || l.Lost() != 1 {
		t.Fatalf("recovered link delivered=%d lost=%d, want 1/1", delivered, l.Lost())
	}
}

func TestLinkRateFactorStretchesSerialization(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, 100e9, 0)
	// 1250 B at 100 Gb/s = 100 ns; at half rate = 200 ns.
	l.SetRateFactor(0.5)
	var arrived Time
	l.Send(1250, func() { arrived = e.Now() })
	e.Run()
	if arrived != 200 {
		t.Fatalf("capped link delivered at %v, want 200ns", arrived)
	}
}
