package sim

import (
	"errors"
	"testing"
)

func TestTryAtPastReturnsTypedError(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	e.Run()
	id, err := e.TryAt(40, func() { t.Fatal("past event ran") })
	if id != 0 {
		t.Fatalf("past TryAt returned id %d", id)
	}
	var pe *PastEventError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *PastEventError", err)
	}
	if pe.At != 40 || pe.Now != 100 {
		t.Fatalf("error fields At=%v Now=%v, want 40/100", pe.At, pe.Now)
	}
	if e.Pending() != 0 {
		t.Fatalf("failed TryAt left %d events queued", e.Pending())
	}
}

// The boundary case: an event scheduled exactly at the current time is
// valid — it fires this instant, after already-queued work at the same
// timestamp.
func TestTryAtExactlyNowIsValid(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(50, func() {
		if _, err := e.TryAt(e.Now(), func() { order = append(order, 2) }); err != nil {
			t.Fatalf("TryAt(now) = %v, want nil", err)
		}
		e.At(e.Now(), func() { order = append(order, 3) })
		order = append(order, 1)
	})
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("same-instant order = %v, want [1 2 3]", order)
	}
	if e.Now() != 50 {
		t.Fatalf("clock = %v after same-instant events, want 50", e.Now())
	}
}

func TestAtPanicsWithTypedError(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {})
	e.Run()
	defer func() {
		r := recover()
		pe, ok := r.(*PastEventError)
		if !ok {
			t.Fatalf("At panicked with %T (%v), want *PastEventError", r, r)
		}
		if pe.At != 3 || pe.Now != 10 {
			t.Fatalf("panic fields At=%v Now=%v, want 3/10", pe.At, pe.Now)
		}
	}()
	e.At(3, func() {})
}

func TestAfterNegativePanicsWithTypedError(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {})
	e.Run()
	defer func() {
		if _, ok := recover().(*PastEventError); !ok {
			t.Fatal("After(-d) did not panic with *PastEventError")
		}
	}()
	e.After(-1, func() {})
}

func TestTryAtNilFnStillPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("TryAt(nil fn) did not panic")
		}
	}()
	_, _ = e.TryAt(5, nil)
}
