package sim

import (
	"errors"
	"testing"
)

// FuzzEngineSchedule drives the event heap with byte-derived schedules —
// including nested scheduling from inside callbacks and same-timestamp
// pileups — and asserts the engine's laws: the clock never runs
// backwards, events fire in (time, submission) order, scheduling in the
// past always yields the typed error, and the whole thing is
// deterministic (two identical runs fire identical sequences).
func FuzzEngineSchedule(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{5, 5, 5, 5, 5, 5})
	f.Add([]byte{255, 0, 128, 9, 9, 63, 250})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 128 {
			data = data[:128]
		}
		type firing struct {
			at  Time
			ord int
		}
		run := func() []firing {
			e := NewEngine()
			var fired []firing
			ord := 0
			var schedule func(at Time, depth int, b byte)
			schedule = func(at Time, depth int, b byte) {
				myOrd := ord
				ord++
				e.At(at, func() {
					if e.Now() != at {
						t.Fatalf("event scheduled for %v fired at %v", at, e.Now())
					}
					fired = append(fired, firing{at: at, ord: myOrd})
					// Scheduling before now must fail with the typed
					// error, from any point in the run.
					if _, err := e.TryAt(e.Now()-1, func() {}); err == nil {
						t.Fatalf("TryAt(%v) accepted at now=%v", e.Now()-1, e.Now())
					} else {
						var pe *PastEventError
						if !errors.As(err, &pe) {
							t.Fatalf("past schedule returned %T, want *PastEventError", err)
						}
					}
					if depth < 3 && b%3 == 0 {
						schedule(e.Now().Add(Duration(b%7)), depth+1, b/3)
					}
				})
			}
			for _, b := range data {
				schedule(Time(int(b)%61), 0, b)
			}
			e.Run()
			if e.Pending() != 0 {
				t.Fatalf("Run left %d events pending", e.Pending())
			}
			return fired
		}

		first := run()
		for i := 1; i < len(first); i++ {
			if first[i].at < first[i-1].at {
				t.Fatalf("clock regressed: event %d at %v after %v", i, first[i].at, first[i-1].at)
			}
			if first[i].at == first[i-1].at && first[i].ord < first[i-1].ord {
				t.Fatalf("FIFO broken at %v: submission %d fired after %d",
					first[i].at, first[i].ord, first[i-1].ord)
			}
		}
		second := run()
		if len(second) != len(first) {
			t.Fatalf("replay fired %d events, first run %d", len(second), len(first))
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("replay diverged at firing %d: %+v vs %+v", i, first[i], second[i])
			}
		}
	})
}
