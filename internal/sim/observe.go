package sim

// Observability hooks for the simulation kernel.
//
// The kernel stays telemetry-agnostic: resources accept an optional
// observer interface and invoke it at state transitions. Observers must
// not mutate model state — every callback fires while the event loop is
// mid-transition, and determinism depends on observers being pure
// recorders. With no observer installed the hooks cost one nil check.

// StationObserver receives per-job lifecycle notifications from a
// Station (or a BatchStation's internal engine).
type StationObserver interface {
	// JobQueued fires when a job enters the wait queue (not when it
	// starts service immediately). queueLen is the length including j.
	JobQueued(station string, now Time, queueLen int)
	// JobStarted fires when a job begins service. waited is the time
	// spent in the wait queue (zero for jobs served on arrival).
	JobStarted(station string, now Time, waited Duration)
	// JobFinished fires when a job completes service.
	JobFinished(station string, start, end Time)
	// JobDropped fires when a job is rejected by a full queue.
	JobDropped(station string, now Time)
}

// LinkObserver receives per-frame notifications from a Link.
type LinkObserver interface {
	// FrameSent fires at submission time: start/done bound the
	// serialization slot the frame occupies (possibly in the future,
	// behind queued frames); lost marks frames sent while the link was
	// down.
	FrameSent(link string, size int, start, done Time, lost bool)
}

// BatchObserver receives batch-assembly notifications from a
// BatchStation.
type BatchObserver interface {
	// BatchFlushed fires when a batch is handed to the engine. waited
	// is the assembly delay since the batch's first task arrived.
	BatchFlushed(station string, tasks int, waited Duration, now Time)
}

// Ticker schedules fn at a fixed virtual-time period, starting one
// period from now. The ticker is parasitic: it keeps firing only while
// non-ticker events remain queued, so it never extends a simulation's
// natural horizon. Telemetry samplers use this to poll gauges without
// perturbing the model — fn must not schedule model events.
//
// Multiple tickers coexist: the engine counts pending ticker events so
// that tickers do not keep each other alive after the model drains.
func (e *Engine) Ticker(period Duration, fn func()) {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	if fn == nil {
		panic("sim: nil ticker callback")
	}
	var tick func()
	tick = func() {
		e.tickerPending--
		if len(e.queue) <= e.tickerPending {
			// Only other tickers (or cancelled residue) remain: stop
			// silently so the chain of tickers collapses and Run exits.
			return
		}
		fn()
		e.tickerPending++
		e.After(period, tick)
	}
	e.tickerPending++
	e.After(period, tick)
}
