package sim

import (
	"container/heap"
	"fmt"
)

// Engine is a single-threaded discrete-event simulation kernel.
//
// Events are closures scheduled at absolute virtual times; Run pops them in
// timestamp order (FIFO among equal timestamps, by insertion sequence) and
// executes them. Event handlers may schedule further events. The engine is
// not safe for concurrent use: determinism is the whole point, and all
// model code runs on the event loop.
type Engine struct {
	now    Time
	queue  eventHeap
	seq    uint64
	nextID uint64
	// cancelled holds the IDs of scheduled events that were cancelled
	// before firing. Entries are dropped lazily when popped.
	cancelled map[uint64]struct{}
	executed  uint64
	// tickerPending counts queued Ticker events so a firing ticker can
	// tell whether anything besides tickers is left (see Ticker).
	tickerPending int
	// free recycles fired event records so a steady-state run allocates
	// no events after its heap reaches peak depth (telemetry-heavy runs
	// schedule one event per sample on top of the model's own).
	free []*event
	// heapPeak is the queue's high-water mark; cancelSweeps counts eager
	// sweeps of cancelled entries. Both feed Profile.
	heapPeak     int
	cancelSweeps uint64
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{cancelled: make(map[uint64]struct{})}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Executed reports how many events have fired so far. Useful for progress
// accounting and for asserting that a model actually did work.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many events are waiting in the queue (including
// cancelled events that have not yet been lazily discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// LivePending reports how many queued events will actually fire —
// Pending minus cancelled-but-not-yet-discarded ghosts. It scans the
// queue (O(pending)), so it is for progress and profile reporting, not
// per-event hot paths; Pending stays the O(1) raw count.
func (e *Engine) LivePending() int {
	if len(e.cancelled) == 0 {
		return len(e.queue)
	}
	n := 0
	for _, ev := range e.queue {
		if _, dead := e.cancelled[ev.id]; !dead {
			n++
		}
	}
	return n
}

// Profile is a snapshot of the engine's self-profiling counters: how
// much work the scheduler did and how deep its structures got. All
// values are deterministic functions of the model, never of wall time.
type Profile struct {
	// Executed is the number of events fired so far.
	Executed uint64
	// HeapPeak is the event queue's high-water mark.
	HeapPeak int
	// CancelSweeps counts eager sweeps of cancelled entries.
	CancelSweeps uint64
	// Pending and LivePending snapshot the queue as Pending/LivePending
	// would report it.
	Pending, LivePending int
}

// Profile snapshots the engine's self-profiling counters.
func (e *Engine) Profile() Profile {
	return Profile{
		Executed:     e.executed,
		HeapPeak:     e.heapPeak,
		CancelSweeps: e.cancelSweeps,
		Pending:      e.Pending(),
		LivePending:  e.LivePending(),
	}
}

// EventID identifies a scheduled event so it can be cancelled.
type EventID uint64

// PastEventError reports an attempt to schedule an event before the
// current virtual time — always a model bug, never a runtime condition
// to clamp away.
type PastEventError struct {
	// At is the requested timestamp; Now is the clock it was behind.
	At, Now Time
}

// Error implements error.
func (e *PastEventError) Error() string {
	return fmt.Sprintf("sim: scheduling event at %v before now %v", e.At, e.Now)
}

// EventHandler is the allocation-free alternative to closure events.
// The engine stores the (handler, arg) pair in the pooled event record
// and invokes HandleEvent(arg) at fire time. A pointer receiver and a
// pointer (or nil) arg convert to their interface words without
// allocating, which is what keeps steady-state scheduling at zero
// allocations per event — a closure, by contrast, is a fresh heap
// object per schedule.
type EventHandler interface {
	// HandleEvent runs the event. arg is whatever was passed to
	// TryAtCall/AtCall/AfterCall, unmodified.
	HandleEvent(arg any)
}

// TryAt schedules fn to run at absolute virtual time t, returning a
// *PastEventError instead of panicking when t is in the past. An event
// exactly at the current time is valid (it runs this instant, after
// already-queued events at the same timestamp). Speculative schedulers
// that compute timestamps from untrusted inputs use this; model code
// with timestamps it believes in should use At.
//
//snicvet:hotpath
func (e *Engine) TryAt(t Time, fn func()) (EventID, error) {
	if fn == nil {
		panic("sim: scheduling nil event")
	}
	return e.schedule(t, fn, nil, nil)
}

// TryAtCall is TryAt for a handler/arg pair instead of a closure: the
// allocation-free form hot paths use.
//
//snicvet:hotpath
func (e *Engine) TryAtCall(t Time, h EventHandler, arg any) (EventID, error) {
	if h == nil {
		panic("sim: scheduling nil event handler")
	}
	return e.schedule(t, nil, h, arg)
}

// schedule is the shared scheduling core behind TryAt and TryAtCall.
//
//snicvet:hotpath
func (e *Engine) schedule(t Time, fn func(), h EventHandler, arg any) (EventID, error) {
	if t < e.now {
		//snicvet:ignore hotpath -- error path: a past timestamp aborts the schedule, not the event budget
		return 0, &PastEventError{At: t, Now: e.now}
	}
	e.nextID++
	id := e.nextID
	e.seq++
	heap.Push(&e.queue, e.newEvent(t, e.seq, id, fn, h, arg))
	if len(e.queue) > e.heapPeak {
		e.heapPeak = len(e.queue)
	}
	return EventID(id), nil
}

// newEvent takes a record off the free list, or allocates when the pool
// is dry (cold start, or the heap growing past its previous peak).
//
//snicvet:hotpath
func (e *Engine) newEvent(at Time, seq, id uint64, fn func(), h EventHandler, arg any) *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.id = at, seq, id
		ev.fn, ev.h, ev.arg = fn, h, arg
		return ev
	}
	//snicvet:ignore hotpath -- cold start or heap growth past its previous peak; steady state reuses the free list
	return &event{at: at, seq: seq, id: id, fn: fn, h: h, arg: arg}
}

// recycle returns a popped event record to the free list. The closure,
// handler and argument references are cleared so recycled records never
// pin model state.
//
//snicvet:hotpath
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.h = nil
	ev.arg = nil
	//snicvet:ignore hotpath -- reuses capacity once the free list reaches the heap's high-water mark
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics with a typed *PastEventError: it always indicates a model bug and
// silently clamping would hide causality violations.
//
//snicvet:hotpath
func (e *Engine) At(t Time, fn func()) EventID {
	id, err := e.TryAt(t, fn)
	if err != nil {
		panic(err)
	}
	return id
}

// AtCall is At for a handler/arg pair: the allocation-free form.
//
//snicvet:hotpath
func (e *Engine) AtCall(t Time, h EventHandler, arg any) EventID {
	id, err := e.TryAtCall(t, h, arg)
	if err != nil {
		panic(err)
	}
	return id
}

// After schedules fn to run d after the current time. A negative delay
// panics with a typed *PastEventError, like At.
//
//snicvet:hotpath
func (e *Engine) After(d Duration, fn func()) EventID {
	return e.At(e.now.Add(d), fn)
}

// AfterCall is After for a handler/arg pair: the allocation-free form.
//
//snicvet:hotpath
func (e *Engine) AfterCall(d Duration, h EventHandler, arg any) EventID {
	return e.AtCall(e.now.Add(d), h, arg)
}

// Cancel prevents a scheduled event from firing. Cancelling an event that
// already fired (or was already cancelled) is a no-op; the common use is
// disarming timeout guards.
//
// Cancelled entries are normally discarded lazily when popped, but a
// cancel-heavy workload (timeout guards disarmed on every completion over
// a long fault run) would grow the cancelled set without bound: IDs of
// already-fired events are never popped again. When the set outgrows the
// queue, Cancel sweeps both — dead entries leave the heap and the set is
// reset — so memory stays proportional to live events.
func (e *Engine) Cancel(id EventID) {
	e.cancelled[uint64(id)] = struct{}{}
	if len(e.cancelled) > cancelSweepFloor && len(e.cancelled) > len(e.queue) {
		e.sweepCancelled()
	}
}

// cancelSweepFloor keeps tiny simulations from sweeping on every cancel.
const cancelSweepFloor = 64

// sweepCancelled drops cancelled events from the queue eagerly and resets
// the cancelled set. Event IDs are never reused, so forgetting IDs of
// events that already fired is safe. Re-heapifying cannot perturb pop
// order: (at, seq) is a total order, so any valid heap yields the same
// sequence.
func (e *Engine) sweepCancelled() {
	kept := e.queue[:0]
	for _, ev := range e.queue {
		if _, dead := e.cancelled[ev.id]; !dead {
			kept = append(kept, ev)
		} else {
			e.recycle(ev)
		}
	}
	for i := len(kept); i < len(e.queue); i++ {
		e.queue[i] = nil
	}
	e.queue = kept
	heap.Init(&e.queue)
	e.cancelled = make(map[uint64]struct{})
	e.cancelSweeps++
}

// CancelledPending reports how many cancelled-but-not-yet-discarded event
// IDs are being tracked. Exposed for leak regression tests.
func (e *Engine) CancelledPending() int { return len(e.cancelled) }

// Step executes the single earliest pending event. It reports false when
// the queue is empty.
//
//snicvet:hotpath
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if _, dead := e.cancelled[ev.id]; dead {
			delete(e.cancelled, ev.id)
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		e.executed++
		fn, h, arg := ev.fn, ev.h, ev.arg
		// Recycled before firing so events the handler schedules reuse
		// this record immediately.
		e.recycle(ev)
		if fn != nil {
			fn()
		} else {
			h.HandleEvent(arg)
		}
		return true
	}
	return false
}

// Run executes events until the queue drains — or, when parasitic
// tickers are armed, until only ticker events remain. Stopping before a
// lone tick pops matters: popping would advance the clock past the last
// real event, diluting every elapsed-time statistic (utilization, and
// through it the power model) purely because telemetry was on.
func (e *Engine) Run() {
	for {
		if e.tickerPending > 0 && len(e.cancelled) > 0 &&
			len(e.queue)-len(e.cancelled) <= e.tickerPending {
			// Cancelled ghosts may be masking the only-tickers condition;
			// sweep so the count below reflects live events.
			e.sweepCancelled()
		}
		if len(e.queue) <= e.tickerPending {
			return
		}
		if !e.Step() {
			return
		}
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled after the deadline remain queued.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// event is a queue entry. seq breaks timestamp ties so that events
// scheduled earlier run earlier, which keeps FIFO semantics for models that
// schedule several events "now". Exactly one of fn and h is set: fn for
// closure events, h (with its arg) for handler events.
type event struct {
	at  Time
	seq uint64
	id  uint64
	fn  func()
	h   EventHandler
	arg any
}

type eventHeap []*event

//snicvet:hotpath
func (h eventHeap) Len() int { return len(h) }

//snicvet:hotpath
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

//snicvet:hotpath
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

//snicvet:hotpath
func (h *eventHeap) Push(x any) {
	//snicvet:ignore hotpath -- reuses capacity once the heap reaches its high-water mark
	*h = append(*h, x.(*event))
}

//snicvet:hotpath
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
