package sim

import "testing"

// The engine's self-profiling counters feed the -profile export, so
// their semantics are pinned here: LivePending sees through cancelled
// ghosts, HeapPeak is a true high-water mark, and the event free list
// actually recycles records instead of leaking or double-using them.

func TestLivePendingExcludesCancelled(t *testing.T) {
	e := NewEngine()
	var ids []EventID
	for i := 0; i < 10; i++ {
		ids = append(ids, e.At(Time(i+1), func() {}))
	}
	if e.Pending() != 10 || e.LivePending() != 10 {
		t.Fatalf("pending = %d/%d live, want 10/10", e.Pending(), e.LivePending())
	}
	for _, id := range ids[:4] {
		e.Cancel(id)
	}
	// Below the sweep floor nothing is discarded eagerly: the raw count
	// keeps the ghosts, the live count must not.
	if e.Pending() != 10 {
		t.Fatalf("Pending = %d after lazy cancels, want 10 (ghosts retained)", e.Pending())
	}
	if e.LivePending() != 6 {
		t.Fatalf("LivePending = %d, want 6", e.LivePending())
	}
	e.Run()
	if e.Pending() != 0 || e.LivePending() != 0 {
		t.Fatalf("queue not drained: %d/%d", e.Pending(), e.LivePending())
	}
	if got := e.Profile(); got.Executed != 6 {
		t.Fatalf("executed %d events, want the 6 live ones", got.Executed)
	}
}

func TestProfileHeapPeakAndSweeps(t *testing.T) {
	e := NewEngine()
	// The cancel-heavy shape that forces eager sweeps: every completion
	// disarms its own (already-fired) guard, so the cancelled set grows
	// while the queue shrinks until the sweep condition trips.
	ids := make([]EventID, 200)
	for i := 0; i < 200; i++ {
		i := i
		ids[i] = e.At(Time(i+1), func() { e.Cancel(ids[i]) })
	}
	if p := e.Profile(); p.HeapPeak != 200 {
		t.Fatalf("HeapPeak = %d, want 200", p.HeapPeak)
	}
	e.Run()
	p := e.Profile()
	if p.Executed != 200 {
		t.Fatalf("Executed = %d, want 200 (cancelling a fired event must not unfire it)", p.Executed)
	}
	if p.CancelSweeps == 0 {
		t.Fatal("200 disarm-after-fire cancels never triggered an eager sweep")
	}
	if p.HeapPeak != 200 || p.Pending != 0 || p.LivePending != 0 {
		t.Fatalf("final profile = %+v", p)
	}
	if e.CancelledPending() > cancelSweepFloor {
		t.Fatalf("cancelled set leaked %d entries past the sweep floor", e.CancelledPending())
	}
}

// TestEventFreeListRecycles drives fire→schedule cycles and checks the
// engine reuses event records rather than growing the pool: after the
// first lap around the loop, steady-state scheduling should allocate
// nothing new.
func TestEventFreeListRecycles(t *testing.T) {
	e := NewEngine()
	n := 0
	var loop func()
	loop = func() {
		if n++; n < 1000 {
			e.After(Microsecond, loop)
		}
	}
	e.After(Microsecond, loop)
	e.Run()
	if n != 1000 {
		t.Fatalf("loop ran %d times, want 1000", n)
	}
	// One event in flight at a time: the record fired first, was
	// recycled, and every reschedule reused it — the free list holds at
	// most the single steady-state record, not 1000 retired ones.
	if len(e.free) > 1 {
		t.Fatalf("free list holds %d records after a 1-deep loop, want <=1 (no recycling?)", len(e.free))
	}

	// And recycled records never pin closures.
	for _, ev := range e.free {
		if ev.fn != nil {
			t.Fatal("recycled event still references its closure")
		}
	}
}

// TestFreeListDeterminism replays the same cancel-heavy schedule on a
// fresh engine and on one whose free list is pre-warmed, and requires
// identical execution: pooling is invisible to the model.
func TestFreeListDeterminism(t *testing.T) {
	replay := func(e *Engine) []int {
		var order []int
		rng := NewRNG(7)
		var ids []EventID
		for i := 0; i < 300; i++ {
			i := i
			// Offsets are relative to Now: the warm engine's clock has
			// already advanced past its warm-up events.
			at := e.Now().Add(Duration(1 + rng.Intn(50)))
			ids = append(ids, e.At(at, func() { order = append(order, i) }))
		}
		for i := 0; i < 300; i += 3 {
			e.Cancel(ids[i])
		}
		e.Run()
		return order
	}

	fresh := NewEngine()
	warm := NewEngine()
	// Pre-warm: run disposable events through so the free list is hot.
	for i := 0; i < 64; i++ {
		warm.At(Time(i+1), func() {})
	}
	warm.Run()
	if len(warm.free) == 0 {
		t.Fatal("warm-up left no records on the free list")
	}

	a, b := replay(fresh), replay(warm)
	if len(a) != len(b) {
		t.Fatalf("executed %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("execution order diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
