package sim

import "testing"

// obsLog records every observer callback for assertion.
type obsLog struct {
	queued, started, finished, dropped int
	waits                              []Duration
	frames                             int
	lost                               int
	batches                            int
	batchTasks                         int
}

func (o *obsLog) JobQueued(string, Time, int) { o.queued++ }
func (o *obsLog) JobStarted(_ string, _ Time, w Duration) {
	o.started++
	o.waits = append(o.waits, w)
}
func (o *obsLog) JobFinished(string, Time, Time) { o.finished++ }
func (o *obsLog) JobDropped(string, Time)        { o.dropped++ }
func (o *obsLog) FrameSent(_ string, _ int, _, _ Time, lost bool) {
	o.frames++
	if lost {
		o.lost++
	}
}
func (o *obsLog) BatchFlushed(_ string, tasks int, _ Duration, _ Time) {
	o.batches++
	o.batchTasks += tasks
}

func TestTickerStopsWhenOnlyTickersRemain(t *testing.T) {
	e := NewEngine()
	ticks := 0
	e.Ticker(10, func() { ticks++ })
	e.At(100, func() {}) // model work ends at t=100
	e.Run()
	// The ticker must sample through the model's horizon but never extend
	// it: the last firing tick is at or just past t=100.
	if ticks < 9 || ticks > 11 {
		t.Fatalf("ticks = %d, want ~10 over a 100ns horizon", ticks)
	}
	if e.Now() > 120 {
		t.Fatalf("ticker extended the simulation to %v", e.Now())
	}
}

func TestMultipleTickersTerminate(t *testing.T) {
	e := NewEngine()
	var a, b, c int
	e.Ticker(7, func() { a++ })
	e.Ticker(13, func() { b++ })
	e.Ticker(13, func() { c++ })
	e.At(200, func() {})
	e.Run() // must not livelock: tickers alone cannot sustain the queue
	if a == 0 || b == 0 || c == 0 {
		t.Fatalf("all tickers must fire: %d %d %d", a, b, c)
	}
}

func TestTickerSeesRealEvents(t *testing.T) {
	e := NewEngine()
	var samples []Time
	e.Ticker(10, func() { samples = append(samples, e.Now()) })
	// Chain of real events keeps the model alive until t=55.
	var step func()
	n := 0
	step = func() {
		n++
		if n < 11 {
			e.After(5, step)
		}
	}
	e.At(0, step)
	e.Run()
	if len(samples) < 5 {
		t.Fatalf("expected ~5 samples over 55ns at period 10, got %v", samples)
	}
	for i, s := range samples {
		if want := Time(10 * (i + 1)); s != want {
			t.Fatalf("sample %d at %v, want %v", i, s, want)
		}
	}
}

func TestStationObserverCounts(t *testing.T) {
	e := NewEngine()
	st := NewStation(e, 1)
	st.Capacity = 1
	log := &obsLog{}
	st.Observe("st", log)
	e.At(0, func() {
		st.Submit(&Job{Service: 10}) // starts immediately
		st.Submit(&Job{Service: 10}) // queues (wait 10)
		st.Submit(&Job{Service: 10}) // queue full: dropped
	})
	e.Run()
	if log.started != 2 || log.finished != 2 || log.dropped != 1 {
		t.Fatalf("started/finished/dropped = %d/%d/%d, want 2/2/1",
			log.started, log.finished, log.dropped)
	}
	// Only the job that actually waited in the queue counts as queued.
	if log.queued != 1 {
		t.Fatalf("queued = %d, want 1", log.queued)
	}
	if len(log.waits) != 2 || log.waits[0] != 0 || log.waits[1] != 10 {
		t.Fatalf("waits = %v, want [0 10]", log.waits)
	}
}

func TestLinkObserverFrames(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, 8e9, 0) // 1 byte/ns
	log := &obsLog{}
	l.Observe("lk", log)
	e.At(0, func() {
		l.Send(100, func() {})
		l.SetDown(true)
		l.Send(100, func() {})
	})
	e.Run()
	if log.frames != 2 || log.lost != 1 {
		t.Fatalf("frames/lost = %d/%d, want 2/1", log.frames, log.lost)
	}
}

func TestBatchObserverFlush(t *testing.T) {
	e := NewEngine()
	b := NewBatchStation(e, 4, 100, 10)
	log := &obsLog{}
	b.Observe("bt", log, log)
	e.At(0, func() {
		for i := 0; i < 6; i++ {
			b.Submit(&Job{Size: 64})
		}
	})
	e.Run()
	// 6 tasks at maxBatch 4: one full flush of 4, one timeout flush of 2.
	if log.batches != 2 || log.batchTasks != 6 {
		t.Fatalf("batches/tasks = %d/%d, want 2/6", log.batches, log.batchTasks)
	}
	if log.started == 0 || log.finished == 0 {
		t.Fatalf("batch station must forward station events: %+v", log)
	}
}
