package power

// This file composes the standard testbed power domains used by every
// experiment: the server box (BMC domain) and the SNIC card (Yocto-Watt
// domain), with the SNIC nested inside the server — the BMC measures all
// PCIe devices, which is exactly why the paper needed the riser rig to
// isolate the card.

// Name lets a Model nest inside another Model as a Component.
func (m *Model) Name() string { return m.Label }

// Signals carries the live utilization feeds the power model scales with.
type Signals struct {
	// HostCPU is the host core pool's instantaneous busy fraction.
	HostCPU UtilizationSource
	// HostMemBW is the host memory subsystem's bandwidth utilization.
	HostMemBW UtilizationSource
	// SNICCPU is the Arm core pool's busy fraction.
	SNICCPU UtilizationSource
	// SNICEngines is the accelerator engines' aggregate busy fraction.
	SNICEngines UtilizationSource
	// WireUtil is the network port's utilization: the NIC datapath,
	// PCIe and DRAM churn of moving bits scales with it (this is what
	// makes a wire-saturating fio run cost ~90 W over idle in Table 5
	// even though its CPU use is one core).
	WireUtil UtilizationSource
}

func zeroUtil() float64 { return 0 }

func orZero(u UtilizationSource) UtilizationSource {
	if u == nil {
		return zeroUtil
	}
	return u
}

// Budget is the component-level calibration of the 252 W / 150.6 W /
// 29 W / 5.4 W anchors.
type Budget struct {
	HostCPUIdleW      Watts
	HostCPUMaxActiveW Watts
	HostDRAMIdleW     Watts
	HostDRAMMaxW      Watts
	MiscMaxActiveW    Watts // fans/VRM ramp with host activity
	IOTrafficMaxW     Watts // NIC datapath + PCIe + DRAM churn at line rate
	SNICSoCIdleW      Watts
	SNICCPUMaxW       Watts
	SNICEngineMaxW    Watts
	RestFixedW        Watts // motherboard, PSU loss, storage, idle fans
}

// DefaultBudget splits the paper's anchors across components:
//
//	idle:   140 (rest) + 58 (host CPU) + 25 (DRAM) + 29 (SNIC) = 252 W
//	active: 105 (CPU) + 15 (DRAM) + 20.6 (misc) + 10 (I/O)    = 150.6 W
//	SNIC:   3.4 (Arm cores) + 2.0 (engines)                   = 5.4 W
//
// IOTrafficMaxW is 70 W at full line rate, but the CPU-bound workloads
// behind the 150.6 W anchor saturate the cores at ~15% wire utilization,
// contributing ~10 W of it there.
func DefaultBudget() Budget {
	return Budget{
		HostCPUIdleW:      58,
		HostCPUMaxActiveW: 105,
		HostDRAMIdleW:     25,
		HostDRAMMaxW:      15,
		MiscMaxActiveW:    20.6,
		IOTrafficMaxW:     70,
		SNICSoCIdleW:      SNICIdleW,
		SNICCPUMaxW:       3.4,
		SNICEngineMaxW:    2.0,
		RestFixedW:        140,
	}
}

// Testbed is the pair of measurement domains.
type Testbed struct {
	// Server is the BMC domain: the whole box including the SNIC.
	Server *Model
	// SNIC is the Yocto-Watt domain: the card alone.
	SNIC *Model
}

// NewTestbed wires the standard domains from a budget and live signals.
func NewTestbed(b Budget, sig Signals) *Testbed {
	snic := NewModel("snic")
	snic.Add(Fixed{Label: "snic-soc-idle", W: b.SNICSoCIdleW})
	snic.Add(Linear{Label: "snic-arm-cores", MaxActiveW: b.SNICCPUMaxW, Util: orZero(sig.SNICCPU)})
	snic.Add(Linear{Label: "snic-engines", MaxActiveW: b.SNICEngineMaxW, Util: orZero(sig.SNICEngines)})

	server := NewModel("server")
	server.Add(Fixed{Label: "rest-of-server", W: b.RestFixedW})
	server.Add(Linear{Label: "host-cpu", IdleW: b.HostCPUIdleW, MaxActiveW: b.HostCPUMaxActiveW, Util: orZero(sig.HostCPU)})
	server.Add(Linear{Label: "host-dram", IdleW: b.HostDRAMIdleW, MaxActiveW: b.HostDRAMMaxW, Util: orZero(sig.HostMemBW)})
	server.Add(Linear{Label: "misc-active", MaxActiveW: b.MiscMaxActiveW, Util: orZero(sig.HostCPU)})
	server.Add(Linear{Label: "io-traffic", MaxActiveW: b.IOTrafficMaxW, Util: orZero(sig.WireUtil)})
	server.Add(snic)
	return &Testbed{Server: server, SNIC: snic}
}
