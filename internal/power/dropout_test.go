package power

import (
	"testing"

	"repro/internal/sim"
)

func TestSensorDropoutSkipsSamples(t *testing.T) {
	eng := sim.NewEngine()
	s := NewBMCSensor(eng, func() Watts { return 100 })
	// 10-second run; sensor offline until t=6 s. Ticks land at 1..10 s,
	// so the ones at 1..5 s (strictly before 6 s) are missed.
	s.DropUntil(sim.Time(6 * sim.Second))
	s.Start(sim.Time(10 * sim.Second))
	eng.Run()
	if s.MissedSamples() != 5 {
		t.Fatalf("missed = %d samples, want 5 (ticks at 1..5s)", s.MissedSamples())
	}
	if s.Trace.Len() != 5 {
		t.Fatalf("trace has %d samples, want 5 (ticks at 6..10s)", s.Trace.Len())
	}
	if avg := s.Average(); avg != 100 {
		t.Fatalf("average over surviving samples = %v, want 100", avg)
	}
}

func TestSensorWithoutDropoutMissesNothing(t *testing.T) {
	eng := sim.NewEngine()
	s := NewYoctoWattSensor(eng, func() Watts { return 29 })
	s.Start(sim.Time(2 * sim.Second))
	eng.Run()
	if s.MissedSamples() != 0 {
		t.Fatalf("missed = %d, want 0", s.MissedSamples())
	}
	if s.Trace.Len() == 0 {
		t.Fatal("no samples recorded")
	}
}
