// Package power models the energy side of the paper: a component-level
// power model for the server and SNIC, and the two measurement
// instruments of §3.2 — the BMC/IPMI (DCMI) system sensor (1 Hz, ±1 W)
// and the custom Yocto-Watt PCIe-riser rig (10 Hz, ±2 mW) that isolates
// the SNIC's draw from the system-wide number.
//
// The calibration anchors come straight from the paper's Fig. 6
// discussion: 252 W server idle, 29 W SNIC idle, up to 150.6 W server
// active delta and up to 5.4 W SNIC active delta.
package power

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Watts is instantaneous power.
type Watts float64

// Joules is energy.
type Joules float64

// Paper §4 anchor constants.
const (
	// ServerIdleW is the system-wide idle draw (BMC reading, includes
	// the SNIC's idle draw because the SNIC is a PCIe subsystem).
	ServerIdleW Watts = 252
	// SNICIdleW is the SNIC's idle draw on the Yocto-Watt rig.
	SNICIdleW Watts = 29
	// ServerMaxActiveW is the largest active delta observed on the
	// server across the benchmark suite.
	ServerMaxActiveW Watts = 150.6
	// SNICMaxActiveW is the largest active delta observed on the SNIC.
	SNICMaxActiveW Watts = 5.4
)

// Component reports its instantaneous draw; the Model sums components and
// the sensors sample the sums.
type Component interface {
	Name() string
	Power() Watts
}

// Fixed is a constant-draw component (motherboard, fans baseline, PSU
// overhead, idle DIMMs, storage).
type Fixed struct {
	Label string
	W     Watts
}

// Name implements Component.
func (f Fixed) Name() string { return f.Label }

// Power implements Component.
func (f Fixed) Power() Watts { return f.W }

// UtilizationSource exposes an instantaneous busy fraction in [0,1];
// cpu.Pool, accel engines, and links all satisfy it via adapters.
type UtilizationSource func() float64

// Linear is a component whose draw scales linearly between an idle and a
// maximum value with a utilization signal: CPU packages, DRAM under
// bandwidth load, accelerator engines.
type Linear struct {
	Label      string
	IdleW      Watts
	MaxActiveW Watts // added on top of IdleW at 100% utilization
	Util       UtilizationSource
}

// Name implements Component.
func (l Linear) Name() string { return l.Label }

// Power implements Component.
func (l Linear) Power() Watts {
	u := l.Util()
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return l.IdleW + Watts(u)*l.MaxActiveW
}

// Model is a named set of components whose sum is one measurement domain
// (the whole server for the BMC; the SNIC card for the Yocto-Watt rig).
type Model struct {
	Label      string
	components []Component
}

// NewModel returns an empty model.
func NewModel(label string) *Model { return &Model{Label: label} }

// Add registers a component and returns the model for chaining.
func (m *Model) Add(c Component) *Model {
	if c == nil {
		panic("power: adding nil component")
	}
	m.components = append(m.components, c)
	return m
}

// Power returns the instantaneous sum.
func (m *Model) Power() Watts {
	var sum Watts
	for _, c := range m.components {
		sum += c.Power()
	}
	return sum
}

// Breakdown returns each component's instantaneous draw.
func (m *Model) Breakdown() map[string]Watts {
	out := make(map[string]Watts, len(m.components))
	for _, c := range m.components {
		out[c.Name()] += c.Power()
	}
	return out
}

// Sensor samples a power source periodically into a time series, with the
// instrument's quantization applied — the fidelity difference between the
// BMC and the Yocto-Watt rig (500× resolution, 10× rate) is part of the
// paper's methodology story.
type Sensor struct {
	Label   string
	Period  sim.Duration
	Quantum Watts // readings are rounded to this granularity
	Source  func() Watts
	Trace   stats.TimeSeries
	eng     *sim.Engine
	running bool
	// dropUntil marks a sensor outage: ticks before this instant record
	// nothing (the last good sample is effectively held by consumers, as a
	// stale BMC reading would be). Missed samples are counted.
	dropUntil sim.Time
	missed    uint64
}

// NewBMCSensor returns the IPMI/DCMI instrument: 1 Hz, ±1 W.
func NewBMCSensor(eng *sim.Engine, src func() Watts) *Sensor {
	return &Sensor{Label: "BMC/DCMI", Period: sim.Second, Quantum: 1, Source: src, eng: eng}
}

// NewYoctoWattSensor returns the PCIe-riser instrument: 10 Hz, ±2 mW.
func NewYoctoWattSensor(eng *sim.Engine, src func() Watts) *Sensor {
	return &Sensor{Label: "Yocto-Watt", Period: 100 * sim.Millisecond, Quantum: 0.002, Source: src, eng: eng}
}

// Start begins periodic sampling until stop time.
func (s *Sensor) Start(until sim.Time) {
	if s.running {
		panic("power: sensor already started")
	}
	s.running = true
	var tick func()
	tick = func() {
		if s.eng.Now() > until {
			return
		}
		if s.eng.Now() < s.dropUntil {
			s.missed++
		} else {
			s.Trace.Add(s.eng.Now(), float64(s.quantize(s.Source())))
		}
		s.eng.After(s.Period, tick)
	}
	s.eng.After(s.Period, tick)
}

// DropUntil takes the sensor offline until t: ticks in the window record
// nothing. BMC firmware hiccups and I2C bus contention do exactly this on
// real hardware; experiments that integrate energy from the trace must
// tolerate the gap.
func (s *Sensor) DropUntil(t sim.Time) { s.dropUntil = t }

// Reading returns what the instrument would report if polled right now:
// the source value with the instrument's quantization applied (and
// nothing else — a dropout only suppresses the periodic trace, an
// explicit poll still reads the rail). Telemetry gauges use this so
// exported power series carry instrument fidelity, not model floats.
func (s *Sensor) Reading() Watts { return s.quantize(s.Source()) }

// MissedSamples returns how many ticks fell inside dropout windows.
func (s *Sensor) MissedSamples() uint64 { return s.missed }

func (s *Sensor) quantize(w Watts) Watts {
	if s.Quantum <= 0 {
		return w
	}
	steps := float64(w) / float64(s.Quantum)
	return Watts(float64(int64(steps+0.5))) * s.Quantum
}

// Average returns the time-weighted mean of the trace.
func (s *Sensor) Average() Watts { return Watts(s.Trace.TimeWeightedMean()) }

// Peak returns the largest sample.
func (s *Sensor) Peak() Watts { return Watts(s.Trace.Max()) }

// Energy integrates the trace over its span.
func (s *Sensor) Energy() Joules {
	n := s.Trace.Len()
	if n < 2 {
		return 0
	}
	span := s.Trace.Times[n-1].Sub(s.Trace.Times[0]).Seconds()
	return Joules(float64(s.Average()) * span)
}

// EnergyKWh converts an average draw sustained over a duration into
// kilowatt-hours — the unit fleet-level energy rollups and electricity
// bills are quoted in.
func EnergyKWh(avg Watts, d sim.Duration) float64 {
	return float64(avg) * d.Seconds() / 3600 / 1000
}

// Efficiency is the paper's energy-efficiency metric: useful throughput
// divided by system-wide energy. Units: bits per joule when throughput is
// bits/s (equivalently Gb/s per kW scaled); ops per joule for op-metered
// functions.
func Efficiency(throughputPerSec float64, avg Watts) float64 {
	if avg <= 0 {
		return 0
	}
	return throughputPerSec / float64(avg)
}

func (s *Sensor) String() string {
	return fmt.Sprintf("%s: %d samples, avg %.1f W, peak %.1f W",
		s.Label, s.Trace.Len(), float64(s.Average()), float64(s.Peak()))
}
