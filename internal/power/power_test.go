package power

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestIdleAnchorsMatchPaper(t *testing.T) {
	tb := NewTestbed(DefaultBudget(), Signals{})
	if got := tb.Server.Power(); got != ServerIdleW {
		t.Fatalf("server idle = %v W, want %v (paper §4)", got, ServerIdleW)
	}
	if got := tb.SNIC.Power(); got != SNICIdleW {
		t.Fatalf("SNIC idle = %v W, want %v", got, SNICIdleW)
	}
}

func TestMaxActiveAnchorsMatchPaper(t *testing.T) {
	one := func() float64 { return 1 }
	// The paper's 150.6 W peak came from CPU-bound workloads that
	// saturate the cores at modest (~1/7) wire utilization.
	wire := func() float64 { return 1.0 / 7.0 }
	tb := NewTestbed(DefaultBudget(), Signals{
		HostCPU: one, HostMemBW: one, SNICCPU: one, SNICEngines: one,
		WireUtil: wire,
	})
	serverActive := tb.Server.Power() - ServerIdleW
	if math.Abs(float64(serverActive-(ServerMaxActiveW+SNICMaxActiveW))) > 0.01 {
		t.Fatalf("server max active = %v W, want %v", serverActive, ServerMaxActiveW+SNICMaxActiveW)
	}
	if snicActive := tb.SNIC.Power() - SNICIdleW; math.Abs(float64(snicActive-SNICMaxActiveW)) > 0.01 {
		t.Fatalf("SNIC max active = %v W, want %v", snicActive, SNICMaxActiveW)
	}
}

func TestSNICNestedInServerDomain(t *testing.T) {
	// Raising only SNIC utilization must raise the server (BMC) reading
	// by the same amount: the BMC sees all PCIe devices.
	util := 0.0
	src := func() float64 { return util }
	tb := NewTestbed(DefaultBudget(), Signals{SNICCPU: src})
	base := tb.Server.Power()
	util = 1.0
	delta := tb.Server.Power() - base
	if math.Abs(float64(delta-3.4)) > 0.01 {
		t.Fatalf("server delta = %v W for SNIC-only activity, want 3.4", delta)
	}
}

func TestLinearClamps(t *testing.T) {
	l := Linear{IdleW: 10, MaxActiveW: 100, Util: func() float64 { return 2.5 }}
	if l.Power() != 110 {
		t.Fatalf("overdriven util must clamp to max: %v", l.Power())
	}
	l.Util = func() float64 { return -1 }
	if l.Power() != 10 {
		t.Fatalf("negative util must clamp to idle: %v", l.Power())
	}
}

func TestBreakdownSumsToTotal(t *testing.T) {
	tb := NewTestbed(DefaultBudget(), Signals{HostCPU: func() float64 { return 0.5 }})
	var sum Watts
	for _, w := range tb.Server.Breakdown() {
		sum += w
	}
	if math.Abs(float64(sum-tb.Server.Power())) > 1e-9 {
		//snicvet:ignore detflow -- float sum over map values varies only in the last bits; the 1e-9 tolerance absorbs any summation order
		t.Fatalf("breakdown sum %v != total %v", sum, tb.Server.Power())
	}
}

func TestBMCSensorRateAndQuantization(t *testing.T) {
	eng := sim.NewEngine()
	s := NewBMCSensor(eng, func() Watts { return 252.4 })
	s.Start(sim.Time(10 * sim.Second))
	eng.Run()
	if s.Trace.Len() != 10 {
		t.Fatalf("BMC took %d samples over 10 s, want 10 (1 Hz)", s.Trace.Len())
	}
	// ±1 W quantization: 252.4 reads as 252.
	if s.Trace.Values[0] != 252 {
		t.Fatalf("BMC reading = %v, want 252 (1 W quantum)", s.Trace.Values[0])
	}
}

func TestYoctoWattSensorRateAndResolution(t *testing.T) {
	eng := sim.NewEngine()
	s := NewYoctoWattSensor(eng, func() Watts { return 29.1234 })
	s.Start(sim.Time(sim.Second))
	eng.Run()
	if s.Trace.Len() != 10 {
		t.Fatalf("Yocto-Watt took %d samples over 1 s, want 10 (10 Hz)", s.Trace.Len())
	}
	// 2 mW quantum: 29.1234 -> 29.124.
	if math.Abs(s.Trace.Values[0]-29.124) > 1e-9 {
		t.Fatalf("Yocto-Watt reading = %v, want 29.124", s.Trace.Values[0])
	}
}

func TestSensorAverageTracksStep(t *testing.T) {
	eng := sim.NewEngine()
	cur := Watts(100)
	s := NewBMCSensor(eng, func() Watts { return cur })
	s.Start(sim.Time(20 * sim.Second))
	eng.At(sim.Time(10*sim.Second), func() { cur = 300 })
	eng.Run()
	avg := float64(s.Average())
	if avg < 180 || avg > 220 {
		t.Fatalf("average = %v, want ~200 for a 100→300 step at midpoint", avg)
	}
}

func TestSensorEnergyIntegral(t *testing.T) {
	eng := sim.NewEngine()
	s := NewBMCSensor(eng, func() Watts { return 100 })
	s.Start(sim.Time(11 * sim.Second))
	eng.Run()
	// 100 W over the 10 s trace span = 1000 J.
	if e := float64(s.Energy()); math.Abs(e-1000) > 1 {
		t.Fatalf("energy = %v J, want 1000", e)
	}
}

func TestSensorDoubleStartPanics(t *testing.T) {
	eng := sim.NewEngine()
	s := NewBMCSensor(eng, func() Watts { return 1 })
	s.Start(10)
	defer func() {
		if recover() == nil {
			t.Fatal("double start did not panic")
		}
	}()
	s.Start(10)
}

func TestEfficiencyMetric(t *testing.T) {
	// 100 Gb/s at 250 W = 0.4 Gb/J.
	if e := Efficiency(100e9, 250); e != 0.4e9 {
		t.Fatalf("efficiency = %v, want 4e8 bits/J", e)
	}
	if Efficiency(1, 0) != 0 {
		t.Fatal("zero power must yield zero efficiency, not Inf")
	}
}

func TestYoctoVsBMCFidelity(t *testing.T) {
	// The paper: Yocto-Watt has 10× the sampling rate and 500× the
	// resolution of the BMC.
	eng := sim.NewEngine()
	b := NewBMCSensor(eng, nil)
	y := NewYoctoWattSensor(eng, nil)
	if r := float64(b.Period) / float64(y.Period); r != 10 {
		t.Errorf("rate ratio = %v, want 10", r)
	}
	if r := float64(b.Quantum) / float64(y.Quantum); r != 500 {
		t.Errorf("resolution ratio = %v, want 500", r)
	}
}
