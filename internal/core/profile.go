package core

import (
	"io"
	"sync"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Simulator self-profiling. A Profiler aggregates the simulation
// infrastructure's own counters — engine events executed, event-heap
// high-water, cancel sweeps, memo-cache traffic, worker-pool fan-out —
// across every simulation of the runners it is attached to. It answers
// "how hard did the simulator work", where telemetry answers "what did
// the model do"; ROADMAP item 1 (raw per-event speed) is tracked against
// these numbers via benchcompare's events/sec leg.
//
// Every counter is virtual-state only (no wall clock), so a sequential
// profile is byte-identical across runs. Under parallelism the memo
// cache may let two workers race the same key and both simulate — the
// documented duplicate-work trade — so aggregate counts at -j>1 are
// scheduling-dependent; wall-clock rates live in the callers (cmd
// layer), never here.

// Profiler is internally locked: one Profiler may serve several runners
// running simulations on many goroutines, like an obs.Collector.
type Profiler struct {
	mu  sync.Mutex
	reg *obs.Registry

	events, sweeps, runs       *obs.CounterMetric
	heapPeaks, livePendingEnds *obs.HistogramMetric
	cacheHits, cacheMisses     *obs.CounterMetric
	poolTasks, poolBatches     *obs.CounterMetric

	heapPeak   int
	maxWorkers int
}

// NewProfiler returns an empty profiler with its metric set registered.
func NewProfiler() *Profiler {
	reg := obs.NewRegistry()
	eng := reg.Scope("engine")
	cache := reg.Scope("cache")
	pool := reg.Scope("pool")
	return &Profiler{
		reg:             reg,
		events:          eng.Counter("events", "events"),
		sweeps:          eng.Counter("cancel_sweeps", "sweeps"),
		runs:            eng.Counter("runs", "runs"),
		heapPeaks:       eng.Histogram("heap_peak", "events"),
		livePendingEnds: eng.Histogram("live_pending_end", "events"),
		cacheHits:       cache.Counter("hits", "lookups"),
		cacheMisses:     cache.Counter("misses", "lookups"),
		poolTasks:       pool.Counter("tasks", "tasks"),
		poolBatches:     pool.Counter("batches", "fanouts"),
	}
}

// NoteEngine folds one finished simulation's engine profile into the
// aggregate. Nil-safe.
func (p *Profiler) NoteEngine(eng *sim.Engine) {
	if p == nil {
		return
	}
	ep := eng.Profile()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.runs.Add(1)
	p.events.Add(float64(ep.Executed))
	p.sweeps.Add(float64(ep.CancelSweeps))
	p.heapPeaks.Observe(float64(ep.HeapPeak))
	p.livePendingEnds.Observe(float64(ep.LivePending))
	if ep.HeapPeak > p.heapPeak {
		p.heapPeak = ep.HeapPeak
	}
}

// noteCache tallies one memo-cache lookup.
func (p *Profiler) noteCache(hit bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if hit {
		p.cacheHits.Add(1)
	} else {
		p.cacheMisses.Add(1)
	}
}

// notePool tallies one worker-pool fan-out of n items on up to workers
// goroutines.
func (p *Profiler) notePool(workers, n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.poolBatches.Add(1)
	p.poolTasks.Add(float64(n))
	if workers > p.maxWorkers {
		p.maxWorkers = workers
	}
}

// SelfProfile is the headline aggregate of a Profiler: what the
// simulator infrastructure did across all runs so far.
type SelfProfile struct {
	// Runs is how many simulations contributed (cache hits excluded).
	Runs uint64 `json:"runs"`
	// Events is the total discrete events executed.
	Events uint64 `json:"events"`
	// HeapPeak is the deepest event queue any run reached.
	HeapPeak int `json:"heap_peak"`
	// CancelSweeps counts eager cancelled-event sweeps across runs.
	CancelSweeps uint64 `json:"cancel_sweeps"`
	// CacheHits/CacheMisses tally memo-cache lookups.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	// PoolTasks/PoolBatches tally worker-pool fan-outs; MaxWorkers is
	// the widest fan-out used.
	PoolTasks   uint64 `json:"pool_tasks"`
	PoolBatches uint64 `json:"pool_batches"`
	MaxWorkers  int    `json:"max_workers"`
}

// Snapshot returns the headline aggregate.
func (p *Profiler) Snapshot() SelfProfile {
	if p == nil {
		return SelfProfile{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return SelfProfile{
		Runs:         uint64(p.runs.Value()),
		Events:       uint64(p.events.Value()),
		HeapPeak:     p.heapPeak,
		CancelSweeps: uint64(p.sweeps.Value()),
		CacheHits:    uint64(p.cacheHits.Value()),
		CacheMisses:  uint64(p.cacheMisses.Value()),
		PoolTasks:    uint64(p.poolTasks.Value()),
		PoolBatches:  uint64(p.poolBatches.Value()),
		MaxWorkers:   p.maxWorkers,
	}
}

// WriteProfile writes the full metric snapshot (name-sorted JSON) — the
// profile.json payload. Deterministic for sequential runs; see the
// package comment for the -j>1 caveat.
func (p *Profiler) WriteProfile(w io.Writer) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reg.WriteJSON(w)
}

// SetProfiler attaches a profiler to the runner: every simulation's
// engine profile, every memo-cache lookup and every worker-pool fan-out
// is folded into it. Call before launching experiments.
func (r *Runner) SetProfiler(p *Profiler) {
	r.Prof = p
	r.cache.prof = p
}
