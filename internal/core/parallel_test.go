package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// fig4TestSubset is a small, mixed slice of the catalog: one software
// function, one accelerated, one microbenchmark — enough to exercise
// every platform pair without Fig. 4's full runtime.
func fig4TestSubset(t testing.TB) []*Config {
	t.Helper()
	var subset []*Config
	want := map[string]bool{"nat/10K": true, "compress/app": true, "udp-echo/64B": true}
	for _, cfg := range Catalog() {
		if want[cfg.Name()] {
			subset = append(subset, cfg)
		}
	}
	if len(subset) != 3 {
		t.Fatalf("subset has %d entries, want 3", len(subset))
	}
	return subset
}

// TestFig4ParallelDeterminism is the engine's core guarantee: the same
// seed at parallelism 1 and 8 yields deeply equal rows.
func TestFig4ParallelDeterminism(t *testing.T) {
	subset := fig4TestSubset(t)
	seq := NewRunner()
	seq.Parallelism = 1
	par := NewRunner()
	par.Parallelism = 8
	a := seq.Fig4For(subset)
	b := par.Fig4For(subset)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("parallel Fig4 diverged from sequential:\nseq: %v\npar: %v", a, b)
	}
}

// TestFig5ParallelDeterminism covers the per-index seeding path.
func TestFig5ParallelDeterminism(t *testing.T) {
	rates := []float64{20, 40, 60, 80}
	seq := NewRunner()
	par := NewRunner()
	par.Parallelism = 8
	if a, b := seq.Fig5(rates), par.Fig5(rates); !reflect.DeepEqual(a, b) {
		t.Fatalf("parallel Fig5 diverged:\nseq: %v\npar: %v", a, b)
	}
}

// TestMeasurementCache re-runs an experiment on one runner: the second
// pass must be answered entirely from the memo cache.
func TestMeasurementCache(t *testing.T) {
	subset := fig4TestSubset(t)
	r := NewRunner()
	first := r.Fig4For(subset)
	sims := r.Sims()
	if sims == 0 {
		t.Fatal("first pass simulated nothing")
	}
	second := r.Fig4For(subset)
	if got := r.Sims(); got != sims {
		t.Fatalf("second pass ran %d new simulations, want 0", got-sims)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached rows differ from the originals")
	}
	if hits, _ := r.CacheStats(); hits == 0 {
		t.Fatal("cache reported no hits")
	}
}

// TestCacheKeyDiscriminates guards against stale hits: a modified copy
// of a config keeps its name but must re-simulate, while an identical
// copy must not.
func TestCacheKeyDiscriminates(t *testing.T) {
	base, err := Lookup("nat", "10K")
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner()
	opts := DefaultRunOpts()
	opts.Requests = 2000
	opts.OfferedGbps = 0.5
	ref := r.Run(base, HostCPU, opts)

	mod := *base
	mod.HostBaseCycles *= 50 // same name, different cost model
	before := r.Sims()
	got := r.Run(&mod, HostCPU, opts)
	if r.Sims() == before {
		t.Fatal("modified config was served from the cache")
	}
	if got.Latency.P99 == ref.Latency.P99 {
		t.Fatal("inflated cycles did not change the measurement (key too coarse?)")
	}

	same := *base
	before = r.Sims()
	if r.Run(&same, HostCPU, opts); r.Sims() != before {
		t.Fatal("identical copy missed the cache")
	}
}

// TestForEach checks the pool visits every index exactly once at any
// worker count, including workers > n and n = 0.
func TestForEach(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 5, 63} {
			var mu sync.Mutex
			seen := make(map[int]int)
			forEach(workers, n, func(i int) {
				mu.Lock()
				seen[i]++
				mu.Unlock()
			})
			if len(seen) != n {
				t.Fatalf("workers=%d n=%d: visited %d indices", workers, n, len(seen))
			}
			for i := 0; i < n; i++ {
				if seen[i] != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, seen[i])
				}
			}
		}
	}
}

// TestProgressCallback verifies counts are monotonic per tracker, the
// totals add up, and invocations never race (the callback mutates
// unguarded state; -race would flag unserialized calls).
func TestProgressCallback(t *testing.T) {
	var calls int
	var maxTotal int
	r := NewRunner()
	r.Parallelism = 8
	r.Progress = func(done, total int, label string) {
		calls++
		if done < 1 || done > total {
			t.Errorf("progress out of range: %d/%d %q", done, total, label)
		}
		if total > maxTotal {
			maxTotal = total
		}
		if label == "" {
			t.Error("empty progress label")
		}
	}
	r.Fig4For(fig4TestSubset(t))
	if calls == 0 {
		t.Fatal("progress callback never fired")
	}
	if maxTotal < 3 {
		t.Fatalf("never saw the experiment-level total, max seen %d", maxTotal)
	}
}

// TestLinkRateOption: a 25 GbE wire cannot deliver a 40 Gb/s offer, so
// the option must visibly throttle the run.
func TestLinkRateOption(t *testing.T) {
	cfg := remMTU(trace.RuleSetExecutable)
	r := NewRunner()
	r.TBConfig.LinkRateGbps = 25
	opts := DefaultRunOpts()
	opts.Requests = 6000
	opts.OfferedGbps = 40
	m := r.Run(cfg, HostCPU, opts)
	if m.DeliveredFrac > 0.75 {
		t.Fatalf("25 GbE wire delivered %.0f%% of a 40 Gb/s offer", m.DeliveredFrac*100)
	}
	if fmt.Sprintf("%.0f", r.TBConfig.LinkGbps()) != "25" {
		t.Fatalf("LinkGbps = %v", r.TBConfig.LinkGbps())
	}
}

// TestRunFaultedSetMatchesLoop: the parallel scenario fan must equal a
// sequential RunFaulted loop, scenario by scenario.
func TestRunFaultedSetMatchesLoop(t *testing.T) {
	tr := BurstyTrace(4, 60, 10, 4, 2*sim.Millisecond)
	scns := DefaultFaultScenarios(tr.Duration())
	mk := func() *HealthRouter {
		return NewHealthRouter(HWLoadBalancer(), DefaultFailoverPolicy())
	}
	seq := NewRunner()
	var want []FaultResult
	for _, scn := range scns {
		want = append(want, seq.RunFaulted(scn, mk(), tr, 2, 42))
	}
	par := NewRunner()
	par.Parallelism = 8
	got := par.RunFaultedSet(scns, mk, tr, 2, 42)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("RunFaultedSet diverged:\nwant %v\ngot  %v", want, got)
	}
}
