package core

import (
	"repro/internal/invariant"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Checked-execution wiring. A Runner with Checks set gives every
// simulation a per-run invariant.Checker validating the simulator's
// physical laws online: request and byte conservation through the
// drivers' ledgers, queue sanity and clock monotonicity through the same
// sim observer hooks telemetry uses, and span causality at end of run.
// With Checks off every hook below degenerates to the telemetry nil
// check, so the unchecked hot path is unchanged.

// newChecker returns a fail-fast checker for one run, or nil when
// checked mode is off.
func (r *Runner) newChecker(label string) *invariant.Checker {
	if !r.Checks {
		return nil
	}
	return invariant.New(label)
}

// combineStations merges the optional recorder and checker into one
// station observer. Returning the concrete values (never a nil wrapped
// in an interface) keeps the "observer == nil" fast path honest.
func combineStations(rec *obs.Recorder, chk *invariant.Checker) sim.StationObserver {
	switch {
	case rec != nil && chk != nil:
		return invariant.TeeStations(rec, chk)
	case rec != nil:
		return rec
	case chk != nil:
		return chk
	}
	return nil
}

// combineLinks is combineStations for link observers.
func combineLinks(rec *obs.Recorder, chk *invariant.Checker) sim.LinkObserver {
	switch {
	case rec != nil && chk != nil:
		return invariant.TeeLinks(rec, chk)
	case rec != nil:
		return rec
	case chk != nil:
		return chk
	}
	return nil
}

// combineBatches is combineStations for batch observers.
func combineBatches(rec *obs.Recorder, chk *invariant.Checker) sim.BatchObserver {
	switch {
	case rec != nil && chk != nil:
		return invariant.TeeBatches(rec, chk)
	case rec != nil:
		return rec
	case chk != nil:
		return chk
	}
	return nil
}

// registerPools hands the checker the ground truth it range-checks the
// pools against: core counts and queue capacities as configured for this
// run (capacities are set before instrumentation in every run path).
func registerPools(tb *Testbed, chk *invariant.Checker) {
	if chk == nil {
		return
	}
	chk.RegisterStation("pool/host", tb.HostPool.Cores(), tb.HostPool.QueueCapacity(),
		func() (int, int) { return tb.HostPool.Busy(), tb.HostPool.QueueLen() })
	chk.RegisterStation("pool/snic", tb.SNICPool.Cores(), tb.SNICPool.QueueCapacity(),
		func() (int, int) { return tb.SNICPool.Busy(), tb.SNICPool.QueueLen() })
	chk.RegisterStation("pool/staging", tb.StagingPool.Cores(), tb.StagingPool.QueueCapacity(),
		func() (int, int) { return tb.StagingPool.Busy(), tb.StagingPool.QueueLen() })
}

// noteInject records a request entering the run's conservation ledger.
func (ctx *runctx) noteInject(seq uint64, bytes int) {
	ctx.chk.Inject(seq, bytes, ctx.tb.Eng.Now())
}

// noteComplete records a request's successful completion.
func (ctx *runctx) noteComplete(seq uint64, bytes int) {
	ctx.chk.Complete(seq, bytes, ctx.tb.Eng.Now())
}

// noteDrop records a request shed at a full queue.
func (ctx *runctx) noteDrop(seq uint64, bytes int) {
	ctx.chk.Drop(seq, bytes, ctx.tb.Eng.Now())
}

// finishChecks runs the end-of-run verification: the ledger against the
// driver's own counters, the conservation equations, and the span tree.
// Any violation panics with the typed *invariant.Violation.
func (r *Runner) finishChecks(ctx *runctx) {
	if ctx.chk == nil {
		return
	}
	now := ctx.tb.Eng.Now()
	ctx.chk.VerifyCounts(uint64(ctx.sent), uint64(ctx.done), now)
	if err := ctx.chk.Finish(now); err != nil {
		panic(err)
	}
	if err := invariant.CheckSpans(ctx.rec, invariant.SpanCheckOpts{}); err != nil {
		panic(err)
	}
}
