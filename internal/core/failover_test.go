package core

import (
	"testing"

	"repro/internal/accel"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/trace"
)

// faultTestTrace is a short stationary trace: 120 × 400 µs at 2 Gb/s
// (~8k MTU requests), small enough for unit tests but long enough to
// fit a fault window and a post-fault population.
func faultTestTrace() *trace.HyperscalerTrace {
	rates := make([]float64, 120)
	for i := range rates {
		rates[i] = 2
	}
	return &trace.HyperscalerTrace{Interval: 400 * sim.Microsecond, RatesGbps: rates}
}

func testRouter() *HealthRouter {
	return NewHealthRouter(HWLoadBalancer(), DefaultFailoverPolicy())
}

func TestHealthRouterRoutes(t *testing.T) {
	hr := testRouter()
	if got := hr.Route(accel.Healthy, 0); got != nic.ToAccelerator {
		t.Fatalf("healthy idle engine routed to %v", got)
	}
	if got := hr.Route(accel.Down, 0); got != nic.ToHostCPU {
		t.Fatalf("down engine routed to %v", got)
	}
	if got := hr.Route(accel.Stalled, 0); got != nic.ToHostCPU {
		t.Fatalf("stalled engine routed to %v", got)
	}
	over := hr.Policy.QueueWatermark + 1
	if got := hr.Route(accel.Healthy, over); got != nic.ToHostCPU {
		t.Fatalf("backlog %d above watermark routed to %v", over, got)
	}
}

func TestBackoffSchedule(t *testing.T) {
	pol := DefaultFailoverPolicy()
	want := []sim.Duration{100 * sim.Microsecond, 200 * sim.Microsecond, 400 * sim.Microsecond, 800 * sim.Microsecond}
	for i, w := range want {
		if got := pol.Backoff(i + 1); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	// 5 timeout windows of 300 µs plus the 4 backoffs above.
	if got, want := pol.MaxDelay(), 3*sim.Millisecond; got != want {
		t.Fatalf("MaxDelay = %v, want %v", got, want)
	}
}

func TestRunFaultedDeterministic(t *testing.T) {
	tr := faultTestTrace()
	scn := DefaultFaultScenarios(tr.Duration())[0]
	r := NewRunner()
	a := r.RunFaulted(scn, testRouter(), tr, 2, 99)
	b := r.RunFaulted(scn, testRouter(), tr, 2, 99)
	if a != b {
		t.Fatalf("same seed diverged:\n  a: %+v\n  b: %+v", a, b)
	}
	if a.Total == 0 || a.Completed == 0 {
		t.Fatalf("replay did no work: %+v", a)
	}
}

// p99Recovers asserts the experiment family's headline invariant:
// after the fault window, p99 returns to within 10% of the fault-free
// baseline.
func p99Recovers(t *testing.T, res FaultResult, base FaultResult) {
	t.Helper()
	if res.P99Post == 0 {
		t.Fatalf("%s: no post-fault population", res.Scenario)
	}
	limit := sim.Duration(float64(base.P99) * 1.10)
	if res.P99Post > limit {
		t.Fatalf("%s: post-fault p99 %v did not recover to within 10%% of baseline %v",
			res.Scenario, res.P99Post, base.P99)
	}
}

func TestAccelCrashFailsOverToHost(t *testing.T) {
	tr := faultTestTrace()
	scns := DefaultFaultScenarios(tr.Duration())
	r := NewRunner()
	base := r.RunFaulted(FaultScenario{Name: "baseline"}, testRouter(), tr, 2, 7)
	res := r.RunFaulted(scns[0], testRouter(), tr, 2, 7)

	if res.Dropped != 0 {
		t.Fatalf("crash with failover dropped %d requests", res.Dropped)
	}
	if res.HostShare < base.HostShare+0.1 {
		t.Fatalf("crash host share %.3f barely above baseline %.3f — no failover happened",
			res.HostShare, base.HostShare)
	}
	if res.Transitions != 2 {
		t.Fatalf("crash logged %d transitions, want begin+clear", res.Transitions)
	}
	p99Recovers(t, res, base)
}

func TestLinkFlapRetriesRescue(t *testing.T) {
	tr := faultTestTrace()
	scns := DefaultFaultScenarios(tr.Duration())
	r := NewRunner()
	base := r.RunFaulted(FaultScenario{Name: "baseline"}, testRouter(), tr, 2, 7)
	res := r.RunFaulted(scns[1], testRouter(), tr, 2, 7)

	if res.WireFramesLost == 0 {
		t.Fatal("flap lost no frames — the fault never landed")
	}
	if res.Retries == 0 || res.Rescued == 0 {
		t.Fatalf("flap recovered without retries (retries=%d rescued=%d)", res.Retries, res.Rescued)
	}
	if res.Dropped != 0 {
		t.Fatalf("flap dropped %d requests despite the retry budget covering the window", res.Dropped)
	}
	if res.MinDeliveredFrac > 0.5 {
		t.Fatalf("flap delivered fraction only dipped to %.2f; a dead wire should starve whole intervals",
			res.MinDeliveredFrac)
	}
	// Every fault-era request resolves within the policy's worst-case
	// retry schedule plus queue drain.
	bound := testRouter().Policy.MaxDelay() + 5*sim.Millisecond
	if res.RecoveryTime > bound {
		t.Fatalf("recovery took %v, beyond the backoff-schedule bound %v", res.RecoveryTime, bound)
	}
	p99Recovers(t, res, base)
}

func TestSnicThrottleReroutes(t *testing.T) {
	tr := faultTestTrace()
	scns := DefaultFaultScenarios(tr.Duration())
	r := NewRunner()
	base := r.RunFaulted(FaultScenario{Name: "baseline"}, testRouter(), tr, 2, 7)
	res := r.RunFaulted(scns[2], testRouter(), tr, 2, 7)

	if res.HostShare <= base.HostShare {
		t.Fatalf("throttle host share %.3f not above baseline %.3f — watermark never re-routed",
			res.HostShare, base.HostShare)
	}
	if res.P99Fault <= base.P99 {
		t.Fatalf("throttle p99 %v during the fault not above baseline %v — the fault had no effect",
			res.P99Fault, base.P99)
	}
	p99Recovers(t, res, base)
}

func TestBaselineRunIsCleanAndFaultFree(t *testing.T) {
	tr := faultTestTrace()
	r := NewRunner()
	base := r.RunFaulted(FaultScenario{Name: "baseline"}, testRouter(), tr, 2, 7)
	if base.Transitions != 0 || base.WireFramesLost != 0 || base.EngineRejected != 0 {
		t.Fatalf("baseline saw faults: %+v", base)
	}
	if base.Dropped != 0 {
		t.Fatalf("baseline dropped %d requests", base.Dropped)
	}
	// ~68 packets per interval makes the per-interval delivered fraction
	// noisy at the ±10% level even fault-free.
	if base.MinDeliveredFrac < 0.8 {
		t.Fatalf("baseline delivered fraction dipped to %.3f", base.MinDeliveredFrac)
	}
	if base.Completed != base.Total {
		t.Fatalf("baseline completed %d of %d", base.Completed, base.Total)
	}
}
