package core

import "testing"

// TestFunctionalAllBenchmarks drives every catalog function's REAL
// implementation over generated inputs and demands zero oracle failures
// — the execution-driven correctness half of the testbed.
func TestFunctionalAllBenchmarks(t *testing.T) {
	cases := []struct {
		fn, variant string
		n           int
	}{
		{"snort", "file_image", 2000},
		{"snort", "file_executable", 2000},
		{"rem", "file_flash", 2000},
		{"nat", "10K", 3000},
		{"bm25", "100docs", 300},
		{"redis", "workload_a", 3000},
		{"redis", "workload_c", 3000},
		{"mica", "batch4", 500},
		{"mica", "batch32", 200},
		{"crypto", "aes", 200},
		{"crypto", "sha1", 500},
		{"crypto", "rsa", 10},
		{"compress", "app", 5},
		{"compress", "txt", 5},
		{"ovs", "load100", 5000},
		{"fio", "write", 500},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.fn+"/"+tc.variant, func(t *testing.T) {
			t.Parallel()
			rep, err := RunFunctional(tc.fn, tc.variant, tc.n, 42)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Processed < 1 {
				t.Fatal("nothing processed")
			}
			if rep.Failures != 0 {
				t.Fatalf("%d oracle failures: %v", rep.Failures, rep)
			}
			if rep.Verified == 0 {
				t.Fatal("nothing verified against an oracle")
			}
		})
	}
}

func TestFunctionalUnknownFunction(t *testing.T) {
	if _, err := RunFunctional("bogus", "x", 10, 1); err == nil {
		t.Fatal("unknown function accepted")
	}
	if _, err := RunFunctional("crypto", "bogus", 10, 1); err == nil {
		t.Fatal("unknown crypto variant accepted")
	}
	if _, err := RunFunctional("nat", "10K", 0, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestFunctionalDeterministic(t *testing.T) {
	a, err := RunFunctional("snort", "file_flash", 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := RunFunctional("snort", "file_flash", 1000, 7)
	if a != b {
		t.Fatalf("functional runs differ: %v vs %v", a, b)
	}
}

func TestFunctionalNAT1MEntries(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 1M-entry table")
	}
	rep, err := RunFunctional("nat", "1M", 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures != 0 {
		t.Fatalf("failures on 1M-entry table: %v", rep)
	}
}
