package core

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/flow"
	"repro/internal/invariant"
	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// The offload workload family: flow-granular offload through a bounded
// eSwitch flow table under churn. Packets whose flow holds a resident
// rule reflect in hardware at line rate (the fast path); everything
// else climbs into the SNIC cores' software slow path, where the OvS
// datapath serves the packet and — for flows past the offload
// threshold — programs a rule through the serialized insertion queue.
// The family compares offload policies (static per-function, static
// per-flow threshold, adaptive) on SLO attainment and drop rate over
// churny elephant/mice traffic, the control-plane scenario space the
// paper's ideal-forwarder eSwitch never exposes.

// OffloadPolicyKind names an offload threshold policy family.
type OffloadPolicyKind string

// The policy kinds.
const (
	// OffloadStaticFunction offloads every flow from its first packet —
	// the static per-function advisor at flow granularity (K = 1).
	OffloadStaticFunction OffloadPolicyKind = "static-func"
	// OffloadStaticFlow offloads a flow after a fixed K slow-path
	// packets.
	OffloadStaticFlow OffloadPolicyKind = "static-flow"
	// OffloadAdaptive adapts K online from the table's own counters.
	OffloadAdaptive OffloadPolicyKind = "adaptive"
)

// OffloadPolicy is the pure-data policy spec (kept serializable for
// memo keys; build() turns it into the live flow.Policy).
type OffloadPolicy struct {
	Kind OffloadPolicyKind
	// Threshold is the fixed K for OffloadStaticFlow.
	Threshold int
	// Adaptive tunes the controller for OffloadAdaptive.
	Adaptive flow.AdaptiveConfig
}

// build instantiates the live policy. Validate must have accepted the
// spec first; an unknown kind panics.
func (p OffloadPolicy) build() flow.Policy {
	switch p.Kind {
	case OffloadStaticFunction:
		return flow.StaticFunction{}
	case OffloadStaticFlow:
		return flow.StaticThreshold{K: p.Threshold}
	case OffloadAdaptive:
		return flow.NewAdaptive(p.Adaptive)
	default:
		panic(fmt.Sprintf("core: unknown offload policy kind %q", p.Kind))
	}
}

// Key serializes the policy's identity and parameters for labels and
// memo keys.
func (p OffloadPolicy) Key() string { return p.build().Key() }

// validate checks the policy spec with workload-style typed errors.
func (p *OffloadPolicy) validate() error {
	fail := func(field, reason string) error {
		return &WorkloadError{Kind: WorkloadOffload, Field: field, Reason: reason}
	}
	switch p.Kind {
	case OffloadStaticFunction:
	case OffloadStaticFlow:
		if p.Threshold < 1 {
			return fail("Policy.Threshold", "must be at least 1 for static-flow")
		}
	case OffloadAdaptive:
		if err := p.Adaptive.Validate(); err != nil {
			return fail("Policy.Adaptive", err.Error())
		}
	default:
		return fail("Policy.Kind", fmt.Sprintf("unknown kind %q", p.Kind))
	}
	return nil
}

// OffloadSpec is the full input of one offload run.
type OffloadSpec struct {
	// Name labels the scenario in reports and run labels.
	Name string
	// Trace is the offered-load series the packets follow.
	Trace *trace.HyperscalerTrace
	// Mix decomposes the trace into flows.
	Mix trace.FlowMix
	// Table sizes the eSwitch flow table and its slow path.
	Table flow.TableConfig
	// Policy decides the offload threshold.
	Policy OffloadPolicy
	// ControlInterval is the controller's observation period.
	ControlInterval sim.Duration
	// SLO is the per-packet latency objective attainment is scored
	// against.
	SLO sim.Duration
	// Seed perturbs every derived random stream.
	Seed uint64
	// PktSize is the fixed L2 frame size.
	PktSize int
	// SlowBaseCycles/SlowPerByteCycles cost one slow-path packet on a
	// SNIC core (the OvS kernel datapath walk).
	SlowBaseCycles    float64
	SlowPerByteCycles float64
	// RuleDecisionCycles is the extra first-packet-of-flow cost: the
	// upcall that classifies the flow and decides on a rule.
	RuleDecisionCycles float64
	// SlowSigma is the slow path's log-normal jitter.
	SlowSigma float64
	// QueueCap bounds the slow path's service queue; overflow drops.
	QueueCap int
}

// ChurnTrace is the default offload scenario load: a bursty series
// whose bursts exceed the slow path's software capacity, so SLO and
// drop behavior hinge on how much mass the flow table keeps on the
// fast path when the burst lands.
func ChurnTrace() *trace.HyperscalerTrace {
	const baseGbps, burstGbps = 6, 26
	return BurstyTrace(baseGbps, burstGbps, 40, 5, 2*sim.Millisecond)
}

// DefaultOffloadSpec returns the calibrated churn scenario used by
// snicbench -exp offload. The mix narrows the default decomposition so
// flows live long enough within the trace for threshold filtering to
// matter, and forces slot churn throughout the run so the controller
// keeps seeing fresh flows.
func DefaultOffloadSpec() OffloadSpec {
	mix := trace.DefaultFlowMix()
	mix.Concurrency = 384
	mix.MiceMaxPkts = 16
	mix.ChurnPerPacket = 0.03
	// The table can hold the elephant working set once idle rules age
	// out, so the contested resource is the serialized insert path —
	// exactly the fight a low threshold loses under churn.
	table := flow.DefaultTableConfig()
	table.IdleTimeout = 3 * sim.Millisecond
	table.ThrashWindow = 500 * sim.Microsecond
	return OffloadSpec{
		Name:               "churn",
		Trace:              ChurnTrace(),
		Mix:                mix,
		Table:              table,
		Policy:             OffloadPolicy{Kind: OffloadAdaptive, Adaptive: flow.DefaultAdaptiveConfig()},
		ControlInterval:    500 * sim.Microsecond,
		SLO:                50 * sim.Microsecond,
		Seed:               42,
		PktSize:            nic.MTU,
		SlowBaseCycles:     6000,
		SlowPerByteCycles:  2,
		RuleDecisionCycles: 12000,
		SlowSigma:          0.2,
		QueueCap:           512,
	}
}

// DefaultOffloadPolicies returns the standard comparison set: static
// per-function, static per-flow threshold, and adaptive.
func DefaultOffloadPolicies() []OffloadPolicy {
	return []OffloadPolicy{
		{Kind: OffloadStaticFunction},
		{Kind: OffloadStaticFlow, Threshold: 8},
		{Kind: OffloadAdaptive, Adaptive: flow.DefaultAdaptiveConfig()},
	}
}

// Validate checks the spec, returning a typed *WorkloadError on the
// first problem.
func (s *OffloadSpec) Validate() error {
	fail := func(field, reason string) error {
		return &WorkloadError{Kind: WorkloadOffload, Field: field, Reason: reason}
	}
	if err := validTrace(WorkloadOffload, s.Trace); err != nil {
		return err
	}
	if err := s.Mix.Validate(); err != nil {
		return fail("Mix", err.Error())
	}
	if err := s.Table.Validate(); err != nil {
		return fail("Table", err.Error())
	}
	if err := s.Policy.validate(); err != nil {
		return err
	}
	switch {
	case s.ControlInterval <= 0:
		return fail("ControlInterval", "must be positive")
	case s.SLO <= 0:
		return fail("SLO", "must be positive")
	case s.PktSize <= 0:
		return fail("PktSize", "must be positive")
	case s.SlowBaseCycles < 0 || s.SlowPerByteCycles < 0 || s.RuleDecisionCycles < 0:
		return fail("SlowBaseCycles", "cycle costs must not be negative")
	case s.SlowSigma < 0:
		return fail("SlowSigma", "must not be negative")
	case s.QueueCap <= 0:
		return fail("QueueCap", "must be positive")
	}
	return nil
}

// OffloadResult is one offload run's scorecard.
type OffloadResult struct {
	Name   string
	Policy string
	SLO    sim.Duration

	Sent, Completed, Dropped uint64
	FastPath, SlowPath       uint64

	// SLOAttainment is the fraction of sent packets completing within
	// SLO; DropRate the fraction shed at the slow path's queue.
	SLOAttainment float64
	DropRate      float64
	P99           sim.Duration
	AvgTputGbps   float64
	AvgPowerW     float64

	// Flow-plane accounting.
	FlowsStarted, FlowsChurned uint64
	Inserts, Evictions         uint64
	InsertRejects, InsertAborts uint64
	Thrash                     uint64
	OccupancyPeak              int
	// ThresholdMin/Max/Final trace the policy's K over the run.
	ThresholdMin, ThresholdMax, ThresholdFinal int
}

// FastPathShare is the fraction of packets the hardware handled.
func (o *OffloadResult) FastPathShare() float64 {
	if o.Sent == 0 {
		return 0
	}
	return float64(o.FastPath) / float64(o.Sent)
}

// RunOffload measures one offload spec, memoized like every family.
func (r *Runner) RunOffload(spec OffloadSpec) OffloadResult {
	res, err := r.Execute(Workload{Kind: WorkloadOffload, Offload: &spec})
	if err != nil {
		panic(err)
	}
	return *res.Offload
}

// OffloadExperiment measures one scenario under each policy, in
// submission order (deterministic at any parallelism).
func (r *Runner) OffloadExperiment(spec OffloadSpec, policies []OffloadPolicy) []OffloadResult {
	out := make([]OffloadResult, len(policies))
	prog := r.newProgress(len(policies))
	r.forEachN(len(policies), func(i int) {
		s := spec
		s.Policy = policies[i]
		out[i] = r.RunOffload(s)
		prog.step("offload " + policies[i].Key())
	})
	return out
}

// runOffloadMemo is the memoized offload implementation behind Execute.
func (r *Runner) runOffloadMemo(spec *OffloadSpec) OffloadResult {
	key := offloadKey(spec, r.TBConfig)
	if res, ok := r.cache.lookupOffload(key); ok {
		return res
	}
	res := r.runOffload(spec)
	r.cache.storeOffload(key, res)
	return res
}

// offloadctx is the per-run wiring of one offload simulation.
type offloadctx struct {
	tb   *Testbed
	spec *OffloadSpec

	tbl      *flow.Table
	ctl      *flow.Controller
	asn      *trace.FlowAssigner
	pool     *cpu.Pool
	arrivals *trace.Arrivals
	jit      *sim.RNG

	hist  *stats.Histogram
	meter *stats.Meter

	sent, done, dropped uint64
	fast, slow          uint64
	lastSend            sim.Time

	rec *obs.Recorder
	chk *invariant.Checker
}

// runOffload executes one offload run on a fresh testbed.
func (r *Runner) runOffload(spec *OffloadSpec) OffloadResult {
	r.sims.Add(1)
	key := offloadKey(spec, r.TBConfig)
	label := fmt.Sprintf("offload %s | %s | seed %d", spec.Name, spec.Policy.Key(), spec.Seed)
	seed := r.runSeed(spec.Seed)
	tbc := r.TBConfig
	tbc.Seed ^= seed
	tb := NewTestbed(tbc)
	eng := tb.Eng

	// The slow path lives on the SNIC cores: on-path mode, Arm cores
	// polling, no traffic crossing into host memory.
	tb.ActivateSNICPools(1, 0)
	tb.SetPolling(SNICCPU, true)
	tb.SetHostTrafficShare(0)

	mix := spec.Mix
	mix.Seed ^= seed * 0x51ed2701

	ctx := &offloadctx{
		tb:       tb,
		spec:     spec,
		tbl:      flow.NewTable(eng, spec.Table),
		asn:      mix.NewAssigner(),
		arrivals: trace.NewPoissonArrivals(seed ^ 0xabcdef),
		jit:      sim.NewRNG(seed ^ 0x1234),
		hist:     stats.NewHistogram(),
	}
	ctx.ctl = flow.NewController(ctx.tbl, spec.Policy.build())
	ctx.pool = tb.SNICPool
	ctx.pool.JitterSigma = 0
	ctx.pool.SetQueueCapacity(spec.QueueCap)

	ctx.rec = r.newRecorder(key, label)
	ctx.chk = r.newChecker(label)
	// flow/ gauges must register before instrumentTestbed starts the
	// sampler: gauges added after StartSampler are never polled.
	if ctx.rec != nil {
		tbl := ctx.tbl
		ctx.rec.Gauge("flow/table/occupancy", "rules", 0, func() float64 { return float64(tbl.Occupancy()) })
		ctx.rec.Gauge("flow/table/pending", "inserts", 0, func() float64 { return float64(tbl.PendingInserts()) })
	}
	instrumentTestbed(tb, ctx.rec, ctx.chk)

	tb.Sw.Program(nic.FlowSteer(eng, ctx.tbl, nic.ToWire, nic.ToSNICCPU))
	tb.Sw.Connect(nic.ToWire, ctx.fastSink)
	tb.Sw.Connect(nic.ToSNICCPU, ctx.slowSink)

	eng.Ticker(spec.ControlInterval, func() { ctx.ctl.Tick(eng.Now()) })

	interval := spec.Trace.Interval
	var runInterval func(i int)
	runInterval = func(i int) {
		if i >= len(spec.Trace.RatesGbps) {
			ctx.lastSend = eng.Now()
			return
		}
		rate := spec.Trace.RatesGbps[i]
		end := eng.Now().Add(interval)
		var submit func()
		submit = func() {
			if eng.Now() >= end {
				runInterval(i + 1)
				return
			}
			if rate > 0 {
				ctx.sent++
				flowID, _ := ctx.asn.Next()
				pkt := &nic.Packet{Seq: ctx.sent, Size: spec.PktSize, Flow: flowID,
					SentAt: eng.Now(), Span: uint32(ctx.open())}
				ctx.chk.Inject(pkt.Seq, pkt.Size, eng.Now())
				tb.Wire.SendToServer(pkt, tb.Sw.Ingress)
				eng.After(ctx.arrivals.Gap(pkt.Size, rate*1e9), submit)
			} else {
				eng.At(end, submit)
			}
		}
		submit()
	}
	eng.At(0, func() { runInterval(0) })
	eng.Run()

	r.finishOffloadChecks(ctx)
	r.finishOffloadRecorder(ctx)

	c := ctx.tbl.Counters()
	res := OffloadResult{
		Name:          spec.Name,
		Policy:        spec.Policy.Key(),
		SLO:           spec.SLO,
		Sent:          ctx.sent,
		Completed:     ctx.done,
		Dropped:       ctx.dropped,
		FastPath:      ctx.fast,
		SlowPath:      ctx.slow,
		P99:           ctx.hist.P99(),
		FlowsStarted:  ctx.asn.FlowsStarted(),
		FlowsChurned:  ctx.asn.FlowsChurned(),
		Inserts:       c.Inserts,
		Evictions:     c.Evictions,
		InsertRejects: c.InsertRejects,
		InsertAborts:  c.InsertAborts,
		Thrash:        c.Thrash,
		OccupancyPeak: ctx.tbl.OccupancyPeak(),
	}
	res.ThresholdMin, res.ThresholdMax, res.ThresholdFinal = ctx.ctl.ThresholdRange()
	if ctx.sent > 0 {
		res.SLOAttainment = float64(ctx.hist.CountAtOrBelow(spec.SLO)) / float64(ctx.sent)
		res.DropRate = float64(ctx.dropped) / float64(ctx.sent)
	}
	if ctx.meter != nil {
		ctx.meter.Close(ctx.lastSend)
		res.AvgTputGbps = ctx.meter.Gbps()
	}
	res.AvgPowerW = float64(tb.Power.Server.Power())
	return res
}

// fastSink is the hardware fast path: the resident rule reflects the
// packet straight back out the port — no CPU, no queueing, only the
// return wire.
func (ctx *offloadctx) fastSink(pkt *nic.Packet) {
	eng := ctx.tb.Eng
	ctx.fast++
	ctx.chk.FlowFast(pkt.Seq, eng.Now())
	ctx.noteTable()
	root := obs.SpanID(pkt.Span)
	ctx.stage(root, spanIngress, pkt.SentAt, eng.Now())
	txAt := eng.Now()
	resp := &nic.Packet{Seq: pkt.Seq, Size: pkt.Size, SentAt: pkt.SentAt}
	ctx.tb.Wire.SendToClient(resp, func(p *nic.Packet) {
		ctx.stage(root, spanReturn, txAt, eng.Now())
		ctx.close(root)
		ctx.chk.Complete(pkt.Seq, pkt.Size, eng.Now())
		ctx.record(eng.Now().Sub(p.SentAt), pkt.Size)
	})
}

// slowSink is the software slow path: an SNIC core walks the OvS
// datapath (plus the first-packet rule-decision upcall), then the
// response returns over the wire. A full service queue drops.
func (ctx *offloadctx) slowSink(pkt *nic.Packet) {
	eng := ctx.tb.Eng
	ctx.slow++
	ctx.chk.FlowSlow(pkt.Seq, eng.Now())
	n := ctx.ctl.OnMiss(pkt.Flow)
	ctx.noteTable()
	root := obs.SpanID(pkt.Span)
	ctx.stage(root, spanIngress, pkt.SentAt, eng.Now())
	spec := ctx.tb.SNICSpec
	cycles := ctx.spec.SlowBaseCycles + ctx.spec.SlowPerByteCycles*float64(pkt.Size)
	if n == 1 {
		// First packet of the flow: classify it and decide on a rule.
		cycles += ctx.spec.RuleDecisionCycles
	}
	svc := ctx.jit.LogNormalDur(sim.Cycles(cycles/spec.IPC, spec.BaseHz), ctx.spec.SlowSigma)
	arrive := eng.Now()
	ok := ctx.pool.ExecDuration(svc, func(s, e sim.Time) {
		if root != 0 && s > arrive {
			ctx.stage(root, spanQueue, arrive, s)
		}
		ctx.stage(root, spanService, s, e)
		txAt := eng.Now()
		resp := &nic.Packet{Seq: pkt.Seq, Size: pkt.Size, SentAt: pkt.SentAt}
		ctx.tb.Wire.SendToClient(resp, func(p *nic.Packet) {
			ctx.stage(root, spanReturn, txAt, eng.Now())
			ctx.close(root)
			ctx.chk.Complete(pkt.Seq, pkt.Size, eng.Now())
			ctx.record(eng.Now().Sub(p.SentAt), pkt.Size)
		})
	})
	if !ok {
		ctx.dropped++
		ctx.ctl.NoteDrop()
		ctx.chk.FlowSlowDrop(pkt.Seq, eng.Now())
		ctx.chk.Drop(pkt.Seq, pkt.Size, eng.Now())
	}
}

// noteTable validates the table's bounds at the current instant.
func (ctx *offloadctx) noteTable() {
	ctx.chk.FlowTableOccupancy(ctx.tbl.Occupancy(), ctx.tbl.Capacity(),
		ctx.tbl.PendingInserts(), ctx.spec.Table.InsertQueueCap, ctx.tb.Eng.Now())
}

// record tallies one completion (replay semantics: the first completion
// opens the throughput meter, the rest are the measurement).
func (ctx *offloadctx) record(rtt sim.Duration, bytes int) {
	ctx.done++
	if ctx.done == 1 {
		ctx.meter = stats.NewMeter(ctx.tb.Eng.Now())
		return
	}
	ctx.hist.Record(rtt)
	if ctx.lastSend > 0 && ctx.tb.Eng.Now() > ctx.lastSend {
		return
	}
	ctx.meter.Mark(ctx.tb.Eng.Now(), bytes)
}

// open/stage/close are the runctx span helpers for the offload context.
func (ctx *offloadctx) open() obs.SpanID {
	if ctx.rec == nil {
		return 0
	}
	return ctx.rec.Open(obs.TrackRequests, spanRequest, ctx.tb.Eng.Now())
}

func (ctx *offloadctx) stage(root obs.SpanID, name string, start, end sim.Time) {
	if root == 0 {
		return
	}
	ctx.rec.Span(obs.TrackRequests, name, root, start, end)
}

func (ctx *offloadctx) close(root obs.SpanID) {
	if root == 0 {
		return
	}
	ctx.rec.Close(root, ctx.tb.Eng.Now())
}

// finishOffloadChecks mirrors finishChecks for the offload context.
func (r *Runner) finishOffloadChecks(ctx *offloadctx) {
	if ctx.chk == nil {
		return
	}
	now := ctx.tb.Eng.Now()
	ctx.chk.VerifyCounts(ctx.sent, ctx.done, now)
	if err := ctx.chk.Finish(now); err != nil {
		panic(err)
	}
	if err := invariant.CheckSpans(ctx.rec, invariant.SpanCheckOpts{}); err != nil {
		panic(err)
	}
}

// finishOffloadRecorder stamps end-of-run counters — including the
// scoped flow/ control-plane set — and attaches the recorder.
func (r *Runner) finishOffloadRecorder(ctx *offloadctx) {
	r.Prof.NoteEngine(ctx.tb.Eng)
	rec := ctx.rec
	if rec == nil {
		return
	}
	rec.SetCount("requests.sent", float64(ctx.sent))
	rec.SetCount("requests.completed", float64(ctx.done))
	rec.SetCount("pool.shed", float64(ctx.pool.Dropped()))
	rec.SetCount("wire.lost", float64(ctx.tb.Wire.Lost()))
	c := ctx.tbl.Counters()
	sc := rec.Metrics().Scope("flow")
	sc.Counter("fast-path", "pkts").Set(float64(ctx.fast))
	sc.Counter("slow-path", "pkts").Set(float64(ctx.slow))
	sc.Counter("inserts", "rules").Set(float64(c.Inserts))
	sc.Counter("evictions", "rules").Set(float64(c.Evictions))
	sc.Counter("insert-rejects", "rules").Set(float64(c.InsertRejects))
	sc.Counter("insert-aborts", "rules").Set(float64(c.InsertAborts))
	sc.Counter("thrash", "rules").Set(float64(c.Thrash))
	sc.Counter("flows-started", "flows").Set(float64(ctx.asn.FlowsStarted()))
	sc.Counter("flows-churned", "flows").Set(float64(ctx.asn.FlowsChurned()))
	r.Telemetry.Attach(rec)
}
