package core

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/cpu"
	"repro/internal/funcs/compressfn"
	"repro/internal/funcs/cryptofn"
	"repro/internal/mem"
	"repro/internal/netstack"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Category groups Fig. 4's bars.
type Category string

const (
	// CategoryMicro is the §3.3 networking-stack microbenchmarks.
	CategoryMicro Category = "microbenchmark"
	// CategorySoftware is Fig. 4's "Software Only Function" group.
	CategorySoftware Category = "software-only"
	// CategoryAccelerated is the "Hardware Accelerated Function" group.
	CategoryAccelerated Category = "hardware-accelerated"
)

// Mode selects the runner's driving discipline.
type Mode string

const (
	// ModeNetServe: open-loop request/response over the wire (most
	// functions).
	ModeNetServe Mode = "net-serve"
	// ModeLocal: closed-loop local processing, no client traffic
	// (Cryptography, Compression — §3.4 runs them "locally on the
	// server without processing TCP/UDP packets").
	ModeLocal Mode = "local"
	// ModeStorage: fio over NVMe-oF — closed-loop block I/O against the
	// remote RAMDisk with the NVMe-oF offload engine in the NIC.
	ModeStorage Mode = "storage"
	// ModeSwitched: OvS — data plane forwarded by the eSwitch in
	// hardware on both platforms; the CPU runs only the control plane.
	ModeSwitched Mode = "switched"
)

// EngineKind names the accelerator behind a SNICAccel run.
type EngineKind string

const (
	EngineNone    EngineKind = ""
	EngineREM     EngineKind = "rem"
	EngineDeflate EngineKind = "deflate"
	EnginePKABulk EngineKind = "pka-bulk"
	EnginePKAOp   EngineKind = "pka-op"
)

// Config describes one benchmark variant of Table 3 with its calibrated
// cost model. Host application costs are set from first principles
// (cycles of real work per request); where the paper reports a
// throughput ratio for a CPU-vs-CPU comparison, the SNICFactor is solved
// analytically from it (see solveSNICFactor).
type Config struct {
	Function string
	Variant  string
	Stack    netstack.Kind
	Category Category
	Mode     Mode
	// Platforms this variant runs on (Table 3's HC/SC/SA columns).
	Platforms []Platform

	// ReqSize/RespSize are wire payload bytes. Mixed replaces ReqSize
	// with the CTU-style bimodal distribution (REM's PCAP replay).
	ReqSize, RespSize int
	Mixed             bool
	// Closed > 0 runs closed-loop with that many outstanding operations.
	// ClosedSNIC overrides the depth on the SNIC platforms: reaching the
	// accelerators' maximum throughput requires far deeper pipelines
	// (batch assembly) than a CPU needs — the throughput/latency trade
	// behind the accelerators' worst-case p99.
	Closed     int
	ClosedSNIC int

	// Cores per platform; zero means the testbed default (8/8, 2 staging).
	HostCores, SNICCores int

	// Application service model (beyond stack costs), host cycles.
	HostBaseCycles, HostPerByteCycles float64
	// SNICFactor multiplies app cycles on the Arm cores (derived from
	// WantTputRatio for net-served entries; manual elsewhere).
	SNICFactor float64
	// Service-time jitter sigmas (log-normal). High host sigma models
	// match-heavy inputs whose occasional expensive packets blow up the
	// tail (REM file_image).
	HostSigma, SNICSigma float64

	// Memory model.
	MemIntensity   float64
	WorkingSetHost int64
	WorkingSetSNIC int64

	// Rate-based local functions: the platform processes payload at
	// these rates instead of a cycle model (ISA-extension paths).
	HostRateBits float64 // bits/s (AES, SHA, Deflate with ISA-L)
	HostRateOps  float64 // ops/s (RSA)
	LocalOpBytes int     // bytes per local op (chunk size)

	// Accelerator binding.
	Engine  EngineKind
	PKAAlgo accel.PKAAlgo

	// Extra one-way fixed latency per platform (calibrated residuals,
	// e.g. fio's read/write asymmetry between verbs initiators).
	ExtraLatency map[Platform]sim.Duration

	// OvS: fraction of packets that miss the hardware datapath and cost
	// a control-plane upcall.
	UpcallFrac float64

	// KneeP99Mult defines "maximum sustainable throughput": the highest
	// rate whose p99 stays within this multiple of light-load p99
	// (Fig. 5's "reasonable p99" criterion). Zero means the default 3×;
	// a huge value reduces the criterion to delivered≈offered, which is
	// how throughput-oriented saturation runs (Redis, Snort, REM
	// file_image's deliberately blown tail) are driven.
	KneeP99Mult float64

	// MixedExtraCycles is host-only extra per-packet work that appears
	// under real-trace traffic (Fig. 4's PCAP replay) but not under
	// synthetic uniform payloads (Fig. 5): candidate-match verification
	// in the software REM path. The RXP engine verifies in hardware.
	MixedExtraCycles float64

	// Paper targets for EXPERIMENTS.md and invariant tests, SNIC÷host.
	// Zero means the paper gives no number. Assigned marks values chosen
	// inside a paper-reported range rather than quoted directly.
	WantTputRatio, WantP99Ratio float64
	Assigned                    bool
}

// deliveredOnly makes the knee criterion pure delivered≈offered.
const deliveredOnly = 1e9

// Name returns "function/variant".
func (c *Config) Name() string { return c.Function + "/" + c.Variant }

// SNICPlatform returns the non-host platform this variant is evaluated
// on in Fig. 4 (the accelerator when one exists, else the SNIC CPU).
func (c *Config) SNICPlatform() Platform {
	for _, p := range c.Platforms {
		if p == SNICAccel {
			return p
		}
	}
	return SNICCPU
}

// HasPlatform reports whether the variant runs on p.
func (c *Config) HasPlatform(p Platform) bool {
	for _, q := range c.Platforms {
		if q == p {
			return true
		}
	}
	return false
}

// Catalog returns every benchmark variant of Table 3 plus the §3.3
// microbenchmarks, fully calibrated. The order matches the paper's
// figure layout: microbenchmarks, then software-only, then
// hardware-accelerated.
func Catalog() []*Config {
	hcSc := []Platform{HostCPU, SNICCPU}
	hcScSa := []Platform{HostCPU, SNICCPU, SNICAccel}

	var out []*Config

	// --- Microbenchmarks (§3.3) ---
	for _, v := range []struct {
		size      int
		tput, p99 float64
	}{
		// Paper: SNIC UDP is 76.5–85.7% lower tput, 1.1–1.4× p99;
		// small packets are hit hardest (assigned to 64 B).
		{64, 0.143, 1.40},
		{1024, 0.235, 1.10},
	} {
		out = append(out, &Config{
			Function: "udp-echo", Variant: fmt.Sprintf("%dB", v.size),
			Stack: netstack.KindUDP, Category: CategoryMicro, Mode: ModeNetServe,
			Platforms: hcSc, ReqSize: v.size, RespSize: v.size,
			HostBaseCycles: 300, SNICFactor: -1, // solved
			KneeP99Mult:   1.3,
			WantTputRatio: v.tput, WantP99Ratio: v.p99, Assigned: true,
		})
	}
	for _, v := range []struct {
		size int
		tput float64
	}{
		{64, 0},     // paper gives no DPDK 64 B number; emergent
		{1024, 1.0}, // both platforms reach line rate (§3.3)
	} {
		out = append(out, &Config{
			Function: "dpdk-pingpong", Variant: fmt.Sprintf("%dB", v.size),
			Stack: netstack.KindDPDK, Category: CategoryMicro, Mode: ModeNetServe,
			Platforms: hcSc, ReqSize: v.size, RespSize: v.size,
			HostCores: 1, SNICCores: 1,
			HostBaseCycles: 15, SNICFactor: 1.0,
			KneeP99Mult:   deliveredOnly,
			WantTputRatio: v.tput,
		})
	}
	// RDMA perftest: SNIC up to 1.4× tput, 14.6–24.3% lower p99 (the
	// host's longer path to the NIC transport engine). Fig. 4 shows the
	// 1 KB numbers; the stack-cost asymmetry alone produces the gap
	// (the solver clamps: the verbs path IS the workload).
	out = append(out, &Config{
		Function: "rdma-perftest", Variant: "1KB",
		Stack: netstack.KindRDMA, Category: CategoryMicro, Mode: ModeNetServe,
		Platforms: hcSc, ReqSize: 1024, RespSize: 1024,
		HostCores: 1, SNICCores: 1,
		HostBaseCycles: 60, SNICFactor: -1, // solved (clamps to stack-determined)
		KneeP99Mult:   2.0,
		WantTputRatio: 1.40, WantP99Ratio: 0.78,
	})

	// --- Software-only functions ---
	// Redis + YCSB: TCP, 1 KB records, 30 K loaded.
	for _, v := range []struct {
		w         string
		tput, p99 float64
	}{
		{"workload_a", 0.45, 2.0},
		{"workload_b", 0.50, 1.8},
		{"workload_c", 0.55, 1.6},
	} {
		out = append(out, &Config{
			Function: "redis", Variant: v.w,
			Stack: netstack.KindTCP, Category: CategorySoftware, Mode: ModeNetServe,
			Platforms: hcSc, ReqSize: 96, RespSize: 1064,
			// Zipf-skewed YCSB traffic serves mostly from cache: the
			// DRAM intensity per request is low.
			HostBaseCycles: 5200, HostPerByteCycles: 0.55, SNICFactor: -1,
			MemIntensity: 0.05, WorkingSetHost: 33 << 20, WorkingSetSNIC: 33 << 20,
			KneeP99Mult:   1.8,
			WantTputRatio: v.tput, WantP99Ratio: v.p99, Assigned: true,
		})
	}
	// Snort: UDP packet inspection against the three rule sets.
	for _, v := range []struct {
		set       string
		tput, p99 float64
	}{
		{"file_image", 0.35, 2.8},
		{"file_flash", 0.40, 2.4},
		{"file_executable", 0.45, 2.2},
	} {
		// Snort's full rule engine (libpcap, decode, detection, logging)
		// costs tens of kilocycles per packet — it is famously an order
		// of magnitude slower than Hyperscan — which dilutes the UDP
		// stack gap and keeps the SNIC ratio above the raw UDP micro's.
		out = append(out, &Config{
			Function: "snort", Variant: v.set,
			Stack: netstack.KindUDP, Category: CategorySoftware, Mode: ModeNetServe,
			Platforms: hcSc, ReqSize: 1024, RespSize: 256,
			HostBaseCycles: 26000, HostPerByteCycles: 1.9, SNICFactor: -1,
			MemIntensity: 0.25, WorkingSetHost: 5 << 20, WorkingSetSNIC: 5 << 20,
			KneeP99Mult:   deliveredOnly,
			WantTputRatio: v.tput, WantP99Ratio: v.p99, Assigned: true,
		})
	}
	// NAT: tiny per-packet work, stack-dominated; the 1 M-entry table
	// spills the SNIC's 6 MB LLC.
	for _, v := range []struct {
		entries   string
		ws        int64
		tput, p99 float64
	}{
		// NAT's app work is one lookup — the UDP stack is ~98% of the
		// packet cost, so the achievable ratio is pinned near the raw
		// UDP stack gap (assigned at the stack-determined values).
		{"10K", 10_000 * 96, 0.20, 1.3},
		{"1M", 1_000_000 * 96, 0.115, 1.5},
	} {
		out = append(out, &Config{
			Function: "nat", Variant: v.entries,
			Stack: netstack.KindUDP, Category: CategorySoftware, Mode: ModeNetServe,
			Platforms: hcSc, ReqSize: 256, RespSize: 256,
			HostBaseCycles: 380, SNICFactor: -1,
			MemIntensity: 0.45, WorkingSetHost: v.ws, WorkingSetSNIC: v.ws,
			KneeP99Mult:   1.3,
			WantTputRatio: v.tput, WantP99Ratio: v.p99, Assigned: true,
		})
	}
	// BM25: the heaviest app compute in the suite; the 1 K-document
	// corpus is where the SNIC collapses to ~0.1× (the bottom of the
	// paper's 0.1–3.5× range, assigned here).
	for _, v := range []struct {
		docs      string
		cycles    float64
		tput, p99 float64
	}{
		{"100docs", 42_000, 0.30, 2.5},
		{"1Kdocs", 340_000, 0.105, 3.2},
	} {
		out = append(out, &Config{
			Function: "bm25", Variant: v.docs,
			Stack: netstack.KindUDP, Category: CategorySoftware, Mode: ModeNetServe,
			Platforms: hcSc, ReqSize: 128, RespSize: 192,
			HostBaseCycles: v.cycles, SNICFactor: -1,
			MemIntensity: 0.30, WorkingSetHost: 4 << 20, WorkingSetSNIC: 4 << 20,
			KneeP99Mult:   2.0,
			WantTputRatio: v.tput, WantP99Ratio: v.p99, Assigned: true,
		})
	}
	// MICA: RDMA batched GETs (19.5–54.5% lower tput, 6.7–26.2% higher
	// p99). The client-side batch assembly adds a fixed latency floor on
	// both platforms, which is what keeps the p99 gap far below the
	// service-time gap.
	for _, v := range []struct {
		batch     int
		tput, p99 float64
	}{
		{4, 0.455, 1.262},
		{32, 0.805, 1.067},
	} {
		out = append(out, &Config{
			Function: "mica", Variant: fmt.Sprintf("batch%d", v.batch),
			Stack: netstack.KindRDMA, Category: CategorySoftware, Mode: ModeNetServe,
			Platforms: hcSc,
			ReqSize:   40 + v.batch*16, RespSize: 40 + v.batch*40,
			HostBaseCycles: 800 + float64(v.batch)*600, SNICFactor: -1,
			MemIntensity: 0.40, WorkingSetHost: 24 << 20, WorkingSetSNIC: 24 << 20,
			ExtraLatency: map[Platform]sim.Duration{
				HostCPU: 18 * sim.Microsecond, SNICCPU: 18 * sim.Microsecond,
			},
			KneeP99Mult:   2.5,
			WantTputRatio: v.tput, WantP99Ratio: v.p99,
		})
	}
	// fio over NVMe-oF: 64 KB blocks, iodepth 4, RAMDisk target with the
	// NVMe-oF offload engine. Max throughput is wire-limited on both
	// platforms (paper: "almost the same"); the p99 asymmetry lives in
	// the initiators' read vs write completion paths.
	for _, v := range []struct {
		op        string
		p99       float64
		hostExtra sim.Duration
		snicExtra sim.Duration
	}{
		// Host 36% lower p99 on reads; 18.2% higher on writes.
		{"read", 1.5625, 0, 26 * sim.Microsecond},
		{"write", 0.846, 14 * sim.Microsecond, 0},
	} {
		out = append(out, &Config{
			Function: "fio", Variant: v.op,
			Stack: netstack.KindRDMA, Category: CategorySoftware, Mode: ModeStorage,
			// iodepth 4 × 2 jobs keeps the wire (not the round trip)
			// the bottleneck, as in the paper's equal-throughput runs.
			Platforms: hcSc, ReqSize: 96, RespSize: 64 << 10, Closed: 8,
			HostCores: 1, SNICCores: 1,
			HostBaseCycles: 2600, SNICFactor: 1.0,
			MemIntensity: 0.6, WorkingSetHost: 64 << 20, WorkingSetSNIC: 14 << 20,
			ExtraLatency: map[Platform]sim.Duration{
				HostCPU: v.hostExtra, SNICCPU: v.snicExtra,
			},
			WantTputRatio: 1.0, WantP99Ratio: v.p99,
		})
	}

	// --- Hardware-accelerated functions ---
	// Cryptography: run locally, one host core with ISA paths
	// (AES-NI/RDRAND) versus one staging core feeding the PKA engine.
	// Throughput ratios are the Fig. 4 discussion numbers; the paper
	// gives no crypto p99, so the latency targets are the emergent
	// service-time ratios (assigned).
	out = append(out,
		&Config{
			Function: "crypto", Variant: "aes",
			Stack: netstack.KindTCP, Category: CategoryAccelerated, Mode: ModeLocal,
			Platforms: hcScSa, Closed: 1, LocalOpBytes: 64 << 10,
			HostCores: 1, SNICCores: 1,
			HostRateBits: cryptofn.CalibratedHostRates().AESBits,
			SNICFactor:   6.5, // table-based AES on A72, no AES-NI
			Engine:       EnginePKABulk, PKAAlgo: accel.AlgoAES,
			WantTputRatio: 1 / 1.385, WantP99Ratio: 1.05, Assigned: true,
		},
		&Config{
			Function: "crypto", Variant: "rsa",
			Stack: netstack.KindTCP, Category: CategoryAccelerated, Mode: ModeLocal,
			Platforms: hcScSa, Closed: 1, LocalOpBytes: 256,
			HostCores: 1, SNICCores: 1,
			HostRateOps: cryptofn.CalibratedHostRates().RSAOps,
			SNICFactor:  3.0,
			Engine:      EnginePKAOp, PKAAlgo: accel.AlgoRSA,
			WantTputRatio: 1 / 1.912, WantP99Ratio: 1.45, Assigned: true,
		},
		&Config{
			Function: "crypto", Variant: "sha1",
			Stack: netstack.KindTCP, Category: CategoryAccelerated, Mode: ModeLocal,
			Platforms: hcScSa, Closed: 1, LocalOpBytes: 64 << 10,
			HostCores: 1, SNICCores: 1,
			HostRateBits: cryptofn.CalibratedHostRates().SHABits,
			SNICFactor:   2.0,
			Engine:       EnginePKABulk, PKAAlgo: accel.AlgoSHA,
			WantTputRatio: 1.894, WantP99Ratio: 0.40, Assigned: true,
		},
	)
	// REM: DPDK packets. Fig. 4 replays the mixed-size PCAP-style trace;
	// Fig. 5 sweeps MTU packets. file_image: many short patterns →
	// expensive per-byte scan, frequent candidate matches to verify
	// under real traffic (MixedExtraCycles), and a heavy service tail
	// (HostSigma) whose p99 "increases dramatically" past the knee. The
	// host is pushed to its raw-throughput max there (deliveredOnly), so
	// its p99 at the measured point is awful and the engine's flat
	// ~25 µs wins ~10× — the 0.1× bottom of the paper's p99 range. The
	// selective sets stay clean (tight knee, ~5 µs host p99) and beat
	// the engine's batching latency ~5×.
	for _, v := range []struct {
		set        string
		base, perB float64
		mixedExtra float64
		sigma      float64
		knee       float64
		tput, p99  float64
	}{
		// file_image cycle costs are medians; its 1.15 sigma makes the
		// mean ~1.94× the median, which is what the capacity targets
		// are calibrated against.
		{"file_image", 330, 1.14, 2100, 1.15, deliveredOnly, 1.8, 0.10},
		{"file_flash", 440, 1.8, 150, 0.25, 2.5, 0.60, 4.7},
		{"file_executable", 420, 1.75, 150, 0.25, 2.5, 0.60, 4.9},
	} {
		out = append(out, &Config{
			Function: "rem", Variant: v.set,
			Stack: netstack.KindDPDK, Category: CategoryAccelerated, Mode: ModeNetServe,
			Platforms: hcScSa, Mixed: true, ReqSize: 745, RespSize: 32,
			HostBaseCycles: v.base, HostPerByteCycles: v.perB,
			MixedExtraCycles: v.mixedExtra,
			HostSigma:        v.sigma, SNICFactor: 3.2,
			MemIntensity: 0.3, WorkingSetHost: 18 << 20, WorkingSetSNIC: 18 << 20,
			Engine:        EngineREM,
			KneeP99Mult:   v.knee,
			WantTputRatio: v.tput, WantP99Ratio: v.p99,
		})
	}
	// Compression: Deflate level 9 over 64 KB corpus chunks, closed
	// loop (dpdk-test-compress-perf style). Host = single-core ISA-L;
	// engine wins 3.5× on throughput but pays batch assembly and a deep
	// pipeline — the 13.8× top of the paper's p99 range (assigned).
	for _, v := range []struct {
		input     compressfn.Input
		tput, p99 float64
	}{
		{compressfn.InputApp, 3.5, 13.8},
		{compressfn.InputTxt, 3.5, 12.0},
	} {
		out = append(out, &Config{
			Function: "compress", Variant: string(v.input),
			Stack: netstack.KindDPDK, Category: CategoryAccelerated, Mode: ModeLocal,
			Platforms: hcScSa, Closed: 1, ClosedSNIC: 64, LocalOpBytes: compressfn.ChunkBytes,
			HostCores: 1, SNICCores: 1,
			HostRateBits:  compressfn.HostRates(v.input),
			SNICFactor:    3.2,
			Engine:        EngineDeflate,
			WantTputRatio: v.tput, WantP99Ratio: v.p99, Assigned: true,
		})
	}
	// OvS: data plane in the eSwitch on both platforms (MTU packets at
	// 10% and 100% of line rate); the CPU handles only control-plane
	// upcalls, so throughput and p99 are platform-independent while
	// power is not.
	for _, v := range []struct {
		load   string
		upcall float64
	}{
		{"load10", 0.004},
		{"load100", 0.002},
	} {
		out = append(out, &Config{
			Function: "ovs", Variant: v.load,
			Stack: netstack.KindDPDK, Category: CategoryAccelerated, Mode: ModeSwitched,
			Platforms: hcScSa, ReqSize: nicMTU, RespSize: nicMTU,
			HostBaseCycles: 9000, SNICFactor: 1.6,
			UpcallFrac:    v.upcall,
			WantTputRatio: 1.0, WantP99Ratio: 1.0, Assigned: true,
		})
	}

	// Solve the Arm factors for every CPU-vs-CPU net-served entry with a
	// throughput target.
	for _, c := range out {
		//snicvet:ignore floateq -1 is an exact sentinel assigned above, never the result of arithmetic
		if c.SNICFactor == -1 {
			if c.WantTputRatio > 0 && c.Mode == ModeNetServe {
				c.SNICFactor = solveSNICFactor(c)
			} else {
				c.SNICFactor = 1.0
			}
		}
	}
	return out
}

const nicMTU = 1500

// Lookup returns the catalog entry for function/variant.
func Lookup(function, variant string) (*Config, error) {
	for _, c := range Catalog() {
		if c.Function == function && c.Variant == variant {
			return c, nil
		}
	}
	return nil, fmt.Errorf("core: no catalog entry %s/%s", function, variant)
}

// Functions returns the distinct function names in catalog order.
func Functions() []string {
	var out []string
	seen := map[string]bool{}
	for _, c := range Catalog() {
		if !seen[c.Function] {
			seen[c.Function] = true
			out = append(out, c.Function)
		}
	}
	return out
}

// solveSNICFactor derives the Arm application-cycle multiplier that lands
// a CPU-bound open-loop entry on its Fig. 4 throughput target, given the
// stack costs and memory penalties both platforms pay. Max throughput of
// a CPU-bound server is cores/serviceTime, so
//
//	want = tput_snic/tput_host = svc_host/svc_snic
//
// and the factor follows from inverting the SNIC service-time model.
func solveSNICFactor(c *Config) float64 {
	host, snic := cpu.XeonGold6140(), cpu.BlueField2Arm()
	hostMem, snicMem := mem.ServerDDR4(), mem.BlueField2DDR4()
	prof := netstack.ByKind(c.Stack)
	size := c.ReqSize
	if c.Mixed {
		size = int(trace.CTUMixed().Mean())
	}
	appH := c.HostBaseCycles + c.HostPerByteCycles*float64(size)
	stackH := prof.RxCycles(host.Arch, size) + prof.TxCycles(host.Arch, c.RespSize)
	penH := hostMem.Penalty(c.MemIntensity, c.WorkingSetHost, host.L3Bytes)
	svcH := (stackH + appH + c.MixedExtraCycles) / host.IPC / host.BaseHz * penH

	svcS := svcH / c.WantTputRatio
	penS := snicMem.Penalty(c.MemIntensity, c.WorkingSetSNIC, snic.L3Bytes)
	nominalS := svcS / penS * snic.IPC * snic.BaseHz
	stackS := prof.RxCycles(snic.Arch, size) + prof.TxCycles(snic.Arch, c.RespSize)
	appS := nominalS - stackS
	if appS <= 0 {
		// The stack alone already exceeds the target service time; the
		// achievable ratio is stack-determined. Run the app essentially
		// for free on the SNIC and let the ratio land where it lands.
		return 0.05
	}
	if appH <= 0 {
		return 1
	}
	return appS / appH
}
