package core

import (
	"fmt"

	"repro/internal/invariant"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Telemetry wiring. A Runner with a non-nil Telemetry collector gives
// every simulation a per-run obs.Recorder: request spans through the
// sinks, gauges polled on a virtual-time sampler, and resource counters
// from the sim-layer observers. With Telemetry nil every hook below
// degenerates to a nil check, so disabled telemetry cannot perturb
// results or cost measurable time.

// Span names used on the request track. Stage children cover every
// station a request crosses: the wire, the stack, the core-pool queue
// and service, the accelerator engine, and the return path.
const (
	spanRequest = "request"
	spanIngress = "wire+switch" // client→server serialization + eSwitch
	spanStackRx = "stack-rx"    // fixed RX-side stack/PCIe delay
	spanQueue   = "queue"       // waiting for a core
	spanService = "cpu-service" // run-to-completion on a core
	spanStaging = "staging"     // SNIC staging-core work before an engine
	spanEngine  = "engine"      // accelerator batch residency
	spanReturn  = "wire-return" // TX-side stack + server→client wire
	spanDevice  = "device"      // storage-target service time
)

// newRecorder derives a run's recorder from its memoization key: the
// run ID is a pure function of the key, so two workers racing the same
// run produce the same ID and the collector deduplicates them.
func (r *Runner) newRecorder(key, label string) *obs.Recorder {
	if r.Telemetry == nil {
		return nil
	}
	return r.Telemetry.NewRecorder(obs.DeriveRunID(key), label)
}

// runLabel is the human-readable run description used in exports. It
// never contains commas (CSV) and is unique per memo key in practice;
// export order falls back to run ID on label ties.
func runLabel(cfg *Config, plat Platform, opts RunOpts) string {
	return fmt.Sprintf("run %s @ %s | off %g Gb/s | req %d | seed %d",
		cfg.Name(), plat, opts.OfferedGbps, opts.Requests, opts.Seed)
}

// instrumentTestbed installs the recorder and/or invariant checker as
// observers on every resource, registers the standard gauge set and
// starts the virtual-time sampler (telemetry only). Pool/engine/link
// gauges sample at the 1 ms default; the power gauges sample at their
// instrument's cadence (BMC 1 Hz, Yocto-Watt 10 Hz) with the
// instrument's quantization, mirroring what the paper's rig would have
// recorded.
func instrumentTestbed(tb *Testbed, rec *obs.Recorder, chk *invariant.Checker) {
	if rec == nil && chk == nil {
		return
	}
	registerPools(tb, chk)
	so := combineStations(rec, chk)
	tb.HostPool.Instrument("pool/host", so)
	tb.SNICPool.Instrument("pool/snic", so)
	tb.StagingPool.Instrument("pool/staging", so)
	tb.REM.Observe("engine/rem", so, combineBatches(rec, chk))
	tb.Deflate.Observe("engine/deflate", so, combineBatches(rec, chk))
	tb.PKA.Observe("engine/pka", so)
	tb.Wire.Observe(combineLinks(rec, chk))
	tb.Bus.Observe(combineLinks(rec, chk))
	if rec == nil {
		return
	}

	rec.Gauge("pool/host/queue", "jobs", 0, func() float64 { return float64(tb.HostPool.QueueLen()) })
	rec.Gauge("pool/host/busy", "cores", 0, func() float64 { return float64(tb.HostPool.Busy()) })
	rec.Gauge("pool/snic/queue", "jobs", 0, func() float64 { return float64(tb.SNICPool.QueueLen()) })
	rec.Gauge("pool/snic/busy", "cores", 0, func() float64 { return float64(tb.SNICPool.Busy()) })
	rec.Gauge("pool/staging/queue", "jobs", 0, func() float64 { return float64(tb.StagingPool.QueueLen()) })
	rec.Gauge("pool/staging/busy", "cores", 0, func() float64 { return float64(tb.StagingPool.Busy()) })
	rec.Gauge("engine/rem/queue", "batches", 0, func() float64 { return float64(tb.REM.QueueLen()) })
	rec.Gauge("engine/rem/util", "frac", 0, tb.REM.Utilization)
	rec.Gauge("engine/deflate/queue", "batches", 0, func() float64 { return float64(tb.Deflate.QueueLen()) })
	rec.Gauge("engine/deflate/util", "frac", 0, tb.Deflate.Utilization)
	rec.Gauge("engine/pka/queue", "cmds", 0, func() float64 { return float64(tb.PKA.QueueLen()) })
	rec.Gauge("engine/pka/util", "frac", 0, tb.PKA.Utilization)
	rec.Gauge("wire/c2s/backlog", "s", 0, func() float64 { return tb.Wire.ServerDirBacklog().Seconds() })
	rec.Gauge("wire/s2c/backlog", "s", 0, func() float64 { return tb.Wire.ClientDirBacklog().Seconds() })
	rec.Gauge("pcie/up/backlog", "s", 0, func() float64 { return tb.Bus.UpBacklog().Seconds() })
	rec.Gauge("pcie/down/backlog", "s", 0, func() float64 { return tb.Bus.DownBacklog().Seconds() })
	rec.Gauge("power/server", "W", tb.BMC.Period, func() float64 { return float64(tb.BMC.Reading()) })
	rec.Gauge("power/snic", "W", tb.YoctoWatt.Period, func() float64 { return float64(tb.YoctoWatt.Reading()) })

	rec.StartSampler(tb.Eng)
}

// finishRecorder stamps end-of-run counters and hands the recorder to
// the collector. Nil-safe.
func (r *Runner) finishRecorder(ctx *runctx) {
	r.Prof.NoteEngine(ctx.tb.Eng)
	rec := ctx.rec
	if rec == nil {
		return
	}
	rec.SetCount("requests.sent", float64(ctx.sent))
	rec.SetCount("requests.completed", float64(ctx.done))
	rec.SetCount("pool.shed", float64(ctx.pool.Dropped()))
	rec.SetCount("wire.lost", float64(ctx.tb.Wire.Lost()))
	r.Telemetry.Attach(rec)
}

// openRequest opens a request root span at the current virtual time.
// Returns 0 (untraced) when telemetry is off.
//
//snicvet:hotpath
func (ctx *runctx) openRequest() obs.SpanID {
	if ctx.rec == nil {
		return 0
	}
	return ctx.rec.Open(obs.TrackRequests, spanRequest, ctx.tb.Eng.Now())
}

// stage records one stage child span of a request. root==0 (telemetry
// off, or an untraced packet) makes this a no-op.
//
//snicvet:hotpath
func (ctx *runctx) stage(root obs.SpanID, name string, start, end sim.Time) {
	if root == 0 {
		return
	}
	ctx.rec.Span(obs.TrackRequests, name, root, start, end)
}

// closeRequest ends a request root span at the current virtual time.
//
//snicvet:hotpath
func (ctx *runctx) closeRequest(root obs.SpanID) {
	if root == 0 {
		return
	}
	ctx.rec.Close(root, ctx.tb.Eng.Now())
}
