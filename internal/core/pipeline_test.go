package core

import (
	"reflect"
	"testing"
)

// The tentpole contract: a single-phase pipeline converted from a
// catalog entry reproduces the legacy Run measurement bit for bit —
// same RNG streams, same float evaluation order, same event structure —
// on every platform family (host CPU, SNIC CPU, accelerator engine).
func TestSinglePhasePipelineBitIdentical(t *testing.T) {
	cases := []struct {
		fn, variant string
		plat        Platform
		gbps        float64
	}{
		{"nat", "10K", HostCPU, 2},
		{"nat", "10K", SNICCPU, 1},
		{"rem", "file_executable", HostCPU, 3},
		{"rem", "file_executable", SNICCPU, 1.5},
		{"rem", "file_executable", SNICAccel, 8},
	}
	for _, tc := range cases {
		cfg, err := Lookup(tc.fn, tc.variant)
		if err != nil {
			t.Fatal(err)
		}
		opts := RunOpts{Requests: 2000, WarmupFrac: 0.1, Seed: 11, OfferedGbps: tc.gbps}
		legacy := NewRunner().Run(cfg, tc.plat, opts)
		ps := PipelineFromConfig(cfg, tc.plat)
		pm := NewRunner().RunPipeline(ps, opts)
		got := pm.Point
		// Identity labels differ by design (pipeline name + policy key);
		// every measured number must match exactly.
		got.Function, got.Variant = legacy.Function, legacy.Variant
		if !reflect.DeepEqual(got, legacy) {
			t.Errorf("%s/%s on %s: pipeline diverges from legacy run\n pipeline: %+v\n legacy:   %+v",
				tc.fn, tc.variant, tc.plat, got, legacy)
		}
	}
}

// Saturation walks sample points in parallel; the result must be
// byte-identical at any parallelism.
func TestSaturationSearchParallelIdentical(t *testing.T) {
	so := SaturationOpts{Points: 4, MinGbps: 10, MaxGbps: 50, Requests: 1500, Seed: 3}
	mk := func(par int) SaturationResult {
		ps := NATIDSPipeline()
		ps.Fallback = SpillToHost{}
		r := NewRunner()
		r.Parallelism = par
		return r.SaturationSearch(ps, so)
	}
	seq, par := mk(1), mk(8)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("saturation search diverges between -j1 and -j8:\n seq: %+v\n par: %+v", seq, par)
	}
}

// Under a tiny accelerator queue and deep overload, DropWhenFull must
// shed with the conservation ledger intact (the run executes with
// checks on: any imbalance panics), and the per-phase tallies must
// account for every injected request.
func TestFallbackConservationUnderFullQueues(t *testing.T) {
	ps := NATIDSPipeline()
	ps.Fallback = DropWhenFull{}
	ps.Phases[1].QueueCap = 4
	r := NewRunner()
	r.Checks = true
	opts := RunOpts{Requests: 3000, Seed: 5, OfferedGbps: 60}
	pm := r.RunPipeline(ps, opts)
	if pm.Dropped == 0 {
		t.Fatal("expected drops with a 4-deep accelerator queue under overload")
	}
	nat, ids := pm.Phases[0], pm.Phases[1]
	if n := nat.Served + nat.Spilled + nat.Dropped; n != 3000 {
		t.Fatalf("first phase accounts for %d of 3000 requests", n)
	}
	if n := ids.Served + ids.Spilled + ids.Dropped; n != nat.Served {
		t.Fatalf("second phase accounts for %d, first phase passed on %d", n, nat.Served)
	}
}

// The same overload with SpillToHost redirects to host cores instead of
// shedding — still conservation-clean (checks on).
func TestSpillToHostRedirectsUnderFullQueues(t *testing.T) {
	ps := NATIDSPipeline()
	ps.Fallback = SpillToHost{Watermark: 2}
	ps.Phases[1].QueueCap = 4
	r := NewRunner()
	r.Checks = true
	opts := RunOpts{Requests: 3000, Seed: 5, OfferedGbps: 60}
	pm := r.RunPipeline(ps, opts)
	if pm.Spilled == 0 {
		t.Fatal("expected spills with watermark 2 under overload")
	}
	ids := pm.Phases[1]
	if n := ids.Served + ids.Spilled + ids.Dropped; n != pm.Phases[0].Served {
		t.Fatalf("engine phase accounts for %d, upstream passed on %d", n, pm.Phases[0].Served)
	}
}

// The acceptance criterion: the saturation search separates the
// policies — spilling to host cores pushes the nat-ids knee past the
// accelerator-only knee.
func TestFallbackPoliciesSeparateKnees(t *testing.T) {
	so := SaturationOpts{Points: 6, MinGbps: 15, MaxGbps: 70, Requests: 2500, Seed: 42}
	knee := func(pol FallbackPolicy) float64 {
		ps := NATIDSPipeline()
		ps.Fallback = pol
		r := NewRunner()
		r.Parallelism = 4
		return r.SaturationSearch(ps, so).KneeGbps
	}
	drop, spill := knee(DropWhenFull{}), knee(SpillToHost{})
	if drop <= 0 || spill <= 0 {
		t.Fatalf("both walks should find a knee: drop %.2f, spill %.2f", drop, spill)
	}
	if spill <= drop {
		t.Fatalf("spill-to-host knee %.2f Gb/s should exceed drop knee %.2f Gb/s", spill, drop)
	}
}

// Validation rejects malformed pipelines with typed errors carrying the
// pipeline, phase and field.
func TestPipelineValidateTypedErrors(t *testing.T) {
	valid := func() *PipelineSpec { return NATIDSPipeline() }
	cases := []struct {
		name  string
		build func() *PipelineSpec
		field string
	}{
		{"no name", func() *PipelineSpec { ps := valid(); ps.Name = ""; return ps }, "Name"},
		{"no phases", func() *PipelineSpec { ps := valid(); ps.Phases = nil; return ps }, "Phases"},
		{"bad req size", func() *PipelineSpec { ps := valid(); ps.Mixed = false; ps.ReqSize = 0; return ps }, "ReqSize"},
		{"dup phase", func() *PipelineSpec {
			ps := valid()
			ps.Phases[1].Name = ps.Phases[0].Name
			return ps
		}, "Name"},
		{"engine on cpu phase", func() *PipelineSpec {
			ps := valid()
			ps.Phases[0].Engine = EngineREM
			return ps
		}, "Engine"},
		{"engine phase unbound", func() *PipelineSpec {
			ps := valid()
			ps.Phases[1].Engine = EngineNone
			return ps
		}, "Engine"},
		{"negative cycles", func() *PipelineSpec {
			ps := valid()
			ps.Phases[0].BaseCycles = -1
			return ps
		}, "cycles"},
		{"mem intensity", func() *PipelineSpec {
			ps := valid()
			ps.Phases[0].MemIntensity = 1.5
			return ps
		}, "MemIntensity"},
	}
	for _, tc := range cases {
		err := tc.build().Validate()
		pe, ok := err.(*PipelineError)
		if !ok {
			t.Errorf("%s: want *PipelineError, got %v", tc.name, err)
			continue
		}
		if pe.Field != tc.field {
			t.Errorf("%s: flagged field %q, want %q", tc.name, pe.Field, tc.field)
		}
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("exemplar spec should validate: %v", err)
	}
}
