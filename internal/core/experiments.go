package core

import (
	"fmt"

	"repro/internal/netstack"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// This file drives the paper's evaluation: Fig. 4 (normalized maximum
// throughput and p99 across all functions), Fig. 5 (REM rate sweep),
// Fig. 6 (power and energy efficiency), Fig. 7 + Table 4 (hyperscaler
// trace replay), and the §5.3 strategy experiments. Table 5 lives in
// package tco, fed by these measurements.

// Fig4Row is one function/variant of Fig. 4: the host measurement, the
// SNIC-side measurement (accelerator when one exists), and the
// normalized ratios the paper plots.
type Fig4Row struct {
	Config *Config
	Host   Measurement
	SNIC   Measurement

	TputRatio float64 // SNIC ÷ host maximum sustainable throughput
	P99Ratio  float64 // SNIC ÷ host p99 at the max-throughput point
	EffRatio  float64 // SNIC ÷ host system-wide energy efficiency (Fig. 6)
}

func (r Fig4Row) String() string {
	return fmt.Sprintf("%-22s tput %.2fx  p99 %.2fx  eff %.2fx",
		r.Config.Name(), r.TputRatio, r.P99Ratio, r.EffRatio)
}

// Fig4 measures every catalog entry on the host and on its Fig. 4 SNIC
// platform and returns the normalized rows (also the data behind Fig. 6).
func (r *Runner) Fig4() []Fig4Row {
	return r.Fig4For(Catalog())
}

// Fig4For measures the given subset. Rows compute concurrently up to
// r.Parallelism and merge in catalog order, so the output is identical
// at every parallelism setting.
func (r *Runner) Fig4For(configs []*Config) []Fig4Row {
	rows := make([]Fig4Row, len(configs))
	prog := r.newProgress(len(configs))
	r.forEachN(len(configs), func(i int) {
		rows[i] = r.fig4Row(configs[i])
		prog.step("fig4 " + configs[i].Name())
	})
	return rows
}

func (r *Runner) fig4Row(cfg *Config) Fig4Row {
	host := r.MaxThroughput(cfg, HostCPU)
	snic := r.MaxThroughput(cfg, cfg.SNICPlatform())
	row := Fig4Row{Config: cfg, Host: host, SNIC: snic}
	if host.TputGbps > 0 {
		row.TputRatio = snic.TputGbps / host.TputGbps
	}
	if host.Latency.P99 > 0 {
		row.P99Ratio = float64(snic.Latency.P99) / float64(host.Latency.P99)
	}
	if host.EffBitsPerJoule > 0 {
		row.EffRatio = snic.EffBitsPerJoule / host.EffBitsPerJoule
	}
	return row
}

// ---- Fig. 5: REM throughput & p99 versus offered rate ----

// Fig5Point is one offered rate of the Fig. 5 sweep.
type Fig5Point struct {
	OfferedGbps float64
	// Measurements per curve; keys are the curve labels of the figure.
	Curves map[string]Measurement
}

// Fig5Curves are the figure's series: host CPU with the two interesting
// rule sets, and the accelerator (one curve — "the SNIC accelerator
// offers almost the same throughput and p99 for the two input rule
// sets").
var Fig5Curves = []string{"host/file_image", "host/file_executable", "accel"}

// remMTU returns the Fig. 5 variant of a REM config: fixed MTU packets
// (no PCAP mix, so no mixed-traffic match-verification extra).
func remMTU(set trace.RuleSetName) *Config {
	return TraceWorkload("rem", string(set))
}

// TraceWorkload returns a catalog config adapted for trace replay: fixed
// MTU packets in place of the PCAP mix (trace rates are data rates, not
// op rates, so replays need a deterministic wire size). This is the
// workload shape Table 4 replays and package fleet's servers run.
func TraceWorkload(function, variant string) *Config {
	cfg, err := Lookup(function, variant)
	if err != nil {
		panic(err)
	}
	c := *cfg
	c.Mixed = false
	c.ReqSize = nicMTU
	c.Variant = variant + "-mtu"
	return &c
}

// Fig5 sweeps offered rate and measures throughput and p99 for the three
// curves. Rates are in Gb/s of request payload; points compute
// concurrently (each rate is an independent simulation triple, seeded by
// its index) and merge in sweep order.
func (r *Runner) Fig5(rates []float64) []Fig5Point {
	imgCfg := remMTU(trace.RuleSetImage)
	exeCfg := remMTU(trace.RuleSetExecutable)
	points := make([]Fig5Point, len(rates))
	prog := r.newProgress(len(rates))
	r.forEachN(len(rates), func(i int) {
		rate := rates[i]
		opts := DefaultRunOpts()
		opts.Requests = 12000
		opts.OfferedGbps = rate
		opts.Seed = uint64(1000 + i)
		points[i] = Fig5Point{OfferedGbps: rate, Curves: map[string]Measurement{
			"host/file_image":      r.Run(imgCfg, HostCPU, opts),
			"host/file_executable": r.Run(exeCfg, HostCPU, opts),
			"accel":                r.Run(exeCfg, SNICAccel, opts),
		}}
		prog.step(fmt.Sprintf("fig5 %g Gb/s", rate))
	})
	return points
}

// DefaultFig5Rates spans the figure's x-axis up to just below line rate.
func DefaultFig5Rates() []float64 {
	return []float64{5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60, 65, 70, 75, 80, 85, 90, 95}
}

// ---- Fig. 7 / Table 4: hyperscaler trace replay ----

// TraceReplayResult is one platform's Table 4 row.
type TraceReplayResult struct {
	Platform    Platform
	AvgTputGbps float64
	P99         sim.Duration
	AvgPowerW   float64
	Dropped     uint64
	// Sent and Completed expose the replay's request accounting so
	// conservation (Sent == Completed + Dropped at drain) is testable
	// without telemetry.
	Sent      uint64
	Completed uint64
}

func (t TraceReplayResult) String() string {
	return fmt.Sprintf("%-10s  %.2f Gb/s  p99 %v  %.1f W",
		t.Platform, t.AvgTputGbps, t.P99, t.AvgPowerW)
}

// Table4Config carries the §5.1 replay parameters.
type Table4Config struct {
	Trace *trace.HyperscalerTrace
	// IntervalCompress shortens each trace interval for simulation;
	// rates are untouched, so averages and tails are preserved.
	IntervalCompress sim.Duration
	// HostCores: the host needs only two polling cores at trace rates
	// (this is what puts the measured host power at Table 4's ~278 W
	// rather than the 8-core figure).
	HostCores int
	Seed      uint64
}

// DefaultTable4Config mirrors §5.1: MTU packets, file_executable rules,
// the Fig. 7 trace, host vs SNIC accelerator.
func DefaultTable4Config() Table4Config {
	return Table4Config{
		Trace:            trace.NewHyperscalerTrace(trace.DefaultHyperscalerConfig()),
		IntervalCompress: 400 * sim.Microsecond,
		HostCores:        2,
		Seed:             0x7ab1e4,
	}
}

// Validate rejects malformed replay parameters with a typed
// *ParamError (the fault.Plan.Validate treatment): a missing trace,
// non-positive interval compression or negative core counts would
// otherwise surface as silent nonsense deep in the replay loop.
func (tc Table4Config) Validate() error {
	fail := func(param, reason string) error {
		return &ParamError{Op: "table4", Param: param, Reason: reason}
	}
	if err := validTrace("replay", tc.Trace); err != nil {
		return err
	}
	if tc.IntervalCompress <= 0 {
		return fail("IntervalCompress", "must be positive")
	}
	if tc.HostCores < 0 {
		return fail("HostCores", "must not be negative")
	}
	return nil
}

// Table4 replays the trace through REM on the host CPU and on the SNIC
// accelerator — both platforms concurrently when parallelism allows —
// and reports the table's rows in platform order. Invalid parameters
// panic with the typed validation error.
func (r *Runner) Table4(tc Table4Config) []TraceReplayResult {
	if err := tc.Validate(); err != nil {
		panic(err)
	}
	cfg := remMTU(trace.RuleSetExecutable)
	plats := []Platform{HostCPU, SNICAccel}
	tr := tc.Trace.Compress(tc.IntervalCompress)
	out := make([]TraceReplayResult, len(plats))
	prog := r.newProgress(len(plats))
	r.forEachN(len(plats), func(i int) {
		c := *cfg
		if plats[i] == HostCPU && tc.HostCores > 0 {
			c.HostCores = tc.HostCores
		}
		out[i] = r.ReplayTrace(&c, plats[i], tr, tc.Seed)
		prog.step("table4 " + string(plats[i]))
	})
	return out
}

// ReplayTrace drives a net-served config with the trace's time-varying
// packet rate and measures the paper's Table 4 metrics. Replays memoize
// like Run does, keyed additionally by the trace's fingerprint.
func (r *Runner) ReplayTrace(cfg *Config, plat Platform, tr *trace.HyperscalerTrace, seed uint64) TraceReplayResult {
	res, err := r.Execute(Workload{Kind: WorkloadReplay, Config: cfg, Platform: plat, Trace: tr, Seed: seed})
	if err != nil {
		panic(err)
	}
	return *res.Replay
}

// replayTraceMemo is the memoized trace-replay implementation behind
// Execute and ReplayTrace.
func (r *Runner) replayTraceMemo(cfg *Config, plat Platform, tr *trace.HyperscalerTrace, seed uint64) TraceReplayResult {
	key := replayKey(cfg, plat, r.TBConfig, tr, seed)
	if res, ok := r.cache.lookupReplay(key); ok {
		return res
	}
	res := r.replayTrace(cfg, plat, tr, seed)
	r.cache.storeReplay(key, res)
	return res
}

// replayTrace executes one trace replay on a fresh testbed.
func (r *Runner) replayTrace(cfg *Config, plat Platform, tr *trace.HyperscalerTrace, seed uint64) TraceReplayResult {
	r.sims.Add(1)
	rkey := replayKey(cfg, plat, r.TBConfig, tr, seed)
	rlabel := fmt.Sprintf("replay %s @ %s | seed %d", cfg.Name(), plat, seed)
	seed = r.runSeed(seed)
	tbc := r.TBConfig
	tbc.Seed ^= seed
	if cfg.HostCores > 0 {
		tbc.HostCores = cfg.HostCores
	}
	if cfg.SNICCores > 0 {
		tbc.SNICCores = cfg.SNICCores
	}
	tb := NewTestbed(tbc)
	ctx := &runctx{
		tb: tb, cfg: cfg, plat: plat,
		opts:     RunOpts{Requests: 1 << 62, Seed: seed}, // trace decides the end
		prof:     netstack.ByKind(cfg.Stack),
		arrivals: trace.NewPoissonArrivals(seed ^ 0xabcdef),
		jit:      sim.NewRNG(seed ^ 0x1234),
		hist:     stats.NewHistogram(),
		warmupN:  1, // no warmup: the whole trace is the measurement
	}
	ctx.sizes = trace.Fixed(cfg.ReqSize)
	ctx.pool = tb.PoolFor(plat)
	ctx.pool.JitterSigma = 0
	ctx.pool.SetQueueCapacity(4096)
	ctx.ep = netstack.NewEndpoint(tb.Eng, ctx.prof, ctx.pool, seed^0x77)

	ctx.rec = r.newRecorder(rkey, rlabel)
	ctx.chk = r.newChecker(rlabel)
	instrumentTestbed(tb, ctx.rec, ctx.chk)

	switch plat {
	case HostCPU:
		tb.ActivateSNICPools(0, 0)
		tb.SetPolling(HostCPU, true)
		tb.SetHostTrafficShare(1)
	case SNICCPU:
		tb.ActivateSNICPools(1, 0)
		tb.SetPolling(SNICCPU, true)
		tb.SetHostTrafficShare(0)
	case SNICAccel:
		tb.ActivateSNICPools(0, 1)
		tb.SetPolling(SNICCPU, true)
		tb.SetHostTrafficShare(0)
	}

	dest := nic.ToHostCPU
	switch plat {
	case SNICCPU:
		dest = nic.ToSNICCPU
	case SNICAccel:
		dest = nic.ToAccelerator
	}
	tb.Sw.Program(func(*nic.Packet) nic.Destination { return dest })
	tb.Sw.Connect(nic.ToHostCPU, ctx.cpuSink)
	tb.Sw.Connect(nic.ToSNICCPU, ctx.cpuSink)
	tb.Sw.Connect(nic.ToAccelerator, ctx.accelSink)

	eng := tb.Eng
	interval := tr.Interval
	var runInterval func(i int)
	runInterval = func(i int) {
		if i >= len(tr.RatesGbps) {
			ctx.lastSend = eng.Now()
			return
		}
		rate := tr.RatesGbps[i]
		end := eng.Now().Add(interval)
		var submit func()
		submit = func() {
			if eng.Now() >= end {
				runInterval(i + 1)
				return
			}
			if rate > 0 {
				ctx.sent++
				size := ctx.sizes.Next(ctx.jit)
				pkt := &nic.Packet{Seq: uint64(ctx.sent), Size: size, SentAt: eng.Now(),
					Span: uint32(ctx.openRequest())}
				ctx.noteInject(pkt.Seq, size)
				tb.Wire.SendToServer(pkt, tb.Sw.Ingress)
				eng.After(ctx.arrivals.Gap(size, rate*1e9), submit)
			} else {
				eng.At(end, submit)
			}
		}
		submit()
	}
	eng.At(0, func() { runInterval(0) })
	eng.Run()
	ctx.finishEngineUtil()
	r.finishChecks(ctx)
	r.finishRecorder(ctx)

	res := TraceReplayResult{Platform: plat, P99: ctx.hist.P99(), Dropped: ctx.pool.Dropped(),
		Sent: uint64(ctx.sent), Completed: uint64(ctx.done)}
	if ctx.meter != nil {
		ctx.meter.Close(ctx.lastSend)
		res.AvgTputGbps = ctx.meter.Gbps()
	}
	res.AvgPowerW = float64(tb.Power.Server.Power())
	return res
}
