package core

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// The unified Workload API. Five run families grew five parallel entry
// points (Run, ReplayTrace, ReplayServer, RunFaulted, RunBalanced);
// pipelines would have been a sixth. Workload is the single spec that
// subsumes them: Execute validates it with typed errors and dispatches
// to the same memoized implementations the legacy methods use, so the
// legacy methods are now thin adapters and their results byte-identical.

// WorkloadKind selects a run family.
type WorkloadKind string

// The run families.
const (
	// WorkloadPoint is one (config, platform, operating point)
	// measurement — the legacy Runner.Run.
	WorkloadPoint WorkloadKind = "point"
	// WorkloadReplay replays a rate trace through one config/platform —
	// the legacy Runner.ReplayTrace (Table 4).
	WorkloadReplay WorkloadKind = "replay"
	// WorkloadServer is one fleet server's interval replay — the legacy
	// Runner.ReplayServer.
	WorkloadServer WorkloadKind = "server"
	// WorkloadFaulted replays a fault scenario through the failover
	// router — the legacy Runner.RunFaulted.
	WorkloadFaulted WorkloadKind = "faulted"
	// WorkloadBalanced replays a trace under the host/SNIC load
	// balancer — the legacy Runner.RunBalanced.
	WorkloadBalanced WorkloadKind = "balanced"
	// WorkloadPipeline measures a multi-phase pipeline at one operating
	// point.
	WorkloadPipeline WorkloadKind = "pipeline"
	// WorkloadSaturation walks a pipeline's offered load to the SLO
	// knee under its fallback policy.
	WorkloadSaturation WorkloadKind = "saturation"
	// WorkloadOffload replays a flow-decomposed trace through the
	// bounded eSwitch flow table under one offload policy.
	WorkloadOffload WorkloadKind = "offload"
)

// Workload is the single run spec. Kind selects the family; the other
// fields are per-family inputs (unused fields are ignored by Validate
// only when genuinely meaningless for the kind).
type Workload struct {
	Kind WorkloadKind

	// Config/Platform drive point, replay and server workloads.
	Config   *Config
	Platform Platform
	// Opts is the operating point for point and pipeline workloads.
	Opts RunOpts

	// Trace drives replay, faulted and balanced workloads.
	Trace *trace.HyperscalerTrace
	// Seed perturbs replay/server/faulted/balanced streams.
	Seed uint64

	// Rates/Interval/Group drive server workloads (fleet replay).
	Rates    []float64
	Interval sim.Duration
	Group    string

	// Scenario/Router drive faulted workloads.
	Scenario *FaultScenario
	Router   *HealthRouter
	// HostCores overrides the host pool for faulted/balanced workloads.
	HostCores int

	// Balancer drives balanced workloads.
	Balancer *LoadBalancer

	// Pipeline drives pipeline and saturation workloads.
	Pipeline *PipelineSpec
	// Saturation shapes the saturation walk.
	Saturation SaturationOpts

	// Offload drives offload workloads.
	Offload *OffloadSpec
}

// Result is a tagged union: exactly the field matching Kind is set.
type Result struct {
	Kind WorkloadKind

	Point      *Measurement
	Replay     *TraceReplayResult
	Server     *ServerReplay
	Fault      *FaultResult
	Balanced   *BalancedResult
	Pipeline   *PipelineMeasurement
	Saturation *SaturationResult
	Offload    *OffloadResult
}

// WorkloadError is the typed validation error Execute rejects malformed
// specs with.
type WorkloadError struct {
	Kind   WorkloadKind
	Field  string
	Reason string
}

// Error implements error.
func (e *WorkloadError) Error() string {
	return fmt.Sprintf("core: %s workload: %s %s", e.Kind, e.Field, e.Reason)
}

// Validate checks the spec for its kind, returning a typed
// *WorkloadError (or a *PipelineError / *ParamError from the nested
// spec validators) on the first problem.
func (w *Workload) Validate() error {
	fail := func(field, reason string) error {
		return &WorkloadError{Kind: w.Kind, Field: field, Reason: reason}
	}
	if w.Opts.OfferedGbps < 0 {
		return fail("Opts.OfferedGbps", "must not be negative")
	}
	if w.Opts.Requests < 0 {
		return fail("Opts.Requests", "must not be negative")
	}
	if w.Opts.WarmupFrac < 0 || w.Opts.WarmupFrac >= 1 {
		return fail("Opts.WarmupFrac", "must be in [0,1)")
	}
	if w.HostCores < 0 {
		return fail("HostCores", "must not be negative")
	}
	switch w.Kind {
	case WorkloadPoint:
		if w.Config == nil {
			return fail("Config", "must be set")
		}
		if !w.Config.HasPlatform(w.Platform) {
			return fail("Platform", fmt.Sprintf("%s does not run on %s", w.Config.Name(), w.Platform))
		}
	case WorkloadReplay:
		if w.Config == nil {
			return fail("Config", "must be set")
		}
		if !w.Config.HasPlatform(w.Platform) {
			return fail("Platform", fmt.Sprintf("%s does not run on %s", w.Config.Name(), w.Platform))
		}
		if err := validTrace(w.Kind, w.Trace); err != nil {
			return err
		}
	case WorkloadServer:
		if w.Config == nil {
			return fail("Config", "must be set")
		}
		if !w.Config.HasPlatform(w.Platform) {
			return fail("Platform", fmt.Sprintf("%s does not run on %s", w.Config.Name(), w.Platform))
		}
		if len(w.Rates) == 0 {
			return fail("Rates", "must have at least one interval")
		}
		for _, rate := range w.Rates {
			if rate < 0 {
				return fail("Rates", "must not contain negative rates")
			}
		}
		if w.Interval <= 0 {
			return fail("Interval", "must be positive")
		}
	case WorkloadFaulted:
		if w.Scenario == nil {
			return fail("Scenario", "must be set")
		}
		if w.Router == nil {
			return fail("Router", "must be set")
		}
		if err := validTrace(w.Kind, w.Trace); err != nil {
			return err
		}
	case WorkloadBalanced:
		if w.Balancer == nil {
			return fail("Balancer", "must be set")
		}
		if err := w.Balancer.Validate(); err != nil {
			return err
		}
		if err := validTrace(w.Kind, w.Trace); err != nil {
			return err
		}
	case WorkloadPipeline:
		if w.Pipeline == nil {
			return fail("Pipeline", "must be set")
		}
		if err := w.Pipeline.Validate(); err != nil {
			return err
		}
	case WorkloadSaturation:
		if w.Pipeline == nil {
			return fail("Pipeline", "must be set")
		}
		if err := w.Pipeline.Validate(); err != nil {
			return err
		}
		if w.Saturation.Points < 0 {
			return fail("Saturation.Points", "must not be negative")
		}
		if w.Saturation.MinGbps < 0 || w.Saturation.MaxGbps < 0 {
			return fail("Saturation", "load bounds must not be negative")
		}
		if w.Saturation.Requests < 0 {
			return fail("Saturation.Requests", "must not be negative")
		}
	case WorkloadOffload:
		if w.Offload == nil {
			return fail("Offload", "must be set")
		}
		if err := w.Offload.Validate(); err != nil {
			return err
		}
	default:
		return fail("Kind", fmt.Sprintf("unknown kind %q", w.Kind))
	}
	return nil
}

// validTrace validates a rate trace input.
func validTrace(kind WorkloadKind, tr *trace.HyperscalerTrace) error {
	fail := func(field, reason string) error {
		return &WorkloadError{Kind: kind, Field: field, Reason: reason}
	}
	if tr == nil {
		return fail("Trace", "must be set")
	}
	if tr.Interval <= 0 {
		return fail("Trace.Interval", "must be positive")
	}
	if len(tr.RatesGbps) == 0 {
		return fail("Trace.RatesGbps", "must have at least one interval")
	}
	for _, rate := range tr.RatesGbps {
		if rate < 0 {
			return fail("Trace.RatesGbps", "must not contain negative rates")
		}
	}
	return nil
}

// Execute validates w and runs it, returning the family's result in the
// matching Result field. Every family is memoized and byte-identical at
// any parallelism, exactly as through the legacy entry points (which
// are now adapters over this method).
func (r *Runner) Execute(w Workload) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	res := Result{Kind: w.Kind}
	switch w.Kind {
	case WorkloadPoint:
		m := r.runPoint(w.Config, w.Platform, w.Opts)
		res.Point = &m
	case WorkloadReplay:
		t := r.replayTraceMemo(w.Config, w.Platform, w.Trace, w.Seed)
		res.Replay = &t
	case WorkloadServer:
		s := r.replayServerMemo(w.Config, w.Platform, w.Rates, w.Interval, w.Seed, w.Group)
		res.Server = &s
	case WorkloadFaulted:
		f := r.runFaultedImpl(*w.Scenario, w.Router, w.Trace, w.HostCores, w.Seed)
		res.Fault = &f
	case WorkloadBalanced:
		b := r.runBalancedImpl(*w.Balancer, w.Trace, w.HostCores, w.Seed)
		res.Balanced = &b
	case WorkloadPipeline:
		p := r.RunPipeline(w.Pipeline, w.Opts)
		res.Pipeline = &p
	case WorkloadSaturation:
		s := r.SaturationSearch(w.Pipeline, w.Saturation)
		res.Saturation = &s
	case WorkloadOffload:
		o := r.runOffloadMemo(w.Offload)
		res.Offload = &o
	}
	return res, nil
}

// ParamError is the typed validation error for legacy config structs
// (Table4Config, LoadBalancer) — the fault.Plan.Validate treatment.
type ParamError struct {
	Op     string
	Param  string
	Reason string
}

// Error implements error.
func (e *ParamError) Error() string {
	return fmt.Sprintf("core: %s: %s %s", e.Op, e.Param, e.Reason)
}
