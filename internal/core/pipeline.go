package core

import (
	"fmt"
	"strings"

	"repro/internal/accel"
	"repro/internal/netstack"
	"repro/internal/sim"
)

// Multi-phase request pipelines. A PipelineSpec chains PhaseSpecs —
// host-core, SNIC-core and fixed-function-engine stages — into one
// served request, generalizing the one-function-per-run model: the tax
// pipelines of §2 (crypto-then-compress-then-send, NAT-then-inspect)
// become first-class workloads instead of separate figure rows. A
// FallbackPolicy decides, per engine phase, whether an overloaded
// accelerator sheds to a general-purpose core (the xmp_sched_sim
// CPU↔accelerator fallback structure) or lets the staging queue drop.
//
// A single-phase pipeline built by PipelineFromConfig reproduces the
// legacy Runner.Run measurement bit for bit: the executor replicates
// the legacy sinks' event and RNG-draw order exactly (see pipelinerun.go),
// so the pipeline engine is a strict generalization, not a fork.

// PhaseResource names the kind of resource a phase occupies.
type PhaseResource string

// The three resource kinds a phase can bind to (Table 3's columns).
const (
	ResHostCore PhaseResource = "host-core"
	ResSNICCore PhaseResource = "snic-core"
	ResEngine   PhaseResource = "engine"
)

// PhaseSpec is one stage of a pipeline: a resource binding plus a
// service-time model in the same shape the legacy cost model uses, so a
// converted config is arithmetic-identical (float operation order
// matters for bit-reproducibility — see phaseSvc).
type PhaseSpec struct {
	// Name labels the phase in spans, invariant ledgers and reports.
	Name string
	// Resource selects the pool or engine serving this phase.
	Resource PhaseResource

	// CPU cost model (host-core / snic-core phases): app cycles are
	// (BaseCycles + PerByteCycles·size) · CycleFactor + ExtraCycles,
	// evaluated in exactly that order. CycleFactor 0 means 1 (the host
	// path); the SNIC's slowdown is expressed as CycleFactor=SNICFactor.
	BaseCycles, PerByteCycles float64
	CycleFactor               float64
	ExtraCycles               float64
	// Sigma is the log-normal service jitter; 0 means the default 0.20.
	Sigma float64
	// Memory model for the phase's pool.
	MemIntensity float64
	WorkingSet   int64

	// Engine binding (engine phases).
	Engine  EngineKind
	PKAAlgo accel.PKAAlgo
	// Software fallback cost model used when the policy spills this
	// engine phase to a host core. Zero falls back to BaseCycles /
	// PerByteCycles.
	SpillBaseCycles, SpillPerByteCycles float64

	// OutScale rescales the payload leaving this phase (a compress
	// phase emits OutScale·input bytes for downstream phases). 0 and
	// values ≤ 0 mean 1 (no transform). The wire-level request size —
	// conservation ledger, meter accounting — is never rescaled.
	OutScale float64

	// QueueCap bounds the phase's pool queue; 0 means the runner
	// default (4096 jobs).
	QueueCap int
}

// isCPU reports whether the phase runs on a general-purpose core pool.
func (ph *PhaseSpec) isCPU() bool { return ph.Resource != ResEngine }

// platform maps the phase's resource onto the legacy Platform axis
// (pool selection, memory model, power accounting).
func (ph *PhaseSpec) platform() Platform {
	switch ph.Resource {
	case ResHostCore:
		return HostCPU
	case ResSNICCore:
		return SNICCPU
	default:
		return SNICAccel
	}
}

// outSize applies the phase's payload transform.
func (ph *PhaseSpec) outSize(size int) int {
	if ph.OutScale <= 0 {
		return size
	}
	out := int(float64(size) * ph.OutScale)
	if out < 1 {
		out = 1
	}
	return out
}

// PipelineSpec is a whole multi-phase workload: the wire shape, the
// ordered phases, and the fallback policy arbitrating overloaded
// engines.
type PipelineSpec struct {
	Name  string
	Stack netstack.Kind
	// ReqSize/RespSize are wire payload bytes; Mixed swaps ReqSize for
	// the CTU-style bimodal distribution.
	ReqSize, RespSize int
	Mixed             bool

	Phases []PhaseSpec

	// Fallback arbitrates engine-phase overload; nil means DropWhenFull.
	Fallback FallbackPolicy

	// Cores per pool; zero means the testbed default.
	HostCores, SNICCores int

	// FixedExtra is a calibrated extra one-way fixed latency added to
	// the inbound stack delay (the legacy ExtraLatency residual).
	FixedExtra sim.Duration

	// KneeP99Mult is the saturation-search "reasonable p99" multiplier;
	// 0 means the default 3×.
	KneeP99Mult float64
}

// kneeMult mirrors Config.kneeMult for the saturation search.
func (ps *PipelineSpec) kneeMult() float64 {
	if ps.KneeP99Mult > 0 {
		return ps.KneeP99Mult
	}
	return 3.0
}

// uses reports whether any phase binds the given resource kind.
func (ps *PipelineSpec) uses(res PhaseResource) bool {
	for i := range ps.Phases {
		if ps.Phases[i].Resource == res {
			return true
		}
	}
	return false
}

// PipelineError is the typed validation error for pipeline specs.
type PipelineError struct {
	Pipeline string
	Phase    string // empty for spec-level problems
	Field    string
	Reason   string
}

// Error implements error.
func (e *PipelineError) Error() string {
	s := fmt.Sprintf("core: pipeline %q", e.Pipeline)
	if e.Phase != "" {
		s += fmt.Sprintf(" phase %q", e.Phase)
	}
	return fmt.Sprintf("%s: %s %s", s, e.Field, e.Reason)
}

// Validate rejects malformed pipelines with a typed *PipelineError:
// empty phase lists, unknown resources, negative cost-model inputs and
// engine phases without an engine binding all fail here rather than
// producing silent nonsense mid-run.
func (ps *PipelineSpec) Validate() error {
	fail := func(phase, field, reason string) error {
		return &PipelineError{Pipeline: ps.Name, Phase: phase, Field: field, Reason: reason}
	}
	if ps.Name == "" {
		return fail("", "Name", "must be set")
	}
	if len(ps.Phases) == 0 {
		return fail("", "Phases", "must have at least one phase")
	}
	if ps.ReqSize <= 0 && !ps.Mixed {
		return fail("", "ReqSize", "must be positive")
	}
	if ps.RespSize < 0 {
		return fail("", "RespSize", "must not be negative")
	}
	if ps.HostCores < 0 {
		return fail("", "HostCores", "must not be negative")
	}
	if ps.SNICCores < 0 {
		return fail("", "SNICCores", "must not be negative")
	}
	if ps.FixedExtra < 0 {
		return fail("", "FixedExtra", "must not be negative")
	}
	if ps.KneeP99Mult < 0 {
		return fail("", "KneeP99Mult", "must not be negative")
	}
	seen := make(map[string]bool, len(ps.Phases))
	for i := range ps.Phases {
		ph := &ps.Phases[i]
		if ph.Name == "" {
			return fail("", "Phases", fmt.Sprintf("phase %d has no name", i))
		}
		if seen[ph.Name] {
			return fail(ph.Name, "Name", "duplicates an earlier phase (per-phase ledgers need unique names)")
		}
		seen[ph.Name] = true
		switch ph.Resource {
		case ResHostCore, ResSNICCore:
			if ph.Engine != EngineNone {
				return fail(ph.Name, "Engine", "set on a CPU phase")
			}
		case ResEngine:
			if ph.Engine == EngineNone {
				return fail(ph.Name, "Engine", "engine phase needs an engine binding")
			}
		default:
			return fail(ph.Name, "Resource", fmt.Sprintf("unknown resource %q", ph.Resource))
		}
		if ph.BaseCycles < 0 || ph.PerByteCycles < 0 || ph.ExtraCycles < 0 ||
			ph.SpillBaseCycles < 0 || ph.SpillPerByteCycles < 0 {
			return fail(ph.Name, "cycles", "must not be negative")
		}
		if ph.CycleFactor < 0 {
			return fail(ph.Name, "CycleFactor", "must not be negative")
		}
		if ph.Sigma < 0 {
			return fail(ph.Name, "Sigma", "must not be negative")
		}
		if ph.MemIntensity < 0 || ph.MemIntensity > 1 {
			return fail(ph.Name, "MemIntensity", "must be in [0,1]")
		}
		if ph.WorkingSet < 0 {
			return fail(ph.Name, "WorkingSet", "must not be negative")
		}
		if ph.QueueCap < 0 {
			return fail(ph.Name, "QueueCap", "must not be negative")
		}
	}
	return nil
}

// policy returns the effective fallback policy.
func (ps *PipelineSpec) policy() FallbackPolicy {
	if ps.Fallback == nil {
		return DropWhenFull{}
	}
	return ps.Fallback
}

// key serializes every field the simulation reads, in fixed order, for
// the memo cache (same contract as Config.cacheKey).
func (ps *PipelineSpec) key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|%d/%d/%v|cores:%d/%d|fx:%d|knee:%g|pol:%s",
		ps.Name, ps.Stack, ps.ReqSize, ps.RespSize, ps.Mixed,
		ps.HostCores, ps.SNICCores, ps.FixedExtra, ps.KneeP99Mult, ps.policy().Key())
	for i := range ps.Phases {
		ph := &ps.Phases[i]
		fmt.Fprintf(&b, "|ph:%s/%s/cyc:%g,%g,%g,%g/sg:%g/mem:%g,%d/eng:%s,%s/sp:%g,%g/out:%g/cap:%d",
			ph.Name, ph.Resource, ph.BaseCycles, ph.PerByteCycles, ph.CycleFactor, ph.ExtraCycles,
			ph.Sigma, ph.MemIntensity, ph.WorkingSet, ph.Engine, ph.PKAAlgo,
			ph.SpillBaseCycles, ph.SpillPerByteCycles, ph.OutScale, ph.QueueCap)
	}
	return b.String()
}

// PipelineFromConfig converts one catalog entry on one platform into
// the equivalent single-phase pipeline. The resulting spec, executed
// through RunPipeline, reproduces Runner.Run's measurement bit for bit
// (the conversion keeps the cost model's float evaluation order).
func PipelineFromConfig(cfg *Config, plat Platform) *PipelineSpec {
	if cfg.Mode != ModeNetServe {
		panic(fmt.Sprintf("core: PipelineFromConfig needs a net-served config, %s is %q", cfg.Name(), cfg.Mode))
	}
	ph := PhaseSpec{
		Name:          cfg.Function,
		BaseCycles:    cfg.HostBaseCycles,
		PerByteCycles: cfg.HostPerByteCycles,
		MemIntensity:  cfg.MemIntensity,
	}
	switch plat {
	case HostCPU:
		ph.Resource = ResHostCore
		ph.CycleFactor = 1
		ph.Sigma = cfg.HostSigma
		ph.WorkingSet = cfg.WorkingSetHost
		if cfg.Mixed {
			ph.ExtraCycles = cfg.MixedExtraCycles
		}
	case SNICCPU:
		ph.Resource = ResSNICCore
		ph.CycleFactor = cfg.SNICFactor
		ph.Sigma = cfg.SNICSigma
		ph.WorkingSet = cfg.WorkingSetSNIC
	case SNICAccel:
		ph.Resource = ResEngine
		ph.Engine = cfg.Engine
		ph.PKAAlgo = cfg.PKAAlgo
		ph.WorkingSet = cfg.WorkingSetSNIC
		// Host software model if a policy ever spills this phase.
		ph.SpillBaseCycles = cfg.HostBaseCycles
		ph.SpillPerByteCycles = cfg.HostPerByteCycles
	default:
		panic(fmt.Sprintf("core: unknown platform %q", plat))
	}
	return &PipelineSpec{
		Name:        cfg.Name(),
		Stack:       cfg.Stack,
		ReqSize:     cfg.ReqSize,
		RespSize:    cfg.RespSize,
		Mixed:       cfg.Mixed,
		Phases:      []PhaseSpec{ph},
		HostCores:   cfg.HostCores,
		SNICCores:   cfg.SNICCores,
		FixedExtra:  cfg.ExtraLatency[plat],
		KneeP99Mult: cfg.KneeP99Mult,
	}
}

// ---- fallback policies ----

// FallbackPolicy arbitrates an engine phase's overload: given the
// accelerator path's backlog (staging queue + weighted engine queue, the
// load-balancer idiom) it decides whether the request spills to a host
// core running the phase's software model, or stays on the accelerator
// path and takes its chances with the staging queue. Implementations
// must be deterministic pure functions of their inputs; Key() feeds the
// memo cache and must uniquely encode the policy's parameters.
type FallbackPolicy interface {
	Key() string
	// Spill is consulted once per request per engine phase, before the
	// staging enqueue.
	Spill(phase *PhaseSpec, backlog, queueCap int) bool
}

// DropWhenFull is the legacy accelerator discipline: never spill; an
// overloaded staging queue sheds (drops count toward the conservation
// ledger). A single-engine-phase pipeline under DropWhenFull is the
// legacy SNICAccel run.
type DropWhenFull struct{}

// Key implements FallbackPolicy.
func (DropWhenFull) Key() string { return "drop" }

// Spill implements FallbackPolicy.
func (DropWhenFull) Spill(*PhaseSpec, int, int) bool { return false }

// SpillToHost falls back to a general-purpose host core once the
// accelerator path's backlog crosses the watermark — the xmp_sched_sim
// structure (and the S17 load balancer's spill rule, applied per
// request instead of per interval).
type SpillToHost struct {
	// Watermark is the backlog (staging jobs + 16× engine batches) at
	// which requests start spilling; 0 means the load balancer's
	// default threshold (96).
	Watermark int
}

// Key implements FallbackPolicy.
func (p SpillToHost) Key() string { return fmt.Sprintf("spill-host@%d", p.watermark()) }

func (p SpillToHost) watermark() int {
	if p.Watermark <= 0 {
		return DefaultLoadBalancer().SpillQueueThreshold
	}
	return p.Watermark
}

// Spill implements FallbackPolicy.
func (p SpillToHost) Spill(_ *PhaseSpec, backlog, _ int) bool {
	return backlog >= p.watermark()
}
