// Package core assembles the substrates into the paper's testbed and
// methodology: a client and a server joined by a 100 GbE wire, the server
// carrying a BlueField-2-like SNIC, execution platforms (host CPU, SNIC
// CPU, SNIC accelerators), the power instrumentation, the benchmark
// catalog of Table 3 with its calibration, and the experiment runner that
// finds maximum sustainable throughput and measures p99 latency and
// system-wide energy efficiency — plus the §5.3 strategies (offload
// advisor, SNIC↔host load balancer) as working components.
package core

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/nic"
	"repro/internal/pcie"
	"repro/internal/power"
	"repro/internal/sim"
)

// Platform is an execution target for a function (Table 3's HC/SC/SA).
type Platform string

const (
	// HostCPU runs the function on the server's Xeon cores.
	HostCPU Platform = "host-cpu"
	// SNICCPU runs it on the BlueField-2 Arm cores.
	SNICCPU Platform = "snic-cpu"
	// SNICAccel runs it on a fixed-function engine fed by SNIC staging
	// cores.
	SNICAccel Platform = "snic-accel"
)

// Platforms lists all execution targets.
func Platforms() []Platform { return []Platform{HostCPU, SNICCPU, SNICAccel} }

// Testbed is one fully wired simulation instance. Build a fresh testbed
// per experiment run: state (queues, meters, sensors) is not reusable.
type Testbed struct {
	Eng  *sim.Engine
	Wire *nic.Wire
	Sw   *nic.ESwitch
	Bus  *pcie.Bus

	HostSpec *cpu.Spec
	SNICSpec *cpu.Spec
	HostMem  *mem.Spec
	SNICMem  *mem.Spec

	// HostPool and SNICPool are the serving core pools, sized per
	// experiment (8/8 by default, per §3.4).
	HostPool *cpu.Pool
	SNICPool *cpu.Pool
	// StagingPool is the two SNIC cores that feed accelerator engines
	// (§3.4: REM and Compression use two SNIC CPU cores for staging).
	StagingPool *cpu.Pool

	REM     *accel.ByteEngine
	Deflate *accel.ByteEngine
	PKA     *accel.PKAEngine

	Power     *power.Testbed
	BMC       *power.Sensor
	YoctoWatt *power.Sensor

	// memBWUtil and engineUtil are live utilization signals experiments
	// update as the run proceeds; the power model samples them.
	memBWUtil  float64
	engineUtil float64
	// hostPolling/snicPolling mark poll-mode stacks whose cores burn
	// cycles even when idle.
	hostPolling bool
	snicPolling bool
	// snicServeActive/stagingActive gate which SNIC pools participate in
	// the current experiment (serving cores vs accelerator staging).
	snicServeActive float64
	stagingActive   float64
	// hostTrafficShare is the fraction of wire traffic that crosses into
	// host memory (1 for host-served functions, 0 for card-resident).
	hostTrafficShare float64

	rng *sim.RNG
}

// TestbedConfig sizes a testbed.
type TestbedConfig struct {
	Seed      uint64
	HostCores int
	SNICCores int
	// StagingCores for accelerator feeds.
	StagingCores int
	// Propagation is the one-way wire delay (back-to-back DAC).
	Propagation sim.Duration
	// LinkRateGbps is the wire speed; zero keeps the paper's 100 GbE.
	LinkRateGbps float64
}

// LinkGbps returns the configured wire speed with the default applied.
func (c TestbedConfig) LinkGbps() float64 {
	if c.LinkRateGbps > 0 {
		return c.LinkRateGbps
	}
	return nic.LineRateBits / 1e9
}

// DefaultTestbedConfig mirrors §3.1/§3.4: 8 host cores against the
// 8-core SNIC, 2 staging cores, short direct cable.
// defaultMasterSeed is DefaultTestbedConfig's Seed; Runner.runSeed
// treats it as the identity so the paper's published streams are what
// the default configuration reproduces.
const defaultMasterSeed = 1

func DefaultTestbedConfig() TestbedConfig {
	return TestbedConfig{
		Seed:         defaultMasterSeed,
		HostCores:    8,
		SNICCores:    8,
		StagingCores: 2,
		Propagation:  250 * sim.Nanosecond,
	}
}

// NewTestbed wires a testbed.
func NewTestbed(cfg TestbedConfig) *Testbed {
	eng := sim.NewEngine()
	rng := sim.NewRNG(cfg.Seed)
	hostSpec := cpu.XeonGold6140()
	snicSpec := cpu.BlueField2Arm()

	tb := &Testbed{
		Eng:      eng,
		Wire:     nic.NewWireRate(eng, cfg.LinkGbps()*1e9, cfg.Propagation),
		Sw:       nic.NewESwitch(eng),
		Bus:      pcie.NewBus(eng, pcie.Gen4x16()),
		HostSpec: hostSpec,
		SNICSpec: snicSpec,
		HostMem:  mem.ServerDDR4(),
		SNICMem:  mem.BlueField2DDR4(),
		rng:      rng,
	}
	tb.HostPool = cpu.NewPool(eng, hostSpec, cfg.HostCores, rng.Uint64())
	// The SNIC's serving cores exclude the staging cores when engines
	// are in use; experiments pick the pool they drive.
	tb.SNICPool = cpu.NewPool(eng, snicSpec, cfg.SNICCores, rng.Uint64())
	tb.StagingPool = cpu.NewPool(eng, snicSpec, cfg.StagingCores, rng.Uint64())

	tb.REM = accel.REMEngine(eng)
	tb.Deflate = accel.CompressEngine(eng)
	tb.PKA = accel.NewPKAEngine(eng)

	// Power signals use cumulative (run-average) utilizations, scaled to
	// the 8-core basis the power budget was calibrated on (§3.4 uses 8
	// host cores against the 8 SNIC cores). Poll-mode stacks pin their
	// cores at 100% regardless of delivered work — that is why the paper
	// measures 278 W for host DPDK/REM even at a 0.76 Gb/s trace rate.
	tb.Power = power.NewTestbed(power.DefaultBudget(), power.Signals{
		HostCPU: func() float64 {
			u := tb.HostPool.Utilization()
			if tb.hostPolling {
				u = 1
			}
			return u * float64(tb.HostPool.Cores()) / 8.0
		},
		HostMemBW: func() float64 { return tb.memBWUtil },
		SNICCPU: func() float64 {
			serve := tb.SNICPool.Utilization()
			stage := tb.StagingPool.Utilization()
			if tb.snicPolling {
				serve, stage = 1, 1
			}
			busyCores := serve*float64(tb.SNICPool.Cores())*tb.snicServeActive +
				stage*float64(tb.StagingPool.Cores())*tb.stagingActive
			return busyCores / 8.0
		},
		SNICEngines: func() float64 { return tb.engineUtil },
		// Only traffic that crosses into the host (PCIe + host DRAM
		// churn) lights up the io-traffic component; traffic terminating
		// on the card (SNIC-served functions, eSwitch-forwarded OvS)
		// never touches host memory — that is why Table 5's SNIC
		// columns sit at ~255 W even at line rate.
		WireUtil: func() float64 {
			u := tb.Wire.ServerDirUtilization()
			if c := tb.Wire.ClientDirUtilization(); c > u {
				u = c
			}
			return u * tb.hostTrafficShare
		},
	})
	tb.BMC = power.NewBMCSensor(eng, tb.Power.Server.Power)
	tb.YoctoWatt = power.NewYoctoWattSensor(eng, tb.Power.SNIC.Power)
	return tb
}

// SetMemBWUtil and SetEngineUtil update live power-model signals. Plain
// fields suffice: sensors sample on the event loop — no concurrency.
func (tb *Testbed) SetMemBWUtil(u float64)  { tb.memBWUtil = u }
func (tb *Testbed) SetEngineUtil(u float64) { tb.engineUtil = u }

// SetPolling marks a platform's stack as poll-mode for power accounting.
func (tb *Testbed) SetPolling(p Platform, on bool) {
	if p == HostCPU {
		tb.hostPolling = on
	} else {
		tb.snicPolling = on
	}
}

// ActivateSNICPools declares which SNIC core pools the current experiment
// exercises (1 = counts toward SNIC power, 0 = parked).
func (tb *Testbed) ActivateSNICPools(serve, staging float64) {
	tb.snicServeActive = serve
	tb.stagingActive = staging
}

// SetHostTrafficShare declares what fraction of wire traffic crosses
// into host memory for io-traffic power accounting.
func (tb *Testbed) SetHostTrafficShare(f float64) { tb.hostTrafficShare = f }

// PoolFor returns the serving pool for a platform.
func (tb *Testbed) PoolFor(p Platform) *cpu.Pool {
	switch p {
	case HostCPU:
		return tb.HostPool
	case SNICCPU:
		return tb.SNICPool
	case SNICAccel:
		return tb.StagingPool
	default:
		panic(fmt.Sprintf("core: unknown platform %q", p))
	}
}

// SpecFor returns the CPU spec behind a platform's pool.
func (tb *Testbed) SpecFor(p Platform) *cpu.Spec {
	if p == HostCPU {
		return tb.HostSpec
	}
	return tb.SNICSpec
}

// MemFor returns the memory subsystem behind a platform.
func (tb *Testbed) MemFor(p Platform) *mem.Spec {
	if p == HostCPU {
		return tb.HostMem
	}
	return tb.SNICMem
}

// StartSensors begins power sampling until the given time.
func (tb *Testbed) StartSensors(until sim.Time) {
	tb.BMC.Start(until)
	tb.YoctoWatt.Start(until)
}
