package core

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"sync"

	"repro/internal/sim"
	"repro/internal/trace"
)

// The measurement cache memoizes simulation results under a key that
// captures every input the simulation reads: the config's full cost
// model, the platform, the testbed sizing, and the run options. Because
// the simulator is deterministic, a cache hit returns the byte-identical
// Measurement the simulation would have produced, so Fig. 4, Fig. 6,
// Table 4 and capacity probes stop re-measuring operating points they
// have already visited (snicbench -exp all revisits dozens).
//
// Two workers racing on the same key both simulate and store; the
// results are identical, so last-write-wins is harmless — the cache
// trades a rare duplicated simulation for never blocking a worker.

// measureCache is a mutex-guarded memo table. The zero value is ready to
// use; the map allocates on first store.
type measureCache struct {
	mu           sync.Mutex
	runs         map[string]Measurement
	replays      map[string]TraceReplayResult
	servers      map[string]ServerReplay
	pipelines    map[string]PipelineMeasurement
	offloads     map[string]OffloadResult
	hits, misses uint64
	// prof, when set, receives every lookup outcome (Runner.SetProfiler).
	prof *Profiler
}

func (c *measureCache) lookupRun(key string) (Measurement, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.runs[key]
	c.note(ok)
	return m, ok
}

func (c *measureCache) storeRun(key string, m Measurement) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.runs == nil {
		c.runs = make(map[string]Measurement)
	}
	c.runs[key] = m
}

func (c *measureCache) lookupReplay(key string) (TraceReplayResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.replays[key]
	c.note(ok)
	return t, ok
}

func (c *measureCache) storeReplay(key string, t TraceReplayResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.replays == nil {
		c.replays = make(map[string]TraceReplayResult)
	}
	c.replays[key] = t
}

func (c *measureCache) lookupServer(key string) (ServerReplay, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.servers[key]
	c.note(ok)
	return s, ok
}

func (c *measureCache) storeServer(key string, s ServerReplay) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.servers == nil {
		c.servers = make(map[string]ServerReplay)
	}
	c.servers[key] = s
}

func (c *measureCache) lookupPipeline(key string) (PipelineMeasurement, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.pipelines[key]
	c.note(ok)
	return p, ok
}

func (c *measureCache) storePipeline(key string, p PipelineMeasurement) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pipelines == nil {
		c.pipelines = make(map[string]PipelineMeasurement)
	}
	c.pipelines[key] = p
}

func (c *measureCache) lookupOffload(key string) (OffloadResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	o, ok := c.offloads[key]
	c.note(ok)
	return o, ok
}

func (c *measureCache) storeOffload(key string, o OffloadResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.offloads == nil {
		c.offloads = make(map[string]OffloadResult)
	}
	c.offloads[key] = o
}

// note tallies hit/miss under the already-held lock.
func (c *measureCache) note(hit bool) {
	if hit {
		c.hits++
	} else {
		c.misses++
	}
	c.prof.noteCache(hit)
}

func (c *measureCache) stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// cacheKey serializes every Config field the simulation reads, in fixed
// field order. Name alone is NOT enough: experiments run modified copies
// (remMTU flips Mixed/ReqSize, Table 4 re-cores the host, ablations vary
// depths), and a stale hit would silently corrupt a figure. The paper
// targets (WantTputRatio, WantP99Ratio, Assigned) label results without
// altering them and are deliberately excluded.
func (c *Config) cacheKey() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s|%s|%s|%s|", c.Function, c.Variant, c.Stack, c.Category, c.Mode)
	for _, p := range c.Platforms {
		b.WriteString(string(p))
		b.WriteByte(',')
	}
	fmt.Fprintf(&b, "|%d/%d/%v/%d/%d|cores:%d/%d", c.ReqSize, c.RespSize, c.Mixed, c.Closed, c.ClosedSNIC, c.HostCores, c.SNICCores)
	fmt.Fprintf(&b, "|cyc:%g/%g/%g/%g/%g/%g", c.HostBaseCycles, c.HostPerByteCycles, c.SNICFactor, c.HostSigma, c.SNICSigma, c.MixedExtraCycles)
	fmt.Fprintf(&b, "|mem:%g/%d/%d", c.MemIntensity, c.WorkingSetHost, c.WorkingSetSNIC)
	fmt.Fprintf(&b, "|rate:%g/%g/%d", c.HostRateBits, c.HostRateOps, c.LocalOpBytes)
	fmt.Fprintf(&b, "|eng:%s/%s|up:%g|knee:%g", c.Engine, c.PKAAlgo, c.UpcallFrac, c.KneeP99Mult)
	// ExtraLatency in canonical platform order: map iteration order must
	// never leak into the key.
	b.WriteString("|xl:")
	for _, p := range Platforms() {
		fmt.Fprintf(&b, "%d,", c.ExtraLatency[p])
	}
	return b.String()
}

// runKey is the memo key of one Runner.Run invocation.
func runKey(cfg *Config, plat Platform, tbc TestbedConfig, opts RunOpts) string {
	return fmt.Sprintf("run|%s|@%s|tb:%+v|opts:%+v", cfg.cacheKey(), plat, tbc, opts)
}

// replayKey is the memo key of one Runner.ReplayTrace invocation.
func replayKey(cfg *Config, plat Platform, tbc TestbedConfig, tr *trace.HyperscalerTrace, seed uint64) string {
	return fmt.Sprintf("replay|%s|@%s|tb:%+v|tr:%s|seed:%d",
		cfg.cacheKey(), plat, tbc, traceFingerprint(tr), seed)
}

// serverKey is the memo key of one fleet server replay. The group string
// (the fleet run ID) is part of the key so that telemetry labels — which
// must be pure functions of the memo key for -j determinism — can carry
// the fleet identity without breaking cross-fleet reuse semantics.
func serverKey(cfg *Config, plat Platform, tbc TestbedConfig, rates []float64, interval int64, seed uint64, group string) string {
	tr := &trace.HyperscalerTrace{Interval: sim.Duration(interval), RatesGbps: rates}
	return fmt.Sprintf("server|%s|@%s|tb:%+v|tr:%s|seed:%d|grp:%s",
		cfg.cacheKey(), plat, tbc, traceFingerprint(tr), seed, group)
}

// pipelineKey is the memo key of one Runner.RunPipeline invocation: the
// full spec (including the policy's Key) plus testbed and options.
func pipelineKey(ps *PipelineSpec, tbc TestbedConfig, opts RunOpts) string {
	return fmt.Sprintf("pipeline|%s|tb:%+v|opts:%+v", ps.key(), tbc, opts)
}

// offloadKey is the memo key of one offload run: the full spec (the
// policy by its Key, which serializes kind and parameters) plus the
// testbed sizing.
func offloadKey(spec *OffloadSpec, tbc TestbedConfig) string {
	return fmt.Sprintf("offload|%s|tr:%s|mix:%+v|tbl:%+v|pol:%s|ctl:%d|slo:%d|seed:%d|pkt:%d|cyc:%g/%g/%g|sig:%g|q:%d|tb:%+v",
		spec.Name, traceFingerprint(spec.Trace), spec.Mix, spec.Table, spec.Policy.Key(),
		spec.ControlInterval, spec.SLO, spec.Seed, spec.PktSize,
		spec.SlowBaseCycles, spec.SlowPerByteCycles, spec.RuleDecisionCycles,
		spec.SlowSigma, spec.QueueCap, tbc)
}

// TraceFingerprint exposes the trace hash for callers (package fleet)
// that need a stable identifier of an offered-load series.
func TraceFingerprint(tr *trace.HyperscalerTrace) string { return traceFingerprint(tr) }

// traceFingerprint hashes a rate trace (interval + every rate sample)
// into a short stable identifier.
func traceFingerprint(tr *trace.HyperscalerTrace) string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(tr.Interval))
	put(uint64(len(tr.RatesGbps)))
	for _, r := range tr.RatesGbps {
		put(math.Float64bits(r))
	}
	return fmt.Sprintf("%d:%d:%x", len(tr.RatesGbps), tr.Interval, h.Sum64())
}
