package core

import (
	"fmt"

	"repro/internal/netstack"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// LoadBalancer implements Strategy 3 of §5.3: split ingress packets
// between the SNIC accelerator and the host CPU based on monitored
// accelerator pressure, so that low-rate periods enjoy the SNIC's energy
// efficiency while bursts spill to the host before the SLO breaks.
//
// The paper's preliminary finding is also modelled: a *software* balancer
// on the SNIC CPU "consumes most of the SNIC CPU cycles simply to monitor
// packets at high rates and it cannot redirect packets fast enough".
// With HWAssist=false every packet pays a monitoring cost on the SNIC
// cores and redirection reacts at a coarse interval; with HWAssist=true
// (the paper's proposed future mechanism) monitoring is free and
// redirection is per-packet.
type LoadBalancer struct {
	// SpillQueueThreshold is the accelerator backlog (staged + queued
	// tasks) above which packets divert to the host.
	SpillQueueThreshold int
	// MonitorCycles is the per-packet SNIC CPU cost of the software
	// monitor (HWAssist=false only).
	MonitorCycles float64
	// HWAssist marks the hypothetical hardware balancer.
	HWAssist bool
	// ReactInterval is how often the software balancer refreshes its
	// view of accelerator pressure; the hardware one sees it instantly.
	ReactInterval sim.Duration
}

// DefaultLoadBalancer returns the software balancer the paper prototyped.
func DefaultLoadBalancer() LoadBalancer {
	return LoadBalancer{
		SpillQueueThreshold: 96,
		MonitorCycles:       420,
		HWAssist:            false,
		ReactInterval:       100 * sim.Microsecond,
	}
}

// HWLoadBalancer returns the proposed hardware-assisted balancer.
func HWLoadBalancer() LoadBalancer {
	return LoadBalancer{SpillQueueThreshold: 96, HWAssist: true}
}

// BalancedResult reports a balanced trace replay.
type BalancedResult struct {
	Balancer    LoadBalancer
	AvgTputGbps float64
	P99         sim.Duration
	AvgPowerW   float64
	// HostShare is the fraction of packets served by the host CPU.
	HostShare float64
	// SNICCPUUtil shows the monitoring burden on the SNIC cores.
	SNICCPUUtil float64
	Dropped     uint64
}

func (b BalancedResult) String() string {
	return fmt.Sprintf("balanced(hw=%v): %.2f Gb/s, p99 %v, %.1f W, host share %.1f%%, snic util %.2f",
		b.Balancer.HWAssist, b.AvgTputGbps, b.P99, b.AvgPowerW, b.HostShare*100, b.SNICCPUUtil)
}

// Validate rejects malformed balancer parameters with a typed
// *ParamError (the fault.Plan.Validate treatment): negative thresholds,
// monitor costs or reaction intervals would silently disable the spill
// logic or wedge the refresh loop.
func (lb LoadBalancer) Validate() error {
	fail := func(param, reason string) error {
		return &ParamError{Op: "load balancer", Param: param, Reason: reason}
	}
	if lb.SpillQueueThreshold < 0 {
		return fail("SpillQueueThreshold", "must not be negative")
	}
	if lb.MonitorCycles < 0 {
		return fail("MonitorCycles", "must not be negative")
	}
	if lb.ReactInterval < 0 {
		return fail("ReactInterval", "must not be negative")
	}
	if !lb.HWAssist && lb.ReactInterval == 0 {
		return fail("ReactInterval", "must be positive for the software balancer")
	}
	return nil
}

// RunBalanced replays a rate trace of MTU REM packets through the
// balancer: packets steer to the SNIC accelerator until its backlog
// crosses the threshold, then spill to the host CPU pool.
//
// RunBalanced is a thin adapter over Execute (the unified Workload
// API); invalid inputs panic with the typed validation error.
func (r *Runner) RunBalanced(lb LoadBalancer, tr *trace.HyperscalerTrace, hostCores int, seed uint64) BalancedResult {
	res, err := r.Execute(Workload{Kind: WorkloadBalanced, Balancer: &lb,
		Trace: tr, HostCores: hostCores, Seed: seed})
	if err != nil {
		panic(err)
	}
	return *res.Balanced
}

// runBalancedImpl is the balanced-replay implementation behind Execute
// and RunBalanced.
func (r *Runner) runBalancedImpl(lb LoadBalancer, tr *trace.HyperscalerTrace, hostCores int, seed uint64) BalancedResult {
	cfg := remMTU(trace.RuleSetExecutable)
	seed = r.runSeed(seed)
	tbc := r.TBConfig
	tbc.Seed ^= seed
	if hostCores > 0 {
		tbc.HostCores = hostCores
	}
	tb := NewTestbed(tbc)

	eng := tb.Eng
	jit := sim.NewRNG(seed ^ 0x1234)
	arrivals := trace.NewPoissonArrivals(seed ^ 0xabcdef)
	hist := stats.NewHistogram()
	meter := stats.NewMeter(0)

	hostPool := tb.HostPool
	hostPool.JitterSigma = 0
	hostPool.SetQueueCapacity(4096)
	staging := tb.StagingPool
	staging.JitterSigma = 0
	staging.SetQueueCapacity(4096)

	// Both sides are powered and ready: this is exactly the paper's
	// point that reserved host cores cannot sleep (Key Observation 3).
	tb.ActivateSNICPools(0, 1)
	tb.SetPolling(SNICCPU, true)
	tb.SetPolling(HostCPU, true)

	hostProf := netstack.ByKind(netstack.KindDPDK)
	hostSpec := tb.HostSpec
	snicSpec := tb.SNICSpec

	var hostServed, snicServed, total uint64

	// backlogView is what the balancer believes the accelerator backlog
	// is; the software balancer refreshes it every ReactInterval.
	backlog := func() int { return staging.QueueLen() + tb.REM.QueueLen()*16 }
	backlogView := 0
	if !lb.HWAssist {
		var refresh func()
		refresh = func() {
			backlogView = backlog()
			eng.After(lb.ReactInterval, refresh)
		}
		eng.At(0, refresh)
	}

	record := func(sentAt sim.Time) {
		hist.Record(eng.Now().Sub(sentAt))
		meter.Mark(eng.Now(), nicMTU)
	}

	serveHost := func(pkt *nic.Packet) {
		hostServed++
		cycles := hostProf.RxCycles(hostSpec.Arch, pkt.Size) +
			hostProf.TxCycles(hostSpec.Arch, 32) +
			cfg.HostBaseCycles + cfg.HostPerByteCycles*float64(pkt.Size)
		svc := jit.LogNormalDur(sim.Cycles(cycles/hostSpec.IPC, hostSpec.BaseHz), cfg.HostSigma)
		hostPool.ExecDuration(svc, func(_, _ sim.Time) { record(pkt.SentAt) })
	}
	serveAccel := func(pkt *nic.Packet) {
		snicServed++
		stage := hostProf.RxCycles(snicSpec.Arch, pkt.Size) + 340 + 0.02*float64(pkt.Size)
		if !lb.HWAssist {
			stage += lb.MonitorCycles
		}
		svc := jit.LogNormalDur(sim.Cycles(stage/snicSpec.IPC, snicSpec.BaseHz), 0.15)
		staging.ExecDuration(svc, func(_, _ sim.Time) {
			if err := tb.REM.Submit(pkt.Size, func(_, _ sim.Time) { record(pkt.SentAt) }); err != nil {
				// A crashed engine rejects the task; spill it to the host
				// instead of losing the packet.
				snicServed--
				serveHost(pkt)
			}
		})
	}

	tb.Sw.Program(func(p *nic.Packet) nic.Destination {
		bl := backlogView
		if lb.HWAssist {
			bl = backlog()
		}
		if bl > lb.SpillQueueThreshold {
			return nic.ToHostCPU
		}
		return nic.ToAccelerator
	})
	tb.Sw.Connect(nic.ToHostCPU, serveHost)
	tb.Sw.Connect(nic.ToAccelerator, serveAccel)

	// Host-share of traffic for the power model's io-traffic term is
	// finalized after the run.
	var lastSend sim.Time
	interval := tr.Interval
	prog := r.newProgress(len(tr.RatesGbps))
	balLabel := fmt.Sprintf("balanced hw=%v", lb.HWAssist)
	var runInterval func(i int)
	runInterval = func(i int) {
		if i >= len(tr.RatesGbps) {
			lastSend = eng.Now()
			return
		}
		prog.step(balLabel)
		rate := tr.RatesGbps[i]
		end := eng.Now().Add(interval)
		var submit func()
		submit = func() {
			if eng.Now() >= end {
				runInterval(i + 1)
				return
			}
			if rate > 0 {
				total++
				pkt := &nic.Packet{Size: nicMTU, SentAt: eng.Now()}
				tb.Wire.SendToServer(pkt, tb.Sw.Ingress)
				eng.After(arrivals.Gap(nicMTU, rate*1e9), submit)
			} else {
				eng.At(end, submit)
			}
		}
		submit()
	}
	eng.At(0, func() { runInterval(0) })
	// The software monitor reschedules itself indefinitely, so run to a
	// horizon (trace span plus a generous drain) rather than to drain.
	horizon := sim.Time(tr.Duration()) + sim.Time(200*sim.Millisecond)
	eng.RunUntil(horizon)

	res := BalancedResult{Balancer: lb, P99: hist.P99(), Dropped: hostPool.Dropped() + staging.Dropped()}
	if total > 0 {
		res.HostShare = float64(hostServed) / float64(total)
	}
	tb.SetHostTrafficShare(res.HostShare)
	tb.SetEngineUtil(tb.REM.Utilization())
	meter.Close(lastSend)
	res.AvgTputGbps = meter.Gbps()
	res.AvgPowerW = float64(tb.Power.Server.Power())
	res.SNICCPUUtil = staging.Utilization()
	return res
}

// BurstyTrace builds a short trace that mostly idles at a low rate with
// bursts exceeding the accelerator's ~50 Gb/s capability — the workload
// where a balancer matters.
func BurstyTrace(baseGbps, burstGbps float64, points int, burstEvery int, interval sim.Duration) *trace.HyperscalerTrace {
	rates := make([]float64, points)
	for i := range rates {
		if burstEvery > 0 && i%burstEvery == burstEvery-1 {
			rates[i] = burstGbps
		} else {
			rates[i] = baseGbps
		}
	}
	return &trace.HyperscalerTrace{Interval: interval, RatesGbps: rates}
}
