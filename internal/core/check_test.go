package core

import (
	"testing"

	"repro/internal/sim"
)

// TestReplayTraceConservation is the pre-checker conservation unit test:
// the replay's own counters must balance at drain, with or without
// checked mode.
func TestReplayTraceConservation(t *testing.T) {
	cfg, _ := Lookup("rem", "file_executable")
	tr := faultTestTrace()
	for _, checks := range []bool{false, true} {
		r := NewRunner()
		r.Checks = checks
		res := r.ReplayTrace(cfg, SNICCPU, tr, 7)
		if res.Sent == 0 {
			t.Fatalf("checks=%v: replay sent nothing", checks)
		}
		if res.Sent != res.Completed+res.Dropped {
			t.Fatalf("checks=%v: sent %d != completed %d + dropped %d",
				checks, res.Sent, res.Completed, res.Dropped)
		}
	}
}

// TestReplayServerConservation covers the fleet path's per-server
// request accounting the same way.
func TestReplayServerConservation(t *testing.T) {
	cfg, _ := Lookup("rem", "file_executable")
	rates := []float64{1.5, 2, 0.5, 3}
	for _, checks := range []bool{false, true} {
		r := NewRunner()
		r.Checks = checks
		rep := r.ReplayServer(cfg, HostCPU, rates, 400*sim.Microsecond, 5, "grp")
		if rep.Sent == 0 {
			t.Fatalf("checks=%v: server replay sent nothing", checks)
		}
		if rep.Sent != rep.Completed+rep.Dropped {
			t.Fatalf("checks=%v: sent %d != completed %d + dropped %d",
				checks, rep.Sent, rep.Completed, rep.Dropped)
		}
	}
}

// TestCheckedRunMatchesUnchecked runs one representative config of every
// run mode under checked execution: the checker must stay silent (no
// panic) and, being a pure observer, must not perturb the measurement.
func TestCheckedRunMatchesUnchecked(t *testing.T) {
	cases := []struct {
		function, variant string
		plat              Platform
	}{
		{"udp-echo", "1024B", HostCPU},   // net-served, host
		{"udp-echo", "1024B", SNICCPU},   // net-served, SNIC cores
		{"redis", "workload_a", SNICCPU}, // closed-loop net-served
		{"compress", "app", SNICAccel},   // accelerator sink (staging pool)
		{"crypto", "aes", SNICAccel},     // local mode onto the PKA engine
		{"crypto", "sha1", HostCPU},      // local mode, host rate path
		{"fio", "read", SNICCPU},         // storage mode
		{"ovs", "load100", SNICCPU},      // eSwitch-forwarded mode
	}
	for _, tc := range cases {
		t.Run(tc.function+"/"+tc.variant+"@"+string(tc.plat), func(t *testing.T) {
			cfg, err := Lookup(tc.function, tc.variant)
			if err != nil {
				t.Fatal(err)
			}
			opts := probeOpts(11)
			opts.OfferedGbps = 0.5
			plain := NewRunner()
			base := plain.Run(cfg, tc.plat, opts)
			checked := NewRunner()
			checked.Checks = true
			got := checked.Run(cfg, tc.plat, opts)
			if got != base {
				t.Fatalf("checked run diverged from unchecked:\n  base: %+v\n  got:  %+v", base, got)
			}
		})
	}
}

// Overload sheds requests at the queue; the ledger must account every
// one of them (a silent shed would trip Finish).
func TestCheckedOverloadAccountsSheds(t *testing.T) {
	cfg, _ := Lookup("udp-echo", "64B")
	r := NewRunner()
	r.Checks = true
	opts := probeOpts(3)
	opts.OfferedGbps = 2.0 // far beyond host capacity
	m := r.Run(cfg, HostCPU, opts)
	if m.DeliveredFrac > 0.9 {
		t.Fatalf("overload delivered %v — shedding never happened, test is vacuous", m.DeliveredFrac)
	}
}

// TestCheckedFaultedRuns puts every stock fault scenario through checked
// execution: crash failover, flap retries and throttle re-routing all
// keep the conservation ledger balanced (with straggler spans allowed).
func TestCheckedFaultedRuns(t *testing.T) {
	tr := faultTestTrace()
	scns := DefaultFaultScenarios(tr.Duration())
	plain := NewRunner()
	checked := NewRunner()
	checked.Checks = true
	for _, scn := range append([]FaultScenario{{Name: "baseline"}}, scns...) {
		base := plain.RunFaulted(scn, testRouter(), tr, 2, 42)
		got := checked.RunFaulted(scn, testRouter(), tr, 2, 42)
		if got != base {
			t.Fatalf("%s: checked faulted run diverged:\n  base: %+v\n  got:  %+v", scn.Name, base, got)
		}
		if got.Total != got.Completed+got.Dropped {
			t.Fatalf("%s: total %d != completed %d + dropped %d",
				scn.Name, got.Total, got.Completed, got.Dropped)
		}
	}
}

// A malformed plan must be rejected before anything is armed.
func TestRunFaultedRejectsInvalidPlan(t *testing.T) {
	tr := faultTestTrace()
	scn := DefaultFaultScenarios(tr.Duration())[0]
	scn.Plan.Events[0].For = -1
	defer func() {
		if recover() == nil {
			t.Fatal("invalid plan was armed")
		}
	}()
	NewRunner().RunFaulted(scn, testRouter(), tr, 2, 42)
}
