package core

import (
	"bytes"
	"fmt"

	"repro/internal/funcs/bm25"
	"repro/internal/funcs/compressfn"
	"repro/internal/funcs/cryptofn"
	"repro/internal/funcs/ids"
	"repro/internal/funcs/kvstore"
	"repro/internal/funcs/nat"
	"repro/internal/funcs/ovs"
	"repro/internal/funcs/storagefn"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// The simulator's timing comes from calibrated cost models, but the
// functions themselves are real implementations. RunFunctional drives a
// benchmark's real code over generated inputs and verifies its outputs
// against ground truth — the execution-driven half of the testbed, and
// the proof that the packages under internal/funcs compute rather than
// pretend.

// FunctionalReport summarizes a functional run.
type FunctionalReport struct {
	Function  string
	Variant   string
	Processed int
	// Verified counts outputs checked against an independent oracle
	// (ground-truth match flags, round-trip identities, table lookups).
	Verified int
	// Failures counts oracle disagreements; a correct build has zero.
	Failures int
	Notes    string
}

func (r FunctionalReport) String() string {
	return fmt.Sprintf("%s/%s: processed %d, verified %d, failures %d (%s)",
		r.Function, r.Variant, r.Processed, r.Verified, r.Failures, r.Notes)
}

// RunFunctional executes n real operations of the benchmark and verifies
// them. Unknown function names return an error rather than a fake pass.
func RunFunctional(function, variant string, n int, seed uint64) (FunctionalReport, error) {
	if n <= 0 {
		return FunctionalReport{}, fmt.Errorf("core: functional run needs n > 0")
	}
	rep := FunctionalReport{Function: function, Variant: variant}
	switch function {
	case "snort", "rem":
		return funcIDS(rep, variant, n, seed)
	case "nat":
		return funcNAT(rep, variant, n, seed)
	case "bm25":
		return funcBM25(rep, variant, n, seed)
	case "redis":
		return funcRedis(rep, variant, n, seed)
	case "mica":
		return funcMICA(rep, variant, n, seed)
	case "crypto":
		return funcCrypto(rep, variant, n, seed)
	case "compress":
		return funcCompress(rep, variant, n, seed)
	case "ovs":
		return funcOVS(rep, n, seed)
	case "fio":
		return funcFio(rep, variant, n, seed)
	default:
		return rep, fmt.Errorf("core: no functional implementation for %q", function)
	}
}

func funcIDS(rep FunctionalReport, variant string, n int, seed uint64) (FunctionalReport, error) {
	mode := ids.Detection
	if rep.Function == "rem" {
		mode = ids.Prevention
	}
	engine, err := ids.NewPaperEngine(trace.RuleSetName(variant), mode, seed)
	if err != nil {
		return rep, err
	}
	pg := trace.NewPayloadGen(engine.RuleSet, seed^1)
	for i := 0; i < n; i++ {
		payload, truth := pg.Next(1500)
		got := engine.Inspect(uint64(i), payload) != ids.Pass
		rep.Processed++
		rep.Verified++
		if got != truth {
			rep.Failures++
		}
	}
	rep.Notes = fmt.Sprintf("%d alerts over %d rules", engine.Alerts(), len(engine.RuleSet.Patterns))
	return rep, nil
}

func funcNAT(rep FunctionalReport, variant string, n int, seed uint64) (FunctionalReport, error) {
	entries := 10_000
	if variant == "1M" {
		entries = 1_000_000
	}
	tbl := nat.GenerateTable(entries, seed)
	// The generated table must be a bijection before any packet crosses
	// it; a broken reverse map would surface as phantom rewrite failures.
	if err := tbl.Validate(); err != nil {
		return rep, err
	}
	pubs := tbl.SomePublic(min(n, entries), 0)
	for i := 0; i < n; i++ {
		pub := pubs[i%len(pubs)]
		h := nat.Header{Src: 0xc0a80001, Dst: pub}
		rep.Processed++
		if !tbl.RewriteInbound(&h) {
			rep.Failures++
			continue
		}
		// Oracle: outbound rewrite must restore the public address.
		back := nat.Header{Src: h.Dst}
		rep.Verified++
		if !tbl.RewriteOutbound(&back) || back.Src != pub {
			rep.Failures++
		}
	}
	rep.Notes = fmt.Sprintf("%d entries, %d misses", tbl.Len(), tbl.Misses())
	return rep, nil
}

func funcBM25(rep FunctionalReport, variant string, n int, seed uint64) (FunctionalReport, error) {
	docs := 100
	if variant == "1Kdocs" {
		docs = 1000
	}
	idx := bm25.NewIndex(bm25.GenCorpus(docs, 10, seed))
	r := sim.NewRNG(seed ^ 2)
	for i := 0; i < n; i++ {
		q := bm25.GenQuery(3, r)
		top := idx.TopK(q, 10)
		rep.Processed++
		rep.Verified++
		// Oracle: results sorted and consistent with direct scoring.
		for j := 1; j < len(top); j++ {
			if top[j].Score > top[j-1].Score {
				rep.Failures++
				break
			}
		}
		if len(top) > 0 && !stats.ApproxEqual(top[0].Score, idx.Score(top[0].DocID, q), 1e-9) {
			rep.Failures++
		}
	}
	rep.Notes = fmt.Sprintf("%d documents", idx.NumDocs())
	return rep, nil
}

func funcRedis(rep FunctionalReport, variant string, n int, seed uint64) (FunctionalReport, error) {
	w := trace.YCSBWorkload(variant)
	gen := trace.NewYCSBGen(w, trace.PaperRecords, trace.PaperValueSize, seed)
	store := kvstore.NewStore()
	val := make([]byte, trace.PaperValueSize)
	for _, k := range gen.LoadKeys() {
		store.Set(k, val)
	}
	for i := 0; i < n; i++ {
		op := gen.Next()
		var cmd kvstore.Command
		if op.Type == trace.OpRead {
			cmd = kvstore.Command{Op: kvstore.OpGet, Key: op.Key}
		} else {
			cmd = kvstore.Command{Op: kvstore.OpSet, Key: op.Key, Value: op.Value}
		}
		resp, err := store.ServeWire(kvstore.EncodeCommand(cmd))
		rep.Processed++
		rep.Verified++
		if err != nil || resp[0] != '+' {
			rep.Failures++
		}
	}
	rep.Notes = fmt.Sprintf("%d records loaded", store.Len())
	return rep, nil
}

func funcMICA(rep FunctionalReport, variant string, n int, seed uint64) (FunctionalReport, error) {
	batch := 4
	if variant == "batch32" {
		batch = 32
	}
	m := kvstore.NewMICA(8)
	gen := trace.NewYCSBGen(trace.WorkloadC, 10_000, 64, seed)
	for _, k := range gen.LoadKeys() {
		m.Set(k, []byte(k)) // value = key, a checkable oracle
	}
	keys := make([]string, batch)
	for i := 0; i < n; i++ {
		for j := range keys {
			keys[j] = gen.Next().Key
		}
		vals := m.GetBatch(keys)
		rep.Processed++
		rep.Verified++
		for j, v := range vals {
			if v == nil || string(v) != keys[j] {
				rep.Failures++
				break
			}
		}
	}
	rep.Notes = fmt.Sprintf("hit rate %.3f", m.HitRate())
	return rep, nil
}

func funcCrypto(rep FunctionalReport, variant string, n int, seed uint64) (FunctionalReport, error) {
	r := sim.NewRNG(seed)
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = byte(r.Uint64())
	}
	switch variant {
	case "aes":
		c := cryptofn.NewAESCipher("functional")
		for i := 0; i < n; i++ {
			ct := c.Encrypt(buf)
			rep.Processed++
			rep.Verified++
			if !bytes.Equal(c.Decrypt(ct), buf) {
				rep.Failures++
			}
		}
	case "sha1":
		ref := cryptofn.SHA1Sum(buf)
		for i := 0; i < n; i++ {
			rep.Processed++
			rep.Verified++
			if cryptofn.SHA1Sum(buf) != ref {
				rep.Failures++
			}
		}
	case "rsa":
		// RSA ops are ~ms-scale on real silicon; cap the functional
		// count so the harness stays quick.
		if n > 50 {
			n = 50
		}
		msg := []byte("functional harness")
		for i := 0; i < n; i++ {
			sig, err := cryptofn.RSASign(msg)
			rep.Processed++
			rep.Verified++
			if err != nil || cryptofn.RSAVerify(msg, sig) != nil {
				rep.Failures++
			}
		}
	default:
		return rep, fmt.Errorf("core: unknown crypto variant %q", variant)
	}
	rep.Notes = "stdlib crypto round trips"
	return rep, nil
}

func funcCompress(rep FunctionalReport, variant string, n int, seed uint64) (FunctionalReport, error) {
	data := compressfn.GenCorpus(compressfn.Input(variant), compressfn.ChunkBytes, seed)
	var lastRatio float64
	for i := 0; i < n; i++ {
		comp, err := compressfn.Compress(data, compressfn.PaperLevel)
		rep.Processed++
		rep.Verified++
		if err != nil {
			rep.Failures++
			continue
		}
		back, err := compressfn.Decompress(comp)
		if err != nil || !bytes.Equal(back, data) {
			rep.Failures++
		}
		lastRatio = compressfn.Ratio(data, comp)
	}
	rep.Notes = fmt.Sprintf("ratio %.2f:1 at level %d", lastRatio, compressfn.PaperLevel)
	return rep, nil
}

func funcOVS(rep FunctionalReport, n int, seed uint64) (FunctionalReport, error) {
	sw := ovs.NewSwitch()
	keys := ovs.GenForwardingRules(sw, 16)
	r := sim.NewRNG(seed)
	for i := 0; i < n; i++ {
		k := keys[r.Intn(len(keys))]
		k.SrcPort = uint16(r.Uint64()) // vary flows, keep tenant
		a := sw.Classify(k)
		rep.Processed++
		rep.Verified++
		if a.OutPort < 0 {
			rep.Failures++ // tenant traffic must never hit the drop rule
		}
	}
	rep.Notes = fmt.Sprintf("megaflow hit rate %.2f", sw.HitRate())
	return rep, nil
}

func funcFio(rep FunctionalReport, variant string, n int, seed uint64) (FunctionalReport, error) {
	disk := storagefn.NewRAMDisk(1<<26, storagefn.BlockBytes) // 64 MB functional slice
	job := storagefn.JobSpec{Op: storagefn.RandWrite, Blocks: int64(n), Seed: seed}
	offsets := job.NextOffsets(disk.NumBlocks())
	block := make([]byte, storagefn.BlockBytes)
	out := make([]byte, storagefn.BlockBytes)
	for i, off := range offsets {
		// Write a block stamped with its offset, read it back.
		block[0] = byte(off)
		block[1] = byte(off >> 8)
		rep.Processed++
		rep.Verified++
		if variant == "write" || disk.Reads() == 0 {
			if err := disk.WriteBlock(off, block); err != nil {
				rep.Failures++
				continue
			}
		}
		if err := disk.ReadBlock(off, out); err != nil {
			rep.Failures++
			continue
		}
		if out[0] != block[0] || out[1] != block[1] {
			rep.Failures++
		}
		_ = i
	}
	rep.Notes = fmt.Sprintf("%d reads, %d writes on a %d-block device",
		disk.Reads(), disk.Writes(), disk.NumBlocks())
	return rep, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
