package core

import (
	"sort"
	"testing"

	"repro/internal/netstack"
)

func TestCatalogCoversTable3(t *testing.T) {
	// Table 3 lists ten benchmarks; §3.3 adds three microbenchmarks.
	wantFunctions := map[string][]string{
		"udp-echo":      {"64B", "1024B"},
		"dpdk-pingpong": {"64B", "1024B"},
		"rdma-perftest": {"1KB"},
		"redis":         {"workload_a", "workload_b", "workload_c"},
		"snort":         {"file_image", "file_flash", "file_executable"},
		"nat":           {"10K", "1M"},
		"bm25":          {"100docs", "1Kdocs"},
		"crypto":        {"aes", "rsa", "sha1"},
		"rem":           {"file_image", "file_flash", "file_executable"},
		"compress":      {"app", "txt"},
		"ovs":           {"load10", "load100"},
		"mica":          {"batch4", "batch32"},
		"fio":           {"read", "write"},
	}
	names := make([]string, 0, len(wantFunctions))
	for fn := range wantFunctions {
		names = append(names, fn)
	}
	sort.Strings(names)
	for _, fn := range names {
		for _, v := range wantFunctions[fn] {
			if _, err := Lookup(fn, v); err != nil {
				t.Errorf("catalog missing %s/%s: %v", fn, v, err)
			}
		}
	}
	if got := len(Functions()); got != len(wantFunctions) {
		t.Errorf("catalog has %d functions, want %d", got, len(wantFunctions))
	}
}

func TestCatalogStacksMatchTable3(t *testing.T) {
	wantStack := map[string]netstack.Kind{
		"redis": netstack.KindTCP,
		"snort": netstack.KindUDP,
		"nat":   netstack.KindUDP,
		"bm25":  netstack.KindUDP,
		"rem":   netstack.KindDPDK,
		"ovs":   netstack.KindDPDK,
		"mica":  netstack.KindRDMA,
		"fio":   netstack.KindRDMA,
	}
	for _, c := range Catalog() {
		if want, ok := wantStack[c.Function]; ok && c.Stack != want {
			t.Errorf("%s uses %s, Table 3 says %s", c.Name(), c.Stack, want)
		}
	}
}

func TestCatalogAcceleratedFunctionsHaveEngines(t *testing.T) {
	// Table 3: REM, Cryptography, Compression and OvS run on SNIC
	// hardware; the first three bind engines, OvS binds the eSwitch.
	for _, c := range Catalog() {
		switch c.Function {
		case "rem", "crypto", "compress":
			if !c.HasPlatform(SNICAccel) || c.Engine == EngineNone {
				t.Errorf("%s must bind an accelerator engine", c.Name())
			}
			if c.Category != CategoryAccelerated {
				t.Errorf("%s must be hardware-accelerated category", c.Name())
			}
		case "redis", "snort", "nat", "bm25", "mica", "fio":
			if c.HasPlatform(SNICAccel) {
				t.Errorf("%s has no accelerator in Table 3", c.Name())
			}
		}
	}
}

func TestSNICPlatformSelection(t *testing.T) {
	rem, _ := Lookup("rem", "file_image")
	if rem.SNICPlatform() != SNICAccel {
		t.Error("REM's Fig. 4 SNIC platform is the accelerator")
	}
	redis, _ := Lookup("redis", "workload_a")
	if redis.SNICPlatform() != SNICCPU {
		t.Error("Redis's SNIC platform is the Arm CPU")
	}
}

func TestSolvedFactorsArePositive(t *testing.T) {
	for _, c := range Catalog() {
		if c.SNICFactor <= 0 {
			t.Errorf("%s has non-positive SNICFactor %v", c.Name(), c.SNICFactor)
		}
	}
}

func TestSolverLandsOnTargetAnalytically(t *testing.T) {
	// For entries where the solver produced a non-clamped factor, the
	// analytic service-time ratio must equal the target.
	for _, c := range Catalog() {
		if c.Mode != ModeNetServe || c.WantTputRatio == 0 || c.SNICFactor <= 0.051 {
			continue
		}
		if c.Function == "dpdk-pingpong" || c.Function == "rem" {
			continue // manual factors / accel comparisons
		}
		// Invert: recompute what ratio this factor produces.
		probe := *c
		got := analyticRatio(&probe)
		if got < c.WantTputRatio*0.98 || got > c.WantTputRatio*1.02 {
			t.Errorf("%s: analytic ratio %.3f, want %.3f", c.Name(), got, c.WantTputRatio)
		}
	}
}

// analyticRatio computes svcHost/svcSNIC from the same model the solver
// inverts.
func analyticRatio(c *Config) float64 {
	tb := NewTestbed(DefaultTestbedConfig())
	prof := netstack.ByKind(c.Stack)
	size := c.ReqSize
	hostSpec, snicSpec := tb.HostSpec, tb.SNICSpec
	appH := c.HostBaseCycles + c.HostPerByteCycles*float64(size)
	svcH := (prof.RxCycles(hostSpec.Arch, size) + prof.TxCycles(hostSpec.Arch, c.RespSize) + appH) /
		hostSpec.IPC / hostSpec.BaseHz *
		tb.HostMem.Penalty(c.MemIntensity, c.WorkingSetHost, hostSpec.L3Bytes)
	svcS := (prof.RxCycles(snicSpec.Arch, size) + prof.TxCycles(snicSpec.Arch, c.RespSize) + appH*c.SNICFactor) /
		snicSpec.IPC / snicSpec.BaseHz *
		tb.SNICMem.Penalty(c.MemIntensity, c.WorkingSetSNIC, snicSpec.L3Bytes)
	return svcH / svcS
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("nope", "x"); err == nil {
		t.Fatal("unknown lookup must error")
	}
}

func TestCatalogTargetsWithinPaperRanges(t *testing.T) {
	// Every target must sit inside the paper's global envelopes:
	// throughput 0.1–3.5×, p99 0.1–13.8×.
	for _, c := range Catalog() {
		if c.WantTputRatio > 0 && (c.WantTputRatio < 0.1 || c.WantTputRatio > 3.51) {
			t.Errorf("%s tput target %.3f outside paper range 0.1–3.5", c.Name(), c.WantTputRatio)
		}
		if c.WantP99Ratio > 0 && (c.WantP99Ratio < 0.099 || c.WantP99Ratio > 13.81) {
			t.Errorf("%s p99 target %.2f outside paper range 0.1–13.8", c.Name(), c.WantP99Ratio)
		}
	}
}

func TestPaperRangeEndpointsPresent(t *testing.T) {
	// The paper's headline ranges must be realized by some entry:
	// 3.5× tput (Compression), ~0.1× tput (BM25-1K), 13.8× p99
	// (Compression app), ~0.1× p99 (REM file_image).
	var sawTputTop, sawTputBottom, sawP99Top, sawP99Bottom bool
	for _, c := range Catalog() {
		if c.WantTputRatio >= 3.49 {
			sawTputTop = true
		}
		if c.WantTputRatio > 0 && c.WantTputRatio <= 0.115 {
			sawTputBottom = true
		}
		if c.WantP99Ratio >= 13.79 {
			sawP99Top = true
		}
		if c.WantP99Ratio > 0 && c.WantP99Ratio <= 0.101 {
			sawP99Bottom = true
		}
	}
	if !sawTputTop || !sawTputBottom || !sawP99Top || !sawP99Bottom {
		t.Errorf("range endpoints missing: tput(top=%v bottom=%v) p99(top=%v bottom=%v)",
			sawTputTop, sawTputBottom, sawP99Top, sawP99Bottom)
	}
}
