package core

import (
	"repro/internal/accel"
	"repro/internal/cpu"
	"repro/internal/funcs/compressfn"
	"repro/internal/funcs/cryptofn"
	"repro/internal/funcs/nat"
	"repro/internal/netstack"
)

// Exemplar pipelines: the two tax chains §2 describes as sequences of
// functions, assembled from the calibrated per-function models in
// internal/funcs and the catalog. These are what `snicbench -exp
// pipeline` measures and what the saturation search compares fallback
// policies on.

// hostPerByteCycles converts a calibrated single-core host byte rate
// (bits/s, the internal/funcs calibration currency) into the host
// spec's per-byte cycle cost: the runner's svcTime divides cycles by
// IPC at BaseHz, so cycles/byte = 8·IPC·BaseHz/rate.
func hostPerByteCycles(rateBits float64) float64 {
	spec := cpu.XeonGold6140()
	return 8 * spec.IPC * spec.BaseHz / rateBits
}

// CryptoCompressSendPipeline chains the egress tax path: encrypt the
// payload on the PKA bulk engine (AES), deflate the ciphertext on the
// compression engine, then frame and transmit the shrunken result on a
// SNIC core. Requests are compressfn corpus chunks; the compress
// phase's payload transform comes from actually deflating a calibrated
// chunk (compressfn.ExpectedRatio), and both engines carry the host
// software cost model (AES-NI, single-core ISA-L) for policies that
// spill to host cores under load.
func CryptoCompressSendPipeline() *PipelineSpec {
	ratio := compressfn.ExpectedRatio(compressfn.InputApp)
	respSize := int(float64(compressfn.ChunkBytes) / ratio)
	return &PipelineSpec{
		Name:     "crypto-compress-send",
		Stack:    netstack.KindDPDK,
		ReqSize:  compressfn.ChunkBytes,
		RespSize: respSize,
		Phases: []PhaseSpec{
			{
				Name:     "encrypt",
				Resource: ResEngine,
				Engine:   EnginePKABulk, PKAAlgo: accel.AlgoAES,
				// Host fallback: the AES-NI software path.
				SpillPerByteCycles: hostPerByteCycles(cryptofn.CalibratedHostRates().AESBits),
			},
			{
				Name:     "compress",
				Resource: ResEngine,
				Engine:   EngineDeflate,
				// Host fallback: single-core ISA-L deflate.
				SpillPerByteCycles: hostPerByteCycles(compressfn.HostRates(compressfn.InputApp)),
				OutScale:           1 / ratio,
			},
			{
				// Framing + transmit bookkeeping on a SNIC serving core;
				// the TX-side stack cycles land here automatically (last
				// CPU phase).
				Name:       "send",
				Resource:   ResSNICCore,
				BaseCycles: 600, PerByteCycles: 0.05,
				CycleFactor: bf2CycleFactor(),
			},
		},
		KneeP99Mult: 3.0,
	}
}

// bf2CycleFactor is the generic Arm-vs-Skylake slowdown applied to
// portable per-packet code moved onto the SNIC cores — the same
// frequency/IPC gap the catalog solver starts from.
func bf2CycleFactor() float64 {
	host, snic := cpu.XeonGold6140(), cpu.BlueField2Arm()
	return (host.BaseHz * host.IPC) / (snic.BaseHz * snic.IPC)
}

// NATIDSPipeline chains the ingress tax path: translate each packet
// against a 10 K-entry NAT table on a host core, then match it against
// the file_executable rule set on the REM engine. Packet shape and the
// REM software model are the rem catalog row (DPDK, CTU mixed sizes,
// MemIntensity 0.3, 18 MiB rule working set); the NAT phase's working
// set is the generated table's real footprint.
func NATIDSPipeline() *PipelineSpec {
	table := nat.GenerateTable(nat.PaperEntrySizes[0], 0x7ab1e)
	return &PipelineSpec{
		Name:    "nat-ids",
		Stack:   netstack.KindDPDK,
		ReqSize: 745, RespSize: 32,
		Mixed: true,
		Phases: []PhaseSpec{
			{
				Name:       "nat",
				Resource:   ResHostCore,
				BaseCycles: 380, CycleFactor: 1,
				MemIntensity: 0.45,
				WorkingSet:   table.WorkingSetBytes(),
			},
			{
				Name:     "ids-match",
				Resource: ResEngine,
				Engine:   EngineREM,
				// Host fallback: the software REM scan for
				// file_executable (rem catalog cycle model).
				SpillBaseCycles: 420, SpillPerByteCycles: 1.75,
				MemIntensity: 0.3,
				WorkingSet:   18 << 20,
			},
		},
		KneeP99Mult: 2.5,
	}
}

// ExemplarPipelines returns the chained tax pipelines snicbench runs.
func ExemplarPipelines() []*PipelineSpec {
	return []*PipelineSpec{CryptoCompressSendPipeline(), NATIDSPipeline()}
}
