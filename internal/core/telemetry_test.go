package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// shortBursty is a trace small enough for unit tests: 20 intervals of
// 400 µs at sub-Gb/s rates.
func shortBursty() *trace.HyperscalerTrace {
	return BurstyTrace(0.4, 2, 20, 6, 400*sim.Microsecond)
}

func TestTelemetrySpanCountMatchesRequests(t *testing.T) {
	r := NewRunner()
	r.Telemetry = obs.NewCollector()
	cfg, err := Lookup("nat", "10K")
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultRunOpts()
	opts.Requests = 500
	opts.OfferedGbps = 0.2
	r.Run(cfg, HostCPU, opts)

	runs := r.Telemetry.Runs()
	if len(runs) != 1 {
		t.Fatalf("run count = %d, want 1", len(runs))
	}
	rec := runs[0]
	if rec.RootCount() != opts.Requests {
		t.Fatalf("request root spans = %d, want %d", rec.RootCount(), opts.Requests)
	}
	if rec.OpenCount() != 0 {
		t.Fatalf("open spans = %d, want 0 (every request completed)", rec.OpenCount())
	}
	if rec.SpanCount() <= rec.RootCount() {
		t.Fatalf("expected stage children beyond the %d roots, got %d spans total",
			rec.RootCount(), rec.SpanCount())
	}
	m := rec.Manifest()
	if m.Requests != opts.Requests {
		t.Fatalf("manifest requests = %d, want %d", m.Requests, opts.Requests)
	}
	if rec.SampleCount() == 0 {
		t.Fatal("sampler recorded no metric samples")
	}
}

func TestTelemetryDoesNotPerturbMeasurement(t *testing.T) {
	cfg, err := Lookup("nat", "10K")
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultRunOpts()
	opts.Requests = 400
	opts.OfferedGbps = 0.2

	plain := NewRunner()
	instrumented := NewRunner()
	instrumented.Telemetry = obs.NewCollector()
	a := plain.Run(cfg, HostCPU, opts)
	b := instrumented.Run(cfg, HostCPU, opts)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("telemetry changed the measurement:\n  off %+v\n  on  %+v", a, b)
	}
}

// TestTelemetryExportsIdenticalAcrossParallelism runs the fault-scenario
// family — which fans across goroutines — at parallelism 1 and 8 and
// requires every export to be byte-identical.
func TestTelemetryExportsIdenticalAcrossParallelism(t *testing.T) {
	tr := shortBursty()
	exports := func(par int) (trace, csv, manifests, metrics []byte) {
		r := NewRunner()
		r.Parallelism = par
		r.Telemetry = obs.NewCollector()
		mk := func() *HealthRouter {
			return NewHealthRouter(HWLoadBalancer(), DefaultFailoverPolicy())
		}
		r.RunFaultedSet(DefaultFaultScenarios(tr.Duration()), mk, tr, 2, 7)
		var bt, bc, bm, bj bytes.Buffer
		if err := r.Telemetry.WriteTrace(&bt); err != nil {
			t.Fatal(err)
		}
		if err := r.Telemetry.WriteMetricsCSV(&bc); err != nil {
			t.Fatal(err)
		}
		if err := r.Telemetry.WriteManifests(&bm); err != nil {
			t.Fatal(err)
		}
		if err := r.Telemetry.WriteMetricsJSON(&bj); err != nil {
			t.Fatal(err)
		}
		return bt.Bytes(), bc.Bytes(), bm.Bytes(), bj.Bytes()
	}
	t1, c1, m1, j1 := exports(1)
	t8, c8, m8, j8 := exports(8)
	if !bytes.Equal(t1, t8) {
		t.Error("trace export differs between parallelism 1 and 8")
	}
	if !bytes.Equal(c1, c8) {
		t.Error("metrics CSV differs between parallelism 1 and 8")
	}
	if !bytes.Equal(m1, m8) {
		t.Error("manifests differ between parallelism 1 and 8")
	}
	if !bytes.Equal(j1, j8) {
		t.Error("metrics JSON differs between parallelism 1 and 8")
	}
}

func TestFaultSensorDropoutSurfaced(t *testing.T) {
	// A trace long enough for the 100 ms Yocto-Watt cadence to tick, with
	// a dropout window swallowing some of those ticks.
	tr := BurstyTrace(0.05, 0.2, 40, 10, 10*sim.Millisecond) // 400 ms span
	var plan fault.Plan
	plan.Add(fault.Event{At: sim.Time(50 * sim.Millisecond), For: 250 * sim.Millisecond,
		Kind: fault.SensorDropout, Target: "yoctowatt"})
	scn := FaultScenario{Name: "sensor-gap", Desc: "yocto-watt offline", Plan: plan}

	r := NewRunner()
	hr := NewHealthRouter(HWLoadBalancer(), DefaultFailoverPolicy())
	res := r.RunFaulted(scn, hr, tr, 2, 11)
	if res.YoctoMissedSamples == 0 {
		t.Fatal("expected the dropout window to swallow Yocto-Watt samples")
	}
	if res.BMCMissedSamples != 0 {
		t.Fatalf("BMC was not dropped, missed = %d", res.BMCMissedSamples)
	}

	// The same replay without the dropout misses nothing.
	base := r.RunFaulted(FaultScenario{Name: "clean"}, hr, tr, 2, 11)
	if base.YoctoMissedSamples != 0 || base.BMCMissedSamples != 0 {
		t.Fatalf("clean replay reported missed samples: %+v", base)
	}
}
