package core

import (
	"testing"

	"repro/internal/flow"
	"repro/internal/sim"
)

// FuzzCheckedRun is the config fuzzer: arbitrary (catalog entry,
// platform, offered rate, seed) tuples run end to end under checked
// execution. It asserts no behaviour at all beyond the physical laws —
// the checker panics on any conservation, causality, clock or queue
// violation, and Finish panics if the run drains with requests
// unaccounted. Everything else (throughput, tails, power) is free to
// vary with the inputs.
func FuzzCheckedRun(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint16(10), uint64(1))
	f.Add(uint8(7), uint8(1), uint16(300), uint64(99))
	f.Add(uint8(255), uint8(2), uint16(0), uint64(12345))

	f.Fuzz(func(t *testing.T, ci, pi uint8, rate uint16, seed uint64) {
		catalog := Catalog()
		cfg := catalog[int(ci)%len(catalog)]
		plat := cfg.Platforms[int(pi)%len(cfg.Platforms)]
		r := NewRunner()
		r.Checks = true
		opts := RunOpts{
			Requests:   300,
			WarmupFrac: 0.1,
			Seed:       seed,
			// 0.05 .. ~4.1 Gb/s: spans idle through deep overload.
			OfferedGbps: 0.05 + float64(rate%410)/100,
		}
		m := r.Run(cfg, plat, opts)
		if m.TputGbps < 0 || m.ServerPowerW < 0 {
			t.Fatalf("negative measurement: %+v", m)
		}
		// Closed-loop modes ignore the offered rate, so the delivered
		// fraction is meaningful (≈ bounded by 1) only for open-loop
		// runs; window edge effects can push it a hair over.
		if m.DeliveredFrac < 0 {
			t.Fatalf("negative delivered fraction %v", m.DeliveredFrac)
		}
		if cfg.Closed == 0 && cfg.Mode == ModeNetServe && m.DeliveredFrac > 1.5 {
			t.Fatalf("open-loop delivered fraction %v implausible", m.DeliveredFrac)
		}
	})
}

// FuzzPipelineRun is the pipeline fuzzer: arbitrary (exemplar, policy,
// queue cap, offered rate, seed) tuples run under checked execution.
// Like FuzzCheckedRun it asserts invariants only — the whole-run and
// per-phase conservation ledgers, causality and queue sanity validate
// online and panic on violation — plus tally coherence: every injected
// request must be accounted for phase by phase.
func FuzzPipelineRun(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint16(50), uint64(1))
	f.Add(uint8(1), uint8(3), uint16(600), uint64(99))
	f.Add(uint8(2), uint8(250), uint16(0), uint64(12345))

	f.Fuzz(func(t *testing.T, pi, qc uint8, rate uint16, seed uint64) {
		specs := ExemplarPipelines()
		ps := specs[int(pi)%len(specs)]
		if pi%2 == 1 {
			ps.Fallback = SpillToHost{Watermark: int(qc)%32 + 1}
		}
		if qc > 0 {
			for i := range ps.Phases {
				ps.Phases[i].QueueCap = int(qc)
			}
		}
		r := NewRunner()
		r.Checks = true
		opts := RunOpts{
			Requests:   250,
			WarmupFrac: 0.1,
			Seed:       seed,
			// 0.05 .. ~80 Gb/s: idle through deep overload.
			OfferedGbps: 0.05 + float64(rate%800)/10,
		}
		pm := r.RunPipeline(ps, opts)
		if pm.Point.TputGbps < 0 || pm.Point.ServerPowerW < 0 || pm.Point.DeliveredFrac < 0 {
			t.Fatalf("negative measurement: %+v", pm.Point)
		}
		upstream := uint64(opts.Requests)
		for _, ph := range pm.Phases {
			if n := ph.Served + ph.Spilled + ph.Dropped; n != upstream {
				t.Fatalf("phase %q accounts for %d of %d upstream requests (%+v)",
					ph.Name, n, upstream, pm.Phases)
			}
			upstream = ph.Served + ph.Spilled
		}
	})
}

// FuzzOffloadRun is the flow-offload fuzzer: arbitrary (policy, eviction
// discipline, table capacity, churn rate, threshold, seed) tuples run
// the churn scenario end to end under checked execution. The flow
// invariants validate online — every packet must leave through exactly
// one datapath, the request ledger must balance, and table occupancy may
// never exceed capacity — and panic on violation. Absolute SLO or drop
// numbers are free to vary with the inputs.
func FuzzOffloadRun(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint16(64), uint16(30), uint8(4), uint64(1))
	f.Add(uint8(1), uint8(1), uint16(8), uint16(200), uint8(1), uint64(99))
	f.Add(uint8(2), uint8(2), uint16(0), uint16(0), uint8(255), uint64(12345))

	f.Fuzz(func(t *testing.T, pi, ev uint8, tcap, churn uint16, k uint8, seed uint64) {
		spec := DefaultOffloadSpec()
		// A short bursty trace keeps each case fast while still crossing
		// calm and overloaded intervals.
		spec.Trace = BurstyTrace(6, 26, 4, 2, sim.Millisecond)
		spec.Seed = seed
		spec.Mix.Concurrency = 128
		// 0 .. ~0.25 forced flow restarts per packet.
		spec.Mix.ChurnPerPacket = float64(churn%256) / 1024
		// 1 .. 256 rules: tiny tables stress eviction and the serialized
		// insert path far harder than the default 512.
		spec.Table.Capacity = int(tcap)%256 + 1
		spec.Table.Evict = []flow.EvictPolicy{flow.EvictLRU, flow.EvictIdle, flow.EvictPriority}[int(ev)%3]
		switch pi % 3 {
		case 0:
			spec.Policy = OffloadPolicy{Kind: OffloadStaticFunction}
		case 1:
			spec.Policy = OffloadPolicy{Kind: OffloadStaticFlow, Threshold: int(k)%64 + 1}
		default:
			spec.Policy = OffloadPolicy{Kind: OffloadAdaptive, Adaptive: flow.DefaultAdaptiveConfig()}
		}

		r := NewRunner()
		r.Checks = true
		res := r.RunOffload(spec)
		if res.FastPath+res.SlowPath != res.Sent {
			t.Fatalf("datapath split leaks: fast %d + slow %d != sent %d",
				res.FastPath, res.SlowPath, res.Sent)
		}
		if res.Completed+res.Dropped != res.Sent {
			t.Fatalf("request ledger leaks: done %d + dropped %d != sent %d",
				res.Completed, res.Dropped, res.Sent)
		}
		if res.SLOAttainment < 0 || res.SLOAttainment > 1 || res.DropRate < 0 || res.DropRate > 1 {
			t.Fatalf("rate out of range: slo=%g drop=%g", res.SLOAttainment, res.DropRate)
		}
		if res.OccupancyPeak > spec.Table.Capacity {
			t.Fatalf("occupancy peak %d exceeds capacity %d", res.OccupancyPeak, spec.Table.Capacity)
		}
	})
}
