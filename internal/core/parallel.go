package core

import (
	"sync"
	"sync/atomic"
)

// This file is the parallel experiment engine. The paper's evaluation is
// dozens of independent virtual-time simulations (Fig. 4 alone runs two
// MaxThroughput searches per catalog entry), and every simulation builds
// its own Testbed — private event queue, private RNG streams seeded only
// from (TestbedConfig.Seed, RunOpts.Seed) — so runs share no mutable
// state and can execute on any number of goroutines. Determinism is
// preserved by construction:
//
//  1. independent engines: nothing a worker computes can observe another
//     worker's scheduling, only its own virtual clock;
//  2. ordered merge: results land in caller-owned slots indexed by
//     submission order, so the assembled figure/table is byte-identical
//     to the sequential output for the same seed;
//  3. no shared RNG: seeds derive from the work item, never from a
//     stream that parallel workers would consume in racy order.
//
// The progress callback is the one deliberately unordered channel:
// completion order under parallelism is scheduling-dependent, so the
// callback reports only counts and a label, never results.

// forEach runs fn(i) for every i in [0, n) on at most workers
// goroutines. workers <= 1 degenerates to a plain loop on the calling
// goroutine; otherwise indices are handed out through an atomic counter
// so slow items don't convoy behind a fixed pre-partitioning.
func forEach(workers, n int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// forEachN fans fn across the runner's configured parallelism.
func (r *Runner) forEachN(n int, fn func(int)) {
	workers := r.parallelism()
	if workers > n {
		workers = n
	}
	r.Prof.notePool(workers, n)
	forEach(workers, n, fn)
}

// ForEach is the exported fan-out for sibling packages (package fleet
// runs one worker per simulated server). Results must land in
// caller-owned slots indexed by i, exactly as the internal experiments
// do, so merged output stays byte-identical at any parallelism.
func (r *Runner) ForEach(n int, fn func(int)) { r.forEachN(n, fn) }

// StepProgress returns a step function for an experiment of total rows,
// for callers outside this package that want the same serialized
// progress reporting the built-in experiments get.
func (r *Runner) StepProgress(total int) func(label string) {
	p := r.newProgress(total)
	return p.step
}

// parallelism normalizes the Parallelism knob: 0 (zero value) and 1 both
// mean sequential.
func (r *Runner) parallelism() int {
	if r.Parallelism < 1 {
		return 1
	}
	return r.Parallelism
}

// progressTracker counts completed rows of one experiment and forwards
// them to the runner's Progress callback.
type progressTracker struct {
	r     *Runner
	mu    sync.Mutex
	done  int
	total int
}

// newProgress returns a tracker for an experiment of total rows. It is
// cheap enough to create unconditionally; with no Progress callback set
// every step is a no-op.
func (r *Runner) newProgress(total int) *progressTracker {
	return &progressTracker{r: r, total: total}
}

// step records one finished row and reports it. Callbacks are serialized
// across all concurrent trackers (experiments may nest or overlap), so a
// user callback needs no locking of its own.
func (p *progressTracker) step(label string) {
	if p == nil || p.r.Progress == nil {
		return
	}
	p.mu.Lock()
	p.done++
	done := p.done
	p.mu.Unlock()
	p.r.reportProgress(done, p.total, label)
}

// reportProgress invokes the Progress callback under the runner-wide
// progress lock.
func (r *Runner) reportProgress(done, total int, label string) {
	if r.Progress == nil {
		return
	}
	r.progMu.Lock()
	defer r.progMu.Unlock()
	r.Progress(done, total, label)
}
