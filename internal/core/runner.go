package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/accel"
	"repro/internal/cpu"
	"repro/internal/invariant"
	"repro/internal/netstack"
	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Measurement is one (function, variant, platform) result — a cell of
// Fig. 4/Fig. 6, or one operating point of Fig. 5.
type Measurement struct {
	Function string
	Variant  string
	Platform Platform

	OfferedGbps   float64
	Ops           uint64
	TputOps       float64 // operations per second
	TputGbps      float64 // payload data rate
	DeliveredFrac float64 // completions / offered within the window
	Latency       stats.Summary

	ServerPowerW float64 // BMC-domain average (includes SNIC)
	SNICPowerW   float64 // Yocto-Watt-domain average
	// EffOpsPerJoule and EffBitsPerJoule are system-wide energy
	// efficiencies (throughput over server power).
	EffOpsPerJoule  float64
	EffBitsPerJoule float64

	HostUtil, SNICUtil, EngineUtil float64
}

func (m Measurement) String() string {
	return fmt.Sprintf("%s/%s on %s: %.3f Gb/s (%.0f ops/s), p99 %v, server %.1f W",
		m.Function, m.Variant, m.Platform, m.TputGbps, m.TputOps, m.Latency.P99, m.ServerPowerW)
}

// RunOpts controls one simulation run.
type RunOpts struct {
	// OfferedGbps is the open-loop request payload rate (ignored by
	// closed-loop modes).
	OfferedGbps float64
	// Requests is how many requests the client issues (open loop) or
	// how many operations complete before the run ends (closed loop).
	Requests int
	// WarmupFrac of early completions are excluded from statistics.
	WarmupFrac float64
	// Seed perturbs the run's random streams.
	Seed uint64
}

// DefaultRunOpts returns measurement-grade settings.
func DefaultRunOpts() RunOpts {
	return RunOpts{Requests: 24000, WarmupFrac: 0.15, Seed: 7}
}

// probeOpts returns quick settings for capacity probing.
func probeOpts(seed uint64) RunOpts {
	return RunOpts{Requests: 6000, WarmupFrac: 0.2, Seed: seed}
}

// Runner executes catalog entries on platforms. A Runner is safe for
// concurrent use: every simulation builds a private Testbed, and the
// memo cache and progress plumbing are internally synchronized. Set
// TBConfig/Parallelism/Progress before launching experiments, not while
// they run. Runners hold locks — share by pointer, never copy.
type Runner struct {
	// Testbed configuration template.
	TBConfig TestbedConfig
	// Parallelism bounds how many simulations the experiment drivers
	// (Fig4For, Fig5, Table4, RunFaultedSet, AdviseAll) run concurrently.
	// 0 and 1 both mean sequential; results are byte-identical at every
	// setting because merges happen in submission order.
	Parallelism int
	// Progress, when set, receives per-row completion callbacks from the
	// experiment drivers and per-probe callbacks from MaxThroughput.
	// Invocations are serialized; done counts are per-experiment. The
	// callback must not mutate the runner.
	Progress func(done, total int, label string)
	// Telemetry, when set, collects a per-run obs.Recorder from every
	// simulation: request spans, sampled gauges, and resource counters,
	// exported deterministically at any parallelism. Nil disables all
	// recording (the default); see snic.WithTelemetry.
	Telemetry *obs.Collector
	// Checks enables checked execution: every simulation gets a per-run
	// invariant.Checker that validates conservation, causality, clock
	// monotonicity and queue sanity online and panics with a typed
	// *invariant.Violation on the first broken law. Off by default; see
	// snic.WithInvariantChecks and internal/invariant.
	Checks bool
	// Prof, when set (via SetProfiler), aggregates simulator
	// self-profiling — engine events, heap high-water, cancel sweeps,
	// cache and pool traffic — across every simulation. Nil disables all
	// self-profiling (the default); see snic.WithSelfProfile.
	Prof *Profiler

	cache  measureCache
	sims   atomic.Uint64
	progMu sync.Mutex
}

// NewRunner returns a runner with the default testbed.
func NewRunner() *Runner { return &Runner{TBConfig: DefaultTestbedConfig()} }

// Sims returns how many simulations this runner has actually executed
// (cache hits excluded) — the denominator of the memoization win.
func (r *Runner) Sims() uint64 { return r.sims.Load() }

// CacheStats reports memo-cache hits and misses.
func (r *Runner) CacheStats() (hits, misses uint64) { return r.cache.stats() }

// runctx is the per-run wiring.
type runctx struct {
	tb   *Testbed
	cfg  *Config
	plat Platform
	opts RunOpts

	prof     netstack.Profile
	pool     *cpu.Pool
	ep       *netstack.Endpoint
	arrivals *trace.Arrivals
	sizes    trace.SizeDist
	jit      *sim.RNG

	hist    *stats.Histogram
	meter   *stats.Meter
	sent    int
	done    int
	warmupN int

	reqBytesSent uint64
	// lastSend closes the measurement window: counting completions that
	// straggle in during the post-send drain would understate overload
	// (the drain stretches the window) and hide saturation.
	lastSend sim.Time

	// rec is the run's telemetry recorder; nil when telemetry is off.
	rec *obs.Recorder
	// chk is the run's invariant checker; nil when checks are off.
	chk *invariant.Checker
}

// noteSent records a request issue; at the final request it arranges the
// meter to close, truncating the window at the end of offered load.
func (ctx *runctx) noteSent() {
	ctx.sent++
	if ctx.sent == ctx.opts.Requests {
		ctx.lastSend = ctx.tb.Eng.Now()
	}
}

// Run returns the measurement of cfg on platform at the given operating
// point, simulating it the first time and serving the memoized result —
// byte-identical by determinism — on every repeat of the same
// (config, platform, testbed, options) key.
//
// Run is a thin adapter over Execute (the unified Workload API); it
// keeps the legacy panic on an impossible (config, platform) pairing.
func (r *Runner) Run(cfg *Config, plat Platform, opts RunOpts) Measurement {
	if !cfg.HasPlatform(plat) {
		panic(fmt.Sprintf("core: %s does not run on %s", cfg.Name(), plat))
	}
	res, err := r.Execute(Workload{Kind: WorkloadPoint, Config: cfg, Platform: plat, Opts: opts})
	if err != nil {
		panic(err)
	}
	return *res.Point
}

// runPoint is the memoized point-measurement implementation behind
// Execute and Run.
func (r *Runner) runPoint(cfg *Config, plat Platform, opts RunOpts) Measurement {
	key := runKey(cfg, plat, r.TBConfig, opts)
	if m, ok := r.cache.lookupRun(key); ok {
		return m
	}
	m := r.simulate(cfg, plat, opts)
	r.cache.storeRun(key, m)
	return m
}

// runSeed folds the testbed's master seed into one run's seed. The
// default master seed leaves per-run streams exactly as a standalone
// opts.Seed would, so the published figures are unchanged; any other
// WithSeed/TBConfig.Seed value shifts every derived stream.
func (r *Runner) runSeed(seed uint64) uint64 {
	return seed ^ (r.TBConfig.Seed^defaultMasterSeed)*0x9e3779b97f4a7c15
}

// simulate builds a fresh testbed and executes one run.
func (r *Runner) simulate(cfg *Config, plat Platform, opts RunOpts) Measurement {
	r.sims.Add(1)
	seed := r.runSeed(opts.Seed)
	tbc := r.TBConfig
	tbc.Seed ^= seed * 0x9e3779b97f4a7c15
	if cfg.HostCores > 0 {
		tbc.HostCores = cfg.HostCores
	}
	if cfg.SNICCores > 0 {
		tbc.SNICCores = cfg.SNICCores
	}
	tb := NewTestbed(tbc)

	ctx := &runctx{
		tb: tb, cfg: cfg, plat: plat, opts: opts,
		prof:     netstack.ByKind(cfg.Stack),
		arrivals: trace.NewPoissonArrivals(seed ^ 0xabcdef),
		jit:      sim.NewRNG(seed ^ 0x1234),
		hist:     stats.NewHistogram(),
		warmupN:  int(float64(opts.Requests) * opts.WarmupFrac),
	}
	if cfg.Mixed {
		ctx.sizes = trace.CTUMixed()
	} else {
		ctx.sizes = trace.Fixed(cfg.ReqSize)
	}
	ctx.pool = tb.PoolFor(plat)
	ctx.pool.JitterSigma = 0 // the runner applies jitter itself
	ctx.pool.SetQueueCapacity(4096)
	ctx.ep = netstack.NewEndpoint(tb.Eng, ctx.prof, ctx.pool, seed^0x77)

	ctx.rec = r.newRecorder(runKey(cfg, plat, r.TBConfig, opts), runLabel(cfg, plat, opts))
	ctx.chk = r.newChecker(runLabel(cfg, plat, opts))
	instrumentTestbed(tb, ctx.rec, ctx.chk)

	// Power bookkeeping: which pools are live, poll-mode pinning, and
	// whether traffic crosses into host memory.
	switch plat {
	case HostCPU:
		tb.ActivateSNICPools(0, 0)
		tb.SetPolling(HostCPU, cfg.Stack == netstack.KindDPDK && cfg.Mode != ModeSwitched)
		tb.SetHostTrafficShare(1)
		if cfg.Mode == ModeSwitched {
			// OvS host case: the eSwitch forwards in hardware but the
			// megaflow/upcall path still DMAs samples into host memory.
			tb.SetHostTrafficShare(1)
		}
	case SNICCPU:
		tb.ActivateSNICPools(1, 0)
		tb.SetPolling(SNICCPU, cfg.Stack == netstack.KindDPDK && cfg.Mode != ModeSwitched)
		tb.SetHostTrafficShare(0)
	case SNICAccel:
		tb.ActivateSNICPools(0, 1)
		tb.SetPolling(SNICCPU, true) // staging cores poll DPDK / feed engines
		tb.SetHostTrafficShare(0)
	}

	switch cfg.Mode {
	case ModeNetServe:
		ctx.runNetServe()
	case ModeLocal:
		ctx.runLocal()
	case ModeStorage:
		ctx.runStorage()
	case ModeSwitched:
		ctx.runSwitched()
	default:
		panic(fmt.Sprintf("core: unknown mode %q", cfg.Mode))
	}
	r.finishChecks(ctx)
	r.finishRecorder(ctx)
	return ctx.measurement()
}

// appCycles returns the application cycle cost for a request of size
// bytes on the current platform.
func (ctx *runctx) appCycles(size int) float64 {
	c := ctx.cfg.HostBaseCycles + ctx.cfg.HostPerByteCycles*float64(size)
	if ctx.plat != HostCPU {
		c *= ctx.cfg.SNICFactor
	}
	if ctx.cfg.Mixed && ctx.plat == HostCPU {
		// Real-trace payloads cost the software scanner extra match
		// verification (see Config.MixedExtraCycles).
		c += ctx.cfg.MixedExtraCycles
	}
	return c
}

// svcTime composes stack + application cycles into a jittered service
// time with the platform's memory penalty applied.
func (ctx *runctx) svcTime(reqSize, respSize int) sim.Duration {
	spec := ctx.tb.SpecFor(ctx.plat)
	cycles := ctx.prof.RxCycles(spec.Arch, reqSize) +
		ctx.prof.TxCycles(spec.Arch, respSize) +
		ctx.appCycles(reqSize)
	base := sim.Cycles(cycles/spec.IPC, spec.BaseHz)
	ws := ctx.cfg.WorkingSetHost
	if ctx.plat != HostCPU {
		ws = ctx.cfg.WorkingSetSNIC
	}
	pen := ctx.tb.MemFor(ctx.plat).Penalty(ctx.cfg.MemIntensity, ws, ctx.tb.SpecFor(ctx.plat).L3Bytes)
	base = sim.Duration(float64(base) * pen)
	sigma := ctx.cfg.HostSigma
	if ctx.plat != HostCPU {
		sigma = ctx.cfg.SNICSigma
	}
	if sigma == 0 {
		sigma = 0.20
	}
	return ctx.jit.LogNormalDur(base, sigma)
}

// extraLatency returns the per-platform calibrated fixed residual.
func (ctx *runctx) extraLatency() sim.Duration {
	if ctx.cfg.ExtraLatency == nil {
		return 0
	}
	return ctx.cfg.ExtraLatency[ctx.plat]
}

// record tallies one completed operation.
func (ctx *runctx) record(rtt sim.Duration, bytes int) {
	ctx.done++
	if ctx.done == ctx.warmupN {
		ctx.meter = stats.NewMeter(ctx.tb.Eng.Now())
		return
	}
	if ctx.done < ctx.warmupN || ctx.meter == nil {
		return
	}
	ctx.hist.Record(rtt)
	// Completions that straggle in after the offered load ended are
	// drain artifacts: they belong in the latency distribution but not
	// in the throughput window.
	if ctx.lastSend > 0 && ctx.tb.Eng.Now() > ctx.lastSend {
		return
	}
	ctx.meter.Mark(ctx.tb.Eng.Now(), bytes)
}

// ---- ModeNetServe ----

func (ctx *runctx) runNetServe() {
	eng := ctx.tb.Eng
	dest := nic.ToHostCPU
	switch ctx.plat {
	case SNICCPU:
		dest = nic.ToSNICCPU
	case SNICAccel:
		dest = nic.ToAccelerator
	}
	ctx.tb.Sw.Program(func(*nic.Packet) nic.Destination { return dest })

	ctx.tb.Sw.Connect(nic.ToHostCPU, ctx.cpuSink)
	ctx.tb.Sw.Connect(nic.ToSNICCPU, ctx.cpuSink)
	ctx.tb.Sw.Connect(nic.ToAccelerator, ctx.accelSink)

	var submit func()
	submit = func() {
		if ctx.sent >= ctx.opts.Requests {
			return
		}
		ctx.noteSent()
		size := ctx.sizes.Next(ctx.jit)
		pkt := &nic.Packet{Seq: uint64(ctx.sent), Size: size, SentAt: eng.Now(),
			Span: uint32(ctx.openRequest())}
		ctx.noteInject(pkt.Seq, size)
		ctx.reqBytesSent += uint64(size)
		ctx.tb.Wire.SendToServer(pkt, ctx.tb.Sw.Ingress)
		eng.After(ctx.arrivals.Gap(size, ctx.opts.OfferedGbps*1e9), submit)
	}
	eng.At(0, submit)
	eng.Run()
	ctx.finishEngineUtil()
}

// cpuSink serves a packet on the platform's core pool (run to
// completion: stack RX + application + stack TX on one core).
func (ctx *runctx) cpuSink(pkt *nic.Packet) {
	eng := ctx.tb.Eng
	root := obs.SpanID(pkt.Span)
	ctx.stage(root, spanIngress, pkt.SentAt, eng.Now())
	respSize := ctx.cfg.RespSize
	svc := ctx.svcTime(pkt.Size, respSize)
	inFixed := ctx.ep.FixedDelay() + ctx.extraLatency()
	rxDone := eng.Now()
	eng.After(inFixed, func() {
		enq := eng.Now()
		ctx.stage(root, spanStackRx, rxDone, enq)
		ok := ctx.pool.ExecDuration(svc, func(s, e sim.Time) {
			if root != 0 && s > enq {
				ctx.stage(root, spanQueue, enq, s)
			}
			ctx.stage(root, spanService, s, e)
			eng.After(ctx.ep.FixedDelay(), func() {
				txAt := eng.Now()
				resp := &nic.Packet{Seq: pkt.Seq, Size: respSize, SentAt: pkt.SentAt}
				ctx.tb.Wire.SendToClient(resp, func(p *nic.Packet) {
					ctx.stage(root, spanReturn, txAt, eng.Now())
					ctx.closeRequest(root)
					ctx.noteComplete(pkt.Seq, pkt.Size)
					ctx.record(eng.Now().Sub(p.SentAt), pkt.Size)
				})
			})
		})
		if !ok {
			ctx.noteDrop(pkt.Seq, pkt.Size)
		}
	})
}

// accelSink routes a packet through the staging cores into the bound
// engine (the DOCA path of §2.2). The staging cost charged up front
// includes the result pickup work (~100 cycles), so completions ride a
// small fixed delay rather than re-entering the staging queue — a
// dropped RX must never be able to orphan a finished engine task.
func (ctx *runctx) accelSink(pkt *nic.Packet) {
	eng := ctx.tb.Eng
	root := obs.SpanID(pkt.Span)
	ctx.stage(root, spanIngress, pkt.SentAt, eng.Now())
	arrive := eng.Now()
	spec := ctx.tb.SNICSpec
	stageCycles := (ctx.prof.RxCycles(spec.Arch, pkt.Size) +
		accel.StagingCyclesPerTask + accel.StagingCyclesPerByte*float64(pkt.Size) + 100)
	stageSvc := ctx.jit.LogNormalDur(sim.Cycles(stageCycles/spec.IPC, spec.BaseHz), 0.15)
	ok := ctx.pool.ExecDuration(stageSvc, func(s, e sim.Time) {
		if root != 0 && s > arrive {
			ctx.stage(root, spanQueue, arrive, s)
		}
		ctx.stage(root, spanStaging, s, e)
		ctx.engineSubmit(pkt.Size, func(es, ee sim.Time) {
			ctx.stage(root, spanEngine, es, ee)
			eng.After(200*sim.Nanosecond, func() {
				txAt := eng.Now()
				resp := &nic.Packet{Seq: pkt.Seq, Size: ctx.cfg.RespSize, SentAt: pkt.SentAt}
				ctx.tb.Wire.SendToClient(resp, func(p *nic.Packet) {
					ctx.stage(root, spanReturn, txAt, eng.Now())
					ctx.closeRequest(root)
					ctx.noteComplete(pkt.Seq, pkt.Size)
					ctx.record(eng.Now().Sub(p.SentAt), pkt.Size)
				})
			})
		})
	})
	if !ok {
		ctx.noteDrop(pkt.Seq, pkt.Size)
	}
}

// engineSubmit dispatches one task to the config's engine; done receives
// the engine-side service window. No fault plan runs through this path,
// so a rejection can only be a wiring bug.
func (ctx *runctx) engineSubmit(size int, done func(start, end sim.Time)) {
	var err error
	switch ctx.cfg.Engine {
	case EngineREM:
		err = ctx.tb.REM.Submit(size, done)
	case EngineDeflate:
		err = ctx.tb.Deflate.Submit(size, done)
	case EnginePKABulk:
		err = ctx.tb.PKA.SubmitBulk(ctx.cfg.PKAAlgo, size, done)
	case EnginePKAOp:
		err = ctx.tb.PKA.SubmitOp(ctx.cfg.PKAAlgo, done)
	default:
		panic(fmt.Sprintf("core: %s has no engine binding", ctx.cfg.Name()))
	}
	if err != nil {
		panic(err)
	}
}

// finishEngineUtil snapshots engine utilization into the power signal.
func (ctx *runctx) finishEngineUtil() {
	var u float64
	switch ctx.cfg.Engine {
	case EngineREM:
		u = ctx.tb.REM.Utilization()
	case EngineDeflate:
		u = ctx.tb.Deflate.Utilization()
	case EnginePKABulk, EnginePKAOp:
		u = ctx.tb.PKA.Utilization()
	}
	if ctx.plat == SNICAccel {
		ctx.tb.SetEngineUtil(u)
	}
}

// ---- ModeLocal (crypto, compression) ----

func (ctx *runctx) runLocal() {
	eng := ctx.tb.Eng
	size := ctx.cfg.LocalOpBytes
	var worker func()
	worker = func() {
		if ctx.sent >= ctx.opts.Requests {
			return
		}
		ctx.sent++
		seq := uint64(ctx.sent)
		start := eng.Now()
		root := ctx.openRequest()
		ctx.noteInject(seq, size)
		finish := func() {
			ctx.closeRequest(root)
			ctx.noteComplete(seq, size)
			ctx.record(eng.Now().Sub(start), size)
			worker()
		}
		switch ctx.plat {
		case HostCPU, SNICCPU:
			if !ctx.pool.ExecDuration(ctx.localSvcTime(size), func(s, e sim.Time) {
				ctx.stage(root, spanService, s, e)
				finish()
			}) {
				ctx.noteDrop(seq, size)
			}
		case SNICAccel:
			// One staging core programs the engine's command registers.
			spec := ctx.tb.SNICSpec
			prep := sim.Cycles(400/spec.IPC, spec.BaseHz)
			if !ctx.pool.ExecDuration(prep, func(s, e sim.Time) {
				ctx.stage(root, spanStaging, s, e)
				ctx.engineSubmit(size, func(es, ee sim.Time) {
					ctx.stage(root, spanEngine, es, ee)
					finish()
				})
			}) {
				ctx.noteDrop(seq, size)
			}
		}
	}
	for i := 0; i < ctx.closedDepth(); i++ {
		eng.At(0, worker)
	}
	eng.Run()
	ctx.finishEngineUtil()
}

// closedDepth returns the closed-loop depth for the current platform.
func (ctx *runctx) closedDepth() int {
	d := ctx.cfg.Closed
	if ctx.plat != HostCPU && ctx.cfg.ClosedSNIC > 0 {
		d = ctx.cfg.ClosedSNIC
	}
	if d <= 0 {
		d = 1
	}
	return d
}

// localSvcTime converts the config's ISA-path rates into per-op service
// time on a CPU platform.
func (ctx *runctx) localSvcTime(size int) sim.Duration {
	var base sim.Duration
	switch {
	case ctx.cfg.HostRateOps > 0:
		base = sim.Duration(float64(sim.Second) / ctx.cfg.HostRateOps)
	case ctx.cfg.HostRateBits > 0:
		base = sim.DurationOf(size, ctx.cfg.HostRateBits)
	default:
		panic(fmt.Sprintf("core: %s local mode needs a host rate", ctx.cfg.Name()))
	}
	if ctx.plat != HostCPU {
		// The SNIC CPU lacks the ISA path entirely; it runs the portable
		// implementation SNICFactor× slower after the IPC/frequency gap.
		spec := ctx.tb.SNICSpec
		host := ctx.tb.HostSpec
		gap := (host.BaseHz * host.IPC) / (spec.BaseHz * spec.IPC)
		base = sim.Duration(float64(base) * gap * ctx.cfg.SNICFactor)
	}
	return ctx.jit.LogNormalDur(base, 0.12)
}

// ---- ModeStorage (fio over NVMe-oF) ----

// runStorage drives block I/O open-loop at the offered data rate: fio
// keeps the configured iodepth outstanding, which against a RAMDisk
// target behind the NVMe-oF offload engine keeps the wire, not the
// round trip, the bottleneck.
func (ctx *runctx) runStorage() {
	eng := ctx.tb.Eng
	const block = 64 << 10
	deviceLat := 9 * sim.Microsecond
	spec := ctx.tb.SpecFor(ctx.plat)

	serveIO := func(start sim.Time, root obs.SpanID, seq uint64) {
		// Initiator CPU posts the command.
		post := ctx.jit.LogNormalDur(
			sim.Cycles(ctx.appCycles(ctx.cfg.ReqSize)/spec.IPC, spec.BaseHz), 0.15)
		ok := ctx.pool.ExecDuration(post, func(s, e sim.Time) {
			ctx.stage(root, spanService, s, e)
			fixed := ctx.ep.FixedDelay() + ctx.extraLatency()
			eng.After(fixed, func() {
				// Command crosses the wire; the target's NVMe-oF offload
				// engine serves it with no CPU, then the data block
				// crosses back (read) or is written (write) — either way
				// one 64 KB transfer occupies the wire.
				cmdAt := eng.Now()
				cmd := &nic.Packet{Size: 96, SentAt: start}
				ctx.tb.Wire.SendToClient(cmd, func(*nic.Packet) {
					ctx.stage(root, spanIngress, cmdAt, eng.Now())
					devAt := eng.Now()
					eng.After(deviceLat, func() {
						ctx.stage(root, spanDevice, devAt, eng.Now())
						dataAt := eng.Now()
						data := &nic.Packet{Size: block, SentAt: start}
						ctx.tb.Wire.SendToServer(data, func(p *nic.Packet) {
							ctx.stage(root, spanReturn, dataAt, eng.Now())
							// Completion interrupt/poll on the initiator.
							comp := sim.Cycles(600/spec.IPC, spec.BaseHz)
							if !ctx.pool.ExecDuration(comp, func(_, _ sim.Time) {
								ctx.closeRequest(root)
								ctx.noteComplete(seq, block)
								ctx.record(eng.Now().Sub(p.SentAt), block)
							}) {
								ctx.noteDrop(seq, block)
							}
						})
					})
				})
			})
		})
		if !ok {
			ctx.noteDrop(seq, block)
		}
	}
	var issue func()
	issue = func() {
		if ctx.sent >= ctx.opts.Requests {
			return
		}
		ctx.noteSent()
		seq := uint64(ctx.sent)
		ctx.noteInject(seq, block)
		serveIO(eng.Now(), ctx.openRequest(), seq)
		eng.After(ctx.arrivals.Gap(block, ctx.opts.OfferedGbps*1e9), issue)
	}
	eng.At(0, issue)
	eng.Run()
}

// ---- ModeSwitched (OvS) ----

func (ctx *runctx) runSwitched() {
	eng := ctx.tb.Eng
	spec := ctx.tb.SpecFor(ctx.plat)
	upcall := ctx.jit.Fork(5)

	var submit func()
	submit = func() {
		if ctx.sent >= ctx.opts.Requests {
			return
		}
		ctx.noteSent()
		seq := uint64(ctx.sent)
		size := ctx.cfg.ReqSize
		pkt := &nic.Packet{Seq: seq, Size: size, SentAt: eng.Now(), Span: uint32(ctx.openRequest())}
		ctx.noteInject(seq, size)
		ctx.tb.Wire.SendToServer(pkt, func(p *nic.Packet) {
			root := obs.SpanID(p.Span)
			// Hardware datapath: eSwitch forwards at line rate.
			eng.After(ctx.tb.Sw.SwitchDelay, func() {
				ctx.stage(root, spanIngress, p.SentAt, eng.Now())
				txAt := eng.Now()
				resp := &nic.Packet{Size: size, SentAt: p.SentAt}
				ctx.tb.Wire.SendToClient(resp, func(q *nic.Packet) {
					ctx.stage(root, spanReturn, txAt, eng.Now())
					ctx.closeRequest(root)
					ctx.noteComplete(seq, size)
					ctx.record(eng.Now().Sub(q.SentAt), size)
				})
			})
			// Control-plane upcall for cache-miss flows.
			if upcall.Float64() < ctx.cfg.UpcallFrac {
				c := ctx.appCycles(size)
				ctx.pool.ExecDuration(sim.Cycles(c/spec.IPC, spec.BaseHz), nil)
			}
		})
		eng.After(ctx.arrivals.Gap(size+nic.EthernetOverhead, ctx.opts.OfferedGbps*1e9), submit)
	}
	eng.At(0, submit)
	eng.Run()
}

// ---- Results ----

func (ctx *runctx) measurement() Measurement {
	m := Measurement{
		Function:    ctx.cfg.Function,
		Variant:     ctx.cfg.Variant,
		Platform:    ctx.plat,
		OfferedGbps: ctx.opts.OfferedGbps,
		Latency:     ctx.hist.Summarize(),
		HostUtil:    ctx.tb.HostPool.Utilization(),
		EngineUtil:  ctx.tb.engineUtil,
	}
	if ctx.plat == SNICAccel {
		m.SNICUtil = ctx.tb.StagingPool.Utilization()
	} else {
		m.SNICUtil = ctx.tb.SNICPool.Utilization()
	}
	if ctx.meter != nil {
		closeAt := ctx.tb.Eng.Now()
		if ctx.lastSend > 0 && ctx.lastSend < closeAt {
			closeAt = ctx.lastSend
		}
		ctx.meter.Close(closeAt)
		m.Ops = ctx.meter.Ops()
		m.TputOps = ctx.meter.OpsPerSec()
		m.TputGbps = ctx.meter.Gbps()
	}
	if ctx.opts.OfferedGbps > 0 {
		// Sustainability signal: achieved data rate over offered. In an
		// overloaded open-loop run the drain tail stretches the meter
		// window, so achieved ≈ service capacity < offered.
		m.DeliveredFrac = m.TputGbps / ctx.opts.OfferedGbps
	} else {
		m.DeliveredFrac = 1
	}
	// Average power from the calibrated model over run-average
	// utilizations (the signals are cumulative).
	m.ServerPowerW = float64(ctx.tb.Power.Server.Power())
	m.SNICPowerW = float64(ctx.tb.Power.SNIC.Power())
	if m.ServerPowerW > 0 {
		m.EffOpsPerJoule = m.TputOps / m.ServerPowerW
		m.EffBitsPerJoule = m.TputGbps * 1e9 / m.ServerPowerW
	}
	return m
}

// ---- Max-throughput search ----

// MaxThroughput finds the paper's operating point: the highest offered
// rate the platform sustains (delivered ≈ offered), then measures
// throughput, p99 and power there (§4: "We set the packet rate at which
// we get the maximum throughput ... and then measure the p99 latency at
// that rate").
func (r *Runner) MaxThroughput(cfg *Config, plat Platform) Measurement {
	label := "search " + cfg.Name() + " @ " + string(plat)
	if cfg.Mode == ModeLocal {
		// Closed-loop mode self-saturates; no search needed.
		prog := r.newProgress(1)
		defer prog.step(label)
		return r.Run(cfg, plat, DefaultRunOpts())
	}
	if cfg.Mode == ModeSwitched {
		// OvS runs at its configured load fraction of line rate.
		load := 1.0
		if cfg.Variant == "load10" {
			load = 0.10
		}
		opts := DefaultRunOpts()
		opts.OfferedGbps = load * r.TBConfig.LinkGbps() * float64(cfg.ReqSize) / float64(cfg.ReqSize+nic.EthernetOverhead)
		prog := r.newProgress(1)
		defer prog.step(label)
		return r.Run(cfg, plat, opts)
	}

	// 11 runs: light-load baseline, 9 binary-search probes, final point.
	prog := r.newProgress(11)
	est := r.estimateCapacityGbps(cfg, plat)
	// Baseline latency at light load defines the "reasonable p99" bound
	// for the knee search (cf. Fig. 5: the host's REM throughput is
	// quoted "when a reasonable p99 latency value is considered").
	baseOpts := probeOpts(11)
	baseOpts.OfferedGbps = est * 0.2
	baseline := r.Run(cfg, plat, baseOpts)
	prog.step(label)
	p99Cap := sim.Duration(float64(baseline.Latency.P99) * cfg.kneeMult())

	lo, hi := est*0.3, math.Min(est*1.9, r.TBConfig.LinkGbps()*0.98)
	if hi <= lo {
		hi = lo * 1.5
	}
	best := lo
	for i := 0; i < 9; i++ {
		mid := (lo + hi) / 2
		opts := probeOpts(uint64(100 + i))
		opts.OfferedGbps = mid
		probe := r.Run(cfg, plat, opts)
		prog.step(label)
		if probe.DeliveredFrac >= 0.97 && probe.Latency.P99 <= p99Cap {
			best = mid
			lo = mid
		} else {
			hi = mid
		}
	}
	defer prog.step(label)
	opts := DefaultRunOpts()
	// Measure below the accepted knee: the longer measurement window
	// would otherwise random-walk a borderline queue deeper than the
	// short probes saw. Batching accelerators get extra headroom — their
	// queues are in whole batches, so the walk is coarser.
	margin := 0.97
	if plat == SNICAccel {
		margin = 0.93
	}
	opts.OfferedGbps = best * margin
	return r.Run(cfg, plat, opts)
}

// kneeMult is the "reasonable p99" multiplier over light-load latency
// that defines the maximum sustainable operating point.
func (c *Config) kneeMult() float64 {
	if c.KneeP99Mult > 0 {
		return c.KneeP99Mult
	}
	return 3.0
}

// estimateCapacityGbps computes an analytic capacity seed for the search.
func (r *Runner) estimateCapacityGbps(cfg *Config, plat Platform) float64 {
	tbc := r.TBConfig
	if cfg.HostCores > 0 {
		tbc.HostCores = cfg.HostCores
	}
	if cfg.SNICCores > 0 {
		tbc.SNICCores = cfg.SNICCores
	}
	tb := NewTestbed(tbc)
	meanReq := cfg.ReqSize
	if cfg.Mixed {
		meanReq = int(trace.CTUMixed().Mean())
	}
	link := r.TBConfig.LinkGbps()
	lineGbps := link * float64(meanReq) / float64(meanReq+nic.EthernetOverhead)
	if cfg.Mode == ModeStorage {
		// Block I/O saturates the wire with 64 KB transfers.
		return link * 65536 / (65536 + 44*nic.EthernetOverhead)
	}
	if cfg.Mode == ModeLocal {
		return r.estimateLocalGbps(tb, cfg, plat)
	}

	if plat == SNICAccel {
		engineBits := r.engineRateBits(tb, cfg)
		spec := tb.SNICSpec
		stageCycles := netstack.ByKind(cfg.Stack).RxCycles(spec.Arch, meanReq) +
			accel.StagingCyclesPerTask + accel.StagingCyclesPerByte*float64(meanReq) + 100
		stageTime := sim.Cycles(stageCycles/spec.IPC, spec.BaseHz)
		stageBits := float64(tb.StagingPool.Cores()) / stageTime.Seconds() * float64(meanReq) * 8
		return math.Min(math.Min(engineBits, stageBits)/1e9, lineGbps)
	}

	app := cfg.HostBaseCycles + cfg.HostPerByteCycles*float64(meanReq)
	pool := tb.PoolFor(plat)
	spec := tb.SpecFor(plat)
	prof := netstack.ByKind(cfg.Stack)
	if plat != HostCPU {
		app *= cfg.SNICFactor
	} else if cfg.Mixed {
		app += cfg.MixedExtraCycles
	}
	cycles := prof.RxCycles(spec.Arch, meanReq) + prof.TxCycles(spec.Arch, cfg.RespSize) + app
	ws := cfg.WorkingSetHost
	if plat != HostCPU {
		ws = cfg.WorkingSetSNIC
	}
	pen := tb.MemFor(plat).Penalty(cfg.MemIntensity, ws, spec.L3Bytes)
	t := sim.Duration(float64(sim.Cycles(cycles/spec.IPC, spec.BaseHz)) * pen)
	opsPerSec := float64(pool.Cores()) / t.Seconds()
	gbps := opsPerSec * float64(meanReq) * 8 / 1e9
	return math.Min(gbps, lineGbps)
}

// engineRateBits returns the config's engine rate with a batching margin.
func (r *Runner) engineRateBits(tb *Testbed, cfg *Config) float64 {
	switch cfg.Engine {
	case EngineREM:
		return tb.REM.RateBits * 0.75
	case EngineDeflate:
		return tb.Deflate.RateBits * 0.9
	case EnginePKABulk:
		return tb.PKA.BulkRateBits[cfg.PKAAlgo] * 0.95
	case EnginePKAOp:
		return tb.PKA.OpRate[cfg.PKAAlgo] * float64(cfg.LocalOpBytes) * 8
	default:
		return 30e9
	}
}

// estimateLocalGbps predicts closed-loop local throughput from the
// rate-based model (the crypto/compression entries).
func (r *Runner) estimateLocalGbps(tb *Testbed, cfg *Config, plat Platform) float64 {
	switch plat {
	case SNICAccel:
		return r.engineRateBits(tb, cfg) / 1e9
	case HostCPU:
		if cfg.HostRateOps > 0 {
			return cfg.HostRateOps * float64(cfg.LocalOpBytes) * 8 / 1e9
		}
		return cfg.HostRateBits / 1e9
	default:
		host, snic := tb.HostSpec, tb.SNICSpec
		gap := (host.BaseHz * host.IPC) / (snic.BaseHz * snic.IPC)
		base := cfg.HostRateBits
		if cfg.HostRateOps > 0 {
			base = cfg.HostRateOps * float64(cfg.LocalOpBytes) * 8
		}
		return base / gap / cfg.SNICFactor / 1e9
	}
}
