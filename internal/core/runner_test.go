package core

import (
	"testing"

	"repro/internal/sim"
)

func TestRunProducesThroughputAndLatency(t *testing.T) {
	cfg, _ := Lookup("udp-echo", "1024B")
	r := NewRunner()
	opts := probeOpts(1)
	opts.OfferedGbps = 1.0
	m := r.Run(cfg, HostCPU, opts)
	if m.Ops == 0 {
		t.Fatal("no operations measured")
	}
	if m.TputGbps < 0.9 || m.TputGbps > 1.1 {
		t.Fatalf("underloaded run tput = %v, want ~1.0 (offered)", m.TputGbps)
	}
	if m.Latency.P99 <= 0 || m.Latency.P50 > m.Latency.P99 {
		t.Fatalf("latency summary broken: %+v", m.Latency)
	}
	if m.ServerPowerW < 252 {
		t.Fatalf("server power %v below idle floor", m.ServerPowerW)
	}
}

func TestRunDeterministicForSameSeed(t *testing.T) {
	cfg, _ := Lookup("nat", "10K")
	r := NewRunner()
	opts := probeOpts(9)
	opts.OfferedGbps = 0.5
	a := r.Run(cfg, HostCPU, opts)
	b := r.Run(cfg, HostCPU, opts)
	if a.TputGbps != b.TputGbps || a.Latency.P99 != b.Latency.P99 || a.ServerPowerW != b.ServerPowerW {
		t.Fatalf("same-seed runs differ: %v vs %v", a, b)
	}
}

func TestRunSeedChangesOutcomeSlightly(t *testing.T) {
	cfg, _ := Lookup("nat", "10K")
	r := NewRunner()
	o1 := probeOpts(1)
	o1.OfferedGbps = 0.5
	o2 := probeOpts(2)
	o2.OfferedGbps = 0.5
	a := r.Run(cfg, HostCPU, o1)
	b := r.Run(cfg, HostCPU, o2)
	if a.Latency.Mean == b.Latency.Mean {
		t.Fatal("different seeds produced identical mean latency — RNG not threaded through")
	}
}

func TestOverloadSheds(t *testing.T) {
	cfg, _ := Lookup("udp-echo", "64B")
	r := NewRunner()
	opts := probeOpts(3)
	opts.OfferedGbps = 2.0 // ~4× host capacity
	m := r.Run(cfg, HostCPU, opts)
	if m.DeliveredFrac > 0.5 {
		t.Fatalf("4x overload delivered %v of offered, want far less", m.DeliveredFrac)
	}
}

func TestRunWrongPlatformPanics(t *testing.T) {
	cfg, _ := Lookup("redis", "workload_a") // no accelerator platform
	defer func() {
		if recover() == nil {
			t.Fatal("running redis on the accelerator did not panic")
		}
	}()
	NewRunner().Run(cfg, SNICAccel, probeOpts(1))
}

func TestLocalModeSaturates(t *testing.T) {
	cfg, _ := Lookup("compress", "app")
	r := NewRunner()
	opts := DefaultRunOpts()
	opts.Requests = 4000
	m := r.Run(cfg, HostCPU, opts)
	// Host ISA-L deflate at 14.6 Gb/s on one core.
	if m.TputGbps < 13 || m.TputGbps > 16 {
		t.Fatalf("host compress tput = %v, want ~14.6", m.TputGbps)
	}
	a := r.Run(cfg, SNICAccel, opts)
	if a.TputGbps < 45 || a.TputGbps > 56 {
		t.Fatalf("accel compress tput = %v, want ~52", a.TputGbps)
	}
}

func TestStorageModeIsWireBound(t *testing.T) {
	cfg, _ := Lookup("fio", "read")
	r := NewRunner()
	host := r.MaxThroughput(cfg, HostCPU)
	snic := r.MaxThroughput(cfg, SNICCPU)
	ratio := snic.TputGbps / host.TputGbps
	if ratio < 0.95 || ratio > 1.06 {
		t.Fatalf("fio tput ratio = %v, want ~1.0 (paper: almost the same)", ratio)
	}
	if host.TputGbps < 60 {
		t.Fatalf("fio host tput = %v, want near wire limit", host.TputGbps)
	}
}

func TestSwitchedModeDeliversOfferedLoad(t *testing.T) {
	cfg, _ := Lookup("ovs", "load10")
	r := NewRunner()
	m := r.MaxThroughput(cfg, HostCPU)
	if m.TputGbps < 9 || m.TputGbps > 10.5 {
		t.Fatalf("OvS 10%% load tput = %v, want ~9.8", m.TputGbps)
	}
	if m.Latency.P99 > 5*sim.Microsecond {
		t.Fatalf("eSwitch-forwarded p99 = %v, want a few µs", m.Latency.P99)
	}
}

func TestMaxThroughputFindsKnee(t *testing.T) {
	cfg, _ := Lookup("udp-echo", "64B")
	r := NewRunner()
	m := r.MaxThroughput(cfg, HostCPU)
	// Host UDP 64B capacity ≈ 0.53 Gb/s; knee should land at 60–100%.
	if m.TputGbps < 0.3 || m.TputGbps > 0.56 {
		t.Fatalf("knee = %v Gb/s, want 0.3–0.56", m.TputGbps)
	}
	if m.DeliveredFrac < 0.9 {
		t.Fatalf("knee point not sustainable: delivered %v", m.DeliveredFrac)
	}
}

func TestDPDKPollingPowersCoresEvenWhenIdle(t *testing.T) {
	// The Table 4 phenomenon: a DPDK host run at trivial load still
	// burns the polling cores' power.
	cfg, _ := Lookup("rem", "file_executable")
	r := NewRunner()
	opts := probeOpts(5)
	opts.OfferedGbps = 0.5 // trivial load
	m := r.Run(cfg, HostCPU, opts)
	// 8 polling cores: 252 idle + ~105 CPU + misc.
	if m.ServerPowerW < 360 {
		t.Fatalf("DPDK host power at idle load = %v W, want > 360 (polling)", m.ServerPowerW)
	}
	// Same load served by the SNIC accelerator barely moves the needle.
	a := r.Run(cfg, SNICAccel, opts)
	if a.ServerPowerW > 262 {
		t.Fatalf("SNIC-served power = %v W, want ~255", a.ServerPowerW)
	}
}

func TestKernelStackHostPowerScalesWithLoad(t *testing.T) {
	cfg, _ := Lookup("udp-echo", "1024B")
	r := NewRunner()
	lo := probeOpts(1)
	lo.OfferedGbps = 0.5
	hi := probeOpts(1)
	hi.OfferedGbps = 5.0
	mLo := r.Run(cfg, HostCPU, lo)
	mHi := r.Run(cfg, HostCPU, hi)
	if mHi.ServerPowerW <= mLo.ServerPowerW {
		t.Fatalf("power did not scale with load: %v W at 0.5G vs %v W at 5G",
			mLo.ServerPowerW, mHi.ServerPowerW)
	}
}

func TestSNICPowerDomainIsolation(t *testing.T) {
	// Yocto-Watt domain: SNIC-served run raises SNIC power above idle
	// 29 W but stays within the 34.4 W envelope.
	cfg, _ := Lookup("snort", "file_image")
	r := NewRunner()
	opts := probeOpts(2)
	opts.OfferedGbps = 0.5
	m := r.Run(cfg, SNICCPU, opts)
	if m.SNICPowerW < 29 || m.SNICPowerW > 34.5 {
		t.Fatalf("SNIC power = %v W, want within [29, 34.4]", m.SNICPowerW)
	}
}

func TestEstimateCapacityOrdering(t *testing.T) {
	r := NewRunner()
	cfg, _ := Lookup("udp-echo", "64B")
	h := r.estimateCapacityGbps(cfg, HostCPU)
	s := r.estimateCapacityGbps(cfg, SNICCPU)
	if s >= h {
		t.Fatalf("SNIC capacity estimate %v must be below host %v for UDP", s, h)
	}
	big, _ := Lookup("udp-echo", "1024B")
	if r.estimateCapacityGbps(big, HostCPU) <= h {
		t.Fatal("1KB capacity in Gb/s must exceed 64B capacity")
	}
}

func TestMeasurementString(t *testing.T) {
	m := Measurement{Function: "x", Variant: "y", Platform: HostCPU, TputGbps: 1}
	if m.String() == "" {
		t.Fatal("empty String()")
	}
}
