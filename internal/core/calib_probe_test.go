package core

import (
	"testing"
)

// TestCalibrationProbe prints the achieved SNIC÷host ratios for every
// catalog entry next to the paper targets. Run with -v to inspect; it
// fails only on gross breakage (no throughput at all).
func TestCalibrationProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe is slow")
	}
	r := NewRunner()
	for _, cfg := range Catalog() {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			t.Parallel()
			host := r.MaxThroughput(cfg, HostCPU)
			snic := r.MaxThroughput(cfg, cfg.SNICPlatform())
			if host.TputOps == 0 || snic.TputOps == 0 {
				t.Fatalf("zero throughput: host=%v snic=%v", host, snic)
			}
			tputRatio := snic.TputGbps / host.TputGbps
			p99Ratio := float64(snic.Latency.P99) / float64(host.Latency.P99)
			t.Logf("%-24s tput %.3f (want %.3f) | p99 %.2f (want %.2f) | host %.2f Gb/s p99=%v %.0fW | snic %.2f Gb/s p99=%v %.0fW",
				cfg.Name(), tputRatio, cfg.WantTputRatio, p99Ratio, cfg.WantP99Ratio,
				host.TputGbps, host.Latency.P99, host.ServerPowerW,
				snic.TputGbps, snic.Latency.P99, snic.ServerPowerW)
		})
	}
}
