package core

import (
	"testing"

	"repro/internal/sim"
)

func TestBurstyTraceShape(t *testing.T) {
	tr := BurstyTrace(1, 80, 12, 4, 300*sim.Microsecond)
	if len(tr.RatesGbps) != 12 {
		t.Fatalf("trace has %d points, want 12", len(tr.RatesGbps))
	}
	if tr.Duration() != 12*300*sim.Microsecond {
		t.Fatalf("trace span %v, want %v", tr.Duration(), 12*300*sim.Microsecond)
	}
	for i, rate := range tr.RatesGbps {
		want := 1.0
		if i%4 == 3 {
			want = 80
		}
		if rate != want {
			t.Fatalf("point %d = %v Gb/s, want %v", i, rate, want)
		}
	}
	if tr.PeakGbps() != 80 {
		t.Fatalf("peak %v, want 80", tr.PeakGbps())
	}
}

func TestBurstyTraceWithoutBurstsIsFlat(t *testing.T) {
	tr := BurstyTrace(2, 80, 8, 0, sim.Millisecond)
	for i, rate := range tr.RatesGbps {
		if rate != 2 {
			t.Fatalf("point %d = %v Gb/s, want flat 2", i, rate)
		}
	}
}

func TestRunBalancedSpillsBurstsToHost(t *testing.T) {
	// Bursts at 80 Gb/s exceed the accelerator's ~50 Gb/s cap, so the
	// hardware balancer must spill part of the load to the host.
	tr := BurstyTrace(1, 80, 20, 4, 300*sim.Microsecond)
	r := NewRunner()
	res := r.RunBalanced(HWLoadBalancer(), tr, 4, 3)
	if res.HostShare <= 0 {
		t.Fatal("bursts above engine capacity never spilled to the host")
	}
	if res.HostShare >= 1 {
		t.Fatal("balancer sent everything to the host; the accelerator served nothing")
	}
	if res.AvgTputGbps <= 0 {
		t.Fatalf("no throughput measured: %+v", res)
	}
}

func TestRunBalancedStaysOnAccelAtLowRate(t *testing.T) {
	tr := BurstyTrace(1, 1, 16, 0, 300*sim.Microsecond)
	r := NewRunner()
	res := r.RunBalanced(HWLoadBalancer(), tr, 4, 3)
	if res.HostShare != 0 {
		t.Fatalf("low-rate trace sent %.1f%% to the host; the accelerator alone handles 1 Gb/s",
			res.HostShare*100)
	}
	if res.Dropped != 0 {
		t.Fatalf("low-rate trace dropped %d packets", res.Dropped)
	}
}

func TestSoftwareBalancerBurnsSNICCycles(t *testing.T) {
	// The paper's preliminary finding: the software balancer pays a
	// per-packet monitoring cost on the SNIC cores that the hardware
	// balancer does not.
	tr := BurstyTrace(4, 4, 16, 0, 300*sim.Microsecond)
	r := NewRunner()
	sw := r.RunBalanced(DefaultLoadBalancer(), tr, 4, 3)
	hw := r.RunBalanced(HWLoadBalancer(), tr, 4, 3)
	if sw.SNICCPUUtil <= hw.SNICCPUUtil {
		t.Fatalf("software monitor util %.3f not above hardware %.3f", sw.SNICCPUUtil, hw.SNICCPUUtil)
	}
}

func TestHWLoadBalancerConfig(t *testing.T) {
	hw := HWLoadBalancer()
	if !hw.HWAssist {
		t.Fatal("HWLoadBalancer is not hardware-assisted")
	}
	if hw.MonitorCycles != 0 {
		t.Fatalf("hardware balancer charges %v monitor cycles", hw.MonitorCycles)
	}
	sw := DefaultLoadBalancer()
	if sw.HWAssist || sw.MonitorCycles <= 0 || sw.ReactInterval <= 0 {
		t.Fatalf("software balancer misconfigured: %+v", sw)
	}
}
