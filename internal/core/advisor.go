package core

import (
	"fmt"
	"sort"

	"repro/internal/accel"
	"repro/internal/netstack"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Advisor implements Strategy 2 of §5.3: "more intelligent policies to
// determine functions to offload to the SNIC processor", in the spirit of
// Clara [63] — predict a function's performance on each platform from its
// configuration (inputs, batch sizes, operation types) *without* running
// it, then recommend the platform that meets the SLO at the best
// efficiency.
//
// The predictor is the same analytic capacity/latency model the runner's
// search is seeded from, which makes it fast (microseconds per query) and
// lets tests quantify its agreement with full simulation.
type Advisor struct {
	runner *Runner
}

// NewAdvisor returns an advisor over the default testbed.
func NewAdvisor() *Advisor { return &Advisor{runner: NewRunner()} }

// NewAdvisorWith returns an advisor sharing the given runner's testbed
// sizing, parallelism and progress callback.
func NewAdvisorWith(r *Runner) *Advisor { return &Advisor{runner: r} }

// Prediction is the advisor's estimate for one platform.
type Prediction struct {
	Platform Platform
	// TputGbps is the predicted maximum sustainable throughput.
	TputGbps float64
	// P99 is the predicted tail latency at a moderate (70%) operating
	// point — the regime a deployed SLO-bound service runs in.
	P99 sim.Duration
	// ActivePowerW is the predicted active power delta of serving on
	// this platform.
	ActivePowerW float64
}

// Recommendation is the advisor's answer.
type Recommendation struct {
	Config      *Config
	SLOP99      sim.Duration
	Predictions []Prediction
	// Chosen is the recommended platform, or empty if nothing meets the
	// SLO (the caller must scale out instead).
	Chosen Platform
	Reason string
}

func (r Recommendation) String() string {
	return fmt.Sprintf("%s (SLO %v): %s — %s", r.Config.Name(), r.SLOP99, r.Chosen, r.Reason)
}

// Predict estimates a platform's behaviour for the config.
func (a *Advisor) Predict(cfg *Config, plat Platform) Prediction {
	p := Prediction{Platform: plat}
	p.TputGbps = a.runner.estimateCapacityGbps(cfg, plat)
	p.P99 = a.predictP99(cfg, plat)
	p.ActivePowerW = a.predictActivePower(cfg, plat)
	return p
}

// predictP99 composes the fixed latency path with a moderate queueing
// allowance (~2 services at 70% load) — deliberately simple, as Clara's
// models are, and validated against simulation in the tests.
func (a *Advisor) predictP99(cfg *Config, plat Platform) sim.Duration {
	prof := netstack.ByKind(cfg.Stack)
	tb := NewTestbed(a.runner.TBConfig)
	size := cfg.ReqSize
	if cfg.Mixed {
		size = int(trace.CTUMixed().Mean())
	}

	if plat == SNICAccel {
		// Staging + batch wait + engine service + return.
		var engineBits float64
		var batchWait sim.Duration
		switch cfg.Engine {
		case EngineREM:
			engineBits = tb.REM.RateBits
			batchWait = 11 * sim.Microsecond
		case EngineDeflate:
			engineBits = tb.Deflate.RateBits
			batchWait = 20 * sim.Microsecond
		case EnginePKABulk:
			engineBits = tb.PKA.BulkRateBits[cfg.PKAAlgo]
			batchWait = 2 * sim.Microsecond
		case EnginePKAOp:
			return sim.Duration(2.2 * float64(sim.Second) / tb.PKA.OpRate[cfg.PKAAlgo])
		default:
			engineBits = 30e9
			batchWait = 10 * sim.Microsecond
		}
		opBytes := size
		if cfg.Mode == ModeLocal {
			opBytes = cfg.LocalOpBytes
		}
		svc := sim.DurationOf(opBytes, engineBits)
		return batchWait + 3*svc + 2*sim.Microsecond
	}

	spec := tb.SpecFor(plat)
	app := cfg.HostBaseCycles + cfg.HostPerByteCycles*float64(size)
	if plat != HostCPU {
		app *= cfg.SNICFactor
	}
	var svc sim.Duration
	switch {
	case cfg.HostRateOps > 0:
		svc = sim.Duration(float64(sim.Second) / cfg.HostRateOps)
	case cfg.HostRateBits > 0:
		svc = sim.DurationOf(cfg.LocalOpBytes, cfg.HostRateBits)
	default:
		cycles := prof.RxCycles(spec.Arch, size) + prof.TxCycles(spec.Arch, cfg.RespSize) + app
		ws := cfg.WorkingSetHost
		if plat != HostCPU {
			ws = cfg.WorkingSetSNIC
		}
		pen := tb.MemFor(plat).Penalty(cfg.MemIntensity, ws, spec.L3Bytes)
		svc = sim.Duration(float64(sim.Cycles(cycles/spec.IPC, spec.BaseHz)) * pen)
	}
	if plat != HostCPU && (cfg.HostRateBits > 0 || cfg.HostRateOps > 0) {
		host := tb.HostSpec
		gap := (host.BaseHz * host.IPC) / (spec.BaseHz * spec.IPC)
		svc = sim.Duration(float64(svc) * gap * cfg.SNICFactor)
	}
	// Fixed path both ways at p99-ish quantile plus a 2-service queue.
	fixed := prof.FixedOneWay
	if plat != HostCPU && prof.ArmFixedMult > 0 {
		fixed = sim.Duration(float64(fixed) * prof.ArmFixedMult)
	}
	return 2*sim.Duration(float64(fixed)*2.2) + 3*svc
}

// predictActivePower uses the calibrated power budget: host platforms
// light up the package and the io-traffic path; SNIC platforms only the
// card's 5.4 W envelope.
func (a *Advisor) predictActivePower(cfg *Config, plat Platform) float64 {
	switch plat {
	case HostCPU:
		cores := cfg.HostCores
		if cores == 0 {
			cores = a.runner.TBConfig.HostCores
		}
		cpuW := 105.0 * float64(cores) / 8.0
		if cfg.Stack != netstack.KindDPDK {
			cpuW *= 0.9 // interrupt-driven stacks idle between packets
		}
		return cpuW + 10
	case SNICCPU:
		return 3.4
	case SNICAccel:
		return 3.4*0.25 + 2.0 // two staging cores + engine
	default:
		panic(fmt.Sprintf("core: unknown platform %q", plat))
	}
}

// Advise recommends the most energy-efficient platform that meets the
// p99 SLO. Efficiency is ranked at the SERVER level — throughput over
// idle-plus-active power — because the paper's Key Observation 5 is
// precisely that the 252 W idle floor dominates: a platform that is
// frugal per active watt but slow per server usually loses.
func (a *Advisor) Advise(cfg *Config, sloP99 sim.Duration) Recommendation {
	rec := Recommendation{Config: cfg, SLOP99: sloP99}
	for _, plat := range cfg.Platforms {
		rec.Predictions = append(rec.Predictions, a.Predict(cfg, plat))
	}
	// Filter by SLO.
	var ok []Prediction
	for _, p := range rec.Predictions {
		if sloP99 <= 0 || p.P99 <= sloP99 {
			ok = append(ok, p)
		}
	}
	if len(ok) == 0 {
		rec.Chosen = ""
		rec.Reason = "no platform meets the SLO; scale out on the host instead"
		return rec
	}
	// Rank by throughput per active watt.
	sort.Slice(ok, func(i, j int) bool {
		return effScore(ok[i]) > effScore(ok[j])
	})
	best := ok[0]
	rec.Chosen = best.Platform
	rec.Reason = fmt.Sprintf("predicted %.2f Gb/s at p99 %v for %.1f W active",
		best.TputGbps, best.P99, best.ActivePowerW)
	return rec
}

func effScore(p Prediction) float64 {
	const idleW = 252
	return p.TputGbps / (idleW + p.ActivePowerW)
}

// AdviseAll runs the advisor over the whole catalog at a common SLO.
// Recommendations compute concurrently up to the runner's parallelism
// and merge in catalog order.
func (a *Advisor) AdviseAll(sloP99 sim.Duration) []Recommendation {
	cat := Catalog()
	out := make([]Recommendation, len(cat))
	prog := a.runner.newProgress(len(cat))
	a.runner.forEachN(len(cat), func(i int) {
		out[i] = a.Advise(cat[i], sloP99)
		prog.step("advise " + cat[i].Name())
	})
	return out
}

// Interface check: the advisor's cost tables depend on the accel package
// constants staying importable here.
var _ = accel.StagingCyclesPerTask
