package core

import (
	"sort"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// These tests assert the paper's five Key Observations as invariants of
// the calibrated testbed. They run full max-throughput searches, so they
// are skipped under -short.

func fig4Rows(t *testing.T, names ...[2]string) map[string]Fig4Row {
	t.Helper()
	if testing.Short() {
		t.Skip("observation tests run full searches")
	}
	r := NewRunner()
	out := map[string]Fig4Row{}
	for _, n := range names {
		cfg, err := Lookup(n[0], n[1])
		if err != nil {
			t.Fatal(err)
		}
		out[cfg.Name()] = r.fig4Row(cfg)
	}
	return out
}

func TestObservation1TCPUDPFavoursHost(t *testing.T) {
	// O1: the SNIC CPU delivers lower max throughput and higher p99 for
	// every TCP/UDP function, while RDMA microbenchmarks favour it.
	rows := fig4Rows(t,
		[2]string{"udp-echo", "64B"},
		[2]string{"redis", "workload_a"},
		[2]string{"nat", "10K"},
		[2]string{"rdma-perftest", "1KB"},
	)
	for _, name := range []string{"udp-echo/64B", "redis/workload_a", "nat/10K"} {
		row := rows[name]
		if row.TputRatio >= 1 {
			t.Errorf("O1 violated: %s SNIC tput ratio %.2f >= 1", name, row.TputRatio)
		}
		if row.P99Ratio <= 1 {
			t.Errorf("O1 violated: %s SNIC p99 ratio %.2f <= 1", name, row.P99Ratio)
		}
	}
	rdma := rows["rdma-perftest/1KB"]
	if rdma.TputRatio <= 1 {
		t.Errorf("O1 violated: RDMA SNIC tput ratio %.2f <= 1", rdma.TputRatio)
	}
	if rdma.P99Ratio >= 1 {
		t.Errorf("O1 violated: RDMA SNIC p99 ratio %.2f >= 1", rdma.P99Ratio)
	}
}

func TestObservation2ISAExtensionsBeatAccelerators(t *testing.T) {
	// O2: AES and RSA favour the host's ISA paths; SHA-1 and
	// Compression favour the engines.
	rows := fig4Rows(t,
		[2]string{"crypto", "aes"},
		[2]string{"crypto", "rsa"},
		[2]string{"crypto", "sha1"},
		[2]string{"compress", "app"},
	)
	if r := rows["crypto/aes"].TputRatio; r >= 1 {
		t.Errorf("O2: AES engine ratio %.2f, host ISA path should win", r)
	}
	if r := rows["crypto/rsa"].TputRatio; r >= 1 {
		t.Errorf("O2: RSA engine ratio %.2f, host should win", r)
	}
	if r := rows["crypto/sha1"].TputRatio; r <= 1.5 {
		t.Errorf("O2: SHA-1 engine ratio %.2f, engine should win ~1.9x", r)
	}
	if r := rows["compress/app"].TputRatio; r <= 3.0 {
		t.Errorf("O2: compression engine ratio %.2f, engine should win ~3.5x", r)
	}
}

func TestObservation3AcceleratorsBelowLineRate(t *testing.T) {
	// O3: REM and compression engines cap near 50 Gb/s, far below the
	// 100 Gb/s line rate — checked at the engine models and end to end.
	if testing.Short() {
		t.Skip("runs simulations")
	}
	tb := NewTestbed(DefaultTestbedConfig())
	if tb.REM.RateBits >= 100e9 || tb.Deflate.RateBits >= 100e9 {
		t.Fatal("engine raw rates must sit below line rate")
	}
	r := NewRunner()
	cfg := remMTU(trace.RuleSetExecutable)
	opts := DefaultRunOpts()
	opts.Requests = 12000
	opts.OfferedGbps = 90
	m := r.Run(cfg, SNICAccel, opts)
	if m.TputGbps > 55 {
		t.Fatalf("O3 violated: accelerator sustained %.1f Gb/s at 90 offered", m.TputGbps)
	}
	if m.TputGbps < 40 {
		t.Fatalf("accelerator cap %.1f Gb/s too low, want ~50", m.TputGbps)
	}
}

func TestObservation4WinnerFlipsWithInput(t *testing.T) {
	// O4: the REM winner flips between rule sets: accelerator wins
	// file_image, host wins file_executable.
	rows := fig4Rows(t,
		[2]string{"rem", "file_image"},
		[2]string{"rem", "file_executable"},
	)
	img := rows["rem/file_image"].TputRatio
	exe := rows["rem/file_executable"].TputRatio
	if img <= 1 {
		t.Errorf("O4: accelerator should win file_image, ratio %.2f", img)
	}
	if exe >= 1 {
		t.Errorf("O4: host should win file_executable, ratio %.2f", exe)
	}
}

func TestObservation5EfficiencyBounded(t *testing.T) {
	// O5: energy-efficiency gains exist but are bounded — the server's
	// idle power dominates. The SNIC side never exceeds the paper's
	// 3.8× and never collapses below ~0.1×; and for a function the SNIC
	// serves at LOWER throughput, efficiency gain can only come from
	// the power side, which idle power caps at server/(server-150.6).
	rows := fig4Rows(t,
		[2]string{"compress", "app"},
		[2]string{"udp-echo", "64B"},
		[2]string{"crypto", "sha1"},
	)
	rowNames := make([]string, 0, len(rows))
	for name := range rows {
		rowNames = append(rowNames, name)
	}
	sort.Strings(rowNames)
	for _, name := range rowNames {
		if r := rows[name]; r.EffRatio > 5.6 || r.EffRatio < 0.05 {
			t.Errorf("O5: %s efficiency ratio %.2f outside plausible band", name, r.EffRatio)
		}
	}
	if rows["compress/app"].EffRatio < 3.0 {
		t.Errorf("O5: compression efficiency ratio %.2f, want ~3.4-3.8", rows["compress/app"].EffRatio)
	}
	if rows["udp-echo/64B"].EffRatio > 1.0 {
		t.Errorf("O5: UDP echo efficiency ratio %.2f should be below 1", rows["udp-echo/64B"].EffRatio)
	}
}

func TestIdlePowerDominatesServerEfficiency(t *testing.T) {
	// The mechanism behind O5: even a fully idle server draws 252 W —
	// more than 62% of the busiest measurement.
	tb := NewTestbed(DefaultTestbedConfig())
	idle := float64(tb.Power.Server.Power())
	if idle != 252 {
		t.Fatalf("idle server = %v W, want 252", idle)
	}
	maxActive := idle + 150.6 + 5.4
	if idle/maxActive < 0.6 {
		t.Fatalf("idle fraction %v too small; the paper's O5 argument needs it dominant", idle/maxActive)
	}
}

func TestFig5Shape(t *testing.T) {
	// Fig. 5's qualitative shape: accel flat-caps ~50; host exe scales
	// past the accel; host img p99 explodes past ~40 while exe stays
	// tame at the same rate.
	if testing.Short() {
		t.Skip("runs a rate sweep")
	}
	r := NewRunner()
	points := r.Fig5([]float64{20, 40, 55, 70})
	byRate := map[float64]Fig5Point{}
	for _, p := range points {
		byRate[p.OfferedGbps] = p
	}
	// Accel caps: delivered at 70 offered must be ~50.
	if acc := byRate[70].Curves["accel"]; acc.TputGbps > 56 || acc.TputGbps < 42 {
		t.Errorf("accel at 70 offered delivered %.1f, want ~50", acc.TputGbps)
	}
	// Host exe keeps up at 70.
	if exe := byRate[70].Curves["host/file_executable"]; exe.TputGbps < 58 {
		t.Errorf("host exe at 70 offered delivered %.1f, want ~70", exe.TputGbps)
	}
	// Host img p99 blows up between 20 and 55.
	imgLo := byRate[20].Curves["host/file_image"].Latency.P99
	imgHi := byRate[55].Curves["host/file_image"].Latency.P99
	if float64(imgHi) < 8*float64(imgLo) {
		t.Errorf("host img p99 did not explode: %v -> %v", imgLo, imgHi)
	}
	// Host exe p99 stays tame at 55.
	exeHi := byRate[55].Curves["host/file_executable"].Latency.P99
	if exeHi > 30*sim.Microsecond {
		t.Errorf("host exe p99 at 55 = %v, want tame", exeHi)
	}
}

func TestTable4Reproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("trace replay")
	}
	r := NewRunner()
	rows := r.Table4(DefaultTable4Config())
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	host, accel := rows[0], rows[1]
	// Both sustain the trace's 0.76 Gb/s average.
	for _, row := range rows {
		if row.AvgTputGbps < 0.72 || row.AvgTputGbps > 0.80 {
			t.Errorf("%s avg tput = %v, want ~0.76", row.Platform, row.AvgTputGbps)
		}
	}
	// The accelerator's p99 is ~3x the host's (paper: 17.43 vs 5.07 µs).
	ratio := float64(accel.P99) / float64(host.P99)
	if ratio < 2 || ratio > 4.5 {
		t.Errorf("trace p99 ratio = %.2f, want ~3", ratio)
	}
	if host.P99 > 8*sim.Microsecond {
		t.Errorf("host trace p99 = %v, want ~5 µs", host.P99)
	}
	// Power: host pays polling cores (~278 W); SNIC stays near idle
	// (~254.5 W); saving is modest (paper: "only 9%" of active).
	if host.AvgPowerW < 270 || host.AvgPowerW > 292 {
		t.Errorf("host trace power = %v, want ~278", host.AvgPowerW)
	}
	if accel.AvgPowerW < 252 || accel.AvgPowerW > 258 {
		t.Errorf("SNIC trace power = %v, want ~254.5", accel.AvgPowerW)
	}
}

func TestLoadBalancerStrategy(t *testing.T) {
	// Strategy 3: under a bursty trace the accel-only configuration
	// violates a 300 µs SLO; the balancer holds it, and the hardware
	// balancer spills less traffic than the software one.
	if testing.Short() {
		t.Skip("trace replay")
	}
	r := NewRunner()
	tr := BurstyTrace(5, 72, 60, 6, 2*sim.Millisecond)
	accelOnly := r.RunBalanced(LoadBalancer{SpillQueueThreshold: 1 << 30, HWAssist: true}, tr, 8, 1)
	sw := r.RunBalanced(DefaultLoadBalancer(), tr, 8, 1)
	hw := r.RunBalanced(HWLoadBalancer(), tr, 8, 1)

	const slo = 300 * sim.Microsecond
	if accelOnly.P99 <= slo {
		t.Fatalf("accel-only p99 %v unexpectedly meets the SLO; burst too weak", accelOnly.P99)
	}
	if sw.P99 > slo {
		t.Errorf("software balancer p99 %v violates SLO", sw.P99)
	}
	if hw.P99 > slo {
		t.Errorf("hardware balancer p99 %v violates SLO", hw.P99)
	}
	if hw.P99 >= sw.P99 {
		t.Errorf("hardware balancer (%v) should beat software (%v)", hw.P99, sw.P99)
	}
	if hw.HostShare >= sw.HostShare {
		t.Errorf("hardware balancer should spill less: hw %.2f vs sw %.2f", hw.HostShare, sw.HostShare)
	}
	if accelOnly.HostShare != 0 {
		t.Errorf("accel-only spilled %.2f to host", accelOnly.HostShare)
	}
}

func TestAdvisorAgreesWithObservations(t *testing.T) {
	a := NewAdvisor()
	// Relaxed SLO: the advisor should keep RDMA/accelerator-friendly
	// functions off the host and keep AES/RSA on it.
	for _, tc := range []struct {
		fn, variant string
		wantHost    bool
	}{
		{"crypto", "aes", true},
		{"crypto", "rsa", true},
		{"crypto", "sha1", false},
		{"compress", "app", false},
		{"udp-echo", "64B", true},
		{"bm25", "1Kdocs", true},
	} {
		cfg, err := Lookup(tc.fn, tc.variant)
		if err != nil {
			t.Fatal(err)
		}
		rec := a.Advise(cfg, 0)
		isHost := rec.Chosen == HostCPU
		if isHost != tc.wantHost {
			t.Errorf("advisor chose %s for %s/%s, wantHost=%v (%s)",
				rec.Chosen, tc.fn, tc.variant, tc.wantHost, rec.Reason)
		}
	}
}

func TestAdvisorRespectsSLO(t *testing.T) {
	// For file_image (where the accelerator wins on throughput and
	// efficiency), a tight p99 SLO must still veto the batching
	// accelerator; a loose SLO frees the advisor to offload.
	a := NewAdvisor()
	cfg, _ := Lookup("rem", "file_image")
	tight := a.Advise(cfg, 10*sim.Microsecond)
	if tight.Chosen == SNICAccel {
		t.Errorf("10µs SLO should veto the accelerator (batch wait ~11µs): %v", tight)
	}
	loose := a.Advise(cfg, 10*sim.Millisecond)
	if loose.Chosen != SNICAccel {
		t.Errorf("loose SLO should offload file_image to the engine: chose %v (%s)", loose.Chosen, loose.Reason)
	}
	// For file_executable the host wins outright (Key Observation 4),
	// SLO or not.
	exe, _ := Lookup("rem", "file_executable")
	if rec := a.Advise(exe, 10*sim.Millisecond); rec.Chosen != HostCPU {
		t.Errorf("advisor should keep file_executable on the host: %v", rec)
	}
}

func TestAdvisorPredictionsPositive(t *testing.T) {
	a := NewAdvisor()
	for _, cfg := range Catalog() {
		for _, plat := range cfg.Platforms {
			p := a.Predict(cfg, plat)
			if p.TputGbps <= 0 || p.P99 <= 0 || p.ActivePowerW <= 0 {
				t.Errorf("%s on %s: degenerate prediction %+v", cfg.Name(), plat, p)
			}
		}
	}
}
