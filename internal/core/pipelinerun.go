package core

import (
	"fmt"
	"math"

	"repro/internal/accel"
	"repro/internal/cpu"
	"repro/internal/invariant"
	"repro/internal/netstack"
	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Pipeline execution. The executor replays the legacy net-serve sinks'
// event structure and RNG-draw order exactly — submit loop, inbound
// fixed delay, service draw at sink entry, TX delay drawn at service
// completion — so a single-phase pipeline is bit-identical to the
// legacy run; additional phases chain where the legacy sink would have
// sent the response.

// PhaseStat is one phase's request accounting in a pipeline run.
type PhaseStat struct {
	Name     string
	Resource PhaseResource
	// Served counts requests the phase completed on its own resource;
	// Spilled those the fallback policy redirected to a host core;
	// Dropped those shed at the phase's queue.
	Served, Spilled, Dropped uint64
}

// PipelineMeasurement is one pipeline operating point: the familiar
// measurement (throughput, latency, power, utilizations) plus per-phase
// request accounting.
type PipelineMeasurement struct {
	Pipeline string
	Policy   string
	// Point carries the standard metrics; Function is the pipeline
	// name, Variant the policy key and Platform the first phase's
	// platform mapping.
	Point Measurement
	// Spilled and Dropped total the per-phase columns.
	Spilled, Dropped uint64
	Phases           []PhaseStat
}

func (m PipelineMeasurement) String() string {
	return fmt.Sprintf("pipeline %s [%s]: %.3f Gb/s, p99 %v, spilled %d, dropped %d",
		m.Pipeline, m.Policy, m.Point.TputGbps, m.Point.Latency.P99, m.Spilled, m.Dropped)
}

// pipectx is the per-run wiring of one pipeline simulation — the
// pipeline analog of runctx.
type pipectx struct {
	tb   *Testbed
	ps   *PipelineSpec
	pol  FallbackPolicy
	opts RunOpts

	prof     netstack.Profile
	pool     *cpu.Pool // first-phase pool: where the stack terminates
	ep       *netstack.Endpoint
	arrivals *trace.Arrivals
	sizes    trace.SizeDist
	jit      *sim.RNG

	hist    *stats.Histogram
	meter   *stats.Meter
	sent    int
	done    int
	warmupN int

	reqBytesSent uint64
	lastSend     sim.Time

	rec *obs.Recorder
	chk *invariant.Checker

	tally []PhaseStat
}

// RunPipeline measures one pipeline at one operating point, memoized
// under a key covering the full spec, policy, testbed and options.
func (r *Runner) RunPipeline(ps *PipelineSpec, opts RunOpts) PipelineMeasurement {
	if err := ps.Validate(); err != nil {
		panic(err)
	}
	key := pipelineKey(ps, r.TBConfig, opts)
	if m, ok := r.cache.lookupPipeline(key); ok {
		return m
	}
	m := r.simulatePipeline(ps, opts)
	r.cache.storePipeline(key, m)
	return m
}

// pipelineLabel is the run description used in telemetry exports and
// checker labels (no commas — CSV-safe).
func pipelineLabel(ps *PipelineSpec, opts RunOpts) string {
	return fmt.Sprintf("pipeline %s [%s] | off %g Gb/s | req %d | seed %d",
		ps.Name, ps.policy().Key(), opts.OfferedGbps, opts.Requests, opts.Seed)
}

// simulatePipeline builds a fresh testbed and executes one pipeline run.
// The setup mirrors Runner.simulate line for line: same seed folding,
// same stream derivations, same pool and power wiring.
func (r *Runner) simulatePipeline(ps *PipelineSpec, opts RunOpts) PipelineMeasurement {
	r.sims.Add(1)
	seed := r.runSeed(opts.Seed)
	tbc := r.TBConfig
	tbc.Seed ^= seed * 0x9e3779b97f4a7c15
	if ps.HostCores > 0 {
		tbc.HostCores = ps.HostCores
	}
	if ps.SNICCores > 0 {
		tbc.SNICCores = ps.SNICCores
	}
	tb := NewTestbed(tbc)

	px := &pipectx{
		tb: tb, ps: ps, pol: ps.policy(), opts: opts,
		prof:     netstack.ByKind(ps.Stack),
		arrivals: trace.NewPoissonArrivals(seed ^ 0xabcdef),
		jit:      sim.NewRNG(seed ^ 0x1234),
		hist:     stats.NewHistogram(),
		warmupN:  int(float64(opts.Requests) * opts.WarmupFrac),
		tally:    make([]PhaseStat, len(ps.Phases)),
	}
	for i := range ps.Phases {
		px.tally[i] = PhaseStat{Name: ps.Phases[i].Name, Resource: ps.Phases[i].Resource}
	}
	if ps.Mixed {
		px.sizes = trace.CTUMixed()
	} else {
		px.sizes = trace.Fixed(ps.ReqSize)
	}
	first := &ps.Phases[0]
	px.pool = tb.PoolFor(first.platform())
	// Queue capacities: every pool a phase binds gets the runner default
	// (or the phase's explicit cap); the host pool is always bounded so
	// spilled work sheds instead of queueing without limit. The runner
	// applies service jitter itself, so pool-level jitter is off on
	// every pool a phase can touch.
	px.pool.JitterSigma = 0
	for i := range ps.Phases {
		ph := &ps.Phases[i]
		qcap := ph.QueueCap
		if qcap <= 0 {
			qcap = 4096
		}
		pool := px.poolFor(ph)
		pool.JitterSigma = 0
		pool.SetQueueCapacity(qcap)
	}
	if ps.uses(ResEngine) {
		tb.HostPool.JitterSigma = 0
		if tb.HostPool.QueueCapacity() <= 0 {
			tb.HostPool.SetQueueCapacity(4096)
		}
	}
	px.ep = netstack.NewEndpoint(tb.Eng, px.prof, px.pool, seed^0x77)

	key := pipelineKey(ps, r.TBConfig, opts)
	px.rec = r.newRecorder(key, pipelineLabel(ps, opts))
	px.chk = r.newChecker(pipelineLabel(ps, opts))
	instrumentTestbed(tb, px.rec, px.chk)

	// Power bookkeeping: pools in play, poll-mode pinning, and whether
	// traffic crosses into host memory — the same switch simulate()
	// applies, generalized over the set of bound resources.
	hostServes := ps.uses(ResHostCore)
	snicServes := ps.uses(ResSNICCore)
	engineUsed := ps.uses(ResEngine)
	serve, staging := 0.0, 0.0
	if snicServes {
		serve = 1
	}
	if engineUsed {
		staging = 1
	}
	tb.ActivateSNICPools(serve, staging)
	if hostServes {
		tb.SetPolling(HostCPU, ps.Stack == netstack.KindDPDK)
	}
	if snicServes {
		tb.SetPolling(SNICCPU, ps.Stack == netstack.KindDPDK)
	}
	if engineUsed {
		tb.SetPolling(SNICCPU, true) // staging cores poll DPDK / feed engines
	}
	if hostServes {
		tb.SetHostTrafficShare(1)
	} else {
		tb.SetHostTrafficShare(0)
	}

	px.run()
	r.finishPipelineChecks(px)
	r.finishPipelineRecorder(px)
	return px.measurement()
}

// poolFor maps a phase to the pool that executes it (engine phases
// occupy staging cores for submission).
func (px *pipectx) poolFor(ph *PhaseSpec) *cpu.Pool {
	return px.tb.PoolFor(ph.platform())
}

// run drives the open-loop submit cycle — identical to runNetServe with
// the first phase's resource selecting the steering destination.
func (px *pipectx) run() {
	eng := px.tb.Eng
	dest := nic.ToHostCPU
	switch px.ps.Phases[0].Resource {
	case ResSNICCore:
		dest = nic.ToSNICCPU
	case ResEngine:
		dest = nic.ToAccelerator
	}
	px.tb.Sw.Program(func(*nic.Packet) nic.Destination { return dest })
	px.tb.Sw.Connect(nic.ToHostCPU, px.sink)
	px.tb.Sw.Connect(nic.ToSNICCPU, px.sink)
	px.tb.Sw.Connect(nic.ToAccelerator, px.sink)

	var submit func()
	submit = func() {
		if px.sent >= px.opts.Requests {
			return
		}
		px.noteSent()
		size := px.sizes.Next(px.jit)
		pkt := &nic.Packet{Seq: uint64(px.sent), Size: size, SentAt: eng.Now(),
			Span: uint32(px.openRequest())}
		px.chk.Inject(pkt.Seq, size, eng.Now())
		px.reqBytesSent += uint64(size)
		px.tb.Wire.SendToServer(pkt, px.tb.Sw.Ingress)
		eng.After(px.arrivals.Gap(size, px.opts.OfferedGbps*1e9), submit)
	}
	eng.At(0, submit)
	eng.Run()
	px.finishEngineUtil()
}

// noteSent mirrors runctx.noteSent.
func (px *pipectx) noteSent() {
	px.sent++
	if px.sent == px.opts.Requests {
		px.lastSend = px.tb.Eng.Now()
	}
}

// sink receives a request off the wire and starts phase 0.
func (px *pipectx) sink(pkt *nic.Packet) {
	root := obs.SpanID(pkt.Span)
	px.stage(root, spanIngress, pkt.SentAt, px.tb.Eng.Now())
	px.runPhase(0, pkt.Seq, pkt.Size, pkt.Size, pkt.SentAt, root)
}

// runPhase dispatches phase i. size is the phase's input payload after
// upstream transforms; wireSize the injected wire payload (ledger and
// meter accounting).
func (px *pipectx) runPhase(i int, seq uint64, size, wireSize int, sentAt sim.Time, root obs.SpanID) {
	ph := &px.ps.Phases[i]
	if ph.isCPU() {
		px.cpuPhase(i, seq, size, wireSize, sentAt, root)
		return
	}
	px.enginePhase(i, seq, size, wireSize, sentAt, root)
}

// next advances past phase i, or finishes the request.
func (px *pipectx) next(i int, seq uint64, size, wireSize int, sentAt sim.Time, root obs.SpanID, fromEngine bool) {
	if i+1 < len(px.ps.Phases) {
		px.runPhase(i+1, seq, size, wireSize, sentAt, root)
		return
	}
	px.finishReturn(seq, wireSize, sentAt, root, fromEngine)
}

// cpuPhase serves phase i on its core pool. Phase 0 rides the inbound
// fixed stack delay first (the legacy cpuSink structure, including the
// service-time draw at sink entry).
func (px *pipectx) cpuPhase(i int, seq uint64, size, wireSize int, sentAt sim.Time, root obs.SpanID) {
	eng := px.tb.Eng
	ph := &px.ps.Phases[i]
	pool := px.poolFor(ph)
	svc := px.phaseSvc(i, ph, pool, size, false)
	if i == 0 {
		inFixed := px.ep.FixedDelay() + px.ps.FixedExtra
		rxDone := eng.Now()
		eng.After(inFixed, func() {
			enq := eng.Now()
			px.stage(root, spanStackRx, rxDone, enq)
			px.execCPU(i, ph, pool, svc, seq, size, wireSize, sentAt, root, enq, false)
		})
		return
	}
	px.execCPU(i, ph, pool, svc, seq, size, wireSize, sentAt, root, eng.Now(), false)
}

// execCPU enqueues a CPU phase's service and chains the next phase from
// its completion. spilled marks engine work redirected here by the
// fallback policy.
func (px *pipectx) execCPU(i int, ph *PhaseSpec, pool *cpu.Pool, svc sim.Duration,
	seq uint64, size, wireSize int, sentAt sim.Time, root obs.SpanID, enq sim.Time, spilled bool) {
	px.chk.PhaseEnter(ph.Name, seq, px.tb.Eng.Now())
	ok := pool.ExecDuration(svc, func(s, e sim.Time) {
		if root != 0 && s > enq {
			px.stage(root, spanQueue, enq, s)
		}
		px.stage(root, spanService, s, e)
		px.stage(root, phaseSpan(ph), s, e)
		px.chk.PhaseExit(ph.Name, seq, e)
		if spilled {
			px.tally[i].Spilled++
		} else {
			px.tally[i].Served++
		}
		px.next(i, seq, ph.outSize(size), wireSize, sentAt, root, false)
	})
	if !ok {
		px.tally[i].Dropped++
		px.chk.PhaseDrop(ph.Name, seq, px.tb.Eng.Now())
		px.chk.Drop(seq, wireSize, px.tb.Eng.Now())
	}
}

// enginePhase routes phase i through the staging cores into its engine
// (the legacy accelSink structure), unless the fallback policy spills
// it to a host core first.
func (px *pipectx) enginePhase(i int, seq uint64, size, wireSize int, sentAt sim.Time, root obs.SpanID) {
	eng := px.tb.Eng
	ph := &px.ps.Phases[i]
	staging := px.tb.StagingPool
	backlog := staging.QueueLen() + px.engineQueueLen(ph)*16
	qcap := ph.QueueCap
	if qcap <= 0 {
		qcap = 4096
	}
	if px.pol.Spill(ph, backlog, qcap) {
		// Host software path: the phase's spill cost model on a host
		// core, then the pipeline continues as if the engine had run.
		pool := px.tb.HostPool
		svc := px.phaseSvc(i, ph, pool, size, true)
		px.execCPU(i, ph, pool, svc, seq, size, wireSize, sentAt, root, eng.Now(), true)
		return
	}
	arrive := eng.Now()
	spec := px.tb.SNICSpec
	stageCycles := 0.0
	if i == 0 {
		stageCycles = px.prof.RxCycles(spec.Arch, size)
	}
	stageCycles += accel.StagingCyclesPerTask
	stageCycles += accel.StagingCyclesPerByte * float64(size)
	stageCycles += 100
	stageSvc := px.jit.LogNormalDur(sim.Cycles(stageCycles/spec.IPC, spec.BaseHz), 0.15)
	px.chk.PhaseEnter(ph.Name, seq, eng.Now())
	ok := staging.ExecDuration(stageSvc, func(s, e sim.Time) {
		if root != 0 && s > arrive {
			px.stage(root, spanQueue, arrive, s)
		}
		px.stage(root, spanStaging, s, e)
		px.engineSubmit(ph, size, func(es, ee sim.Time) {
			px.stage(root, spanEngine, es, ee)
			px.stage(root, phaseSpan(ph), s, ee)
			px.chk.PhaseExit(ph.Name, seq, ee)
			px.tally[i].Served++
			px.next(i, seq, ph.outSize(size), wireSize, sentAt, root, true)
		})
	})
	if !ok {
		px.tally[i].Dropped++
		px.chk.PhaseDrop(ph.Name, seq, eng.Now())
		px.chk.Drop(seq, wireSize, eng.Now())
	}
}

// finishReturn sends the response: a small fixed engine-pickup delay
// when the last phase was an engine, the TX-side stack delay otherwise —
// exactly the two legacy sinks' return paths.
func (px *pipectx) finishReturn(seq uint64, wireSize int, sentAt sim.Time, root obs.SpanID, fromEngine bool) {
	eng := px.tb.Eng
	var d sim.Duration
	if fromEngine {
		d = 200 * sim.Nanosecond
	} else {
		d = px.ep.FixedDelay()
	}
	eng.After(d, func() {
		txAt := eng.Now()
		resp := &nic.Packet{Seq: seq, Size: px.ps.RespSize, SentAt: sentAt}
		px.tb.Wire.SendToClient(resp, func(p *nic.Packet) {
			px.stage(root, spanReturn, txAt, eng.Now())
			px.closeRequest(root)
			px.chk.Complete(seq, wireSize, eng.Now())
			px.record(eng.Now().Sub(p.SentAt), wireSize)
		})
	})
}

// phaseSvc composes stack + phase cycles into a jittered service time.
// The arithmetic evaluation order matches the legacy svcTime exactly —
// (base + perByte·size), then ×factor, then +extra, Rx and Tx cycles
// added first — so converted single-phase pipelines are bit-identical.
// Phase 0 carries the RX stack cycles, the last CPU phase the TX
// cycles; spilled engine phases run their software model on the host.
func (px *pipectx) phaseSvc(i int, ph *PhaseSpec, pool *cpu.Pool, size int, spilled bool) sim.Duration {
	spec := pool.Spec
	base, perByte := ph.BaseCycles, ph.PerByteCycles
	factor := ph.CycleFactor
	if spilled {
		if ph.SpillBaseCycles > 0 || ph.SpillPerByteCycles > 0 {
			base, perByte = ph.SpillBaseCycles, ph.SpillPerByteCycles
		}
		factor = 1
	}
	if factor <= 0 {
		factor = 1
	}
	app := base + perByte*float64(size)
	app *= factor
	app += ph.ExtraCycles

	cycles := 0.0
	if i == 0 {
		cycles = px.prof.RxCycles(spec.Arch, size)
	}
	if i == len(px.ps.Phases)-1 {
		cycles += px.prof.TxCycles(spec.Arch, px.ps.RespSize)
	}
	cycles += app

	svc := sim.Cycles(cycles/spec.IPC, spec.BaseHz)
	plat := ph.platform()
	if spilled {
		plat = HostCPU
	}
	pen := px.tb.MemFor(plat).Penalty(ph.MemIntensity, ph.WorkingSet, px.tb.SpecFor(plat).L3Bytes)
	svc = sim.Duration(float64(svc) * pen)
	sigma := ph.Sigma
	if sigma <= 0 {
		sigma = 0.20
	}
	return px.jit.LogNormalDur(svc, sigma)
}

// engineSubmit dispatches one task to the phase's engine.
func (px *pipectx) engineSubmit(ph *PhaseSpec, size int, done func(start, end sim.Time)) {
	var err error
	switch ph.Engine {
	case EngineREM:
		err = px.tb.REM.Submit(size, done)
	case EngineDeflate:
		err = px.tb.Deflate.Submit(size, done)
	case EnginePKABulk:
		err = px.tb.PKA.SubmitBulk(ph.PKAAlgo, size, done)
	case EnginePKAOp:
		err = px.tb.PKA.SubmitOp(ph.PKAAlgo, done)
	default:
		panic(fmt.Sprintf("core: pipeline phase %q has no engine binding", ph.Name))
	}
	if err != nil {
		panic(err)
	}
}

// engineQueueLen reads the phase's engine queue depth. Every engine now
// exposes one — the PKA via its command-count register delta — so the
// spill watermark sees backlog on all three fixed-function paths.
func (px *pipectx) engineQueueLen(ph *PhaseSpec) int {
	switch ph.Engine {
	case EngineREM:
		return px.tb.REM.QueueLen()
	case EngineDeflate:
		return px.tb.Deflate.QueueLen()
	case EnginePKABulk, EnginePKAOp:
		return px.tb.PKA.QueueLen()
	default:
		return 0
	}
}

// engineUtilization reads the phase's engine utilization.
func (px *pipectx) engineUtilization(ph *PhaseSpec) float64 {
	switch ph.Engine {
	case EngineREM:
		return px.tb.REM.Utilization()
	case EngineDeflate:
		return px.tb.Deflate.Utilization()
	default:
		return px.tb.PKA.Utilization()
	}
}

// finishEngineUtil snapshots the busiest bound engine into the power
// signal (single-engine pipelines reduce to the legacy rule).
func (px *pipectx) finishEngineUtil() {
	var u float64
	seen := false
	for i := range px.ps.Phases {
		ph := &px.ps.Phases[i]
		if ph.Resource != ResEngine {
			continue
		}
		if eu := px.engineUtilization(ph); !seen || eu > u {
			u = eu
			seen = true
		}
	}
	if seen {
		px.tb.SetEngineUtil(u)
	}
}

// record mirrors runctx.record.
func (px *pipectx) record(rtt sim.Duration, bytes int) {
	px.done++
	if px.done == px.warmupN {
		px.meter = stats.NewMeter(px.tb.Eng.Now())
		return
	}
	if px.done < px.warmupN || px.meter == nil {
		return
	}
	px.hist.Record(rtt)
	if px.lastSend > 0 && px.tb.Eng.Now() > px.lastSend {
		return
	}
	px.meter.Mark(px.tb.Eng.Now(), bytes)
}

// ---- telemetry + checks ----

// phaseSpan names a phase's child span on the request track.
func phaseSpan(ph *PhaseSpec) string { return "phase/" + ph.Name }

func (px *pipectx) openRequest() obs.SpanID {
	if px.rec == nil {
		return 0
	}
	return px.rec.Open(obs.TrackRequests, spanRequest, px.tb.Eng.Now())
}

func (px *pipectx) stage(root obs.SpanID, name string, start, end sim.Time) {
	if root == 0 {
		return
	}
	px.rec.Span(obs.TrackRequests, name, root, start, end)
}

func (px *pipectx) closeRequest(root obs.SpanID) {
	if root == 0 {
		return
	}
	px.rec.Close(root, px.tb.Eng.Now())
}

// finishPipelineChecks verifies the conservation ledger, the per-phase
// ledgers and the span tree at end of run.
func (r *Runner) finishPipelineChecks(px *pipectx) {
	if px.chk == nil {
		return
	}
	now := px.tb.Eng.Now()
	px.chk.VerifyCounts(uint64(px.sent), uint64(px.done), now)
	if err := px.chk.Finish(now); err != nil {
		panic(err)
	}
	if err := invariant.CheckSpans(px.rec, invariant.SpanCheckOpts{}); err != nil {
		panic(err)
	}
}

// finishPipelineRecorder stamps end-of-run counters. Nil-safe.
func (r *Runner) finishPipelineRecorder(px *pipectx) {
	r.Prof.NoteEngine(px.tb.Eng)
	rec := px.rec
	if rec == nil {
		return
	}
	rec.SetCount("requests.sent", float64(px.sent))
	rec.SetCount("requests.completed", float64(px.done))
	rec.SetCount("pool.shed", float64(px.pool.Dropped()))
	rec.SetCount("wire.lost", float64(px.tb.Wire.Lost()))
	// Per-phase accounting lands in the registry so manifests show where
	// the fallback policy routed work, phase by phase.
	for i := range px.tally {
		scope := rec.Metrics().Scope("phase/" + px.tally[i].Name)
		scope.Counter("served", "reqs").Set(float64(px.tally[i].Served))
		scope.Counter("spilled", "reqs").Set(float64(px.tally[i].Spilled))
		scope.Counter("dropped", "reqs").Set(float64(px.tally[i].Dropped))
	}
	r.Telemetry.Attach(rec)
}

// measurement mirrors runctx.measurement, plus per-phase accounting.
func (px *pipectx) measurement() PipelineMeasurement {
	m := Measurement{
		Function:    px.ps.Name,
		Variant:     px.pol.Key(),
		Platform:    px.ps.Phases[0].platform(),
		OfferedGbps: px.opts.OfferedGbps,
		Latency:     px.hist.Summarize(),
		HostUtil:    px.tb.HostPool.Utilization(),
		EngineUtil:  px.tb.engineUtil,
	}
	if px.ps.uses(ResEngine) {
		m.SNICUtil = px.tb.StagingPool.Utilization()
	} else {
		m.SNICUtil = px.tb.SNICPool.Utilization()
	}
	if px.meter != nil {
		closeAt := px.tb.Eng.Now()
		if px.lastSend > 0 && px.lastSend < closeAt {
			closeAt = px.lastSend
		}
		px.meter.Close(closeAt)
		m.Ops = px.meter.Ops()
		m.TputOps = px.meter.OpsPerSec()
		m.TputGbps = px.meter.Gbps()
	}
	if px.opts.OfferedGbps > 0 {
		m.DeliveredFrac = m.TputGbps / px.opts.OfferedGbps
	} else {
		m.DeliveredFrac = 1
	}
	m.ServerPowerW = float64(px.tb.Power.Server.Power())
	m.SNICPowerW = float64(px.tb.Power.SNIC.Power())
	if m.ServerPowerW > 0 {
		m.EffOpsPerJoule = m.TputOps / m.ServerPowerW
		m.EffBitsPerJoule = m.TputGbps * 1e9 / m.ServerPowerW
	}
	pm := PipelineMeasurement{
		Pipeline: px.ps.Name,
		Policy:   px.pol.Key(),
		Point:    m,
		Phases:   px.tally,
	}
	for i := range px.tally {
		pm.Spilled += px.tally[i].Spilled
		pm.Dropped += px.tally[i].Dropped
	}
	return pm
}

// ---- saturation search ----

// SaturationPoint is one sampled operating point of the load walk.
type SaturationPoint struct {
	OfferedGbps float64
	M           PipelineMeasurement
}

// SaturationResult is one policy's load walk: the sampled curve, the
// knee (the highest offered load still sustained at a reasonable p99 —
// the run_until_saturation criterion), and the measurement there.
type SaturationResult struct {
	Pipeline string
	Policy   string
	Points   []SaturationPoint
	// KneeGbps is 0 when no sampled point sustained its load.
	KneeGbps float64
	Knee     PipelineMeasurement
}

// SaturationOpts shapes the load walk. The zero value walks 12 points
// from 20% to 220% of the pipeline's analytic capacity with
// probe-length runs.
type SaturationOpts struct {
	// Points is the number of sampled loads; 0 means 12.
	Points int
	// MinGbps/MaxGbps bound the walk; 0 derives both from the analytic
	// capacity estimate (0.2× and 2.2×, capped at 98% of line rate).
	MinGbps, MaxGbps float64
	// Requests per point; 0 means the capacity-probe default (6000).
	Requests int
	// Seed perturbs every point's streams.
	Seed uint64
}

// SaturationSearch walks offered load up to the SLO knee for one
// pipeline under one policy (run_until_saturation): points are sampled
// in parallel (byte-identical at any parallelism — each point is an
// independent memoized run), then scanned in load order against the
// light-load baseline's p99. The knee is the highest load with
// delivered ≥ 97% of offered and p99 within the spec's knee multiple
// of the first point's p99.
func (r *Runner) SaturationSearch(ps *PipelineSpec, so SaturationOpts) SaturationResult {
	if err := ps.Validate(); err != nil {
		panic(err)
	}
	n := so.Points
	if n <= 0 {
		n = 12
	}
	if n < 2 {
		n = 2
	}
	lo, hi := so.MinGbps, so.MaxGbps
	if lo <= 0 || hi <= 0 {
		est := r.estimatePipelineGbps(ps)
		if lo <= 0 {
			lo = est * 0.2
		}
		if hi <= 0 {
			hi = math.Min(est*2.2, r.TBConfig.LinkGbps()*0.98)
		}
	}
	if hi <= lo {
		hi = lo * 2
	}
	res := SaturationResult{Pipeline: ps.Name, Policy: ps.policy().Key(),
		Points: make([]SaturationPoint, n)}
	prog := r.newProgress(n)
	label := "saturation " + ps.Name + " [" + res.Policy + "]"
	r.forEachN(n, func(i int) {
		opts := probeOpts(so.Seed + uint64(1000+i))
		if so.Requests > 0 {
			opts.Requests = so.Requests
		}
		opts.OfferedGbps = lo + (hi-lo)*float64(i)/float64(n-1)
		res.Points[i] = SaturationPoint{OfferedGbps: opts.OfferedGbps, M: r.RunPipeline(ps, opts)}
		prog.step(label)
	})
	// Knee scan: the first point anchors the "reasonable p99" bound.
	p99Cap := sim.Duration(float64(res.Points[0].M.Point.Latency.P99) * ps.kneeMult())
	for i := range res.Points {
		p := &res.Points[i]
		if p.M.Point.DeliveredFrac >= 0.97 && p.M.Point.Latency.P99 <= p99Cap {
			res.KneeGbps = p.OfferedGbps
			res.Knee = p.M
		}
	}
	return res
}

// estimatePipelineGbps computes an analytic capacity seed: the minimum
// over phases of each phase's standalone capacity (pool sharing between
// phases is ignored — the walk's range only needs to bracket the knee).
func (r *Runner) estimatePipelineGbps(ps *PipelineSpec) float64 {
	tbc := r.TBConfig
	if ps.HostCores > 0 {
		tbc.HostCores = ps.HostCores
	}
	if ps.SNICCores > 0 {
		tbc.SNICCores = ps.SNICCores
	}
	tb := NewTestbed(tbc)
	meanReq := ps.ReqSize
	if ps.Mixed {
		meanReq = int(trace.CTUMixed().Mean())
	}
	link := r.TBConfig.LinkGbps()
	best := link * float64(meanReq) / float64(meanReq+nic.EthernetOverhead)
	prof := netstack.ByKind(ps.Stack)
	size := meanReq
	for i := range ps.Phases {
		ph := &ps.Phases[i]
		var gbps float64
		if ph.Resource == ResEngine {
			engineBits := r.pipelineEngineRateBits(tb, ph)
			spec := tb.SNICSpec
			stageCycles := accel.StagingCyclesPerTask + accel.StagingCyclesPerByte*float64(size) + 100
			if i == 0 {
				stageCycles += prof.RxCycles(spec.Arch, size)
			}
			stageTime := sim.Cycles(stageCycles/spec.IPC, spec.BaseHz)
			stageBits := float64(tb.StagingPool.Cores()) / stageTime.Seconds() * float64(size) * 8
			gbps = math.Min(engineBits, stageBits) / 1e9
		} else {
			plat := ph.platform()
			spec := tb.SpecFor(plat)
			pool := tb.PoolFor(plat)
			factor := ph.CycleFactor
			if factor <= 0 {
				factor = 1
			}
			app := (ph.BaseCycles+ph.PerByteCycles*float64(size))*factor + ph.ExtraCycles
			cycles := app
			if i == 0 {
				cycles += prof.RxCycles(spec.Arch, size)
			}
			if i == len(ps.Phases)-1 {
				cycles += prof.TxCycles(spec.Arch, ps.RespSize)
			}
			pen := tb.MemFor(plat).Penalty(ph.MemIntensity, ph.WorkingSet, spec.L3Bytes)
			t := sim.Duration(float64(sim.Cycles(cycles/spec.IPC, spec.BaseHz)) * pen)
			// Capacity in wire-payload terms: a phase serving shrunken
			// payloads still gates the same request stream.
			gbps = float64(pool.Cores()) / t.Seconds() * float64(meanReq) * 8 / 1e9
		}
		if gbps < best {
			best = gbps
		}
		size = ph.outSize(size)
	}
	return best
}

// pipelineEngineRateBits mirrors engineRateBits for a phase binding.
func (r *Runner) pipelineEngineRateBits(tb *Testbed, ph *PhaseSpec) float64 {
	switch ph.Engine {
	case EngineREM:
		return tb.REM.RateBits * 0.75
	case EngineDeflate:
		return tb.Deflate.RateBits * 0.9
	case EnginePKABulk:
		return tb.PKA.BulkRateBits[ph.PKAAlgo] * 0.95
	case EnginePKAOp:
		return tb.PKA.OpRate[ph.PKAAlgo] * float64(64<<10) * 8
	default:
		return 30e9
	}
}
