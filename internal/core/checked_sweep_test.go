package core

import (
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

// TestCheckedRandomSweepDeterministic draws a seeded random sweep over
// the catalog — random config, platform, rate and seed per point — and
// runs it under checked execution at parallelism 1 and 4. It asserts
// only the invariants (the checker panics on any broken law) plus
// byte-identical results across parallelism: no golden values, so the
// sweep survives any recalibration.
func TestCheckedRandomSweepDeterministic(t *testing.T) {
	rng := sim.NewRNG(2026)
	catalog := Catalog()
	type point struct {
		cfg  *Config
		plat Platform
		opts RunOpts
	}
	var sweep []point
	for len(sweep) < 10 {
		cfg := catalog[rng.Intn(len(catalog))]
		plat := cfg.Platforms[rng.Intn(len(cfg.Platforms))]
		sweep = append(sweep, point{
			cfg:  cfg,
			plat: plat,
			opts: RunOpts{
				Requests:    800 + rng.Intn(800),
				WarmupFrac:  0.1,
				Seed:        rng.Uint64n(1 << 16),
				OfferedGbps: 0.1 + float64(rng.Intn(30))/10, // 0.1 .. 3.0, into overload
			},
		})
	}
	run := func(par int) []Measurement {
		r := NewRunner()
		r.Checks = true
		r.Parallelism = par
		out := make([]Measurement, len(sweep))
		r.ForEach(len(sweep), func(i int) {
			p := sweep[i]
			out[i] = r.Run(p.cfg, p.plat, p.opts)
		})
		return out
	}
	seq := run(1)
	par := run(4)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("sweep point %d (%s/%s on %s) differs at -j1 vs -j4:\n  j1: %+v\n  j4: %+v",
				i, sweep[i].cfg.Function, sweep[i].cfg.Variant, sweep[i].plat, seq[i], par[i])
		}
	}
}

// TestCheckedRandomFaultSweep soaks the failover machinery with seeded
// random fault plans — arbitrary mixes of crashes, stalls, degradations,
// flaps, throttles and sensor dropouts against the real registry targets
// — under checked execution, again asserting only invariants and
// -j1 == -j4 bit-identity (FaultResult is comparable).
func TestCheckedRandomFaultSweep(t *testing.T) {
	tr := faultTestTrace()
	var scns []FaultScenario
	for seed := uint64(1); seed <= 6; seed++ {
		plan := fault.NewRandomPlan(fault.RandomPlanConfig{
			Seed:      seed,
			Horizon:   tr.Duration(),
			Events:    4,
			MaxWindow: tr.Duration() / 8,
			Engines:   []string{"rem", "deflate", "pka"},
			Links:     []string{"wire"},
			Pools:     []string{"host", "snic", "staging"},
			Sensors:   []string{"bmc", "yoctowatt"},
		})
		scns = append(scns, FaultScenario{
			Name: fmt.Sprintf("random-%d", seed),
			Desc: "seeded random soak plan",
			Plan: plan,
		})
	}
	run := func(par int) []FaultResult {
		r := NewRunner()
		r.Checks = true
		r.Parallelism = par
		return r.RunFaultedSet(scns, testRouter, tr, 2, 42)
	}
	seq := run(1)
	par := run(4)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("scenario %s differs at -j1 vs -j4:\n  j1: %+v\n  j4: %+v",
				seq[i].Scenario, seq[i], par[i])
		}
		if seq[i].Total != seq[i].Completed+seq[i].Dropped {
			t.Fatalf("scenario %s: total %d != completed %d + dropped %d",
				seq[i].Scenario, seq[i].Total, seq[i].Completed, seq[i].Dropped)
		}
	}
}
